// Lens hunt: the paper's gravitational-lens query — "find objects within 10
// arcsec of each other which have identical colors, but may have a
// different brightness" — run on the hash machine, with planted lens
// systems to verify recovery.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

func main() {
	log.SetFlags(0)

	a, err := core.Create("", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := skygen.GenerateChunk(skygen.Default(7, 40000), 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Plant a handful of lens systems: a quasar and a second image 2-6
	// arcsec away with identical colors, fainter by up to 1.5 mag.
	rng := rand.New(rand.NewSource(99))
	var planted []catalog.ObjID
	nextID := catalog.ObjID(1) << 55
	for i := 0; i < 8; i++ {
		base := chunk.Photo[rng.Intn(len(chunk.Photo))]
		var img catalog.PhotoObj
		img.ObjID = nextID
		nextID++
		sep := (2 + 4*rng.Float64()) * sphere.Arcsec
		dir := base.Pos().Orthogonal()
		pos := base.Pos().Add(dir.Scale(sep)).Normalize()
		ra, dec := sphere.ToRADec(pos)
		if err := img.SetPos(ra, dec); err != nil {
			log.Fatal(err)
		}
		// One brightness offset for every band: identical colors, the
		// lens signature.
		dim := float32(0.3 + 1.2*rng.Float64())
		for b := range img.Mag {
			img.Mag[b] = base.Mag[b] + dim
		}
		img.Class = catalog.ClassQuasar
		chunk.Photo = append(chunk.Photo, img)
		planted = append(planted, base.ObjID)
	}
	if _, err := a.LoadChunk(chunk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d objects (8 planted lens systems)\n", a.Stats().PhotoObjects)

	// The mining query: pairs ≤ 10 arcsec, colors matching to 0.02 mag.
	pairs, err := a.LensCandidates(10, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lens candidates found: %d pairs\n", len(pairs))

	recovered := 0
	found := make(map[catalog.ObjID]bool)
	for _, p := range pairs {
		found[p.A.ObjID] = true
		found[p.B.ObjID] = true
	}
	for _, id := range planted {
		if found[id] {
			recovered++
		}
	}
	fmt.Printf("planted systems recovered: %d/%d\n", recovered, len(planted))
	for i, p := range pairs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(pairs)-5)
			break
		}
		fmt.Printf("  pair %d-%d separation %.2f arcsec, Δr = %.2f mag\n",
			uint64(p.A.ObjID), uint64(p.B.ObjID), p.Dist/sphere.Arcsec,
			p.B.Mag[catalog.R]-p.A.Mag[catalog.R])
	}
}
