// Dataflow: an astronomer's river graph — scan the catalog, filter to
// galaxies, repartition by color, compute per-partition statistics, and
// sort the reddest objects — the paper's "dataflow graphs where the nodes
// consume one or more data streams, filter and combine the data, and then
// produce one or more result streams".
package main

import (
	"context"
	"fmt"
	"log"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/river"
	"sdss/internal/skygen"
)

func main() {
	log.SetFlags(0)

	a, err := core.Create("", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := skygen.GenerateChunk(skygen.Default(5, 50000), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a.LoadChunk(chunk); err != nil {
		log.Fatal(err)
	}
	tags, err := a.Tags()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// Source: the tag table. Filter: galaxies only. Exchange: partition by
	// g−r color into 4 parallel streams. Each partition computes its own
	// mean color; results merge back into one stream.
	src := river.FromSlice(ctx, tags)
	galaxies := river.Filter(src, 4, func(t catalog.Tag) bool {
		return t.Class == catalog.ClassGalaxy
	})
	parts := river.Exchange(galaxies, 4, func(t catalog.Tag) uint64 {
		return uint64(t.ObjID)
	})

	type partStat struct {
		part  int
		n     int
		sumGR float64
	}
	statStreams := make([]*river.Stream[partStat], len(parts))
	for i, p := range parts {
		i := i
		statStreams[i] = river.Map(river.Sort(p, func(a, b catalog.Tag) bool {
			return a.Color(catalog.G, catalog.R) > b.Color(catalog.G, catalog.R)
		}, nil), 1, func(t catalog.Tag) (partStat, error) {
			return partStat{part: i, n: 1, sumGR: t.Color(catalog.G, catalog.R)}, nil
		})
	}
	merged := river.Merge(statStreams...)
	totals := make([]partStat, len(parts))
	if err := river.ForEach(merged, func(s partStat) error {
		totals[s.part].n += s.n
		totals[s.part].sumGR += s.sumGR
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-partition galaxy color statistics (river graph):")
	var grand int
	for i, t := range totals {
		grand += t.n
		fmt.Printf("  partition %d: %6d galaxies, mean g-r = %.3f\n", i, t.n, t.sumGR/float64(t.n))
	}
	fmt.Printf("total galaxies through the river: %d\n", grand)

	// A second river: the sorting network. Globally order all galaxies by
	// r magnitude with range partitioning + per-partition external sort +
	// ordered merge, and print the brightest three.
	src2 := river.FromSlice(ctx, tags)
	gal2 := river.Filter(src2, 4, func(t catalog.Tag) bool { return t.Class == catalog.ClassGalaxy })
	rparts := river.RangePartition(gal2, func(t catalog.Tag) float64 {
		return float64(t.Mag[catalog.R])
	}, []float64{17, 19, 21})
	sorted := make([]*river.Stream[catalog.Tag], len(rparts))
	less := func(a, b catalog.Tag) bool { return a.Mag[catalog.R] < b.Mag[catalog.R] }
	for i, p := range rparts {
		sorted[i] = river.Sort(p, less, nil)
	}
	ordered, err := river.Collect(river.MergeSorted(less, sorted...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("brightest galaxies via the sorting network:")
	for i := 0; i < 3 && i < len(ordered); i++ {
		fmt.Printf("  objid=%d r=%.2f\n", uint64(ordered[i].ObjID), ordered[i].Mag[catalog.R])
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Mag[catalog.R] < ordered[i-1].Mag[catalog.R] {
			log.Fatal("sorting network produced out-of-order output")
		}
	}
	fmt.Printf("sorting network output verified: %d galaxies in magnitude order\n", len(ordered))
}
