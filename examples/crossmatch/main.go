// Cross-identification: match an external FIRST-like radio catalog against
// the optical archive — the paper's "each subsequent astronomical survey
// will want to cross-identify its objects with the SDSS catalog".
package main

import (
	"fmt"
	"log"

	"sdss/internal/core"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

func main() {
	log.SetFlags(0)

	a, err := core.Create("", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := skygen.GenerateChunk(skygen.Default(3, 60000), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a.LoadChunk(chunk); err != nil {
		log.Fatal(err)
	}

	// A radio survey re-observes the radio-loud sources with 1 arcsec
	// astrometric scatter, plus 25% spurious detections.
	radio := skygen.RadioCatalog(11, chunk.Photo, 0.85, 1.0, 0.25)
	var truthMatched int
	for i := range radio {
		if radio[i].Matched {
			truthMatched++
		}
	}
	fmt.Printf("optical archive: %d objects; radio catalog: %d sources (%d with true counterparts)\n",
		a.Stats().PhotoObjects, len(radio), truthMatched)

	// Cross-match within 5 arcsec on the hash machine.
	matches, err := a.CrossMatch(radio, 5)
	if err != nil {
		log.Fatal(err)
	}

	byRadio := make(map[uint64]uint64, len(matches))
	var sumSep float64
	for _, m := range matches {
		byRadio[m.RadioID] = uint64(m.ObjID)
		sumSep += m.Dist
	}
	correct, wrong, spuriousHit := 0, 0, 0
	for i := range radio {
		r := &radio[i]
		got, matched := byRadio[r.ID]
		switch {
		case r.Matched && matched && got == uint64(r.TruthID):
			correct++
		case r.Matched && matched:
			wrong++
		case !r.Matched && matched:
			spuriousHit++
		}
	}
	fmt.Printf("matches within 5 arcsec: %d\n", len(matches))
	fmt.Printf("  correct identifications: %d (%.1f%% of true counterparts)\n",
		correct, 100*float64(correct)/float64(truthMatched))
	fmt.Printf("  misidentified: %d; spurious sources matched: %d\n", wrong, spuriousHit)
	if len(matches) > 0 {
		fmt.Printf("  mean match separation: %.2f arcsec\n", sumSep/float64(len(matches))/sphere.Arcsec)
	}
}
