// Desktop analysis: the paper's workflow for an astronomer's workstation —
// take the 1% sample plus the tag vertical partition, develop a selection
// on the laptop-sized subset, then run the debugged query against the full
// archive and compare.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sdss/internal/core"
	"sdss/internal/skygen"
	"sdss/internal/stats"
)

func main() {
	log.SetFlags(0)

	full, err := core.Create("", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := skygen.GenerateChunk(skygen.Default(13, 100000), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := full.LoadChunk(chunk); err != nil {
		log.Fatal(err)
	}
	fs := full.Stats()
	fmt.Printf("server archive: %d objects, %s full + %s tags\n",
		fs.PhotoObjects, stats.ByteSize(float64(fs.PhotoBytes)), stats.ByteSize(float64(fs.TagBytes)))

	// The desktop subset: 1% sample, consistently across tables.
	desktop, err := full.Sample(0.01)
	if err != nil {
		log.Fatal(err)
	}
	ds := desktop.Stats()
	fmt.Printf("desktop subset: %d objects, %s — %.0f× smaller\n",
		ds.PhotoObjects, stats.ByteSize(float64(ds.PhotoBytes+ds.TagBytes)),
		float64(fs.PhotoBytes)/float64(ds.PhotoBytes))

	ctx := context.Background()
	// Develop a selection on the sample: blue point-like sources. The cut
	// is broad enough that the 1% sample still holds enough objects for a
	// meaningful estimate (a narrow cut needs the full archive).
	q := "SELECT COUNT(*) FROM tag WHERE u - g < 1.0 AND r < 22.5 AND size < 3"
	count := func(a *core.Archive) (float64, time.Duration) {
		start := time.Now()
		rows, err := a.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			log.Fatal(err)
		}
		return res[0].Values[0], time.Since(start)
	}
	sampleN, sampleT := count(desktop)
	fmt.Printf("\ndebug run on the sample: %d candidates in %v → estimate %d full-survey\n",
		int(sampleN), sampleT.Round(time.Microsecond), int(sampleN*100))

	fullN, fullT := count(full)
	fmt.Printf("production run on the server: %d candidates in %v\n", int(fullN), fullT.Round(time.Microsecond))
	if fullN > 0 {
		err := 100 * (sampleN*100 - fullN) / fullN
		fmt.Printf("sample estimate error: %+.1f%%; sample ran %.0f× faster\n",
			err, float64(fullT)/float64(sampleT))
	}

	// Refine with the spectroscopic table on the server: of the candidate
	// color box, how many confirmed quasars have z > 2?
	rows, err := full.Query(ctx,
		"(SELECT objid FROM specobj WHERE redshift > 2 AND class = 'QSO') INTERSECT (SELECT objid FROM tag WHERE u - g < 0.4)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confirmed z>2 quasars inside the color box: %d\n", len(res))
}
