// Quickstart: create an archive, load a synthetic survey, and run the
// bread-and-butter queries — a cone search and a color cut — through the
// public API.
package main

import (
	"context"
	"fmt"
	"log"

	"sdss/internal/core"
	"sdss/internal/skygen"
)

func main() {
	log.SetFlags(0)

	// An in-memory archive (pass a directory to persist).
	a, err := core.Create("", core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Generate one chunk of a 50,000-object synthetic survey and load it.
	chunk, err := skygen.GenerateChunk(skygen.Default(42, 50000), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	st, err := a.LoadChunk(chunk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d objects (%d spectra) touching %d containers at %.0f MB/s\n",
		st.PhotoObjects, st.SpecObjects, st.Containers, st.Rate()/1e6)

	ctx := context.Background()

	// Cone search around the first object, via the HTM index.
	center := chunk.Photo[0]
	tags, err := a.ConeSearch(ctx, center.RA, center.Dec, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cone search 30' around (%.3f, %.3f): %d objects\n", center.RA, center.Dec, len(tags))

	// A color-cut query on the tag partition through the typed surface:
	// the result stream carries the projection's column schema.
	rows, err := a.QueryRows(ctx,
		"SELECT objid, ra, dec, r FROM tag WHERE r < 19 AND u - g < 0.5 ORDER BY r",
		core.QueryOptions{Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range rows.Columns() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %s", c.Name, c.Type)
	}
	fmt.Println()
	res, err := rows.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("five brightest UV-excess (quasar-colored) objects:")
	for _, r := range res {
		fmt.Printf("  objid=%d ra=%.4f dec=%.4f r=%.2f\n",
			uint64(r.ObjID), r.Values[1], r.Values[2], r.Values[3])
	}

	// Aggregate over the spectroscopic table.
	rows, err = a.Query(ctx, "SELECT AVG(redshift) FROM specobj WHERE class = 'GALAXY'")
	if err != nil {
		log.Fatal(err)
	}
	res, err = rows.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean galaxy redshift in the spectroscopic sample: %.4f\n", res[0].Values[0])
}
