# Single source of truth for the repo's build/lint/test commands: CI invokes
# these targets, so `make check` locally is byte-identical to what CI runs.
#
# The module is pure stdlib (go.mod has no requirements), so the external
# lint tools cannot be pinned through a tools.go import — there is nothing
# in the module graph to pin against. Instead the versions are pinned here
# and the tools run via `go run tool@version`, which both fetches and
# verifies the exact tagged release. See tools.go for the full rationale.

STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

BIN := bin

.PHONY: build test race bench-smoke skylint skylint-test staticcheck govulncheck vet fmt-check lint check clean

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The E18 scale sweep at a tiny scale (~1000 objects): proves the whole
# bench harness — size sweep, sharded neighbor join, radius sweep, planner
# introspection — end to end in seconds. CI runs this so a broken bench is
# caught before anyone regenerates BENCH_*.json. E20 exercises the morsel
# scheduler sweep (workers × gomaxprocs × shards) the same way.
bench-smoke:
	go run ./cmd/skybench -run E18 -scale 3.4e-6
	go run ./cmd/skybench -run E19 -scale 3.4e-6
	go run ./cmd/skybench -run E20 -scale 3.4e-6

# skylint is the project's own analyzer suite (cmd/skylint): batch
# ownership, raw record offsets, NaN-safe comparisons, interrupted marks,
# cancellable fan-out. Run through `go vet -vettool` so findings carry the
# same package scoping and exit behavior as the rest of vet.
skylint: $(BIN)/skylint
	go vet -vettool=$(BIN)/skylint ./...

$(BIN)/skylint: FORCE
	go build -o $(BIN)/skylint ./cmd/skylint

FORCE:

# The analyzers' own fixture tests (analysistest-style).
skylint-test:
	go test ./internal/lint/...

# staticcheck and govulncheck need network access to fetch the pinned
# release on first run; they are separate targets so `make lint` degrades
# loudly (not silently) in offline sandboxes.
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: skylint staticcheck govulncheck

check: fmt-check vet build skylint-test skylint test

clean:
	rm -rf $(BIN)
