# Single source of truth for the repo's build/lint/test commands: CI invokes
# these targets, so `make check` locally is byte-identical to what CI runs.
#
# The module is pure stdlib (go.mod has no requirements), so the external
# lint tools cannot be pinned through a tools.go import — there is nothing
# in the module graph to pin against. Instead the versions are pinned here
# and the tools run via `go run tool@version`, which both fetches and
# verifies the exact tagged release. See tools.go for the full rationale.

STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

BIN := bin

.PHONY: build test race bench-smoke skylint skylint-test skylint-violations annotate staticcheck govulncheck vet fmt-check lint check clean

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The E18 scale sweep at a tiny scale (~1000 objects): proves the whole
# bench harness — size sweep, sharded neighbor join, radius sweep, planner
# introspection — end to end in seconds. CI runs this so a broken bench is
# caught before anyone regenerates BENCH_*.json. E20 exercises the morsel
# scheduler sweep (workers × gomaxprocs × shards) the same way.
bench-smoke:
	go run ./cmd/skybench -run E18 -scale 3.4e-6
	go run ./cmd/skybench -run E19 -scale 3.4e-6
	go run ./cmd/skybench -run E20 -scale 3.4e-6

# skylint is the project's own analyzer suite (cmd/skylint): batch
# ownership, raw record offsets, NaN-safe comparisons, interrupted marks,
# cancellable fan-out, and the morsel-pool concurrency invariants
# (slotheld, lockheld, enginecopy). Both drivers run: the standalone
# loader, which reads/writes function-summary artifacts under
# $(BIN)/lintsum so partial re-runs stay interprocedural, and
# `go vet -vettool`, whose findings carry the same package scoping and
# exit behavior as the rest of vet (summaries ride the .vetx facts files
# there).
skylint: $(BIN)/skylint
	$(BIN)/skylint -sumdir $(BIN)/lintsum ./...
	go vet -vettool=$(BIN)/skylint ./...

$(BIN)/skylint: FORCE
	go build -o $(BIN)/skylint ./cmd/skylint

FORCE:

# The analyzers' own fixture tests (analysistest-style).
skylint-test:
	go test ./internal/lint/...

# Deliberate-violation guard: each analyzer must exit 1 on its seeded-bug
# fixture, proving the suite still detects what it claims to. The fixture
# trees are GOPATH-shaped (testdata/src/a may import a sibling package b),
# so the standalone driver runs in GOPATH mode rooted at each testdata
# dir — which also exercises cross-package summary import through the real
# binary for the fixtures that split across a and b.
skylint-violations: $(BIN)/skylint
	@for spec in batchown:a ctxcancel:a dropmark:qe nansafe:qe rawoffset:a \
			slotheld:a lockheld:a enginecopy:a; do \
		name=$${spec%%:*}; pkg=$${spec##*:}; \
		t=$(CURDIR)/internal/lint/$$name/testdata; \
		if GO111MODULE=off GOPATH=$$t GOFLAGS= $(BIN)/skylint -C $$t/src $$pkg >/dev/null 2>&1; then \
			echo "skylint-violations: $$name fixture raised no findings (expected exit 1)"; exit 1; \
		fi; \
		echo "skylint-violations: $$name flags its seeded bugs (exit 1)"; \
	done

# GitHub annotations: write NDJSON findings to a file first (this shell
# has no pipefail, so a straight pipe would swallow skylint's exit), then
# ghannotate re-emits each finding as an ::error workflow command and
# exits 1 if any exist — so lint failures land on the PR diff.
annotate: $(BIN)/skylint
	@$(BIN)/skylint -json -sumdir $(BIN)/lintsum ./... > $(BIN)/skylint.ndjson; \
	go run ./internal/lint/ghannotate < $(BIN)/skylint.ndjson

# staticcheck and govulncheck need network access to fetch the pinned
# release on first run; they are separate targets so `make lint` degrades
# loudly (not silently) in offline sandboxes.
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: skylint staticcheck govulncheck

check: fmt-check vet build skylint-test skylint skylint-violations test

clean:
	rm -rf $(BIN)
