package sdss

// One benchmark per table and figure of the paper, plus its quantified
// performance claims and the design-choice ablations. Each wraps the
// corresponding experiment in internal/expt, which prints the
// paper-versus-measured table; the benchmark numbers time a full
// regeneration of that experiment. EXPERIMENTS.md records the outputs.

import (
	"io"
	"os"
	"testing"

	"sdss/internal/expt"
)

// benchCfg is the default benchmark scale: 1e-4 of the 3×10⁸-object survey
// (≈30,000 objects). Override with SKYBENCH_SCALE if desired.
func benchCfg() expt.Config {
	return expt.Config{Scale: 1e-4, Seed: 1, Nodes: 20}
}

// benchOut prints experiment tables once (first iteration), so `go test
// -bench` output doubles as the experiment report.
func runExperiment(b *testing.B, fn func(expt.Config, io.Writer) error) {
	b.Helper()
	cfg := benchCfg()
	// Build the shared harness outside the timed region.
	if _, err := expt.NewHarness(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
		}
		if err := fn(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DatasetSizes(b *testing.B)     { runExperiment(b, expt.Table1) }
func BenchmarkFigure1DriftScanRate(b *testing.B)   { runExperiment(b, expt.Figure1) }
func BenchmarkFigure2ReplicationFlow(b *testing.B) { runExperiment(b, expt.Figure2) }
func BenchmarkFigure3HTMSubdivision(b *testing.B)  { runExperiment(b, expt.Figure3) }
func BenchmarkFigure4DualConstraintQuery(b *testing.B) {
	runExperiment(b, expt.Figure4)
}
func BenchmarkScanMachineScaling(b *testing.B)   { runExperiment(b, expt.ScanScaling) }
func BenchmarkTagVsFullScan(b *testing.B)        { runExperiment(b, expt.TagVsFull) }
func BenchmarkSampleDebugging(b *testing.B)      { runExperiment(b, expt.SampleDebugging) }
func BenchmarkHashMachineLens(b *testing.B)      { runExperiment(b, expt.HashMachineLens) }
func BenchmarkRiverSort(b *testing.B)            { runExperiment(b, expt.RiverSort) }
func BenchmarkDataLoading(b *testing.B)          { runExperiment(b, expt.DataLoading) }
func BenchmarkCartesianVsTrig(b *testing.B)      { runExperiment(b, expt.CartesianVsTrig) }
func BenchmarkASAPFirstResult(b *testing.B)      { runExperiment(b, expt.ASAPFirstResult) }
func BenchmarkIndexVsScanCrossover(b *testing.B) { runExperiment(b, expt.IndexVsScanCrossover) }
func BenchmarkShardScatterGather(b *testing.B)   { runExperiment(b, expt.ShardScatterGather) }
func BenchmarkZoneMapPruning(b *testing.B)       { runExperiment(b, expt.ZoneMapPruning) }
func BenchmarkContainerDepth(b *testing.B)       { runExperiment(b, expt.AblationContainerDepth) }
func BenchmarkCoverageRangesVsList(b *testing.B) { runExperiment(b, expt.AblationCoverageRanges) }
func BenchmarkCoverDepthSelection(b *testing.B)  { runExperiment(b, expt.AblationCoverDepth) }
