// Package sdss is a from-scratch Go reproduction of "Designing and Mining
// Multi-Terabyte Astronomy Archives: The Sloan Digital Sky Survey" (Szalay,
// Kunszt, Thakar, Gray — SIGMOD 2000).
//
// The library lives under internal/: the Hierarchical Triangular Mesh sky
// index (internal/htm), the half-space region algebra (internal/region),
// the container-clustered object store (internal/store), the parallel
// Query Execution Tree engine with ASAP push (internal/query, internal/qe),
// the scan, hash and river machines (internal/scan, internal/hashm,
// internal/river), the archive topology simulation (internal/archive), and
// the assembled public facade (internal/core). See README.md and DESIGN.md.
//
// The benchmarks in this root package regenerate every table and figure of
// the paper; run them with
//
//	go test -bench=. -benchmem .
package sdss
