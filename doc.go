// Package sdss is a from-scratch Go reproduction of "Designing and Mining
// Multi-Terabyte Astronomy Archives: The Sloan Digital Sky Survey" (Szalay,
// Kunszt, Thakar, Gray — SIGMOD 2000), grown toward the public SkyServer
// tier the follow-on papers describe.
//
// The library lives under internal/: the Hierarchical Triangular Mesh sky
// index (internal/htm), the half-space region algebra (internal/region),
// the container-clustered object store (internal/store), the parallel
// Query Execution Tree engine with ASAP push (internal/query, internal/qe),
// the scan, hash and river machines (internal/scan, internal/hashm,
// internal/river), the archive topology simulation and versioned /v1 REST
// tier (internal/archive), and the assembled public facade (internal/core).
//
// Result sets are typed end to end: the query compiler exposes the
// projection's column names and types (query.Column), the engine's
// streaming qe.Rows carries them (Rows.Columns), and the REST tier serves
// them in JSON, NDJSON, and CSV without any hardcoded schemas. Interactive
// queries are bounded by row caps and timeouts; long-running mining queries
// run through an asynchronous job tier with admission control — the
// SkyServer interactive-vs-batch split. See README.md for the endpoint
// reference with curl examples.
//
// The benchmarks in this root package regenerate every table and figure of
// the paper; run them with
//
//	go test -bench=. -benchmem .
package sdss
