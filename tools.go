//go:build tools

// Package tools is the conventional place to pin lint/build tool versions
// by importing their main packages. This module is deliberately pure
// stdlib — go.mod has no require block, so the archive builds in air-gapped
// environments — which means the usual
//
//	import _ "honnef.co/go/tools/cmd/staticcheck"
//
// pinning would drag the whole tool dependency graph into go.sum for no
// runtime benefit. The pins live in the Makefile instead
// (STATICCHECK_VERSION / GOVULNCHECK_VERSION), and the tools run as
// `go run tool@version`, which verifies the exact tagged release against
// the module checksum database at fetch time. CI calls the same Makefile
// targets, so local and CI tool versions cannot drift.
//
// skylint itself (cmd/skylint) needs no pinning: it is part of this module
// and builds from the working tree.
package tools
