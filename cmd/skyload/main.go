// Command skyload ingests FITS chunk files into a Science Archive: the
// two-phase container-clustered load, building the full photometric store,
// the tag vertical partition, and the spectroscopic table.
//
// Usage:
//
//	skyload -archive archive/ chunks/chunk*.fits
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sdss/internal/core"
	"sdss/internal/load"
	"sdss/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyload: ")
	var (
		dir    = flag.String("archive", "archive", "archive directory")
		depth  = flag.Int("container-depth", 0, "HTM container depth (0 = default)")
		shards = flag.Int("shards", 0, "store shard slices (0 = adopt the archive's recorded count, else 1)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no chunk files given; usage: skyload -archive DIR chunk0000.fits ...")
	}

	a, err := core.Create(*dir, core.Options{ContainerDepth: *depth, Shards: *shards})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var totalBytes int64
	for _, path := range flag.Args() {
		ch, cst, err := load.ReadChunkFile(path)
		if err != nil {
			log.Fatalf("reading %s: %v", path, err)
		}
		for _, warn := range cst.Warnings {
			log.Printf("%s: warning: %s", path, warn)
		}
		st, err := a.LoadChunk(ch)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		totalBytes += st.Bytes
		fmt.Printf("%s: %d photo + %d tag + %d spec records, %d container touches, %s at %s/s\n",
			path, st.PhotoObjects, st.TagObjects, st.SpecObjects, st.Containers,
			stats.ByteSize(float64(st.Bytes)), stats.ByteSize(st.Rate()))
	}
	a.Sort()
	if err := a.Flush(); err != nil {
		log.Fatal(err)
	}
	sum := a.Stats()
	fmt.Printf("archive %s: %d photo + %d tag + %d spec records in %d containers, %s stored (%s of zone maps); this load added %s of records in %v\n",
		*dir, sum.PhotoObjects, sum.TagObjects, sum.Spectra, sum.Containers,
		stats.ByteSize(float64(sum.PhotoBytes+sum.TagBytes+sum.SpecBytes)),
		stats.ByteSize(float64(sum.ZoneMapBytes)),
		stats.ByteSize(float64(totalBytes)),
		time.Since(start).Round(time.Millisecond))
	if sum.ColBlkRawBytes > 0 {
		fmt.Printf("column blocks: %s compressed over %s of raw columns (%.0f%%)\n",
			stats.ByteSize(float64(sum.ColBlkEncodedBytes)),
			stats.ByteSize(float64(sum.ColBlkRawBytes)),
			100*float64(sum.ColBlkEncodedBytes)/float64(sum.ColBlkRawBytes))
	}
}
