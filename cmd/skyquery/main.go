// Command skyquery executes archive queries from the command line,
// streaming results as they arrive (the ASAP push made visible).
//
// Usage:
//
//	skyquery -archive archive/ "SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(185, 32, 10) AND r < 21"
//	skyquery -archive archive/ "SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 18"
//	skyquery -archive archive/ "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 0.5) WHERE a.objid < b.objid"
//	skyquery -archive archive/ -format csv "SELECT objid, r FROM tag LIMIT 100"
//	skyquery -archive archive/ -explain "SELECT objid FROM tag WHERE CIRCLE(185, 32, 10)"
//	skyquery -archive archive/ -explain -analyze "SELECT p.objid FROM photo p JOIN spec s ON p.objid = s.objid"
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"sdss/internal/core"
	"sdss/internal/qe"
	"sdss/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyquery: ")
	var (
		dir     = flag.String("archive", "archive", "archive directory")
		limit   = flag.Int("max", 0, "stop after this many rows (0 = all)")
		timing  = flag.Bool("t", false, "print timing summary to stderr")
		workers = flag.Int("workers", 0, "morsel pool size (0 = GOMAXPROCS)")
		morsels = flag.Int("morselrows", 0, "target records per scan morsel (0 = default 4096)")
		format  = flag.String("format", "tsv", "output format: tsv, csv, or ndjson")
		explain = flag.Bool("explain", false, "print the logical and physical plans (with zone-map fanout) instead of executing")
		analyze = flag.Bool("analyze", false, "with -explain: execute the query and report actual rows and timing per operator")
		timeout = flag.Duration("timeout", 0, "abort the query after this duration (0 = none)")
		noZone  = flag.Bool("nozone", false, "disable zone-map container pruning")
		noKern  = flag.Bool("nokernel", false, "disable vectorized filter kernels over compressed column blocks")
		fullDec = flag.Bool("fulldecode", false, "decode full record structs instead of selective column reads")
	)
	flag.Parse()
	q := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if q == "" {
		log.Fatal(`no query given; usage: skyquery -archive DIR "SELECT ..."`)
	}

	a, err := core.Create(*dir, core.Options{Workers: *workers, MorselRows: *morsels})
	if err != nil {
		log.Fatal(err)
	}
	a.Engine().NoZone = *noZone
	a.Engine().NoKernel = *noKern
	a.Engine().FullDecode = *fullDec

	if *explain {
		prep, err := a.Prepare(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("logical plan:")
		fmt.Print(prep.Explain())
		plan, err := a.Engine().PlanAnalyze(prep, *analyze)
		if err != nil {
			log.Fatal(err)
		}
		if *analyze {
			// EXPLAIN ANALYZE: run the query, discard rows, keep counters.
			rows, err := a.Engine().ExecutePlan(context.Background(), plan, qe.ExecOptions{
				Timeout: *timeout,
				Analyze: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			n := 0
			for b := range rows.C {
				n += len(b)
				qe.RecycleBatch(b)
			}
			if err := rows.Err(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("physical plan (analyzed, %d rows):\n", n)
		} else {
			fmt.Println("physical plan:")
		}
		fmt.Print(plan.Text())
		// Per-shard scatter + zone pruning: what the scan will actually
		// read versus what the zone maps proved empty.
		fanout, err := a.Engine().Fanout(prep)
		if err == nil {
			for _, fo := range fanout {
				fmt.Printf("scan %s: %d candidate containers, %d zone-pruned, %d scanned (per shard: %v)\n",
					fo.Table, fo.ContainersTotal, fo.ZonePruned, fo.ContainersScanned, fo.ContainersPerShard)
			}
		}
		return
	}

	start := time.Now()
	rows, err := a.QueryRows(context.Background(), q, core.QueryOptions{
		Limit:   *limit,
		Timeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	cols := rows.Columns()

	var emit func(r qe.Result)
	var finish func()
	switch *format {
	case "tsv":
		emit = func(r qe.Result) {
			fmt.Printf("%d", uint64(r.ObjID))
			for _, v := range r.Values {
				fmt.Printf("\t%g", v)
			}
			fmt.Println()
		}
		finish = func() {}
	case "csv":
		cw := csv.NewWriter(os.Stdout)
		header := make([]string, len(cols))
		for i, c := range cols {
			header[i] = c.Name
		}
		cw.Write(header)
		record := make([]string, len(cols))
		emit = func(r qe.Result) {
			for i, c := range cols {
				record[i] = formatValue(c, r.Values[i])
			}
			cw.Write(record)
		}
		finish = cw.Flush
	case "ndjson":
		emit = func(r qe.Result) {
			var b strings.Builder
			b.WriteByte('{')
			for i, c := range cols {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:%s", c.Name, jsonValue(c, r.Values[i]))
			}
			b.WriteByte('}')
			fmt.Println(b.String())
		}
		finish = func() {}
	default:
		log.Fatalf("unknown format %q (want tsv, csv, or ndjson)", *format)
	}

	var first time.Duration
	n := 0
	for batch := range rows.C {
		if first == 0 && len(batch) > 0 {
			first = time.Since(start)
		}
		for _, r := range batch {
			emit(r)
			n++
		}
		qe.RecycleBatch(batch)
	}
	finish()
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	if rows.Truncated() {
		fmt.Fprintf(os.Stderr, "truncated after %d rows\n", n)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "%d rows; first row after %v; complete after %v\n",
			n, first.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	}
}

// formatValue renders a value per its column type: IDs and ints exact,
// floats in shortest form.
func formatValue(c query.Column, v float64) string {
	switch c.Type {
	case query.TypeID:
		return strconv.FormatUint(uint64(v), 10)
	case query.TypeInt:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// jsonValue is formatValue for JSON output, where NaN and ±Inf are not
// valid tokens and render as null.
func jsonValue(c query.Column, v float64) string {
	if c.Type == query.TypeFloat && (math.IsNaN(v) || math.IsInf(v, 0)) {
		return "null"
	}
	return formatValue(c, v)
}
