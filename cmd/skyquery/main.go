// Command skyquery executes archive queries from the command line,
// streaming results as they arrive (the ASAP push made visible).
//
// Usage:
//
//	skyquery -archive archive/ "SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(185, 32, 10) AND r < 21"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sdss/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyquery: ")
	var (
		dir     = flag.String("archive", "archive", "archive directory")
		limit   = flag.Int("max", 0, "stop after this many rows (0 = all)")
		timing  = flag.Bool("t", false, "print timing summary to stderr")
		workers = flag.Int("workers", 0, "scan parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	q := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if q == "" {
		log.Fatal(`no query given; usage: skyquery -archive DIR "SELECT ..."`)
	}

	a, err := core.Create(*dir, core.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rows, err := a.Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	var first time.Duration
	n := 0
	for batch := range rows.C {
		if first == 0 && len(batch) > 0 {
			first = time.Since(start)
		}
		for _, r := range batch {
			fmt.Printf("%d", uint64(r.ObjID))
			for _, v := range r.Values {
				fmt.Printf("\t%g", v)
			}
			fmt.Println()
			n++
			if *limit > 0 && n >= *limit {
				rows.Close()
			}
		}
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "%d rows; first row after %v; complete after %v\n",
			n, first.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	}
}
