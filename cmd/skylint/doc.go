// Command skylint is the archive's project-specific static-analysis suite:
// eight analyzers that mechanically enforce the engine's convention-only
// invariants, from batch ownership to the morsel pool's deadlock
// discipline.
//
// # Analyzers
//
//	batchown    batch buffers are forwarded, returned, or recycled exactly
//	            once and never used afterwards; call verdicts come from the
//	            function-summary layer (a callee that keeps the batch
//	            transfers ownership, an inspect-only one does not).
//	rawoffset   record field access goes through the layout tables, never
//	            hand-computed byte offsets.
//	nansafe     attribute/sort-key float comparisons use the NaN-aware
//	            comparators; test entry points are exempt, shared test
//	            helpers are not.
//	dropmark    mid-production drop points set rows.interrupted before
//	            abandoning the stream, recognizing recycling helpers
//	            through their summaries.
//	ctxcancel   goroutine fan-out sends select on a cancellation signal;
//	            named-function spawns and calls inside spawned literals are
//	            judged by their summaries, and sends provably buffered to
//	            the fan-out width are exempt.
//	slotheld    no blocking operation while holding a morsel-pool slot —
//	            the pool's release-before-blocking discipline (morsel.go's
//	            blockingSend) as a checked property.
//	lockheld    no blocking operation or inconsistently-ordered second
//	            acquisition while holding a mutex; lock-order inversions
//	            report both witness sites.
//	enginecopy  structs transitively embedding sync primitives (qe.Engine
//	            foremost) are never copied by value; Engine.Clone is the
//	            sanctioned derivation path.
//
// # Function summaries
//
// The interprocedural layer computes per-function facts (may-block,
// unguarded-send, batch-parameter ownership, recycles) bottom-up over the
// call graph and carries them across package boundaries: the standalone
// driver processes packages in import order (optionally persisting
// artifacts with -sumdir so later runs and CI caches can reuse them), and
// the vettool driver serializes summaries through go vet's per-package
// .vetx facts files.
//
// # Usage
//
// It runs two ways, producing identical findings:
//
//	skylint ./...                            # standalone, from the module root
//	go vet -vettool=$(which skylint) ./...   # inside go vet
//
// Both exit nonzero when any finding survives the //lint:skylint-ignore
// suppressions. `skylint -list` documents the analyzers; `skylint -json`
// emits findings as NDJSON ({"file","line","col","analyzer","message"})
// for machine consumers such as the CI annotation step.
package main
