package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sdss/internal/lint/analysis"
	"sdss/internal/lint/batchown"
	"sdss/internal/lint/ctxcancel"
	"sdss/internal/lint/dropmark"
	"sdss/internal/lint/enginecopy"
	"sdss/internal/lint/lockheld"
	"sdss/internal/lint/nansafe"
	"sdss/internal/lint/rawoffset"
	"sdss/internal/lint/slotheld"
)

// analyzers is the skylint suite, in documentation order.
var analyzers = []*analysis.Analyzer{
	batchown.Analyzer,
	rawoffset.Analyzer,
	nansafe.Analyzer,
	dropmark.Analyzer,
	ctxcancel.Analyzer,
	slotheld.Analyzer,
	lockheld.Analyzer,
	enginecopy.Analyzer,
}

// finding is the NDJSON record -json emits, one per line.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	// go vet's -V=full / -flags / unit.cfg protocol takes priority; if the
	// arguments match it, VettoolMain exits the process itself.
	if analysis.VettoolMain(os.Args[1:], analyzers) {
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", "", "change to this directory (module root) before loading packages")
	sumdir := flag.String("sumdir", "", "directory for per-package function-summary artifacts (read and written)")
	asJSON := flag.Bool("json", false, "emit findings as NDJSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skylint [-list] [-json] [-C dir] [-sumdir dir] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, *sumdir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skylint:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, pkg := range pkgs {
		diags, err := pkg.Run(analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", pkg.ImportPath, err)
			os.Exit(1)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if *asJSON {
				if err := enc.Encode(finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "skylint:", err)
					os.Exit(1)
				}
			} else {
				fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			}
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "skylint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
