// Command skylint is the archive's project-specific static-analysis suite:
// five analyzers that mechanically enforce the engine's convention-only
// invariants (batch ownership, layout-mediated record access, NaN-safe
// comparisons, interrupted-marking at drop points, cancellable fan-out).
//
// It runs two ways, producing identical findings:
//
//	skylint ./...                      # standalone, from the module root
//	go vet -vettool=$(which skylint) ./...   # inside go vet
//
// Both exit nonzero when any finding survives the //lint:skylint-ignore
// suppressions. `skylint -list` documents the analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdss/internal/lint/analysis"
	"sdss/internal/lint/batchown"
	"sdss/internal/lint/ctxcancel"
	"sdss/internal/lint/dropmark"
	"sdss/internal/lint/nansafe"
	"sdss/internal/lint/rawoffset"
)

// analyzers is the skylint suite, in documentation order.
var analyzers = []*analysis.Analyzer{
	batchown.Analyzer,
	rawoffset.Analyzer,
	nansafe.Analyzer,
	dropmark.Analyzer,
	ctxcancel.Analyzer,
}

func main() {
	// go vet's -V=full / -flags / unit.cfg protocol takes priority; if the
	// arguments match it, VettoolMain exits the process itself.
	if analysis.VettoolMain(os.Args[1:], analyzers) {
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", "", "change to this directory (module root) before loading packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skylint [-list] [-C dir] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skylint:", err)
		os.Exit(1)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := pkg.Run(analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", pkg.ImportPath, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "skylint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
