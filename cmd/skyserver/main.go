// Command skyserver runs the archive's public WWW tier: HTTP endpoints for
// status, free-form queries, and cone searches over a loaded archive.
//
// Usage:
//
//	skyserver -archive archive/ -addr :8080
//	curl 'localhost:8080/cone?ra=185&dec=32&radius=10'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"sdss/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyserver: ")
	var (
		dir  = flag.String("archive", "archive", "archive directory")
		addr = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	a, err := core.Create(*dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := a.Stats()
	fmt.Printf("serving archive %s (%d objects, %d containers) on %s\n",
		*dir, st.PhotoObjects, st.Containers, *addr)
	fmt.Println("endpoints: /status /query?q=... /cone?ra=&dec=&radius=")
	log.Fatal(http.ListenAndServe(*addr, a.WWW()))
}
