// Command skyserver runs the archive's public WWW tier: the versioned /v1
// REST API for bounded interactive queries, schema discovery, cone
// searches, EXPLAIN, and asynchronous batch jobs over a loaded archive.
//
// Usage:
//
//	skyserver -archive archive/ -addr :8080
//	curl 'localhost:8080/v1/query?q=SELECT+objid,ra,dec,r+FROM+tag+WHERE+r+%3C+20&format=csv'
//	curl 'localhost:8080/v1/cone?ra=185&dec=32&radius=10'
//	curl -X POST localhost:8080/v1/jobs -d '{"query":"SELECT objid FROM photoobj"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sdss/internal/archive"
	"sdss/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyserver: ")
	var (
		dir        = flag.String("archive", "archive", "archive directory")
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.Int("shards", 0, "store shard slices (0 = adopt the archive's recorded count, else 1)")
		workers    = flag.Int("workers", 0, "morsel pool size (0 = GOMAXPROCS)")
		morsels    = flag.Int("morselrows", 0, "target records per scan morsel (0 = default 4096)")
		maxRows    = flag.Int("max-rows", 0, "interactive query row cap (0 = 10000)")
		maxTimeout = flag.Duration("max-timeout", 0, "interactive query time cap (0 = 30s)")
		jobs       = flag.Int("jobs", 0, "concurrent batch jobs (0 = 2)")
		jobQueue   = flag.Int("job-queue", 0, "batch admission queue depth (0 = 32)")
		jobTTL     = flag.Duration("job-ttl", 0, "finished job retention (0 = 15m)")
		noZone     = flag.Bool("nozone", false, "disable zone-map container pruning")
		noKern     = flag.Bool("nokernel", false, "disable vectorized filter kernels over compressed column blocks")
	)
	flag.Parse()

	a, err := core.Create(*dir, core.Options{Shards: *shards, Workers: *workers, MorselRows: *morsels})
	if err != nil {
		log.Fatal(err)
	}
	a.Engine().NoZone = *noZone
	a.Engine().NoKernel = *noKern
	www := archive.NewWWW(a.Engine())
	www.MaxRows = *maxRows
	www.MaxTimeout = *maxTimeout
	www.Jobs = archive.NewJobManager(a.Engine(), archive.JobConfig{
		MaxConcurrent: *jobs,
		MaxQueued:     *jobQueue,
		TTL:           *jobTTL,
	})

	st := a.Stats()
	fmt.Printf("serving archive %s (%d objects, %d containers, %d shards, %d zone-map bytes) on %s\n",
		*dir, st.PhotoObjects, st.Containers, st.Shards, st.ZoneMapBytes, *addr)
	fmt.Println("endpoints: /v1/status /v1/tables /v1/query /v1/explain[?analyze=1] /v1/cone /v1/jobs")
	srv := &http.Server{Addr: *addr, Handler: www.Handler(), ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}
