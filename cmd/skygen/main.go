// Command skygen generates a synthetic SDSS-like survey as blocked FITS
// chunk files — the stand-in for the telescope's calibrated output that the
// Operational Archive would export.
//
// Usage:
//
//	skygen -out chunks/ -n 100000 -chunks 10 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sdss/internal/load"
	"sdss/internal/skygen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skygen: ")
	var (
		out     = flag.String("out", "chunks", "output directory for FITS chunk files")
		n       = flag.Int("n", 100000, "total objects in the survey")
		nChunks = flag.Int("chunks", 10, "number of chunks (nights) to split the survey into")
		seed    = flag.Int64("seed", 1, "generator seed")
		packet  = flag.Int("packet", 1024, "rows per FITS stream packet")
		verify  = flag.Bool("verify", true, "read each chunk file back and check every row round-trips bit-identically")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	params := skygen.Default(*seed, *n)
	var totalObjs, totalSpec int
	for i := 0; i < *nChunks; i++ {
		ch, err := skygen.GenerateChunk(params, i, *nChunks)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("chunk%04d.fits", i))
		if err := load.WriteChunkFile(path, ch, *packet); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		if *verify {
			got, cst, err := load.ReadChunkFile(path)
			if err != nil {
				log.Fatalf("verifying %s: %v", path, err)
			}
			if len(cst.Warnings) > 0 {
				log.Fatalf("verifying %s: fresh chunk read back with warnings: %v", path, cst.Warnings)
			}
			if !got.EqualData(ch) {
				log.Fatalf("verifying %s: round trip mismatch (%d/%d photo, %d/%d spec rows)",
					path, len(got.Photo), len(ch.Photo), len(got.Spec), len(ch.Spec))
			}
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d objects, %d spectra, %d bytes\n",
			path, len(ch.Photo), len(ch.Spec), info.Size())
		totalObjs += len(ch.Photo)
		totalSpec += len(ch.Spec)
	}
	fmt.Printf("generated %d objects (%d spectra) in %d chunks under %s\n",
		totalObjs, totalSpec, *nChunks, *out)
}
