// Command skybench regenerates every table and figure of the paper plus its
// quantified performance claims, printing paper-versus-measured tables.
//
// Usage:
//
//	skybench                 # all experiments at the default 1e-4 scale
//	skybench -run E6,E7      # a subset
//	skybench -scale 1e-3     # ten times more data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sdss/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skybench: ")
	var (
		scale  = flag.Float64("scale", 1e-4, "fraction of the full 3e8-object survey to simulate")
		seed   = flag.Int64("seed", 1, "random seed")
		nodes  = flag.Int("nodes", 20, "simulated cluster width")
		shards = flag.Int("shards", 8, "shard slices for the scatter-gather experiment (E15)")
		run    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	all := expt.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	cfg := expt.Config{Scale: *scale, Seed: *seed, Nodes: *nodes, Shards: *shards}
	fmt.Printf("skybench: scale %g (%d objects), seed %d, %d nodes, %d shards\n",
		*scale, cfg.Objects(), *seed, *nodes, *shards)
	start := time.Now()
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if err := e.Run(cfg, os.Stdout); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
		}
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}
