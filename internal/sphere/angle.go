package sphere

import (
	"fmt"
	"math"
)

// Angular unit conversions. The archive API speaks degrees (and arcminutes /
// arcseconds for small separations, as astronomers do); internal geometry is
// all radians and unit vectors.
const (
	// Deg is one degree in radians.
	Deg = math.Pi / 180
	// Arcmin is one minute of arc in radians.
	Arcmin = Deg / 60
	// Arcsec is one second of arc in radians.
	Arcsec = Deg / 3600
)

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad / Deg }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * Deg }

// NormalizeRA reduces a right ascension in degrees to the range [0, 360).
func NormalizeRA(ra float64) float64 {
	ra = math.Mod(ra, 360)
	if ra < 0 {
		ra += 360
	}
	return ra
}

// ClampDec clamps a declination in degrees to [-90, +90]. Values outside the
// range arise from accumulated floating-point error at the poles.
func ClampDec(dec float64) float64 {
	if dec > 90 {
		return 90
	}
	if dec < -90 {
		return -90
	}
	return dec
}

// FormatHMS renders a right ascension in degrees as sexagesimal
// hours:minutes:seconds, e.g. "12:30:45.600".
func FormatHMS(raDeg float64) string {
	hours := NormalizeRA(raDeg) / 15
	h := int(hours)
	m := int((hours - float64(h)) * 60)
	s := (hours-float64(h))*3600 - float64(m)*60
	// Guard against 59.9996 rounding up to 60.000 in the print below.
	if s >= 59.9995 {
		s = 0
		m++
		if m == 60 {
			m = 0
			h = (h + 1) % 24
		}
	}
	return fmt.Sprintf("%02d:%02d:%06.3f", h, m, s)
}

// FormatDMS renders a declination in degrees as sexagesimal
// degrees:minutes:seconds with explicit sign, e.g. "+27:07:41.70".
func FormatDMS(decDeg float64) string {
	sign := "+"
	if decDeg < 0 {
		sign = "-"
		decDeg = -decDeg
	}
	d := int(decDeg)
	m := int((decDeg - float64(d)) * 60)
	s := (decDeg-float64(d))*3600 - float64(m)*60
	if s >= 59.995 {
		s = 0
		m++
		if m == 60 {
			m = 0
			d++
		}
	}
	return fmt.Sprintf("%s%02d:%02d:%05.2f", sign, d, m, s)
}

// ParseHMS parses sexagesimal hours "hh:mm:ss.sss" into degrees of right
// ascension.
func ParseHMS(s string) (float64, error) {
	var h, m int
	var sec float64
	if _, err := fmt.Sscanf(s, "%d:%d:%f", &h, &m, &sec); err != nil {
		return 0, fmt.Errorf("sphere: parsing %q as HMS: %w", s, err)
	}
	if h < 0 || h > 23 || m < 0 || m > 59 || sec < 0 || sec >= 60 {
		return 0, fmt.Errorf("sphere: HMS %q out of range", s)
	}
	return (float64(h) + float64(m)/60 + sec/3600) * 15, nil
}

// ParseDMS parses sexagesimal degrees "±dd:mm:ss.ss" into degrees of
// declination.
func ParseDMS(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("sphere: empty DMS string")
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	var d, m int
	var sec float64
	if _, err := fmt.Sscanf(s, "%d:%d:%f", &d, &m, &sec); err != nil {
		return 0, fmt.Errorf("sphere: parsing %q as DMS: %w", s, err)
	}
	if d < 0 || d > 90 || m < 0 || m > 59 || sec < 0 || sec >= 60 {
		return 0, fmt.Errorf("sphere: DMS %q out of range", s)
	}
	deg := float64(d) + float64(m)/60 + sec/3600
	if neg {
		deg = -deg
	}
	if deg < -90 || deg > 90 {
		return 0, fmt.Errorf("sphere: DMS %q out of range", s)
	}
	return deg, nil
}
