package sphere

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDotCrossIdentities(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Dot(b); !approx(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v, want %v", got, 7.5)
	}
	c := a.Cross(b)
	// Cross product is orthogonal to both operands.
	if !approx(c.Dot(a), 0, 1e-9) || !approx(c.Dot(b), 0, 1e-9) {
		t.Errorf("cross product not orthogonal: c·a=%v c·b=%v", c.Dot(a), c.Dot(b))
	}
	// Anticommutative.
	d := b.Cross(a)
	if !approx(c.X, -d.X, eps) || !approx(c.Y, -d.Y, eps) || !approx(c.Z, -d.Z, eps) {
		t.Errorf("cross not anticommutative: %v vs %v", c, d)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if !v.IsUnit(eps) {
		t.Fatalf("Normalize did not produce unit vector: %v", v)
	}
	if !approx(v.X, 0.6, eps) || !approx(v.Y, 0.8, eps) {
		t.Errorf("Normalize = %v, want (0.6, 0.8, 0)", v)
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("Normalize(0) = %v, want zero vector", z)
	}
}

func TestAngleRobustness(t *testing.T) {
	a := Vec3{1, 0, 0}
	cases := []struct {
		b    Vec3
		want float64
	}{
		{Vec3{1, 0, 0}, 0},
		{Vec3{0, 1, 0}, math.Pi / 2},
		{Vec3{-1, 0, 0}, math.Pi},
		{Vec3{0, 0, 1}, math.Pi / 2},
	}
	for _, c := range cases {
		if got := a.Angle(c.b); !approx(got, c.want, 1e-12) {
			t.Errorf("Angle(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
	// Tiny angles: acos would lose all precision here, Angle must not.
	tiny := 1e-8 // radians
	b := FromRADec(Degrees(tiny), 0)
	if got := a.Angle(b); !approx(got, tiny, tiny*1e-4) {
		t.Errorf("tiny Angle = %g, want %g", got, tiny)
	}
}

func TestMidpoint(t *testing.T) {
	a := FromRADec(0, 0)
	b := FromRADec(90, 0)
	m := a.Midpoint(b)
	ra, dec := ToRADec(m)
	if !approx(ra, 45, 1e-9) || !approx(dec, 0, 1e-9) {
		t.Errorf("Midpoint = (%v, %v), want (45, 0)", ra, dec)
	}
	// Antipodal midpoint must still return a unit vector.
	anti := a.Midpoint(a.Neg())
	if !anti.IsUnit(1e-9) {
		t.Errorf("antipodal Midpoint not unit: %v", anti)
	}
}

func TestOrthogonal(t *testing.T) {
	vs := []Vec3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}, {-0.3, 2, -7}}
	for _, v := range vs {
		o := v.Orthogonal()
		if !o.IsUnit(1e-9) {
			t.Errorf("Orthogonal(%v) not unit: %v", v, o)
		}
		if !approx(o.Dot(v.Normalize()), 0, 1e-9) {
			t.Errorf("Orthogonal(%v) not orthogonal: dot=%v", v, o.Dot(v))
		}
	}
}

func TestRotationMatrices(t *testing.T) {
	// Rz(90°) maps x onto y.
	v := RotationZ(math.Pi / 2).MulVec(Vec3{1, 0, 0})
	if !approx(v.X, 0, eps) || !approx(v.Y, 1, eps) {
		t.Errorf("Rz(90°)·x = %v, want y", v)
	}
	// Rotations are orthogonal: R·Rᵀ = I.
	r := RotationZ(0.3).Mul(RotationY(1.1)).Mul(RotationX(-0.7))
	id := r.Mul(r.Transpose())
	want := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(id[i][j], want[i][j], 1e-12) {
				t.Fatalf("R·Rᵀ ≠ I at (%d,%d): %v", i, j, id[i][j])
			}
		}
	}
}

func TestCartesianConeEquivalence(t *testing.T) {
	// The Cartesian cone test (dot ≥ cos r) must agree with the
	// trigonometric distance for random point pairs. This is the
	// correctness side of experiment E12.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		ra1, dec1 := rng.Float64()*360, rng.Float64()*180-90
		ra2, dec2 := rng.Float64()*360, rng.Float64()*180-90
		v1, v2 := FromRADec(ra1, dec1), FromRADec(ra2, dec2)
		radius := rng.Float64() * math.Pi
		cart := CosDist(v1, v2) >= math.Cos(radius)
		trig := TrigDist(Radians(ra1), Radians(dec1), Radians(ra2), Radians(dec2)) <= radius
		if cart != trig {
			// Allow disagreement only within floating point slack of
			// the boundary.
			d := Dist(v1, v2)
			if math.Abs(d-radius) > 1e-9 {
				t.Fatalf("cone test mismatch: d=%v r=%v cart=%v trig=%v", d, radius, cart, trig)
			}
		}
	}
}

func TestQuickAngleSymmetry(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := FromRADec(NormalizeRA(ra1), ClampDec(math.Mod(dec1, 90)))
		b := FromRADec(NormalizeRA(ra2), ClampDec(math.Mod(dec2, 90)))
		d1, d2 := a.Angle(b), b.Angle(a)
		return approx(d1, d2, 1e-12) && d1 >= 0 && d1 <= math.Pi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVec := func() Vec3 {
		return FromRADec(rng.Float64()*360, Degrees(math.Asin(2*rng.Float64()-1)))
	}
	for i := 0; i < 500; i++ {
		a, b, c := randVec(), randVec(), randVec()
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}
