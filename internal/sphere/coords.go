package sphere

import (
	"fmt"
	"math"
)

// Frame identifies a celestial coordinate system. The paper stores positions
// as Cartesian unit vectors precisely so that "combination of constraints in
// arbitrary spherical coordinate systems become particularly simple": a
// latitude band in any frame is a pair of half-space tests against that
// frame's pole vector.
type Frame int

const (
	// Equatorial is the J2000 equatorial system (right ascension,
	// declination). It is the native frame: unit vectors returned by
	// FromRADec are equatorial.
	Equatorial Frame = iota
	// Galactic is the IAU 1958 galactic system (l, b).
	Galactic
	// Supergalactic is the de Vaucouleurs supergalactic system (SGL, SGB).
	Supergalactic
	// Ecliptic is the J2000 ecliptic system (ecliptic longitude, latitude).
	Ecliptic
)

// String returns the conventional name of the frame.
func (f Frame) String() string {
	switch f {
	case Equatorial:
		return "Equatorial"
	case Galactic:
		return "Galactic"
	case Supergalactic:
		return "Supergalactic"
	case Ecliptic:
		return "Ecliptic"
	default:
		return fmt.Sprintf("Frame(%d)", int(f))
	}
}

// Frames lists all supported coordinate systems.
func Frames() []Frame {
	return []Frame{Equatorial, Galactic, Supergalactic, Ecliptic}
}

// J2000 orientation constants.
const (
	// Galactic frame (IAU 1958, J2000 values): equatorial position of the
	// north galactic pole and the position angle of the galactic center.
	ngpRA  = 192.85948 // deg, RA of north galactic pole
	ngpDec = 27.12825  // deg, Dec of north galactic pole
	lNCP   = 122.93192 // deg, galactic longitude of the north celestial pole

	// Supergalactic frame (de Vaucouleurs), defined relative to galactic
	// coordinates: north supergalactic pole at l=47.37°, b=+6.32°; the zero
	// of supergalactic longitude is at galactic l=137.37°, b=0°.
	sgpL   = 47.37  // deg, galactic longitude of north supergalactic pole
	sgpB   = 6.32   // deg, galactic latitude of north supergalactic pole
	sglZed = 137.37 // deg, galactic longitude of SGL=0 point

	// Obliquity of the ecliptic, J2000.
	obliquity = 23.4392911 // deg
)

// FromRADec converts equatorial right ascension and declination in degrees
// to a unit vector in the equatorial frame.
func FromRADec(raDeg, decDeg float64) Vec3 {
	ra, dec := Radians(raDeg), Radians(decDeg)
	cd := math.Cos(dec)
	return Vec3{
		X: cd * math.Cos(ra),
		Y: cd * math.Sin(ra),
		Z: math.Sin(dec),
	}
}

// ToRADec converts an equatorial unit vector to right ascension and
// declination in degrees, with RA normalized to [0, 360).
func ToRADec(v Vec3) (raDeg, decDeg float64) {
	raDeg = NormalizeRA(Degrees(math.Atan2(v.Y, v.X)))
	// Clamp to avoid NaN from |z| marginally above 1.
	z := v.Z
	if z > 1 {
		z = 1
	} else if z < -1 {
		z = -1
	}
	decDeg = Degrees(math.Asin(z))
	return raDeg, decDeg
}

// FromLonLat converts longitude and latitude in degrees, interpreted in the
// given frame, to a unit vector in the equatorial frame.
func FromLonLat(f Frame, lonDeg, latDeg float64) Vec3 {
	v := FromRADec(lonDeg, latDeg) // vector in frame f's own axes
	return FrameToEquatorial(f).MulVec(v)
}

// ToLonLat converts an equatorial unit vector to longitude and latitude in
// degrees in the given frame.
func ToLonLat(f Frame, v Vec3) (lonDeg, latDeg float64) {
	return ToRADec(EquatorialToFrame(f).MulVec(v))
}

// Pole returns the unit vector (in equatorial coordinates) of the north pole
// of the given frame. Latitude-band constraints in frame f are half-space
// tests against this vector: lat ≥ b ⇔ v·Pole(f) ≥ sin(b).
func Pole(f Frame) Vec3 {
	return FrameToEquatorial(f).MulVec(Vec3{0, 0, 1})
}

var (
	eqToGal Matrix3
	eqToSG  Matrix3
	eqToEcl Matrix3
	galToEq Matrix3
	sgToEq  Matrix3
	eclToEq Matrix3
)

func init() {
	// Equatorial → Galactic: Rz(lNCP reversed) · Rx-style composition via
	// the standard ZYZ Euler rotation: rotate RA of pole onto x-z plane,
	// tilt pole onto +z, then spin so the NCP lands at longitude lNCP.
	eqToGal = rotationFromPole(ngpRA, ngpDec, lNCP)
	galToEq = eqToGal.Transpose()

	// Galactic → Supergalactic uses the same construction in galactic
	// coordinates. The longitude of the galactic north pole in
	// supergalactic coordinates follows from the SGL zero point: the
	// SGL=0 direction is at galactic (137.37°, 0°). Build the matrix from
	// the pole and zero-point directly.
	galToSG := rotationFromPoleAndZero(
		FromRADec(sgpL, sgpB),
		FromRADec(sglZed, 0),
	)
	eqToSG = galToSG.Mul(eqToGal)
	sgToEq = eqToSG.Transpose()

	// Equatorial → Ecliptic is a single rotation about the x axis
	// (the vernal equinox direction) by the obliquity.
	eqToEcl = RotationX(-Radians(obliquity))
	eclToEq = eqToEcl.Transpose()
}

// rotationFromPole builds the rotation taking equatorial vectors into a
// frame whose north pole sits at equatorial (poleRA, poleDec) and in which
// the north celestial pole has longitude lonOfNCP. This is the classical
// construction used for the galactic system.
func rotationFromPole(poleRA, poleDec, lonOfNCP float64) Matrix3 {
	// ZYZ Euler angles: first rotate about z by poleRA so the new pole
	// lies in the x-z plane, then about y by (90° - poleDec) to bring the
	// pole to +z, then about z to set the longitude origin.
	r1 := RotationZ(-Radians(poleRA))
	r2 := RotationY(-Radians(90 - poleDec))
	// After r1·r2 the north celestial pole sits at longitude 180° in the
	// new frame; spin about z so it lands at lonOfNCP.
	r3 := RotationZ(Radians(lonOfNCP - 180))
	return r3.Mul(r2).Mul(r1)
}

// rotationFromPoleAndZero builds the rotation taking vectors into a frame
// with the given north pole and longitude-zero direction (both expressed in
// the source frame). The zero direction need not be exactly orthogonal to
// the pole; it is orthogonalized.
func rotationFromPoleAndZero(pole, zero Vec3) Matrix3 {
	zAxis := pole.Normalize()
	// Orthogonalize the zero direction against the pole.
	xAxis := zero.Sub(zAxis.Scale(zero.Dot(zAxis))).Normalize()
	yAxis := zAxis.Cross(xAxis)
	return Matrix3{
		{xAxis.X, xAxis.Y, xAxis.Z},
		{yAxis.X, yAxis.Y, yAxis.Z},
		{zAxis.X, zAxis.Y, zAxis.Z},
	}
}

// EquatorialToFrame returns the rotation matrix from equatorial axes to the
// axes of frame f.
func EquatorialToFrame(f Frame) Matrix3 {
	switch f {
	case Equatorial:
		return Identity3()
	case Galactic:
		return eqToGal
	case Supergalactic:
		return eqToSG
	case Ecliptic:
		return eqToEcl
	default:
		panic(fmt.Sprintf("sphere: unknown frame %d", int(f)))
	}
}

// FrameToEquatorial returns the rotation matrix from the axes of frame f to
// equatorial axes.
func FrameToEquatorial(f Frame) Matrix3 {
	switch f {
	case Equatorial:
		return Identity3()
	case Galactic:
		return galToEq
	case Supergalactic:
		return sgToEq
	case Ecliptic:
		return eclToEq
	default:
		panic(fmt.Sprintf("sphere: unknown frame %d", int(f)))
	}
}

// Convert transforms lon/lat in degrees from one frame to another.
func Convert(from, to Frame, lonDeg, latDeg float64) (outLon, outLat float64) {
	return ToLonLat(to, FromLonLat(from, lonDeg, latDeg))
}
