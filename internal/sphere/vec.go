// Package sphere provides the spherical geometry substrate for the SDSS
// archive: three-dimensional unit vectors for positions on the celestial
// sphere, angular arithmetic, rotation matrices, and transformations between
// the celestial coordinate systems (Equatorial, Galactic, Supergalactic,
// Ecliptic).
//
// Following the paper ("Indexing the Sky"), angular coordinates are stored in
// Cartesian form: a triplet of x, y, z values per object, the unit normal
// vector pointing at the object. Spherical constraints then become linear
// tests on the three coordinates — a dot product against a plane normal —
// instead of trigonometric expressions.
package sphere

import (
	"fmt"
	"math"
)

// Vec3 is a vector in three-dimensional space. Positions on the celestial
// sphere are represented as unit vectors (x² + y² + z² = 1). The zero value
// is the zero vector, which does not represent a sky position.
type Vec3 struct {
	X, Y, Z float64
}

// Dot returns the scalar product v·w.
func (v Vec3) Dot(w Vec3) float64 {
	return v.X*w.X + v.Y*w.Y + v.Z*w.Z
}

// Cross returns the vector product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 {
	return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z}
}

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 {
	return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z}
}

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 {
	return Vec3{v.X * s, v.Y * s, v.Z * s}
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 {
	return Vec3{-v.X, -v.Y, -v.Z}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Normalize returns v scaled to unit length. Normalizing the zero vector
// returns the zero vector.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// IsUnit reports whether v is a unit vector to within tolerance eps.
func (v Vec3) IsUnit(eps float64) bool {
	return math.Abs(v.Dot(v)-1) <= eps
}

// Angle returns the angle between v and w in radians, in [0, π].
// It is numerically robust for nearly parallel and nearly antiparallel
// vectors, where acos of the dot product loses precision: it uses
// atan2(|v×w|, v·w) instead.
func (v Vec3) Angle(w Vec3) float64 {
	cross := v.Cross(w).Norm()
	dot := v.Dot(w)
	return math.Atan2(cross, dot)
}

// Midpoint returns the normalized midpoint of the great-circle arc between
// unit vectors v and w. For antipodal points the midpoint is undefined and
// an arbitrary perpendicular unit vector is returned.
func (v Vec3) Midpoint(w Vec3) Vec3 {
	m := v.Add(w)
	if m.Norm() < 1e-12 {
		// Antipodal: pick any vector orthogonal to v.
		return v.Orthogonal()
	}
	return m.Normalize()
}

// Orthogonal returns a unit vector orthogonal to v. For the zero vector it
// returns the x unit vector.
func (v Vec3) Orthogonal() Vec3 {
	// Cross v with the axis it is least aligned with.
	ax, ay, az := math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)
	var axis Vec3
	switch {
	case ax <= ay && ax <= az:
		axis = Vec3{1, 0, 0}
	case ay <= az:
		axis = Vec3{0, 1, 0}
	default:
		axis = Vec3{0, 0, 1}
	}
	o := v.Cross(axis)
	if o.Norm() == 0 {
		return Vec3{1, 0, 0}
	}
	return o.Normalize()
}

// String renders v with enough precision for debugging.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.9f, %.9f, %.9f)", v.X, v.Y, v.Z)
}

// Dist returns the angular distance between two unit vectors in radians.
// It is an alias for Angle with the conventional name used in catalogs.
func Dist(a, b Vec3) float64 { return a.Angle(b) }

// CosDist returns the cosine of the angular distance between a and b, i.e.
// their dot product. Comparing CosDist against a precomputed cos(radius) is
// the Cartesian fast path for cone tests that the paper advocates: three
// multiplications and two additions per object instead of trigonometry.
func CosDist(a, b Vec3) float64 { return a.Dot(b) }

// TrigDist returns the angular distance in radians between two points given
// as (ra, dec) in radians, computed with the haversine formula on spherical
// coordinates. It exists as the baseline for the Cartesian-versus-
// trigonometry experiment (E12); library code should use Dist on unit
// vectors instead.
func TrigDist(ra1, dec1, ra2, dec2 float64) float64 {
	sdd := math.Sin((dec2 - dec1) / 2)
	sdr := math.Sin((ra2 - ra1) / 2)
	h := sdd*sdd + math.Cos(dec1)*math.Cos(dec2)*sdr*sdr
	if h > 1 {
		h = 1
	}
	return 2 * math.Asin(math.Sqrt(h))
}

// Matrix3 is a 3×3 matrix in row-major order, used for rotations between
// celestial coordinate frames.
type Matrix3 [3][3]float64

// Identity3 returns the identity matrix.
func Identity3() Matrix3 {
	return Matrix3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec applies the matrix to a vector.
func (m Matrix3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		Y: m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		Z: m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Matrix3) Mul(n Matrix3) Matrix3 {
	var r Matrix3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][0]*n[0][j] + m[i][1]*n[1][j] + m[i][2]*n[2][j]
		}
	}
	return r
}

// Transpose returns the transpose of m. For rotation matrices the transpose
// is the inverse, which is how reverse coordinate transformations are built.
func (m Matrix3) Transpose() Matrix3 {
	var r Matrix3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// RotationZ returns the matrix rotating vectors by angle radians about the
// z axis (counterclockwise looking down +z).
func RotationZ(angle float64) Matrix3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Matrix3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

// RotationY returns the matrix rotating vectors by angle radians about the
// y axis.
func RotationY(angle float64) Matrix3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Matrix3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotationX returns the matrix rotating vectors by angle radians about the
// x axis.
func RotationX(angle float64) Matrix3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Matrix3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}
