package sphere

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromToRADec(t *testing.T) {
	cases := []struct{ ra, dec float64 }{
		{0, 0}, {90, 0}, {180, 0}, {270, 0},
		{0, 90}, {0, -90}, {123.456, -54.321}, {359.999, 89.9},
	}
	for _, c := range cases {
		v := FromRADec(c.ra, c.dec)
		if !v.IsUnit(1e-12) {
			t.Fatalf("FromRADec(%v,%v) not unit", c.ra, c.dec)
		}
		ra, dec := ToRADec(v)
		if !approx(dec, c.dec, 1e-9) {
			t.Errorf("dec round trip: got %v want %v", dec, c.dec)
		}
		// RA is undefined at the poles.
		if math.Abs(c.dec) < 89.9999 && !approx(ra, c.ra, 1e-9) {
			t.Errorf("ra round trip: got %v want %v", ra, c.ra)
		}
	}
}

func TestGalacticPole(t *testing.T) {
	// The north galactic pole must map to galactic latitude +90.
	_, b := ToLonLat(Galactic, FromRADec(ngpRA, ngpDec))
	if !approx(b, 90, 1e-6) {
		t.Errorf("NGP galactic latitude = %v, want 90", b)
	}
	// The galactic center (l=0, b=0) is at approximately
	// RA 266.405, Dec -28.936 (J2000, Sgr A* region).
	v := FromLonLat(Galactic, 0, 0)
	ra, dec := ToRADec(v)
	if !approx(ra, 266.405, 0.01) || !approx(dec, -28.936, 0.01) {
		t.Errorf("galactic center at (%.3f, %.3f), want (266.405, -28.936)", ra, dec)
	}
	// The north celestial pole has galactic longitude lNCP.
	l, _ := ToLonLat(Galactic, Vec3{0, 0, 1})
	if !approx(l, lNCP, 1e-6) {
		t.Errorf("NCP galactic longitude = %v, want %v", l, lNCP)
	}
}

func TestSupergalacticDefinition(t *testing.T) {
	// The supergalactic pole is at galactic (47.37, +6.32).
	sgPoleGal := FromLonLat(Galactic, sgpL, sgpB)
	_, sgb := ToLonLat(Supergalactic, sgPoleGal)
	if !approx(sgb, 90, 1e-6) {
		t.Errorf("SGP supergalactic latitude = %v, want 90", sgb)
	}
	// The SGL origin is at galactic (137.37, 0).
	zero := FromLonLat(Galactic, sglZed, 0)
	sgl, sgbZ := ToLonLat(Supergalactic, zero)
	if !approx(NormalizeRA(sgl), 0, 1e-6) && !approx(NormalizeRA(sgl), 360, 1e-6) {
		t.Errorf("SGL of zero point = %v, want 0", sgl)
	}
	if !approx(sgbZ, 0, 1e-6) {
		t.Errorf("SGB of zero point = %v, want 0", sgbZ)
	}
}

func TestEclipticObliquity(t *testing.T) {
	// The north ecliptic pole is at RA 270, Dec 90-obliquity.
	ra, dec := ToRADec(Pole(Ecliptic))
	if !approx(ra, 270, 1e-9) || !approx(dec, 90-obliquity, 1e-9) {
		t.Errorf("ecliptic pole at (%v, %v), want (270, %v)", ra, dec, 90-obliquity)
	}
	// The vernal equinox (RA=0, Dec=0) has ecliptic lon/lat (0, 0).
	lon, lat := ToLonLat(Ecliptic, FromRADec(0, 0))
	if !approx(lon, 0, 1e-9) || !approx(lat, 0, 1e-9) {
		t.Errorf("vernal equinox ecliptic = (%v, %v), want (0, 0)", lon, lat)
	}
}

func TestFrameRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, f := range Frames() {
		for i := 0; i < 300; i++ {
			ra := rng.Float64() * 360
			dec := Degrees(math.Asin(2*rng.Float64() - 1))
			lon, lat := Convert(Equatorial, f, ra, dec)
			ra2, dec2 := Convert(f, Equatorial, lon, lat)
			v1, v2 := FromRADec(ra, dec), FromRADec(ra2, dec2)
			if d := Dist(v1, v2); d > 1e-9 {
				t.Fatalf("%v round trip moved point by %v rad (ra=%v dec=%v)", f, d, ra, dec)
			}
		}
	}
}

func TestTransformsPreserveAngles(t *testing.T) {
	// Rotations must preserve angular distances between all point pairs.
	rng := rand.New(rand.NewSource(3))
	for _, f := range Frames() {
		m := EquatorialToFrame(f)
		for i := 0; i < 200; i++ {
			a := FromRADec(rng.Float64()*360, Degrees(math.Asin(2*rng.Float64()-1)))
			b := FromRADec(rng.Float64()*360, Degrees(math.Asin(2*rng.Float64()-1)))
			if d1, d2 := Dist(a, b), Dist(m.MulVec(a), m.MulVec(b)); !approx(d1, d2, 1e-9) {
				t.Fatalf("%v transform changed distance: %v vs %v", f, d1, d2)
			}
		}
	}
}

func TestPoleBandHalfspaceEquivalence(t *testing.T) {
	// The paper's claim: a latitude constraint in any frame is a linear
	// half-space test. Verify lat(v) ≥ b ⇔ v·Pole(f) ≥ sin(b).
	rng := rand.New(rand.NewSource(11))
	for _, f := range Frames() {
		pole := Pole(f)
		for i := 0; i < 500; i++ {
			v := FromRADec(rng.Float64()*360, Degrees(math.Asin(2*rng.Float64()-1)))
			bDeg := rng.Float64()*180 - 90
			_, lat := ToLonLat(f, v)
			direct := lat >= bDeg
			halfspace := v.Dot(pole) >= math.Sin(Radians(bDeg))
			if direct != halfspace {
				if math.Abs(lat-bDeg) > 1e-7 {
					t.Fatalf("%v: halfspace test disagrees at lat=%v b=%v", f, lat, bDeg)
				}
			}
		}
	}
}

func TestSexagesimal(t *testing.T) {
	if got := FormatHMS(187.5); got != "12:30:00.000" {
		t.Errorf("FormatHMS(187.5) = %q", got)
	}
	if got := FormatDMS(-12.51); got != "-12:30:36.00" {
		t.Errorf("FormatDMS(-12.51) = %q", got)
	}
	ra, err := ParseHMS("12:30:00.000")
	if err != nil || !approx(ra, 187.5, 1e-9) {
		t.Errorf("ParseHMS = %v, %v", ra, err)
	}
	dec, err := ParseDMS("-12:30:36.00")
	if err != nil || !approx(dec, -12.51, 1e-9) {
		t.Errorf("ParseDMS = %v, %v", dec, err)
	}
	for _, bad := range []string{"", "25:00:00", "12:61:00", "xx", "+91:00:00"} {
		if _, err := ParseDMS(bad); err == nil && bad != "25:00:00" {
			t.Errorf("ParseDMS(%q) succeeded, want error", bad)
		}
	}
	if _, err := ParseHMS("25:00:00"); err == nil {
		t.Errorf("ParseHMS(25:00:00) succeeded, want error")
	}
	// Round trips at random coordinates.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		ra := rng.Float64() * 360
		dec := rng.Float64()*180 - 90
		ra2, err := ParseHMS(FormatHMS(ra))
		if err != nil || !approx(ra2, ra, 1e-2) {
			t.Fatalf("HMS round trip: %v -> %v (%v)", ra, ra2, err)
		}
		dec2, err := ParseDMS(FormatDMS(dec))
		if err != nil || !approx(dec2, dec, 1e-2) {
			t.Fatalf("DMS round trip: %v -> %v (%v)", dec, dec2, err)
		}
	}
}
