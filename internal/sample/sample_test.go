package sample

import (
	"context"
	"math"
	"testing"

	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/skygen"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1.5} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%v) succeeded", bad)
		}
	}
	if _, err := New(0.01); err != nil {
		t.Fatal(err)
	}
}

func TestKeepDeterministicAndUniform(t *testing.T) {
	s, err := New(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic.
	for id := uint64(0); id < 100; id++ {
		if s.Keep(id) != s.Keep(id) {
			t.Fatal("Keep not deterministic")
		}
	}
	// Uniform at ~1% over sequential IDs (the adversarial case for a weak
	// hash).
	const n = 200000
	kept := 0
	for id := uint64(0); id < n; id++ {
		if s.Keep(id) {
			kept++
		}
	}
	got := float64(kept) / n
	if math.Abs(got-0.01) > 0.002 {
		t.Errorf("kept fraction %v, want ~0.01", got)
	}
}

func TestSubsetAndScaledEstimates(t *testing.T) {
	photo, spec, err := skygen.GenerateAll(skygen.Default(1, 30000), 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	s, err := New(0.05)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.SubsetSharded(tgt.Photo)
	if err != nil {
		t.Fatal(err)
	}
	// Size must be ~5%.
	frac := float64(sub.NumRecords()) / float64(tgt.Photo.NumRecords())
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("sample holds %.3f of records, want ~0.05", frac)
	}
	// Byte shrinkage matches record shrinkage.
	if sub.Bytes() >= tgt.Photo.Bytes()/10 {
		t.Errorf("sample bytes %d not ≪ full %d", sub.Bytes(), tgt.Photo.Bytes())
	}

	// Debugging workflow: a selectivity estimate on the sample must agree
	// with the full answer after scaling.
	full := &qe.Engine{Photo: tgt.Photo}
	sampled := &qe.Engine{Photo: sub}
	// A broad query so the sampled count is large enough for a tight
	// estimate (σ ≈ 1/√n of the sampled matches).
	q := "SELECT COUNT(*) FROM photoobj WHERE r < 22.5"
	count := func(e *qe.Engine) float64 {
		rows, err := e.ExecuteString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Values[0]
	}
	fullCount := count(full)
	est := s.ScaleCount(count(sampled))
	if fullCount == 0 {
		t.Fatal("empty full count; bad test query")
	}
	if rel := math.Abs(est-fullCount) / fullCount; rel > 0.15 {
		t.Errorf("sample estimate %v vs full %v (rel err %.2f)", est, fullCount, rel)
	}
}

func TestSampleConsistentAcrossTables(t *testing.T) {
	// The same ObjID must be sampled identically everywhere — the property
	// that lets a desktop hold matching photo and tag subsets.
	s, err := New(0.1)
	if err != nil {
		t.Fatal(err)
	}
	photo, spec, err := skygen.GenerateAll(skygen.Default(3, 5000), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	subPhoto, err := s.SubsetSharded(tgt.Photo)
	if err != nil {
		t.Fatal(err)
	}
	subTag, err := s.SubsetSharded(tgt.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if subPhoto.NumRecords() != subTag.NumRecords() {
		t.Errorf("photo sample %d records, tag sample %d — identity sampling broken",
			subPhoto.NumRecords(), subTag.NumRecords())
	}
}
