// Package sample implements the paper's desktop-analysis aids: deterministic
// random subsets ("we also plan to offer a 1% sample (about 10 GB) of the
// whole database that can be used to quickly test and debug programs") and
// the arithmetic for scaling sampled answers back to the full survey.
//
// Sampling is by object identity, not by position: the decision is a hash
// of the ObjID, so the same object is in or out of the sample in every
// table, across machines, forever — "combining partitioning and sampling
// converts a 2 TB data set into 2 gigabytes, which can fit comfortably on
// desktop workstations."
package sample

import (
	"fmt"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/store"
)

// denominator of the sampling hash: parts per million.
const ppmScale = 1_000_000

// Sampler selects a deterministic pseudo-random fraction of objects.
type Sampler struct {
	ppm  uint64 // selected parts per million
	frac float64
}

// New creates a sampler keeping approximately frac (0 < frac ≤ 1) of all
// objects.
func New(frac float64) (*Sampler, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sample: fraction %v outside (0, 1]", frac)
	}
	return &Sampler{ppm: uint64(frac * ppmScale), frac: frac}, nil
}

// Fraction returns the sampling fraction.
func (s *Sampler) Fraction() float64 { return s.frac }

// Keep reports whether the object with the given ID is in the sample.
// The decision is a splitmix64 hash of the ID, uniform and stateless.
func (s *Sampler) Keep(objID uint64) bool {
	x := objID + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x%ppmScale < s.ppm
}

// ScaleCount converts a count measured on the sample to a full-survey
// estimate.
func (s *Sampler) ScaleCount(sampleCount float64) float64 {
	return sampleCount / s.frac
}

// recordStore is the scan-and-load surface subsetting needs; store.Store
// and store.Sharded both satisfy it.
type recordStore interface {
	Scan(coverage *htm.RangeSet, fineFilter bool, fn func(rec []byte) error) error
	KeyOf(rec []byte) htm.ID
	BulkLoad(recs []store.Record) error
}

// SubsetSharded builds a new memory sharded store (same slice count as
// src) holding only the sampled records. The shard key is a pure function
// of the container trixel, so the sample's partition matches the source's:
// shard i of the sample holds exactly the sampled records of shard i.
func (s *Sampler) SubsetSharded(src *store.Sharded) (*store.Sharded, error) {
	opts := src.Options()
	opts.Dir = "" // samples live in memory (or on the astronomer's laptop)
	dst, err := store.OpenSharded(opts, src.NumShards())
	if err != nil {
		return nil, err
	}
	return dst, s.subsetInto(src, dst)
}

// Subset builds a new memory store holding only the sampled records from
// src. Records must carry their ObjID as a little-endian uint64 at offset 0
// (true of every catalog record type).
func (s *Sampler) Subset(src *store.Store) (*store.Store, error) {
	opts := src.Options()
	opts.Dir = "" // samples live in memory (or on the astronomer's laptop)
	dst, err := store.Open(opts)
	if err != nil {
		return nil, err
	}
	return dst, s.subsetInto(src, dst)
}

// subsetInto streams the sampled records of src into dst in 4096-record
// bulk loads.
func (s *Sampler) subsetInto(src, dst recordStore) error {
	var recs []store.Record
	err := src.Scan(nil, false, func(rec []byte) error {
		objID := uint64(catalog.RecordObjID(rec))
		if !s.Keep(objID) {
			return nil
		}
		data := make([]byte, len(rec))
		copy(data, rec)
		recs = append(recs, store.Record{HTMID: src.KeyOf(rec), Data: data})
		if len(recs) >= 4096 {
			if err := dst.BulkLoad(recs); err != nil {
				return err
			}
			recs = recs[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(recs) > 0 {
		return dst.BulkLoad(recs)
	}
	return nil
}
