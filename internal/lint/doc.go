// Package lint is the root of skylint, the project's static-analysis
// suite. It carries no code of its own; the subpackages are:
//
//   - analysis: a dependency-free re-implementation of the go/analysis
//     Analyzer/Pass API over stdlib go/ast + go/types, with a standalone
//     package loader, the `go vet -vettool` unitchecker protocol, the
//     //lint:skylint-ignore suppression machinery, and the
//     function-summary interprocedural layer (per-function facts computed
//     bottom-up over the call graph and exported across packages).
//   - linttest: the analysistest-style fixture harness (// want
//     comments, multi-package testdata/src trees).
//   - lockflow: shared lock-set dataflow (lock identity, held-set walk,
//     blocking-operation classification) used by lockheld and slotheld.
//   - batchown, rawoffset, nansafe, dropmark, ctxcancel, slotheld,
//     lockheld, enginecopy: the analyzers. See cmd/skylint's package doc
//     for the invariant each one enforces.
//
// The suppression golden test in this package pins the tree-wide count of
// //lint:skylint-ignore directives so suppressions can only be added with
// a visible diff here.
package lint
