// Command ghannotate converts skylint -json NDJSON findings (read from
// stdin) into GitHub Actions workflow commands —
//
//	::error file=...,line=...,col=...,title=skylint/<analyzer>::<message>
//
// — so findings surface as inline annotations on the pull request. It
// exits 1 when any finding was present, preserving the failing verdict for
// the CI step that pipes into it.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// escapeData applies the workflow-command escaping rules for the message
// part; escapeProp additionally escapes the property delimiters.
func escapeData(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(s)
}

func escapeProp(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C").Replace(s)
}

func annotate(f finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=skylint/%s::%s",
		escapeProp(f.File), f.Line, f.Col, escapeProp(f.Analyzer), escapeData(f.Message))
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	count := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			fmt.Fprintf(os.Stderr, "ghannotate: skipping malformed line: %v\n", err)
			continue
		}
		fmt.Println(annotate(f))
		count++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ghannotate:", err)
		os.Exit(1)
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "ghannotate: %d finding(s)\n", count)
		os.Exit(1)
	}
}
