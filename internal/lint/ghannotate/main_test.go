package main

import "testing"

func TestAnnotateEscapes(t *testing.T) {
	f := finding{
		File:     "internal/qe/morsel.go",
		Line:     42,
		Col:      7,
		Analyzer: "slotheld",
		Message:  "blocking send\nwhile holding a slot: 50% stalled",
	}
	got := annotate(f)
	want := "::error file=internal/qe/morsel.go,line=42,col=7,title=skylint/slotheld::blocking send%0Awhile holding a slot: 50%25 stalled"
	if got != want {
		t.Fatalf("annotate mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestAnnotatePropEscapes(t *testing.T) {
	f := finding{File: "a,b:c.go", Line: 1, Col: 1, Analyzer: "x", Message: "m"}
	got := annotate(f)
	want := "::error file=a%2Cb%3Ac.go,line=1,col=1,title=skylint/x::m"
	if got != want {
		t.Fatalf("annotate mismatch:\n got %q\nwant %q", got, want)
	}
}
