package rawoffset_test

import (
	"testing"

	"sdss/internal/lint/linttest"
	"sdss/internal/lint/rawoffset"
)

func TestRawOffset(t *testing.T) {
	// Package a is an ordinary consumer: literal offsets are violations.
	// Package catalog is layout-owning: the same code is sanctioned.
	linttest.Run(t, linttest.Dir(), rawoffset.Analyzer, "a", "catalog")
}
