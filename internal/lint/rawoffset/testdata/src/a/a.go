// Package a is the rawoffset fixture: an ordinary (non-layout-owning)
// package poking at encoded record bytes.
package a

import "encoding/binary"

// Field stands in for catalog.Field: the sanctioned access path.
type Field struct {
	Offset int
}

const objidOff = 8

func bad(rec []byte) uint64 {
	_ = rec[3]                              // want `raw byte offset 3`
	_ = rec[8:16]                           // want `raw byte offset 8`
	_ = rec[:24]                            // want `raw byte offset 24`
	_ = rec[objidOff]                       // want `raw byte offset 8`
	_ = binary.LittleEndian.Uint16(rec[2:]) // want `raw byte offset 2`
	return binary.LittleEndian.Uint64(rec)  // want `implicit offset-0 Uint64`
}

type rr struct{ rec []byte }

func (r *rr) objID() uint64 {
	return binary.LittleEndian.Uint64(r.rec) // want `implicit offset-0 Uint64`
}

func put(hdr []byte, v uint32) {
	binary.LittleEndian.PutUint32(hdr[12:], v) // want `raw byte offset 12`
}

// good accesses bytes the sanctioned ways: layout offsets, variable
// positions, whole-buffer operations, and zero-bound slices.
func good(rec []byte, f Field, keyOffset int) uint64 {
	_ = rec[f.Offset]
	_ = rec[f.Offset:]
	_ = rec[keyOffset : keyOffset+8]
	_ = rec[0:] // degenerate re-slice, not an offset read
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 1) // array re-slice, no offset
	copy(buf[:], rec)
	return binary.LittleEndian.Uint64(rec[f.Offset:])
}

// notBytes: constant indexing of non-byte slices is someone else's
// business (vectors, argument lists).
func notBytes(vals []float64, args []int) float64 {
	_ = args[2]
	return vals[0] + vals[1]
}
