// Package catalog is the rawoffset negative fixture: layout-owning
// packages (import path containing a catalog or fits segment) define the
// encodings, so literal offsets are their prerogative.
package catalog

import "encoding/binary"

func decode(rec []byte) (uint64, uint16) {
	id := binary.LittleEndian.Uint64(rec)
	run := binary.LittleEndian.Uint16(rec[16:])
	_ = rec[3]
	return id, run
}
