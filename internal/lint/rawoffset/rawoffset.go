// Package rawoffset enforces the record-layout invariant (PR 3): encoded
// catalog records are fixed byte layouts owned by internal/catalog
// (PhotoLayout/TagLayout/SpecLayout) and internal/fits, and every other
// package must reach attributes through catalog.Field offsets — never by
// hard-coding byte positions. A literal `rec[26]` that compiles today
// silently reads garbage the day a field is added, which is exactly the
// schema-drift failure mode the SkyServer papers mechanized away.
//
// Outside catalog and fits the analyzer flags, on values of type []byte:
//
//   - indexing with a constant (`rec[8]`);
//   - slicing with a nonzero constant bound (`rec[8:16]`, `hdr[:24]`);
//   - passing a bare identifier straight to an encoding/binary ByteOrder
//     decode/encode (`le.Uint64(rec)` — an implicit offset-0 read).
//
// Variable offsets (`rec[f.Offset:]`) pass: they came from a layout.
// _test.go files pass too: tests hand-roll synthetic records whose byte
// positions are the test's own fixture, not the catalog contract.
// Serialization code that owns a non-record format (e.g. the zone-map file
// header) suppresses with //lint:skylint-ignore rawoffset <reason>.
package rawoffset

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sdss/internal/lint/analysis"
)

// Analyzer is the rawoffset pass.
var Analyzer = &analysis.Analyzer{
	Name: "rawoffset",
	Doc:  "encoded record bytes must be addressed through catalog layout fields, not literal offsets",
	Run:  run,
}

// exemptPkgs own record encodings and may use literal offsets: the layout
// definitions themselves, the FITS codec, and the column-block codec
// (whose bit-packed payloads and sidecar framing are its own format, not
// catalog records).
var exemptPkgs = []string{"catalog", "fits", "colblk"}

func exempt(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, e := range exemptPkgs {
			if seg == e {
				return true
			}
		}
	}
	return false
}

// isByteSlice reports whether t is []byte (possibly via a named type).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// constVal reports whether expr is a compile-time integer constant, and its
// value when small enough to print.
func constVal(pass *analysis.Pass, expr ast.Expr) (int64, bool) {
	if expr == nil {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, _ := constant.Int64Val(tv.Value)
	return v, true
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// Tests build synthetic records by hand; those byte positions are
		// the test's own fixture, not the catalog contract.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if !isByteSlice(pass.TypeOf(n.X)) {
					return true
				}
				if v, isConst := constVal(pass, n.Index); isConst {
					pass.Reportf(n.Index.Pos(),
						"raw byte offset %d into encoded bytes; address fields via a catalog layout (Field.Offset)", v)
				}
			case *ast.SliceExpr:
				if !isByteSlice(pass.TypeOf(n.X)) {
					return true
				}
				for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
					if v, isConst := constVal(pass, bound); isConst && v != 0 {
						pass.Reportf(bound.Pos(),
							"raw byte offset %d into encoded bytes; address fields via a catalog layout (Field.Offset)", v)
						break
					}
				}
			case *ast.CallExpr:
				checkBinaryCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBinaryCall flags le.Uint64(rec)-style implicit offset-0 decodes: the
// []byte argument is a bare identifier or field selector, so the call pins
// the field to the start of the record without saying so.
func checkBinaryCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if !strings.HasPrefix(name, "Uint") && !strings.HasPrefix(name, "PutUint") {
		return
	}
	// Only encoding/binary's ByteOrder methods count.
	if t := pass.TypeOf(sel.X); t == nil || !strings.Contains(t.String(), "encoding/binary") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if isByteSlice(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"implicit offset-0 %s on encoded bytes; address the field via a catalog layout (Field.Offset)", name)
		}
	}
}
