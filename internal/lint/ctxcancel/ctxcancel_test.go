package ctxcancel_test

import (
	"testing"

	"sdss/internal/lint/ctxcancel"
	"sdss/internal/lint/linttest"
)

func TestCtxCancel(t *testing.T) {
	linttest.Run(t, linttest.Dir(), ctxcancel.Analyzer, "a")
}
