// Package a is the ctxcancel fixture: spawned goroutines that send with
// and without a cancellation path.
package a

import "context"

type batch []uint64

// badFanout sends unguarded from a worker: Close() can never unblock it.
func badFanout(items []batch, out chan<- batch) {
	for _, it := range items {
		go func(b batch) {
			out <- b // want `unguarded channel send in a spawned goroutine`
		}(it)
	}
}

// badLoopSend computes in a loop and pushes results with no escape hatch.
func badLoopSend(n int, out chan<- int) {
	go func() {
		for i := 0; i < n; i++ {
			out <- i * i // want `unguarded channel send in a spawned goroutine`
		}
	}()
}

// goodSelect is the engine idiom: every send can lose to cancellation.
func goodSelect(ctx context.Context, in []int, out chan<- int) {
	go func() {
		for _, v := range in {
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// goodForward relays between channels: bounded by the upstream close, whose
// producer honors cancellation.
func goodForward(in <-chan batch, out chan<- batch) {
	go func() {
		for b := range in {
			out <- b
		}
	}()
}

// closeThenSignal: close never blocks, but the completion signal is still
// an unguarded send.
func closeThenSignal(done chan<- struct{}, out chan int) {
	go func() {
		close(out)
		done <- struct{}{} // want `unguarded channel send in a spawned goroutine`
	}()
}

// suppressedReplay fills a channel pre-sized to the element count.
func suppressedReplay(all []batch) <-chan batch {
	replay := make(chan batch, len(all))
	go func() {
		for _, b := range all {
			//lint:skylint-ignore ctxcancel replay is buffered to len(all); the send can never block
			replay <- b
		}
		close(replay)
	}()
	return replay
}

// morsel mirrors the scheduler's work unit: a slice element, not a channel
// receive — ranging over a slice grants no close-to-unblock guarantee.
type morsel struct{ cids []uint64 }

// badMorselScatter pushes a slice of queued units into a stream with no
// cancellation case: the worker-pool shape done wrong. Unlike goodForward's
// channel range (bounded by an upstream close), a slice range never ends
// early, so a departed consumer wedges the goroutine forever.
func badMorselScatter(units []morsel, out chan<- batch) {
	go func() {
		for _, u := range units {
			out <- batch(u.cids) // want `unguarded channel send in a spawned goroutine`
		}
	}()
}

// goodFastPathEmit is the scheduler's emit idiom: a non-blocking fast path
// first, then a guarded retry — both sends are select cases, so a departed
// consumer loses to cancellation, never wedges the worker.
func goodFastPathEmit(ctx context.Context, units []morsel, out chan<- batch) {
	go func() {
		for _, u := range units {
			b := batch(u.cids)
			select {
			case out <- b:
				continue
			default:
			}
			select {
			case out <- b:
			case <-ctx.Done():
				return
			}
		}
	}()
}
