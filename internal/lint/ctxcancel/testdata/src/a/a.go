// Package a is the ctxcancel fixture: spawned goroutines that send with
// and without a cancellation path, including named-function spawns whose
// sends are only visible through the function-summary layer.
package a

import (
	"b"
	"context"
)

type batch []uint64

// badFanout sends unguarded from a worker: Close() can never unblock it.
func badFanout(items []batch, out chan<- batch) {
	for _, it := range items {
		go func(b batch) {
			out <- b // want `unguarded channel send in a spawned goroutine`
		}(it)
	}
}

// badLoopSend computes in a loop and pushes results with no escape hatch.
func badLoopSend(n int, out chan<- int) {
	go func() {
		for i := 0; i < n; i++ {
			out <- i * i // want `unguarded channel send in a spawned goroutine`
		}
	}()
}

// goodSelect is the engine idiom: every send can lose to cancellation.
func goodSelect(ctx context.Context, in []int, out chan<- int) {
	go func() {
		for _, v := range in {
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// goodForward relays between channels: bounded by the upstream close, whose
// producer honors cancellation.
func goodForward(in <-chan batch, out chan<- batch) {
	go func() {
		for b := range in {
			out <- b
		}
	}()
}

// closeThenSignal: close never blocks, but the completion signal is still
// an unguarded send.
func closeThenSignal(done chan<- struct{}, out chan int) {
	go func() {
		close(out)
		done <- struct{}{} // want `unguarded channel send in a spawned goroutine`
	}()
}

// goodBufferedReplay fills a channel pre-sized to the element count: the
// buffered-send proof sees the make(chan T, len(all)) / one-send-per-range
// shape, so no suppression is needed.
func goodBufferedReplay(all []batch) <-chan batch {
	replay := make(chan batch, len(all))
	go func() {
		for _, b := range all {
			replay <- b
		}
		close(replay)
	}()
	return replay
}

// goodBufferedCompletion is the exchange-test idiom: per-part workers signal
// completion on a channel buffered to the partition count.
func goodBufferedCompletion(parts []batch) int {
	total := 0
	wg := make(chan struct{}, len(parts))
	for _, p := range parts {
		go func(b batch) {
			total += len(b)
			wg <- struct{}{}
		}(p)
	}
	for range parts {
		<-wg
	}
	return total
}

// fanIndex mirrors hashm.SpatialIndex: the fan-out width lives in a struct
// field, so the buffered-send proof must match len(x.parts) against a field
// selection, not just a plain identifier.
type fanIndex struct{ parts []batch }

// finish distributes partitions to sort workers over a channel buffered to
// the partition count; the sends are proven buffered through the field.
func (x *fanIndex) finish() {
	work := make(chan batch, len(x.parts))
	for _, p := range x.parts {
		work <- p
	}
	close(work)
}

// goodFieldBufferedSpawn spawns the method: its summary must NOT carry an
// unguarded send, or every build-phase goroutine calling it gets flagged.
func goodFieldBufferedSpawn(x *fanIndex) {
	go func() {
		x.finish()
	}()
}

// pump sends with no escape hatch; harmless when called synchronously, but
// its summary records the unguarded send for spawn sites.
func pump(vals []int, out chan<- int) {
	for _, v := range vals {
		out <- v
	}
}

// guardedPump loses every send to cancellation: its summary is clean.
func guardedPump(ctx context.Context, vals []int, out chan<- int) {
	for _, v := range vals {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// badNamedSpawn launches a named function whose summary says it sends
// unguarded — the shape that previously escaped the literal-only check.
func badNamedSpawn(vals []int, out chan<- int) {
	go pump(vals, out) // want `goroutine runs a.pump, which performs an unguarded channel send`
}

func goodNamedSpawn(ctx context.Context, vals []int, out chan<- int) {
	go guardedPump(ctx, vals, out)
}

// badCallInLit hides the send one call deep inside the spawned literal.
func badCallInLit(vals []int, out chan<- int) {
	go func() {
		pump(vals, out) // want `call to a.pump in a spawned goroutine performs an unguarded channel send`
	}()
}

// badCrossPackageSpawn spawns an imported function: the verdict rides in on
// package b's serialized summaries.
func badCrossPackageSpawn(out chan int) {
	go b.Pump(out) // want `goroutine runs b.Pump, which performs an unguarded channel send`
}

func goodCrossPackageSpawn(done <-chan struct{}, out chan int) {
	go b.GuardedPump(done, out)
}

// morsel mirrors the scheduler's work unit: a slice element, not a channel
// receive — ranging over a slice grants no close-to-unblock guarantee.
type morsel struct{ cids []uint64 }

// badMorselScatter pushes a slice of queued units into a stream with no
// cancellation case: the worker-pool shape done wrong. Unlike goodForward's
// channel range (bounded by an upstream close), a slice range never ends
// early, so a departed consumer wedges the goroutine forever.
func badMorselScatter(units []morsel, out chan<- batch) {
	go func() {
		for _, u := range units {
			out <- batch(u.cids) // want `unguarded channel send in a spawned goroutine`
		}
	}()
}

// goodFastPathEmit is the scheduler's emit idiom: a non-blocking fast path
// first, then a guarded retry — both sends are select cases, so a departed
// consumer loses to cancellation, never wedges the worker.
func goodFastPathEmit(ctx context.Context, units []morsel, out chan<- batch) {
	go func() {
		for _, u := range units {
			b := batch(u.cids)
			select {
			case out <- b:
				continue
			default:
			}
			select {
			case out <- b:
			case <-ctx.Done():
				return
			}
		}
	}()
}
