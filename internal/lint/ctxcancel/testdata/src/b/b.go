// Package b is the dependency side of the ctxcancel multi-package fixture:
// its summaries (Pump sends unguarded, GuardedPump does not) cross the
// package boundary serialized, the way the vettool driver ships them.
package b

// Pump sends with no cancellation escape.
func Pump(out chan int) {
	for i := 0; i < 8; i++ {
		out <- i
	}
}

// GuardedPump can always lose a send to the done signal.
func GuardedPump(done <-chan struct{}, out chan int) {
	for i := 0; i < 8; i++ {
		select {
		case out <- i:
		case <-done:
			return
		}
	}
}
