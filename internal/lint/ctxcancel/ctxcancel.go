// Package ctxcancel guards the fan-out sites of the scatter-gather engine:
// every goroutine the engine spawns (shard scans, gather stages, async
// jobs) eventually blocks sending results upward, and a send that does not
// select on a cancellation signal can never be interrupted — Close() hangs
// and the worker leaks, exactly the failure mode Rows.Close's contract
// ("a closed Rows never leaks scan workers") forbids.
//
// The analyzer flags channel sends inside `go func(...)`-launched function
// literals unless the send is:
//
//   - a select case (the engine's `case out <- b: / case <-ctx.Done():`
//     idiom), or
//   - inside a `for ... range ch` loop over a channel (pure forwarding:
//     the loop is bounded by the upstream stream, whose producer honors
//     cancellation and whose consumer drains on cancel).
//
// Sends that are provably non-blocking (a channel pre-sized to the exact
// element count) carry //lint:skylint-ignore ctxcancel <reason>.
package ctxcancel

import (
	"go/ast"
	"go/types"

	"sdss/internal/lint/analysis"
)

// Analyzer is the ctxcancel pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "goroutine fan-out sends must select on a cancellation channel/context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named functions are checked where they are defined
			}
			checkGoroutine(pass, lit.Body)
			return true
		})
	}
	return nil
}

// checkGoroutine walks one spawned body looking for unguarded sends,
// tracking whether the current path is inside a channel-range forwarding
// loop. Nested go statements are visited by the outer Inspect.
func checkGoroutine(pass *analysis.Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, forwarding bool)
	walk = func(n ast.Node, forwarding bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.GoStmt:
			return // its own goroutine, checked separately
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				// The comm itself is guarded by the select; the body is an
				// ordinary path.
				for _, st := range cc.Body {
					walk(st, forwarding)
				}
			}
			return
		case *ast.RangeStmt:
			inner := forwarding
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					inner = true
				}
			}
			walk(n.Body, inner)
			return
		case *ast.SendStmt:
			if !forwarding {
				pass.Reportf(n.Arrow,
					"unguarded channel send in a spawned goroutine; select on a cancellation signal (ctx.Done()) so the fan-out can be torn down")
			}
			return
		}
		// Generic traversal one level down.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, forwarding)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, false)
	}
}
