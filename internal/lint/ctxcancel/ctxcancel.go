// Package ctxcancel guards the fan-out sites of the scatter-gather engine:
// every goroutine the engine spawns (shard scans, gather stages, async
// jobs) eventually blocks sending results upward, and a send that does not
// select on a cancellation signal can never be interrupted — Close() hangs
// and the worker leaks, exactly the failure mode Rows.Close's contract
// ("a closed Rows never leaks scan workers") forbids.
//
// The analyzer flags, inside spawned code, any channel send that is not:
//
//   - a select case (the engine's `case out <- b: / case <-ctx.Done():`
//     idiom), nor
//   - inside a `for ... range ch` loop over a channel (pure forwarding:
//     the loop is bounded by the upstream stream, whose producer honors
//     cancellation and whose consumer drains on cancel), nor
//   - provably buffered: the make(chan T, len(xs)) one-send-per-range-xs
//     completion idiom never blocks, so it needs no escape hatch.
//
// Spawned code means `go func() {...}` literals and — through the
// function-summary layer — named functions launched with `go f(...)` or
// called from inside a spawned literal, in this package or any summarized
// dependency: a callee whose summary records an unguarded send is reported
// at the spawn or call site.
package ctxcancel

import (
	"go/ast"
	"go/types"

	"sdss/internal/lint/analysis"
)

// Analyzer is the ctxcancel pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "goroutine fan-out sends must select on a cancellation channel/context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutine(pass, lit.Body, fd.Body)
					return true
				}
				// A named-function spawn: the callee's summary says whether
				// some path performs a send with no cancellation escape.
				fn, facts := pass.Summaries.Callee(pass.TypesInfo, gs.Call)
				if fn != nil && facts != nil && facts.UnguardedSend {
					pass.Reportf(gs.Go,
						"goroutine runs %s, which performs an unguarded channel send (%s); select on a cancellation signal (ctx.Done()) so the fan-out can be torn down",
						analysis.FuncKey(fn), facts.SendWhy)
				}
				return true
			})
		}
	}
	return nil
}

// checkGoroutine walks one spawned body looking for unguarded sends,
// tracking whether the current path is inside a channel-range forwarding
// loop. declBody is the declared function enclosing the spawn, where a
// provably-buffered channel's make site lives. Nested go statements are
// visited by the outer Inspect.
func checkGoroutine(pass *analysis.Pass, body, declBody *ast.BlockStmt) {
	var walk func(n ast.Node, forwarding bool)
	walk = func(n ast.Node, forwarding bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.GoStmt:
			return // its own goroutine, checked separately
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				// The comm itself is guarded by the select; the body is an
				// ordinary path.
				for _, st := range cc.Body {
					walk(st, forwarding)
				}
			}
			return
		case *ast.RangeStmt:
			inner := forwarding
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					inner = true
				}
			}
			walk(n.Body, inner)
			return
		case *ast.SendStmt:
			if forwarding {
				return
			}
			if analysis.ProvenBuffered(pass.TypesInfo, declBody, n) {
				return // completion send buffered to the fan-out width
			}
			pass.Reportf(n.Arrow,
				"unguarded channel send in a spawned goroutine; select on a cancellation signal (ctx.Done()) so the fan-out can be torn down")
			return
		case *ast.CallExpr:
			if !forwarding {
				if fn, facts := pass.Summaries.Callee(pass.TypesInfo, n); fn != nil && facts != nil && facts.UnguardedSend {
					pass.Reportf(n.Lparen,
						"call to %s in a spawned goroutine performs an unguarded channel send (%s); select on a cancellation signal (ctx.Done()) so the fan-out can be torn down",
						analysis.FuncKey(fn), facts.SendWhy)
				}
			}
			// Fall through: arguments may nest literals or further calls.
		}
		// Generic traversal one level down.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, forwarding)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, false)
	}
}
