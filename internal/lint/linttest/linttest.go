// Package linttest is the fixture harness for skylint analyzers — the
// dependency-free counterpart of golang.org/x/tools/go/analysis/analysistest.
// Fixture packages live under <analyzer>/testdata/src/<pkg>/ and annotate
// the lines where findings are expected:
//
//	RecycleBatch(b)
//	use(b) // want `use after RecycleBatch`
//
// Each `// want` comment carries one or more backquoted or double-quoted
// regular expressions; every expectation must be matched by a diagnostic on
// that line, and every diagnostic must be expected. Fixtures may import only
// the standard library, so they type-check hermetically from source.
package linttest

import (
	"fmt"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sdss/internal/lint/analysis"
)

// wantRe extracts the quoted patterns of one // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each named fixture package from dir/testdata/src and checks the
// analyzer's diagnostics against the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkgDir := filepath.Join(dir, "testdata", "src", pkg)
		runPackage(t, pkgDir, pkg, a)
	}
}

func runPackage(t *testing.T, pkgDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", pkgDir, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(pkgDir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgDir)
	}

	fset := token.NewFileSet()
	lp, err := analysis.CheckFiles(fset, importPath, files, nil, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	expects := collectWants(t, files)
	diags, err := lp.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// collectWants scans fixture sources for // want comments.
func collectWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, wants, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(wants, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed // want comment (no quoted pattern)", file, i+1)
			}
			for _, m := range ms {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, pat, err)
				}
				out = append(out, &expectation{file: file, line: i + 1, pattern: re})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// Dir returns the caller-relative analyzer directory for Run, so tests read
// as linttest.Run(t, linttest.Dir(), Analyzer, "a").
func Dir() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(fmt.Sprintf("linttest: %v", err))
	}
	return wd
}
