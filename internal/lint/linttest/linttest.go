// Package linttest is the fixture harness for skylint analyzers — the
// dependency-free counterpart of golang.org/x/tools/go/analysis/analysistest.
// Fixture packages live under <analyzer>/testdata/src/<pkg>/ and annotate
// the lines where findings are expected:
//
//	RecycleBatch(b)
//	use(b) // want `use after RecycleBatch`
//
// Each `// want` comment carries one or more backquoted or double-quoted
// regular expressions; every expectation must be matched by a diagnostic on
// that line, and every diagnostic must be expected.
//
// Fixtures may import the standard library and sibling fixture packages:
// an import of "b" from testdata/src/a resolves to testdata/src/b, whose
// function summaries are computed first and round-tripped through the JSON
// codec before the analyzed package sees them — every multi-package fixture
// therefore exercises the same summary export/import path the vettool
// driver uses. Only the named package's files carry // want expectations;
// dependency fixtures are support code.
package linttest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sdss/internal/lint/analysis"
)

// wantRe extracts the quoted patterns of one // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each named fixture package from dir/testdata/src and checks the
// analyzer's diagnostics against the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "testdata", "src"), pkg, a)
	}
}

// fixtureImporter resolves fixture-sibling imports under root, falling back
// to a source importer for the standard library. Each fixture dependency is
// loaded once; its summaries are kept in serialized form so the analyzed
// package imports them exactly as the real drivers do.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	pkgs     map[string]*types.Package
	sums     map[string][]byte
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return fi.fallback.Import(path)
	}
	lp, err := fi.load(path, dir)
	if err != nil {
		return nil, err
	}
	return lp.Pkg, nil
}

// load type-checks one fixture package (dependencies first, through Import)
// and computes + serializes its function summaries.
func (fi *fixtureImporter) load(importPath, dir string) (*analysis.LoadedPackage, error) {
	files, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	lp, err := analysis.CheckFiles(fi.fset, importPath, files, nil, fi)
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %v", importPath, err)
	}
	deps, err := fi.depView()
	if err != nil {
		return nil, err
	}
	lp.Summaries = analysis.ComputeSummaries(fi.fset, lp.Files, lp.Info, deps)
	fi.pkgs[importPath] = lp.Pkg
	enc, err := lp.Summaries.Encode()
	if err != nil {
		return nil, err
	}
	fi.sums[importPath] = enc
	return lp, nil
}

// depView decodes every already-loaded fixture package's serialized
// summaries into one dependency view — the JSON round trip is the point.
func (fi *fixtureImporter) depView() (*analysis.Summaries, error) {
	paths := make([]string, 0, len(fi.sums))
	for p := range fi.sums {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	views := make([]*analysis.Summaries, 0, len(paths))
	for _, p := range paths {
		v, err := analysis.DecodeSummaries(fi.sums[p], nil)
		if err != nil {
			return nil, fmt.Errorf("decoding %s summaries: %v", p, err)
		}
		views = append(views, v)
	}
	return analysis.MergeSummaries(views...), nil
}

func fixtureFiles(pkgDir string) ([]string, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(pkgDir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", pkgDir)
	}
	return files, nil
}

func runPackage(t *testing.T, root, importPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		root:     root,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*types.Package{},
		sums:     map[string][]byte{},
	}
	pkgDir := filepath.Join(root, importPath)
	lp, err := fi.load(importPath, pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	files, err := fixtureFiles(pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	expects := collectWants(t, files)
	diags, err := lp.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// collectWants scans fixture sources for // want comments.
func collectWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, wants, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(wants, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed // want comment (no quoted pattern)", file, i+1)
			}
			for _, m := range ms {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, pat, err)
				}
				out = append(out, &expectation{file: file, line: i + 1, pattern: re})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// Dir returns the caller-relative analyzer directory for Run, so tests read
// as linttest.Run(t, linttest.Dir(), Analyzer, "a").
func Dir() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(fmt.Sprintf("linttest: %v", err))
	}
	return wd
}
