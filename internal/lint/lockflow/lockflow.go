// Package lockflow is the shared lock-dataflow machinery behind the
// lockheld and slotheld analyzers: a linear held-set walk over function
// bodies, a stable identity scheme for mutexes, and a classifier for
// operations that can park the goroutine.
//
// Lock identity is type-scoped for fields (`pkg.pool.mu` names the mu field
// of every pool value — lock-order discipline is a property of the type's
// protocol, not one instance) and instance-scoped for locals and package
// variables. The held-set walk is deliberately simple flow analysis:
// straight-line statements thread one mutable set, branches fork copies,
// and a lock released inside a non-terminating branch is considered
// released afterwards. Deferred unlocks keep their lock held to function
// end, which is the point of deferring them. `go` statements and function
// literals are skipped — they run on other goroutines or at other times
// and are analyzed as functions in their own right by the analyzers.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"sdss/internal/lint/analysis"
)

// Op classifies a call as a sync lock-protocol operation.
type Op int

const (
	OpNone Op = iota
	OpLock
	OpUnlock
	OpRLock
	OpRUnlock
	// OpCondWait is sync.Cond.Wait: it blocks, but atomically releases the
	// Cond's locker first — analyzers exempt it when that is the only held
	// lock.
	OpCondWait
)

// LockOp reports whether call is a sync.Mutex/RWMutex/Cond protocol call,
// returning the identity of the lock (or Cond) it operates on. Promoted
// methods on embedded mutexes resolve too; their identity is the embedding
// value's.
func LockOp(info *types.Info, call *ast.CallExpr) (string, Op) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", OpNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", OpNone
	}
	var op Op
	switch analysis.FuncKey(fn) {
	case "sync.Mutex.Lock", "sync.RWMutex.Lock":
		op = OpLock
	case "sync.Mutex.Unlock", "sync.RWMutex.Unlock":
		op = OpUnlock
	case "sync.RWMutex.RLock":
		op = OpRLock
	case "sync.RWMutex.RUnlock":
		op = OpRUnlock
	case "sync.Cond.Wait":
		op = OpCondWait
	default:
		return "", OpNone
	}
	return LockID(info, sel.X), op
}

// LockID names the lock a receiver expression denotes: "pkg.Type.field"
// for struct-field locks, "pkg.name" for package-level ones, a
// position-disambiguated "pkg.name@off" for locals, and "pkg.Type" for a
// value with an embedded mutex. Unknown shapes return "" (not tracked).
func LockID(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if n := namedOf(info.TypeOf(e.X)); n != nil {
			return qual(n) + "." + e.Sel.Name
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return v.Pkg().Path() + "." + v.Name() + "@" + strconv.Itoa(int(v.Pos()))
		}
	}
	if n := namedOf(info.TypeOf(e)); n != nil {
		return qual(n)
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func qual(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// Visit receives each interesting node — calls, sends, receives, selects,
// range-over-channel — with the lock set held on entry to it (acquisition
// sites keyed by lock identity). For a lock acquisition the set does not
// yet include the lock being acquired.
type Visit func(n ast.Node, held map[string]token.Pos)

// Walk runs the held-set walk over one declared function or literal body.
func Walk(info *types.Info, body *ast.BlockStmt, visit Visit) {
	w := &walker{info: info, visit: visit}
	held := map[string]token.Pos{}
	for _, s := range body.List {
		w.stmt(s, held)
	}
}

type walker struct {
	info  *types.Info
	visit Visit
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// stmt threads held through one statement, mutating it for linear flow.
func (w *walker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, op := LockOp(w.info, call); op != OpNone {
				w.visit(call, held)
				switch op {
				case OpLock, OpRLock:
					if id != "" {
						held[id] = call.Pos()
					}
				case OpUnlock, OpRUnlock:
					delete(held, id)
				}
				// Still scan the receiver expression for nested events.
				w.expr(call.Fun, held)
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, op := LockOp(w.info, s.Call); op == OpUnlock || op == OpRUnlock {
			return // deferred unlock: held to function end, by design
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Runs on this goroutine at return, with (approximately) the
			// locks held here; releases inside stay local.
			inner := clone(held)
			for _, st := range lit.Body.List {
				w.stmt(st, inner)
			}
			for _, arg := range s.Call.Args {
				w.expr(arg, held)
			}
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		return
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.branch(s.Body, held)
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				w.branch(blk, held)
			} else {
				w.stmt(s.Else, clone(held))
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		inner := clone(held)
		w.stmt(s.Body, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.visit(s, held)
			}
		}
		w.expr(s.X, held)
		w.stmt(s.Body, clone(held))
	case *ast.SelectStmt:
		w.visit(s, held)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			inner := clone(held)
			w.comm(cc.Comm, inner)
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		for _, cl := range s.Body.List {
			inner := clone(held)
			for _, st := range cl.(*ast.CaseClause).Body {
				w.stmt(st, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, cl := range s.Body.List {
			inner := clone(held)
			for _, st := range cl.(*ast.CaseClause).Body {
				w.stmt(st, inner)
			}
		}
	case *ast.SendStmt:
		w.visit(s, held)
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if n == s {
				return true
			}
			if st, ok := n.(ast.Stmt); ok {
				w.stmt(st, held)
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	}
}

// branch walks a conditional block on a fork of held; if the block falls
// through (does not terminate), locks it released are released afterwards.
func (w *walker) branch(body *ast.BlockStmt, held map[string]token.Pos) {
	inner := clone(held)
	w.stmt(body, inner)
	if terminates(body) {
		return
	}
	for id := range held {
		if _, still := inner[id]; !still {
			delete(held, id)
		}
	}
}

// terminates reports whether a block's last statement leaves the enclosing
// flow (return, break/continue/goto, panic).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr scans an expression for events without mutating held.
func (w *walker) expr(e ast.Expr, held map[string]token.Pos) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.CallExpr:
		w.visit(e, held)
		w.expr(e.Fun, held)
		for _, arg := range e.Args {
			w.expr(arg, held)
		}
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.visit(e, held)
		}
		w.expr(e.X, held)
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				w.expr(sub, held)
				return false
			}
			return true
		})
	}
}

// comm walks a select communication: the select guards the operation
// itself, so only operand sub-expressions carry events.
func (w *walker) comm(comm ast.Stmt, held map[string]token.Pos) {
	switch s := comm.(type) {
	case nil:
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.ExprStmt:
		if ue, ok := s.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			w.expr(ue.X, held)
			return
		}
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				w.expr(ue.X, held)
				continue
			}
			w.expr(rhs, held)
		}
	}
}

// Blocking classifies whether node n — as visited by Walk — can park the
// goroutine, using function summaries for calls. body is the declared
// function body enclosing n (for the proven-buffered send exemption).
// sync.Cond.Wait is NOT blocking here; callers see it via LockOp and apply
// the held-count exemption themselves.
func Blocking(info *types.Info, sums *analysis.Summaries, body *ast.BlockStmt, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		if analysis.ProvenBuffered(info, body, n) {
			return "", false
		}
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				return "", false
			}
		}
		return "select with no default case", true
	case *ast.RangeStmt:
		return "range over channel", true
	case *ast.CallExpr:
		if _, op := LockOp(info, n); op != OpNone {
			return "", false
		}
		fn, facts := sums.Callee(info, n)
		if fn == nil || facts == nil || !facts.MayBlock {
			return "", false
		}
		return "call to " + analysis.FuncKey(fn) + ", which may block (" + facts.BlockWhy + ")", true
	}
	return "", false
}

// FuncBodies yields every declared function and function literal in the
// files, with a printable name for diagnostics. decl is the enclosing
// declared function's body (the body itself for declarations) — pass it to
// Blocking so the proven-buffered send exemption can see the channel's
// make site even from inside a literal.
func FuncBodies(files []*ast.File, visit func(name string, body, decl *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if rn := recvTypeName(fd.Recv.List[0].Type); rn != "" {
					name = rn + "." + name
				}
			}
			visit(name, fd.Body, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(name+" (func literal)", lit.Body, fd.Body)
				}
				return true
			})
		}
	}
}

// recvTypeName extracts the receiver's type name syntactically.
func recvTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	if ix, ok := e.(*ast.IndexExpr); ok { // generic receiver
		e = ix.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
