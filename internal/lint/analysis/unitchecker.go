package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file speaks the `go vet -vettool=...` driver protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker without the dependency. The go
// command probes the tool three ways:
//
//   - `tool -V=full` — a version/content fingerprint used as a cache key;
//   - `tool -flags`  — a JSON description of supported flags (none here);
//   - `tool <unit>.cfg` — analyze one compilation unit described by a JSON
//     config, with dependency types read from compiler export data.
//
// Diagnostics print to stderr as file:line:col: message and the process
// exits nonzero, which go vet surfaces per package.

// vetConfig is the JSON the go command writes for each unit. Field names
// are fixed by the protocol; unknown fields are ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// VettoolMain implements the whole vettool entry protocol for args (the
// program arguments after the command name). It returns false when args do
// not look like a vettool invocation — the caller should fall through to
// standalone mode — and otherwise exits the process itself.
func VettoolMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 && args[0] == "-V=full" {
		// Fingerprint the binary content: rebuilding skylint invalidates
		// go vet's result cache, exactly like the x/tools handshake.
		name := filepath.Base(os.Args[0])
		sum := [sha256.Size]byte{}
		if data, err := os.ReadFile(os.Args[0]); err == nil {
			sum = sha256.Sum256(data)
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, sum)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no analyzer flags
		os.Exit(0)
	}
	if len(args) == 1 && filepath.Ext(args[0]) == ".cfg" {
		os.Exit(runUnit(args[0], analyzers))
	}
	return false
}

// runUnit analyzes one vet compilation unit and returns the process exit
// code.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "skylint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The vetx facts file carries this unit's function summaries to every
	// dependent unit's invocation (go vet hands them back through
	// PackageVetx). It must exist even when empty — the go command checks.
	writeVetx := func(sums *Summaries) {
		if cfg.VetxOutput == "" {
			return
		}
		var data []byte
		if sums != nil {
			if enc, err := sums.Encode(); err == nil {
				data = enc
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	// Standard-library units contribute no computed summaries. Walking the
	// runtime would conclude that every allocation "may block" (GC start
	// parks on a channel), drowning the engine-level invariants in noise.
	// The standalone loader never walks the stdlib either: the curated
	// builtinFacts (sync.Cond.Wait, sync.WaitGroup.Wait, time.Sleep, ...)
	// are the only stdlib knowledge, identically in both drivers. The cfg's
	// Standard map only marks a unit's *imports*, so stdlib units are
	// recognized by their source living under GOROOT.
	if isStdUnit(cfg) {
		writeVetx(nil)
		return 0
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	lp, err := CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, nil, imp)
	if err != nil {
		// A dependency pass (VetxOnly) covers packages skylint never
		// analyzes for diagnostics — including ones (cgo, assembly-backed
		// stdlib internals) the source checker cannot handle. Summaries for
		// those degrade to empty rather than failing the whole vet run.
		writeVetx(nil)
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		return 1
	}
	deps := readDepSummaries(cfg)
	lp.Summaries = ComputeSummaries(fset, lp.Files, lp.Info, deps)
	if cfg.VetxOnly {
		// Dependency pass: facts only, no diagnostics wanted.
		writeVetx(lp.Summaries)
		return 0
	}
	diags, err := lp.Run(analyzers)
	writeVetx(lp.Summaries)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isStdUnit reports whether the vet unit is a standard-library package: its
// directory resolves under GOROOT/src. GOROOT comes from the environment the
// go command launched us with, falling back to the toolchain's build-time
// root.
func isStdUnit(cfg vetConfig) bool {
	goroot := os.Getenv("GOROOT")
	if goroot == "" {
		goroot = runtime.GOROOT()
	}
	if goroot == "" || cfg.Dir == "" {
		return false
	}
	rel, err := filepath.Rel(filepath.Join(goroot, "src"), cfg.Dir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) && !filepath.IsAbs(rel)
}

// readDepSummaries merges the function summaries of every dependency unit
// from the vetx files the go command recorded in PackageVetx. Unreadable or
// pre-summary (empty) files contribute nothing.
func readDepSummaries(cfg vetConfig) *Summaries {
	merged := NewSummaries()
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		v, err := DecodeSummaries(data, nil)
		if err != nil {
			continue
		}
		mergeInto(merged, v)
	}
	return merged
}
