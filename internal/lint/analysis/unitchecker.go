package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// This file speaks the `go vet -vettool=...` driver protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker without the dependency. The go
// command probes the tool three ways:
//
//   - `tool -V=full` — a version/content fingerprint used as a cache key;
//   - `tool -flags`  — a JSON description of supported flags (none here);
//   - `tool <unit>.cfg` — analyze one compilation unit described by a JSON
//     config, with dependency types read from compiler export data.
//
// Diagnostics print to stderr as file:line:col: message and the process
// exits nonzero, which go vet surfaces per package.

// vetConfig is the JSON the go command writes for each unit. Field names
// are fixed by the protocol; unknown fields are ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// VettoolMain implements the whole vettool entry protocol for args (the
// program arguments after the command name). It returns false when args do
// not look like a vettool invocation — the caller should fall through to
// standalone mode — and otherwise exits the process itself.
func VettoolMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 && args[0] == "-V=full" {
		// Fingerprint the binary content: rebuilding skylint invalidates
		// go vet's result cache, exactly like the x/tools handshake.
		name := filepath.Base(os.Args[0])
		sum := [sha256.Size]byte{}
		if data, err := os.ReadFile(os.Args[0]); err == nil {
			sum = sha256.Sum256(data)
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, sum)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no analyzer flags
		os.Exit(0)
	}
	if len(args) == 1 && filepath.Ext(args[0]) == ".cfg" {
		os.Exit(runUnit(args[0], analyzers))
	}
	return false
}

// runUnit analyzes one vet compilation unit and returns the process exit
// code.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "skylint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the facts file to exist afterwards even
	// though skylint exports no facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no diagnostics wanted.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	lp, err := CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, nil, imp)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		return 1
	}
	diags, err := lp.Run(analyzers)
	writeVetx()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
