package analysis_test

import (
	"go/importer"
	"go/token"
	"strings"
	"testing"

	"sdss/internal/lint/analysis"
)

// checkSummaries loads src as package p and returns its computed summaries
// layered over deps.
func checkSummaries(t *testing.T, src string, deps *analysis.Summaries) *analysis.Summaries {
	t.Helper()
	fset := token.NewFileSet()
	lp, err := analysis.CheckFiles(fset, "p", []string{"p.go"},
		map[string]any{"p.go": src}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	return analysis.ComputeSummaries(fset, lp.Files, lp.Info, deps)
}

func lookup(t *testing.T, s *analysis.Summaries, key string) *analysis.FuncFacts {
	t.Helper()
	f := s.LookupKey(key)
	if f == nil {
		t.Fatalf("no summary for %s", key)
	}
	return f
}

const blockSrc = `package p

import "sync"

func direct(ch chan int) { ch <- 1 }

func indirect(ch chan int) { direct(ch) }

func viaWaitGroup(wg *sync.WaitGroup) { wg.Wait() }

func selectDefault(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func selectNoDefault(ch chan int, done chan struct{}) {
	select {
	case ch <- 1:
	case <-done:
	}
}

func spawnsOnly(ch chan int) {
	go func() { ch <- 1 }()
}

func recursesA(ch chan int) { recursesB(ch) }
func recursesB(ch chan int) {
	if cap(ch) > 0 {
		recursesA(ch)
	}
	ch <- 1
}

func forwards(in, out chan int) {
	for v := range in {
		out <- v
	}
}

func bufferedCompletion(xs []int) int {
	done := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) { done <- x }(x)
	}
	sum := 0
	for range xs {
		sum += <-done
	}
	return sum
}
`

func TestSummaryBlocking(t *testing.T) {
	s := checkSummaries(t, blockSrc, nil)
	cases := []struct {
		key                     string
		mayBlock, unguardedSend bool
	}{
		{"p.direct", true, true},
		{"p.indirect", true, true}, // inherited through the call
		{"p.viaWaitGroup", true, false},
		{"p.selectDefault", false, false},
		{"p.selectNoDefault", true, false}, // blocks, but send is select-guarded
		{"p.spawnsOnly", false, false},     // the goroutine's facts are its own
		{"p.recursesA", true, true},        // fixed point over mutual recursion
		{"p.recursesB", true, true},
		{"p.forwards", true, false}, // range-over-channel forward is sanctioned
	}
	for _, c := range cases {
		f := lookup(t, s, c.key)
		if f.MayBlock != c.mayBlock {
			t.Errorf("%s: MayBlock = %v (%s), want %v", c.key, f.MayBlock, f.BlockWhy, c.mayBlock)
		}
		if f.UnguardedSend != c.unguardedSend {
			t.Errorf("%s: UnguardedSend = %v (%s), want %v", c.key, f.UnguardedSend, f.SendWhy, c.unguardedSend)
		}
	}

	// The completion channel is made with cap len(xs) and sent once per
	// range iteration: the send is proven non-blocking, so only the
	// receives make the function blocking.
	f := lookup(t, s, "p.bufferedCompletion")
	if f.UnguardedSend {
		t.Errorf("bufferedCompletion: UnguardedSend = true (%s), want proven-buffered exemption", f.SendWhy)
	}
	if !f.MayBlock {
		t.Error("bufferedCompletion: MayBlock = false, want true (drain receives)")
	}
}

const batchSrc = `package p

type Batch []int

func RecycleBatch(b Batch) {}

func recycles(b Batch) { RecycleBatch(b) }

func recyclesViaHelper(b Batch) { recycles(b) }

func inspects(b Batch) int { return len(b) }

func stores(b Batch, sink *Batch) { *sink = b }

func sends(b Batch, out chan Batch) { out <- b }

func escapes(b Batch, f func(Batch)) { f(b) }

func returns(b Batch) Batch { return b }
`

func TestSummaryBatchFacts(t *testing.T) {
	s := checkSummaries(t, batchSrc, nil)
	cases := []struct {
		key                       string
		recycles                  bool
		params, consumes, unknown uint64
	}{
		{"p.recycles", true, 1, 1, 0},
		{"p.recyclesViaHelper", true, 1, 1, 0},
		{"p.inspects", false, 1, 0, 0},
		{"p.stores", false, 1, 1, 0},
		{"p.sends", false, 1, 1, 0},
		{"p.escapes", false, 1, 0, 1},
		{"p.returns", false, 1, 1, 0},
	}
	for _, c := range cases {
		f := lookup(t, s, c.key)
		if f.Recycles != c.recycles {
			t.Errorf("%s: Recycles = %v, want %v", c.key, f.Recycles, c.recycles)
		}
		if f.BatchParams != c.params || f.ConsumesBatch != c.consumes || f.UnknownBatch != c.unknown {
			t.Errorf("%s: masks = %b/%b/%b, want %b/%b/%b", c.key,
				f.BatchParams, f.ConsumesBatch, f.UnknownBatch, c.params, c.consumes, c.unknown)
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := checkSummaries(t, blockSrc, nil)
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := analysis.DecodeSummaries(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := back.LookupKey("p.indirect")
	if f == nil || !f.MayBlock || !f.UnguardedSend {
		t.Fatalf("round-tripped p.indirect = %+v, want MayBlock+UnguardedSend", f)
	}
}

// TestSummaryAcrossLayers simulates the cross-package import: facts decoded
// from another package's serialized layer propagate into callers.
func TestSummaryAcrossLayers(t *testing.T) {
	dep := checkSummaries(t, blockSrc, nil)
	data, err := dep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := analysis.DecodeSummaries(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same package name trick: the caller calls direct(), resolved against
	// the decoded layer by key.
	caller := checkSummaries(t, `package p

func direct(ch chan int) // declared elsewhere in the package

func wrapper(ch chan int) { direct(ch) }
`, decoded)
	f := lookup(t, caller, "p.wrapper")
	if !f.MayBlock || !f.UnguardedSend {
		t.Errorf("wrapper facts = %+v, want blocking+unguarded inherited across the decode boundary", f)
	}
}

func TestSummaryEncodeDeterministic(t *testing.T) {
	s := checkSummaries(t, blockSrc, nil)
	a, _ := s.Encode()
	b, _ := s.Encode()
	if string(a) != string(b) {
		t.Error("Encode is not deterministic")
	}
	if !strings.Contains(string(a), "p.direct") {
		t.Errorf("encoded summaries missing p.direct:\n%s", a)
	}
}
