package analysis

// The function-summary layer: per-function facts computed bottom-up over the
// call graph, so analyzers can follow a property through a call instead of
// stopping (or worse, guessing) at the call site. Facts are computed for
// every declared function in a package after type-checking, with callee
// facts drawn from (a) the same package (iterated to a fixed point, so
// mutual recursion converges), (b) already-summarized dependency packages —
// the standalone loader processes packages in import order, and the vettool
// driver serializes summaries into go vet's per-package .vetx facts files —
// and (c) a small built-in table for the handful of known-blocking stdlib
// calls (sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep).
//
// Summaries are deliberately optimistic about what they cannot see: a call
// through a function value or interface method contributes no blocking or
// send facts (flow tracking for function values is out of scope), and a
// function literal's body is not folded into its enclosing function (the
// closure may run on a different goroutine entirely). Analyzers that need
// the pessimistic direction — batch ownership, where an untracked callee
// must be assumed to take the batch — get it through the UnknownBatch mask,
// which separates "definitely consumes" from "escapes into code we cannot
// summarize".

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// FuncFacts is the summary one function exports to its callers.
type FuncFacts struct {
	// MayBlock: some path through the function parks the goroutine on a
	// channel operation, a no-default select, sync.Cond.Wait,
	// sync.WaitGroup.Wait, or time.Sleep — directly or through a callee.
	// Plain mutex acquisition is deliberately NOT MayBlock: bounded leaf
	// critical sections are the lockheld analyzer's domain.
	MayBlock bool   `json:"may_block,omitempty"`
	BlockWhy string `json:"block_why,omitempty"`

	// UnguardedSend: some reachable channel send is neither a select comm
	// case, nor a forward inside a range-over-channel loop, nor provably
	// buffered (the make(chan T, len(xs)) / one-send-per-range-xs shape).
	// Spawning a goroutine that (transitively) has this fact violates the
	// engine's cancellable fan-out invariant.
	UnguardedSend bool   `json:"unguarded_send,omitempty"`
	SendWhy       string `json:"send_why,omitempty"`

	// Recycles: the function (transitively) calls RecycleBatch.
	Recycles bool `json:"recycles,omitempty"`

	// BatchParams marks parameters of Batch type (bit i = param i).
	// ConsumesBatch marks batch params whose ownership the function takes:
	// recycled, sent, stored, appended, returned, or passed to a callee
	// that consumes. UnknownBatch marks batch params handed to code the
	// summary layer cannot see (function values, unsummarized packages):
	// "maybe consumed" — drop-checks must assume yes, use-after-checks no.
	BatchParams   uint64 `json:"batch_params,omitempty"`
	ConsumesBatch uint64 `json:"consumes_batch,omitempty"`
	UnknownBatch  uint64 `json:"unknown_batch,omitempty"`
}

func (f *FuncFacts) equal(g *FuncFacts) bool {
	return f.MayBlock == g.MayBlock && f.UnguardedSend == g.UnguardedSend &&
		f.Recycles == g.Recycles && f.BatchParams == g.BatchParams &&
		f.ConsumesBatch == g.ConsumesBatch && f.UnknownBatch == g.UnknownBatch &&
		f.BlockWhy == g.BlockWhy && f.SendWhy == g.SendWhy
}

// builtinFacts covers the stdlib calls whose blocking behavior the layer
// must know without source: export data carries no bodies to summarize.
var builtinFacts = map[string]*FuncFacts{
	"sync.WaitGroup.Wait": {MayBlock: true, BlockWhy: "sync.WaitGroup.Wait"},
	"sync.Cond.Wait":      {MayBlock: true, BlockWhy: "sync.Cond.Wait"},
	"time.Sleep":          {MayBlock: true, BlockWhy: "time.Sleep"},
}

// FuncKey is the canonical cross-package name facts are keyed by:
// pkgpath.Func for package functions, pkgpath.Type.Method for methods
// (pointer and value receivers collapse — ownership of the fact set is the
// declaration, not the method set).
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed && fn.Pkg() != nil {
			return fn.Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
		return fn.Name() // interface method expr on unnamed type; never summarized
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Summaries is a lookup view over function facts: a package's own functions
// layered over its dependencies' imported summaries and the builtin table.
type Summaries struct {
	fns  map[string]*FuncFacts
	deps *Summaries
}

// NewSummaries returns an empty fact set (lookups fall through to builtins).
func NewSummaries() *Summaries { return &Summaries{fns: map[string]*FuncFacts{}} }

// Lookup returns the facts for fn, or nil when nothing is known.
func (s *Summaries) Lookup(fn *types.Func) *FuncFacts {
	if fn == nil {
		return nil
	}
	return s.lookupKey(FuncKey(fn))
}

// LookupKey returns the facts stored under a canonical function key (see
// FuncKey), or nil when nothing is known.
func (s *Summaries) LookupKey(key string) *FuncFacts {
	if s == nil {
		return builtinFacts[key]
	}
	return s.lookupKey(key)
}

func (s *Summaries) lookupKey(key string) *FuncFacts {
	for cur := s; cur != nil; cur = cur.deps {
		if f, ok := cur.fns[key]; ok {
			return f
		}
	}
	return builtinFacts[key]
}

// Callee resolves a call expression to its static callee and facts. A nil
// *types.Func means the call goes through a function value or a conversion;
// a nil *FuncFacts with a non-nil callee means no summary is known
// (interface method, or a package outside the summarized set).
func (s *Summaries) Callee(info *types.Info, call *ast.CallExpr) (*types.Func, *FuncFacts) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil, nil
	}
	if s == nil {
		return fn, builtinFacts[FuncKey(fn)]
	}
	return fn, s.lookupKey(FuncKey(fn))
}

// CalleeFunc resolves the static callee of a call, or nil for calls through
// function values and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Encode serializes the view's own layer (not deps) for the vetx facts file
// and the standalone summary artifact, deterministically.
func (s *Summaries) Encode() ([]byte, error) {
	keys := make([]string, 0, len(s.fns))
	for k := range s.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]*FuncFacts, len(keys))
	for _, k := range keys {
		ordered[k] = s.fns[k]
	}
	return json.MarshalIndent(ordered, "", "\t")
}

// DecodeSummaries parses a serialized fact layer on top of deps. Empty or
// nil data decodes to an empty layer: pre-summary vetx files stay readable.
func DecodeSummaries(data []byte, deps *Summaries) (*Summaries, error) {
	s := &Summaries{fns: map[string]*FuncFacts{}, deps: deps}
	if len(data) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(data, &s.fns); err != nil {
		return nil, fmt.Errorf("decoding function summaries: %w", err)
	}
	return s, nil
}

// MergeSummaries flattens the given views into one layer, earlier views
// winning on key collisions (which only happen when two views share a
// dependency, where the facts are identical anyway).
func MergeSummaries(views ...*Summaries) *Summaries {
	m := NewSummaries()
	for _, v := range views {
		mergeInto(m, v)
	}
	return m
}

// ComputeSummaries derives facts for every function declared in the
// package's files and returns a view layering them over deps. Facts over
// the intra-package call graph iterate to a fixed point, so recursion and
// declaration order do not matter.
func ComputeSummaries(fset *token.FileSet, files []*ast.File, info *types.Info, deps *Summaries) *Summaries {
	own := &Summaries{fns: map[string]*FuncFacts{}, deps: deps}
	type declFn struct {
		key  string
		decl *ast.FuncDecl
	}
	var decls []declFn
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declFn{FuncKey(fn), fd})
		}
	}
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, d := range decls {
			w := &factWalker{fset: fset, info: info, sums: own, body: d.decl.Body}
			w.bindParams(d.decl)
			w.walk(d.decl.Body, false)
			prev := own.fns[d.key]
			if prev == nil || !prev.equal(&w.facts) {
				f := w.facts
				own.fns[d.key] = &f
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return own
}

// isBatchType reports whether t is a defined slice type named Batch —
// qe.Batch on the real tree, structural doubles in fixtures.
func isBatchType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Batch" {
		return false
	}
	_, isSlice := named.Underlying().(*types.Slice)
	return isSlice
}

// factWalker computes one function's facts in one pass over its body.
type factWalker struct {
	fset   *token.FileSet
	info   *types.Info
	sums   *Summaries
	body   *ast.BlockStmt
	params map[types.Object]int
	facts  FuncFacts
}

func (w *factWalker) bindParams(fd *ast.FuncDecl) {
	w.params = map[types.Object]int{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := w.info.Defs[name]; obj != nil && isBatchType(obj.Type()) {
				w.params[obj] = idx
				w.facts.BatchParams |= 1 << uint(idx)
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
}

func (w *factWalker) posStr(pos token.Pos) string {
	p := w.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (w *factWalker) blocking(pos token.Pos, why string) {
	if !w.facts.MayBlock {
		w.facts.MayBlock = true
		w.facts.BlockWhy = why + " at " + w.posStr(pos)
	}
}

func (w *factWalker) unguarded(pos token.Pos) {
	if !w.facts.UnguardedSend {
		w.facts.UnguardedSend = true
		w.facts.SendWhy = "channel send at " + w.posStr(pos)
	}
}

func (w *factWalker) unguardedVia(pos token.Pos, key, why string) {
	if !w.facts.UnguardedSend {
		w.facts.UnguardedSend = true
		w.facts.SendWhy = "call to " + key + " at " + w.posStr(pos) + " (" + why + ")"
	}
}

const (
	consumeDefinite = iota
	consumeUnknown
)

// consumeIdent records a batch parameter leaving the function's ownership.
// Re-slices are unwrapped: b[:0] is the same backing buffer as b.
func (w *factWalker) consumeIdent(e ast.Expr, kind int) {
	for {
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = sl.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.info.Uses[id]
	if obj == nil {
		return
	}
	idx, isParam := w.params[obj]
	if !isParam {
		return
	}
	if kind == consumeDefinite {
		w.facts.ConsumesBatch |= 1 << uint(idx)
	} else {
		w.facts.UnknownBatch |= 1 << uint(idx)
	}
}

// walk visits one node. fwd marks range-over-channel bodies, where a send
// forwards a stream whose producer already honors cancellation.
func (w *factWalker) walk(n ast.Node, fwd bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return // runs in its own context; not folded into the encloser
	case *ast.GoStmt:
		return // a different goroutine's facts
	case *ast.DeferStmt:
		// Deferred work runs on this goroutine before the function returns.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			for _, st := range lit.Body.List {
				w.walk(st, false)
			}
			for _, arg := range n.Call.Args {
				w.walk(arg, fwd)
			}
			return
		}
		w.walk(n.Call, fwd)
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range n.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(n.Select, "select with no default case")
		}
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CommClause)
			w.walkComm(cc.Comm, fwd)
			for _, st := range cc.Body {
				w.walk(st, fwd)
			}
		}
		return
	case *ast.SendStmt:
		if w.provenBuffered(n) {
			w.walk(n.Value, fwd)
			return
		}
		w.blocking(n.Arrow, "channel send")
		if !fwd {
			w.unguarded(n.Arrow)
		}
		w.consumeIdent(n.Value, consumeDefinite)
		w.walk(n.Value, fwd)
		return
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.blocking(n.OpPos, "channel receive")
		}
		w.walk(n.X, fwd)
		return
	case *ast.RangeStmt:
		inner := fwd
		if t := w.info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.blocking(n.For, "range over channel")
				inner = true
			}
		}
		w.walk(n.X, fwd)
		w.walk(n.Body, inner)
		return
	case *ast.CallExpr:
		w.walkCall(n, fwd)
		return
	case *ast.AssignStmt:
		// A batch parameter stored anywhere escapes this function's
		// ownership (the store's holder decides its fate).
		for _, rhs := range n.Rhs {
			w.consumeIdent(rhs, consumeDefinite)
			w.walk(rhs, fwd)
		}
		for _, lhs := range n.Lhs {
			w.walk(lhs, fwd)
		}
		return
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			w.consumeIdent(res, consumeDefinite)
			w.walk(res, fwd)
		}
		return
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.consumeIdent(kv.Value, consumeDefinite)
			} else {
				w.consumeIdent(el, consumeDefinite)
			}
			w.walk(el, fwd)
		}
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		w.walk(c, fwd)
		return false
	})
}

// walkComm visits a select comm statement: the select guards the operation
// itself, so neither a comm send nor a comm receive is blocking or
// unguarded, but their operand expressions still carry events.
func (w *factWalker) walkComm(comm ast.Stmt, fwd bool) {
	switch s := comm.(type) {
	case nil:
	case *ast.SendStmt:
		w.consumeIdent(s.Value, consumeDefinite)
		w.walk(s.Value, fwd)
		w.walk(s.Chan, fwd)
	case *ast.ExprStmt:
		if ue, ok := s.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			w.walk(ue.X, fwd)
			return
		}
		w.walk(s.X, fwd)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				w.walk(ue.X, fwd)
				continue
			}
			w.walk(rhs, fwd)
		}
	}
}

// walkCall folds a call's events into the facts: builtin consumption
// (append, RecycleBatch), callee summaries, and the unknown-escape rule for
// batch arguments.
func (w *factWalker) walkCall(call *ast.CallExpr, fwd bool) {
	defer func() {
		for _, arg := range call.Args {
			w.walk(arg, fwd)
		}
		w.walk(call.Fun, fwd)
	}()

	if name := builtinName(w.info, call); name != "" {
		switch name {
		case "len", "cap", "close", "new", "delete", "print", "println", "panic", "min", "max":
			return // inspects or terminates; never consumes a batch
		case "append", "copy":
			for _, arg := range call.Args {
				w.consumeIdent(arg, consumeDefinite)
			}
			return
		default:
			return
		}
	}
	if isRecycleCall(call) {
		w.facts.Recycles = true
		for _, arg := range call.Args {
			w.consumeIdent(arg, consumeDefinite)
		}
		return
	}
	fn, facts := w.sums.Callee(w.info, call)
	if fn == nil {
		// Function value or conversion: batch args escape into untracked code.
		for _, arg := range call.Args {
			w.consumeIdent(arg, consumeUnknown)
		}
		return
	}
	if facts == nil {
		// Known callee, no summary (interface method / unsummarized package):
		// optimistic on blocking, pessimistic on batch ownership.
		for _, arg := range call.Args {
			w.consumeIdent(arg, consumeUnknown)
		}
		return
	}
	key := FuncKey(fn)
	if facts.MayBlock {
		w.blocking(call.Lparen, "call to "+key+" ("+facts.BlockWhy+")")
	}
	if facts.UnguardedSend && !fwd {
		w.unguardedVia(call.Lparen, key, facts.SendWhy)
	}
	if facts.Recycles {
		w.facts.Recycles = true
	}
	sig, _ := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		pi := i
		if sig != nil && sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		bit := uint64(1) << uint(pi)
		switch {
		case facts.BatchParams&bit == 0:
			// The callee does not see this position as a batch (interface
			// param, re-typed): treat as an unknown escape if it is one.
			w.consumeIdent(arg, consumeUnknown)
		case facts.ConsumesBatch&bit != 0:
			w.consumeIdent(arg, consumeDefinite)
		case facts.UnknownBatch&bit != 0:
			w.consumeIdent(arg, consumeUnknown)
		}
	}
}

// builtinName returns the name of a Go builtin call, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
		return id.Name
	}
	return ""
}

// isRecycleCall matches RecycleBatch by terminal name, as batchown does:
// the real qe.RecycleBatch and fixture doubles alike.
func isRecycleCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "RecycleBatch"
	case *ast.SelectorExpr:
		return fn.Sel.Name == "RecycleBatch"
	}
	return false
}

// provenBuffered reports whether a send can be statically shown never to
// block: its channel is a local made once with make(chan T, len(xs)), this
// is the only send site to that channel, and the send executes at most once
// per iteration of a single `range xs` loop — the "completion send buffered
// to the fan-out width" idiom (qe's Blocking replay, the river exchange
// tests). Function literals crossed on the way up must be immediately
// invoked (go/defer/call), so they run at most once per crossing.
func (w *factWalker) provenBuffered(send *ast.SendStmt) bool {
	return ProvenBuffered(w.info, w.body, send)
}

// ProvenBuffered is the shared buffered-send proof; body is the declared
// function body enclosing the send. See provenBuffered for the shape.
func ProvenBuffered(info *types.Info, body *ast.BlockStmt, send *ast.SendStmt) bool {
	chID, ok := send.Chan.(*ast.Ident)
	if !ok {
		return false
	}
	chObj := info.Uses[chID]
	if chObj == nil {
		return false
	}
	// One definition: ch := make(chan T, len(xs)); no other assignment.
	var capArg ast.Expr
	defs := 0
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[id] != chObj && info.Uses[id] != chObj {
				continue
			}
			defs++
			if i < len(as.Rhs) {
				if mk, ok := as.Rhs[i].(*ast.CallExpr); ok && builtinCallNamed(info, mk, "make") && len(mk.Args) == 2 {
					capArg = mk.Args[1]
				}
			}
		}
		return true
	})
	if defs != 1 || capArg == nil {
		return false
	}
	lenCall, ok := capArg.(*ast.CallExpr)
	if !ok || !builtinCallNamed(info, lenCall, "len") || len(lenCall.Args) != 1 {
		return false
	}
	xsBase, xsField, ok := widthOperand(info, lenCall.Args[0])
	if !ok {
		return false
	}
	// This must be the only send site to the channel.
	sends := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if id, ok := s.Chan.(*ast.Ident); ok && info.Uses[id] == chObj {
				sends++
			}
		}
		return true
	})
	if sends != 1 {
		return false
	}
	// Climb from the send to the body: exactly one loop, a `range xs`, and
	// any function literal crossed is immediately invoked.
	parents := buildParents(body)
	var loops []ast.Node
	for n := ast.Node(send); n != nil && n != body; n = parents[n] {
		switch p := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, p)
		case *ast.RangeStmt:
			loops = append(loops, p)
		case *ast.FuncLit:
			par := parents[p]
			ok := false
			switch pp := par.(type) {
			case *ast.GoStmt:
				ok = pp.Call.Fun == p
			case *ast.DeferStmt:
				ok = pp.Call.Fun == p
			case *ast.CallExpr:
				ok = pp.Fun == p
			}
			if !ok {
				return false
			}
		}
	}
	if len(loops) != 1 {
		return false
	}
	rs, ok := loops[0].(*ast.RangeStmt)
	if !ok {
		return false
	}
	rBase, rField, ok := widthOperand(info, rs.X)
	return ok && rBase == xsBase && rField == xsField
}

// widthOperand resolves a fan-out-width expression — the len() argument or
// the range operand — to a comparable (base, field) object pair: a plain
// identifier (xs) or a field selection rooted at one (x.parts, the method
// shape). Anything deeper stays unproven.
func widthOperand(info *types.Info, e ast.Expr) (base, field types.Object, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj, nil, obj != nil
	case *ast.SelectorExpr:
		id, isID := e.X.(*ast.Ident)
		if !isID {
			return nil, nil, false
		}
		b, f := info.Uses[id], info.Uses[e.Sel]
		return b, f, b != nil && f != nil
	}
	return nil, nil, false
}

func builtinCallNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	return builtinName(info, call) == name
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
