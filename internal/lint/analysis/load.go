package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// Summaries layers this package's function facts over its imports'.
	Summaries *Summaries
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	// TestGoFiles are in-package _test.go files; XTestGoFiles form the
	// separate package_test external test package.
	TestGoFiles  []string
	XTestGoFiles []string
	// Import edges, needed to process packages bottom-up so every unit sees
	// its dependencies' function summaries. TestImports covers the
	// in-package test files (checked together with GoFiles, as go vet
	// does); XTestImports the external test package.
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// Load enumerates packages matching the patterns with `go list`, parses and
// type-checks each from source in dependency order, computes function
// summaries bottom-up, and returns them ready for RunAnalyzers. In-package
// test files are checked together with the package; external _test packages
// are loaded as their own unit after their base package. dir is the module
// directory to run in ("" = current). sumdir, when non-empty, is a summary
// artifact directory: dependencies outside the pattern set are read from it
// when present, and every analyzed package's summary is written back, so
// partial invocations (`skylint ./internal/qe`) still see cross-package
// facts from an earlier full run.
func Load(dir, sumdir string, patterns []string) ([]*LoadedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		listed = append(listed, p)
	}
	listed = topoOrder(listed)

	// One file set and one source importer shared across every package, so
	// common dependencies (stdlib, sibling internal packages) type-check
	// once, not per root.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	computed := map[string]*Summaries{}
	var pkgs []*LoadedPackage
	for _, p := range listed {
		units := []struct {
			path    string
			files   []string
			imports []string
		}{
			{p.ImportPath, append(append([]string{}, p.GoFiles...), p.TestGoFiles...),
				append(append([]string{}, p.Imports...), p.TestImports...)},
			{p.ImportPath + "_test", p.XTestGoFiles, p.XTestImports},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			abs := make([]string, len(u.files))
			for i, f := range u.files {
				abs[i] = filepath.Join(p.Dir, f)
			}
			lp, err := CheckFiles(fset, u.path, abs, nil, imp)
			if err != nil {
				return nil, err
			}
			deps := depSummaries(u.imports, computed, sumdir)
			lp.Summaries = ComputeSummaries(fset, lp.Files, lp.Info, deps)
			pkgs = append(pkgs, lp)
			if u.path == p.ImportPath {
				computed[p.ImportPath] = lp.Summaries
				if sumdir != "" {
					if err := writeSummaryFile(sumdir, p.ImportPath, lp.Summaries); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return pkgs, nil
}

// topoOrder sorts the listed packages so every package comes after the
// listed packages it (or its in-package tests) imports. Unlisted imports
// (stdlib, out-of-pattern deps) are ignored; a cycle — impossible for
// compilable base units — degrades to input order for the tail.
func topoOrder(listed []listedPackage) []listedPackage {
	byPath := make(map[string]int, len(listed))
	for i, p := range listed {
		byPath[p.ImportPath] = i
	}
	ordered := make([]listedPackage, 0, len(listed))
	state := make([]int, len(listed)) // 0 unvisited, 1 on stack, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		for _, imp := range append(append([]string{}, listed[i].Imports...), listed[i].TestImports...) {
			if j, ok := byPath[imp]; ok && state[j] == 0 {
				visit(j)
			}
		}
		state[i] = 2
		ordered = append(ordered, listed[i])
	}
	for i := range listed {
		visit(i)
	}
	return ordered
}

// depSummaries merges the summary views for a unit's imports: packages
// analyzed earlier in this invocation first, then sumdir artifacts from a
// prior run, silently skipping anything unknown (builtin facts still apply).
func depSummaries(imports []string, computed map[string]*Summaries, sumdir string) *Summaries {
	merged := NewSummaries()
	for _, path := range imports {
		if v, ok := computed[path]; ok {
			mergeInto(merged, v)
			continue
		}
		if sumdir == "" {
			continue
		}
		data, err := os.ReadFile(summaryFile(sumdir, path))
		if err != nil {
			continue
		}
		if v, err := DecodeSummaries(data, nil); err == nil {
			mergeInto(merged, v)
		}
	}
	return merged
}

// mergeInto flattens src's whole chain into dst, newest layer winning.
func mergeInto(dst *Summaries, src *Summaries) {
	for cur := src; cur != nil; cur = cur.deps {
		for k, f := range cur.fns {
			if _, ok := dst.fns[k]; !ok {
				dst.fns[k] = f
			}
		}
	}
}

// summaryFile maps an import path to its artifact filename.
func summaryFile(sumdir, importPath string) string {
	return filepath.Join(sumdir, strings.ReplaceAll(importPath, "/", "__")+".json")
}

func writeSummaryFile(sumdir, importPath string, s *Summaries) error {
	if err := os.MkdirAll(sumdir, 0o777); err != nil {
		return err
	}
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(summaryFile(sumdir, importPath), data, 0o666)
}

// CheckFiles parses the named files (or src overrides, keyed by filename)
// and type-checks them as one package using imp for imports. It is the
// shared core of the standalone loader, the vettool driver, and the test
// harness.
func CheckFiles(fset *token.FileSet, importPath string, filenames []string, src map[string]any, imp types.Importer) (*LoadedPackage, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &LoadedPackage{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run analyzes one loaded package with every analyzer and returns the
// surviving diagnostics.
func (lp *LoadedPackage) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.Info,
		Summaries: lp.Summaries,
	}
	return RunAnalyzers(pass, analyzers)
}
