package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	// TestGoFiles are in-package _test.go files; XTestGoFiles form the
	// separate package_test external test package.
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates packages matching the patterns with `go list`, parses and
// type-checks each from source, and returns them ready for RunAnalyzers.
// In-package test files are checked together with the package (as go vet
// does); external _test packages are loaded as their own unit. dir is the
// module directory to run in ("" = current).
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		listed = append(listed, p)
	}

	// One file set and one source importer shared across every package, so
	// common dependencies (stdlib, sibling internal packages) type-check
	// once, not per root.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*LoadedPackage
	for _, p := range listed {
		units := []struct {
			path  string
			files []string
		}{
			{p.ImportPath, append(append([]string{}, p.GoFiles...), p.TestGoFiles...)},
			{p.ImportPath + "_test", p.XTestGoFiles},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			abs := make([]string, len(u.files))
			for i, f := range u.files {
				abs[i] = filepath.Join(p.Dir, f)
			}
			lp, err := CheckFiles(fset, u.path, abs, nil, imp)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, lp)
		}
	}
	return pkgs, nil
}

// CheckFiles parses the named files (or src overrides, keyed by filename)
// and type-checks them as one package using imp for imports. It is the
// shared core of the standalone loader, the vettool driver, and the test
// harness.
func CheckFiles(fset *token.FileSet, importPath string, filenames []string, src map[string]any, imp types.Importer) (*LoadedPackage, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &LoadedPackage{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run analyzes one loaded package with every analyzer and returns the
// surviving diagnostics.
func (lp *LoadedPackage) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.Info,
	}
	return RunAnalyzers(pass, analyzers)
}
