// Package analysis is a dependency-free re-implementation of the subset of
// golang.org/x/tools/go/analysis that skylint needs. The archive's build
// environment must stay hermetic — the lint gate may not pull modules — so
// the framework is ~300 lines of stdlib go/ast + go/types instead of an
// external dependency. The API shape (Analyzer, Pass, Diagnostic) matches
// x/tools deliberately: if the repo ever vendors the real framework, the
// analyzers port by changing one import line.
//
// Two drivers share the analyzers: Load (load.go) typechecks packages from
// source for the standalone `skylint ./...` binary and the analysistest-style
// harness, and Unitchecker (unitchecker.go) speaks the `go vet -vettool`
// protocol so the suite runs inside an ordinary vet invocation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one skylint pass: a named, documented invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:skylint-ignore suppressions. It must be a valid identifier.
	Name string
	// Doc states the invariant the analyzer enforces; the first line is the
	// summary shown by `skylint -list`.
	Doc string
	// Run executes the check over one package and reports findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for every expression.
	TypesInfo *types.Info
	// Summaries exposes the interprocedural function facts for this package
	// and everything it imports (see summary.go). Drivers that cannot
	// compute summaries may leave it nil; analyzers must tolerate that and
	// degrade to their intraprocedural answer.
	Summaries *Summaries
	// Report delivers one finding. The driver applies suppression filtering.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Analyzer is stamped by the driver; printers
// and the -json encoder use it rather than a prefix baked into Message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// IgnoreDirective is the suppression marker: a comment of the form
//
//	//lint:skylint-ignore <analyzer> <reason...>
//
// on the flagged line or the line immediately above it silences that
// analyzer there. The reason is mandatory — an unexplained suppression is
// itself reported as a finding by the driver.
const IgnoreDirective = "lint:skylint-ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	file     string
	line     int // the directive's own line
	analyzer string
	reason   string
	used     bool
	pos      token.Pos
}

// collectSuppressions parses every ignore directive in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				sups = append(sups, &suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				})
			}
		}
	}
	return sups
}

// RunAnalyzers executes the analyzers over one loaded package, applying the
// suppression directives, and returns the surviving diagnostics sorted by
// position. Malformed suppressions (no analyzer name or no reason) and
// unused ones are themselves diagnostics: the suppression story must stay
// auditable.
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := collectSuppressions(pass.Fset, pass.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		p := *pass
		p.Analyzer = a
		p.Report = func(d Diagnostic) {
			dp := pass.Fset.Position(d.Pos)
			for _, s := range sups {
				if s.analyzer != a.Name || s.file != dp.Filename {
					continue
				}
				if s.line == dp.Line || s.line == dp.Line-1 {
					s.used = true
					if s.reason == "" {
						break // malformed; reported below, finding stands
					}
					return
				}
			}
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, s := range sups {
		switch {
		case !known[s.analyzer]:
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "skylint", Message: fmt.Sprintf(
				"skylint-ignore names unknown analyzer %q", s.analyzer)})
		case s.reason == "":
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "skylint", Message: fmt.Sprintf(
				"skylint-ignore %s has no reason; suppressions must say why", s.analyzer)})
		case !s.used:
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "skylint", Message: fmt.Sprintf(
				"skylint-ignore %s suppresses nothing here; remove it", s.analyzer)})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
