package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/token"
	"strings"
	"testing"

	"sdss/internal/lint/analysis"
)

// demo flags every return statement, giving the suppression machinery
// something deterministic to act on.
var demo = &analysis.Analyzer{
	Name: "demo",
	Doc:  "flags every return statement (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

const hygieneSrc = `package p

func a() int {
	//lint:skylint-ignore demo fixture-justified exception
	return 1
}

func b() int {
	//lint:skylint-ignore demo
	return 2
}

func c() int {
	//lint:skylint-ignore nosuch the analyzer does not exist
	return 3
}

func d() int {
	return 4
}

//lint:skylint-ignore demo nothing is flagged anywhere near this line
var unusedSite = 0
`

// TestSuppressionHygiene pins the driver's suppression contract: a
// reasoned suppression silences its finding; a reasonless one does not
// (and is itself reported); unknown-analyzer and unused directives are
// findings too.
func TestSuppressionHygiene(t *testing.T) {
	fset := token.NewFileSet()
	lp, err := analysis.CheckFiles(fset, "p", []string{"p.go"},
		map[string]any{"p.go": hygieneSrc}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lp.Run([]*analysis.Analyzer{demo})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, fset.Position(d.Pos).String()+": "+d.Analyzer+": "+d.Message)
	}

	want := []struct{ line, substr string }{
		{"p.go:9", "has no reason"},
		{"p.go:10", "demo: return statement"}, // reasonless suppression must not silence
		{"p.go:14", `unknown analyzer "nosuch"`},
		{"p.go:15", "demo: return statement"},
		{"p.go:19", "demo: return statement"},
		{"p.go:22", "suppresses nothing"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if !strings.HasPrefix(got[i], w.line+":") || !strings.Contains(got[i], w.substr) {
			t.Errorf("diag %d = %q, want line %s containing %q", i, got[i], w.line, w.substr)
		}
	}

	// Line 4's reasoned suppression must have silenced the return on line 5.
	for _, g := range got {
		if strings.HasPrefix(g, "p.go:5:") {
			t.Errorf("suppressed finding leaked: %s", g)
		}
	}
}
