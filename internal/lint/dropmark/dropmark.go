// Package dropmark enforces the timeout-visibility invariant of the query
// engine's streaming tree (internal/qe): when a node stops mid-production
// because the context fired, it must record rows.interrupted.Store(true)
// before bailing out. ExecutePlan reports ErrTimeout only when the deadline
// lapsed AND some node was actually cut off — a drop point that forgets the
// mark makes timeouts silently vanish (the stream just ends short, and the
// client can't tell a complete result from a truncated one).
//
// The analyzer runs in packages that define the idiom — a Rows struct with
// an `interrupted` field — and checks the two known drop-point shapes:
//
//   - a select case receiving from <ctx>.Done() whose body recycles a batch
//     (it just dropped work it owned) must call interrupted.Store(true);
//   - an `if <ctx>.Err() != nil { ... return }` early-exit inside a
//     function that produces batches (sends on a channel or recycles) must
//     call interrupted.Store(true) before returning.
//
// Recycling is recognized transitively: a drop point that releases its
// buffers through a helper is judged by the helper's Recycles summary fact,
// not just by a literal RecycleBatch call in the clause.
//
// Drops that are genuinely post-completion (limit reached, everything
// delivered) carry //lint:skylint-ignore dropmark <reason>.
package dropmark

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdss/internal/lint/analysis"
)

// Analyzer is the dropmark pass.
var Analyzer = &analysis.Analyzer{
	Name: "dropmark",
	Doc:  "mid-production drop points must set rows.interrupted before abandoning the stream",
	Run:  run,
}

// definesRowsIdiom reports whether the package declares a struct type named
// Rows with an `interrupted` field — the structural signature of the
// streaming engine.
func definesRowsIdiom(pkg *types.Package) bool {
	obj := pkg.Scope().Lookup("Rows")
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "interrupted" {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether the comm statement receives from a call to
// Done() on a context.Context.
func isDoneRecv(info *types.Info, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return false
	}
	call, ok := ue.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done" && isContext(info.TypeOf(sel.X))
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// isErrNilCheck reports whether cond is `<ctx>.Err() != nil` on a
// context.Context.
func isErrNilCheck(info *types.Info, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	call, lit := be.X, be.Y
	if isNil(call) {
		call, lit = be.Y, be.X
	}
	if !isNil(lit) {
		return false
	}
	ce, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Err" && isContext(info.TypeOf(sel.X))
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// marksInterrupted reports whether the subtree contains
// <x>.interrupted.Store(true).
func marksInterrupted(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Store" {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "interrupted" {
			return true
		}
		if len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == "true" {
				found = true
			}
		}
		return true
	})
	return found
}

// producesBatches reports whether the function body sends on a channel or
// recycles batches — i.e. participates in the streaming tree.
func producesBatches(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			found = found || recyclesBatch(pass, n)
		}
		return true
	})
	return found
}

// recyclesBatch reports whether the subtree recycles a batch — by a direct
// RecycleBatch call, or through a callee whose summary carries the
// transitive Recycles fact.
func recyclesBatch(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "RecycleBatch" {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if fn.Sel.Name == "RecycleBatch" {
				found = true
				return false
			}
		}
		if _, facts := pass.Summaries.Callee(pass.TypesInfo, call); facts != nil && facts.Recycles {
			found = true
			return false
		}
		return true
	})
	return found
}

func run(pass *analysis.Pass) error {
	if !definesRowsIdiom(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			checkBody(pass, body)
			return true
		})
	}
	return nil
}

func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// checkBody examines one function body's drop points. Nested function
// literals are visited by the outer Inspect separately, but their drop
// points would be double-reported here, so literals are skipped in this
// walk.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	produces := producesBatches(pass, body)
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.CommClause:
				if n.Comm == nil || !isDoneRecv(pass.TypesInfo, n.Comm) {
					return true
				}
				clause := &ast.BlockStmt{List: n.Body}
				if recyclesBatch(pass, clause) && !marksInterrupted(clause) {
					pass.Reportf(n.Pos(),
						"cancellation drop point recycles a batch without rows.interrupted.Store(true); the timeout will not surface")
				}
			case *ast.IfStmt:
				if !produces || !isErrNilCheck(pass.TypesInfo, n.Cond) {
					return true
				}
				if !endsInReturn(n.Body) {
					return true
				}
				if !marksInterrupted(n.Body) {
					pass.Reportf(n.Pos(),
						"context-cancelled early return abandons a producing stream without rows.interrupted.Store(true)")
				}
			}
			return true
		})
	}
}

// endsInReturn reports whether the block's last statement is a return.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
