// Package other is the dropmark negative fixture: no Rows/interrupted
// idiom, so identical drop shapes are out of scope.
package other

import "context"

type Batch []uint64

func RecycleBatch(b Batch) { _ = b }

func drop(ctx context.Context, out chan<- Batch, b Batch) {
	select {
	case out <- b:
	case <-ctx.Done():
		RecycleBatch(b)
	}
}
