// Package qe is the dropmark fixture: a structural double of the engine's
// streaming tree with marked and unmarked drop points.
package qe

import (
	"context"
	"sync/atomic"
)

type Result struct{ ObjID uint64 }

type Batch []Result

func RecycleBatch(b Batch) { _ = b }

// Rows carries the interrupted flag; its presence scopes the analyzer to
// this package.
type Rows struct {
	C           <-chan Batch
	interrupted atomic.Bool
}

// badDoneDrop recycles in a Done case without marking: the timeout
// vanishes.
func badDoneDrop(ctx context.Context, out chan<- Batch, b Batch, rows *Rows) {
	select {
	case out <- b:
	case <-ctx.Done(): // want `without rows.interrupted.Store`
		RecycleBatch(b)
	}
}

// badErrReturn abandons a producing stream without marking.
func badErrReturn(ctx context.Context, in <-chan Batch, rows *Rows) {
	for b := range in {
		RecycleBatch(b)
		if ctx.Err() != nil { // want `context-cancelled early return`
			return
		}
	}
}

// goodDoneDrop is the engine's sanctioned shape.
func goodDoneDrop(ctx context.Context, out chan<- Batch, b Batch, rows *Rows) {
	select {
	case out <- b:
	case <-ctx.Done():
		rows.interrupted.Store(true)
		RecycleBatch(b)
	}
}

// goodErrReturn marks before bailing.
func goodErrReturn(ctx context.Context, in <-chan Batch, rows *Rows) {
	for b := range in {
		RecycleBatch(b)
		if ctx.Err() != nil {
			rows.interrupted.Store(true)
			return
		}
	}
}

// nonProducer early-exits without touching batches: no stream is cut, no
// mark needed.
func nonProducer(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return 1
}

// doneWithoutBatch stops cleanly without dropping owned work.
func doneWithoutBatch(ctx context.Context, tick <-chan int) {
	select {
	case <-tick:
	case <-ctx.Done():
	}
}

// releaseOwned recycles through a helper: its summary carries the
// transitive Recycles fact to every drop point that calls it.
func releaseOwned(bs []Batch) {
	for _, b := range bs {
		RecycleBatch(b)
	}
}

// badDoneDropViaHelper drops owned work through releaseOwned without
// marking: only the Recycles summary fact exposes it.
func badDoneDropViaHelper(ctx context.Context, out chan<- Batch, bs []Batch, rows *Rows) {
	select {
	case out <- bs[0]:
	case <-ctx.Done(): // want `without rows.interrupted.Store`
		releaseOwned(bs)
	}
}

// goodDoneDropViaHelper marks before releasing through the helper.
func goodDoneDropViaHelper(ctx context.Context, out chan<- Batch, bs []Batch, rows *Rows) {
	select {
	case out <- bs[0]:
	case <-ctx.Done():
		rows.interrupted.Store(true)
		releaseOwned(bs)
	}
}

// suppressedDrop documents a deliberate post-completion drop.
func suppressedDrop(ctx context.Context, out chan<- Batch, b Batch, rows *Rows) {
	select {
	case out <- b:
	//lint:skylint-ignore dropmark limit already reached; the stream is complete as delivered
	case <-ctx.Done():
		RecycleBatch(b)
	}
}
