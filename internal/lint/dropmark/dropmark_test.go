package dropmark_test

import (
	"testing"

	"sdss/internal/lint/dropmark"
	"sdss/internal/lint/linttest"
)

func TestDropMark(t *testing.T) {
	// Package qe defines the Rows/interrupted idiom and is checked; package
	// other has no Rows type and is exempt even with identical code.
	linttest.Run(t, linttest.Dir(), dropmark.Analyzer, "qe", "other")
}
