package lint

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// goldenSuppressions is the number of //lint:skylint-ignore directives in
// production and test code (fixtures and the lint packages themselves are
// excluded — fixtures carry directives as test inputs). The interprocedural
// summary layer brought this from 15 down to 13 by proving the two
// ctxcancel cases (buffered completion/replay sends sized by len(parts))
// safe without a directive. Adding a suppression is sometimes right — but
// it must move this number, so the reviewer sees it.
const goldenSuppressions = 13

// TestSuppressionCount walks the repository and pins the total count and
// the per-file distribution of skylint suppressions.
func TestSuppressionCount(t *testing.T) {
	root := filepath.Join("..", "..")
	perFile := map[string]int{}
	total := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "bin" || name == ".git" {
				return filepath.SkipDir
			}
			if rel, _ := filepath.Rel(root, path); rel == filepath.Join("internal", "lint") && path != root {
				// Analyzer packages and docs mention the directive as prose.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.Contains(path, "cmd/skylint") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "//lint:skylint-ignore") {
				rel, _ := filepath.Rel(root, path)
				perFile[filepath.ToSlash(rel)]++
				total++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != goldenSuppressions {
		var files []string
		for f, n := range perFile {
			files = append(files, fmt.Sprintf("%s: %d", f, n))
		}
		sort.Strings(files)
		t.Errorf("suppression count drifted: got %d, golden %d\n%s\nIf a new suppression is genuinely needed (with a reason), update goldenSuppressions; if one became unnecessary, delete it and lower the golden.",
			total, goldenSuppressions, strings.Join(files, "\n"))
	}
}
