// Package batchown enforces the query engine's batch-ownership discipline
// (internal/qe/pool.go): a Batch obtained from a channel or the pool is
// owned by exactly one consumer, which must forward it, return it, or pass
// it to RecycleBatch — once — and must never touch it after giving it up.
//
// The check is flow-insensitive and keyed to the engine's known drop-point
// idioms, statement-list by statement-list:
//
//   - after RecycleBatch(b), any later use of b in the same statement list
//     is a use-after-recycle (reassigning b starts a new ownership);
//   - recycling b twice in one list without a reassignment between is a
//     double recycle;
//   - after a direct send `ch <- b`, later uses of b in the same list are
//     uses after ownership transfer;
//   - a `for b := range ch` loop over a Batch channel whose body never
//     consumes b (recycle, send, append, call, assignment, or return) drops
//     the buffer on the floor — a pool leak.
//
// Batches recycled or sent inside a nested block almost always `continue`
// or `return` immediately, so only same-list ordering is judged: the check
// stays conservative and false positives carry //lint:skylint-ignore
// annotations with the reason.
package batchown

import (
	"go/ast"
	"go/types"

	"sdss/internal/lint/analysis"
)

// Analyzer is the batchown pass.
var Analyzer = &analysis.Analyzer{
	Name: "batchown",
	Doc:  "batch buffers must be forwarded, returned, or recycled exactly once and never used afterwards",
	Run:  run,
}

// isBatchType reports whether t is (a pointer or alias to) a defined slice
// type named Batch — qe.Batch on the real tree, any structural double in
// fixtures.
func isBatchType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Batch" {
		return false
	}
	_, isSlice := named.Underlying().(*types.Slice)
	return isSlice
}

// isBatchChan reports whether t is a channel of Batch.
func isBatchChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	return ok && isBatchType(ch.Elem())
}

// recycleArg returns the plain-identifier argument of a RecycleBatch call,
// or nil if call is not one (or recycles a non-identifier expression, which
// the flow-insensitive check cannot track).
func recycleArg(info *types.Info, call *ast.CallExpr) *ast.Ident {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return nil
	}
	if name != "RecycleBatch" || len(call.Args) != 1 {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkList(pass, n.List)
			case *ast.CaseClause:
				checkList(pass, n.Body)
			case *ast.CommClause:
				// The comm statement itself transfers ownership before the
				// body runs: `case out <- b:` means b is gone inside.
				list := n.Body
				if send, ok := n.Comm.(*ast.SendStmt); ok {
					list = append([]ast.Stmt{send}, n.Body...)
				}
				checkList(pass, list)
			case *ast.RangeStmt:
				checkRangeDrop(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkList walks one statement list in order, tracking which batch
// variables have been recycled or sent away.
func checkList(pass *analysis.Pass, list []ast.Stmt) {
	// gone maps a variable to why it is no longer owned.
	gone := make(map[types.Object]string)
	for _, stmt := range list {
		if len(gone) > 0 {
			reportUses(pass, stmt, gone)
		}
		// Reassignment grants fresh ownership.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(gone, obj)
					}
				}
			}
		}
		// Record ownership transfers made directly by this statement.
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id := recycleArg(pass.TypesInfo, call); id != nil && isBatchType(pass.TypeOf(id)) {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						gone[obj] = "RecycleBatch"
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := s.Value.(*ast.Ident); ok && isBatchType(pass.TypeOf(id)) {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					gone[obj] = "send"
				}
			}
		}
	}
}

// reportUses flags identifiers in stmt whose objects were already given up.
func reportUses(pass *analysis.Pass, stmt ast.Stmt, gone map[types.Object]string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		// An assignment re-grants ownership to its left-hand variables, but
		// its right-hand side still reads the old values: report the RHS
		// first, then clear the LHS objects.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				reportUses(pass, &ast.ExprStmt{X: rhs}, gone)
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(gone, obj)
					}
				} else {
					reportUses(pass, &ast.ExprStmt{X: lhs}, gone)
				}
			}
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id := recycleArg(pass.TypesInfo, call); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					if why, dead := gone[obj]; dead {
						verb := "double RecycleBatch of %s"
						if why == "send" {
							verb = "RecycleBatch of %s after it was sent (receiver owns it)"
						}
						pass.Reportf(id.Pos(), verb, id.Name)
					}
				}
				return false // the recycle call's own mention is not a use
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if why, dead := gone[obj]; dead {
			if why == "send" {
				pass.Reportf(id.Pos(), "use of batch %s after sending it (ownership moved to the receiver)", id.Name)
			} else {
				pass.Reportf(id.Pos(), "use of batch %s after RecycleBatch (buffer may already be reused)", id.Name)
			}
			delete(gone, obj) // one report per lost variable is enough
		}
		return true
	})
}

// checkRangeDrop flags `for b := range ch` loops over Batch channels whose
// bodies never consume b.
func checkRangeDrop(pass *analysis.Pass, loop *ast.RangeStmt) {
	if loop.X == nil || !isBatchChan(pass.TypeOf(loop.X)) {
		return
	}
	id, ok := loop.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		pass.Reportf(loop.Pos(), "batches received from this channel are dropped without RecycleBatch")
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	consumed := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// len/cap inspect without consuming; every other call (incl.
			// RecycleBatch and append) takes the batch.
			if fn, ok := n.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
				return true
			}
			for _, arg := range n.Args {
				if mentions(pass, arg, obj) {
					consumed = true
				}
			}
		case *ast.SendStmt:
			if mentions(pass, n.Value, obj) {
				consumed = true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if mentions(pass, rhs, obj) {
					consumed = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentions(pass, res, obj) {
					consumed = true
				}
			}
		}
		return true
	})
	if !consumed {
		pass.Reportf(loop.Pos(), "batch %s is consumed but never recycled, forwarded, or returned (pool leak — call RecycleBatch)", id.Name)
	}
}

// mentions reports whether expr references obj in a consuming position.
// References inside len/cap calls only inspect the batch and do not count.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
