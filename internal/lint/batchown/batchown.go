// Package batchown enforces the query engine's batch-ownership discipline
// (internal/qe/pool.go): a Batch obtained from a channel or the pool is
// owned by exactly one consumer, which must forward it, return it, or pass
// it to RecycleBatch — once — and must never touch it after giving it up.
//
// The check is flow-insensitive and keyed to the engine's known drop-point
// idioms, statement-list by statement-list:
//
//   - after RecycleBatch(b), any later use of b in the same statement list
//     is a use-after-recycle (reassigning b starts a new ownership);
//   - recycling b twice in one list without a reassignment between is a
//     double recycle;
//   - after a direct send `ch <- b` — or a call to a function whose
//     summary says it takes the batch (recycles, stores, forwards it) —
//     later uses of b in the same list are uses after ownership transfer;
//   - a `for b := range ch` loop over a Batch channel whose body never
//     consumes b (recycle, send, append, assignment, return, or a call
//     that may take it) drops the buffer on the floor — a pool leak.
//
// Call verdicts come from the function-summary layer: a callee whose
// summary marks a batch parameter consumed transfers ownership at the call
// site, one that marks it inspect-only (len-style helpers) does NOT count
// as consumption in the drop check, and an unsummarizable callee (function
// value, interface method) is assumed to take the batch. Batches recycled
// or sent inside a nested block almost always `continue` or `return`
// immediately, so only same-list ordering is judged: the check stays
// conservative and residual false positives carry //lint:skylint-ignore
// annotations with the reason.
package batchown

import (
	"go/ast"
	"go/types"
	"strings"

	"sdss/internal/lint/analysis"
)

// Analyzer is the batchown pass.
var Analyzer = &analysis.Analyzer{
	Name: "batchown",
	Doc:  "batch buffers must be forwarded, returned, or recycled exactly once and never used afterwards",
	Run:  run,
}

// isBatchType reports whether t is (a pointer or alias to) a defined slice
// type named Batch — qe.Batch on the real tree, any structural double in
// fixtures.
func isBatchType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Batch" {
		return false
	}
	_, isSlice := named.Underlying().(*types.Slice)
	return isSlice
}

// isBatchChan reports whether t is a channel of Batch.
func isBatchChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	return ok && isBatchType(ch.Elem())
}

// recycleArg returns the plain-identifier argument of a RecycleBatch call,
// or nil if call is not one (or recycles a non-identifier expression, which
// the flow-insensitive check cannot track).
func recycleArg(info *types.Info, call *ast.CallExpr) *ast.Ident {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return nil
	}
	if name != "RecycleBatch" || len(call.Args) != 1 {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkList(pass, n.List)
			case *ast.CaseClause:
				checkList(pass, n.Body)
			case *ast.CommClause:
				// The comm statement itself transfers ownership before the
				// body runs: `case out <- b:` means b is gone inside.
				list := n.Body
				if send, ok := n.Comm.(*ast.SendStmt); ok {
					list = append([]ast.Stmt{send}, n.Body...)
				}
				checkList(pass, list)
			case *ast.RangeStmt:
				checkRangeDrop(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkList walks one statement list in order, tracking which batch
// variables have been recycled or sent away.
func checkList(pass *analysis.Pass, list []ast.Stmt) {
	// gone maps a variable to why it is no longer owned.
	gone := make(map[types.Object]string)
	for _, stmt := range list {
		if len(gone) > 0 {
			reportUses(pass, stmt, gone)
		}
		// Reassignment grants fresh ownership.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(gone, obj)
					}
				}
			}
		}
		// Record ownership transfers made directly by this statement.
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id := recycleArg(pass.TypesInfo, call); id != nil && isBatchType(pass.TypeOf(id)) {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						gone[obj] = "RecycleBatch"
					}
				} else {
					recordCallTransfers(pass, call, gone)
				}
			}
		case *ast.SendStmt:
			if id, ok := s.Value.(*ast.Ident); ok && isBatchType(pass.TypeOf(id)) {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					gone[obj] = "send"
				}
			}
		}
	}
}

// recordCallTransfers consults the callee's summary and marks batch
// arguments it consumes as gone: the interprocedural leg of the ownership
// rule. Inspect-only and unknown callees leave ownership here — flagging a
// use after a MAYBE-consuming call would be guessing.
func recordCallTransfers(pass *analysis.Pass, call *ast.CallExpr, gone map[types.Object]string) {
	fn, facts := pass.Summaries.Callee(pass.TypesInfo, call)
	if fn == nil || facts == nil || facts.ConsumesBatch == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || !isBatchType(pass.TypeOf(id)) {
			continue
		}
		if facts.ConsumesBatch&paramBit(sig, i) == 0 {
			continue
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			gone[obj] = "taken by " + analysis.FuncKey(fn)
		}
	}
}

// paramBit maps argument position i to the callee's parameter bitmask slot,
// folding variadic overflow onto the last parameter.
func paramBit(sig *types.Signature, i int) uint64 {
	if sig != nil && sig.Variadic() && i >= sig.Params().Len() {
		i = sig.Params().Len() - 1
	}
	return uint64(1) << uint(i)
}

// reportUses flags identifiers in stmt whose objects were already given up.
func reportUses(pass *analysis.Pass, stmt ast.Stmt, gone map[types.Object]string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		// An assignment re-grants ownership to its left-hand variables, but
		// its right-hand side still reads the old values: report the RHS
		// first, then clear the LHS objects.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				reportUses(pass, &ast.ExprStmt{X: rhs}, gone)
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(gone, obj)
					}
				} else {
					reportUses(pass, &ast.ExprStmt{X: lhs}, gone)
				}
			}
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id := recycleArg(pass.TypesInfo, call); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					if why, dead := gone[obj]; dead {
						switch {
						case why == "send":
							pass.Reportf(id.Pos(), "RecycleBatch of %s after it was sent (receiver owns it)", id.Name)
						case strings.HasPrefix(why, "taken by "):
							pass.Reportf(id.Pos(), "RecycleBatch of %s after it was %s (the callee owns it)", id.Name, why)
						default:
							pass.Reportf(id.Pos(), "double RecycleBatch of %s", id.Name)
						}
					}
				}
				return false // the recycle call's own mention is not a use
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if why, dead := gone[obj]; dead {
			switch {
			case why == "send":
				pass.Reportf(id.Pos(), "use of batch %s after sending it (ownership moved to the receiver)", id.Name)
			case strings.HasPrefix(why, "taken by "):
				pass.Reportf(id.Pos(), "use of batch %s after it was %s (ownership moved to the callee)", id.Name, why)
			default:
				pass.Reportf(id.Pos(), "use of batch %s after RecycleBatch (buffer may already be reused)", id.Name)
			}
			delete(gone, obj) // one report per lost variable is enough
		}
		return true
	})
}

// checkRangeDrop flags `for b := range ch` loops over Batch channels whose
// bodies never consume b.
func checkRangeDrop(pass *analysis.Pass, loop *ast.RangeStmt) {
	if loop.X == nil || !isBatchChan(pass.TypeOf(loop.X)) {
		return
	}
	id, ok := loop.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		pass.Reportf(loop.Pos(), "batches received from this channel are dropped without RecycleBatch")
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	consumed := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if mentions(pass, n, obj) {
				consumed = true
			}
			return false // mentions judged the whole call subtree
		case *ast.SendStmt:
			if mentions(pass, n.Value, obj) {
				consumed = true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if mentions(pass, rhs, obj) {
					consumed = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentions(pass, res, obj) {
					consumed = true
				}
			}
		}
		return true
	})
	if !consumed {
		pass.Reportf(loop.Pos(), "batch %s is consumed but never recycled, forwarded, or returned (pool leak — call RecycleBatch)", id.Name)
	}
}

// mentions reports whether expr references obj in a consuming position.
// References inside len/cap calls only inspect the batch, and — through the
// summary layer — so do references passed to a callee whose summary marks
// that batch parameter neither consumed nor unknown. A callee the layer
// cannot see keeps the pessimistic reading: the mention counts.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
				return false
			}
			if recycleArg(pass.TypesInfo, call) != nil {
				// RecycleBatch IS the consumption the drop check wants.
				return true
			}
			fn, facts := pass.Summaries.Callee(pass.TypesInfo, call)
			if fn != nil && facts != nil {
				sig, _ := fn.Type().(*types.Signature)
				for i, arg := range call.Args {
					bit := paramBit(sig, i)
					inspectOnly := facts.BatchParams&bit != 0 &&
						facts.ConsumesBatch&bit == 0 && facts.UnknownBatch&bit == 0
					if inspectOnly {
						continue
					}
					if mentions(pass, arg, obj) {
						found = true
						break
					}
				}
				if !found && mentions(pass, call.Fun, obj) {
					found = true // a method receiver mention stays consuming
				}
				return false
			}
			return true // unsummarized callee: fall through, mentions count
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
