// Package b is the dependency side of the batchown multi-package fixture:
// Keep's consuming summary and Peek's inspect-only summary cross the
// package boundary serialized.
package b

type Item struct{ V float64 }

// Batch mirrors qe.Batch structurally: a defined slice type named Batch.
type Batch []Item

var stash []Batch

// Keep takes ownership: the batch escapes into the package store.
func Keep(bt Batch) { stash = append(stash, bt) }

// Peek only inspects the batch.
func Peek(bt Batch) int { return len(bt) }
