// Package a is the batchown fixture: a structural double of the query
// engine's batch pool (internal/qe/pool.go) with positive findings marked
// by want comments and the engine's sanctioned idioms left unmarked.
// Interprocedural cases route ownership through same-package helpers and —
// via serialized summaries — through the imported package b.
package a

import (
	"b"
	"context"
)

type Result struct {
	ObjID  uint64
	Values []float64
}

// Batch mirrors qe.Batch: a defined slice type named Batch.
type Batch []Result

// RecycleBatch mirrors qe.RecycleBatch.
func RecycleBatch(b Batch) { _ = b }

func getBatch(n int) Batch { return make(Batch, 0, n) }

func sink(Batch)  {}
func observe(int) {}
func anyUse(any)  {}

// useAfterRecycle is the classic violation.
func useAfterRecycle(in <-chan Batch) {
	for b := range in {
		RecycleBatch(b)
		sink(b) // want `use of batch b after RecycleBatch`
	}
}

// doubleRecycle returns one buffer twice.
func doubleRecycle(b Batch) {
	RecycleBatch(b)
	RecycleBatch(b) // want `double RecycleBatch of b`
}

// useAfterSend touches a batch whose ownership moved to the receiver.
func useAfterSend(out chan<- Batch, b Batch) {
	out <- b
	observe(len(b)) // want `use of batch b after sending it`
}

// sendCaseThenUse transfers in the comm clause, then reads in the body.
func sendCaseThenUse(ctx context.Context, out chan<- Batch, b Batch) {
	select {
	case out <- b:
		anyUse(b) // want `use of batch b after sending it`
	case <-ctx.Done():
		RecycleBatch(b)
	}
}

// droppedRange consumes a stream without ever recycling: a pool leak.
func droppedRange(in <-chan Batch) int {
	n := 0
	for b := range in { // want `batch b is consumed but never recycled`
		n += len(b)
	}
	return n
}

// Sanctioned idioms below — no findings expected.

// drainRecycle is the engine's standard drain loop.
func drainRecycle(in <-chan Batch) {
	for b := range in {
		RecycleBatch(b)
	}
}

// collect copies results out then recycles: Collect's shape.
func collect(in <-chan Batch) []Result {
	var all []Result
	for b := range in {
		all = append(all, b...)
		RecycleBatch(b)
	}
	return all
}

// forward re-slices and sends: ownership travels with the buffer.
func forward(ctx context.Context, in <-chan Batch, out chan<- Batch) {
	for b := range in {
		if len(b) > 4 {
			b = b[:4]
		}
		select {
		case out <- b:
		case <-ctx.Done():
			RecycleBatch(b)
			return
		}
	}
}

// reassignAfterRecycle grants fresh ownership from the pool.
func reassignAfterRecycle(b Batch) {
	RecycleBatch(b)
	b = getBatch(8)
	sink(b)
}

// emitAndReplace is the merge emit idiom: send, then refill in the body.
func emitAndReplace(ctx context.Context, out chan<- Batch, b Batch) Batch {
	select {
	case out <- b:
		b = getBatch(8)
		return b
	case <-ctx.Done():
		RecycleBatch(b)
		return nil
	}
}

// doubleSend ships the same buffer to two consumers: after the first send
// the receiver owns (and may recycle) it, so the second is a use of a
// batch that is no longer this goroutine's.
func doubleSend(a, b chan<- Batch, bt Batch) {
	a <- bt
	b <- bt // want `use of batch bt after sending it`
}

// Interprocedural shapes: the summary layer follows ownership through
// calls that the flow-insensitive check alone had to guess about.

var stored []Batch

// stash takes ownership: the batch escapes into the package-level store.
func stash(b Batch) { stored = append(stored, b) }

// inspectLen only reads: its summary marks the batch param inspect-only.
func inspectLen(b Batch) int { return len(b) }

// useAfterHelperTransfer hands the buffer to a helper whose summary says it
// keeps it, then touches it — invisible before the summary layer.
func useAfterHelperTransfer(b Batch) {
	stash(b)
	observe(len(b)) // want `use of batch b after it was taken by a.stash`
}

// recycleAfterHelperTransfer returns a buffer the helper already owns.
func recycleAfterHelperTransfer(b Batch) {
	stash(b)
	RecycleBatch(b) // want `RecycleBatch of b after it was taken by a.stash`
}

// leakThroughInspector drains a stream through an inspect-only helper: the
// helper's summary proves nothing consumed the buffers, so the pool leaks.
func leakThroughInspector(in <-chan Batch) int {
	n := 0
	for b := range in { // want `batch b is consumed but never recycled`
		n += inspectLen(b)
	}
	return n
}

// drainThroughHelper recycles through a consuming helper: clean.
func drainThroughHelper(in <-chan Batch) {
	for b := range in {
		stash(b)
	}
}

// useAfterCrossKeep transfers across the package boundary: b.Keep's
// consuming summary arrives serialized, the way the vettool ships facts.
func useAfterCrossKeep(bt b.Batch, n *int) {
	b.Keep(bt)
	*n = len(bt) // want `use of batch bt after it was taken by b.Keep`
}

// leakThroughCrossPeek: b.Peek's summary says inspect-only, so this stream
// still leaks even though every batch visits a call.
func leakThroughCrossPeek(in <-chan b.Batch) int {
	n := 0
	for bt := range in { // want `batch bt is consumed but never recycled`
		n += b.Peek(bt)
	}
	return n
}

// drainThroughCrossKeep consumes across the boundary: clean.
func drainThroughCrossKeep(in <-chan b.Batch) {
	for bt := range in {
		b.Keep(bt)
	}
}

// tryThenGuardedSend is the morsel worker's emit: a non-blocking fast path
// whose failure leaves ownership here, then a guarded retry. Only one send
// can succeed, so no finding — the comm clauses are separate statement
// lists and the default branch retains the buffer.
func tryThenGuardedSend(ctx context.Context, out chan<- Batch, bt Batch) bool {
	select {
	case out <- bt:
		return true
	default:
	}
	select {
	case out <- bt:
		return true
	case <-ctx.Done():
		RecycleBatch(bt)
		return false
	}
}
