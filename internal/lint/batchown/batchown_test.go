package batchown_test

import (
	"testing"

	"sdss/internal/lint/batchown"
	"sdss/internal/lint/linttest"
)

func TestBatchOwn(t *testing.T) {
	linttest.Run(t, linttest.Dir(), batchown.Analyzer, "a")
}
