// Package enginecopy is the project's copylocks: any struct that
// transitively embeds a sync primitive by value — qe.Engine foremost, which
// carries the morsel pool behind a sync.Once — must never be copied. A
// copied Engine forks the Once, so the copy lazily builds a second pool and
// the "one engine-wide scheduler" sizing invariant silently becomes N
// pools; a copied mutex is two locks that both believe they guard the same
// state. Engine.Clone (a pointer-receiver method building a fresh value
// field by field) is the sanctioned way to derive configured variants.
//
// Flagged copies of lock-bearing types:
//
//   - value receivers, parameters, and results in function signatures;
//   - assignments and variable initializations whose right-hand side reads
//     an existing value (identifier, field, index, or dereference —
//     composite literals and call results are fresh values, not copies);
//   - range statements whose value variable copies an element;
//   - call arguments and channel sends passing a value.
//
// The bodies of pointer-receiver Clone methods on lock-bearing types are
// exempt: that is where the sanctioned copy semantics live.
package enginecopy

import (
	"go/ast"
	"go/types"

	"sdss/internal/lint/analysis"
)

// Analyzer is the enginecopy pass.
var Analyzer = &analysis.Analyzer{
	Name: "enginecopy",
	Doc:  "structs embedding sync primitives (qe.Engine) must not be copied by value",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, memo: map[types.Type]string{}}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				c.checkSignature(n.Type, n.Recv)
				if n.Body != nil && c.isSanctionedClone(n) {
					return false // the sanctioned copy path
				}
			case *ast.FuncLit:
				c.checkSignature(n.Type, nil)
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.GenDecl:
				c.checkVarDecl(n)
			case *ast.RangeStmt:
				c.checkRange(n)
			case *ast.CallExpr:
				c.checkCallArgs(n)
			case *ast.SendStmt:
				c.checkCopy(n.Value, "channel send")
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkCopy(res, "return")
				}
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// memo caches lockPath per type; "" = no sync primitive inside,
	// non-empty = the first one found (e.g. "sync.Once").
	memo map[types.Type]string
}

// lockPath reports the first sync primitive a type transitively contains
// by value, or "".
func (c *checker) lockPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := c.memo[t]; ok {
		return p
	}
	c.memo[t] = "" // breaks cycles; overwritten below
	path := ""
	switch u := t.(type) {
	case *types.Named:
		if prim := syncPrimitive(u); prim != "" {
			path = prim
		} else {
			path = c.lockPath(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := c.lockPath(u.Field(i).Type()); p != "" {
				path = p
				break
			}
		}
	case *types.Array:
		path = c.lockPath(u.Elem())
	}
	c.memo[t] = path
	return path
}

// syncPrimitive matches the uncopyable sync and sync/atomic types.
func syncPrimitive(n *types.Named) string {
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "sync":
		switch n.Obj().Name() {
		case "Mutex", "RWMutex", "Once", "Cond", "WaitGroup", "Pool", "Map":
			return "sync." + n.Obj().Name()
		}
	case "sync/atomic":
		// Every named type in sync/atomic embeds noCopy semantics.
		return "sync/atomic." + n.Obj().Name()
	}
	return ""
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// isCopySource reports whether e reads an existing value (so assigning or
// passing it copies). Composite literals, call results, and conversions
// produce fresh values; &x takes an address.
func isCopySource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isCopySource(e.X)
	}
	return false
}

// checkCopy flags e when it is a copy source of lock-bearing type.
func (c *checker) checkCopy(e ast.Expr, what string) {
	if e == nil || !isCopySource(e) {
		return
	}
	t := c.pass.TypeOf(e)
	prim := c.lockPath(t)
	if prim == "" {
		return
	}
	c.pass.Reportf(e.Pos(),
		"%s copies lock-bearing type %s (contains %s); pass a pointer, or derive values through its Clone method",
		what, typeName(t), prim)
}

// checkSignature flags by-value receivers, params, and results of
// lock-bearing type.
func (c *checker) checkSignature(ft *ast.FuncType, recv *ast.FieldList) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := c.pass.TypeOf(f.Type)
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			prim := c.lockPath(t)
			if prim == "" {
				continue
			}
			c.pass.Reportf(f.Type.Pos(),
				"%s of lock-bearing type %s (contains %s) is passed by value; use a pointer",
				what, typeName(t), prim)
		}
	}
	flag(recv, "receiver")
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// isSanctionedClone matches a pointer-receiver method named Clone on a
// lock-bearing type: the one place copy-shaped code is the point.
func (c *checker) isSanctionedClone(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Clone" || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := c.pass.TypeOf(fd.Recv.List[0].Type)
	p, isPtr := t.(*types.Pointer)
	return isPtr && c.lockPath(p.Elem()) != ""
}

func (c *checker) checkAssign(n *ast.AssignStmt) {
	// `_ = v` evaluates without materializing a second value.
	allBlank := true
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
			break
		}
	}
	if allBlank {
		return
	}
	for _, rhs := range n.Rhs {
		c.checkCopy(rhs, "assignment")
	}
}

func (c *checker) checkVarDecl(n *ast.GenDecl) {
	for _, spec := range n.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			c.checkCopy(v, "variable initialization")
		}
	}
}

func (c *checker) checkRange(n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	if id, ok := n.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := c.pass.TypeOf(n.Value)
	prim := c.lockPath(t)
	if prim == "" {
		return
	}
	c.pass.Reportf(n.Value.Pos(),
		"range value copies lock-bearing type %s (contains %s) per iteration; range over indices or pointers",
		typeName(t), prim)
}

func (c *checker) checkCallArgs(n *ast.CallExpr) {
	// A conversion T(x) re-types the same value; vet treats it as a copy
	// only for concrete lock types — keep it simple and skip conversions.
	if c.pass.TypesInfo != nil {
		if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
			return
		}
	}
	if id, ok := n.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return // len/cap/new(&T{}) etc. do not copy the value
		}
	}
	for _, arg := range n.Args {
		c.checkCopy(arg, "call argument")
	}
}
