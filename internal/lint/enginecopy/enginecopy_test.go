package enginecopy_test

import (
	"testing"

	"sdss/internal/lint/enginecopy"
	"sdss/internal/lint/linttest"
)

func TestEngineCopy(t *testing.T) {
	linttest.Run(t, linttest.Dir(), enginecopy.Analyzer, "a")
}
