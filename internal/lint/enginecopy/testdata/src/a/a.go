// Package a is the enginecopy fixture: an Engine lookalike whose sync.Once
// must never be forked by a value copy, plus the sanctioned Clone path and
// the fresh-value shapes that are not copies.
package a

import (
	"sync"
	"sync/atomic"
)

// Engine mirrors qe.Engine: the Once guards lazy construction of shared
// machinery, so a value copy silently forks that machinery.
type Engine struct {
	once sync.Once
	size int
}

// Clone is the sanctioned derivation path: pointer receiver, fresh value
// out. Its body is exempt — the copy in here is the point.
func (e *Engine) Clone() *Engine {
	cp := *e
	cp.once = sync.Once{}
	return &cp
}

// wrapper is lock-bearing transitively: it embeds Engine by value.
type wrapper struct {
	name string
	eng  Engine
}

// counter is lock-bearing through sync/atomic: every named atomic type
// carries noCopy semantics.
type counter struct {
	hits atomic.Int64
}

func (e Engine) badSize() int { // want `receiver of lock-bearing type a.Engine \(contains sync.Once\) is passed by value`
	return e.size
}

func badParam(e Engine, n int) int { // want `parameter of lock-bearing type a.Engine \(contains sync.Once\) is passed by value`
	return e.size + n
}

func badResult() (Engine, error) { // want `result of lock-bearing type a.Engine \(contains sync.Once\) is passed by value`
	return Engine{}, nil
}

var badLit = func(w wrapper) string { // want `parameter of lock-bearing type a.wrapper \(contains sync.Once\) is passed by value`
	return w.name
}

func badAssign(e *Engine) {
	cp := *e // want `assignment copies lock-bearing type a.Engine \(contains sync.Once\)`
	cp.size++
}

func badAssignField(w *wrapper) {
	eng := w.eng // want `assignment copies lock-bearing type a.Engine \(contains sync.Once\)`
	eng.size++
}

func badVarInit(c *counter) {
	var snapshot = *c // want `variable initialization copies lock-bearing type a.counter \(contains sync/atomic.Int64\)`
	snapshot.hits.Add(1)
}

func badRange(ws []wrapper) int {
	total := 0
	for _, w := range ws { // want `range value copies lock-bearing type a.wrapper \(contains sync.Once\) per iteration`
		total += len(w.name)
	}
	return total
}

func sink(v any) { _ = v }

func badCallArg(e *Engine) {
	sink(*e) // want `call argument copies lock-bearing type a.Engine \(contains sync.Once\)`
}

func badSend(ch chan Engine, e *Engine) {
	ch <- *e // want `channel send copies lock-bearing type a.Engine \(contains sync.Once\)`
}

func badReturn(e *Engine) Engine { // want `result of lock-bearing type a.Engine \(contains sync.Once\) is passed by value`
	return *e // want `return copies lock-bearing type a.Engine \(contains sync.Once\)`
}

// --- negatives ---

// Pointers move freely: no value is duplicated.
func goodPointer(e *Engine) *Engine {
	return e
}

func (w *wrapper) title() string {
	return w.name
}

// Composite literals and & are fresh values and addresses, not copies.
func goodFresh() {
	e := Engine{size: 4}
	p := &e
	q := &Engine{}
	_ = p
	_ = q
}

// A blank assignment evaluates without materializing a second value.
func goodBlank(e *Engine) {
	_ = *e
}

// Ranging by index never copies the element.
func goodIndexRange(ws []wrapper) int {
	total := 0
	for i := range ws {
		total += ws[i].eng.size
	}
	return total
}

// view shares Engine's underlying struct; conversions re-type rather than
// pass, and the analyzer deliberately leaves them to the Clone discipline.
type view Engine

func goodConversion(e *Engine) int {
	v := view(*e)
	return v.size
}

// Lock-free structs copy freely.
type plain struct{ a, b int }

func goodPlain(p plain) plain {
	cp := p
	return cp
}
