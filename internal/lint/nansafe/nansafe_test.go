package nansafe_test

import (
	"testing"

	"sdss/internal/lint/linttest"
	"sdss/internal/lint/nansafe"
)

func TestNaNSafe(t *testing.T) {
	// Package qe handles attribute values: bare float comparisons are
	// violations unless the function is NaN-aware. Package geom is outside
	// the attribute-handling set and is never checked.
	linttest.Run(t, linttest.Dir(), nansafe.Analyzer, "qe", "geom")
}
