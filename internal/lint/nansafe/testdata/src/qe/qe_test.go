// Test-file fixture: the harness entry points are exempt (exact assertions
// on constructed data are the point), but shared helpers are ordering
// oracles and stay checked.
package qe

import "math"

func load() float64 { return 1 }

// TestExactRoundTrip is an entry point: the bare == is sanctioned.
func TestExactRoundTrip() bool {
	a, b := load(), load()
	return a == b
}

// BenchmarkFold is likewise exempt by name.
func BenchmarkFold() bool {
	a, b := load(), load()
	return a < b
}

// keysEqualHelper is a shared comparator helper: its verdicts feed property
// checks, so it is held to the production standard.
func keysEqualHelper(a, b float64) bool {
	return a == b // want `NaN-unsafe == on two float values`
}

// totalLess is sanctioned through the bit-pattern functions: it works at
// the representation level where NaN and -0 are visible.
func totalLess(a, b float64) bool {
	if math.Float64bits(a) == math.Float64bits(b) {
		return false
	}
	return a < b
}
