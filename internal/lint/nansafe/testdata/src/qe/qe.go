// Package qe is the nansafe fixture: attribute-handling code where bare
// float comparisons break the total order.
package qe

import "math"

type result struct {
	key    float64
	values []float64
}

// badLess is the violation the analyzer exists for: a sort comparator that
// orders NaN rows differently per shard.
func badLess(a, b result) bool {
	return a.key < b.key // want `NaN-unsafe < on two float values`
}

// badEqual compares attribute values with ==: NaN never matches itself and
// -0 aliases +0.
func badEqual(a, b result) bool {
	return a.key == b.key // want `NaN-unsafe == on two float values`
}

// badFold is the zone/aggregate-fold mistake: min/max drift depending on
// which value arrived first when NaN is present.
func badFold(min *float64, v float64) {
	if v < *min { // want `NaN-unsafe < on two float values`
		*min = v
	}
}

// badClosure hides the comparison in a function literal; literals are
// judged on their own bodies.
func badClosure(xs []result) func(i, j int) bool {
	return func(i, j int) bool {
		return xs[i].key > xs[j].key // want `NaN-unsafe > on two float values`
	}
}

// keyCompare is the sanctioned idiom: it handles NaN explicitly, so its
// comparisons are deliberate.
func keyCompare(ka, kb float64) int {
	aNaN, bNaN := math.IsNaN(ka), math.IsNaN(kb)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

// threshold compares against constants: SQL predicate semantics, legal.
func threshold(v float64) bool {
	return v < 18.0 && v != 0
}

// ints are not floats.
func ints(a, b int) bool { return a < b }

// suppressed demonstrates the annotated escape hatch.
func suppressed(a, b float64) bool {
	//lint:skylint-ignore nansafe cost estimates only steer the planner; either outcome is correct
	return a <= b
}
