// Package geom is the nansafe negative fixture: geometry code compares
// coordinates freely — it is outside the attribute-handling package set.
package geom

type vec struct{ x, y, z float64 }

func inside(a, b vec) bool {
	return a.x*b.x+a.y*b.y+a.z*b.z >= b.z
}
