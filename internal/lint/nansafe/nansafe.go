// Package nansafe guards the engine's total-order invariant: attribute
// values and sort keys are float64s that may be NaN (unmeasured magnitudes)
// or -0, and a bare `a < b` or `a == b` on two of them silently violates
// the ordering contract the distributed merge depends on (a NaN row sorts
// differently depending on which shard it landed on). All such comparisons
// must go through NaN-aware comparators — keyCompare/sortLess for ordering,
// floatKey for hash-join keys, the zone-map fold for container stats.
//
// The analyzer runs only over the attribute-handling packages (qe, query,
// store — plus fixture doubles with those names) and flags binary
// comparisons where BOTH operands are non-constant floating expressions.
// Comparing against a literal (`r < 18`) is SQL predicate semantics — NaN
// compares false, which the bounds analyzer mirrors — and stays legal. In
// _test.go files, only the test entry points themselves (Test*, Benchmark*,
// Fuzz*, Example*) are exempt — they assert exact values on data they
// constructed. Shared test helpers (property-grid comparators, ordering
// oracles) feed verdicts back into invariant checks and are held to the
// same standard as production code.
//
// A function that calls math.IsNaN, math.Signbit, math.Float64bits, or
// math.Float64frombits is itself a sanctioned NaN-aware comparator: it is
// working at the representation level where NaN and -0 are visible, and its
// comparisons are presumed deliberate. Deliberate NaN-oblivious comparisons
// elsewhere carry //lint:skylint-ignore nansafe <reason>.
package nansafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sdss/internal/lint/analysis"
)

// Analyzer is the nansafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "nansafe",
	Doc:  "attribute/sort-key float comparisons must use the NaN-aware comparators",
	Run:  run,
}

// attrPkgs are the final import-path segments of packages that handle raw
// attribute values; only they are checked.
var attrPkgs = []string{"qe", "query", "store"}

func applies(path string) bool {
	segs := strings.Split(path, "/")
	last := segs[len(segs)-1]
	last = strings.TrimSuffix(last, "_test")
	for _, p := range attrPkgs {
		if last == p {
			return true
		}
	}
	return false
}

var cmpOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// nanAwareFuncs are the math functions whose presence marks a comparator
// that has thought about NaN/-0: the predicates, and the bit-pattern
// round-trips used by total-order keys.
var nanAwareFuncs = map[string]bool{
	"IsNaN":           true,
	"Signbit":         true,
	"Float64bits":     true,
	"Float64frombits": true,
}

// isNaNAware reports whether the function body calls one of the sanctioned
// math functions.
func isNaNAware(body *ast.BlockStmt) bool {
	aware := false
	ast.Inspect(body, func(n ast.Node) bool {
		if aware {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if base, ok := sel.X.(*ast.Ident); ok && base.Name == "math" && nanAwareFuncs[sel.Sel.Name] {
				aware = true
			}
		}
		return true
	})
	return aware
}

func run(pass *analysis.Pass) error {
	if !applies(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Test entry points assert exact values on data they constructed,
			// where == is the point. Shared helpers in the same files are
			// ordering oracles and stay checked.
			if inTest && fd.Recv == nil && isTestEntry(fd.Name.Name) {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// isTestEntry matches the go test harness entry-point naming.
func isTestEntry(name string) bool {
	for _, prefix := range []string{"Test", "Benchmark", "Fuzz", "Example"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkFunc flags unsanctioned float comparisons in one function. Nested
// function literals are judged on their own bodies: a NaN-aware closure
// inside an oblivious function is fine, and vice versa.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sanctioned := isNaNAware(body)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		if sanctioned {
			return true
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !cmpOps[be.Op] {
			return true
		}
		if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
			return true
		}
		// A constant operand means a predicate-style threshold test, not an
		// attribute-vs-attribute comparison.
		if isConst(pass, be.X) || isConst(pass, be.Y) {
			return true
		}
		pass.Reportf(be.OpPos,
			"NaN-unsafe %s on two float values; use a NaN-aware comparator (qe.keyCompare-style) or guard with math.IsNaN", be.Op)
		return true
	}
	// Walk statements, not the body node itself, so isNaNAware's verdict
	// applies to this body only.
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
	return
}

func isConst(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.Value != nil
}
