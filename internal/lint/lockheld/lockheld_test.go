package lockheld_test

import (
	"testing"

	"sdss/internal/lint/linttest"
	"sdss/internal/lint/lockheld"
)

func TestLockHeld(t *testing.T) {
	linttest.Run(t, linttest.Dir(), lockheld.Analyzer, "a")
}
