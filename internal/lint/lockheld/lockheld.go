// Package lockheld mechanizes the engine's critical-section discipline:
// code holding a mutex must not park the goroutine, and nested lock
// acquisitions must agree on one global order. The morsel pool makes both
// properties load-bearing — a blocking operation under pool.mu stalls
// every query on the engine, and an inverted acquisition pair between any
// two of the scheduler's locks (pool.mu, scanJob.blockMu, ...) is a
// deadlock waiting for the right interleaving.
//
// The analyzer runs the lockflow held-set walk over every function and
// function literal and reports:
//
//   - any blocking operation — channel send/receive, no-default select,
//     range over a channel, or a call whose interprocedural summary says it
//     may block — while at least one lock is held;
//   - a second Lock of a lock already held (self-deadlock);
//   - inverted acquisition-order pairs: lock B taken under A at one site
//     and A taken under B at another (both witnesses are reported);
//   - sync.Cond.Wait with more than one lock held — Wait releases only the
//     Cond's own locker, so every other held lock rides across the wait.
//
// Sends proven buffered (make(chan T, len(xs)) with one send per range
// iteration) and sync.Cond.Wait under exactly its own lock are exempt.
package lockheld

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"sdss/internal/lint/analysis"
	"sdss/internal/lint/lockflow"
)

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "no blocking operation or inconsistently-ordered second lock while holding a mutex",
	Run:  run,
}

type orderEdge struct{ first, second string }

func run(pass *analysis.Pass) error {
	edges := map[orderEdge]token.Pos{}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}

	lockflow.FuncBodies(pass.Files, func(name string, body, decl *ast.BlockStmt) {
		lockflow.Walk(pass.TypesInfo, body, func(n ast.Node, held map[string]token.Pos) {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, op := lockflow.LockOp(pass.TypesInfo, call); op != lockflow.OpNone {
					switch op {
					case lockflow.OpLock, lockflow.OpRLock:
						if id == "" {
							return
						}
						if _, self := held[id]; self && op == lockflow.OpLock {
							report(call.Pos(),
								"%s locks %s, which it already holds; sync.Mutex is not reentrant — this self-deadlocks",
								name, short(id))
							return
						}
						for prior := range held {
							if prior != id {
								edges[orderEdge{prior, id}] = call.Pos()
							}
						}
					case lockflow.OpCondWait:
						if len(held) >= 2 {
							report(call.Pos(),
								"sync.Cond.Wait in %s with %d locks held (%s); Wait releases only the Cond's locker — the others stay held across the park",
								name, len(held), heldList(held))
						}
					}
					return
				}
			}
			if len(held) == 0 {
				return
			}
			why, blocking := lockflow.Blocking(pass.TypesInfo, pass.Summaries, decl, n)
			if !blocking {
				return
			}
			report(n.Pos(),
				"%s in %s while holding %s; a parked goroutine must not hold engine locks — release before blocking",
				why, name, heldList(held))
		})
	})

	// Inverted acquisition orders: report both witnesses of each cycle pair.
	for e, pos := range edges {
		rpos, inverted := edges[orderEdge{e.second, e.first}]
		if !inverted || e.first > e.second {
			continue // the mirrored iteration reports the pair once, both sites
		}
		report(pos,
			"lock order inverted: %s acquired while holding %s here, but %s is acquired while holding %s at %s; pick one global order",
			short(e.second), short(e.first), short(e.first), short(e.second),
			pass.Fset.Position(rpos))
		report(rpos,
			"lock order inverted: %s acquired while holding %s here, but %s is acquired while holding %s at %s; pick one global order",
			short(e.first), short(e.second), short(e.second), short(e.first),
			pass.Fset.Position(pos))
	}
	return nil
}

// short trims the package path off a lock identity for readable messages:
// "sdss/internal/qe.pool.mu" → "qe.pool.mu".
func short(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

func heldList(held map[string]token.Pos) string {
	ids := make([]string, 0, len(held))
	for id := range held {
		ids = append(ids, short(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}
