// Package a is the lockheld fixture: blocking under a mutex, recursive
// acquisition, inverted lock orders, and Cond.Wait — with the released,
// guarded, and proven-buffered shapes that must stay quiet.
package a

import "sync"

type store struct {
	mu   sync.Mutex
	aux  sync.Mutex
	out  chan int
	vals map[int]int
}

// badSendUnderLock parks while holding mu.
func (s *store) badSendUnderLock(v int) {
	s.mu.Lock()
	s.out <- v // want `channel send in store.badSendUnderLock while holding a.store.mu`
	s.mu.Unlock()
}

// badDeferUnlock: the deferred unlock holds mu to function end, across the
// send.
func (s *store) badDeferUnlock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[v] = v
	s.out <- v // want `channel send in store.badDeferUnlock while holding a.store.mu`
}

// badReceiveUnderLock parks waiting for input.
func (s *store) badReceiveUnderLock() int {
	s.mu.Lock()
	v := <-s.out // want `channel receive in store.badReceiveUnderLock while holding a.store.mu`
	s.mu.Unlock()
	return v
}

// badSelectUnderLock: a no-default select parks even when one case is
// cancellation.
func (s *store) badSelectUnderLock(v int, done chan struct{}) {
	s.mu.Lock()
	select { // want `select with no default case in store.badSelectUnderLock while holding a.store.mu`
	case s.out <- v:
	case <-done:
	}
	s.mu.Unlock()
}

// badRecursive self-deadlocks: sync.Mutex is not reentrant.
func (s *store) badRecursive() {
	s.mu.Lock()
	s.mu.Lock() // want `store.badRecursive locks a.store.mu, which it already holds`
	s.mu.Unlock()
	s.mu.Unlock()
}

// blocksInside parks on a send; the summary layer carries that fact to
// callers.
func (s *store) blocksInside(v int) {
	s.out <- v
}

// badCallUnderLock blocks one call deep: only the interprocedural summary
// sees it.
func (s *store) badCallUnderLock(v int) {
	s.mu.Lock()
	s.blocksInside(v) // want `call to a.store.blocksInside, which may block .* while holding a.store.mu`
	s.mu.Unlock()
}

// goodLockThenSend releases before parking.
func (s *store) goodLockThenSend(v int) {
	s.mu.Lock()
	s.vals[v] = v
	s.mu.Unlock()
	s.out <- v
}

// goodGuardClause releases on the early-return path and again on the tail;
// the send runs lock-free.
func (s *store) goodGuardClause(v int) (int, bool) {
	s.mu.Lock()
	got, ok := s.vals[v]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	s.out <- got
	return got, true
}

// goodBranchRelease unlocks in both fall-through branches: released after.
func (s *store) goodBranchRelease(v int, flip bool) {
	s.mu.Lock()
	if flip {
		s.mu.Unlock()
	} else {
		s.vals[v] = v
		s.mu.Unlock()
	}
	s.out <- v
}

// goodTrySendUnderLock cannot park: the select has a default.
func (s *store) goodTrySendUnderLock(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
		return true
	default:
		return false
	}
}

// goodBufferedUnderLock: the channel is pre-sized to len(xs) with one send
// per iteration — the send cannot block, even under the lock.
func goodBufferedUnderLock(xs []int) chan int {
	out := make(chan int, len(xs))
	var mu sync.Mutex
	for _, x := range xs {
		mu.Lock()
		out <- x
		mu.Unlock()
	}
	return out
}

// lockAB and lockBA invert each other's acquisition order: both witness
// sites are reported.
func (s *store) lockAB() {
	s.mu.Lock()
	s.aux.Lock() // want `lock order inverted`
	s.aux.Unlock()
	s.mu.Unlock()
}

func (s *store) lockBA() {
	s.aux.Lock()
	s.mu.Lock() // want `lock order inverted`
	s.mu.Unlock()
	s.aux.Unlock()
}

type waiter struct {
	mu   sync.Mutex
	aux  sync.Mutex
	cond *sync.Cond
	n    int
}

// goodCondWait: Wait atomically releases the single held lock (its locker).
func (w *waiter) goodCondWait() {
	w.mu.Lock()
	for w.n == 0 {
		w.cond.Wait()
	}
	w.n--
	w.mu.Unlock()
}

// badCondWaitTwoLocks keeps aux held across the park: Wait releases only
// the Cond's own locker.
func (w *waiter) badCondWaitTwoLocks() {
	w.aux.Lock()
	w.mu.Lock()
	for w.n == 0 {
		w.cond.Wait() // want `sync.Cond.Wait in waiter.badCondWaitTwoLocks with 2 locks held`
	}
	w.n--
	w.mu.Unlock()
	w.aux.Unlock()
}

// goodSpawned: the goroutine body is its own context; the send there holds
// nothing (the spawn site released first).
func (s *store) goodSpawned(v int) {
	s.mu.Lock()
	s.vals[v] = v
	s.mu.Unlock()
	go func() {
		s.out <- v
	}()
}

// goodUnlockBuildRelock is the cache idiom done right: the lock covers only
// the map probes, never the blocking build between them.
func (s *store) goodUnlockBuildRelock(v int) int {
	s.mu.Lock()
	if got, ok := s.vals[v]; ok {
		s.mu.Unlock()
		return got
	}
	s.mu.Unlock()
	s.blocksInside(v) // lock released: blocking here is fine
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, ok := s.vals[v]; ok {
		return got
	}
	s.vals[v] = v
	return v
}
