package slotheld_test

import (
	"testing"

	"sdss/internal/lint/linttest"
	"sdss/internal/lint/slotheld"
)

func TestSlotHeld(t *testing.T) {
	linttest.Run(t, linttest.Dir(), slotheld.Analyzer, "a")
}
