// Package slotheld checks the morsel pool's deadlock discipline
// (internal/qe/morsel.go): code running on a pool slot must never park the
// goroutine, because the slot it occupies is exactly the capacity another
// query's morsels — possibly the ones that would unblock it — need to run.
// The sanctioned escape is pool.blockingSend, which releases the slot,
// performs the blocking send, and reacquires.
//
// Slot-held roots are the `run:` fields of the scheduler's job literals
// (poolJob{run: ...}, unit{run: ...}). From each root the analyzer walks
// the reachable code: function literals directly, same-package static
// callees by recursing into their bodies, and cross-package or
// export-data-only callees through their interprocedural may-block
// summaries. Function literals returned by a callee invoked from slot-held
// code are treated as slot-held too — that is how scanJob.emitTo's
// delivery closure reaches a pool worker.
//
// Flagged while slot-held:
//
//   - blocking channel operations: send/receive, no-default select, range
//     over a channel (sends proven buffered are exempt);
//   - calls whose summary says they may block, except blockingSend itself;
//   - sync.Cond.Wait;
//   - acquiring a mutex that is elsewhere held across a blocking
//     operation. A bounded leaf critical section (lock, touch memory,
//     unlock) cannot wedge the pool and is permitted; a lock someone parks
//     under can, so taking it from a slot is the same hazard one hop
//     removed.
package slotheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdss/internal/lint/analysis"
	"sdss/internal/lint/lockflow"
)

// Analyzer is the slotheld pass.
var Analyzer = &analysis.Analyzer{
	Name: "slotheld",
	Doc:  "no blocking operation while holding a morsel-pool slot (use blockingSend)",
	Run:  run,
}

// taint records why a lock is dangerous to take on a slot: a witness site
// where it is held across a blocking operation.
type taint struct {
	pos token.Pos
	why string
}

func run(pass *analysis.Pass) error {
	tainted := taintedLocks(pass)
	decls := declaredFuncs(pass)
	c := &checker{
		pass:    pass,
		tainted: tainted,
		decls:   decls,
		visited: map[*ast.BlockStmt]bool{},
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isJobLiteral(pass, lit) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "run" {
					c.checkRoot(kv.Value)
				}
			}
			return true
		})
	}
	return nil
}

// isJobLiteral matches the scheduler's work-item literals: a struct named
// poolJob or unit with a func-typed field named run.
func isJobLiteral(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	t := pass.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if name := named.Obj().Name(); name != "poolJob" && name != "unit" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "run" {
			_, isFunc := f.Type().Underlying().(*types.Signature)
			return isFunc
		}
	}
	return false
}

// taintedLocks scans the whole package for locks held across blocking
// operations — the ones a slot holder must not wait on.
func taintedLocks(pass *analysis.Pass) map[string]taint {
	tainted := map[string]taint{}
	lockflow.FuncBodies(pass.Files, func(name string, body, decl *ast.BlockStmt) {
		lockflow.Walk(pass.TypesInfo, body, func(n ast.Node, held map[string]token.Pos) {
			if len(held) == 0 {
				return
			}
			if call, ok := n.(*ast.CallExpr); ok {
				// Cond.Wait releases its locker; with one held lock there is
				// nothing left held across the park (lockheld covers >1).
				if _, op := lockflow.LockOp(pass.TypesInfo, call); op == lockflow.OpCondWait && len(held) == 1 {
					return
				}
			}
			why, blocking := lockflow.Blocking(pass.TypesInfo, pass.Summaries, decl, n)
			if !blocking {
				return
			}
			for id := range held {
				if _, seen := tainted[id]; !seen {
					tainted[id] = taint{pos: n.Pos(), why: why}
				}
			}
		})
	})
	return tainted
}

// declaredFuncs maps this package's function objects to their declarations.
func declaredFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	return decls
}

type checker struct {
	pass     *analysis.Pass
	tainted  map[string]taint
	decls    map[*types.Func]*ast.FuncDecl
	visited  map[*ast.BlockStmt]bool
	reported map[token.Pos]bool
}

// checkRoot resolves one `run:` field value to slot-held code.
func (c *checker) checkRoot(e ast.Expr) {
	switch e := e.(type) {
	case *ast.FuncLit:
		c.checkBody(e.Body)
	case *ast.Ident, *ast.SelectorExpr:
		fn := funcOf(c.pass.TypesInfo, e)
		c.checkCallee(fn, e.Pos())
	case *ast.CallExpr:
		// run: makeRunner(...) — the call happens at construction time; the
		// closures it returns are what run on the slot.
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, e); fn != nil {
			if decl, ok := c.decls[fn]; ok {
				c.checkReturnedClosures(decl.Body)
			}
		}
	}
}

func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkCallee checks a function that executes while the slot is held: by
// body when declared in this package, by summary otherwise.
func (c *checker) checkCallee(fn *types.Func, callPos token.Pos) {
	if fn == nil {
		return // func value: optimistic, like the summary layer
	}
	if fn.Name() == "blockingSend" {
		return // the sanctioned release/reacquire path
	}
	if decl, ok := c.decls[fn]; ok {
		c.checkBody(decl.Body)
		c.checkReturnedClosures(decl.Body)
		return
	}
	if facts := c.pass.Summaries.Lookup(fn); facts != nil && facts.MayBlock {
		c.report(callPos,
			"call to %s may block (%s) while holding a pool slot; release the slot first (blockingSend) or run off the pool",
			analysis.FuncKey(fn), facts.BlockWhy)
	}
}

// checkReturnedClosures treats function literals in a callee's return
// statements as slot-held: the caller invokes them in its own context.
func (c *checker) checkReturnedClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if lit, ok := res.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
		}
		return true
	})
}

// checkBody walks one slot-held body with the lock-aware walker.
func (c *checker) checkBody(body *ast.BlockStmt) {
	if c.visited[body] {
		return
	}
	c.visited[body] = true
	lockflow.Walk(c.pass.TypesInfo, body, func(n ast.Node, held map[string]token.Pos) {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, op := lockflow.LockOp(c.pass.TypesInfo, call); op != lockflow.OpNone {
				switch op {
				case lockflow.OpLock, lockflow.OpRLock:
					if tn, bad := c.tainted[id]; bad {
						c.report(call.Pos(),
							"acquires %s while holding a pool slot, but that lock is held across a %s at %s; a parked holder would wedge the pool",
							shortID(id), tn.why, c.pass.Fset.Position(tn.pos))
					}
				case lockflow.OpCondWait:
					c.report(call.Pos(),
						"sync.Cond.Wait while holding a pool slot; release the slot first (blockingSend)")
				}
				return
			}
			// Immediately-invoked literal runs here, on the slot.
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
			if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
				if fn.Name() == "blockingSend" {
					return
				}
				if decl, ok := c.decls[fn]; ok {
					c.checkBody(decl.Body)
					c.checkReturnedClosures(decl.Body)
					return
				}
				if facts := c.pass.Summaries.Lookup(fn); facts != nil && facts.MayBlock {
					c.report(call.Pos(),
						"call to %s may block (%s) while holding a pool slot; release the slot first (blockingSend) or run off the pool",
						analysis.FuncKey(fn), facts.BlockWhy)
				}
			}
			return
		}
		why, blocking := lockflow.Blocking(c.pass.TypesInfo, c.pass.Summaries, body, n)
		if !blocking {
			return
		}
		c.report(n.Pos(),
			"blocking %s while holding a pool slot; release the slot first (blockingSend) — see morsel.go's deadlock discipline",
			why)
	})
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported == nil {
		c.reported = map[token.Pos]bool{}
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

func shortID(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			return id[i+1:]
		}
	}
	return id
}
