// Package b is the dependency side of the slotheld multi-package fixture:
// its function summaries (Blocks may park, Fine cannot) are exported and
// imported by package a across the package boundary.
package b

// Blocks parks on the send: callers holding a pool slot must not call it.
func Blocks(ch chan int) {
	ch <- 1
}

// Fine never parks: the send has a default escape.
func Fine(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}
