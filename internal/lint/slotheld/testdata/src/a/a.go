// Package a is the slotheld fixture: a miniature of the morsel scheduler,
// with slot-held code that parks (bad) and code that honors the
// release-before-blocking discipline (good).
package a

import (
	"b"
	"sync"
)

// unit and poolJob mirror the scheduler's work-item shapes; the run fields
// are the slot-held roots.
type unit struct {
	id  int
	run func()
}

type poolJob struct {
	run    func(u unit)
	finish func(steals int64)
}

type pool struct {
	mu       sync.Mutex
	slotFree *sync.Cond
	running  int
}

// blockingSend is the sanctioned escape: release the slot, block, reacquire.
func (p *pool) blockingSend(send func() bool) bool {
	p.mu.Lock()
	p.running--
	p.mu.Unlock()
	ok := send()
	p.mu.Lock()
	for p.running >= 4 {
		p.slotFree.Wait()
	}
	p.running++
	p.mu.Unlock()
	return ok
}

type job struct {
	out chan int
	sum int
	// mu guards sum in bounded leaf sections only: safe to take on a slot.
	mu sync.Mutex
	// badMu is held across a blocking send in holdAcrossSend: tainted.
	badMu sync.Mutex
}

// holdAcrossSend parks while holding badMu — off the pool, so slotheld
// stays quiet here (lockheld's territory), but it taints badMu.
func (j *job) holdAcrossSend(v int) {
	j.badMu.Lock()
	j.out <- v
	j.badMu.Unlock()
}

// badDirectSend blocks on the slot: the channel send can park the worker.
func (j *job) badDirectSend(u unit) {
	j.out <- u.id // want `blocking channel send while holding a pool slot`
}

// badReceive parks waiting for input on the slot.
func (j *job) badReceive(u unit) {
	j.sum += <-j.out // want `blocking channel receive while holding a pool slot`
}

// badDrain ranges over a channel on the slot.
func (j *job) badDrain(u unit) {
	for v := range j.out { // want `blocking range over channel while holding a pool slot`
		j.sum += v
	}
}

// badTakesTainted acquires a lock someone parks under.
func (j *job) badTakesTainted(u unit) {
	j.badMu.Lock() // want `acquires a.job.badMu while holding a pool slot`
	j.sum += u.id
	j.badMu.Unlock()
}

// goodLeafLock is a bounded critical section: permitted on a slot.
func (j *job) goodLeafLock(u unit) {
	j.mu.Lock()
	j.sum += u.id
	j.mu.Unlock()
}

// goodTrySend never parks: the select has a default.
func (j *job) goodTrySend(u unit) {
	select {
	case j.out <- u.id:
	default:
		j.sum++
	}
}

// goodEscalate is the scheduler's emit discipline: try non-blocking, then
// route the parking send through blockingSend.
func (j *job) goodEscalate(p *pool, u unit) {
	select {
	case j.out <- u.id:
		return
	default:
	}
	p.blockingSend(func() bool {
		j.out <- u.id
		return true
	})
}

// emitTo mirrors scanJob.emitTo: the returned closure runs on the slot.
func (j *job) emitTo() func(int) bool {
	return func(v int) bool {
		j.out <- v // want `blocking channel send while holding a pool slot`
		return true
	}
}

func dispatchMethods(j *job, p *pool) {
	_ = &poolJob{run: j.badDirectSend, finish: func(int64) {}}
	_ = &poolJob{run: j.badReceive}
	_ = &poolJob{run: j.badDrain}
	_ = &poolJob{run: j.badTakesTainted}
	_ = &poolJob{run: j.goodLeafLock}
	_ = &poolJob{run: j.goodTrySend}
	_ = &poolJob{run: func(u unit) { j.goodEscalate(p, u) }}
}

func dispatchEmit(j *job) {
	_ = &poolJob{run: func(u unit) {
		emit := j.emitTo()
		emit(u.id)
	}}
}

func dispatchUnits(j *job) []unit {
	us := make([]unit, 2)
	us[0] = unit{id: 0, run: func() {
		j.out <- 0 // want `blocking channel send while holding a pool slot`
	}}
	us[1] = unit{id: 1, run: func() {
		// A goroutine spawned from slot-held code runs off the slot.
		go func() { j.sum++ }()
	}}
	return us
}

// finish hooks run on their own goroutine, never on a slot: a blocking
// completion signal there is fine (and is ctxcancel's concern, not ours).
func dispatchFinish(j *job, done chan struct{}) {
	_ = &poolJob{
		run:    j.goodLeafLock,
		finish: func(int64) { done <- struct{}{} },
	}
}

// dispatchCross queues work that calls across a package boundary: the
// may-block verdict comes from b's imported function summaries.
func dispatchCross(ch chan int) {
	_ = &poolJob{run: func(u unit) {
		b.Fine(ch)
		b.Blocks(ch) // want `call to b.Blocks may block`
	}}
}
