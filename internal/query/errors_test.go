package query

import (
	"errors"
	"strings"
	"testing"
)

// TestParseErrorPositions is the table-driven contract for positioned
// errors: every lexical and syntactic failure carries the 1-based line and
// column of the offending token, plus its text.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		col  int
		tok  string // "" = don't check
	}{
		{"missing from", "SELECT objid WHERE r < 2", 1, 14, "where"},
		{"bad table", "SELECT objid FROM nosuchtable", 1, 19, "nosuchtable"},
		{"truncated where", "SELECT objid FROM tag WHERE r <", 1, 32, "end of query"},
		{"bad limit", "SELECT objid FROM tag LIMIT 0", 1, 29, "0"},
		{"negative limit", "SELECT objid FROM tag LIMIT -1", 1, 29, "-"},
		{"unterminated string", "SELECT objid FROM tag WHERE class = 'GAL", 1, 37, ""},
		{"bad char", "SELECT objid FROM tag WHERE r § 2", 1, 31, "§"},
		{"lone bang", "SELECT objid FROM tag WHERE r ! 2", 1, 31, "!"},
		{"second line", "SELECT objid\nFROM tag\nWHERE r <", 3, 10, "end of query"},
		{"multiline operator", "SELECT objid FROM tag\n  WHERE ((r < 2", 2, 16, "end of query"},
		{"trailing garbage", "SELECT objid FROM tag LIMIT 5 garbage", 1, 31, "garbage"},
		{"join without on", "SELECT p.objid FROM photo p JOIN spec s WHERE p.r < 2", 1, 41, "where"},
		{"neighbors bad radius", "SELECT a.objid FROM NEIGHBORS(tag a, tag b, 0)", 1, 45, "0"},
		// "p.from" reads FROM as the column name (keywords are not
		// reserved after a dot), so the missing-FROM error lands on the
		// next token.
		{"dangling dot", "SELECT p. FROM photo p", 1, 16, "photo"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", c.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *ParseError: %v", err, err)
			}
			if pe.Line != c.line || pe.Col != c.col {
				t.Errorf("position %d:%d, want %d:%d (%v)", pe.Line, pe.Col, c.line, c.col, err)
			}
			if c.tok != "" && pe.Tok != c.tok {
				t.Errorf("token %q, want %q (%v)", pe.Tok, c.tok, err)
			}
			if !strings.Contains(err.Error(), "query:") {
				t.Errorf("error does not identify the package: %v", err)
			}
		})
	}
}

// TestParseErrorRendering pins the human-readable form.
func TestParseErrorRendering(t *testing.T) {
	e := &ParseError{Line: 2, Col: 7, Tok: "limut", Msg: "expected limit"}
	if got := e.Error(); got != `query: 2:7: expected limit (at "limut")` {
		t.Errorf("Error() = %q", got)
	}
	e2 := &ParseError{Line: 1, Col: 1, Msg: "empty query"}
	if got := e2.Error(); got != "query: 1:1: empty query" {
		t.Errorf("Error() = %q", got)
	}
}
