package query

import (
	"strings"
	"testing"
)

// FuzzParse drives arbitrary text through the full front end: parse,
// analyze, compile, and plan. Nothing here may panic; errors are the
// contract for bad input. The seed corpus covers every statement shape the
// grammar accepts (projections, predicates, spatial functions, aggregates,
// ORDER BY/LIMIT, set operations) plus near-miss malformed text.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT objid FROM tag",
		"SELECT * FROM photoobj WHERE r < 20",
		"SELECT objid, ra, dec FROM tag WHERE r < 21 AND u - g > 0.8",
		"SELECT objid FROM tag WHERE CIRCLE(185.0, 32.0, 15)",
		"SELECT objid FROM photoobj WHERE RECT(10, -5, 20, 5)",
		"SELECT COUNT(*) FROM tag WHERE class = 'GALAXY'",
		"SELECT SUM(r) FROM tag",
		"SELECT AVG(redshift) FROM specobj WHERE sn > 5",
		"SELECT MIN(r) FROM tag WHERE NOT (g < 15 OR r > 22)",
		"SELECT objid, r FROM tag ORDER BY r DESC LIMIT 10",
		"SELECT objid FROM tag WHERE flag('SATURATED')",
		"SELECT objid FROM tag WHERE sqrt(pow(u - g, 2)) < 1.5",
		"SELECT objid FROM tag WHERE r < 20 UNION SELECT objid FROM tag WHERE g < 20",
		"SELECT objid FROM tag INTERSECT SELECT objid FROM specobj",
		"SELECT objid FROM tag MINUS SELECT objid FROM tag WHERE r < 19",
		"(SELECT objid FROM tag) UNION (SELECT objid FROM tag)",
		"SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 18",
		"SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.u - p.g > s.redshift ORDER BY s.redshift DESC LIMIT 10",
		"SELECT COUNT(*) FROM photoobj p JOIN specobj s ON p.objid = s.objid",
		"SELECT photo.objid FROM photo JOIN spec ON photo.objid = spec.objid",
		"SELECT p.objid FROM photoobj p JOIN specobj s ON p.r = s.sn",
		"SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 0.5) WHERE a.objid < b.objid",
		"SELECT p.objid, t.objid FROM NEIGHBORS(photoobj p, tag t, 2)",
		"SELECT a.objid FROM NEIGHBORS(tag a, tag b, 1) WHERE a.r < 20 AND b.r < 20 AND CIRCLE(185, 32, 30)",
		"SELECT t.objid FROM tag t WHERE t.r < 20 ORDER BY t.r",
		"SELECT p.objid FROM photo p JOIN spec s",
		"SELECT p.objid FROM photo p JOIN spec s ON p.objid < s.objid",
		"SELECT x.objid FROM photo p JOIN spec s ON p.objid = s.objid",
		"SELECT class FROM photo p JOIN spec s ON p.objid = s.objid",
		"SELECT a.objid FROM NEIGHBORS(tag a, tag a, 1)",
		"SELECT a.objid FROM NEIGHBORS(tag a, tag b, -1)",
		"SELECT p. FROM photo p",
		"SELECT p..objid FROM photo p",
		"SELECT",
		"SELECT FROM WHERE",
		"SELECT objid FROM nosuchtable",
		"SELECT objid FROM tag WHERE r <",
		"SELECT objid FROM tag WHERE 'unterminated",
		"SELECT objid FROM tag WHERE ((((r < 20",
		"SELECT objid FROM tag LIMIT -1",
		"SELECT objid FROM tag ORDER BY",
		"\x00\xff SELECT",
		strings.Repeat("(", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse returned both a statement and error %v", err)
			}
			return
		}
		// A parsed statement must survive the rest of the pipeline without
		// panicking; compile errors are fine.
		prep, err := PrepareStmt(stmt)
		if err != nil {
			return
		}
		prep.Columns()
		prep.Plan()
		_ = prep.Explain()
	})
}
