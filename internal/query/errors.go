package query

import "fmt"

// ParseError is a lexical or syntactic error with its source position. Line
// and Col are 1-based; Tok is the offending token's text (or a description
// like "end of query") so user interfaces can underline the exact spot.
type ParseError struct {
	Line, Col int
	Tok       string
	Msg       string
}

// Error renders "query: LINE:COL: MSG (at TOKEN)".
func (e *ParseError) Error() string {
	if e.Tok == "" {
		return fmt.Sprintf("query: %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("query: %d:%d: %s (at %q)", e.Line, e.Col, e.Msg, e.Tok)
}

// posOf converts a byte offset into 1-based line and column numbers.
// Columns count bytes, which matches terminals for the ASCII queries the
// language is made of.
func posOf(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	line, col = 1, 1
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// parseErrorf builds a positioned ParseError.
func parseErrorf(src string, off int, tok string, format string, args ...any) error {
	line, col := posOf(src, off)
	return &ParseError{Line: line, Col: col, Tok: tok, Msg: fmt.Sprintf(format, args...)}
}
