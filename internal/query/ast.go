package query

import (
	"fmt"
	"strings"

	"sdss/internal/sphere"
)

// Expr is a node of the WHERE-clause expression tree.
type Expr interface {
	exprNode()
	String() string
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a quoted string literal (class names, frame names).
type StringLit struct{ Value string }

// Ident is an attribute reference, resolved during analysis.
type Ident struct {
	Name string
	Attr AttrID // filled by Analyze; AttrInvalid before
}

// BinaryOp is an arithmetic or comparison operator.
type BinaryOp struct {
	Op          string // + - * / < <= > >= = !=
	Left, Right Expr
}

// LogicalOp combines boolean expressions.
type LogicalOp struct {
	Op          string // and, or
	Left, Right Expr
}

// NotOp negates a boolean expression.
type NotOp struct{ Child Expr }

// FuncCall is a function application: spatial operators, flag tests, and
// numeric builtins.
type FuncCall struct {
	Name string
	Args []Expr
}

// SpatialKind identifies the spatial predicates the analyzer recognizes and
// can turn into half-space regions for index pruning.
type SpatialKind int

const (
	// SpatialCircle is CIRCLE(raDeg, decDeg, radiusArcmin).
	SpatialCircle SpatialKind = iota
	// SpatialRect is RECT(raLo, raHi, decLo, decHi) in degrees.
	SpatialRect
	// SpatialBand is LATBAND(frame, loDeg, hiDeg); frame is one of the
	// string literals 'eq', 'gal', 'sgal', 'ecl'.
	SpatialBand
)

// SpatialPred is a resolved spatial predicate: it carries both the exact
// geometric test (applied per object) and the constraint parameters the
// planner uses to build HTM coverage.
type SpatialPred struct {
	Kind   SpatialKind
	Frame  sphere.Frame // for SpatialBand
	Args   []float64    // resolved constant arguments
	Source *FuncCall    // original call, for error reporting
}

func (*NumberLit) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*Ident) exprNode()       {}
func (*BinaryOp) exprNode()    {}
func (*LogicalOp) exprNode()   {}
func (*NotOp) exprNode()       {}
func (*FuncCall) exprNode()    {}
func (*SpatialPred) exprNode() {}

func (e *NumberLit) String() string { return fmt.Sprintf("%g", e.Value) }
func (e *StringLit) String() string { return fmt.Sprintf("'%s'", e.Value) }
func (e *Ident) String() string     { return e.Name }
func (e *BinaryOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *LogicalOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, strings.ToUpper(e.Op), e.Right)
}
func (e *NotOp) String() string { return fmt.Sprintf("(NOT %s)", e.Child) }
func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", strings.ToUpper(e.Name), strings.Join(args, ", "))
}
func (e *SpatialPred) String() string {
	if e.Source != nil {
		return e.Source.String()
	}
	return fmt.Sprintf("spatial(%d)", e.Kind)
}

// SetOp is a set operation combining two bags of object pointers.
type SetOp int

// The QET set-operation node kinds.
const (
	OpUnion SetOp = iota
	OpIntersect
	OpMinus
)

// String names the operation as written in the language.
func (o SetOp) String() string {
	switch o {
	case OpUnion:
		return "UNION"
	case OpIntersect:
		return "INTERSECT"
	case OpMinus:
		return "MINUS"
	default:
		return fmt.Sprintf("SetOp(%d)", int(o))
	}
}

// AggFunc is an aggregate over the selected bag.
type AggFunc int

// Aggregates supported in the select list.
const (
	AggNone AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
	AggSum
)

// Select is one SELECT ... FROM ... WHERE ... statement.
type Select struct {
	Agg     AggFunc // AggNone for plain selects
	AggArg  string  // attribute name for min/max/avg/sum
	Cols    []string
	Star    bool
	Table   Table
	Where   Expr   // nil if absent
	OrderBy string // attribute name, "" if absent
	Desc    bool
	Limit   int // 0 = unlimited
}

// Stmt is a query statement: either a single Select or a set operation over
// two statements — the shape of the paper's Query Execution Tree.
type Stmt struct {
	Select      *Select // leaf
	Op          SetOp   // interior node
	Left, Right *Stmt
}

// String reconstructs a canonical form of the statement.
func (s *Stmt) String() string {
	if s.Select != nil {
		return s.Select.String()
	}
	return fmt.Sprintf("(%s) %s (%s)", s.Left, s.Op, s.Right)
}

// String reconstructs the select statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case s.Agg == AggCount:
		b.WriteString("COUNT(*)")
	case s.Agg != AggNone:
		fmt.Fprintf(&b, "%s(%s)", [...]string{"", "COUNT", "MIN", "MAX", "AVG", "SUM"}[s.Agg], s.AggArg)
	case s.Star:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(s.Cols, ", "))
	}
	fmt.Fprintf(&b, " FROM %s", s.Table)
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if s.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", s.OrderBy)
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Table identifies one of the archive's object tables.
type Table int

// The queryable tables.
const (
	TablePhoto Table = iota
	TableTag
	TableSpec
)

// String names the table as written in queries.
func (t Table) String() string {
	switch t {
	case TablePhoto:
		return "photoobj"
	case TableTag:
		return "tag"
	case TableSpec:
		return "specobj"
	default:
		return fmt.Sprintf("table(%d)", int(t))
	}
}

// ParseTable resolves a table name.
func ParseTable(name string) (Table, error) {
	switch strings.ToLower(name) {
	case "photoobj", "photo":
		return TablePhoto, nil
	case "tag", "tags":
		return TableTag, nil
	case "specobj", "spec":
		return TableSpec, nil
	default:
		return 0, fmt.Errorf("query: unknown table %q", name)
	}
}
