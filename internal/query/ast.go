package query

import (
	"fmt"
	"strings"

	"sdss/internal/sphere"
)

// Expr is a node of the WHERE-clause expression tree.
type Expr interface {
	exprNode()
	String() string
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a quoted string literal (class names, frame names).
type StringLit struct{ Value string }

// Ident is an attribute reference, resolved during analysis. In join
// queries the reference may be qualified ("p.objid"); Qual carries the
// qualifier as written and Side records which join side the attribute
// resolved to (0 left, 1 right, -1 for single-table selects).
type Ident struct {
	Name string
	Qual string // alias qualifier as written, "" if unqualified
	Attr AttrID // filled by Analyze; AttrInvalid before
	Side int8   // join side the reference bound to; -1 outside joins
}

// BinaryOp is an arithmetic or comparison operator.
type BinaryOp struct {
	Op          string // + - * / < <= > >= = !=
	Left, Right Expr
}

// LogicalOp combines boolean expressions.
type LogicalOp struct {
	Op          string // and, or
	Left, Right Expr
}

// NotOp negates a boolean expression.
type NotOp struct{ Child Expr }

// FuncCall is a function application: spatial operators, flag tests, and
// numeric builtins.
type FuncCall struct {
	Name string
	Args []Expr
}

// SpatialKind identifies the spatial predicates the analyzer recognizes and
// can turn into half-space regions for index pruning.
type SpatialKind int

const (
	// SpatialCircle is CIRCLE(raDeg, decDeg, radiusArcmin).
	SpatialCircle SpatialKind = iota
	// SpatialRect is RECT(raLo, raHi, decLo, decHi) in degrees.
	SpatialRect
	// SpatialBand is LATBAND(frame, loDeg, hiDeg); frame is one of the
	// string literals 'eq', 'gal', 'sgal', 'ecl'.
	SpatialBand
)

// SpatialPred is a resolved spatial predicate: it carries both the exact
// geometric test (applied per object) and the constraint parameters the
// planner uses to build HTM coverage.
type SpatialPred struct {
	Kind   SpatialKind
	Frame  sphere.Frame // for SpatialBand
	Args   []float64    // resolved constant arguments
	Source *FuncCall    // original call, for error reporting
}

func (*NumberLit) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*Ident) exprNode()       {}
func (*BinaryOp) exprNode()    {}
func (*LogicalOp) exprNode()   {}
func (*NotOp) exprNode()       {}
func (*FuncCall) exprNode()    {}
func (*SpatialPred) exprNode() {}

func (e *NumberLit) String() string { return fmt.Sprintf("%g", e.Value) }
func (e *StringLit) String() string { return fmt.Sprintf("'%s'", e.Value) }
func (e *Ident) String() string {
	if e.Qual != "" {
		return e.Qual + "." + e.Name
	}
	return e.Name
}
func (e *BinaryOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *LogicalOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, strings.ToUpper(e.Op), e.Right)
}
func (e *NotOp) String() string { return fmt.Sprintf("(NOT %s)", e.Child) }
func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", strings.ToUpper(e.Name), strings.Join(args, ", "))
}
func (e *SpatialPred) String() string {
	if e.Source != nil {
		return e.Source.String()
	}
	return fmt.Sprintf("spatial(%d)", e.Kind)
}

// SetOp is a set operation combining two bags of object pointers.
type SetOp int

// The QET set-operation node kinds.
const (
	OpUnion SetOp = iota
	OpIntersect
	OpMinus
)

// String names the operation as written in the language.
func (o SetOp) String() string {
	switch o {
	case OpUnion:
		return "UNION"
	case OpIntersect:
		return "INTERSECT"
	case OpMinus:
		return "MINUS"
	default:
		return fmt.Sprintf("SetOp(%d)", int(o))
	}
}

// AggFunc is an aggregate over the selected bag.
type AggFunc int

// Aggregates supported in the select list.
const (
	AggNone AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
	AggSum
)

// TableRef is one table in a FROM clause with its binding alias. When the
// query writes no alias, Alias is the table name as written (lowercased), so
// qualified references always have something to bind to.
type TableRef struct {
	Table Table
	Alias string
}

// JoinKind distinguishes the two join forms of the language.
type JoinKind int

const (
	// JoinInner is FROM a JOIN b ON a.col = b.col — the relational
	// equi-join, executed as a hash join.
	JoinInner JoinKind = iota
	// JoinNeighbors is FROM NEIGHBORS(a, b, radiusArcmin) — the paper's
	// spatial join, executed on the hash machine's bucket scheme.
	JoinNeighbors
)

// JoinClause is the join half of a two-table FROM clause. The left table
// lives in Select.Table/Select.Alias.
type JoinClause struct {
	Kind  JoinKind
	Right TableRef
	// OnLeft/OnRight are the ON columns for JoinInner, as written.
	OnLeft, OnRight *Ident
	// RadiusArcmin is the pair radius for JoinNeighbors.
	RadiusArcmin float64
}

// Select is one SELECT ... FROM ... WHERE ... statement. Cols entries may be
// qualified ("p.objid") in join queries.
type Select struct {
	Agg     AggFunc // AggNone for plain selects
	AggArg  string  // attribute name for min/max/avg/sum (may be qualified)
	Cols    []string
	Star    bool
	Table   Table
	Alias   string      // left-table alias; "" on pre-alias paths
	Join    *JoinClause // nil for single-table selects
	Where   Expr        // nil if absent
	OrderBy string      // attribute name, "" if absent (may be qualified)
	Desc    bool
	Limit   int // 0 = unlimited
}

// Stmt is a query statement: either a single Select or a set operation over
// two statements — the shape of the paper's Query Execution Tree.
type Stmt struct {
	Select      *Select // leaf
	Op          SetOp   // interior node
	Left, Right *Stmt
}

// String reconstructs a canonical form of the statement.
func (s *Stmt) String() string {
	if s.Select != nil {
		return s.Select.String()
	}
	return fmt.Sprintf("(%s) %s (%s)", s.Left, s.Op, s.Right)
}

// String reconstructs the select statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case s.Agg == AggCount:
		b.WriteString("COUNT(*)")
	case s.Agg != AggNone:
		fmt.Fprintf(&b, "%s(%s)", [...]string{"", "COUNT", "MIN", "MAX", "AVG", "SUM"}[s.Agg], s.AggArg)
	case s.Star:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(s.Cols, ", "))
	}
	left := s.Table.String()
	if s.Alias != "" && s.Alias != left {
		left += " " + s.Alias
	}
	switch {
	case s.Join != nil && s.Join.Kind == JoinNeighbors:
		right := s.Join.Right.Table.String()
		if s.Join.Right.Alias != "" && s.Join.Right.Alias != right {
			right += " " + s.Join.Right.Alias
		}
		fmt.Fprintf(&b, " FROM NEIGHBORS(%s, %s, %g)", left, right, s.Join.RadiusArcmin)
	case s.Join != nil:
		right := s.Join.Right.Table.String()
		if s.Join.Right.Alias != "" && s.Join.Right.Alias != right {
			right += " " + s.Join.Right.Alias
		}
		fmt.Fprintf(&b, " FROM %s JOIN %s ON %s = %s", left, right, s.Join.OnLeft, s.Join.OnRight)
	default:
		fmt.Fprintf(&b, " FROM %s", left)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if s.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", s.OrderBy)
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Table identifies one of the archive's object tables.
type Table int

// The queryable tables.
const (
	TablePhoto Table = iota
	TableTag
	TableSpec
)

// String names the table as written in queries.
func (t Table) String() string {
	switch t {
	case TablePhoto:
		return "photoobj"
	case TableTag:
		return "tag"
	case TableSpec:
		return "specobj"
	default:
		return fmt.Sprintf("table(%d)", int(t))
	}
}

// ParseTable resolves a table name.
func ParseTable(name string) (Table, error) {
	switch strings.ToLower(name) {
	case "photoobj", "photo":
		return TablePhoto, nil
	case "tag", "tags":
		return TableTag, nil
	case "specobj", "spec":
		return TableSpec, nil
	default:
		return 0, fmt.Errorf("query: unknown table %q", name)
	}
}
