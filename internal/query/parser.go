package query

import (
	"fmt"
	"strconv"
)

// Parse parses a full query statement: a SELECT or a parenthesized set
// operation such as
//
//	(SELECT ... ) UNION (SELECT ...)
//
// mirroring the paper's QET structure of query nodes and set-operation
// nodes. Leaf selects may read one table, an equi-join
// (FROM photoobj p JOIN specobj s ON p.objid = s.objid), or a spatial
// neighbor join (FROM NEIGHBORS(tag a, tag b, radiusArcmin)).
//
// Errors are *ParseError values carrying the 1-based line and column of the
// offending token.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after statement", p.cur().kind)
	}
	return stmt, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// errorf builds a positioned error at the current token.
func (p *parser) errorf(format string, args ...any) error {
	tok := p.cur().text
	if p.cur().kind == tokEOF {
		tok = "end of query"
	}
	return parseErrorf(p.src, p.cur().pos, tok, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errorf("expected %s, got %s", kind, p.cur().kind)
	}
	return p.next(), nil
}

// keyword consumes a specific identifier or fails.
func (p *parser) keyword(kw string) error {
	if p.cur().kind != tokIdent || p.cur().text != kw {
		return p.errorf("expected %s", kw)
	}
	p.next()
	return nil
}

// isKeyword tests without consuming.
func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

// reservedWords are identifiers that can never serve as a table alias, so
// "FROM tag ORDER BY r" does not read ORDER as an alias.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "order": true, "by": true,
	"limit": true, "asc": true, "desc": true, "and": true, "or": true,
	"not": true, "union": true, "intersect": true, "minus": true,
	"except": true, "join": true, "on": true, "neighbors": true,
}

func (p *parser) parseStmt() (*Stmt, error) {
	var left *Stmt
	if p.cur().kind == tokLParen {
		// Could be a parenthesized statement or the start of an
		// expression — only SELECT can follow '(' at statement level.
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		left = inner
	} else {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		left = &Stmt{Select: sel}
	}
	for {
		var op SetOp
		switch {
		case p.isKeyword("union"):
			op = OpUnion
		case p.isKeyword("intersect"):
			op = OpIntersect
		case p.isKeyword("minus") || p.isKeyword("except"):
			op = OpMinus
		default:
			return left, nil
		}
		p.next()
		var right *Stmt
		if p.cur().kind == tokLParen {
			p.next()
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			right = inner
		} else {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			right = &Stmt{Select: sel}
		}
		left = &Stmt{Op: op, Left: left, Right: right}
	}
}

// parseColRef parses a possibly qualified column reference and returns it as
// written: "r" or "p.r".
func (p *parser) parseColRef() (string, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if p.cur().kind != tokDot {
		return id.text, nil
	}
	p.next()
	name, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return id.text + "." + name.text, nil
}

// parseTableRef parses "table [alias]".
func (p *parser) parseTableRef() (TableRef, error) {
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return TableRef{}, err
	}
	t, err := ParseTable(tbl.text)
	if err != nil {
		return TableRef{}, parseErrorf(p.src, tbl.pos, tbl.text, "unknown table")
	}
	ref := TableRef{Table: t, Alias: tbl.text}
	if p.cur().kind == tokIdent && !reservedWords[p.cur().text] {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// parseFrom parses the FROM clause into the select's table, alias, and
// optional join.
func (p *parser) parseFrom(sel *Select) error {
	if err := p.keyword("from"); err != nil {
		return err
	}
	// NEIGHBORS(a, b, radius): the spatial join form.
	if p.isKeyword("neighbors") && p.toks[p.pos+1].kind == tokLParen {
		p.next()
		p.next() // (
		left, err := p.parseTableRef()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokComma); err != nil {
			return err
		}
		right, err := p.parseTableRef()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokComma); err != nil {
			return err
		}
		n, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		radius, err := strconv.ParseFloat(n.text, 64)
		// The bucket scheme's margin replication is sound for radii below a
		// quarter sphere; 5400' (90°) is far past any neighbor workload.
		if err != nil || radius <= 0 || radius > 5400 {
			return parseErrorf(p.src, n.pos, n.text, "NEIGHBORS radius must be in (0, 5400] arcminutes")
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if left.Alias == right.Alias {
			return parseErrorf(p.src, n.pos, left.Alias,
				"NEIGHBORS sides need distinct aliases (e.g. NEIGHBORS(tag a, tag b, %g))", radius)
		}
		sel.Table, sel.Alias = left.Table, left.Alias
		sel.Join = &JoinClause{Kind: JoinNeighbors, Right: right, RadiusArcmin: radius}
		return nil
	}
	left, err := p.parseTableRef()
	if err != nil {
		return err
	}
	sel.Table, sel.Alias = left.Table, left.Alias
	if !p.isKeyword("join") {
		return nil
	}
	p.next()
	right, err := p.parseTableRef()
	if err != nil {
		return err
	}
	if left.Alias == right.Alias {
		return p.errorf("joined tables need distinct aliases")
	}
	if err := p.keyword("on"); err != nil {
		return err
	}
	onLeft, err := p.parseOnRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEQ); err != nil {
		return err
	}
	onRight, err := p.parseOnRef()
	if err != nil {
		return err
	}
	sel.Join = &JoinClause{Kind: JoinInner, Right: right, OnLeft: onLeft, OnRight: onRight}
	return nil
}

// parseOnRef parses one side of an ON equality as a qualified reference.
func (p *parser) parseOnRef() (*Ident, error) {
	ref, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	return identFromRef(ref), nil
}

// identFromRef splits "qual.name" (or bare "name") into an Ident.
func identFromRef(ref string) *Ident {
	for i := 0; i < len(ref); i++ {
		if ref[i] == '.' {
			return &Ident{Qual: ref[:i], Name: ref[i+1:], Attr: AttrInvalid, Side: -1}
		}
	}
	return &Ident{Name: ref, Attr: AttrInvalid, Side: -1}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}

	// Select list: *, COUNT(*), agg(attr), or column references.
	switch {
	case p.cur().kind == tokStar:
		p.next()
		sel.Star = true
	case p.cur().kind == tokIdent && isAggName(p.cur().text) && p.toks[p.pos+1].kind == tokLParen:
		name := p.next().text
		p.next() // (
		sel.Agg = aggByName(name)
		if p.cur().kind == tokStar {
			if sel.Agg != AggCount {
				return nil, p.errorf("%s(*) is not valid; only COUNT(*)", name)
			}
			p.next()
		} else {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.AggArg = ref
			if sel.Agg == AggCount {
				// COUNT(attr) behaves as COUNT(*) here.
				sel.AggArg = ""
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	default:
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.Cols = append(sel.Cols, ref)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if err := p.parseFrom(sel); err != nil {
		return nil, err
	}

	if p.isKeyword("where") {
		p.next()
		var err error
		sel.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.isKeyword("order") {
		p.next()
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		ref, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = ref
		if p.isKeyword("desc") {
			p.next()
			sel.Desc = true
		} else if p.isKeyword("asc") {
			p.next()
		}
	}
	if p.isKeyword("limit") {
		p.next()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 1 {
			return nil, parseErrorf(p.src, n.pos, n.text, "bad LIMIT (want a positive integer)")
		}
		sel.Limit = limit
	}
	return sel, nil
}

func isAggName(s string) bool {
	switch s {
	case "count", "min", "max", "avg", "sum":
		return true
	}
	return false
}

func aggByName(s string) AggFunc {
	switch s {
	case "count":
		return AggCount
	case "min":
		return AggMin
	case "max":
		return AggMax
	case "avg":
		return AggAvg
	case "sum":
		return AggSum
	}
	return AggNone
}

// Expression grammar, loosest binding first: OR, AND, NOT, comparison,
// additive, multiplicative, unary.

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &LogicalOp{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &LogicalOp{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("not") {
		p.next()
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotOp{Child: child}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().kind {
	case tokLT:
		op = "<"
	case tokLE:
		op = "<="
	case tokGT:
		op = ">"
	case tokGE:
		op = ">="
	case tokEQ:
		op = "="
	case tokNE:
		op = "!="
	default:
		return left, nil
	}
	p.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Chained comparisons (a < b < c) read naturally as a range:
	// translate to (a < b) AND (b < c).
	cmp := &BinaryOp{Op: op, Left: left, Right: right}
	switch p.cur().kind {
	case tokLT, tokLE, tokGT, tokGE:
		next, err := p.parseComparisonChained(right)
		if err != nil {
			return nil, err
		}
		return &LogicalOp{Op: "and", Left: cmp, Right: next}, nil
	}
	return cmp, nil
}

func (p *parser) parseComparisonChained(left Expr) (Expr, error) {
	var op string
	switch p.cur().kind {
	case tokLT:
		op = "<"
	case tokLE:
		op = "<="
	case tokGT:
		op = ">"
	case tokGE:
		op = ">="
	default:
		return nil, p.errorf("expected comparison operator")
	}
	p.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryOp{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokMinus {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: "-", Left: &NumberLit{Value: 0}, Right: child}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur().kind {
	case tokNumber:
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, parseErrorf(p.src, t.pos, t.text, "bad number")
		}
		return &NumberLit{Value: v}, nil
	case tokString:
		return &StringLit{Value: p.next().text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		t := p.next()
		if p.cur().kind == tokLParen {
			p.next()
			call := &FuncCall{Name: t.text}
			if p.cur().kind != tokRParen {
				for {
					arg, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.cur().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.cur().kind == tokDot {
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			return &Ident{Qual: t.text, Name: name.text, Attr: AttrInvalid, Side: -1}, nil
		}
		return &Ident{Name: t.text, Attr: AttrInvalid, Side: -1}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", p.cur().kind)
	}
}

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "join"
	case JoinNeighbors:
		return "neighbors"
	default:
		return fmt.Sprintf("joinkind(%d)", int(k))
	}
}
