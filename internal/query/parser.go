package query

import (
	"fmt"
	"strconv"
)

// Parse parses a full query statement: a SELECT or a parenthesized set
// operation such as
//
//	(SELECT ... ) UNION (SELECT ...)
//
// mirroring the paper's QET structure of query nodes and set-operation
// nodes.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after statement", p.cur().kind)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("query: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errorf("expected %s, got %s %q", kind, p.cur().kind, p.cur().text)
	}
	return p.next(), nil
}

// keyword consumes a specific identifier or fails.
func (p *parser) keyword(kw string) error {
	if p.cur().kind != tokIdent || p.cur().text != kw {
		return p.errorf("expected %s, got %q", kw, p.cur().text)
	}
	p.next()
	return nil
}

// isKeyword tests without consuming.
func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

func (p *parser) parseStmt() (*Stmt, error) {
	var left *Stmt
	if p.cur().kind == tokLParen {
		// Could be a parenthesized statement or the start of an
		// expression — only SELECT can follow '(' at statement level.
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		left = inner
	} else {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		left = &Stmt{Select: sel}
	}
	for {
		var op SetOp
		switch {
		case p.isKeyword("union"):
			op = OpUnion
		case p.isKeyword("intersect"):
			op = OpIntersect
		case p.isKeyword("minus") || p.isKeyword("except"):
			op = OpMinus
		default:
			return left, nil
		}
		p.next()
		var right *Stmt
		if p.cur().kind == tokLParen {
			p.next()
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			right = inner
		} else {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			right = &Stmt{Select: sel}
		}
		left = &Stmt{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}

	// Select list: *, COUNT(*), agg(attr), or column names.
	switch {
	case p.cur().kind == tokStar:
		p.next()
		sel.Star = true
	case p.cur().kind == tokIdent && isAggName(p.cur().text) && p.toks[p.pos+1].kind == tokLParen:
		name := p.next().text
		p.next() // (
		sel.Agg = aggByName(name)
		if p.cur().kind == tokStar {
			if sel.Agg != AggCount {
				return nil, p.errorf("%s(*) is not valid; only COUNT(*)", name)
			}
			p.next()
		} else {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			sel.AggArg = id.text
			if sel.Agg == AggCount {
				// COUNT(attr) behaves as COUNT(*) here.
				sel.AggArg = ""
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	default:
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			sel.Cols = append(sel.Cols, id.text)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	sel.Table, err = ParseTable(tbl.text)
	if err != nil {
		return nil, err
	}

	if p.isKeyword("where") {
		p.next()
		sel.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.isKeyword("order") {
		p.next()
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		sel.OrderBy = id.text
		if p.isKeyword("desc") {
			p.next()
			sel.Desc = true
		} else if p.isKeyword("asc") {
			p.next()
		}
	}
	if p.isKeyword("limit") {
		p.next()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 1 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		sel.Limit = limit
	}
	return sel, nil
}

func isAggName(s string) bool {
	switch s {
	case "count", "min", "max", "avg", "sum":
		return true
	}
	return false
}

func aggByName(s string) AggFunc {
	switch s {
	case "count":
		return AggCount
	case "min":
		return AggMin
	case "max":
		return AggMax
	case "avg":
		return AggAvg
	case "sum":
		return AggSum
	}
	return AggNone
}

// Expression grammar, loosest binding first: OR, AND, NOT, comparison,
// additive, multiplicative, unary.

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &LogicalOp{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &LogicalOp{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("not") {
		p.next()
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotOp{Child: child}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().kind {
	case tokLT:
		op = "<"
	case tokLE:
		op = "<="
	case tokGT:
		op = ">"
	case tokGE:
		op = ">="
	case tokEQ:
		op = "="
	case tokNE:
		op = "!="
	default:
		return left, nil
	}
	p.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Chained comparisons (a < b < c) read naturally as a range:
	// translate to (a < b) AND (b < c).
	cmp := &BinaryOp{Op: op, Left: left, Right: right}
	switch p.cur().kind {
	case tokLT, tokLE, tokGT, tokGE:
		next, err := p.parseComparisonChained(right)
		if err != nil {
			return nil, err
		}
		return &LogicalOp{Op: "and", Left: cmp, Right: next}, nil
	}
	return cmp, nil
}

func (p *parser) parseComparisonChained(left Expr) (Expr, error) {
	var op string
	switch p.cur().kind {
	case tokLT:
		op = "<"
	case tokLE:
		op = "<="
	case tokGT:
		op = ">"
	case tokGE:
		op = ">="
	default:
		return nil, p.errorf("expected comparison operator")
	}
	p.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryOp{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokMinus {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: "-", Left: &NumberLit{Value: 0}, Right: child}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur().kind {
	case tokNumber:
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &NumberLit{Value: v}, nil
	case tokString:
		return &StringLit{Value: p.next().text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		t := p.next()
		if p.cur().kind == tokLParen {
			p.next()
			call := &FuncCall{Name: t.text}
			if p.cur().kind != tokRParen {
				for {
					arg, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.cur().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.text, Attr: AttrInvalid}, nil
	default:
		return nil, p.errorf("unexpected %s %q in expression", p.cur().kind, p.cur().text)
	}
}
