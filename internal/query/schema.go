package query

import (
	"fmt"
	"sort"
	"strings"
)

// AttrID names an attribute within a table schema. IDs are dense per table;
// the executor maps them onto decoded object fields.
type AttrID int

// AttrInvalid marks an unresolved attribute reference.
const AttrInvalid AttrID = -1

// The photometric table attributes. The five band magnitudes are named by
// their filter letters so color cuts read naturally: "u - g < 0.5".
const (
	PhotoObjID AttrID = iota
	PhotoHTMID
	PhotoRA
	PhotoDec
	PhotoCX
	PhotoCY
	PhotoCZ
	PhotoU
	PhotoG
	PhotoR
	PhotoI
	PhotoZ
	PhotoErrU
	PhotoErrG
	PhotoErrR
	PhotoErrI
	PhotoErrZ
	PhotoExtU
	PhotoExtG
	PhotoExtR
	PhotoExtI
	PhotoExtZ
	PhotoPetroRad
	PhotoPetroR50
	PhotoSurfBright
	PhotoSkyBright
	PhotoAirmass
	PhotoRowC
	PhotoColC
	PhotoPSFWidth
	PhotoMuRA
	PhotoMuDec
	PhotoMJD
	PhotoRun
	PhotoCamcol
	PhotoField
	PhotoClass
	PhotoFlags
	numPhotoAttrs
)

// The tag table attributes (the ten popular ones plus identity).
const (
	TagObjID AttrID = iota
	TagHTMID
	TagCX
	TagCY
	TagCZ
	TagRA
	TagDec
	TagU
	TagG
	TagR
	TagI
	TagZ
	TagSize
	TagClass
	numTagAttrs
)

// The spectroscopic table attributes.
const (
	SpecObjID AttrID = iota
	SpecHTMID
	SpecRedshift
	SpecRedshiftErr
	SpecClass
	SpecFiberID
	SpecPlate
	SpecSN
	SpecCX
	SpecCY
	SpecCZ
	numSpecAttrs
)

var photoSchema = map[string]AttrID{
	"objid": PhotoObjID, "htmid": PhotoHTMID,
	"ra": PhotoRA, "dec": PhotoDec,
	"cx": PhotoCX, "cy": PhotoCY, "cz": PhotoCZ,
	"u": PhotoU, "g": PhotoG, "r": PhotoR, "i": PhotoI, "z": PhotoZ,
	"err_u": PhotoErrU, "err_g": PhotoErrG, "err_r": PhotoErrR,
	"err_i": PhotoErrI, "err_z": PhotoErrZ,
	"ext_u": PhotoExtU, "ext_g": PhotoExtG, "ext_r": PhotoExtR,
	"ext_i": PhotoExtI, "ext_z": PhotoExtZ,
	"petrorad": PhotoPetroRad, "petror50": PhotoPetroR50,
	"surfbright": PhotoSurfBright, "skybright": PhotoSkyBright,
	"airmass": PhotoAirmass, "rowc": PhotoRowC, "colc": PhotoColC,
	"psfwidth": PhotoPSFWidth, "mura": PhotoMuRA, "mudec": PhotoMuDec,
	"mjd": PhotoMJD, "run": PhotoRun, "camcol": PhotoCamcol,
	"field": PhotoField, "class": PhotoClass, "flags": PhotoFlags,
}

var tagSchema = map[string]AttrID{
	"objid": TagObjID, "htmid": TagHTMID,
	"cx": TagCX, "cy": TagCY, "cz": TagCZ,
	"ra": TagRA, "dec": TagDec,
	"u": TagU, "g": TagG, "r": TagR, "i": TagI, "z": TagZ,
	"size": TagSize, "petrorad": TagSize, // alias: tag size is PetroRad
	"class": TagClass,
}

var specSchema = map[string]AttrID{
	"objid": SpecObjID, "htmid": SpecHTMID,
	// "z" is the astronomer's name for redshift; in spectroscopic context
	// it cannot collide with the z band, which SpecObj does not carry.
	"redshift": SpecRedshift, "zspec": SpecRedshift, "z": SpecRedshift,
	"zerr": SpecRedshiftErr, "class": SpecClass,
	"fiberid": SpecFiberID, "plate": SpecPlate, "sn": SpecSN,
	"cx": SpecCX, "cy": SpecCY, "cz": SpecCZ,
}

// photoNames lists the canonical attribute names in AttrID order. The
// schema maps above may carry aliases; these are the names results report.
var photoNames = [numPhotoAttrs]string{
	"objid", "htmid", "ra", "dec", "cx", "cy", "cz",
	"u", "g", "r", "i", "z",
	"err_u", "err_g", "err_r", "err_i", "err_z",
	"ext_u", "ext_g", "ext_r", "ext_i", "ext_z",
	"petrorad", "petror50", "surfbright", "skybright", "airmass",
	"rowc", "colc", "psfwidth", "mura", "mudec",
	"mjd", "run", "camcol", "field", "class", "flags",
}

var tagNames = [numTagAttrs]string{
	"objid", "htmid", "cx", "cy", "cz", "ra", "dec",
	"u", "g", "r", "i", "z", "size", "class",
}

var specNames = [numSpecAttrs]string{
	"objid", "htmid", "redshift", "zerr", "class",
	"fiberid", "plate", "sn", "cx", "cy", "cz",
}

// attrTypes maps the non-float attributes of each table; everything absent
// is TypeFloat.
var photoTypes = map[AttrID]ColType{
	PhotoObjID: TypeID, PhotoHTMID: TypeID,
	PhotoRun: TypeInt, PhotoCamcol: TypeInt, PhotoField: TypeInt,
	PhotoClass: TypeInt, PhotoFlags: TypeInt,
}

var tagTypes = map[AttrID]ColType{
	TagObjID: TypeID, TagHTMID: TypeID, TagClass: TypeInt,
}

var specTypes = map[AttrID]ColType{
	SpecObjID: TypeID, SpecHTMID: TypeID, SpecClass: TypeInt,
	SpecFiberID: TypeInt, SpecPlate: TypeInt,
}

// AttrName returns the canonical name of an attribute, or "" if the ID is
// out of range for the table.
func AttrName(t Table, id AttrID) string {
	if id < 0 {
		return ""
	}
	switch t {
	case TablePhoto:
		if int(id) < len(photoNames) {
			return photoNames[id]
		}
	case TableTag:
		if int(id) < len(tagNames) {
			return tagNames[id]
		}
	case TableSpec:
		if int(id) < len(specNames) {
			return specNames[id]
		}
	}
	return ""
}

// AttrType returns the wire type of an attribute.
func AttrType(t Table, id AttrID) ColType {
	var m map[AttrID]ColType
	switch t {
	case TablePhoto:
		m = photoTypes
	case TableTag:
		m = tagTypes
	case TableSpec:
		m = specTypes
	}
	if ct, ok := m[id]; ok {
		return ct
	}
	return TypeFloat
}

// TableColumns returns a table's full schema as named, typed columns in
// attribute order — the source of truth for schema-discovery endpoints.
func TableColumns(t Table) []Column {
	n := NumAttrs(t)
	cols := make([]Column, n)
	for i := 0; i < n; i++ {
		cols[i] = Column{Name: AttrName(t, AttrID(i)), Type: AttrType(t, AttrID(i))}
	}
	return cols
}

// Schema returns the attribute name → ID map for a table.
func Schema(t Table) map[string]AttrID {
	switch t {
	case TablePhoto:
		return photoSchema
	case TableTag:
		return tagSchema
	case TableSpec:
		return specSchema
	default:
		return nil
	}
}

// NumAttrs returns the number of attributes in a table.
func NumAttrs(t Table) int {
	switch t {
	case TablePhoto:
		return int(numPhotoAttrs)
	case TableTag:
		return int(numTagAttrs)
	case TableSpec:
		return int(numSpecAttrs)
	default:
		return 0
	}
}

// Resolve maps an attribute name to its ID within a table.
func Resolve(t Table, name string) (AttrID, error) {
	id, ok := Schema(t)[strings.ToLower(name)]
	if !ok {
		return AttrInvalid, fmt.Errorf("query: table %s has no attribute %q (known: %s)",
			t, name, strings.Join(AttrNames(t), ", "))
	}
	return id, nil
}

// AttrNames lists a table's attribute names, sorted.
func AttrNames(t Table) []string {
	m := Schema(t)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PositionAttrs returns the table's Cartesian position attribute IDs, used
// by spatial predicates. The paper's Cartesian representation means every
// spatial test is three dot-product multiplies on these attributes.
func PositionAttrs(t Table) (cx, cy, cz AttrID) {
	switch t {
	case TablePhoto:
		return PhotoCX, PhotoCY, PhotoCZ
	case TableTag:
		return TagCX, TagCY, TagCZ
	case TableSpec:
		return SpecCX, SpecCY, SpecCZ
	default:
		return AttrInvalid, AttrInvalid, AttrInvalid
	}
}

// FlagsAttr returns the table's flags attribute, or AttrInvalid if the
// table carries no flags.
func FlagsAttr(t Table) AttrID {
	if t == TablePhoto {
		return PhotoFlags
	}
	return AttrInvalid
}

// ClassAttr returns the table's classification attribute.
func ClassAttr(t Table) AttrID {
	switch t {
	case TablePhoto:
		return PhotoClass
	case TableTag:
		return TagClass
	case TableSpec:
		return SpecClass
	default:
		return AttrInvalid
	}
}
