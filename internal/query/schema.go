package query

import (
	"fmt"
	"sort"
	"strings"
)

// AttrID names an attribute within a table schema. IDs are dense per table;
// the executor maps them onto decoded object fields.
type AttrID int

// AttrInvalid marks an unresolved attribute reference.
const AttrInvalid AttrID = -1

// The photometric table attributes. The five band magnitudes are named by
// their filter letters so color cuts read naturally: "u - g < 0.5".
const (
	PhotoObjID AttrID = iota
	PhotoHTMID
	PhotoRA
	PhotoDec
	PhotoCX
	PhotoCY
	PhotoCZ
	PhotoU
	PhotoG
	PhotoR
	PhotoI
	PhotoZ
	PhotoErrU
	PhotoErrG
	PhotoErrR
	PhotoErrI
	PhotoErrZ
	PhotoExtU
	PhotoExtG
	PhotoExtR
	PhotoExtI
	PhotoExtZ
	PhotoPetroRad
	PhotoPetroR50
	PhotoSurfBright
	PhotoSkyBright
	PhotoAirmass
	PhotoRowC
	PhotoColC
	PhotoPSFWidth
	PhotoMuRA
	PhotoMuDec
	PhotoMJD
	PhotoRun
	PhotoCamcol
	PhotoField
	PhotoClass
	PhotoFlags
	numPhotoAttrs
)

// The tag table attributes (the ten popular ones plus identity).
const (
	TagObjID AttrID = iota
	TagHTMID
	TagCX
	TagCY
	TagCZ
	TagRA
	TagDec
	TagU
	TagG
	TagR
	TagI
	TagZ
	TagSize
	TagClass
	numTagAttrs
)

// The spectroscopic table attributes.
const (
	SpecObjID AttrID = iota
	SpecHTMID
	SpecRedshift
	SpecRedshiftErr
	SpecClass
	SpecFiberID
	SpecPlate
	SpecSN
	SpecCX
	SpecCY
	SpecCZ
	numSpecAttrs
)

var photoSchema = map[string]AttrID{
	"objid": PhotoObjID, "htmid": PhotoHTMID,
	"ra": PhotoRA, "dec": PhotoDec,
	"cx": PhotoCX, "cy": PhotoCY, "cz": PhotoCZ,
	"u": PhotoU, "g": PhotoG, "r": PhotoR, "i": PhotoI, "z": PhotoZ,
	"err_u": PhotoErrU, "err_g": PhotoErrG, "err_r": PhotoErrR,
	"err_i": PhotoErrI, "err_z": PhotoErrZ,
	"ext_u": PhotoExtU, "ext_g": PhotoExtG, "ext_r": PhotoExtR,
	"ext_i": PhotoExtI, "ext_z": PhotoExtZ,
	"petrorad": PhotoPetroRad, "petror50": PhotoPetroR50,
	"surfbright": PhotoSurfBright, "skybright": PhotoSkyBright,
	"airmass": PhotoAirmass, "rowc": PhotoRowC, "colc": PhotoColC,
	"psfwidth": PhotoPSFWidth, "mura": PhotoMuRA, "mudec": PhotoMuDec,
	"mjd": PhotoMJD, "run": PhotoRun, "camcol": PhotoCamcol,
	"field": PhotoField, "class": PhotoClass, "flags": PhotoFlags,
}

var tagSchema = map[string]AttrID{
	"objid": TagObjID, "htmid": TagHTMID,
	"cx": TagCX, "cy": TagCY, "cz": TagCZ,
	"ra": TagRA, "dec": TagDec,
	"u": TagU, "g": TagG, "r": TagR, "i": TagI, "z": TagZ,
	"size": TagSize, "petrorad": TagSize, // alias: tag size is PetroRad
	"class": TagClass,
}

var specSchema = map[string]AttrID{
	"objid": SpecObjID, "htmid": SpecHTMID,
	"redshift": SpecRedshift, "zspec": SpecRedshift,
	"zerr": SpecRedshiftErr, "class": SpecClass,
	"fiberid": SpecFiberID, "plate": SpecPlate, "sn": SpecSN,
	"cx": SpecCX, "cy": SpecCY, "cz": SpecCZ,
}

// Schema returns the attribute name → ID map for a table.
func Schema(t Table) map[string]AttrID {
	switch t {
	case TablePhoto:
		return photoSchema
	case TableTag:
		return tagSchema
	case TableSpec:
		return specSchema
	default:
		return nil
	}
}

// NumAttrs returns the number of attributes in a table.
func NumAttrs(t Table) int {
	switch t {
	case TablePhoto:
		return int(numPhotoAttrs)
	case TableTag:
		return int(numTagAttrs)
	case TableSpec:
		return int(numSpecAttrs)
	default:
		return 0
	}
}

// Resolve maps an attribute name to its ID within a table.
func Resolve(t Table, name string) (AttrID, error) {
	id, ok := Schema(t)[strings.ToLower(name)]
	if !ok {
		return AttrInvalid, fmt.Errorf("query: table %s has no attribute %q (known: %s)",
			t, name, strings.Join(AttrNames(t), ", "))
	}
	return id, nil
}

// AttrNames lists a table's attribute names, sorted.
func AttrNames(t Table) []string {
	m := Schema(t)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PositionAttrs returns the table's Cartesian position attribute IDs, used
// by spatial predicates. The paper's Cartesian representation means every
// spatial test is three dot-product multiplies on these attributes.
func PositionAttrs(t Table) (cx, cy, cz AttrID) {
	switch t {
	case TablePhoto:
		return PhotoCX, PhotoCY, PhotoCZ
	case TableTag:
		return TagCX, TagCY, TagCZ
	case TableSpec:
		return SpecCX, SpecCY, SpecCZ
	default:
		return AttrInvalid, AttrInvalid, AttrInvalid
	}
}

// FlagsAttr returns the table's flags attribute, or AttrInvalid if the
// table carries no flags.
func FlagsAttr(t Table) AttrID {
	if t == TablePhoto {
		return PhotoFlags
	}
	return AttrInvalid
}

// ClassAttr returns the table's classification attribute.
func ClassAttr(t Table) AttrID {
	switch t {
	case TablePhoto:
		return PhotoClass
	case TableTag:
		return TagClass
	case TableSpec:
		return SpecClass
	default:
		return AttrInvalid
	}
}
