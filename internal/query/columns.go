package query

import (
	"fmt"
	"math"

	"sdss/internal/catalog"
	"sdss/internal/colblk"
)

// The per-table column-block specs: one colblk column slot per AttrID, so a
// slab column index IS the attribute ID. Derived attributes (tag RA/Dec,
// spec position) hold KNone placeholders — they have no stored bytes, and
// kernels route predicates on them through the row path.
//
// Predictors encode the functional dependencies the catalog bakes into
// records: the photo Cartesian triplet is exactly sphere.FromRADec(ra, dec)
// (catalog.SetPos computes it that way), and the per-band error/extinction
// columns track the u band closely. A predictor only names a hypothesis;
// the encoder measures residuals per container and keeps whichever encoding
// is smallest, so a miss costs nothing at decode time.
var (
	photoColumns = buildColumns(TablePhoto, func(c *colblk.Column, id AttrID) {
		switch id {
		case PhotoCX, PhotoCY, PhotoCZ:
			c.Pred = colblk.PredVec
			c.Arg = [2]int{int(PhotoRA), int(PhotoDec)}
			c.Aux = uint8(id - PhotoCX)
		case PhotoErrG, PhotoErrR, PhotoErrI, PhotoErrZ:
			c.Pred = colblk.PredCol
			c.Arg = [2]int{int(PhotoErrU)}
		case PhotoExtG, PhotoExtR, PhotoExtI, PhotoExtZ:
			c.Pred = colblk.PredCol
			c.Arg = [2]int{int(PhotoExtU)}
		}
	})
	tagColumns  = buildColumns(TableTag, nil)
	specColumns = buildColumns(TableSpec, nil)
)

// ColumnSpecs returns the table's column-block spec, aligned with its
// attribute IDs.
func ColumnSpecs(t Table) *colblk.Spec {
	switch t {
	case TablePhoto:
		return photoColumns
	case TableTag:
		return tagColumns
	case TableSpec:
		return specColumns
	default:
		return nil
	}
}

func buildColumns(t Table, annotate func(*colblk.Column, AttrID)) *colblk.Spec {
	refs := fieldRefs(t)
	cols := make([]colblk.Column, len(refs))
	for id, ref := range refs {
		c := colblk.Column{Name: AttrName(t, AttrID(id))}
		if ref.stored {
			c.Offset = ref.field.Offset
			c.Kind = blockKind(ref.field.Kind)
		}
		if annotate != nil {
			annotate(&c, AttrID(id))
		}
		cols[id] = c
	}
	return colblk.MustSpec(cols)
}

// blockKind maps the catalog's field kinds onto the codec's.
func blockKind(k catalog.FieldKind) colblk.Kind {
	switch k {
	case catalog.KindU8:
		return colblk.KU8
	case catalog.KindU16:
		return colblk.KU16
	case catalog.KindU64:
		return colblk.KU64
	case catalog.KindF32:
		return colblk.KF32
	case catalog.KindF64:
		return colblk.KF64
	default:
		panic(fmt.Sprintf("query: unmapped field kind %d", k))
	}
}

// KernelExact reports whether ExtractBounds captures the predicate exactly
// for kernel evaluation: a (possibly NOT-wrapped) AND-tree whose every leaf
// is an attr-versus-constant comparison on a stored attribute. For such
// predicates the per-attribute key ranges ARE the predicate — a record
// survives the kernel's range tests if and only if the row-path Pred would
// accept it — so the scan can skip per-row evaluation entirely. Anything
// else (OR hulls, arithmetic over attributes, spatial tests, flag masks,
// derived attributes) leaves the kernel a conservative prefilter with the
// row predicate re-checking survivors.
func KernelExact(t Table, e Expr) bool {
	if e == nil {
		return true
	}
	return kernelExact(t, e, false)
}

func kernelExact(t Table, e Expr, neg bool) bool {
	switch n := e.(type) {
	case *LogicalOp:
		op := n.Op
		if neg {
			if op == "and" {
				op = "or"
			} else {
				op = "and"
			}
		}
		if op != "and" {
			return false
		}
		return kernelExact(t, n.Left, neg) && kernelExact(t, n.Right, neg)
	case *NotOp:
		return kernelExact(t, n.Child, !neg)
	case *BinaryOp:
		ident, lit, op, ok := identVsConst(n)
		if !ok || ident.Attr == AttrInvalid || int(ident.Attr) >= NumAttrs(t) {
			return false
		}
		if neg {
			op = negateOp(op)
		}
		switch op {
		case "<", "<=", ">", ">=", "=":
		default:
			// "!=" (a punctured line) is not one key range; arithmetic
			// operators are not comparisons at all.
			return false
		}
		if math.IsNaN(lit) {
			// comparisonBounds drops NaN-literal comparisons, so the bounds
			// would not represent this leaf.
			return false
		}
		return fieldRefs(t)[ident.Attr].stored
	default:
		return false
	}
}
