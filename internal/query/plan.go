package query

import (
	"fmt"
	"strings"
)

// ColType is the wire type of a result column. Values travel as float64
// inside the engine; the type tells consumers (and the REST tier's
// formatters) how to render them.
type ColType string

// The column types.
const (
	// TypeFloat is a real-valued attribute (positions, magnitudes, ...).
	TypeFloat ColType = "float"
	// TypeInt is an integral attribute (run, camcol, class codes, flags).
	TypeInt ColType = "int"
	// TypeID is a 64-bit identifier (objid, htmid); rendered unsigned.
	TypeID ColType = "id"
)

// Column describes one named, typed column of a result set. Columns flow
// from the compiled projection to the wire so no consumer ever needs a
// hardcoded schema.
type Column struct {
	Name string  `json:"name"`
	Type ColType `json:"type"`
}

// String names the aggregate as written in the language.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	default:
		return ""
	}
}

// Columns returns the select's result schema: the projected attributes in
// projection order, or the single synthetic aggregate column.
func (cs *CompiledSelect) Columns() []Column {
	switch {
	case cs.Agg == AggCount:
		return []Column{{Name: "count(*)", Type: TypeInt}}
	case cs.Agg != AggNone:
		return []Column{{
			Name: fmt.Sprintf("%s(%s)", cs.Agg, AttrName(cs.Table, cs.AggCol)),
			Type: TypeFloat,
		}}
	default:
		cols := make([]Column, len(cs.Cols))
		for i, id := range cs.Cols {
			cols[i] = Column{Name: AttrName(cs.Table, id), Type: AttrType(cs.Table, id)}
		}
		return cols
	}
}

// Columns returns the statement's result schema. Following SQL convention,
// a set operation takes its column names from the left branch.
func (p *Prepared) Columns() []Column {
	if p.Select != nil {
		return p.Select.Columns()
	}
	if p.Join != nil {
		return p.Join.Columns()
	}
	return p.Left.Columns()
}

// PlanNode is one node of the EXPLAIN representation of a Query Execution
// Tree: what each node scans, filters, and emits, and whether the HTM index
// prunes its I/O.
type PlanNode struct {
	// Kind is "scan" for leaf query nodes, else the set operation
	// ("union", "intersect", "minus").
	Kind    string   `json:"kind"`
	Table   string   `json:"table,omitempty"`
	Columns []Column `json:"columns,omitempty"`
	// Filter is the canonical WHERE clause, empty if all objects match.
	Filter string `json:"filter,omitempty"`
	// Indexed reports whether a spatial region was extracted from the
	// filter, enabling HTM coverage pruning instead of a full-table scan.
	Indexed bool `json:"indexed,omitempty"`
	// Bounds lists the per-attribute value intervals extracted from the
	// filter ("r ∈ [-Inf, 18)"), which zone maps use to prune containers;
	// "never (...)" marks a provably empty predicate.
	Bounds []string `json:"bounds,omitempty"`
	// On is the join condition of a join node ("p.objid = s.objid", or the
	// neighbor-join distance constraint).
	On string `json:"on,omitempty"`
	// RadiusArcmin is the neighbor-join pair radius.
	RadiusArcmin float64     `json:"radius_arcmin,omitempty"`
	Agg          string      `json:"agg,omitempty"`
	OrderBy      string      `json:"order_by,omitempty"`
	Desc         bool        `json:"desc,omitempty"`
	Limit        int         `json:"limit,omitempty"`
	Children     []*PlanNode `json:"children,omitempty"`
}

// scanPlanNode describes one leaf scan (a whole single-table select, or one
// side of a join).
func scanPlanNode(cs *CompiledSelect) *PlanNode {
	n := &PlanNode{
		Kind:    "scan",
		Table:   cs.Table.String(),
		Columns: cs.Columns(),
		Indexed: cs.Region != nil,
		Bounds:  cs.Bounds.Strings(cs.Table),
		Limit:   cs.Limit,
		Desc:    cs.Desc,
	}
	if cs.Source != nil && cs.Source.Where != nil {
		n.Filter = cs.Source.Where.String()
	}
	if cs.Agg != AggNone {
		n.Agg = cs.Agg.String()
	}
	if cs.Order != AttrInvalid {
		n.OrderBy = AttrName(cs.Table, cs.Order)
	}
	return n
}

// Plan returns the EXPLAIN tree for a prepared statement.
func (p *Prepared) Plan() *PlanNode {
	if cs := p.Select; cs != nil {
		return scanPlanNode(cs)
	}
	if cj := p.Join; cj != nil {
		kind := "hash-join"
		if cj.Kind == JoinNeighbors {
			kind = "neighbor-join"
		}
		n := &PlanNode{
			Kind:     kind,
			Columns:  cj.Columns(),
			On:       cj.On,
			Filter:   cj.ResidualStr,
			Limit:    cj.Limit,
			Desc:     cj.Desc,
			Children: []*PlanNode{scanPlanNode(cj.Left), scanPlanNode(cj.Right)},
		}
		if cj.Kind == JoinNeighbors && cj.Source != nil && cj.Source.Join != nil {
			n.RadiusArcmin = cj.Source.Join.RadiusArcmin
		}
		if cj.Agg != AggNone {
			n.Agg = cj.Agg.String()
		}
		if cj.OrderRef >= 0 && cj.Source != nil {
			n.OrderBy = cj.Source.OrderBy
		}
		return n
	}
	return &PlanNode{
		Kind:     strings.ToLower(p.Op.String()),
		Columns:  p.Columns(),
		Children: []*PlanNode{p.Left.Plan(), p.Right.Plan()},
	}
}

// Explain renders the plan as indented text, one node per line.
func (p *Prepared) Explain() string {
	var b strings.Builder
	explainNode(&b, p.Plan(), 0)
	return b.String()
}

func explainNode(b *strings.Builder, n *PlanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(strings.ToUpper(n.Kind))
	if n.Table != "" {
		fmt.Fprintf(b, " %s", n.Table)
	}
	if len(n.Columns) > 0 {
		names := make([]string, len(n.Columns))
		for i, c := range n.Columns {
			names[i] = c.Name
		}
		fmt.Fprintf(b, " [%s]", strings.Join(names, ", "))
	}
	if n.On != "" {
		fmt.Fprintf(b, " ON %s", n.On)
	}
	if n.Filter != "" {
		fmt.Fprintf(b, " WHERE %s", n.Filter)
	}
	if n.Indexed {
		b.WriteString(" USING htm-index")
	}
	if len(n.Bounds) > 0 {
		fmt.Fprintf(b, " ZONES [%s]", strings.Join(n.Bounds, "; "))
	}
	if n.OrderBy != "" {
		fmt.Fprintf(b, " ORDER BY %s", n.OrderBy)
		if n.Desc {
			b.WriteString(" DESC")
		}
	}
	if n.Limit > 0 {
		fmt.Fprintf(b, " LIMIT %d", n.Limit)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		explainNode(b, c, depth+1)
	}
}
