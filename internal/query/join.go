// Join compilation: the logical-plan half of the planner split. A two-table
// select is analyzed against both sides, its WHERE clause is split into
// conjuncts and each conjunct pushed below the join when it references only
// one side (the classic predicate-pushdown rewrite), and the result is a
// CompiledJoin: two fully compiled single-table leaf scans — each with its
// own predicate, coverage region, and zone bounds, so every access-path
// optimization applies below the join — plus the join spec and a residual
// predicate for conjuncts that genuinely straddle both sides.
package query

import (
	"fmt"
	"strings"

	"sdss/internal/sphere"
)

// sideStride is the attribute-ID stride separating the two join sides in
// residual predicates: a residual expression is compiled like any other, but
// its identifiers carry EncodeSideAttr(side, attr) so one Getter can serve
// values from both rows of a candidate pair. Table schemas are far below 256
// attributes wide, and side-0 encoding is the identity — whole-row functions
// that bind to the left table (FLAG, spatial tests) keep working unchanged.
const sideStride AttrID = 1 << 8

// EncodeSideAttr maps a (join side, table-local attribute) pair into the
// combined attribute space residual predicates are compiled against.
func EncodeSideAttr(side int, attr AttrID) AttrID {
	return attr + AttrID(side)*sideStride
}

// DecodeSideAttr inverts EncodeSideAttr.
func DecodeSideAttr(a AttrID) (side int, attr AttrID) {
	return int(a / sideStride), a % sideStride
}

// joinBinder resolves identifiers against the two sides of a join. Qualified
// references bind by alias; unqualified references bind when exactly one
// side's schema knows the name (so "r" works in photo⋈spec but "class" must
// be qualified).
type joinBinder struct {
	refs [2]TableRef
}

func (b *joinBinder) bind(id *Ident) error {
	if id.Qual != "" {
		for s := range b.refs {
			if b.refs[s].Alias == id.Qual {
				attr, err := Resolve(b.refs[s].Table, id.Name)
				if err != nil {
					return err
				}
				id.Attr, id.Side = attr, int8(s)
				return nil
			}
		}
		return fmt.Errorf("query: unknown table alias %q in %s (aliases: %s, %s)",
			id.Qual, id, b.refs[0].Alias, b.refs[1].Alias)
	}
	var sides []int
	for s := range b.refs {
		if _, ok := Schema(b.refs[s].Table)[strings.ToLower(id.Name)]; ok {
			sides = append(sides, s)
		}
	}
	switch len(sides) {
	case 1:
		attr, err := Resolve(b.refs[sides[0]].Table, id.Name)
		if err != nil {
			return err
		}
		id.Attr, id.Side = attr, int8(sides[0])
		return nil
	case 0:
		return fmt.Errorf("query: neither %s nor %s has attribute %q",
			b.refs[0].Table, b.refs[1].Table, id.Name)
	default:
		return fmt.Errorf("query: ambiguous attribute %q (qualify as %s.%s or %s.%s)",
			id.Name, b.refs[0].Alias, id.Name, b.refs[1].Alias, id.Name)
	}
}

func (b *joinBinder) tableOf(id *Ident) Table {
	if id.Side == 1 {
		return b.refs[1].Table
	}
	return b.refs[0].Table
}

// flagTable binds whole-row FLAG tests (which carry no alias) to the left
// table, the documented convention spatial predicates follow too.
func (b *joinBinder) flagTable() Table { return b.refs[0].Table }

// joinRefs returns the two FROM-clause table refs of a join select.
func joinRefs(sel *Select) [2]TableRef {
	return [2]TableRef{{Table: sel.Table, Alias: sel.Alias}, sel.Join.Right}
}

// analyzeJoinSelect resolves a two-table select in place: WHERE identifiers
// bind to their side, ON references are validated to name one column per
// side, and the select list / aggregate / ORDER BY references are checked
// early so Analyze alone reports bad names.
func analyzeJoinSelect(sel *Select) error {
	b := &joinBinder{refs: joinRefs(sel)}
	js := sel.Join
	if js.Kind == JoinInner {
		if err := b.bind(js.OnLeft); err != nil {
			return err
		}
		if err := b.bind(js.OnRight); err != nil {
			return err
		}
		if js.OnLeft.Side == js.OnRight.Side {
			return fmt.Errorf("query: ON must relate the two joined tables, got %s = %s",
				js.OnLeft, js.OnRight)
		}
		if js.OnLeft.Side == 1 {
			js.OnLeft, js.OnRight = js.OnRight, js.OnLeft
		}
	}
	for _, c := range sel.Cols {
		if _, err := resolveRef(b, c); err != nil {
			return err
		}
	}
	if sel.AggArg != "" {
		if _, err := resolveRef(b, sel.AggArg); err != nil {
			return err
		}
	}
	if sel.OrderBy != "" {
		if _, err := resolveRef(b, sel.OrderBy); err != nil {
			return err
		}
	}
	if sel.Where != nil {
		rewritten, err := analyzeExpr(sel.Where, b)
		if err != nil {
			return err
		}
		sel.Where = rewritten
	}
	return nil
}

// OutRef addresses one value of a joined row: which side it comes from and
// its index within that side's leaf projection.
type OutRef struct {
	Side int // 0 = left, 1 = right
	Idx  int // index into the side's CompiledSelect.Cols
}

// CompiledJoin is a fully prepared two-table leaf: two compiled single-table
// scans (with per-side pushed-down predicates, regions, and bounds), the
// join specification, the residual cross-table predicate, and the output
// projection mapping.
type CompiledJoin struct {
	Source *Select
	Kind   JoinKind

	// Left and Right are the per-side leaf scans. Their Cols hold every
	// attribute the join needs from that side: projected columns, join
	// keys, residual-predicate inputs, and the hidden sort/aggregate
	// operands.
	Left, Right *CompiledSelect

	// LeftKey/RightKey index the equi-join key within each side's Cols.
	// KeyObjID marks an ON objid = objid join, which the executor runs on
	// the exact 64-bit object identifiers instead of float64 key values.
	LeftKey, RightKey int
	KeyObjID          bool

	// Radius is the neighbor-join pair radius in radians; LeftPos/RightPos
	// index each side's Cartesian position triplet within its Cols.
	Radius            float64
	LeftPos, RightPos [3]int

	// Residual is the cross-table predicate (conjuncts referencing both
	// sides), compiled over EncodeSideAttr identifiers; nil when every
	// conjunct pushed down. ResidualStr renders every residual conjunct,
	// including the ID comparisons below.
	Residual    BoolFn
	ResidualStr string

	// IDPred is the exact-integer form of residual conjuncts shaped
	// "a.objid OP b.objid": object identifiers are 64-bit and would round
	// above 2^53 through the float64 expression path, silently breaking
	// the each-pair-once idiom (WHERE a.objid < b.objid). nil when no
	// such conjunct exists.
	IDPred func(left, right uint64) bool

	// IDPredSel is the estimated selectivity of IDPred over candidate pairs
	// (1 when IDPred is nil): an inequality like "a.objid < b.objid" keeps
	// half of each unordered pair's two orientations, so the planner must
	// halve the neighbor-join cardinality rather than ignore the predicate.
	IDPredSel float64

	// LeftAttrIdx/RightAttrIdx map table-local attribute IDs to positions
	// in the corresponding side's Cols (-1 when absent) — the executor's
	// decode table for residual evaluation.
	LeftAttrIdx, RightAttrIdx []int

	// Out maps every output value to its side and per-side column: the
	// first len(Cols) entries are the visible projection, followed by the
	// hidden ORDER BY key and aggregate operand when present.
	Out  []OutRef
	Cols []Column

	Agg      AggFunc
	OrderRef int // index into Out of the hidden sort key, -1 if unordered
	Desc     bool
	Limit    int

	// On is the canonical ON clause ("p.objid = s.objid") for EXPLAIN.
	On string
}

// Columns returns the join's visible result schema.
func (cj *CompiledJoin) Columns() []Column { return cj.Cols }

// Table returns the table of one side.
func (cj *CompiledJoin) Table(side int) Table {
	if side == 1 {
		return cj.Right.Table
	}
	return cj.Left.Table
}

// AttrIdx returns the attr → column-index map of one side.
func (cj *CompiledJoin) AttrIdx(side int) []int {
	if side == 1 {
		return cj.RightAttrIdx
	}
	return cj.LeftAttrIdx
}

// sideCols accumulates the deduplicated ordered column set one join side
// must project.
type sideCols struct {
	attrs []AttrID
	idx   map[AttrID]int
}

func newSideCols() *sideCols { return &sideCols{idx: make(map[AttrID]int)} }

// add returns the column index of attr, appending it on first use.
func (sc *sideCols) add(attr AttrID) int {
	if i, ok := sc.idx[attr]; ok {
		return i
	}
	i := len(sc.attrs)
	sc.attrs = append(sc.attrs, attr)
	sc.idx[attr] = i
	return i
}

// splitConjuncts flattens the top-level AND tree of an analyzed WHERE
// clause into its conjuncts.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if lo, ok := e.(*LogicalOp); ok && lo.Op == "and" {
		return splitConjuncts(lo.Right, splitConjuncts(lo.Left, out))
	}
	return append(out, e)
}

// andAll rebuilds a conjunction (nil for an empty list).
func andAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &LogicalOp{Op: "and", Left: out, Right: c}
		}
	}
	return out
}

// exprSides records which join sides an expression references. Whole-row
// tests — spatial predicates and FLAG — bind to the left table by
// convention, so they count as left references: a conjunct mixing one with
// a right-side column correctly becomes residual instead of being pushed
// to (and compiled against) the right table.
func exprSides(e Expr, refs *[2]bool) {
	switch n := e.(type) {
	case *Ident:
		if n.Side == 0 || n.Side == 1 {
			refs[n.Side] = true
		}
	case *SpatialPred:
		refs[0] = true
	case *NotOp:
		exprSides(n.Child, refs)
	case *LogicalOp:
		exprSides(n.Left, refs)
		exprSides(n.Right, refs)
	case *BinaryOp:
		exprSides(n.Left, refs)
		exprSides(n.Right, refs)
	case *FuncCall:
		if n.Name == "flag" {
			refs[0] = true
		}
		for _, a := range n.Args {
			exprSides(a, refs)
		}
	}
}

// collectSideAttrs adds every attribute an expression references to its
// side's column set (residual predicates need their inputs projected).
// Whole-row tests read implicit left-table attributes — FLAG the flags
// word, spatial predicates the Cartesian triplet — which must be projected
// too or the compiled closure would index a missing column.
func collectSideAttrs(e Expr, sides *[2]*sideCols, leftTable Table) {
	switch n := e.(type) {
	case *Ident:
		if n.Side == 0 || n.Side == 1 {
			sides[n.Side].add(n.Attr)
		}
	case *SpatialPred:
		cx, cy, cz := PositionAttrs(leftTable)
		sides[0].add(cx)
		sides[0].add(cy)
		sides[0].add(cz)
	case *NotOp:
		collectSideAttrs(n.Child, sides, leftTable)
	case *LogicalOp:
		collectSideAttrs(n.Left, sides, leftTable)
		collectSideAttrs(n.Right, sides, leftTable)
	case *BinaryOp:
		collectSideAttrs(n.Left, sides, leftTable)
		collectSideAttrs(n.Right, sides, leftTable)
	case *FuncCall:
		if n.Name == "flag" {
			if f := FlagsAttr(leftTable); f != AttrInvalid {
				sides[0].add(f)
			}
		}
		for _, a := range n.Args {
			collectSideAttrs(a, sides, leftTable)
		}
	}
}

// encodeResidualSides rewrites a residual expression's identifiers into the
// side-encoded attribute space (idempotent: side-0 encoding is the
// identity, and already-encoded side-1 attributes are left alone).
func encodeResidualSides(e Expr) {
	switch n := e.(type) {
	case *Ident:
		if n.Side == 1 && n.Attr < sideStride {
			n.Attr = EncodeSideAttr(1, n.Attr)
		}
	case *NotOp:
		encodeResidualSides(n.Child)
	case *LogicalOp:
		encodeResidualSides(n.Left)
		encodeResidualSides(n.Right)
	case *BinaryOp:
		encodeResidualSides(n.Left)
		encodeResidualSides(n.Right)
	case *FuncCall:
		for _, a := range n.Args {
			encodeResidualSides(a)
		}
	}
}

// objidComparison recognizes a residual conjunct of the exact shape
// "<side0>.objid OP <side1>.objid" (either operand order) and compiles it
// to an exact 64-bit comparison of the pair's object identifiers, with the
// comparison's estimated selectivity over candidate pairs (inequalities keep
// one orientation of each unordered pair → ½). Any other shape returns
// (nil, 1) and goes through the float64 expression path.
func objidComparison(e Expr, refs [2]TableRef) (func(left, right uint64) bool, float64) {
	n, ok := e.(*BinaryOp)
	if !ok {
		return nil, 1
	}
	l, ok1 := n.Left.(*Ident)
	r, ok2 := n.Right.(*Ident)
	if !ok1 || !ok2 {
		return nil, 1
	}
	isObjID := func(id *Ident) bool {
		side := int(id.Side)
		if side != 0 && side != 1 {
			return false
		}
		return AttrName(refs[side].Table, id.Attr) == "objid"
	}
	if !isObjID(l) || !isObjID(r) || l.Side == r.Side {
		return nil, 1
	}
	op := n.Op
	if l.Side == 1 {
		// Normalize to left-operand-first.
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	switch op {
	case "<":
		return func(a, b uint64) bool { return a < b }, 0.5
	case "<=":
		return func(a, b uint64) bool { return a <= b }, 0.5
	case ">":
		return func(a, b uint64) bool { return a > b }, 0.5
	case ">=":
		return func(a, b uint64) bool { return a >= b }, 0.5
	case "=":
		// Cross-table identity on distinct rows is almost never true.
		return func(a, b uint64) bool { return a == b }, 0.01
	case "!=":
		return func(a, b uint64) bool { return a != b }, 1
	default:
		return nil, 1
	}
}

// compileSide builds one side's leaf scan: the pushed-down predicate with
// its coverage region and zone bounds, projecting exactly the columns the
// join needs.
func compileSide(ref TableRef, where Expr, cols []AttrID) (*CompiledSelect, error) {
	cs := &CompiledSelect{
		Source: &Select{Table: ref.Table, Alias: ref.Alias, Where: where},
		Table:  ref.Table,
		AggCol: AttrInvalid,
		Order:  AttrInvalid,
		Cols:   cols,
	}
	if where != nil {
		pred, err := CompileBool(where, ref.Table)
		if err != nil {
			return nil, err
		}
		cs.Pred = pred
		cs.Region = ExtractRegion(where)
		cs.Bounds = ExtractBounds(where)
	}
	return cs, nil
}

// CompileJoin compiles an analyzed two-table select into its executable
// form: pushdown, per-side leaf compilation, residual compilation, and the
// output projection map.
func CompileJoin(sel *Select) (*CompiledJoin, error) {
	refs := joinRefs(sel)
	b := &joinBinder{refs: refs}
	js := sel.Join
	cj := &CompiledJoin{
		Source:   sel,
		Kind:     js.Kind,
		Agg:      sel.Agg,
		OrderRef: -1,
		Desc:     sel.Desc,
		Limit:    sel.Limit,
	}

	// Split the WHERE clause into pushable and residual conjuncts.
	// Conjuncts referencing one side (or none — spatial and flag tests,
	// which bind to the left table) push below the join; conjuncts
	// straddling both sides stay as the residual pair predicate.
	var pushed [2][]Expr
	var residual []Expr
	if sel.Where != nil {
		for _, c := range splitConjuncts(sel.Where, nil) {
			var sideRefs [2]bool
			exprSides(c, &sideRefs)
			switch {
			case sideRefs[0] && sideRefs[1]:
				residual = append(residual, c)
			case sideRefs[1]:
				pushed[1] = append(pushed[1], c)
			default:
				pushed[0] = append(pushed[0], c)
			}
		}
	}

	// Column sets each side must project.
	sides := [2]*sideCols{newSideCols(), newSideCols()}

	// The visible projection, in select-list order.
	addOut := func(side int, attr AttrID) {
		cj.Out = append(cj.Out, OutRef{Side: side, Idx: sides[side].add(attr)})
	}
	outName := func(side int, attr AttrID) Column {
		return Column{
			Name: refs[side].Alias + "." + AttrName(refs[side].Table, attr),
			Type: AttrType(refs[side].Table, attr),
		}
	}
	switch {
	case sel.Agg == AggCount:
		cj.Cols = []Column{{Name: "count(*)", Type: TypeInt}}
	case sel.Agg != AggNone:
		id, err := resolveRef(b, sel.AggArg)
		if err != nil {
			return nil, err
		}
		cj.Cols = []Column{{
			Name: fmt.Sprintf("%s(%s)", sel.Agg, id),
			Type: TypeFloat,
		}}
	case sel.Star:
		for side := 0; side < 2; side++ {
			for a := 0; a < NumAttrs(refs[side].Table); a++ {
				addOut(side, AttrID(a))
				cj.Cols = append(cj.Cols, outName(side, AttrID(a)))
			}
		}
	default:
		for _, c := range sel.Cols {
			id, err := resolveRef(b, c)
			if err != nil {
				return nil, err
			}
			addOut(int(id.Side), id.Attr)
			cj.Cols = append(cj.Cols, outName(int(id.Side), id.Attr))
		}
	}

	// Hidden outputs: the ORDER BY key, then the aggregate operand.
	if sel.OrderBy != "" {
		id, err := resolveRef(b, sel.OrderBy)
		if err != nil {
			return nil, err
		}
		cj.OrderRef = len(cj.Out)
		cj.Out = append(cj.Out, OutRef{Side: int(id.Side), Idx: sides[id.Side].add(id.Attr)})
	}
	if sel.Agg != AggNone && sel.Agg != AggCount {
		id, err := resolveRef(b, sel.AggArg)
		if err != nil {
			return nil, err
		}
		cj.Out = append(cj.Out, OutRef{Side: int(id.Side), Idx: sides[id.Side].add(id.Attr)})
	}

	// Residual inputs must be projected by their side.
	for _, c := range residual {
		collectSideAttrs(c, &sides, refs[0].Table)
	}

	// Join keys / neighbor positions.
	switch js.Kind {
	case JoinInner:
		cj.LeftKey = sides[0].add(js.OnLeft.Attr)
		cj.RightKey = sides[1].add(js.OnRight.Attr)
		cj.KeyObjID = AttrName(refs[0].Table, js.OnLeft.Attr) == "objid" &&
			AttrName(refs[1].Table, js.OnRight.Attr) == "objid"
		cj.On = fmt.Sprintf("%s = %s", js.OnLeft, js.OnRight)
	case JoinNeighbors:
		cj.Radius = js.RadiusArcmin * sphere.Arcmin
		for side := 0; side < 2; side++ {
			cx, cy, cz := PositionAttrs(refs[side].Table)
			pos := [3]int{sides[side].add(cx), sides[side].add(cy), sides[side].add(cz)}
			if side == 0 {
				cj.LeftPos = pos
			} else {
				cj.RightPos = pos
			}
		}
		cj.On = fmt.Sprintf("dist(%s, %s) <= %g'", refs[0].Alias, refs[1].Alias, js.RadiusArcmin)
	default:
		return nil, fmt.Errorf("query: unknown join kind %v", js.Kind)
	}

	// Per-side leaf scans.
	var err error
	cj.Left, err = compileSide(refs[0], andAll(pushed[0]), sides[0].attrs)
	if err != nil {
		return nil, err
	}
	cj.Right, err = compileSide(refs[1], andAll(pushed[1]), sides[1].attrs)
	if err != nil {
		return nil, err
	}

	// Residual predicate. Conjuncts comparing the two objids are peeled
	// off into an exact u64 predicate first; the rest compile over the
	// side-encoded attribute space.
	cj.IDPredSel = 1
	if len(residual) > 0 {
		cj.ResidualStr = andAll(residual).String()
		var rest []Expr
		for _, c := range residual {
			if idp, sel := objidComparison(c, refs); idp != nil {
				cj.IDPredSel *= sel
				prev := cj.IDPred
				if prev == nil {
					cj.IDPred = idp
				} else {
					cj.IDPred = func(l, r uint64) bool { return prev(l, r) && idp(l, r) }
				}
				continue
			}
			rest = append(rest, c)
		}
		if len(rest) > 0 {
			resExpr := andAll(rest)
			encodeResidualSides(resExpr)
			cj.Residual, err = CompileBool(resExpr, refs[0].Table)
			if err != nil {
				return nil, err
			}
		}
	}

	// Executor decode tables: table-local attr → side column index.
	buildIdx := func(t Table, sc *sideCols) []int {
		out := make([]int, NumAttrs(t))
		for i := range out {
			out[i] = -1
		}
		for attr, idx := range sc.idx {
			out[attr] = idx
		}
		return out
	}
	cj.LeftAttrIdx = buildIdx(refs[0].Table, sides[0])
	cj.RightAttrIdx = buildIdx(refs[1].Table, sides[1])
	return cj, nil
}
