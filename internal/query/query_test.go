package query

import (
	"math"
	"strings"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/sphere"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT r, u-g FROM photoobj WHERE r <= 22.5 AND flag('EDGE') != 1e-3")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.kind
	}
	want := []tokenKind{
		tokIdent, tokIdent, tokComma, tokIdent, tokMinus, tokIdent,
		tokIdent, tokIdent, tokIdent, tokIdent, tokLE, tokNumber,
		tokIdent, tokIdent, tokLParen, tokString, tokRParen, tokNE, tokNumber, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v (%q)", i, kinds[i], want[i], toks[i].text)
		}
	}
	// Keywords are lowercased.
	if toks[0].text != "select" {
		t.Errorf("keyword not lowercased: %q", toks[0].text)
	}
	for _, bad := range []string{"r ! 2", "'unterminated", "r § 2"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded", bad)
		}
	}
}

func TestParseBasicSelect(t *testing.T) {
	stmt, err := Parse("SELECT ra, dec, r FROM photoobj WHERE r < 22 AND u - g > 0.5 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.Select
	if sel == nil {
		t.Fatal("not a simple select")
	}
	if len(sel.Cols) != 3 || sel.Cols[0] != "ra" {
		t.Errorf("cols = %v", sel.Cols)
	}
	if sel.Table != TablePhoto {
		t.Errorf("table = %v", sel.Table)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
	if sel.Where == nil {
		t.Fatal("no where clause")
	}
	if got := sel.String(); !strings.Contains(got, "WHERE") || !strings.Contains(got, "LIMIT 10") {
		t.Errorf("String() = %q", got)
	}
}

func TestParseAggregatesAndOrder(t *testing.T) {
	stmt, err := Parse("SELECT COUNT(*) FROM tag WHERE g - r > 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select.Agg != AggCount {
		t.Errorf("agg = %v", stmt.Select.Agg)
	}
	stmt, err = Parse("SELECT AVG(redshift) FROM specobj")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select.Agg != AggAvg || stmt.Select.AggArg != "redshift" {
		t.Errorf("agg = %v arg=%q", stmt.Select.Agg, stmt.Select.AggArg)
	}
	stmt, err = Parse("SELECT objid FROM photoobj WHERE r < 20 ORDER BY r DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select.OrderBy != "r" || !stmt.Select.Desc {
		t.Errorf("order = %q desc=%v", stmt.Select.OrderBy, stmt.Select.Desc)
	}
}

func TestParseSetOps(t *testing.T) {
	stmt, err := Parse("(SELECT objid FROM photoobj WHERE r < 20) UNION (SELECT objid FROM photoobj WHERE g < 20)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select != nil || stmt.Op != OpUnion {
		t.Fatalf("not a union: %+v", stmt)
	}
	// Nested and mixed.
	stmt, err = Parse("((SELECT objid FROM tag) MINUS (SELECT objid FROM tag WHERE r > 21)) INTERSECT (SELECT objid FROM tag WHERE class = 'GALAXY')")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Op != OpIntersect || stmt.Left.Op != OpMinus {
		t.Fatalf("tree shape wrong: %s", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM photoobj",
		"SELECT * FROM nosuchtable",
		"SELECT * FROM photoobj WHERE",
		"SELECT * FROM photoobj LIMIT 0",
		"SELECT * FROM photoobj LIMIT -3",
		"SELECT * FROM photoobj WHERE (r < 2",
		"SELECT * FROM photoobj trailing garbage",
		"SELECT MIN(*) FROM photoobj",
		"UPDATE photoobj",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestAnalyzeResolvesAttributes(t *testing.T) {
	stmt, err := Parse("SELECT ra FROM photoobj WHERE r < 22 AND class = 'QSO'")
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(stmt); err != nil {
		t.Fatal(err)
	}
	// class = 'QSO' must have been rewritten to a numeric comparison.
	if strings.Contains(stmt.Select.Where.String(), "'") {
		t.Errorf("string literal survived analysis: %s", stmt.Select.Where)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []string{
		"SELECT nosuchcol FROM photoobj",
		"SELECT ra FROM photoobj WHERE nosuch < 2",
		"SELECT ra FROM photoobj WHERE class = 'WOMBAT'",
		"SELECT ra FROM photoobj WHERE r = 'GALAXY'",
		"SELECT ra FROM photoobj WHERE CIRCLE(10, 20) ",
		"SELECT ra FROM photoobj WHERE CIRCLE(10, 20, -5)",
		"SELECT ra FROM photoobj WHERE CIRCLE(ra, 20, 5)",
		"SELECT ra FROM photoobj WHERE RECT(0, 10, 30, 20)",
		"SELECT ra FROM photoobj WHERE LATBAND('nowhere', 0, 10)",
		"SELECT ra FROM photoobj WHERE LATBAND('gal', 30, 10)",
		"SELECT ra FROM photoobj WHERE FLAG('NOSUCH')",
		"SELECT ra FROM specobj WHERE FLAG('EDGE')",
		"SELECT ra FROM photoobj WHERE NOSUCHFUNC(1)",
		"SELECT ra FROM photoobj ORDER BY nosuch",
		"SELECT AVG(nosuch) FROM photoobj",
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			continue // parse-time failure also acceptable for some
		}
		if err := Analyze(stmt); err == nil {
			t.Errorf("Analyze(%q) succeeded", q)
		}
	}
}

// photoGetter adapts a PhotoObj to the compiled Getter interface for tests.
// The executor in package qe has its own optimized copy.
func photoGetter(p *catalog.PhotoObj) Getter {
	return func(id AttrID) float64 {
		switch id {
		case PhotoObjID:
			return float64(p.ObjID)
		case PhotoHTMID:
			return float64(p.HTMID)
		case PhotoRA:
			return p.RA
		case PhotoDec:
			return p.Dec
		case PhotoCX:
			return p.X
		case PhotoCY:
			return p.Y
		case PhotoCZ:
			return p.Z
		case PhotoU, PhotoG, PhotoR, PhotoI, PhotoZ:
			return float64(p.Mag[id-PhotoU])
		case PhotoPetroRad:
			return float64(p.PetroRad)
		case PhotoClass:
			return float64(p.Class)
		case PhotoFlags:
			return float64(p.Flags)
		default:
			return 0
		}
	}
}

func preparePred(t *testing.T, where string) BoolFn {
	t.Helper()
	stmt, err := Parse("SELECT objid FROM photoobj WHERE " + where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	if err := Analyze(stmt); err != nil {
		t.Fatalf("analyze %q: %v", where, err)
	}
	pred, err := CompileBool(stmt.Select.Where, TablePhoto)
	if err != nil {
		t.Fatalf("compile %q: %v", where, err)
	}
	return pred
}

func TestCompiledPredicates(t *testing.T) {
	var p catalog.PhotoObj
	p.ObjID = 42
	if err := p.SetPos(180, 30); err != nil {
		t.Fatal(err)
	}
	p.Mag = [5]float32{20.5, 19.0, 18.0, 17.6, 17.4}
	p.Class = catalog.ClassQuasar
	p.Flags = catalog.FlagVariable
	p.PetroRad = 2.5
	g := photoGetter(&p)

	cases := []struct {
		where string
		want  bool
	}{
		{"r < 22", true},
		{"r < 18", false},
		{"u - g > 1", true},
		{"u - g > 2", false},
		{"r < 22 AND g - r < 0.5", false},
		{"r < 22 OR g - r < 0.5", true},
		{"NOT (r < 18)", true},
		{"class = 'QSO'", true},
		{"class != 'GALAXY'", true},
		{"class = 'STAR'", false},
		{"FLAG('VARIABLE')", true},
		{"FLAG('EDGE')", false},
		{"CIRCLE(180, 30, 5)", true},
		{"CIRCLE(181, 30, 5)", false},
		{"CIRCLE(181, 30, 90)", true},
		{"RECT(170, 190, 20, 40)", true},
		{"RECT(170, 190, 31, 40)", false},
		{"ABS(dec - 30) < 0.1", true},
		{"SQRT(petrorad) > 1.5", true},
		{"POW(2, 3) = 8", true},
		{"MIN(u, g) = g", true},
		{"MAX(u, g) = u", true},
		{"LOG10(100) = 2", true},
		{"17 < r < 19", true},
		{"18.5 < r < 19", false},
		{"2 + 3 * 4 = 14", true},
		{"(2 + 3) * 4 = 20", true},
		{"-r < 0", true},
	}
	for _, c := range cases {
		pred := preparePred(t, c.where)
		if got := pred(g); got != c.want {
			t.Errorf("%q = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestCompileSpatialBand(t *testing.T) {
	pred := preparePred(t, "LATBAND('gal', 40, 60)")
	var p catalog.PhotoObj
	// A point at galactic latitude 50.
	v := sphere.FromLonLat(sphere.Galactic, 100, 50)
	ra, dec := sphere.ToRADec(v)
	if err := p.SetPos(ra, dec); err != nil {
		t.Fatal(err)
	}
	if !pred(photoGetter(&p)) {
		t.Error("point at b=50 fails LATBAND(40,60)")
	}
	v = sphere.FromLonLat(sphere.Galactic, 100, 30)
	ra, dec = sphere.ToRADec(v)
	if err := p.SetPos(ra, dec); err != nil {
		t.Fatal(err)
	}
	if pred(photoGetter(&p)) {
		t.Error("point at b=30 passes LATBAND(40,60)")
	}
}

func TestCompileTypeErrors(t *testing.T) {
	bad := []string{
		"r + 2",            // arithmetic as condition
		"r < 22 AND g",     // bare attribute as condition
		"(r < 22) + 2 = 3", // comparison as value
	}
	for _, q := range bad {
		stmt, err := Parse("SELECT objid FROM photoobj WHERE " + q)
		if err != nil {
			continue
		}
		if err := Analyze(stmt); err != nil {
			continue
		}
		if _, err := CompileBool(stmt.Select.Where, TablePhoto); err == nil {
			t.Errorf("CompileBool(%q) succeeded", q)
		}
	}
}

func TestExtractRegion(t *testing.T) {
	cases := []struct {
		where   string
		wantNil bool
		testRA  float64
		testDec float64
		wantIn  bool
	}{
		{"CIRCLE(100, 10, 60) AND r < 22", false, 100, 10, true},
		{"CIRCLE(100, 10, 60) AND r < 22", false, 200, -40, false},
		{"CIRCLE(100, 10, 60) OR CIRCLE(200, -40, 60)", false, 200, -40, true},
		{"CIRCLE(100, 10, 60) OR r < 22", true, 0, 0, false},
		{"NOT CIRCLE(100, 10, 60)", true, 0, 0, false},
		{"r < 22", true, 0, 0, false},
		{"CIRCLE(100, 10, 60) AND RECT(90, 110, 0, 20)", false, 100, 10, true},
		{"CIRCLE(100, 10, 60) AND RECT(90, 110, 0, 20)", false, 100, 25, false},
	}
	for _, c := range cases {
		stmt, err := Parse("SELECT objid FROM photoobj WHERE " + c.where)
		if err != nil {
			t.Fatal(err)
		}
		if err := Analyze(stmt); err != nil {
			t.Fatal(err)
		}
		reg := ExtractRegion(stmt.Select.Where)
		if c.wantNil {
			if reg != nil {
				t.Errorf("%q: extracted region, want nil", c.where)
			}
			continue
		}
		if reg == nil {
			t.Errorf("%q: no region extracted", c.where)
			continue
		}
		v := sphere.FromRADec(c.testRA, c.testDec)
		if got := reg.Contains(v); got != c.wantIn {
			t.Errorf("%q: region contains (%v,%v) = %v, want %v", c.where, c.testRA, c.testDec, got, c.wantIn)
		}
	}
}

func TestPrepareString(t *testing.T) {
	p, err := PrepareString("SELECT COUNT(*) FROM tag WHERE CIRCLE(10, 20, 30) AND r < 21")
	if err != nil {
		t.Fatal(err)
	}
	if p.Select == nil || p.Select.Agg != AggCount || p.Select.Region == nil {
		t.Fatalf("prepared: %+v", p.Select)
	}
	pp, err := PrepareString("(SELECT objid FROM tag) MINUS (SELECT objid FROM tag WHERE r > 22)")
	if err != nil {
		t.Fatal(err)
	}
	if pp.Op != OpMinus || pp.Left.Select == nil || pp.Right.Select == nil {
		t.Fatal("set-op tree not prepared")
	}
	if _, err := PrepareString("SELECT bogus FROM tag"); err == nil {
		t.Error("bad query prepared")
	}
}

func TestSelectStarProjection(t *testing.T) {
	cs, err := PrepareString("SELECT * FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Select.Cols) != NumAttrs(TableTag) {
		t.Errorf("star projected %d cols, want %d", len(cs.Select.Cols), NumAttrs(TableTag))
	}
}

func TestConstEval(t *testing.T) {
	stmt, err := Parse("SELECT objid FROM photoobj WHERE CIRCLE(100 + 10, 2 * 5, 60 / 2)")
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(stmt); err != nil {
		t.Fatal(err)
	}
	sp, ok := stmt.Select.Where.(*SpatialPred)
	if !ok {
		t.Fatalf("not folded to SpatialPred: %T", stmt.Select.Where)
	}
	if sp.Args[0] != 110 || sp.Args[1] != 10 || sp.Args[2] != 30 {
		t.Errorf("args = %v", sp.Args)
	}
}

func TestSchemaCompleteness(t *testing.T) {
	for _, tbl := range []Table{TablePhoto, TableTag, TableSpec} {
		if len(AttrNames(tbl)) == 0 {
			t.Errorf("empty schema for %v", tbl)
		}
		cx, cy, cz := PositionAttrs(tbl)
		if cx == AttrInvalid || cy == AttrInvalid || cz == AttrInvalid {
			t.Errorf("%v missing position attrs", tbl)
		}
		if ClassAttr(tbl) == AttrInvalid {
			t.Errorf("%v missing class attr", tbl)
		}
	}
	// Schema IDs must be dense and within NumAttrs.
	for name, id := range photoSchema {
		if int(id) < 0 || int(id) >= NumAttrs(TablePhoto) {
			t.Errorf("photo attr %s out of range: %d", name, id)
		}
	}
	if math.Abs(float64(NumAttrs(TablePhoto))-float64(numPhotoAttrs)) != 0 {
		t.Error("NumAttrs mismatch")
	}
}

func BenchmarkCompiledPredicate(b *testing.B) {
	stmt, err := Parse("SELECT objid FROM photoobj WHERE r < 22 AND u - g > 0.5 AND CIRCLE(180, 30, 60)")
	if err != nil {
		b.Fatal(err)
	}
	if err := Analyze(stmt); err != nil {
		b.Fatal(err)
	}
	pred, err := CompileBool(stmt.Select.Where, TablePhoto)
	if err != nil {
		b.Fatal(err)
	}
	var p catalog.PhotoObj
	p.SetPos(180.2, 29.9)
	p.Mag = [5]float32{20.5, 19.0, 18.0, 17.6, 17.4}
	g := photoGetter(&p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred(g)
	}
}
