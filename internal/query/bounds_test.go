package query

import (
	"math"
	"testing"
)

// boundsFor parses and analyzes a WHERE clause against the tag table and
// extracts its bounds.
func boundsFor(t *testing.T, where string) *Bounds {
	t.Helper()
	stmt, err := Parse("SELECT objid FROM tag WHERE " + where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	if err := Analyze(stmt); err != nil {
		t.Fatalf("analyze %q: %v", where, err)
	}
	return ExtractBounds(stmt.Select.Where)
}

func wantInterval(t *testing.T, b *Bounds, attr AttrID, want Interval) {
	t.Helper()
	if b == nil {
		t.Fatalf("bounds nil, want %v for attr %d", want, attr)
	}
	got, ok := b.ByAttr[attr]
	if !ok {
		t.Fatalf("attr %d unconstrained, want %v (have %v)", attr, want, b.ByAttr)
	}
	if got != want {
		t.Fatalf("attr %d bounds = %v, want %v", attr, got, want)
	}
}

func TestBoundsSimpleComparisons(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		where string
		want  Interval
	}{
		{"r < 18", Interval{Lo: -inf, Hi: 18, HiOpen: true}},
		{"r <= 18", Interval{Lo: -inf, Hi: 18}},
		{"r > 18", Interval{Lo: 18, Hi: inf, LoOpen: true}},
		{"r >= 18", Interval{Lo: 18, Hi: inf}},
		{"r = 18", Interval{Lo: 18, Hi: 18}},
		{"18 > r", Interval{Lo: -inf, Hi: 18, HiOpen: true}},
		{"18 <= r", Interval{Lo: 18, Hi: inf}},
		{"r < 17 + 1", Interval{Lo: -inf, Hi: 18, HiOpen: true}},
	}
	for _, c := range cases {
		wantInterval(t, boundsFor(t, c.where), TagR, c.want)
	}
}

func TestBoundsUnconstrainedShapes(t *testing.T) {
	for _, where := range []string{
		"r != 18",             // single excluded point: not an interval
		"u - g > 1",           // arithmetic over attributes
		"r < u",               // attr vs attr
		"CIRCLE(185, 32, 10)", // purely spatial
	} {
		if b := boundsFor(t, where); b != nil {
			t.Errorf("%q: bounds = %+v, want nil", where, b)
		}
	}
}

func TestBoundsAndIntersects(t *testing.T) {
	b := boundsFor(t, "r < 18 AND r >= 14 AND g < 20")
	wantInterval(t, b, TagR, Interval{Lo: 14, Hi: 18, HiOpen: true})
	wantInterval(t, b, TagG, Interval{Lo: math.Inf(-1), Hi: 20, HiOpen: true})
}

func TestBoundsOrHull(t *testing.T) {
	b := boundsFor(t, "r < 14 OR r > 20")
	// Hull: everything outside (14, 20) collapses to the full line minus
	// nothing representable — the hull is (-inf, inf)? No: hull of
	// (-inf,14) and (20,inf) is (-inf, inf); such bounds are dropped as
	// unconstrained only if infinite on both sides — verify the hull is
	// correctly infinite (no false pruning).
	if b != nil {
		iv := b.ByAttr[TagR]
		if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
			t.Fatalf("hull = %v, want (-inf, inf)", iv)
		}
	}
	// A hull that genuinely narrows: both branches bounded.
	b = boundsFor(t, "(r >= 14 AND r < 15) OR (r > 19 AND r <= 20)")
	wantInterval(t, b, TagR, Interval{Lo: 14, Hi: 20})
}

func TestBoundsOrDropsOneSidedAttrs(t *testing.T) {
	// g is constrained only on the left branch: OR must drop it.
	b := boundsFor(t, "(g < 20 AND r < 18) OR r < 15")
	if b == nil {
		t.Fatal("bounds nil")
	}
	if _, ok := b.ByAttr[TagG]; ok {
		t.Fatalf("g must be unconstrained under OR, got %v", b.ByAttr[TagG])
	}
	wantInterval(t, b, TagR, Interval{Lo: math.Inf(-1), Hi: 18, HiOpen: true})
}

func TestBoundsNotOfOpenInterval(t *testing.T) {
	// NOT (r < 18) ⇒ r >= 18, and NaN rows satisfy it (the inner
	// comparison is false on NaN).
	b := boundsFor(t, "NOT (r < 18)")
	wantInterval(t, b, TagR, Interval{Lo: 18, Hi: math.Inf(1), AllowNaN: true})

	// NOT (r >= 18) ⇒ r < 18 (+NaN).
	b = boundsFor(t, "NOT (r >= 18)")
	wantInterval(t, b, TagR, Interval{Lo: math.Inf(-1), Hi: 18, HiOpen: true, AllowNaN: true})

	// Double negation restores the original, without NaN admission.
	b = boundsFor(t, "NOT (NOT (r < 18))")
	wantInterval(t, b, TagR, Interval{Lo: math.Inf(-1), Hi: 18, HiOpen: true})

	// De Morgan: NOT (r < 14 OR r > 20) ⇒ r >= 14 AND r <= 20 (+NaN on
	// both sides, but intersect requires both, so NaN stays admitted).
	b = boundsFor(t, "NOT (r < 14 OR r > 20)")
	wantInterval(t, b, TagR, Interval{Lo: 14, Hi: 20, AllowNaN: true})

	// NOT (r != 18) ⇒ r = 18 exactly; NaN does NOT satisfy it (NaN != 18
	// is true, so its negation is false).
	b = boundsFor(t, "NOT (r != 18)")
	wantInterval(t, b, TagR, Interval{Lo: 18, Hi: 18})
}

func TestBoundsClassLiteralEquality(t *testing.T) {
	// The analyzer rewrites class = 'GALAXY' to a numeric comparison, so
	// the bounds see a plain equality on the class code.
	b := boundsFor(t, "class = 'GALAXY'")
	wantInterval(t, b, TagClass, Interval{Lo: 2, Hi: 2})
}

func TestBoundsMixedSpatialScalar(t *testing.T) {
	// The spatial predicate contributes nothing; the scalar side survives.
	b := boundsFor(t, "CIRCLE(185, 32, 10) AND r < 19")
	wantInterval(t, b, TagR, Interval{Lo: math.Inf(-1), Hi: 19, HiOpen: true})
	if len(b.ByAttr) != 1 {
		t.Fatalf("want exactly one constrained attr, got %v", b.ByAttr)
	}
}

func TestBoundsAlwaysFalse(t *testing.T) {
	for _, where := range []string{
		"r < 18 AND r > 21",
		"r < 18 AND r = 21",
		"class = 'STAR' AND class = 'GALAXY'",
		"r < 14 AND (r > 20 OR r = 30)",
	} {
		b := boundsFor(t, where)
		if b == nil || !b.Never {
			t.Errorf("%q: want Never, got %+v", where, b)
		}
	}
	// ... but NOT when a negated side admits NaN: NOT(r < 21) AND r < 18
	// has an empty real interval yet still matches records with NaN r?
	// No — the conjunction needs both sides, and r < 18 rejects NaN, so
	// AllowNaN is false and the predicate is Never.
	b := boundsFor(t, "NOT (r < 21) AND r < 18")
	if b == nil || !b.Never {
		t.Errorf("NOT(r<21) AND r<18: want Never, got %+v", b)
	}
	// Two negated sides both admit NaN: the empty real interval survives
	// with AllowNaN, so the predicate is NOT provably false.
	b = boundsFor(t, "NOT (r < 21) AND NOT (r > 18)")
	if b == nil || b.Never {
		t.Errorf("want NaN-satisfiable bounds, got %+v", b)
	}
	iv := b.ByAttr[TagR]
	if !iv.AllowNaN || !iv.EmptyReal() {
		t.Errorf("want empty real interval with AllowNaN, got %v", iv)
	}
}

func TestBoundsNeverAbsorbsInOr(t *testing.T) {
	b := boundsFor(t, "(r < 18 AND r > 21) OR g < 20")
	if b == nil || b.Never {
		t.Fatalf("OR with one false branch must keep the other, got %+v", b)
	}
	wantInterval(t, b, TagG, Interval{Lo: math.Inf(-1), Hi: 20, HiOpen: true})
}

func TestBoundsAdmitZone(t *testing.T) {
	mkZone := func(lo, hi float64, nan bool) ([]float64, []float64, []bool) {
		n := NumAttrs(TableTag)
		min := make([]float64, n)
		max := make([]float64, n)
		hasNaN := make([]bool, n)
		for i := range min {
			min[i], max[i] = math.Inf(-1), math.Inf(1)
		}
		min[TagR], max[TagR], hasNaN[TagR] = lo, hi, nan
		return min, max, hasNaN
	}
	cases := []struct {
		where  string
		lo, hi float64
		nan    bool
		admit  bool
	}{
		{"r < 18", 18.5, 22, false, false}, // zone entirely above the cut
		{"r < 18", 17, 22, false, true},
		{"r < 18", 18, 22, false, false}, // zone min == open bound
		{"r <= 18", 18, 22, false, true}, // closed bound touches
		{"r > 20", 14, 20, false, false}, // zone max == open bound
		{"r >= 20", 14, 20, false, true},
		{"r = 19", 14, 18, false, false},
		{"r = 19", 14, 19, false, true},
		{"r < 18", math.Inf(1), math.Inf(-1), true, false}, // all-NaN zone
		{"NOT (r < 18)", 14, 16, true, true},               // NaN admits
		{"NOT (r < 18)", 14, 16, false, false},
		{"r < 18 AND r > 21", 14, 22, false, false}, // Never prunes all
	}
	for _, c := range cases {
		b := boundsFor(t, c.where)
		min, max, hasNaN := mkZone(c.lo, c.hi, c.nan)
		if got := b.AdmitZone(min, max, hasNaN); got != c.admit {
			t.Errorf("%q on zone [%g,%g] nan=%v: admit=%v, want %v",
				c.where, c.lo, c.hi, c.nan, got, c.admit)
		}
	}
	// Nil bounds admit everything.
	var nilB *Bounds
	if !nilB.AdmitZone(nil, nil, nil) {
		t.Error("nil bounds must admit")
	}
}

func TestBoundsFlagTestUnconstrained(t *testing.T) {
	// Flag tests run on photoobj (tag has no flags) and constrain nothing;
	// the conjunct's scalar side still prunes.
	stmt, err := Parse("SELECT objid FROM photoobj WHERE FLAG('SATURATED') AND r < 18")
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(stmt); err != nil {
		t.Fatal(err)
	}
	b := ExtractBounds(stmt.Select.Where)
	if b == nil {
		t.Fatal("bounds nil")
	}
	wantInterval(t, b, PhotoR, Interval{Lo: math.Inf(-1), Hi: 18, HiOpen: true})
}
