package query

import (
	"fmt"
	"math"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// fieldRef resolves one AttrID to its fixed byte position inside an encoded
// record. stored is false for derived attributes (tag RA/Dec from the
// Cartesian triplet, spec position from the trixel center), which have no
// bytes of their own.
type fieldRef struct {
	field  catalog.Field
	stored bool
}

// The per-table AttrID → field tables, built once from the catalog layouts.
// Attribute order is dense, so a slice indexed by AttrID suffices.
var (
	photoFieldRefs = buildFieldRefs(TablePhoto, catalog.PhotoLayout)
	tagFieldRefs   = buildFieldRefs(TableTag, catalog.TagLayout)
	specFieldRefs  = buildFieldRefs(TableSpec, catalog.SpecLayout)
)

func buildFieldRefs(t Table, layout []catalog.Field) []fieldRef {
	byName := make(map[string]catalog.Field, len(layout))
	for _, f := range layout {
		byName[f.Name] = f
	}
	refs := make([]fieldRef, NumAttrs(t))
	for id := range refs {
		name := AttrName(t, AttrID(id))
		if f, ok := byName[name]; ok {
			refs[id] = fieldRef{field: f, stored: true}
			continue
		}
		// Only the known derived attributes may lack stored bytes.
		switch {
		case t == TableTag && (AttrID(id) == TagRA || AttrID(id) == TagDec):
		case t == TableSpec && (AttrID(id) == SpecCX || AttrID(id) == SpecCY || AttrID(id) == SpecCZ):
		default:
			panic(fmt.Sprintf("query: attribute %s.%s has no stored field", t, name))
		}
	}
	return refs
}

func fieldRefs(t Table) []fieldRef {
	switch t {
	case TablePhoto:
		return photoFieldRefs
	case TableTag:
		return tagFieldRefs
	case TableSpec:
		return specFieldRefs
	default:
		return nil
	}
}

// RecordSize returns the encoded record length of a table.
func RecordSize(t Table) int {
	switch t {
	case TablePhoto:
		return catalog.PhotoObjSize
	case TableTag:
		return catalog.TagSize
	case TableSpec:
		return catalog.SpecObjSize
	default:
		return 0
	}
}

// RowReader is the selective-decode accessor over raw encoded records: Get
// reads single attributes at fixed byte offsets, so a predicate or
// projection touching 3 of a PhotoObj's 38 attributes reads ~24 bytes
// instead of decoding the full 778-byte struct. Derived attributes (tag
// RA/Dec, spec position) are computed lazily and cached per record.
//
// A RowReader is stateful (it holds the current record and the derivation
// cache) and not safe for concurrent use; the engine allocates one per scan
// worker so the per-record path allocates nothing.
type RowReader struct {
	table   Table
	refs    []fieldRef
	recSize int
	rec     []byte
	// derived caches the lazily computed attributes of the current record:
	// {RA, Dec, 0} for tag, {X, Y, Z} for spec.
	derived   [3]float64
	derivedOK bool
}

// NewRowReader builds the offset-based accessor for a table.
func NewRowReader(t Table) (*RowReader, error) {
	refs := fieldRefs(t)
	if refs == nil {
		return nil, fmt.Errorf("query: no record layout for table %v", t)
	}
	return &RowReader{table: t, refs: refs, recSize: RecordSize(t)}, nil
}

// Reset points the reader at a new encoded record.
func (r *RowReader) Reset(rec []byte) error {
	if len(rec) < r.recSize {
		return fmt.Errorf("query: %s record of %d bytes, need %d", r.table, len(rec), r.recSize)
	}
	r.rec = rec
	r.derivedOK = false
	return nil
}

// ObjID reads the record's object identifier through the catalog's
// sanctioned accessor (objid is the leading KindU64 field of every layout).
func (r *RowReader) ObjID() catalog.ObjID {
	return catalog.RecordObjID(r.rec)
}

// Get reads one attribute of the current record.
func (r *RowReader) Get(id AttrID) float64 {
	if id < 0 || int(id) >= len(r.refs) {
		return 0
	}
	ref := r.refs[id]
	if ref.stored {
		return ref.field.Read(r.rec)
	}
	if !r.derivedOK {
		r.deriveFrom()
	}
	switch {
	case r.table == TableTag:
		if id == TagRA {
			return r.derived[0]
		}
		return r.derived[1]
	case r.table == TableSpec:
		return r.derived[id-SpecCX]
	}
	return 0
}

// deriveFrom fills the derivation cache from the current record.
func (r *RowReader) deriveFrom() {
	r.derivedOK = true
	switch r.table {
	case TableTag:
		v := sphere.Vec3{
			X: r.refs[TagCX].field.Read(r.rec),
			Y: r.refs[TagCY].field.Read(r.rec),
			Z: r.refs[TagCZ].field.Read(r.rec),
		}
		r.derived[0], r.derived[1] = sphere.ToRADec(v)
	case TableSpec:
		id := htm.ID(uint64(r.refs[SpecHTMID].field.Read(r.rec)))
		if c, err := htm.Center(id); err == nil {
			r.derived = [3]float64{c.X, c.Y, c.Z}
		} else {
			r.derived = [3]float64{math.NaN(), math.NaN(), math.NaN()}
		}
	}
}

// ZoneValues returns the zone-map extractor for a table: it fills out
// (length NumAttrs(t), indexed by AttrID) with every attribute of one
// encoded record, including the derived ones, so per-container min/max
// statistics cover the full schema. The returned function is stateless and
// safe for concurrent use — shard slices fold zones in parallel during a
// bulk load.
func ZoneValues(t Table) func(rec []byte, out []float64) {
	refs := fieldRefs(t)
	if refs == nil {
		return nil
	}
	readStored := func(rec []byte, out []float64) {
		for id, ref := range refs {
			if ref.stored {
				out[id] = ref.field.Read(rec)
			}
		}
	}
	switch t {
	case TableTag:
		return func(rec []byte, out []float64) {
			readStored(rec, out)
			out[TagRA], out[TagDec] = sphere.ToRADec(sphere.Vec3{
				X: out[TagCX], Y: out[TagCY], Z: out[TagCZ],
			})
		}
	case TableSpec:
		return func(rec []byte, out []float64) {
			readStored(rec, out)
			if c, err := htm.Center(htm.ID(uint64(out[SpecHTMID]))); err == nil {
				out[SpecCX], out[SpecCY], out[SpecCZ] = c.X, c.Y, c.Z
			} else {
				nan := math.NaN()
				out[SpecCX], out[SpecCY], out[SpecCZ] = nan, nan, nan
			}
		}
	default:
		return readStored
	}
}
