// Package query implements the astronomy query language of the Science
// Archive: a small SQL-like language whose WHERE clauses mix attribute
// predicates (magnitudes, colors, classifications) with the spatial
// operators the paper calls for — cones, rectangles, and latitude bands in
// arbitrary celestial coordinate systems.
//
// Each query received from the user interface is parsed into a Query
// Execution Tree (QET); each node of the QET is either a query node (a
// filtered table scan) or a set-operation node (union, intersection,
// difference), and returns a bag of object pointers upon execution.
// The parallel executor lives in package qe; this package provides the
// lexer, parser, semantic analysis, predicate compilation, and extraction of
// half-space regions for index pruning.
package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits query text into tokens. Identifiers and keywords are
// case-insensitive; the lexer lowercases identifier text.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '(':
			l.emit(tokLParen, "(")
			l.pos++
		case c == ')':
			l.emit(tokRParen, ")")
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
			l.pos++
		case c == '+':
			l.emit(tokPlus, "+")
			l.pos++
		case c == '-':
			l.emit(tokMinus, "-")
			l.pos++
		case c == '*':
			l.emit(tokStar, "*")
			l.pos++
		case c == '/':
			l.emit(tokSlash, "/")
			l.pos++
		case c == '<':
			if l.peek(1) == '=' {
				l.emit(tokLE, "<=")
				l.pos += 2
			} else if l.peek(1) == '>' {
				l.emit(tokNE, "<>")
				l.pos += 2
			} else {
				l.emit(tokLT, "<")
				l.pos++
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(tokGE, ">=")
				l.pos += 2
			} else {
				l.emit(tokGT, ">")
				l.pos++
			}
		case c == '=':
			l.emit(tokEQ, "=")
			l.pos++
		case c == '!':
			if l.peek(1) == '=' {
				l.emit(tokNE, "!=")
				l.pos += 2
			} else {
				return nil, parseErrorf(l.src, l.pos, "!", "unexpected '!' (use != or <>)")
			}
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case c == '.':
			l.emit(tokDot, ".")
			l.pos++
		case c < utf8.RuneSelf && (unicode.IsLetter(rune(c)) || c == '_'):
			l.lexIdent()
		default:
			// The language is ASCII; a multi-byte rune is reported whole
			// rather than byte-mangled.
			r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
			return nil, parseErrorf(l.src, l.pos, string(r), "unexpected character")
		}
	}
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		if l.src[l.pos] == quote {
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			l.pos++
			return nil
		}
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	// Report only a short prefix as the offending token — the tail of an
	// unterminated string is the rest of the query.
	tok := l.src[start:]
	if len(tok) > 12 {
		tok = tok[:12] + "…"
	}
	return parseErrorf(l.src, start, tok, "unterminated string")
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{
		kind: tokIdent,
		text: strings.ToLower(l.src[start:l.pos]),
		pos:  start,
	})
}
