package query

import (
	"strings"
	"testing"
)

func TestColumnsFromProjection(t *testing.T) {
	prep, err := PrepareString("SELECT objid, ra, dec, r, class FROM tag WHERE r < 20")
	if err != nil {
		t.Fatal(err)
	}
	cols := prep.Columns()
	want := []Column{
		{Name: "objid", Type: TypeID},
		{Name: "ra", Type: TypeFloat},
		{Name: "dec", Type: TypeFloat},
		{Name: "r", Type: TypeFloat},
		{Name: "class", Type: TypeInt},
	}
	if len(cols) != len(want) {
		t.Fatalf("got %d columns, want %d", len(cols), len(want))
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Errorf("column %d = %+v, want %+v", i, cols[i], want[i])
		}
	}
}

func TestColumnsStar(t *testing.T) {
	prep, err := PrepareString("SELECT * FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	cols := prep.Columns()
	if len(cols) != NumAttrs(TableTag) {
		t.Fatalf("star projects %d columns, want %d", len(cols), NumAttrs(TableTag))
	}
	if cols[0].Name != "objid" {
		t.Errorf("first star column = %+v", cols[0])
	}
	for i, c := range cols {
		if c.Name == "" {
			t.Errorf("column %d has no canonical name", i)
		}
	}
}

func TestColumnsAggregateAndSetOp(t *testing.T) {
	prep, err := PrepareString("SELECT COUNT(*) FROM specobj")
	if err != nil {
		t.Fatal(err)
	}
	if cols := prep.Columns(); len(cols) != 1 || cols[0].Name != "count(*)" || cols[0].Type != TypeInt {
		t.Errorf("count columns = %+v", cols)
	}

	prep, err = PrepareString("SELECT MIN(redshift) FROM specobj")
	if err != nil {
		t.Fatal(err)
	}
	if cols := prep.Columns(); len(cols) != 1 || cols[0].Name != "min(redshift)" || cols[0].Type != TypeFloat {
		t.Errorf("min columns = %+v", cols)
	}

	// Set operations take the left branch's schema, as in SQL.
	prep, err = PrepareString("SELECT objid, r FROM tag WHERE r < 18 UNION SELECT objid, g FROM tag WHERE g < 18")
	if err != nil {
		t.Fatal(err)
	}
	cols := prep.Columns()
	if len(cols) != 2 || cols[1].Name != "r" {
		t.Errorf("union columns = %+v", cols)
	}
}

func TestCanonicalNamesRoundTrip(t *testing.T) {
	for _, tb := range []Table{TablePhoto, TableTag, TableSpec} {
		for i := 0; i < NumAttrs(tb); i++ {
			name := AttrName(tb, AttrID(i))
			if name == "" {
				t.Fatalf("%s attr %d has no canonical name", tb, i)
			}
			id, err := Resolve(tb, name)
			if err != nil {
				t.Fatalf("%s: canonical name %q does not resolve: %v", tb, name, err)
			}
			if id != AttrID(i) {
				t.Errorf("%s: %q resolves to %d, want %d", tb, name, id, i)
			}
		}
	}
	if AttrName(TableTag, AttrInvalid) != "" {
		t.Error("AttrInvalid has a name")
	}
	if AttrName(TableTag, AttrID(NumAttrs(TableTag))) != "" {
		t.Error("out-of-range attr has a name")
	}
}

func TestTableColumnsSchemaDiscovery(t *testing.T) {
	cols := TableColumns(TableSpec)
	if len(cols) != NumAttrs(TableSpec) {
		t.Fatalf("spec schema has %d columns", len(cols))
	}
	byName := map[string]ColType{}
	for _, c := range cols {
		byName[c.Name] = c.Type
	}
	for name, want := range map[string]ColType{
		"objid": TypeID, "htmid": TypeID, "redshift": TypeFloat,
		"plate": TypeInt, "class": TypeInt, "sn": TypeFloat,
	} {
		if byName[name] != want {
			t.Errorf("spec %s type = %s, want %s", name, byName[name], want)
		}
	}
}

func TestPlanScan(t *testing.T) {
	prep, err := PrepareString("SELECT objid, r FROM tag WHERE CIRCLE(185, 32, 10) AND r < 20 ORDER BY r DESC LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	p := prep.Plan()
	if p.Kind != "scan" || p.Table != "tag" {
		t.Fatalf("plan = %+v", p)
	}
	if !p.Indexed {
		t.Error("spatial query not marked indexed")
	}
	if p.OrderBy != "r" || !p.Desc || p.Limit != 7 {
		t.Errorf("order/limit: %+v", p)
	}
	if p.Filter == "" || !strings.Contains(p.Filter, "CIRCLE") {
		t.Errorf("filter = %q", p.Filter)
	}

	// No spatial predicate → full scan, not indexed.
	prep, err = PrepareString("SELECT objid FROM tag WHERE r < 20")
	if err != nil {
		t.Fatal(err)
	}
	if prep.Plan().Indexed {
		t.Error("magnitude-only query marked indexed")
	}
}

func TestPlanSetOpAndExplainText(t *testing.T) {
	prep, err := PrepareString("SELECT objid FROM tag WHERE r < 18 MINUS SELECT objid FROM tag WHERE g < 18")
	if err != nil {
		t.Fatal(err)
	}
	p := prep.Plan()
	if p.Kind != "minus" || len(p.Children) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	text := prep.Explain()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("explain text has %d lines:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "MINUS") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  SCAN tag") {
		t.Errorf("line 1 = %q", lines[1])
	}
}
