package query

import (
	"fmt"
	"math"

	"sdss/internal/region"
	"sdss/internal/sphere"
)

// Getter retrieves one attribute of the current object. The executor
// installs a closure over its decode buffer, so compiled predicates never
// allocate per object.
type Getter func(AttrID) float64

// BoolFn is a compiled boolean expression.
type BoolFn func(Getter) bool

// NumFn is a compiled numeric expression.
type NumFn func(Getter) float64

// CompileBool compiles an analyzed WHERE clause into a predicate. The
// expression must be boolean-valued; numeric expressions in boolean context
// are an error (the language has no implicit truthiness).
func CompileBool(e Expr, t Table) (BoolFn, error) {
	switch n := e.(type) {
	case *LogicalOp:
		l, err := CompileBool(n.Left, t)
		if err != nil {
			return nil, err
		}
		r, err := CompileBool(n.Right, t)
		if err != nil {
			return nil, err
		}
		if n.Op == "and" {
			return func(g Getter) bool { return l(g) && r(g) }, nil
		}
		return func(g Getter) bool { return l(g) || r(g) }, nil

	case *NotOp:
		c, err := CompileBool(n.Child, t)
		if err != nil {
			return nil, err
		}
		return func(g Getter) bool { return !c(g) }, nil

	case *BinaryOp:
		switch n.Op {
		case "<", "<=", ">", ">=", "=", "!=":
			l, err := CompileNum(n.Left, t)
			if err != nil {
				return nil, err
			}
			r, err := CompileNum(n.Right, t)
			if err != nil {
				return nil, err
			}
			// These closures ARE the query language's comparison semantics:
			// a NaN (unmeasured) attribute fails every positive comparison
			// and passes !=, exactly what the bounds analyzer models, so the
			// raw IEEE operators are the specification here.
			switch n.Op {
			case "<":
				//lint:skylint-ignore nansafe IEEE NaN-compares-false is the query language's defined predicate semantics
				return func(g Getter) bool { return l(g) < r(g) }, nil
			case "<=":
				//lint:skylint-ignore nansafe IEEE NaN-compares-false is the query language's defined predicate semantics
				return func(g Getter) bool { return l(g) <= r(g) }, nil
			case ">":
				//lint:skylint-ignore nansafe IEEE NaN-compares-false is the query language's defined predicate semantics
				return func(g Getter) bool { return l(g) > r(g) }, nil
			case ">=":
				//lint:skylint-ignore nansafe IEEE NaN-compares-false is the query language's defined predicate semantics
				return func(g Getter) bool { return l(g) >= r(g) }, nil
			case "=":
				//lint:skylint-ignore nansafe IEEE NaN-compares-false is the query language's defined predicate semantics
				return func(g Getter) bool { return l(g) == r(g) }, nil
			default:
				//lint:skylint-ignore nansafe IEEE NaN-compares-true for != mirrors the bounds analyzer's AllowNaN model
				return func(g Getter) bool { return l(g) != r(g) }, nil
			}
		default:
			return nil, fmt.Errorf("query: arithmetic expression %s used as a condition", n)
		}

	case *SpatialPred:
		return compileSpatial(n, t)

	case *FuncCall:
		if n.Name == "flag" {
			lit := n.Args[0].(*StringLit)
			bit, err := flagBit(lit.Value)
			if err != nil {
				return nil, err
			}
			attr := FlagsAttr(t)
			if attr == AttrInvalid {
				return nil, fmt.Errorf("query: table %s has no flags", t)
			}
			return func(g Getter) bool {
				return uint64(g(attr))&bit != 0
			}, nil
		}
		return nil, fmt.Errorf("query: function %s is not a condition", n.Name)

	default:
		return nil, fmt.Errorf("query: expression %s is not a condition", e)
	}
}

// compileSpatial compiles the exact geometric membership test of a spatial
// predicate: the per-object check behind the index's partial trixels. Thanks
// to the Cartesian representation this is dot products against the region's
// half-space normals — no trigonometry per object.
func compileSpatial(sp *SpatialPred, t Table) (BoolFn, error) {
	cx, cy, cz := PositionAttrs(t)
	if cx == AttrInvalid {
		return nil, fmt.Errorf("query: table %s has no position attributes", t)
	}
	reg := sp.Region()
	if reg == nil {
		return nil, fmt.Errorf("query: unresolved spatial predicate")
	}
	// Single half-space (the common cone query): inline the dot product.
	if len(reg.Convexes) == 1 && len(reg.Convexes[0].Halfspaces) == 1 {
		h := reg.Convexes[0].Halfspaces[0]
		nx, ny, nz, off := h.Normal.X, h.Normal.Y, h.Normal.Z, h.Offset
		return func(g Getter) bool {
			//lint:skylint-ignore nansafe NaN coordinates make the dot product NaN and the test false: the record is excluded, which is the spatial predicate's contract
			return g(cx)*nx+g(cy)*ny+g(cz)*nz >= off
		}, nil
	}
	return func(g Getter) bool {
		return reg.Contains(sphere.Vec3{X: g(cx), Y: g(cy), Z: g(cz)})
	}, nil
}

// CompileNum compiles an analyzed numeric expression.
func CompileNum(e Expr, t Table) (NumFn, error) {
	switch n := e.(type) {
	case *NumberLit:
		v := n.Value
		return func(Getter) float64 { return v }, nil

	case *Ident:
		if n.Attr == AttrInvalid {
			return nil, fmt.Errorf("query: unresolved attribute %q (Analyze not run?)", n.Name)
		}
		attr := n.Attr
		return func(g Getter) float64 { return g(attr) }, nil

	case *BinaryOp:
		switch n.Op {
		case "+", "-", "*", "/":
			l, err := CompileNum(n.Left, t)
			if err != nil {
				return nil, err
			}
			r, err := CompileNum(n.Right, t)
			if err != nil {
				return nil, err
			}
			switch n.Op {
			case "+":
				return func(g Getter) float64 { return l(g) + r(g) }, nil
			case "-":
				return func(g Getter) float64 { return l(g) - r(g) }, nil
			case "*":
				return func(g Getter) float64 { return l(g) * r(g) }, nil
			default:
				return func(g Getter) float64 { return l(g) / r(g) }, nil
			}
		default:
			return nil, fmt.Errorf("query: comparison %s used as a value", n)
		}

	case *FuncCall:
		return compileNumFunc(n, t)

	case *StringLit:
		return nil, fmt.Errorf("query: string %q used as a number", n.Value)

	default:
		return nil, fmt.Errorf("query: expression %s is not numeric", e)
	}
}

func compileNumFunc(n *FuncCall, t Table) (NumFn, error) {
	args := make([]NumFn, len(n.Args))
	for i, a := range n.Args {
		f, err := CompileNum(a, t)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	switch n.Name {
	case "abs":
		return func(g Getter) float64 { return math.Abs(args[0](g)) }, nil
	case "sqrt":
		return func(g Getter) float64 { return math.Sqrt(args[0](g)) }, nil
	case "log10":
		return func(g Getter) float64 { return math.Log10(args[0](g)) }, nil
	case "pow":
		return func(g Getter) float64 { return math.Pow(args[0](g), args[1](g)) }, nil
	case "min":
		return func(g Getter) float64 { return math.Min(args[0](g), args[1](g)) }, nil
	case "max":
		return func(g Getter) float64 { return math.Max(args[0](g), args[1](g)) }, nil
	default:
		return nil, fmt.Errorf("query: function %s is not numeric", n.Name)
	}
}

// CompiledSelect is a fully prepared select: the predicate, projection,
// coverage region, and the plan parameters the executor needs.
type CompiledSelect struct {
	Source *Select
	Table  Table
	Pred   BoolFn         // nil means all objects match
	Region *region.Region // nil means whole sky
	// Bounds are the conservative per-attribute value intervals implied by
	// the WHERE clause — the scalar analogue of Region, used for zone-map
	// container pruning. Nil means the predicate constrains no attribute.
	Bounds *Bounds
	Cols   []AttrID // projection (resolved); nil for COUNT-only
	Agg    AggFunc
	AggCol AttrID
	Order  AttrID // AttrInvalid if unordered
	Desc   bool
	Limit  int
}

// Compile analyzes and compiles a select statement end to end.
func Compile(sel *Select) (*CompiledSelect, error) {
	cs := &CompiledSelect{
		Source: sel,
		Table:  sel.Table,
		Agg:    sel.Agg,
		AggCol: AttrInvalid,
		Order:  AttrInvalid,
		Desc:   sel.Desc,
		Limit:  sel.Limit,
	}
	if sel.Where != nil {
		pred, err := CompileBool(sel.Where, sel.Table)
		if err != nil {
			return nil, err
		}
		cs.Pred = pred
		cs.Region = ExtractRegion(sel.Where)
		cs.Bounds = ExtractBounds(sel.Where)
	}
	switch {
	case sel.Agg == AggCount:
		// no projection
	case sel.Agg != AggNone:
		id, err := Resolve(sel.Table, sel.AggArg)
		if err != nil {
			return nil, err
		}
		cs.AggCol = id
	case sel.Star:
		// Project every attribute in schema order.
		for i := 0; i < NumAttrs(sel.Table); i++ {
			cs.Cols = append(cs.Cols, AttrID(i))
		}
	default:
		for _, c := range sel.Cols {
			id, err := Resolve(sel.Table, c)
			if err != nil {
				return nil, err
			}
			cs.Cols = append(cs.Cols, id)
		}
	}
	if sel.OrderBy != "" {
		id, err := Resolve(sel.Table, sel.OrderBy)
		if err != nil {
			return nil, err
		}
		cs.Order = id
	}
	return cs, nil
}

// PrepareStmt analyzes and compiles a whole statement tree.
func PrepareStmt(stmt *Stmt) (*Prepared, error) {
	if err := Analyze(stmt); err != nil {
		return nil, err
	}
	return prepare(stmt)
}

// Prepared mirrors the Stmt tree with compiled leaves — the executable QET.
// A leaf is either a single-table Select or a two-table Join; interior nodes
// are set operations.
type Prepared struct {
	Select      *CompiledSelect
	Join        *CompiledJoin
	Op          SetOp
	Left, Right *Prepared
}

func prepare(stmt *Stmt) (*Prepared, error) {
	if stmt.Select != nil {
		if stmt.Select.Join != nil {
			cj, err := CompileJoin(stmt.Select)
			if err != nil {
				return nil, err
			}
			return &Prepared{Join: cj}, nil
		}
		cs, err := Compile(stmt.Select)
		if err != nil {
			return nil, err
		}
		return &Prepared{Select: cs}, nil
	}
	l, err := prepare(stmt.Left)
	if err != nil {
		return nil, err
	}
	r, err := prepare(stmt.Right)
	if err != nil {
		return nil, err
	}
	// Set operations work on bags of object pointers, matched and deduped
	// by ObjID; join rows are pairs, which that identity cannot represent
	// (every pair sharing a left object would collapse). Refuse rather
	// than silently drop rows.
	if l.hasJoin() || r.hasJoin() {
		return nil, fmt.Errorf("query: set operations over joins are not supported (join rows are pairs, not object pointers)")
	}
	return &Prepared{Op: stmt.Op, Left: l, Right: r}, nil
}

// hasJoin reports whether any leaf of the prepared tree is a join.
func (p *Prepared) hasJoin() bool {
	switch {
	case p.Join != nil:
		return true
	case p.Select != nil:
		return false
	default:
		return p.Left.hasJoin() || p.Right.hasJoin()
	}
}

// PrepareString parses, analyzes, and compiles query text in one call.
func PrepareString(src string) (*Prepared, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return PrepareStmt(stmt)
}
