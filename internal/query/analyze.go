package query

import (
	"fmt"
	"math"
	"strings"

	"sdss/internal/catalog"
	"sdss/internal/region"
	"sdss/internal/sphere"
)

// Analyze resolves names and rewrites the statement in place: attribute
// identifiers are bound to schema IDs (and, in join queries, to their join
// side), class-name string literals become their numeric codes, flag tests
// are validated, and the spatial functions CIRCLE / RECT / LATBAND are
// resolved into SpatialPred nodes whose constant arguments the planner can
// turn into half-space coverage.
func Analyze(stmt *Stmt) error {
	if stmt.Select != nil {
		if stmt.Select.Join != nil {
			return analyzeJoinSelect(stmt.Select)
		}
		return analyzeSelect(stmt.Select)
	}
	if err := Analyze(stmt.Left); err != nil {
		return err
	}
	return Analyze(stmt.Right)
}

// binder resolves identifier references for one FROM clause shape. The
// single-table binder resolves against one schema; the join binder resolves
// qualified (and unambiguous unqualified) references against both sides.
type binder interface {
	// bind resolves the identifier in place: Attr gets the table-local
	// attribute ID and Side the join side (-1 for single-table selects).
	bind(id *Ident) error
	// tableOf returns the table a bound identifier belongs to.
	tableOf(id *Ident) Table
	// flagTable is the table FLAG() tests bind to (the left table in
	// joins, documented in the README).
	flagTable() Table
}

// tableBinder resolves against a single table, accepting the select's alias
// or the canonical table name as a qualifier.
type tableBinder struct {
	t     Table
	alias string
}

func (b tableBinder) bind(id *Ident) error {
	if id.Qual != "" && id.Qual != b.alias && id.Qual != b.t.String() {
		return fmt.Errorf("query: unknown table alias %q in %s", id.Qual, id)
	}
	attr, err := Resolve(b.t, id.Name)
	if err != nil {
		return err
	}
	id.Attr = attr
	id.Side = -1
	return nil
}

func (b tableBinder) tableOf(*Ident) Table { return b.t }
func (b tableBinder) flagTable() Table     { return b.t }

// resolveRef validates a possibly qualified column reference ("p.r" or "r")
// against the binder and returns the bound identifier.
func resolveRef(b binder, ref string) (*Ident, error) {
	id := identFromRef(ref)
	if err := b.bind(id); err != nil {
		return nil, err
	}
	return id, nil
}

func analyzeSelect(sel *Select) error {
	b := tableBinder{t: sel.Table, alias: sel.Alias}
	// Qualified references in the select list, aggregate argument, and
	// ORDER BY are validated and normalized to bare names, so compilation
	// and every downstream consumer see the historical single-table shape.
	for i, c := range sel.Cols {
		id, err := resolveRef(b, c)
		if err != nil {
			return err
		}
		sel.Cols[i] = id.Name
	}
	if sel.AggArg != "" {
		id, err := resolveRef(b, sel.AggArg)
		if err != nil {
			return err
		}
		sel.AggArg = id.Name
	}
	if sel.OrderBy != "" {
		id, err := resolveRef(b, sel.OrderBy)
		if err != nil {
			return err
		}
		sel.OrderBy = id.Name
	}
	if sel.Where != nil {
		rewritten, err := analyzeExpr(sel.Where, b)
		if err != nil {
			return err
		}
		sel.Where = rewritten
	}
	return nil
}

// analyzeExpr resolves one expression tree, returning the (possibly
// rewritten) node.
func analyzeExpr(e Expr, b binder) (Expr, error) {
	switch n := e.(type) {
	case *NumberLit, *StringLit, *SpatialPred:
		return e, nil
	case *Ident:
		if err := b.bind(n); err != nil {
			return nil, err
		}
		return n, nil
	case *NotOp:
		child, err := analyzeExpr(n.Child, b)
		if err != nil {
			return nil, err
		}
		n.Child = child
		return n, nil
	case *LogicalOp:
		l, err := analyzeExpr(n.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := analyzeExpr(n.Right, b)
		if err != nil {
			return nil, err
		}
		n.Left, n.Right = l, r
		return n, nil
	case *BinaryOp:
		return analyzeBinary(n, b)
	case *FuncCall:
		return analyzeCall(n, b)
	default:
		return nil, fmt.Errorf("query: unknown expression node %T", e)
	}
}

func analyzeBinary(n *BinaryOp, b binder) (Expr, error) {
	// class = 'GALAXY' and friends: map the class name to its code before
	// the generic numeric path rejects the string literal.
	if n.Op == "=" || n.Op == "!=" {
		if lit, ident, swapped := stringComparison(n); lit != nil {
			code, err := classCode(lit.Value)
			if err != nil {
				return nil, err
			}
			if err := b.bind(ident); err != nil {
				return nil, err
			}
			if ident.Attr != ClassAttr(b.tableOf(ident)) {
				return nil, fmt.Errorf("query: string comparison only supported on class, not %q", ident.Name)
			}
			num := &NumberLit{Value: float64(code)}
			if swapped {
				return &BinaryOp{Op: n.Op, Left: num, Right: ident}, nil
			}
			return &BinaryOp{Op: n.Op, Left: ident, Right: num}, nil
		}
	}
	l, err := analyzeExpr(n.Left, b)
	if err != nil {
		return nil, err
	}
	r, err := analyzeExpr(n.Right, b)
	if err != nil {
		return nil, err
	}
	n.Left, n.Right = l, r
	return n, nil
}

// stringComparison detects ident-vs-string comparisons in either order.
func stringComparison(n *BinaryOp) (lit *StringLit, ident *Ident, swapped bool) {
	if l, ok := n.Left.(*Ident); ok {
		if r, ok := n.Right.(*StringLit); ok {
			return r, l, false
		}
	}
	if l, ok := n.Left.(*StringLit); ok {
		if r, ok := n.Right.(*Ident); ok {
			return l, r, true
		}
	}
	return nil, nil, false
}

func classCode(name string) (catalog.Class, error) {
	switch strings.ToUpper(name) {
	case "STAR":
		return catalog.ClassStar, nil
	case "GALAXY":
		return catalog.ClassGalaxy, nil
	case "QSO", "QUASAR":
		return catalog.ClassQuasar, nil
	case "UNKNOWN":
		return catalog.ClassUnknown, nil
	default:
		return 0, fmt.Errorf("query: unknown class %q (STAR, GALAXY, QSO, UNKNOWN)", name)
	}
}

func analyzeCall(n *FuncCall, b binder) (Expr, error) {
	switch n.Name {
	case "circle":
		args, err := constArgs(n, 3)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(args[2]) || args[2] <= 0 {
			return nil, fmt.Errorf("query: CIRCLE radius must be positive, got %g", args[2])
		}
		return &SpatialPred{Kind: SpatialCircle, Args: args, Source: n}, nil
	case "rect":
		args, err := constArgs(n, 4)
		if err != nil {
			return nil, err
		}
		if !(args[2] < args[3]) { // rejects NaN bounds along with inverted ones
			return nil, fmt.Errorf("query: RECT needs decLo < decHi, got %g ≥ %g", args[2], args[3])
		}
		return &SpatialPred{Kind: SpatialRect, Args: args, Source: n}, nil
	case "latband":
		if len(n.Args) != 3 {
			return nil, fmt.Errorf("query: LATBAND takes (frame, lo, hi), got %d args", len(n.Args))
		}
		lit, ok := n.Args[0].(*StringLit)
		if !ok {
			return nil, fmt.Errorf("query: LATBAND frame must be a string literal")
		}
		frame, err := parseFrame(lit.Value)
		if err != nil {
			return nil, err
		}
		lo, ok1 := constEval(n.Args[1])
		hi, ok2 := constEval(n.Args[2])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("query: LATBAND bounds must be constants")
		}
		if !(lo < hi) { // rejects NaN bounds along with inverted ones
			return nil, fmt.Errorf("query: LATBAND needs lo < hi, got %g ≥ %g", lo, hi)
		}
		return &SpatialPred{Kind: SpatialBand, Frame: frame, Args: []float64{lo, hi}, Source: n}, nil
	case "flag":
		t := b.flagTable()
		if FlagsAttr(t) == AttrInvalid {
			return nil, fmt.Errorf("query: table %s has no flags", t)
		}
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("query: FLAG takes one argument")
		}
		lit, ok := n.Args[0].(*StringLit)
		if !ok {
			return nil, fmt.Errorf("query: FLAG argument must be a string literal")
		}
		if _, err := flagBit(lit.Value); err != nil {
			return nil, err
		}
		return n, nil
	case "abs", "sqrt", "log10":
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("query: %s takes one argument", strings.ToUpper(n.Name))
		}
	case "pow", "min", "max":
		if len(n.Args) != 2 {
			return nil, fmt.Errorf("query: %s takes two arguments", strings.ToUpper(n.Name))
		}
	default:
		return nil, fmt.Errorf("query: unknown function %q", n.Name)
	}
	for i, a := range n.Args {
		resolved, err := analyzeExpr(a, b)
		if err != nil {
			return nil, err
		}
		n.Args[i] = resolved
	}
	return n, nil
}

// flagBit maps a flag name to its bit mask.
func flagBit(name string) (uint64, error) {
	switch strings.ToUpper(name) {
	case "SATURATED":
		return catalog.FlagSaturated, nil
	case "BLENDED":
		return catalog.FlagBlended, nil
	case "EDGE":
		return catalog.FlagEdge, nil
	case "CHILD":
		return catalog.FlagChild, nil
	case "VARIABLE":
		return catalog.FlagVariable, nil
	case "MOVED":
		return catalog.FlagMoved, nil
	case "INTERP":
		return catalog.FlagInterp, nil
	case "COSMICRAY":
		return catalog.FlagCosmicRay, nil
	default:
		return 0, fmt.Errorf("query: unknown flag %q", name)
	}
}

func parseFrame(name string) (sphere.Frame, error) {
	switch strings.ToLower(name) {
	case "eq", "equatorial", "j2000":
		return sphere.Equatorial, nil
	case "gal", "galactic":
		return sphere.Galactic, nil
	case "sgal", "supergalactic":
		return sphere.Supergalactic, nil
	case "ecl", "ecliptic":
		return sphere.Ecliptic, nil
	default:
		return 0, fmt.Errorf("query: unknown coordinate frame %q", name)
	}
}

// constArgs evaluates a call's arguments as constants.
func constArgs(n *FuncCall, want int) ([]float64, error) {
	if len(n.Args) != want {
		return nil, fmt.Errorf("query: %s takes %d arguments, got %d",
			strings.ToUpper(n.Name), want, len(n.Args))
	}
	out := make([]float64, want)
	for i, a := range n.Args {
		v, ok := constEval(a)
		if !ok {
			return nil, fmt.Errorf("query: %s argument %d must be a constant", strings.ToUpper(n.Name), i+1)
		}
		out[i] = v
	}
	return out, nil
}

// constEval folds constant arithmetic.
func constEval(e Expr) (float64, bool) {
	switch n := e.(type) {
	case *NumberLit:
		return n.Value, true
	case *BinaryOp:
		l, ok1 := constEval(n.Left)
		r, ok2 := constEval(n.Right)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch n.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
	}
	return 0, false
}

// Region builds the query region of a resolved spatial predicate.
func (sp *SpatialPred) Region() *region.Region {
	switch sp.Kind {
	case SpatialCircle:
		return region.CircleRADec(sp.Args[0], sp.Args[1], sp.Args[2])
	case SpatialRect:
		return region.RectRADec(sp.Args[0], sp.Args[1], sp.Args[2], sp.Args[3])
	case SpatialBand:
		return region.LatBand(sp.Frame, sp.Args[0], sp.Args[1])
	default:
		return nil
	}
}

// ExtractRegion derives the half-space coverage region implied by a WHERE
// clause, or nil if the clause does not constrain position. The extraction
// is conservative: the returned region is always a superset of the
// positions of satisfying objects, so pruning with it never loses results.
//
//   - AND: intersect the children's regions (either side alone is sound,
//     the intersection is tighter);
//   - OR: union, and only if both sides are constrained;
//   - NOT and everything else: unconstrained.
func ExtractRegion(e Expr) *region.Region {
	switch n := e.(type) {
	case *SpatialPred:
		return n.Region()
	case *LogicalOp:
		l := ExtractRegion(n.Left)
		r := ExtractRegion(n.Right)
		switch n.Op {
		case "and":
			if l == nil {
				return r
			}
			if r == nil {
				return l
			}
			return l.Intersect(r)
		case "or":
			if l == nil || r == nil {
				return nil
			}
			return l.Union(r)
		}
	}
	return nil
}
