package query

import (
	"math"
	"strings"
	"testing"
)

func prepareJoin(t *testing.T, src string) *CompiledJoin {
	t.Helper()
	prep, err := PrepareString(src)
	if err != nil {
		t.Fatalf("prepare %q: %v", src, err)
	}
	if prep.Join == nil {
		t.Fatalf("%q did not prepare as a join", src)
	}
	return prep.Join
}

func TestJoinParseShapes(t *testing.T) {
	stmt, err := Parse("SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 18")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.Select
	if sel.Join == nil || sel.Join.Kind != JoinInner {
		t.Fatalf("join clause = %+v", sel.Join)
	}
	if sel.Table != TablePhoto || sel.Alias != "p" {
		t.Errorf("left = %v %q", sel.Table, sel.Alias)
	}
	if sel.Join.Right.Table != TableSpec || sel.Join.Right.Alias != "s" {
		t.Errorf("right = %+v", sel.Join.Right)
	}
	if got := sel.String(); !strings.Contains(got, "JOIN") || !strings.Contains(got, "ON p.objid = s.objid") {
		t.Errorf("String() = %q", got)
	}

	stmt, err = Parse("SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 0.5) WHERE a.objid < b.objid")
	if err != nil {
		t.Fatal(err)
	}
	if j := stmt.Select.Join; j == nil || j.Kind != JoinNeighbors || j.RadiusArcmin != 0.5 {
		t.Fatalf("neighbors clause = %+v", stmt.Select.Join)
	}
	if got := stmt.Select.String(); !strings.Contains(got, "NEIGHBORS(tag a, tag b, 0.5)") {
		t.Errorf("String() = %q", got)
	}

	// Default aliases: the table name as written.
	stmt, err = Parse("SELECT photo.objid FROM photo JOIN spec ON photo.objid = spec.objid")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select.Alias != "photo" || stmt.Select.Join.Right.Alias != "spec" {
		t.Errorf("default aliases: %q, %q", stmt.Select.Alias, stmt.Select.Join.Right.Alias)
	}
}

func TestJoinParseErrors(t *testing.T) {
	bad := []string{
		"SELECT p.objid FROM photo p JOIN spec s",                                    // no ON
		"SELECT p.objid FROM photo p JOIN spec s ON p.objid < s.objid",               // not an equality
		"SELECT t.objid FROM NEIGHBORS(tag t, tag t, 1)",                             // duplicate alias
		"SELECT a.objid FROM NEIGHBORS(tag a, tag b, -3)",                            // bad radius
		"SELECT a.objid FROM NEIGHBORS(tag a, tag b)",                                // missing radius
		"SELECT p.objid FROM photo p JOIN spec p ON p.objid = p.objid",               // duplicate alias
		"SELECT x.objid FROM photo p JOIN spec s ON p.objid = s.objid",               // unknown alias
		"SELECT class FROM photo p JOIN spec s ON p.objid = s.objid",                 // ambiguous unqualified
		"SELECT p.objid FROM photo p JOIN spec s ON p.objid = p.htmid",               // ON one-sided
		"SELECT p.nosuch FROM photo p JOIN spec s ON p.objid = s.objid",              // unknown attr
		"SELECT p.objid FROM photo p JOIN spec s ON p.objid = s.objid WHERE q.r < 2", // unknown qual
	}
	for _, q := range bad {
		if _, err := PrepareString(q); err == nil {
			t.Errorf("PrepareString(%q) succeeded", q)
		}
	}
}

func TestJoinPushdownSplitsConjuncts(t *testing.T) {
	cj := prepareJoin(t, `SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid
		WHERE p.r < 18 AND s.sn > 5 AND p.u - p.g > s.redshift AND CIRCLE(180, 30, 60)`)

	// p.r < 18 and the spatial predicate push to the left leaf.
	if cj.Left.Pred == nil || cj.Left.Bounds == nil {
		t.Fatal("left side got no pushed predicate/bounds")
	}
	if iv, ok := cj.Left.Bounds.ByAttr[PhotoR]; !ok || iv.Hi != 18 {
		t.Errorf("left bounds = %+v", cj.Left.Bounds)
	}
	if cj.Left.Region == nil {
		t.Error("spatial conjunct did not become the left region")
	}
	// s.sn > 5 pushes right.
	if cj.Right.Pred == nil || cj.Right.Bounds == nil {
		t.Fatal("right side got no pushed predicate/bounds")
	}
	if iv, ok := cj.Right.Bounds.ByAttr[SpecSN]; !ok || iv.Lo != 5 {
		t.Errorf("right bounds = %+v", cj.Right.Bounds)
	}
	// The mixed conjunct stays residual.
	if cj.Residual == nil || !strings.Contains(cj.ResidualStr, "p.u") {
		t.Errorf("residual = %q", cj.ResidualStr)
	}
	// ON objid = objid runs on exact identifiers.
	if !cj.KeyObjID {
		t.Error("objid join not marked KeyObjID")
	}
}

func TestJoinResidualEvaluation(t *testing.T) {
	cj := prepareJoin(t, `SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid
		WHERE p.r - s.redshift > 1`)
	if cj.Residual == nil {
		t.Fatal("no residual compiled")
	}
	// Find the projected positions of the residual inputs.
	rIdx := cj.LeftAttrIdx[PhotoR]
	zIdx := cj.RightAttrIdx[SpecRedshift]
	if rIdx < 0 || zIdx < 0 {
		t.Fatalf("residual inputs not projected: r=%d z=%d", rIdx, zIdx)
	}
	lv := make([]float64, len(cj.Left.Cols))
	rv := make([]float64, len(cj.Right.Cols))
	getter := func(id AttrID) float64 {
		side, attr := DecodeSideAttr(id)
		if side == 1 {
			return rv[cj.RightAttrIdx[attr]]
		}
		return lv[cj.LeftAttrIdx[attr]]
	}
	lv[rIdx], rv[zIdx] = 19, 17.5
	if !cj.Residual(getter) {
		t.Error("19 - 17.5 > 1 evaluated false")
	}
	lv[rIdx], rv[zIdx] = 19, 18.5
	if cj.Residual(getter) {
		t.Error("19 - 18.5 > 1 evaluated true")
	}
}

func TestJoinPlanShape(t *testing.T) {
	prep, err := PrepareString("SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 18 ORDER BY s.z LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	p := prep.Plan()
	if p.Kind != "hash-join" || len(p.Children) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	if p.On != "p.objid = s.objid" {
		t.Errorf("on = %q", p.On)
	}
	if p.Children[0].Table != "photoobj" || p.Children[1].Table != "specobj" {
		t.Errorf("children tables: %q, %q", p.Children[0].Table, p.Children[1].Table)
	}
	if p.Children[0].Filter == "" || !strings.Contains(p.Children[0].Filter, "p.r") {
		t.Errorf("left filter = %q (pushdown not visible)", p.Children[0].Filter)
	}
	if p.OrderBy != "s.z" || p.Limit != 10 {
		t.Errorf("order/limit: %+v", p)
	}
	text := prep.Explain()
	if !strings.Contains(text, "HASH-JOIN") || !strings.Contains(text, "SCAN photoobj") {
		t.Errorf("explain text:\n%s", text)
	}

	prepN, err := PrepareString("SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 2) WHERE a.objid < b.objid")
	if err != nil {
		t.Fatal(err)
	}
	pn := prepN.Plan()
	if pn.Kind != "neighbor-join" || pn.RadiusArcmin != 2 {
		t.Fatalf("neighbors plan = %+v", pn)
	}
}

func TestJoinNeighborRadiusConversion(t *testing.T) {
	cj := prepareJoin(t, "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 3)")
	wantRad := 3.0 * math.Pi / (180 * 60)
	if math.Abs(cj.Radius-wantRad) > 1e-12 {
		t.Errorf("radius = %v rad, want %v", cj.Radius, wantRad)
	}
	// Position triplets must be projected for both sides.
	for side, pos := range [][3]int{cj.LeftPos, cj.RightPos} {
		for _, idx := range pos {
			if idx < 0 {
				t.Errorf("side %d missing position columns: %v", side, pos)
			}
		}
	}
}

// TestSingleTableAliasQualifiers: qualified references work on single-table
// selects too, and wrong qualifiers are rejected.
func TestSingleTableAliasQualifiers(t *testing.T) {
	prep, err := PrepareString("SELECT t.objid, t.r FROM tag t WHERE t.r < 20 ORDER BY t.r")
	if err != nil {
		t.Fatal(err)
	}
	cols := prep.Columns()
	if cols[0].Name != "objid" || cols[1].Name != "r" {
		t.Errorf("columns = %+v", cols)
	}
	if _, err := PrepareString("SELECT x.objid FROM tag t"); err == nil {
		t.Error("wrong qualifier accepted")
	}
	// The canonical table name always works as a qualifier.
	if _, err := PrepareString("SELECT tag.objid FROM tag"); err != nil {
		t.Errorf("table-name qualifier rejected: %v", err)
	}
}
