package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a conservative range of values one attribute may take in any
// record satisfying a predicate. Lo/Hi are ±Inf when unbounded; LoOpen /
// HiOpen mark strict endpoints ("r < 18" excludes 18). AllowNaN records that
// a NaN value can also satisfy the predicate: negated comparisons admit NaN
// (NOT (r < 18) is true when r is NaN, because the comparison is false), so
// containers holding NaN values must survive pruning on that attribute.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
	AllowNaN       bool
}

// fullInterval admits every real value.
func fullInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// EmptyReal reports whether no real (non-NaN) value lies in the interval.
func (iv Interval) EmptyReal() bool {
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return true // a NaN endpoint admits no real value
	}
	if iv.Lo > iv.Hi {
		return true
	}
	return iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen)
}

// intersect narrows the interval to values admitted by both sides: the AND
// of two constraints on the same attribute. NaN survives only if both sides
// admit it.
func (iv Interval) intersect(o Interval) Interval {
	// Endpoints are never NaN (the interval builder rejects NaN literals),
	// but one slipping through would lose every comparison below and
	// silently corrupt the result; fall back to the clean side, which can
	// only widen the interval (pruning stays sound).
	if math.IsNaN(o.Lo) || math.IsNaN(o.Hi) {
		return iv
	}
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return o
	}
	out := iv
	if o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	out.AllowNaN = iv.AllowNaN && o.AllowNaN
	return out
}

// union widens the interval to the hull of both sides: the OR of two
// constraints on the same attribute. NaN survives if either side admits it.
func (iv Interval) union(o Interval) Interval {
	// As in intersect: a NaN endpoint cannot be ordered, so widen to the
	// full interval rather than compute a garbage hull.
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || math.IsNaN(o.Lo) || math.IsNaN(o.Hi) {
		out := fullInterval()
		out.AllowNaN = true
		return out
	}
	out := iv
	if o.Lo < out.Lo || (o.Lo == out.Lo && !o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi > out.Hi || (o.Hi == out.Hi && !o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	out.AllowNaN = iv.AllowNaN || o.AllowNaN
	return out
}

// admits reports whether a container whose attribute spans [zoneLo, zoneHi]
// (NaN values excluded; zoneLo > zoneHi when every value is NaN) with
// hasNaN marking NaN presence could hold a satisfying record.
func (iv Interval) admits(zoneLo, zoneHi float64, hasNaN bool) bool {
	if iv.AllowNaN && hasNaN {
		return true
	}
	if math.IsNaN(zoneLo) || math.IsNaN(zoneHi) {
		return true // corrupt zone stats prove nothing; keep the container
	}
	if zoneLo > zoneHi {
		// No non-NaN values at all; only a NaN-admitting interval matches.
		return false
	}
	if iv.EmptyReal() {
		return false
	}
	if zoneHi < iv.Lo || (zoneHi == iv.Lo && iv.LoOpen) {
		return false
	}
	if zoneLo > iv.Hi || (zoneLo == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// String renders the interval in range notation.
func (iv Interval) String() string {
	var b strings.Builder
	if iv.LoOpen {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	fmt.Fprintf(&b, "%g, %g", iv.Lo, iv.Hi)
	if iv.HiOpen {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	if iv.AllowNaN {
		b.WriteString("+nan")
	}
	return b.String()
}

// Bounds is the result of predicate-bounds analysis: for each constrained
// attribute, a conservative interval every satisfying record must fall in.
// Like region extraction, the analysis only ever widens — the true result
// set is always a subset of what the bounds admit — so pruning containers
// whose zone cannot intersect the bounds never loses rows.
type Bounds struct {
	ByAttr map[AttrID]Interval
	// Never marks a predicate that is provably false for every record
	// (e.g. "r < 18 AND r > 21"): the scan can answer empty without
	// touching a single container.
	Never bool
}

// Constrained reports whether the bounds can prune anything.
func (b *Bounds) Constrained() bool {
	return b != nil && (b.Never || len(b.ByAttr) > 0)
}

// AdmitZone reports whether a container with per-attribute min/max/NaN
// statistics (indexed by AttrID) could hold a satisfying record. Attributes
// beyond the zone's width are conservatively admitted.
func (b *Bounds) AdmitZone(min, max []float64, hasNaN []bool) bool {
	if b == nil {
		return true
	}
	if b.Never {
		return false
	}
	for attr, iv := range b.ByAttr {
		if int(attr) >= len(min) {
			continue
		}
		if !iv.admits(min[attr], max[attr], hasNaN[attr]) {
			return false
		}
	}
	return true
}

// fractionIn estimates what fraction of a container's values on one
// attribute fall inside the interval, assuming a uniform spread over the
// container's [zoneLo, zoneHi] span — the coarse selectivity estimate the
// cost-based planner feeds on. It is an estimate, not a bound: 0 means "the
// zone proves nothing survives", 1 "the whole zone lies inside".
func (iv Interval) fractionIn(zoneLo, zoneHi float64, hasNaN bool) float64 {
	if !iv.admits(zoneLo, zoneHi, hasNaN) {
		return 0
	}
	if math.IsNaN(zoneLo) || math.IsNaN(zoneHi) {
		return 1 // corrupt zone stats: no basis for a selectivity estimate
	}
	if zoneLo > zoneHi {
		return 1 // all-NaN container admitted via AllowNaN
	}
	width := zoneHi - zoneLo
	if width <= 0 || math.IsInf(width, 0) {
		// Point zones (or degenerate spans): the admit test already said
		// records can survive.
		return 1
	}
	lo := math.Max(iv.Lo, zoneLo)
	hi := math.Min(iv.Hi, zoneHi)
	if hi < lo {
		// The admit test passed with a disjoint real range, so only the
		// zone's NaN records can satisfy (AllowNaN): a sliver, not nothing
		// — 0 is reserved for "the zone proves nothing survives".
		return 0.01
	}
	if iv.Lo == iv.Hi {
		// Point predicates (attr = c): a uniform model gives measure zero;
		// use a small floor so equality cuts still rank as selective
		// without estimating empty.
		return 0.05
	}
	f := (hi - lo) / width
	if f < 0.01 {
		f = 0.01 // admitted containers always contribute something
	}
	if f > 1 {
		f = 1
	}
	return f
}

// EstimateFraction estimates the fraction of a container's records that
// satisfy the bounds, given its zone statistics, multiplying the
// per-attribute fractions (attribute independence assumed). Used by the
// cost-based planner for cardinality estimates; pruning correctness never
// depends on it.
func (b *Bounds) EstimateFraction(min, max []float64, hasNaN []bool) float64 {
	if b == nil {
		return 1
	}
	if b.Never {
		return 0
	}
	f := 1.0
	for attr, iv := range b.ByAttr {
		if int(attr) >= len(min) {
			continue
		}
		f *= iv.fractionIn(min[attr], max[attr], hasNaN[attr])
		if f == 0 {
			return 0
		}
	}
	return f
}

// ZoneFilter is a Bounds compiled for the planner's per-container loop: the
// constrained intervals flattened out of the attribute map once per query,
// so the admit and selectivity checks that run for every candidate
// container iterate a short slice instead of re-walking a map thousands of
// times per plan.
type ZoneFilter struct {
	never bool
	preds []zoneInterval
}

type zoneInterval struct {
	attr int
	iv   Interval
}

// CompileZone flattens the bounds into a ZoneFilter, or nil when nothing is
// constrained (callers skip zone checks entirely).
func (b *Bounds) CompileZone() *ZoneFilter {
	if !b.Constrained() {
		return nil
	}
	f := &ZoneFilter{never: b.Never}
	for attr, iv := range b.ByAttr {
		f.preds = append(f.preds, zoneInterval{attr: int(attr), iv: iv})
	}
	sort.Slice(f.preds, func(i, j int) bool { return f.preds[i].attr < f.preds[j].attr })
	return f
}

// Admit is Bounds.AdmitZone over the flattened intervals.
func (f *ZoneFilter) Admit(min, max []float64, hasNaN []bool) bool {
	if f.never {
		return false
	}
	for i := range f.preds {
		p := &f.preds[i]
		if p.attr >= len(min) {
			continue
		}
		if !p.iv.admits(min[p.attr], max[p.attr], hasNaN[p.attr]) {
			return false
		}
	}
	return true
}

// Fraction is Bounds.EstimateFraction over the flattened intervals.
func (f *ZoneFilter) Fraction(min, max []float64, hasNaN []bool) float64 {
	if f.never {
		return 0
	}
	est := 1.0
	for i := range f.preds {
		p := &f.preds[i]
		if p.attr >= len(min) {
			continue
		}
		est *= p.iv.fractionIn(min[p.attr], max[p.attr], hasNaN[p.attr])
		if est == 0 {
			return 0
		}
	}
	return est
}

// Strings renders the bounds as "attr ∈ interval" lines, sorted by
// attribute, for EXPLAIN output.
func (b *Bounds) Strings(t Table) []string {
	if b == nil {
		return nil
	}
	if b.Never {
		return []string{"never (predicate is always false)"}
	}
	attrs := make([]AttrID, 0, len(b.ByAttr))
	for a := range b.ByAttr {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = fmt.Sprintf("%s ∈ %s", AttrName(t, a), b.ByAttr[a])
	}
	return out
}

// ExtractBounds derives the per-attribute value bounds implied by an
// analyzed WHERE clause, or nil if the clause constrains nothing. Analysis
// is conservative:
//
//   - attr-versus-constant comparisons yield an interval (the non-attribute
//     side may be any constant-foldable expression);
//   - AND intersects the children's intervals; OR takes the hull, and only
//     for attributes constrained on both sides;
//   - NOT is pushed down by De Morgan; negated comparisons flip and admit
//     NaN (the un-negated comparison is false on NaN, so NOT matches it);
//   - spatial predicates, flag tests, arithmetic over attributes, and
//     anything else contribute nothing (unconstrained).
func ExtractBounds(e Expr) *Bounds {
	b := extractBounds(e, false)
	if b != nil && !b.Constrained() {
		return nil
	}
	return b
}

func extractBounds(e Expr, neg bool) *Bounds {
	switch n := e.(type) {
	case *LogicalOp:
		l := extractBounds(n.Left, neg)
		r := extractBounds(n.Right, neg)
		// Under negation De Morgan swaps the connective.
		op := n.Op
		if neg {
			if op == "and" {
				op = "or"
			} else {
				op = "and"
			}
		}
		if op == "and" {
			return andBounds(l, r)
		}
		return orBounds(l, r)
	case *NotOp:
		return extractBounds(n.Child, !neg)
	case *BinaryOp:
		return comparisonBounds(n, neg)
	default:
		return nil
	}
}

// negateOp maps a comparison to its logical negation.
func negateOp(op string) string {
	switch op {
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	case "=":
		return "!="
	case "!=":
		return "="
	default:
		return ""
	}
}

// comparisonBounds extracts the interval of a single attr-vs-constant
// comparison, handling either operand order and negation.
func comparisonBounds(n *BinaryOp, neg bool) *Bounds {
	op := n.Op
	switch op {
	case "<", "<=", ">", ">=", "=", "!=":
	default:
		return nil // arithmetic, not a comparison
	}
	ident, lit, op, ok := identVsConst(n)
	if !ok || ident.Attr == AttrInvalid {
		return nil
	}
	if neg {
		op = negateOp(op)
	}
	iv := fullInterval()
	switch op {
	case "<":
		iv.Hi, iv.HiOpen = lit, true
	case "<=":
		iv.Hi = lit
	case ">":
		iv.Lo, iv.LoOpen = lit, true
	case ">=":
		iv.Lo = lit
	case "=":
		iv.Lo, iv.Hi = lit, lit
	case "!=":
		// Excludes a single point: not representable as one interval.
		return nil
	}
	// A comparison against NaN is false for every value; its negation is
	// true for every value. Either way no useful interval survives.
	if math.IsNaN(lit) {
		return nil
	}
	// The un-negated comparison is false on NaN values; the negated one is
	// therefore true on them, except NOT(!=) which is plain equality.
	iv.AllowNaN = neg && op != "="
	return &Bounds{ByAttr: map[AttrID]Interval{ident.Attr: iv}}
}

// identVsConst matches "attr OP const-expr" in either operand order,
// returning the operator as seen with the attribute on the left ("18 > r"
// becomes r < 18).
func identVsConst(n *BinaryOp) (*Ident, float64, string, bool) {
	if id, ok := n.Left.(*Ident); ok {
		if v, ok := constEval(n.Right); ok {
			return id, v, n.Op, true
		}
		return nil, 0, "", false
	}
	if id, ok := n.Right.(*Ident); ok {
		if v, ok := constEval(n.Left); ok {
			op := n.Op
			switch n.Op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
			return id, v, op, true
		}
	}
	return nil, 0, "", false
}

// andBounds conjoins two bounds: intervals intersect attribute-wise; a
// provably false side makes the conjunction false.
func andBounds(l, r *Bounds) *Bounds {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.Never || r.Never {
		return &Bounds{Never: true}
	}
	out := &Bounds{ByAttr: make(map[AttrID]Interval, len(l.ByAttr)+len(r.ByAttr))}
	for a, iv := range l.ByAttr {
		out.ByAttr[a] = iv
	}
	for a, iv := range r.ByAttr {
		if prev, ok := out.ByAttr[a]; ok {
			iv = prev.intersect(iv)
		}
		out.ByAttr[a] = iv
	}
	for _, iv := range out.ByAttr {
		if iv.EmptyReal() && !iv.AllowNaN {
			// One attribute has no satisfiable value: the whole
			// conjunction is false for every record.
			return &Bounds{Never: true}
		}
	}
	return out
}

// orBounds disjoins two bounds: only attributes constrained on both sides
// stay constrained, by the hull of their intervals. An unconstrained side
// makes the disjunction unconstrained; a provably false side yields the
// other side unchanged.
func orBounds(l, r *Bounds) *Bounds {
	if l == nil || r == nil {
		return nil
	}
	if l.Never {
		return r
	}
	if r.Never {
		return l
	}
	out := &Bounds{ByAttr: make(map[AttrID]Interval)}
	for a, liv := range l.ByAttr {
		if riv, ok := r.ByAttr[a]; ok {
			out.ByAttr[a] = liv.union(riv)
		}
	}
	if len(out.ByAttr) == 0 {
		return nil
	}
	return out
}
