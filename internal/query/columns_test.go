package query

import (
	"testing"

	"sdss/internal/colblk"
)

func TestColumnSpecsAlignWithSchema(t *testing.T) {
	for _, tbl := range []Table{TablePhoto, TableTag, TableSpec} {
		spec := ColumnSpecs(tbl)
		if spec == nil {
			t.Fatalf("%v: no column spec", tbl)
		}
		if spec.NumCols() != NumAttrs(tbl) {
			t.Fatalf("%v: %d columns for %d attributes", tbl, spec.NumCols(), NumAttrs(tbl))
		}
		refs := fieldRefs(tbl)
		for id := 0; id < spec.NumCols(); id++ {
			c := spec.Col(id)
			if refs[id].stored {
				if c.Kind == colblk.KNone {
					t.Errorf("%v.%s: stored attribute has KNone column", tbl, c.Name)
				}
				if c.Offset != refs[id].field.Offset {
					t.Errorf("%v.%s: column offset %d, field offset %d", tbl, c.Name, c.Offset, refs[id].field.Offset)
				}
				if c.Kind.Size() != refs[id].field.Kind.Size() {
					t.Errorf("%v.%s: column width %d, field width %d", tbl, c.Name, c.Kind.Size(), refs[id].field.Kind.Size())
				}
			} else if c.Kind != colblk.KNone {
				t.Errorf("%v.%s: derived attribute has stored column kind", tbl, c.Name)
			}
		}
	}
	// The photo triplet must predict from ra/dec — the SetPos dependency.
	for i, id := range []AttrID{PhotoCX, PhotoCY, PhotoCZ} {
		c := ColumnSpecs(TablePhoto).Col(int(id))
		if c.Pred != colblk.PredVec || c.Aux != uint8(i) {
			t.Errorf("photo %s: predictor %d aux %d, want PredVec aux %d", c.Name, c.Pred, c.Aux, i)
		}
	}
}

func TestKernelExact(t *testing.T) {
	cases := []struct {
		table Table
		where string
		want  bool
	}{
		{TableTag, "r < 18", true},
		{TableTag, "r < 18 AND g > 12.5", true},
		{TableTag, "18 > r", true},
		{TableTag, "r = 17.25", true},
		{TableTag, "NOT (r >= 18)", true},
		{TableTag, "NOT (r < 18 OR g < 12)", true}, // De Morgan: AND of negations
		{TableTag, "r < 17 + 1", true},             // constant-foldable literal
		{TablePhoto, "class = 1 AND run >= 200", true},
		{TablePhoto, "flags = 0", true},

		{TableTag, "r != 18", false},          // punctured line
		{TableTag, "r < 18 OR g < 12", false}, // OR hull over-admits
		{TableTag, "u - g > 1", false},        // arithmetic over attributes
		{TableTag, "r < u", false},            // attr vs attr
		{TableTag, "ra < 180", false},         // derived attribute (tag RA)
		{TableSpec, "cx > 0", false},          // derived attribute (spec position)
		{TableSpec, "redshift > 0.1", true},
	}
	for _, c := range cases {
		stmt, err := Parse("SELECT objid FROM " + c.table.String() + " WHERE " + c.where)
		if err != nil {
			t.Fatalf("parse %q: %v", c.where, err)
		}
		if err := Analyze(stmt); err != nil {
			t.Fatalf("analyze %q: %v", c.where, err)
		}
		if got := KernelExact(c.table, stmt.Select.Where); got != c.want {
			t.Errorf("KernelExact(%v, %q) = %v, want %v", c.table, c.where, got, c.want)
		}
	}
}
