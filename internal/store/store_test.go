package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/region"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

func photoOptions(dir string) Options {
	return Options{
		Dir:            dir,
		ContainerDepth: 5,
		RecordSize:     catalog.PhotoObjSize,
		KeyOffset:      8, // HTMID follows ObjID
	}
}

func photoRecords(t testing.TB, n int, seed int64) ([]Record, []catalog.PhotoObj) {
	t.Helper()
	photo, _, err := skygen.GenerateAll(skygen.Default(seed, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, len(photo))
	for i := range photo {
		recs[i] = Record{HTMID: photo[i].HTMID, Data: photo[i].AppendTo(nil)}
	}
	return recs, photo
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{RecordSize: 0}); err == nil {
		t.Error("zero record size accepted")
	}
	if _, err := Open(Options{RecordSize: 16, KeyOffset: 12}); err == nil {
		t.Error("key offset past record end accepted")
	}
	if _, err := Open(Options{RecordSize: 16, ContainerDepth: htm.MaxDepth + 1}); err == nil {
		t.Error("excessive container depth accepted")
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, photo := photoRecords(t, 2000, 1)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if s.NumRecords() != int64(len(recs)) {
		t.Fatalf("NumRecords = %d, want %d", s.NumRecords(), len(recs))
	}
	if s.NumContainers() == 0 {
		t.Fatal("no containers created")
	}
	if s.Bytes() != int64(len(recs)*catalog.PhotoObjSize) {
		t.Fatalf("Bytes = %d", s.Bytes())
	}

	// Full scan must return every record exactly once.
	seen := make(map[catalog.ObjID]int)
	var p catalog.PhotoObj
	err = s.Scan(nil, false, func(rec []byte) error {
		if err := p.Decode(rec); err != nil {
			return err
		}
		seen[p.ObjID]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(photo) {
		t.Fatalf("scan saw %d distinct objects, want %d", len(seen), len(photo))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("object %d seen %d times", id, n)
		}
	}
}

func TestScanWithCoverage(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, photo := photoRecords(t, 5000, 2)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Cone around the first object so the result is nonempty.
	center := photo[0].Pos()
	radius := 2 * sphere.Deg
	cov, err := region.Cover(region.Circle(center, radius), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[catalog.ObjID]bool)
	for i := range photo {
		if sphere.Dist(center, photo[i].Pos()) <= radius {
			want[photo[i].ObjID] = true
		}
	}

	for _, fine := range []bool{false, true} {
		got := make(map[catalog.ObjID]bool)
		candidates := 0
		var p catalog.PhotoObj
		err := s.Scan(cov.RangeSet(), fine, func(rec []byte) error {
			if err := p.Decode(rec); err != nil {
				return err
			}
			candidates++
			if sphere.Dist(center, p.Pos()) <= radius {
				got[p.ObjID] = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("fine=%v: found %d objects in cone, want %d", fine, len(got), len(want))
		}
		if candidates > len(recs) {
			t.Fatalf("fine=%v: scanned more candidates than records", fine)
		}
		if fine && candidates == len(recs) && len(want) < len(recs)/2 {
			t.Errorf("fine filter did not prune: %d candidates of %d", candidates, len(recs))
		}
	}
}

func TestFineFilterPrunesMoreThanCoarse(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, photo := photoRecords(t, 5000, 3)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	cov, err := region.Cover(region.Circle(photo[0].Pos(), 10*sphere.Arcmin), 10)
	if err != nil {
		t.Fatal(err)
	}
	count := func(fine bool) int {
		n := 0
		if err := s.Scan(cov.RangeSet(), fine, func([]byte) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	coarse, fine := count(false), count(true)
	if fine > coarse {
		t.Errorf("fine filter produced more candidates (%d) than coarse (%d)", fine, coarse)
	}
	if coarse > 0 && fine == coarse {
		t.Logf("note: fine filter gave no extra pruning (%d candidates)", fine)
	}
}

func TestTouchesOncePerContainerPerLoad(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := photoRecords(t, 3000, 4)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Touches(), int64(s.NumContainers()); got != want {
		t.Fatalf("bulk load touched %d, want one per container = %d", got, want)
	}

	// Unclustered loading (one record at a time) must touch far more.
	s2, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s2.BulkLoad([]Record{r}); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Touches() != int64(len(recs)) {
		t.Fatalf("record-at-a-time load touched %d, want %d", s2.Touches(), len(recs))
	}
	s2.ResetTouches()
	if s2.Touches() != 0 {
		t.Error("ResetTouches failed")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad([]Record{{HTMID: 0, Data: make([]byte, catalog.PhotoObjSize)}}); err == nil {
		t.Error("invalid HTM ID accepted")
	}
	id, _ := htm.LookupRADec(10, 10, 20)
	if err := s.BulkLoad([]Record{{HTMID: id, Data: make([]byte, 3)}}); err == nil {
		t.Error("short record accepted")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(photoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, photo := photoRecords(t, 1500, 5)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify contents.
	s2, err := Open(photoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumRecords() != int64(len(photo)) {
		t.Fatalf("reloaded %d records, want %d", s2.NumRecords(), len(photo))
	}
	if s2.NumContainers() != s.NumContainers() {
		t.Fatalf("reloaded %d containers, want %d", s2.NumContainers(), s.NumContainers())
	}
	seen := make(map[catalog.ObjID]bool)
	var p catalog.PhotoObj
	if err := s2.Scan(nil, false, func(rec []byte) error {
		if err := p.Decode(rec); err != nil {
			return err
		}
		seen[p.ObjID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(photo) {
		t.Fatalf("reloaded scan saw %d objects, want %d", len(seen), len(photo))
	}
}

func TestCorruptContainerFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(photoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := photoRecords(t, 500, 6)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no container files: %v", err)
	}
	victim := filepath.Join(dir, entries[0].Name())

	// Truncated data.
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(photoOptions(dir)); err == nil {
		t.Error("truncated container accepted")
	}

	// Bad magic.
	bad := append([]byte("NOTMAGIC"), data[8:]...)
	if err := os.WriteFile(victim, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(photoOptions(dir)); err == nil {
		t.Error("bad magic accepted")
	}

	// Wrong record size in header.
	wrong := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(wrong[20:], 99)
	if err := os.WriteFile(victim, wrong, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(photoOptions(dir)); err == nil {
		t.Error("wrong record size accepted")
	}
}

func TestSortedContainers(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := photoRecords(t, 3000, 7)
	// Load in two batches to force unsorted appends, then sort.
	if err := s.BulkLoad(recs[:1500]); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad(recs[1500:]); err != nil {
		t.Fatal(err)
	}
	s.Sort()
	err = s.ScanContainers(func(id htm.ID, data []byte, count int) error {
		var prev htm.ID
		for i := 0; i < count; i++ {
			key := htm.ID(binary.LittleEndian.Uint64(data[i*catalog.PhotoObjSize+8:]))
			if key < prev {
				t.Fatalf("container %v not sorted at record %d", id, i)
			}
			// Every record must belong to its container.
			if key.AtDepth(s.ContainerDepth()) != id {
				t.Fatalf("record in wrong container: %v not under %v", key, id)
			}
			prev = key
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanCoverageTooDeep(t *testing.T) {
	s, err := Open(photoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	deep := htm.NewRangeSet(25)
	if err := s.Scan(deep, true, func([]byte) error { return nil }); err == nil {
		t.Error("coverage deeper than record keys accepted")
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	recs, _ := photoRecords(b, 20000, 1)
	var bytes int64
	for _, r := range recs {
		bytes += int64(len(r.Data))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(photoOptions(""))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.BulkLoad(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFull(b *testing.B) {
	s, err := Open(photoOptions(""))
	if err != nil {
		b.Fatal(err)
	}
	recs, _ := photoRecords(b, 20000, 1)
	if err := s.BulkLoad(recs); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Scan(nil, false, func([]byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
