// Package store implements the Science Archive's container-clustered object
// store — the role Objectivity/DB plays in the paper's architecture.
//
// Objects are quantized into containers keyed by a coarse HTM trixel, so
// "each container has objects of similar properties ... from the same region
// of the sky. If the containers are stored as clusters, data locality will
// be very high — if an object satisfies a query, it is likely that some of
// the object's friends will as well."
//
// Containers are the clustering units of the loading pipeline: a bulk load
// groups incoming objects by container first and then writes each container
// exactly once ("our load design minimizes disk accesses, touching each
// clustering unit at most once during a load"); the Touches counter makes
// that property measurable.
//
// Records are opaque fixed-size byte strings whose HTM index key (a depth-20
// trixel ID) is embedded at a fixed offset, which lets the store sort and
// range-filter records without decoding them.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"sdss/internal/colblk"
	"sdss/internal/htm"
)

// DefaultContainerDepth is the HTM depth of container keys: depth 5 divides
// the sky into 8192 trixels of ~5 deg², balancing container count against
// skew for clustered catalogs (see DESIGN.md ablation E-container-depth).
const DefaultContainerDepth = 5

// Options configures a store.
type Options struct {
	// Dir is the persistence directory; empty means memory-only.
	Dir string
	// ContainerDepth is the HTM depth of container keys.
	ContainerDepth int
	// RecordSize is the fixed encoded record length in bytes.
	RecordSize int
	// KeyOffset is the byte offset of the little-endian uint64 HTM ID
	// within each record.
	KeyOffset int
	// ZoneAttrs is the number of per-record attributes tracked by zone
	// maps (0 disables zoning).
	ZoneAttrs int
	// ZoneValues extracts one record's attribute values into out (length
	// ZoneAttrs). It must be safe for concurrent use: shard slices fold
	// zones in parallel during bulk loads.
	ZoneValues func(rec []byte, out []float64)
	// Columns describes the records' column layout for compressed
	// column-block sidecars (nil disables them). Column indexes align with
	// the same attribute IDs ZoneValues emits.
	Columns *colblk.Spec
}

// Record is one object headed for the store.
type Record struct {
	HTMID htm.ID // fine (IndexDepth) trixel of the object
	Data  []byte // encoded record, exactly RecordSize bytes
}

// Container is one clustering unit: the encoded records of all objects
// within one coarse trixel, kept sorted by their fine HTM ID so that range
// scans within the container are contiguous.
type Container struct {
	ID     htm.ID // trixel at the store's ContainerDepth
	data   []byte
	count  int
	sorted bool
	dirty  bool
	// zone holds the container's per-attribute min/max statistics; nil or
	// stale (zone.count != count) until built.
	zone *zoneMap
	// slab holds the container's compressed column blocks; nil or stale
	// (slab.N != count) until built. Sorting drops it — a slab encodes a
	// specific record order.
	slab *colblk.Slab
}

// Count returns the number of records in the container.
func (c *Container) Count() int { return c.count }

// Bytes returns the container payload size.
func (c *Container) Bytes() int { return len(c.data) }

// Store is a container-clustered record store. It is safe for concurrent
// use; bulk loads take the write lock, scans the read lock.
type Store struct {
	opts Options

	mu         sync.RWMutex
	containers map[htm.ID]*Container
	order      []htm.ID // sorted container IDs, rebuilt lazily
	orderOK    bool
	touches    int64
	records    int64
	// colRaw forces raw column-block encodings (the compression-off arm of
	// the kernel ablation).
	colRaw bool
	// colEncBytes/colRawBytes aggregate the encoded and raw footprints of
	// every attached slab, maintained by setSlab so that ColBlkBytes is
	// O(1) — the planner consults the ratio on every kernel-scan estimate.
	colEncBytes int64
	colRawBytes int64
}

// Open creates or opens a store. If opts.Dir is non-empty and contains
// container files from a previous session, they are loaded.
func Open(opts Options) (*Store, error) {
	if opts.ContainerDepth <= 0 {
		opts.ContainerDepth = DefaultContainerDepth
	}
	if opts.ContainerDepth > htm.MaxDepth {
		return nil, fmt.Errorf("store: container depth %d exceeds max %d", opts.ContainerDepth, htm.MaxDepth)
	}
	if opts.RecordSize <= 0 {
		return nil, errors.New("store: RecordSize must be positive")
	}
	if opts.KeyOffset < 0 || opts.KeyOffset+8 > opts.RecordSize {
		return nil, fmt.Errorf("store: KeyOffset %d outside record of %d bytes", opts.KeyOffset, opts.RecordSize)
	}
	s := &Store{opts: opts, containers: make(map[htm.ID]*Container)}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", opts.Dir, err)
		}
		if err := s.loadDir(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// ContainerDepth returns the depth of container keys.
func (s *Store) ContainerDepth() int { return s.opts.ContainerDepth }

// key reads the embedded HTM key of an encoded record.
func (s *Store) key(rec []byte) htm.ID {
	return htm.ID(binary.LittleEndian.Uint64(rec[s.opts.KeyOffset:]))
}

// BulkLoad inserts records grouped by container, touching each container at
// most once: the paper's two-phase load. Phase 1 (done by the caller or
// here) groups records by their coarse trixel; phase 2 appends each group in
// a single operation. Records must be exactly RecordSize bytes.
func (s *Store) BulkLoad(recs []Record) error {
	groups := make(map[htm.ID][]Record)
	for _, r := range recs {
		if len(r.Data) != s.opts.RecordSize {
			return fmt.Errorf("store: record of %d bytes, want %d", len(r.Data), s.opts.RecordSize)
		}
		cid := r.HTMID.AtDepth(s.opts.ContainerDepth)
		if cid == htm.Invalid {
			return fmt.Errorf("store: record with invalid HTM ID %#x", uint64(r.HTMID))
		}
		groups[cid] = append(groups[cid], r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var zoneScratch []float64
	if s.zoneEnabled() {
		zoneScratch = make([]float64, s.opts.ZoneAttrs)
	}
	for cid, group := range groups {
		c := s.containers[cid]
		if c == nil {
			c = &Container{ID: cid, sorted: true}
			s.containers[cid] = c
			s.orderOK = false
		}
		// One touch per container per load.
		s.touches++
		// Sort the incoming group and merge-append; if the container tail
		// is still ahead of the group head the container stays sorted.
		sort.Slice(group, func(i, j int) bool { return group[i].HTMID < group[j].HTMID })
		if c.count > 0 && c.sorted {
			lastKey := s.key(c.data[(c.count-1)*s.opts.RecordSize:])
			if group[0].HTMID < lastKey {
				c.sorted = false
			}
		}
		for _, r := range group {
			c.data = append(c.data, r.Data...)
		}
		c.count += len(group)
		c.dirty = true
		s.records += int64(len(group))
		// Zone maps only widen under appends, so fold the new records in
		// incrementally — the zone stays fresh without a rebuild.
		if zoneScratch != nil {
			s.zoneFold(c, group, zoneScratch)
		}
	}
	return nil
}

// ensureSorted sorts a container's records by embedded key in place.
// Callers hold the write lock or have exclusive access.
func (s *Store) ensureSorted(c *Container) {
	if c.sorted {
		return
	}
	rs := s.opts.RecordSize
	// Reloaded containers arrive with sorted unknown (false); most were
	// flushed sorted. Confirming order with one linear pass avoids an
	// unstable re-sort, which could permute equal keys and desync a
	// persisted column slab from the record order it encoded.
	ordered := true
	for i := 1; i < c.count; i++ {
		if s.key(c.data[i*rs:]) < s.key(c.data[(i-1)*rs:]) {
			ordered = false
			break
		}
	}
	if ordered {
		c.sorted = true
		return
	}
	idx := make([]int, c.count)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return s.key(c.data[idx[a]*rs:]) < s.key(c.data[idx[b]*rs:])
	})
	sorted := make([]byte, len(c.data))
	for out, in := range idx {
		copy(sorted[out*rs:(out+1)*rs], c.data[in*rs:(in+1)*rs])
	}
	c.data = sorted
	c.sorted = true
	c.dirty = true
	// The permutation invalidated any column slab built over the old order.
	s.setSlab(c, nil)
}

// Sort ensures every container's records are ordered by fine HTM ID, and
// brings every zone map up to date (sorting permutes records but never
// changes the value set, so fresh zones stay valid).
func (s *Store) Sort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		s.ensureSorted(c)
		s.ensureZone(c)
	}
}

// containerOrder returns sorted container IDs, rebuilding the cache if
// needed. Callers must hold at least the read lock; rebuilding upgrades
// atomically under the write lock.
func (s *Store) containerOrder() []htm.ID {
	if s.orderOK {
		return s.order
	}
	ids := make([]htm.ID, 0, len(s.containers))
	for id := range s.containers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.order = ids
	s.orderOK = true
	return ids
}

// Containers returns the container IDs in sorted order.
func (s *Store) Containers() []htm.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]htm.ID(nil), s.containerOrder()...)
}

// NumContainers returns the number of clustering units.
func (s *Store) NumContainers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.containers)
}

// NumRecords returns the number of stored records.
func (s *Store) NumRecords() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.records
}

// Bytes returns the total payload size.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.containers {
		n += int64(len(c.data))
	}
	return n
}

// Touches returns the cumulative number of container touches performed by
// bulk loads — the metric of experiment E11.
func (s *Store) Touches() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.touches
}

// ResetTouches zeroes the touch counter (between experiment phases).
func (s *Store) ResetTouches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touches = 0
}

// Scan streams every record (coverage == nil), or only records in
// containers overlapping the coverage, in container-ID order. If fineFilter
// is true, records are additionally filtered by their fine HTM ID against
// the coverage, which requires sorted containers and prunes to exact trixel
// ranges. The callback receives the raw encoded record, valid only during
// the call.
func (s *Store) Scan(coverage *htm.RangeSet, fineFilter bool, fn func(rec []byte) error) error {
	if coverage != nil && coverage.Depth() > keyDepth {
		return fmt.Errorf("store: coverage depth %d deeper than record keys (%d)", coverage.Depth(), keyDepth)
	}
	s.mu.Lock()
	ids := append([]htm.ID(nil), s.containerOrder()...)
	if fineFilter {
		for _, id := range ids {
			s.ensureSorted(s.containers[id])
		}
	}
	s.mu.Unlock()

	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.opts.RecordSize
	for _, id := range ids {
		if coverage != nil && !coverage.OverlapsTrixel(id) {
			continue
		}
		c := s.containers[id]
		if c == nil {
			continue
		}
		if coverage == nil || !fineFilter {
			for i := 0; i < c.count; i++ {
				if err := fn(c.data[i*rs : (i+1)*rs]); err != nil {
					return err
				}
			}
			continue
		}
		// Fine filtering: for each coverage range overlapping this
		// container, binary-search the sorted records.
		lo, hi := id.RangeAtDepth(coverage.Depth())
		for _, r := range coverage.Ranges() {
			rlo, rhi := r.Lo, r.Hi
			if rhi < lo || rlo > hi {
				continue
			}
			if rlo < lo {
				rlo = lo
			}
			if rhi > hi {
				rhi = hi
			}
			// Coverage depth may differ from the record key depth
			// (IndexDepth); project the range bounds to key depth.
			keyLo, _ := rlo.RangeAtDepth(keyDepth)
			_, keyHi := rhi.RangeAtDepth(keyDepth)
			start := sort.Search(c.count, func(i int) bool {
				return s.key(c.data[i*rs:]) >= keyLo
			})
			for i := start; i < c.count; i++ {
				rec := c.data[i*rs : (i+1)*rs]
				if s.key(rec) > keyHi {
					break
				}
				if err := fn(rec); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// keyDepth is the depth of the HTM keys embedded in records.
const keyDepth = 20

// ScanContainers streams whole containers in ID order, the unit the scan
// machine and partition map work in.
func (s *Store) ScanContainers(fn func(id htm.ID, data []byte, count int) error) error {
	ids := s.Containers()
	for _, id := range ids {
		s.mu.RLock()
		c := s.containers[id]
		s.mu.RUnlock()
		if c == nil {
			continue
		}
		if err := fn(id, c.data, c.count); err != nil {
			return err
		}
	}
	return nil
}

// Container returns one container's raw data (nil if absent).
func (s *Store) Container(id htm.ID) *Container {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.containers[id]
}

// ForEachInContainer streams the records of a single container. It is the
// unit of work the parallel query engine and the scan machine partition
// across workers and nodes.
func (s *Store) ForEachInContainer(id htm.ID, fn func(rec []byte) error) error {
	s.mu.RLock()
	c := s.containers[id]
	s.mu.RUnlock()
	if c == nil {
		return nil
	}
	rs := s.opts.RecordSize
	for i := 0; i < c.count; i++ {
		if err := fn(c.data[i*rs : (i+1)*rs]); err != nil {
			return err
		}
	}
	return nil
}

// KeyOf reads the embedded fine HTM ID of an encoded record without
// decoding it — the cheap prefilter spatial scans use before paying for a
// full decode.
func (s *Store) KeyOf(rec []byte) htm.ID { return s.key(rec) }
