package store

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sdss/internal/htm"
)

// zoneTestRecord encodes a record for zoneTestOptions: an 8-byte HTM key
// followed by one little-endian float64 value.
func zoneTestRecord(id htm.ID, v float64) Record {
	data := make([]byte, 16)
	binary.LittleEndian.PutUint64(data, uint64(id))
	binary.LittleEndian.PutUint64(data[8:], math.Float64bits(v))
	return Record{HTMID: id, Data: data}
}

func zoneTestOptions(dir string) Options {
	return Options{
		Dir:        dir,
		RecordSize: 16,
		KeyOffset:  0,
		ZoneAttrs:  1,
		ZoneValues: func(rec []byte, out []float64) {
			out[0] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
		},
	}
}

// zoneTrixels returns n depth-20 trixel IDs landing in n distinct
// default-depth containers (stepping a whole depth-5 trixel apart).
func zoneTrixels(t testing.TB, n int) []htm.ID {
	t.Helper()
	base := htm.FirstAtDepth(20)
	step := htm.ID(1) << (2 * (20 - DefaultContainerDepth))
	out := make([]htm.ID, n)
	for i := range out {
		out[i] = base + htm.ID(i)*step
	}
	return out
}

func zoneSpan(t *testing.T, s *Store, cid htm.ID) (lo, hi float64, nan bool) {
	t.Helper()
	found := false
	s.CheckZone(cid, func(min, max []float64, hasNaN []bool) bool {
		lo, hi, nan = min[0], max[0], hasNaN[0]
		found = true
		return true
	})
	if !found {
		t.Fatalf("no zone evaluated for container %v", cid)
	}
	return lo, hi, nan
}

func TestZoneIncrementalBuild(t *testing.T) {
	s, err := Open(zoneTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 2)
	recs := []Record{
		zoneTestRecord(ids[0], 3),
		zoneTestRecord(ids[0], -1),
		zoneTestRecord(ids[1], math.NaN()),
		zoneTestRecord(ids[1], 7),
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	cid0 := ids[0].AtDepth(s.ContainerDepth())
	lo, hi, nan := zoneSpan(t, s, cid0)
	if lo != -1 || hi != 3 || nan {
		t.Fatalf("container 0 zone = [%g, %g] nan=%v, want [-1, 3] nan=false", lo, hi, nan)
	}
	cid1 := ids[1].AtDepth(s.ContainerDepth())
	lo, hi, nan = zoneSpan(t, s, cid1)
	if lo != 7 || hi != 7 || !nan {
		t.Fatalf("container 1 zone = [%g, %g] nan=%v, want [7, 7] nan=true", lo, hi, nan)
	}

	// A second load widens incrementally (no rebuild needed).
	if err := s.BulkLoad([]Record{zoneTestRecord(ids[0], 10)}); err != nil {
		t.Fatal(err)
	}
	lo, hi, _ = zoneSpan(t, s, cid0)
	if lo != -1 || hi != 10 {
		t.Fatalf("widened zone = [%g, %g], want [-1, 10]", lo, hi)
	}
}

func TestZonePruneDecision(t *testing.T) {
	s, err := Open(zoneTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 1)
	if err := s.BulkLoad([]Record{zoneTestRecord(ids[0], 5), zoneTestRecord(ids[0], 9)}); err != nil {
		t.Fatal(err)
	}
	cid := ids[0].AtDepth(s.ContainerDepth())
	admitBelow := func(min, max []float64, hasNaN []bool) bool { return min[0] < 4 }
	if s.CheckZone(cid, admitBelow) {
		t.Error("zone [5,9] must be prunable for v < 4")
	}
	admitAbove := func(min, max []float64, hasNaN []bool) bool { return max[0] >= 9 }
	if !s.CheckZone(cid, admitAbove) {
		t.Error("zone [5,9] must admit v >= 9")
	}
	// Absent containers and zone-disabled stores always admit.
	if !s.CheckZone(cid+1, admitBelow) {
		t.Error("absent container must admit")
	}
	noZone, err := Open(Options{RecordSize: 16, KeyOffset: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !noZone.CheckZone(cid, admitBelow) {
		t.Error("zone-disabled store must admit")
	}
}

func TestZonePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 3)
	var recs []Record
	for i, id := range ids {
		recs = append(recs, zoneTestRecord(id, float64(i)*2-1))
	}
	recs = append(recs, zoneTestRecord(ids[2], math.NaN()))
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, zoneFileName)); err != nil {
		t.Fatalf("ZONES file not written: %v", err)
	}

	// Reopen: zones must come back from the file, not a rebuild. Verify by
	// checking spans match without mutating anything.
	s2, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		cid := id.AtDepth(s.ContainerDepth())
		lo1, hi1, nan1 := zoneSpan(t, s, cid)
		lo2, hi2, nan2 := zoneSpan(t, s2, cid)
		if lo1 != lo2 || hi1 != hi2 || nan1 != nan2 {
			t.Fatalf("container %d zone diverged after reload: [%g,%g]%v vs [%g,%g]%v",
				i, lo1, hi1, nan1, lo2, hi2, nan2)
		}
	}
	if s2.ZoneBytes() == 0 {
		t.Error("reloaded store reports no zone bytes")
	}
}

func TestZoneRebuildForPreZoneArchive(t *testing.T) {
	dir := t.TempDir()
	// Write the archive with zoning disabled — the pre-zone layout.
	opts := zoneTestOptions(dir)
	legacy := opts
	legacy.ZoneAttrs = 0
	legacy.ZoneValues = nil
	s, err := Open(legacy)
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 1)
	if err := s.BulkLoad([]Record{zoneTestRecord(ids[0], 4), zoneTestRecord(ids[0], 6)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, zoneFileName)); !os.IsNotExist(err) {
		t.Fatal("zone-disabled store must not write ZONES")
	}

	// Reopen with zoning on: the zone rebuilds transparently on first use.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	cid := ids[0].AtDepth(s2.ContainerDepth())
	lo, hi, nan := zoneSpan(t, s2, cid)
	if lo != 4 || hi != 6 || nan {
		t.Fatalf("rebuilt zone = [%g, %g] nan=%v, want [4, 6] nan=false", lo, hi, nan)
	}
}

func TestZoneCorruptFileIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 1)
	if err := s.BulkLoad([]Record{zoneTestRecord(ids[0], 2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, zoneFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatalf("corrupt ZONES must not fail open: %v", err)
	}
	cid := ids[0].AtDepth(s2.ContainerDepth())
	lo, hi, _ := zoneSpan(t, s2, cid)
	if lo != 2 || hi != 2 {
		t.Fatalf("zone after corrupt file = [%g, %g], want [2, 2]", lo, hi)
	}
}

func TestShardedZoneForwarding(t *testing.T) {
	opts := zoneTestOptions("")
	s, err := OpenSharded(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 8)
	var recs []Record
	for i, id := range ids {
		recs = append(recs, zoneTestRecord(id, float64(i)))
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	s.BuildZones()
	if s.ZoneBytes() == 0 {
		t.Error("sharded store reports no zone bytes")
	}
	for _, id := range ids {
		cid := id.AtDepth(s.ContainerDepth())
		if !s.CheckZone(cid, func(min, max []float64, hasNaN []bool) bool { return true }) {
			t.Fatalf("container %v not admitted by trivial check", cid)
		}
	}
	s.RebuildZones()
	if s.ZoneBytes() == 0 {
		t.Error("rebuild dropped zones")
	}
}

// pairTrixels returns depth-20 trixel IDs inside one container, spread so
// that consecutive indexes land in distinct depth-(container+PairRelDepth)
// fine cells.
func pairTrixels(t testing.TB, n int) []htm.ID {
	t.Helper()
	base := htm.FirstAtDepth(20)
	step := htm.ID(1) << (2 * (20 - DefaultContainerDepth - PairRelDepth))
	out := make([]htm.ID, n)
	for i := range out {
		out[i] = base + htm.ID(i)*step
	}
	return out
}

func TestPairStatsHistogram(t *testing.T) {
	s, err := Open(zoneTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	// Three fine cells with occupancies 3, 2, 1.
	fine := pairTrixels(t, 3)
	var recs []Record
	for i, id := range fine {
		for j := 0; j <= 2-i; j++ {
			recs = append(recs, zoneTestRecord(id, float64(j)))
		}
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	cid := fine[0].AtDepth(s.ContainerDepth())
	count, sumSq, ok := s.PairStats(cid, PairRelDepth)
	if !ok || count != 6 || sumSq != 9+4+1 {
		t.Fatalf("PairStats(rel=%d) = (%d, %g, %v), want (6, 14, true)", PairRelDepth, count, sumSq, ok)
	}
	// At rel 0 the whole container is one cell: Σk² = count².
	count, sumSq, ok = s.PairStats(cid, 0)
	if !ok || count != 6 || sumSq != 36 {
		t.Fatalf("PairStats(rel=0) = (%d, %g, %v), want (6, 36, true)", count, sumSq, ok)
	}
	// Coarsening only grows Σk² (cells merge).
	prev := 0.0
	for rel := PairRelDepth; rel >= 0; rel-- {
		_, sq, ok := s.PairStats(cid, rel)
		if !ok || sq < prev {
			t.Fatalf("PairStats(rel=%d) = %g not monotone above %g", rel, sq, prev)
		}
		prev = sq
	}
	// Absent container.
	if _, _, ok := s.PairStats(cid+1, PairRelDepth); ok {
		t.Error("absent container must report ok=false")
	}
}

func TestPairStatsPersistenceAndStaleness(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	fine := pairTrixels(t, 4)
	var recs []Record
	for _, id := range fine {
		recs = append(recs, zoneTestRecord(id, 1), zoneTestRecord(id, 2))
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	s.BuildZones()
	cid := fine[0].AtDepth(s.ContainerDepth())
	_, wantSq, ok := s.PairStats(cid, PairRelDepth)
	if !ok || wantSq != 4*4 { // four cells of 2 → Σk² = 16
		t.Fatalf("PairStats before flush = (%g, %v), want (16, true)", wantSq, ok)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the histogram must come back from the v2 ZONES file.
	s2, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	count, sumSq, ok := s2.PairStats(cid, PairRelDepth)
	if !ok || count != 8 || sumSq != wantSq {
		t.Fatalf("PairStats after reload = (%d, %g, %v), want (8, %g, true)", count, sumSq, ok, wantSq)
	}

	// Appending records stales the histogram; PairStats must rebuild and
	// reflect the new occupancies.
	if err := s2.BulkLoad([]Record{zoneTestRecord(fine[0], 3)}); err != nil {
		t.Fatal(err)
	}
	count, sumSq, ok = s2.PairStats(cid, PairRelDepth)
	if !ok || count != 9 || sumSq != 9+4+4+4 { // cell 0 now holds 3
		t.Fatalf("PairStats after append = (%d, %g, %v), want (9, 21, true)", count, sumSq, ok)
	}
}

func TestShardedPairStatsForwarding(t *testing.T) {
	s, err := OpenSharded(zoneTestOptions(""), 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 8)
	var recs []Record
	for i, id := range ids {
		recs = append(recs, zoneTestRecord(id, float64(i)))
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cid := id.AtDepth(s.ContainerDepth())
		count, sumSq, ok := s.PairStats(cid, PairRelDepth)
		if !ok || count != 1 || sumSq != 1 {
			t.Fatalf("sharded PairStats(%v) = (%d, %g, %v), want (1, 1, true)", cid, count, sumSq, ok)
		}
	}
}

// BenchmarkZoneBuild measures the from-scratch zone build over a populated
// store — the cost a pre-zone archive pays once on first use.
func BenchmarkZoneBuild(b *testing.B) {
	s, err := Open(zoneTestOptions(""))
	if err != nil {
		b.Fatal(err)
	}
	ids := zoneTrixels(b, 64)
	var recs []Record
	for i := 0; i < 64*256; i++ {
		recs = append(recs, zoneTestRecord(ids[i%64], float64(i%97)))
	}
	if err := s.BulkLoad(recs); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(recs) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RebuildZones()
	}
}
