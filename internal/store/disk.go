package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sdss/internal/htm"
	"strings"
)

// Container file layout: a fixed header followed by count*RecordSize bytes
// of records. The header carries enough redundancy to detect truncation and
// schema mismatches on reload.
const (
	fileMagic   = "SDSSCONT"
	fileVersion = 1
	headerSize  = 8 + 4 + 8 + 4 + 4 // magic, version, trixel, recSize, count
)

func containerFileName(id uint64) string {
	return fmt.Sprintf("c%016x.dat", id)
}

// Flush writes every dirty container to the store directory. Memory-only
// stores flush to nowhere successfully.
func (s *Store) Flush() error {
	if s.opts.Dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.containers {
		if !c.dirty {
			continue
		}
		if err := s.writeContainer(id, c); err != nil {
			return err
		}
		c.dirty = false
	}
	// Persist zone maps beside the container files, freshening any that a
	// stale append left behind first.
	if s.zoneEnabled() {
		for _, c := range s.containers {
			s.ensureZone(c)
		}
		if err := s.flushZones(); err != nil {
			return err
		}
	}
	// Likewise the column-block sidecar.
	if s.colBlkEnabled() {
		for _, c := range s.containers {
			s.ensureColBlk(c)
		}
		if err := s.flushColBlks(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) writeContainer(id htm.ID, c *Container) error {
	path := filepath.Join(s.opts.Dir, containerFileName(uint64(id)))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:8], fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(id))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(s.opts.RecordSize))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(c.count))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := w.Write(c.data); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Atomic replace so a crash mid-write never corrupts a container.
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

// loadDir reads all container files from the store directory.
func (s *Store) loadDir() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.opts.Dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "c") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if err := s.loadContainer(filepath.Join(s.opts.Dir, name)); err != nil {
			return err
		}
	}
	// Attach persisted zone maps and column slabs; anything missing or
	// stale (including whole pre-zone or pre-COLBLK archives) rebuilds
	// transparently on first use.
	s.loadZones()
	s.loadColBlks()
	return nil
}

func (s *Store) loadContainer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("store: %s: truncated header: %w", path, err)
	}
	if string(hdr[:8]) != fileMagic {
		return fmt.Errorf("store: %s: bad magic %q", path, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != fileVersion {
		return fmt.Errorf("store: %s: unsupported version %d", path, v)
	}
	id := htm.ID(binary.LittleEndian.Uint64(hdr[12:]))
	recSize := int(binary.LittleEndian.Uint32(hdr[20:]))
	count := int(binary.LittleEndian.Uint32(hdr[24:]))
	if recSize != s.opts.RecordSize {
		return fmt.Errorf("store: %s: record size %d, store expects %d", path, recSize, s.opts.RecordSize)
	}
	if id.Depth() != s.opts.ContainerDepth {
		return fmt.Errorf("store: %s: container depth %d, store expects %d", path, id.Depth(), s.opts.ContainerDepth)
	}
	data := make([]byte, count*recSize)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("store: %s: truncated data (%d records claimed): %w", path, count, err)
	}
	c := &Container{ID: id, data: data, count: count, sorted: false}
	s.containers[id] = c
	s.orderOK = false
	s.records += int64(count)
	return nil
}
