package store

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"sdss/internal/htm"
)

// shardedTestRecords builds n records spread over the sky with the HTM key
// at offset 8 (the catalog layout).
func shardedTestRecords(t *testing.T, n int, seed int64) []Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		ra := rng.Float64() * 360
		dec := rng.Float64()*120 - 60
		id, err := htm.LookupRADec(ra, dec, 20)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 24)
		binary.LittleEndian.PutUint64(data[0:], uint64(i+1))
		binary.LittleEndian.PutUint64(data[8:], uint64(id))
		binary.LittleEndian.PutUint64(data[16:], rng.Uint64())
		recs[i] = Record{HTMID: id, Data: data}
	}
	return recs
}

func shardedTestOpts(dir string) Options {
	return Options{Dir: dir, RecordSize: 24, KeyOffset: 8}
}

func TestShardedPartitionInvariants(t *testing.T) {
	s, err := OpenSharded(shardedTestOpts(""), 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := shardedTestRecords(t, 5000, 1)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if got := s.NumRecords(); got != 5000 {
		t.Fatalf("NumRecords = %d, want 5000", got)
	}
	// Every container lives on exactly the slice its trixel maps to, and
	// the aggregate container set is the union of the slices.
	total := 0
	for i, sh := range s.Shards() {
		for _, cid := range sh.Containers() {
			if want := s.ShardFor(cid); want != i {
				t.Fatalf("container %v on shard %d, ShardFor says %d", cid, i, want)
			}
		}
		total += sh.NumContainers()
	}
	if total != s.NumContainers() {
		t.Fatalf("slice containers sum %d != NumContainers %d", total, s.NumContainers())
	}
	if got := len(s.Containers()); got != total {
		t.Fatalf("merged Containers has %d entries, want %d", got, total)
	}
	// Each clustering unit is touched at most once per bulk load even
	// though slices load in parallel.
	if got := s.Touches(); got != int64(s.NumContainers()) {
		t.Fatalf("one load touched %d times for %d containers", got, s.NumContainers())
	}
	// No slice is starved: round-robin over the dense trixel space spreads
	// a whole-sky catalog across every slice.
	for i, n := range s.ShardRecords() {
		if n == 0 {
			t.Errorf("shard %d holds no records", i)
		}
	}
}

// TestShardedScanMatchesSingle loads identical records into 1- and 6-shard
// stores and checks full and coverage-pruned scans see the same record
// sets.
func TestShardedScanMatchesSingle(t *testing.T) {
	recs := shardedTestRecords(t, 3000, 2)
	one, err := OpenSharded(shardedTestOpts(""), 1)
	if err != nil {
		t.Fatal(err)
	}
	six, err := OpenSharded(shardedTestOpts(""), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Sharded{one, six} {
		if err := s.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		s.Sort()
	}
	collect := func(s *Sharded, cov *htm.RangeSet, fine bool) map[uint64]bool {
		seen := make(map[uint64]bool)
		if err := s.Scan(cov, fine, func(rec []byte) error {
			seen[binary.LittleEndian.Uint64(rec)] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	same := func(name string, a, b map[uint64]bool) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d records", name, len(a), len(b))
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("%s: record %d missing from sharded scan", name, id)
			}
		}
	}
	same("full scan", collect(one, nil, false), collect(six, nil, false))

	// Coverage-pruned scan over one octant's worth of trixels.
	rs := htm.NewRangeSet(8)
	lo := htm.FirstAtDepth(8)
	rs.AddRange(htm.Range{Lo: lo, Hi: lo + htm.ID(1)<<14})
	same("pruned scan", collect(one, rs, true), collect(six, rs, true))
}

func TestShardedPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(shardedTestOpts(dir), 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := shardedTestRecords(t, 2000, 3)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the recorded count adopted (0) and explicitly (3).
	for _, req := range []int{0, 3} {
		again, err := OpenSharded(shardedTestOpts(dir), req)
		if err != nil {
			t.Fatalf("reopen with %d shards: %v", req, err)
		}
		if got := again.NumShards(); got != 3 {
			t.Fatalf("reopen(%d): NumShards = %d, want 3", req, got)
		}
		if got := again.NumRecords(); got != 2000 {
			t.Fatalf("reopen(%d): NumRecords = %d, want 2000", req, got)
		}
	}

	// A mismatched slice count must refuse, not silently repartition.
	if _, err := OpenSharded(shardedTestOpts(dir), 5); err == nil {
		t.Fatal("reopening a 3-shard store as 5 shards did not fail")
	}
}

func TestShardedSingleSliceLayoutCompatible(t *testing.T) {
	dir := t.TempDir()
	// Write through the plain single store (the historical layout).
	plain, err := Open(shardedTestOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs := shardedTestRecords(t, 500, 4)
	if err := plain.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := plain.Flush(); err != nil {
		t.Fatal(err)
	}
	// A 1-shard sharded open must read it in place.
	s, err := OpenSharded(shardedTestOpts(dir), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumRecords(); got != 500 {
		t.Fatalf("NumRecords = %d, want 500", got)
	}
	// Shards 0 must adopt the implicit single slice, not treat it as fresh.
	adopt, err := OpenSharded(shardedTestOpts(dir), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := adopt.NumShards(); got != 1 {
		t.Fatalf("adopting legacy layout gave %d shards, want 1", got)
	}
	// Asking to split a populated legacy directory must refuse: silently
	// presenting it as N empty slices would hide every record.
	if _, err := OpenSharded(shardedTestOpts(dir), 4); err == nil {
		t.Fatal("opening a populated pre-shard layout as 4 shards did not fail")
	}
}

func TestShardedContainerRouting(t *testing.T) {
	s, err := OpenSharded(shardedTestOpts(""), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad(shardedTestRecords(t, 1000, 5)); err != nil {
		t.Fatal(err)
	}
	for _, cid := range s.Containers() {
		c := s.Container(cid)
		if c == nil {
			t.Fatalf("container %v not routable", cid)
		}
		n := 0
		if err := s.ForEachInContainer(cid, func([]byte) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != c.Count() {
			t.Fatalf("container %v: iterated %d of %d records", cid, n, c.Count())
		}
	}
}
