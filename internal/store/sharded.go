package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sdss/internal/htm"
)

// Sharded partitions a container-clustered store across N independent
// slices — the structural step toward the paper's "data spread over many
// containers/nodes" Science Archive. Containers are assigned to slices
// round-robin over their coarse trixel ID (shard = trixel mod N): container
// IDs at a fixed depth are a dense contiguous range, so adjacent patches of
// sky land on different slices and every slice covers the whole sphere.
// That keeps spatially concentrated queries (cone searches) fanned out
// across all slices instead of hot-spotting one.
//
// Each slice is a complete, independently persistable Store; a query engine
// scans all slices concurrently and merges the streams (package qe). With
// one shard, Sharded is a thin pass-through over a single Store, including
// its on-disk layout — existing single-store archives reopen unchanged.
type Sharded struct {
	opts   Options
	shards []*Store
}

// shardMetaFile records the slice count of a persisted sharded store, so a
// reopen cannot silently split the same directory differently.
const shardMetaFile = "SHARDS"

// OpenSharded creates or opens a store split into nShards slices. nShards
// <= 1 means a single slice stored directly under opts.Dir (the historical
// layout); more slices live in shard-NNN subdirectories. When opts.Dir
// holds a previously persisted sharded store, its recorded slice count must
// match nShards (nShards 0 adopts the recorded count).
func OpenSharded(opts Options, nShards int) (*Sharded, error) {
	if opts.Dir != "" {
		recorded, err := readShardMeta(opts.Dir)
		if err != nil {
			return nil, err
		}
		if recorded == 0 && hasContainerFiles(opts.Dir) {
			// Pre-shard layout: container files directly under the
			// directory with no meta file means one slice.
			recorded = 1
		}
		switch {
		case recorded == 0:
			// Fresh directory: adopt the request.
		case nShards == 0:
			nShards = recorded
		case recorded != nShards:
			return nil, fmt.Errorf("store: %s is split into %d shards, not %d", opts.Dir, recorded, nShards)
		}
	}
	if nShards < 1 {
		nShards = 1
	}
	s := &Sharded{opts: opts, shards: make([]*Store, nShards)}
	for i := range s.shards {
		so := opts
		if opts.Dir != "" && nShards > 1 {
			so.Dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i))
		}
		sh, err := Open(so)
		if err != nil {
			return nil, fmt.Errorf("store: opening shard %d: %w", i, err)
		}
		s.shards[i] = sh
	}
	// Adopt the opened slices' normalized options (depth defaulting).
	s.opts = s.shards[0].opts
	s.opts.Dir = opts.Dir
	if opts.Dir != "" && nShards > 1 {
		if err := writeShardMeta(opts.Dir, nShards); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func readShardMeta(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, shardMetaFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: reading shard meta: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("store: corrupt shard meta %q in %s", strings.TrimSpace(string(b)), dir)
	}
	return n, nil
}

// hasContainerFiles reports whether dir holds container files in the flat
// pre-shard layout, which makes it a 1-slice store even without meta.
func hasContainerFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "c") && strings.HasSuffix(name, ".dat") {
			return true
		}
	}
	return false
}

func writeShardMeta(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", dir, err)
	}
	return os.WriteFile(filepath.Join(dir, shardMetaFile), []byte(strconv.Itoa(n)+"\n"), 0o644)
}

// Options returns the store's configuration.
func (s *Sharded) Options() Options { return s.opts }

// ContainerDepth returns the depth of container keys.
func (s *Sharded) ContainerDepth() int { return s.opts.ContainerDepth }

// NumShards returns the number of slices.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shards returns the slices in shard order.
func (s *Sharded) Shards() []*Store { return s.shards }

// Shard returns one slice.
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// ShardFor returns the slice index owning a container trixel: round-robin
// over the dense coarse-trixel ID space.
func (s *Sharded) ShardFor(cid htm.ID) int {
	return int(uint64(cid) % uint64(len(s.shards)))
}

// BulkLoad partitions the records by owning slice and loads every slice in
// parallel. Each slice's BulkLoad groups by container, so each clustering
// unit is still touched at most once per load — the paper's load invariant
// survives sharding.
func (s *Sharded) BulkLoad(recs []Record) error {
	if len(s.shards) == 1 {
		return s.shards[0].BulkLoad(recs)
	}
	depth := s.opts.ContainerDepth
	parts := make([][]Record, len(s.shards))
	for _, r := range recs {
		cid := r.HTMID.AtDepth(depth)
		if cid == htm.Invalid {
			return fmt.Errorf("store: record with invalid HTM ID %#x", uint64(r.HTMID))
		}
		i := s.ShardFor(cid)
		parts[i] = append(parts[i], r)
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []Record) {
			defer wg.Done()
			errs[i] = s.shards[i].BulkLoad(part)
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// Sort orders every container of every slice by fine HTM ID.
func (s *Sharded) Sort() {
	for _, sh := range s.shards {
		sh.Sort()
	}
}

// Flush persists every slice.
func (s *Sharded) Flush() error {
	for i, sh := range s.shards {
		if err := sh.Flush(); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// NumContainers returns the number of clustering units across all slices.
func (s *Sharded) NumContainers() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumContainers()
	}
	return n
}

// NumRecords returns the number of stored records across all slices.
func (s *Sharded) NumRecords() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.NumRecords()
	}
	return n
}

// Bytes returns the total payload size across all slices.
func (s *Sharded) Bytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Bytes()
	}
	return n
}

// Touches returns cumulative container touches across all slices.
func (s *Sharded) Touches() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Touches()
	}
	return n
}

// ResetTouches zeroes every slice's touch counter.
func (s *Sharded) ResetTouches() {
	for _, sh := range s.shards {
		sh.ResetTouches()
	}
}

// ShardRecords reports each slice's record count, in shard order — the
// balance view the status endpoint serves.
func (s *Sharded) ShardRecords() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.NumRecords()
	}
	return out
}

// Containers returns every slice's container IDs merged in sorted order.
func (s *Sharded) Containers() []htm.ID {
	var ids []htm.ID
	for _, sh := range s.shards {
		ids = append(ids, sh.Containers()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Container returns one container's data from its owning slice (nil if
// absent).
func (s *Sharded) Container(id htm.ID) *Container {
	return s.shards[s.ShardFor(id)].Container(id)
}

// ForEachInContainer streams the records of a single container from its
// owning slice.
func (s *Sharded) ForEachInContainer(id htm.ID, fn func(rec []byte) error) error {
	return s.shards[s.ShardFor(id)].ForEachInContainer(id, fn)
}

// Scan streams records slice by slice in shard order; within a slice the
// ordering matches Store.Scan. Consumers needing global container order
// should iterate Containers and route per container.
func (s *Sharded) Scan(coverage *htm.RangeSet, fineFilter bool, fn func(rec []byte) error) error {
	for _, sh := range s.shards {
		if err := sh.Scan(coverage, fineFilter, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanContainers streams whole containers in global ID order, routing each
// to its owning slice.
func (s *Sharded) ScanContainers(fn func(id htm.ID, data []byte, count int) error) error {
	for _, id := range s.Containers() {
		c := s.Container(id)
		if c == nil {
			continue
		}
		if err := fn(id, c.data, c.count); err != nil {
			return err
		}
	}
	return nil
}

// KeyOf reads the embedded fine HTM ID of an encoded record.
func (s *Sharded) KeyOf(rec []byte) htm.ID { return s.shards[0].KeyOf(rec) }

// CheckZone evaluates admit against a container's zone statistics on its
// owning slice (true when zoning is disabled or the container is absent).
func (s *Sharded) CheckZone(id htm.ID, admit func(min, max []float64, hasNaN []bool) bool) bool {
	return s.shards[s.ShardFor(id)].CheckZone(id, admit)
}

// PairStats returns a container's pair-density statistic (record count and
// Σ k² over depth-(containerDepth+rel) cells) from its owning slice.
func (s *Sharded) PairStats(id htm.ID, rel int) (count int, sumSq float64, ok bool) {
	return s.shards[s.ShardFor(id)].PairStats(id, rel)
}

// BuildZones ensures every slice's zone maps are fresh.
func (s *Sharded) BuildZones() {
	for _, sh := range s.shards {
		sh.BuildZones()
	}
}

// RebuildZones drops and rebuilds every slice's zone maps from scratch.
func (s *Sharded) RebuildZones() {
	for _, sh := range s.shards {
		sh.RebuildZones()
	}
}

// ZoneBytes reports the in-memory zone-map footprint across all slices.
func (s *Sharded) ZoneBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.ZoneBytes()
	}
	return n
}
