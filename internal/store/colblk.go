// Column-block sidecars: the compressed columnar representation of each
// container's records (package colblk), maintained beside the zone maps.
// Where zones let a scan skip whole containers, column blocks change what a
// surviving container costs: the scan path runs its compare kernels over
// per-column key vectors and materializes only selected records, streaming
// the encoded bytes instead of the raw fixed-offset payload.
//
// Lifecycle mirrors zone.go exactly: slabs build lazily per container
// (freshness = slab record count versus container count), persist in one
// versioned COLBLK file per store directory written atomically at Flush,
// reload tolerantly (any mismatch — magic, version, spec fingerprint,
// per-container counts, structural validation — just drops the affected
// slabs to rebuild from the records), and CheckColBlk sweeps the full
// decode-equals-raw invariant on demand.
package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"sdss/internal/colblk"
	"sdss/internal/htm"
)

// colBlkEnabled reports whether this store maintains column blocks.
func (s *Store) colBlkEnabled() bool { return s.opts.Columns != nil }

// ColBlkEnabled reports whether this store maintains column blocks — the
// planner consults it before labeling a scan's kernel path.
func (s *Store) ColBlkEnabled() bool { return s.colBlkEnabled() }

// setSlab attaches (or detaches, sl == nil) a container's slab, keeping the
// store-wide encoded/raw byte aggregates current. Every slab assignment goes
// through here. Callers hold the write lock (or own the store exclusively,
// as during Open).
func (s *Store) setSlab(c *Container, sl *colblk.Slab) {
	if old := c.slab; old != nil {
		s.colEncBytes -= int64(old.EncodedBytes())
		s.colRawBytes -= int64(old.RawBytes())
	}
	if sl != nil {
		s.colEncBytes += int64(sl.EncodedBytes())
		s.colRawBytes += int64(sl.RawBytes())
	}
	c.slab = sl
}

// ensureColBlk (re)builds a container's slab when missing or stale. Callers
// hold the write lock.
func (s *Store) ensureColBlk(c *Container) {
	if !s.colBlkEnabled() || (c.slab != nil && c.slab.N == c.count) {
		return
	}
	s.setSlab(c, s.opts.Columns.Encode(c.data, c.count, s.opts.RecordSize, s.colRaw))
}

// ColumnData snapshots one container for the kernel scan path: its raw
// payload, record count, and fresh column slab (built on demand). The slab
// is nil when column blocks are disabled or the container is absent; the
// returned slices must be treated as read-only (appends and sorts replace,
// never mutate, container buffers — the same contract ForEachInContainer
// relies on).
func (s *Store) ColumnData(id htm.ID) (data []byte, count int, slab *colblk.Slab) {
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return nil, 0, nil
	}
	if !s.colBlkEnabled() {
		data, count = c.data, c.count
		s.mu.RUnlock()
		return data, count, nil
	}
	if sl := c.slab; sl != nil && sl.N == c.count {
		data, count, slab = c.data, c.count, sl
		s.mu.RUnlock()
		return data, count, slab
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return nil, 0, nil
	}
	s.ensureColBlk(c)
	return c.data, c.count, c.slab
}

// SetColBlkRaw switches the store between real encodings and forced-raw
// slabs (every stored column EncRaw). The kernel path is identical either
// way, which is exactly what the compression ablation needs: toggling this
// isolates the codec's byte savings from the kernel's instruction savings.
// Existing slabs are dropped so they rebuild under the new mode.
func (s *Store) SetColBlkRaw(raw bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.colRaw == raw {
		return
	}
	s.colRaw = raw
	for _, c := range s.containers {
		s.setSlab(c, nil)
	}
}

// BuildColBlks ensures every container has a fresh slab (Flush calls it; it
// is also the warm-up a benchmark times).
func (s *Store) BuildColBlks() {
	if !s.colBlkEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		s.ensureColBlk(c)
	}
}

// RebuildColBlks drops and rebuilds every slab from scratch — the measured
// cost of a full encode over the store's records.
func (s *Store) RebuildColBlks() {
	if !s.colBlkEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		s.setSlab(c, nil)
		s.ensureColBlk(c)
	}
}

// CheckColBlk verifies a container's slab decodes to exactly the keys of
// its raw records, building it first if needed — the COLBLK analogue of
// CheckZone, used by validation sweeps and the property tests. Absent
// containers and disabled column blocks check vacuously.
func (s *Store) CheckColBlk(id htm.ID) error {
	if !s.colBlkEnabled() {
		return nil
	}
	data, count, slab := s.ColumnData(id)
	if slab == nil {
		return nil
	}
	return slab.Check(data, count, s.opts.RecordSize)
}

// ColBlkBytes reports the encoded footprint of all attached slabs against
// the raw footprint of the columns they cover — the compressed-versus-raw
// ratio /v1/status, the load summary, and the planner's bytes-scanned cost
// model consult. The totals are aggregates maintained as slabs attach and
// detach (O(1) to read — planLeaf calls this on every kernel-scan
// estimate); containers without slabs contribute to neither side, and a
// slab gone stale after appends is counted until its rebuild replaces it.
func (s *Store) ColBlkBytes() (encoded, raw int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.colEncBytes, s.colRawBytes
}

// Column-block persistence: one COLBLK file per store directory, in the
// sidecar format owned by package colblk (colblk.AppendFileHeader and
// friends). The header records the format version and the column spec's
// fingerprint; the spec itself is code, so a fingerprint mismatch (schema
// change, new predictor wiring) silently invalidates the file and slabs
// rebuild from the records.
const colBlkFileName = "COLBLK"

// flushColBlks writes the COLBLK file. Callers hold the write lock and have
// ensured slabs are fresh.
func (s *Store) flushColBlks() error {
	if s.opts.Dir == "" || !s.colBlkEnabled() {
		return nil
	}
	path := filepath.Join(s.opts.Dir, colBlkFileName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(colblk.AppendFileHeader(nil, s.opts.Columns.Fingerprint(), len(s.containers))); err != nil {
		f.Close()
		return err
	}
	var slabBuf, entBuf []byte
	for _, id := range s.containerOrder() {
		c := s.containers[id]
		sl := c.slab
		if sl == nil || sl.N != c.count {
			// Should not happen (callers ensure freshness); skip rather than
			// persist a stale slab.
			continue
		}
		slabBuf = sl.AppendTo(slabBuf[:0])
		entBuf = colblk.AppendFileEntry(entBuf[:0], uint64(id), sl.N, slabBuf)
		if _, err := w.Write(entBuf); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

// loadColBlks attaches persisted slabs to loaded containers. Any
// irregularity — missing file, version or fingerprint mismatch, stale
// per-container counts, structural corruption — is not an error: the
// affected slabs simply rebuild from the records on first use.
func (s *Store) loadColBlks() {
	if s.opts.Dir == "" || !s.colBlkEnabled() {
		return
	}
	b, err := os.ReadFile(filepath.Join(s.opts.Dir, colBlkFileName))
	if err != nil {
		return
	}
	count, off, ok := colblk.ParseFileHeader(b, s.opts.Columns.Fingerprint())
	if !ok {
		return
	}
	for n := 0; n < count; n++ {
		// Structural validation catches truncation and format drift; the
		// entry checksum catches bit flips, which would otherwise decode to
		// plausible-but-wrong keys and silently corrupt query results.
		ent, consumed, ok := colblk.ParseFileEntry(b[off:])
		if !ok {
			return
		}
		sl, slabUsed, err := colblk.DecodeSlab(s.opts.Columns, ent.Records, ent.Slab)
		if err != nil || slabUsed != len(ent.Slab) {
			return
		}
		off += consumed
		c := s.containers[htm.ID(ent.ID)]
		if c != nil && c.count == ent.Records {
			s.setSlab(c, sl)
		}
	}
}

// --- Sharded delegations ---

// ColumnData snapshots a container from its owning slice.
func (s *Sharded) ColumnData(id htm.ID) (data []byte, count int, slab *colblk.Slab) {
	return s.shards[s.ShardFor(id)].ColumnData(id)
}

// ColBlkEnabled reports whether the slices maintain column blocks.
func (s *Sharded) ColBlkEnabled() bool {
	return len(s.shards) > 0 && s.shards[0].ColBlkEnabled()
}

// SetColBlkRaw switches every slice between real and forced-raw encodings.
func (s *Sharded) SetColBlkRaw(raw bool) {
	for _, sh := range s.shards {
		sh.SetColBlkRaw(raw)
	}
}

// BuildColBlks ensures every slice's slabs are fresh.
func (s *Sharded) BuildColBlks() {
	for _, sh := range s.shards {
		sh.BuildColBlks()
	}
}

// RebuildColBlks drops and rebuilds every slice's slabs from scratch.
func (s *Sharded) RebuildColBlks() {
	for _, sh := range s.shards {
		sh.RebuildColBlks()
	}
}

// CheckColBlk verifies a container's slab on its owning slice.
func (s *Sharded) CheckColBlk(id htm.ID) error {
	return s.shards[s.ShardFor(id)].CheckColBlk(id)
}

// ColBlkBytes sums the encoded-versus-raw footprint across all slices.
func (s *Sharded) ColBlkBytes() (encoded, raw int64) {
	for _, sh := range s.shards {
		e, r := sh.ColBlkBytes()
		encoded += e
		raw += r
	}
	return encoded, raw
}
