package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sdss/internal/colblk"
	"sdss/internal/htm"
)

// colBlkTestOptions extends the zone test layout (8-byte key + one f64
// value) with a column spec covering both fields.
func colBlkTestOptions(dir string) Options {
	o := zoneTestOptions(dir)
	o.Columns = colblk.MustSpec([]colblk.Column{
		{Name: "htmid", Offset: 0, Kind: colblk.KU64},
		{Name: "val", Offset: 8, Kind: colblk.KF64},
	})
	return o
}

func TestColBlkBuildAndCheck(t *testing.T) {
	s, err := Open(colBlkTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 2)
	recs := []Record{
		zoneTestRecord(ids[0], 3),
		zoneTestRecord(ids[0], -1),
		zoneTestRecord(ids[1], math.NaN()),
		zoneTestRecord(ids[1], 7),
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cid := id.AtDepth(s.ContainerDepth())
		data, count, slab := s.ColumnData(cid)
		if slab == nil || slab.N != count || len(data) != count*s.opts.RecordSize {
			t.Fatalf("container %v: no fresh slab (count %d)", cid, count)
		}
		if err := s.CheckColBlk(cid); err != nil {
			t.Fatal(err)
		}
	}
	enc, raw := s.ColBlkBytes()
	if enc <= 0 || raw != 4*16 {
		t.Fatalf("ColBlkBytes = %d/%d, want positive/%d", enc, raw, 4*16)
	}
}

func TestColBlkStalenessAfterAppendAndSort(t *testing.T) {
	s, err := Open(colBlkTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 1)
	cid := ids[0].AtDepth(s.ContainerDepth())
	// Load out-of-order fine keys within one container so sorting permutes.
	fine := []htm.ID{ids[0] + 5, ids[0] + 1, ids[0] + 3}
	var recs []Record
	for i, f := range fine {
		recs = append(recs, zoneTestRecord(f, float64(i)))
	}
	if err := s.BulkLoad(recs[:2]); err != nil {
		t.Fatal(err)
	}
	_, _, slab1 := s.ColumnData(cid)
	if slab1 == nil || slab1.N != 2 {
		t.Fatal("no slab after first load")
	}
	// Appending staleness: a new record invalidates the slab until rebuilt.
	if err := s.BulkLoad(recs[2:]); err != nil {
		t.Fatal(err)
	}
	_, _, slab2 := s.ColumnData(cid)
	if slab2 == nil || slab2.N != 3 {
		t.Fatal("slab not rebuilt after append")
	}
	// Sorting permutes the records: the slab must rebuild over the new
	// order and still check clean.
	s.Sort()
	data, count, slab3 := s.ColumnData(cid)
	if slab3 == nil || slab3 == slab2 {
		t.Fatal("slab not rebuilt after sort")
	}
	if err := slab3.Check(data, count, s.opts.RecordSize); err != nil {
		t.Fatal(err)
	}
	// The decoded htmid column must now be ascending.
	r := colblk.NewReader()
	r.Reset(slab3)
	keys := r.Keys(0)
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("sorted container decoded out of order")
		}
	}
}

func TestColBlkPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(colBlkTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 3)
	var recs []Record
	for i, id := range ids {
		recs = append(recs, zoneTestRecord(id, float64(i)*1.5), zoneTestRecord(id+1, math.NaN()))
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	s.Sort()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, colBlkFileName)); err != nil {
		t.Fatalf("no COLBLK file after flush: %v", err)
	}

	// Reopen: slabs attach from disk (no rebuild) and check clean.
	s2, err := Open(colBlkTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cid := id.AtDepth(s2.ContainerDepth())
		s2.mu.RLock()
		attached := s2.containers[cid].slab != nil
		s2.mu.RUnlock()
		if !attached {
			t.Fatalf("container %v: persisted slab not attached on reopen", cid)
		}
		if err := s2.CheckColBlk(cid); err != nil {
			t.Fatal(err)
		}
	}

	// A corrupted COLBLK file must degrade to transparent rebuild, never an
	// open error.
	path := filepath.Join(dir, colBlkFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(colBlkTestOptions(dir))
	if err != nil {
		t.Fatalf("open with corrupt COLBLK: %v", err)
	}
	for _, id := range ids {
		if err := s3.CheckColBlk(id.AtDepth(s3.ContainerDepth())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColBlkLegacyArchiveRebuilds(t *testing.T) {
	dir := t.TempDir()
	// Write an archive with column blocks disabled — a pre-COLBLK layout.
	legacy, err := Open(zoneTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 2)
	if err := legacy.BulkLoad([]Record{
		zoneTestRecord(ids[0], 1), zoneTestRecord(ids[1], 2),
	}); err != nil {
		t.Fatal(err)
	}
	legacy.Sort()
	if err := legacy.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopen with column blocks enabled: slabs build transparently.
	s, err := Open(colBlkTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cid := id.AtDepth(s.ContainerDepth())
		_, count, slab := s.ColumnData(cid)
		if slab == nil || slab.N != count || count != 1 {
			t.Fatalf("container %v: legacy archive did not build slab", cid)
		}
		if err := s.CheckColBlk(cid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColBlkRawModeAndBytes(t *testing.T) {
	s, err := Open(colBlkTestOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	ids := zoneTrixels(t, 1)
	var recs []Record
	for i := 0; i < 256; i++ {
		recs = append(recs, zoneTestRecord(ids[0]+htm.ID(i%7), 10+float64(i%5)))
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	s.BuildColBlks()
	enc, raw := s.ColBlkBytes()
	if enc >= raw {
		t.Fatalf("clustered container did not compress: %d encoded vs %d raw", enc, raw)
	}
	s.SetColBlkRaw(true)
	s.BuildColBlks()
	encRaw, _ := s.ColBlkBytes()
	if encRaw <= enc {
		t.Fatalf("forced-raw encoding (%d bytes) not larger than compressed (%d)", encRaw, enc)
	}
	cid := ids[0].AtDepth(s.ContainerDepth())
	_, _, slab := s.ColumnData(cid)
	for ci := 0; ci < slab.Spec.NumCols(); ci++ {
		if slab.Blocks[ci].Enc != colblk.EncRaw {
			t.Fatalf("forced-raw column %d encoded as %v", ci, slab.Blocks[ci].Enc)
		}
	}
	if err := s.CheckColBlk(cid); err != nil {
		t.Fatal(err)
	}
	// And back.
	s.SetColBlkRaw(false)
	s.BuildColBlks()
	encBack, _ := s.ColBlkBytes()
	if encBack != enc {
		t.Fatalf("round-tripped encoding footprint %d, want %d", encBack, enc)
	}
}
