// Zone maps: per-container min/max (and NaN-presence) statistics for every
// numeric attribute of the stored records — the "indices on the popular
// attributes" the SDSS archive kept per clustering unit. A scan with
// attribute bounds (a magnitude cut, a class test) consults the zone of each
// candidate container and skips containers whose value ranges cannot
// intersect the bounds, exactly like HTM coverage skips trixels.
//
// Zones are built incrementally as bulk loads append records (min/max only
// ever widen, so appends never invalidate them), ensured for every container
// at Sort/Flush time, persisted in one versioned ZONES file per store
// directory, and rebuilt transparently — per container — whenever they are
// missing or stale (pre-zone archives, interrupted writes).
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"sdss/internal/htm"
)

// PairRelDepth is the finest relative subdivision depth of the per-container
// occupancy histogram behind PairStats: container trixels split PairRelDepth
// more levels, giving 4^PairRelDepth fine cells per container (a depth-5
// container observed at depth 12, ~1.3 arcmin cells — below the angular
// scale galaxy clustering concentrates pairs at). Relative cell indexes
// occupy 2·PairRelDepth = 14 bits, so they pack into uint16 keys.
const PairRelDepth = 7

// pairRelMask extracts the relative fine-cell index from a container-deep
// trixel ID.
const pairRelMask = 1<<(2*PairRelDepth) - 1

// zoneMap holds one container's per-attribute statistics, indexed by the
// attribute IDs the store's ZoneValues extractor emits. min > max for an
// attribute means the container holds no non-NaN value for it.
type zoneMap struct {
	min, max []float64
	hasNaN   []bool
	// count is the number of records folded in; a mismatch against the
	// container's record count marks the zone stale.
	count int

	// fineKeys/fineCounts are the container's occupancy histogram over its
	// depth-(containerDepth+PairRelDepth) fine trixels: sorted relative
	// cell indexes with their record counts — the pair-density statistic
	// the neighbor-join estimator integrates against a pair radius.
	// fineCount is the number of records histogrammed; a mismatch against
	// the container's record count marks the histogram stale (appends do
	// not maintain it incrementally; it rebuilds on demand).
	fineKeys   []uint16
	fineCounts []uint32
	fineCount  int
}

func newZoneMap(attrs int) *zoneMap {
	z := &zoneMap{
		min:    make([]float64, attrs),
		max:    make([]float64, attrs),
		hasNaN: make([]bool, attrs),
	}
	for i := 0; i < attrs; i++ {
		z.min[i] = math.Inf(1)
		z.max[i] = math.Inf(-1)
	}
	return z
}

// fold widens the zone with one record's attribute values.
func (z *zoneMap) fold(vals []float64) {
	for i, v := range vals {
		if math.IsNaN(v) {
			z.hasNaN[i] = true
			continue
		}
		if v < z.min[i] {
			z.min[i] = v
		}
		if v > z.max[i] {
			z.max[i] = v
		}
	}
	z.count++
}

// zoneBytes is the in-memory footprint of one zone map.
func (z *zoneMap) bytes() int64 {
	return int64(len(z.min)*8 + len(z.max)*8 + len(z.hasNaN) + 24 +
		len(z.fineKeys)*2 + len(z.fineCounts)*4)
}

// zoneEnabled reports whether this store maintains zone maps.
func (s *Store) zoneEnabled() bool {
	return s.opts.ZoneAttrs > 0 && s.opts.ZoneValues != nil
}

// zoneFold incrementally folds freshly appended records into a container's
// zone. If the zone is missing or stale (records appended before zoning, a
// partial reload), it is left for ensureZone to rebuild lazily. Callers hold
// the write lock.
func (s *Store) zoneFold(c *Container, recs []Record, scratch []float64) {
	preCount := c.count - len(recs)
	if c.zone == nil {
		if preCount != 0 {
			return // stale; rebuilt on demand
		}
		c.zone = newZoneMap(s.opts.ZoneAttrs)
	} else if c.zone.count != preCount {
		return
	}
	for _, r := range recs {
		s.opts.ZoneValues(r.Data, scratch)
		c.zone.fold(scratch)
	}
}

// ensureZone rebuilds a container's zone from its records when missing or
// stale, carrying the fine occupancy histogram over (its freshness is
// tracked separately by fineCount). Callers hold the write lock.
func (s *Store) ensureZone(c *Container) {
	if !s.zoneEnabled() || (c.zone != nil && c.zone.count == c.count) {
		return
	}
	z := newZoneMap(s.opts.ZoneAttrs)
	if prev := c.zone; prev != nil {
		z.fineKeys, z.fineCounts, z.fineCount = prev.fineKeys, prev.fineCounts, prev.fineCount
	}
	rs := s.opts.RecordSize
	scratch := make([]float64, s.opts.ZoneAttrs)
	for i := 0; i < c.count; i++ {
		s.opts.ZoneValues(c.data[i*rs:(i+1)*rs], scratch)
		z.fold(scratch)
	}
	c.zone = z
}

// ensureFine rebuilds a container's fine occupancy histogram from its
// record keys when missing or stale. Callers hold the write lock.
func (s *Store) ensureFine(c *Container) {
	if c.zone != nil && c.zone.fineCount == c.count && c.zone.fineKeys != nil {
		return
	}
	if c.zone == nil {
		// The attribute zones stay stale (count 0) and rebuild on their
		// own freshness check; only the histogram is built here.
		c.zone = newZoneMap(s.opts.ZoneAttrs)
	}
	fineDepth := s.opts.ContainerDepth + PairRelDepth
	rs := s.opts.RecordSize
	rels := make([]uint16, 0, c.count)
	for i := 0; i < c.count; i++ {
		deep := s.key(c.data[i*rs : (i+1)*rs]).AtDepth(fineDepth)
		if deep>>(2*PairRelDepth) != c.ID {
			// A record whose key does not descend from the container
			// trixel (corrupt or synthetic); lump it into cell 0 so the
			// counts still sum to the record count.
			rels = append(rels, 0)
			continue
		}
		rels = append(rels, uint16(deep&pairRelMask))
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	z := c.zone
	z.fineKeys = z.fineKeys[:0]
	z.fineCounts = z.fineCounts[:0]
	for i := 0; i < len(rels); {
		j := i
		for j < len(rels) && rels[j] == rels[i] {
			j++
		}
		z.fineKeys = append(z.fineKeys, rels[i])
		z.fineCounts = append(z.fineCounts, uint32(j-i))
		i = j
	}
	z.fineCount = c.count
}

// PairStats folds a container's occupancy histogram at relative subdivision
// depth rel ∈ [0, PairRelDepth] into the pair-density statistic Σ k² (k =
// records per depth-(containerDepth+rel) trixel) — the quantity that, scaled
// by a pair radius' cap area over the cell area, estimates how many within-
// radius pairs the container contributes. It returns the record count, the
// sum of squared cell occupancies, and whether the statistic is available
// (false for an absent container; histograms build on demand like zones).
func (s *Store) PairStats(id htm.ID, rel int) (count int, sumSq float64, ok bool) {
	if rel < 0 {
		rel = 0
	}
	if rel > PairRelDepth {
		rel = PairRelDepth
	}
	fold := func(z *zoneMap) float64 {
		shift := 2 * uint(PairRelDepth-rel)
		var total float64
		for i := 0; i < len(z.fineKeys); {
			group := z.fineKeys[i] >> shift
			var k uint64
			for i < len(z.fineKeys) && z.fineKeys[i]>>shift == group {
				k += uint64(z.fineCounts[i])
				i++
			}
			total += float64(k) * float64(k)
		}
		return total
	}
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return 0, 0, false
	}
	if z := c.zone; z != nil && z.fineCount == c.count && z.fineKeys != nil {
		count, sumSq = c.count, fold(z)
		s.mu.RUnlock()
		return count, sumSq, true
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return 0, 0, false
	}
	s.ensureFine(c)
	return c.count, fold(c.zone), true
}

// CheckZone evaluates admit against a container's zone statistics, building
// the zone first if it is missing or stale. It returns true (scan the
// container) when zoning is disabled or the container is absent, so callers
// need no feature test. admit must not retain the slices.
func (s *Store) CheckZone(id htm.ID, admit func(min, max []float64, hasNaN []bool) bool) bool {
	if !s.zoneEnabled() {
		return true
	}
	// Fast path: fresh zone under the read lock.
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return true
	}
	if z := c.zone; z != nil && z.count == c.count {
		ok := admit(z.min, z.max, z.hasNaN)
		s.mu.RUnlock()
		return ok
	}
	s.mu.RUnlock()
	// Slow path: build under the write lock.
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return true
	}
	s.ensureZone(c)
	z := c.zone
	return admit(z.min, z.max, z.hasNaN)
}

// ZoneStats exposes a container's statistics to the cost-based planner:
// record count plus per-attribute min/max/NaN zones (built on demand when
// missing or stale). When zoning is disabled the zone slices are nil and
// only count is meaningful. The callback must not retain the slices. An
// absent container never invokes the callback.
func (s *Store) ZoneStats(id htm.ID, fn func(count int, min, max []float64, hasNaN []bool)) {
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return
	}
	if !s.zoneEnabled() {
		count := c.count
		s.mu.RUnlock()
		fn(count, nil, nil, nil)
		return
	}
	if z := c.zone; z != nil && z.count == c.count {
		fn(c.count, z.min, z.max, z.hasNaN)
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return
	}
	s.ensureZone(c)
	if z := c.zone; z != nil {
		fn(c.count, z.min, z.max, z.hasNaN)
	} else {
		fn(c.count, nil, nil, nil)
	}
}

// ZoneStatsAll streams the record counts and zone statistics of the listed
// containers through fn under a single lock acquisition — the planner
// consults thousands of candidates per query, and per-container ZoneStats
// calls spend more time in lock atomics than in the statistics themselves.
// Callbacks arrive in ids order; absent containers are skipped. When build
// is true, missing or stale zones are rebuilt first (one write-lock pass,
// as on a pre-zone archive); when false the callback sees nil zone slices
// for them instead — the planner's no-bounds path must not pay on-demand
// zone builds just to count records. fn must not retain the slices.
func (s *Store) ZoneStatsAll(ids []htm.ID, build bool, fn func(i, count int, min, max []float64, hasNaN []bool)) {
	build = build && s.zoneEnabled()
	s.mu.RLock()
	if build {
		for _, id := range ids {
			if c := s.containers[id]; c != nil {
				if z := c.zone; z == nil || z.count != c.count {
					// A stale zone: redo the whole pass under the write lock.
					s.mu.RUnlock()
					s.mu.Lock()
					defer s.mu.Unlock()
					for i, id := range ids {
						c := s.containers[id]
						if c == nil {
							continue
						}
						s.ensureZone(c)
						if z := c.zone; z != nil {
							fn(i, c.count, z.min, z.max, z.hasNaN)
						} else {
							fn(i, c.count, nil, nil, nil)
						}
					}
					return
				}
			}
		}
	}
	defer s.mu.RUnlock()
	for i, id := range ids {
		c := s.containers[id]
		if c == nil {
			continue
		}
		if z := c.zone; z != nil && z.count == c.count {
			fn(i, c.count, z.min, z.max, z.hasNaN)
		} else {
			fn(i, c.count, nil, nil, nil)
		}
	}
}

// BuildZones ensures every container has a fresh zone map and occupancy
// histogram (Sort and Flush call it; it is also the warm-up a benchmark
// times).
func (s *Store) BuildZones() {
	if !s.zoneEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		s.ensureZone(c)
		s.ensureFine(c)
	}
}

// RebuildZones drops and rebuilds every zone map from scratch — the
// measured cost of a full zone build over the store's records.
func (s *Store) RebuildZones() {
	if !s.zoneEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		c.zone = nil
		s.ensureZone(c)
		s.ensureFine(c)
	}
}

// ZoneBytes reports the in-memory footprint of all built zone maps.
func (s *Store) ZoneBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.containers {
		if c.zone != nil {
			n += c.zone.bytes()
		}
	}
	return n
}

// Zone-map persistence: one ZONES file per store directory holding every
// container's statistics, written atomically alongside the container files.
// The header records a format version and the attribute count; a mismatch on
// either (or a per-container record-count mismatch against the loaded
// container) makes the affected zones rebuild transparently from the data.
// Version 2 appends each container's fine occupancy histogram (the
// PairStats source) after its attribute statistics; version-1 files simply
// rebuild everything on first use.
const (
	zoneFileName    = "ZONES"
	zoneFileMagic   = "SDSSZONE"
	zoneFileVersion = 2
)

// flushZones writes the ZONES file. Callers hold the write lock and have
// ensured zones are fresh.
func (s *Store) flushZones() error {
	if s.opts.Dir == "" || !s.zoneEnabled() {
		return nil
	}
	path := filepath.Join(s.opts.Dir, zoneFileName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	attrs := s.opts.ZoneAttrs
	var hdr [8 + 4 + 4 + 4]byte
	copy(hdr[:8], zoneFileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], zoneFileVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(attrs))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(s.containers)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	for _, id := range s.containerOrder() {
		c := s.containers[id]
		z := c.zone
		if z == nil || z.count != c.count {
			// Should not happen (callers ensure freshness); skip rather
			// than persist a stale zone.
			continue
		}
		if err := writeU64(uint64(id)); err != nil {
			f.Close()
			return err
		}
		if err := writeU64(uint64(z.count)); err != nil {
			f.Close()
			return err
		}
		for i := 0; i < attrs; i++ {
			if err := writeU64(math.Float64bits(z.min[i])); err != nil {
				f.Close()
				return err
			}
			if err := writeU64(math.Float64bits(z.max[i])); err != nil {
				f.Close()
				return err
			}
			nan := byte(0)
			if z.hasNaN[i] {
				nan = 1
			}
			if err := w.WriteByte(nan); err != nil {
				f.Close()
				return err
			}
		}
		// The fine occupancy histogram; stale histograms persist empty and
		// rebuild on demand after reopen (fineCount is set from the
		// container count only when entries exist).
		keys, counts := z.fineKeys, z.fineCounts
		if z.fineCount != c.count {
			keys, counts = nil, nil
		}
		var n4 [4]byte
		binary.LittleEndian.PutUint32(n4[:], uint32(len(keys)))
		if _, err := w.Write(n4[:]); err != nil {
			f.Close()
			return err
		}
		for i := range keys {
			var ent [6]byte
			binary.LittleEndian.PutUint16(ent[:2], keys[i])
			binary.LittleEndian.PutUint32(ent[2:], counts[i])
			if _, err := w.Write(ent[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

// loadZones attaches persisted zone maps to loaded containers. Any
// irregularity — missing file, version or attribute-count mismatch, stale
// per-container counts — is not an error: the affected zones simply rebuild
// from the records on first use.
func (s *Store) loadZones() {
	if s.opts.Dir == "" || !s.zoneEnabled() {
		return
	}
	f, err := os.Open(filepath.Join(s.opts.Dir, zoneFileName))
	if err != nil {
		return
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8 + 4 + 4 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	if string(hdr[:8]) != zoneFileMagic {
		return
	}
	if binary.LittleEndian.Uint32(hdr[8:]) != zoneFileVersion {
		return
	}
	attrs := int(binary.LittleEndian.Uint32(hdr[12:]))
	if attrs != s.opts.ZoneAttrs {
		return
	}
	count := int(binary.LittleEndian.Uint32(hdr[16:]))
	var buf [8]byte
	readU64 := func() (uint64, error) {
		_, err := io.ReadFull(r, buf[:])
		return binary.LittleEndian.Uint64(buf[:]), err
	}
	for n := 0; n < count; n++ {
		idBits, err := readU64()
		if err != nil {
			return
		}
		recCount, err := readU64()
		if err != nil {
			return
		}
		z := newZoneMap(attrs)
		z.count = int(recCount)
		for i := 0; i < attrs; i++ {
			minBits, err1 := readU64()
			maxBits, err2 := readU64()
			nan, err3 := r.ReadByte()
			if err1 != nil || err2 != nil || err3 != nil {
				return
			}
			z.min[i] = math.Float64frombits(minBits)
			z.max[i] = math.Float64frombits(maxBits)
			z.hasNaN[i] = nan != 0
		}
		var n4 [4]byte
		if _, err := io.ReadFull(r, n4[:]); err != nil {
			return
		}
		nFine := int(binary.LittleEndian.Uint32(n4[:]))
		var total int
		for i := 0; i < nFine; i++ {
			var ent [6]byte
			if _, err := io.ReadFull(r, ent[:]); err != nil {
				return
			}
			z.fineKeys = append(z.fineKeys, binary.LittleEndian.Uint16(ent[:2]))
			cnt := binary.LittleEndian.Uint32(ent[2:])
			z.fineCounts = append(z.fineCounts, cnt)
			total += int(cnt)
		}
		if nFine > 0 && total == z.count {
			z.fineCount = z.count
		}
		c := s.containers[htm.ID(idBits)]
		if c != nil && c.count == z.count {
			c.zone = z
		}
	}
}
