// Zone maps: per-container min/max (and NaN-presence) statistics for every
// numeric attribute of the stored records — the "indices on the popular
// attributes" the SDSS archive kept per clustering unit. A scan with
// attribute bounds (a magnitude cut, a class test) consults the zone of each
// candidate container and skips containers whose value ranges cannot
// intersect the bounds, exactly like HTM coverage skips trixels.
//
// Zones are built incrementally as bulk loads append records (min/max only
// ever widen, so appends never invalidate them), ensured for every container
// at Sort/Flush time, persisted in one versioned ZONES file per store
// directory, and rebuilt transparently — per container — whenever they are
// missing or stale (pre-zone archives, interrupted writes).
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"sdss/internal/htm"
)

// zoneMap holds one container's per-attribute statistics, indexed by the
// attribute IDs the store's ZoneValues extractor emits. min > max for an
// attribute means the container holds no non-NaN value for it.
type zoneMap struct {
	min, max []float64
	hasNaN   []bool
	// count is the number of records folded in; a mismatch against the
	// container's record count marks the zone stale.
	count int
}

func newZoneMap(attrs int) *zoneMap {
	z := &zoneMap{
		min:    make([]float64, attrs),
		max:    make([]float64, attrs),
		hasNaN: make([]bool, attrs),
	}
	for i := 0; i < attrs; i++ {
		z.min[i] = math.Inf(1)
		z.max[i] = math.Inf(-1)
	}
	return z
}

// fold widens the zone with one record's attribute values.
func (z *zoneMap) fold(vals []float64) {
	for i, v := range vals {
		if math.IsNaN(v) {
			z.hasNaN[i] = true
			continue
		}
		if v < z.min[i] {
			z.min[i] = v
		}
		if v > z.max[i] {
			z.max[i] = v
		}
	}
	z.count++
}

// zoneBytes is the in-memory footprint of one zone map.
func (z *zoneMap) bytes() int64 {
	return int64(len(z.min)*8 + len(z.max)*8 + len(z.hasNaN) + 24)
}

// zoneEnabled reports whether this store maintains zone maps.
func (s *Store) zoneEnabled() bool {
	return s.opts.ZoneAttrs > 0 && s.opts.ZoneValues != nil
}

// zoneFold incrementally folds freshly appended records into a container's
// zone. If the zone is missing or stale (records appended before zoning, a
// partial reload), it is left for ensureZone to rebuild lazily. Callers hold
// the write lock.
func (s *Store) zoneFold(c *Container, recs []Record, scratch []float64) {
	preCount := c.count - len(recs)
	if c.zone == nil {
		if preCount != 0 {
			return // stale; rebuilt on demand
		}
		c.zone = newZoneMap(s.opts.ZoneAttrs)
	} else if c.zone.count != preCount {
		return
	}
	for _, r := range recs {
		s.opts.ZoneValues(r.Data, scratch)
		c.zone.fold(scratch)
	}
}

// ensureZone rebuilds a container's zone from its records when missing or
// stale. Callers hold the write lock.
func (s *Store) ensureZone(c *Container) {
	if !s.zoneEnabled() || (c.zone != nil && c.zone.count == c.count) {
		return
	}
	z := newZoneMap(s.opts.ZoneAttrs)
	rs := s.opts.RecordSize
	scratch := make([]float64, s.opts.ZoneAttrs)
	for i := 0; i < c.count; i++ {
		s.opts.ZoneValues(c.data[i*rs:(i+1)*rs], scratch)
		z.fold(scratch)
	}
	c.zone = z
}

// CheckZone evaluates admit against a container's zone statistics, building
// the zone first if it is missing or stale. It returns true (scan the
// container) when zoning is disabled or the container is absent, so callers
// need no feature test. admit must not retain the slices.
func (s *Store) CheckZone(id htm.ID, admit func(min, max []float64, hasNaN []bool) bool) bool {
	if !s.zoneEnabled() {
		return true
	}
	// Fast path: fresh zone under the read lock.
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return true
	}
	if z := c.zone; z != nil && z.count == c.count {
		ok := admit(z.min, z.max, z.hasNaN)
		s.mu.RUnlock()
		return ok
	}
	s.mu.RUnlock()
	// Slow path: build under the write lock.
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return true
	}
	s.ensureZone(c)
	z := c.zone
	return admit(z.min, z.max, z.hasNaN)
}

// ZoneStats exposes a container's statistics to the cost-based planner:
// record count plus per-attribute min/max/NaN zones (built on demand when
// missing or stale). When zoning is disabled the zone slices are nil and
// only count is meaningful. The callback must not retain the slices. An
// absent container never invokes the callback.
func (s *Store) ZoneStats(id htm.ID, fn func(count int, min, max []float64, hasNaN []bool)) {
	s.mu.RLock()
	c := s.containers[id]
	if c == nil {
		s.mu.RUnlock()
		return
	}
	if !s.zoneEnabled() {
		count := c.count
		s.mu.RUnlock()
		fn(count, nil, nil, nil)
		return
	}
	if z := c.zone; z != nil && z.count == c.count {
		fn(c.count, z.min, z.max, z.hasNaN)
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	c = s.containers[id]
	if c == nil {
		return
	}
	s.ensureZone(c)
	if z := c.zone; z != nil {
		fn(c.count, z.min, z.max, z.hasNaN)
	} else {
		fn(c.count, nil, nil, nil)
	}
}

// BuildZones ensures every container has a fresh zone map (Sort and Flush
// call it; it is also the warm-up a benchmark times).
func (s *Store) BuildZones() {
	if !s.zoneEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		s.ensureZone(c)
	}
}

// RebuildZones drops and rebuilds every zone map from scratch — the
// measured cost of a full zone build over the store's records.
func (s *Store) RebuildZones() {
	if !s.zoneEnabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.containers {
		c.zone = nil
		s.ensureZone(c)
	}
}

// ZoneBytes reports the in-memory footprint of all built zone maps.
func (s *Store) ZoneBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.containers {
		if c.zone != nil {
			n += c.zone.bytes()
		}
	}
	return n
}

// Zone-map persistence: one ZONES file per store directory holding every
// container's statistics, written atomically alongside the container files.
// The header records a format version and the attribute count; a mismatch on
// either (or a per-container record-count mismatch against the loaded
// container) makes the affected zones rebuild transparently from the data.
const (
	zoneFileName    = "ZONES"
	zoneFileMagic   = "SDSSZONE"
	zoneFileVersion = 1
)

// flushZones writes the ZONES file. Callers hold the write lock and have
// ensured zones are fresh.
func (s *Store) flushZones() error {
	if s.opts.Dir == "" || !s.zoneEnabled() {
		return nil
	}
	path := filepath.Join(s.opts.Dir, zoneFileName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	attrs := s.opts.ZoneAttrs
	var hdr [8 + 4 + 4 + 4]byte
	copy(hdr[:8], zoneFileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], zoneFileVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(attrs))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(s.containers)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	for _, id := range s.containerOrder() {
		c := s.containers[id]
		z := c.zone
		if z == nil || z.count != c.count {
			// Should not happen (callers ensure freshness); skip rather
			// than persist a stale zone.
			continue
		}
		if err := writeU64(uint64(id)); err != nil {
			f.Close()
			return err
		}
		if err := writeU64(uint64(z.count)); err != nil {
			f.Close()
			return err
		}
		for i := 0; i < attrs; i++ {
			if err := writeU64(math.Float64bits(z.min[i])); err != nil {
				f.Close()
				return err
			}
			if err := writeU64(math.Float64bits(z.max[i])); err != nil {
				f.Close()
				return err
			}
			nan := byte(0)
			if z.hasNaN[i] {
				nan = 1
			}
			if err := w.WriteByte(nan); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

// loadZones attaches persisted zone maps to loaded containers. Any
// irregularity — missing file, version or attribute-count mismatch, stale
// per-container counts — is not an error: the affected zones simply rebuild
// from the records on first use.
func (s *Store) loadZones() {
	if s.opts.Dir == "" || !s.zoneEnabled() {
		return
	}
	f, err := os.Open(filepath.Join(s.opts.Dir, zoneFileName))
	if err != nil {
		return
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8 + 4 + 4 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	if string(hdr[:8]) != zoneFileMagic {
		return
	}
	if binary.LittleEndian.Uint32(hdr[8:]) != zoneFileVersion {
		return
	}
	attrs := int(binary.LittleEndian.Uint32(hdr[12:]))
	if attrs != s.opts.ZoneAttrs {
		return
	}
	count := int(binary.LittleEndian.Uint32(hdr[16:]))
	var buf [8]byte
	readU64 := func() (uint64, error) {
		_, err := io.ReadFull(r, buf[:])
		return binary.LittleEndian.Uint64(buf[:]), err
	}
	for n := 0; n < count; n++ {
		idBits, err := readU64()
		if err != nil {
			return
		}
		recCount, err := readU64()
		if err != nil {
			return
		}
		z := newZoneMap(attrs)
		z.count = int(recCount)
		for i := 0; i < attrs; i++ {
			minBits, err1 := readU64()
			maxBits, err2 := readU64()
			nan, err3 := r.ReadByte()
			if err1 != nil || err2 != nil || err3 != nil {
				return
			}
			z.min[i] = math.Float64frombits(minBits)
			z.max[i] = math.Float64frombits(maxBits)
			z.hasNaN[i] = nan != 0
		}
		c := s.containers[htm.ID(idBits)]
		if c != nil && c.count == z.count {
			c.zone = z
		}
	}
}
