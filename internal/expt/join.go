package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/query"
	"sdss/internal/stats"
)

// JoinBenchResult is one row of BENCH_join.json: a join query timed on the
// single-shard and N-shard archives plus the disk archive built from FITS
// chunk files, with the client-side two-query merge (what the engine forced
// before JOIN existed) as the baseline where it applies.
type JoinBenchResult struct {
	Query       string `json:"query"`
	Rows        int    `json:"rows"`
	SingleShard string `json:"single_shard"`
	Sharded     string `json:"sharded"`
	// FITSLoaded times the same query on an archive ingested skyload-style
	// from multi-HDU FITS chunk files — the path that silently held zero
	// spectra before SPECOBJ became a first-class HDU.
	FITSLoaded string  `json:"fits_loaded"`
	Speedup    float64 `json:"speedup"`
	// ClientMerge times the pre-JOIN workaround: two separate selects
	// merged by objid in application code ("" when not applicable).
	ClientMerge string `json:"client_merge,omitempty"`
	// EstRows/ActualRows compare the optimizer's cardinality estimate
	// with reality for the join operator itself.
	EstRows    float64 `json:"est_rows"`
	ActualRows int64   `json:"actual_rows"`
	BuildSide  string  `json:"build_side,omitempty"`
}

// joinGrid is the E17 measurement grid: the flagship photo⋈spec equi-join,
// its aggregate form, a residual-predicate join, and the spatial neighbor
// self-join on the tag partition.
func joinGrid() []struct {
	Name, Q     string
	ClientMerge bool
} {
	return []struct {
		Name, Q     string
		ClientMerge bool
	}{
		{"photo⋈spec r<18", "SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 18", true},
		{"join count", "SELECT COUNT(*) FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 19", false},
		{"residual u-g>z", "SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.u - p.g > s.redshift", false},
		{"neighbors 0.5'", "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 0.5) WHERE a.objid < b.objid", false},
	}
}

// joinNode finds the join operator inside a physical plan (it may sit
// under aggregate/sort/limit wrappers).
func joinNode(n *qe.OpNode) *qe.OpNode {
	if n == nil {
		return nil
	}
	if n.Op == "hash-join" || n.Op == "neighbor-join" {
		return n
	}
	for _, c := range n.Children {
		if j := joinNode(c); j != nil {
			return j
		}
	}
	return nil
}

// fitsLoadedArchive builds the disk-archive arm of E17: the harness survey
// written as multi-HDU FITS chunk files and ingested skyload-style into an
// on-disk archive. Returns the archive and a cleanup function.
func fitsLoadedArchive(h *Harness) (*core.Archive, func(), error) {
	dir, err := os.MkdirTemp("", "sdss-e17-fits-")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	a, err := core.Create(filepath.Join(dir, "archive"), core.Options{})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	var nSpec int
	for i, ch := range h.Chunks {
		path := filepath.Join(dir, fmt.Sprintf("chunk%04d.fits", i))
		if err := load.WriteChunkFile(path, ch, 0); err != nil {
			cleanup()
			return nil, nil, err
		}
		got, st, err := load.ReadChunkFile(path)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("expt: reading %s: %w", path, err)
		}
		if len(st.Warnings) != 0 {
			cleanup()
			return nil, nil, fmt.Errorf("expt: %s read back with warnings: %v", path, st.Warnings)
		}
		if _, err := a.LoadChunk(got); err != nil {
			cleanup()
			return nil, nil, err
		}
		nSpec += st.SpecRows
	}
	a.Sort()
	if err := a.Flush(); err != nil {
		cleanup()
		return nil, nil, err
	}
	if nSpec != len(h.Spec) {
		cleanup()
		return nil, nil, fmt.Errorf("expt: FITS-loaded archive has %d spectra, harness has %d", nSpec, len(h.Spec))
	}
	return a, cleanup, nil
}

// PhotoSpecJoin is experiment E17: JOIN execution at bench scale. The same
// join grid runs on 1-shard and N-shard in-memory archives and on a disk
// archive ingested from FITS chunk files (all results cross-checked), the
// flagship query is compared against the client-side two-query merge it
// replaces, and the optimizer's estimated rows are reported against the
// actual counts from EXPLAIN ANALYZE.
func PhotoSpecJoin(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	nShards := cfg.shards()
	section(w, "E17", fmt.Sprintf("photo⋈spec join execution (1 and %d shards, FITS-loaded disk archive)", nShards))

	wide, err := core.Create("", core.Options{Shards: nShards})
	if err != nil {
		return err
	}
	if _, err := wide.LoadObjects(h.Photo, h.Spec); err != nil {
		return err
	}
	wide.Sort()

	disk, diskCleanup, err := fitsLoadedArchive(h)
	if err != nil {
		return err
	}
	defer diskCleanup()

	ctx := context.Background()
	tbl := stats.NewTable("Query", "Rows", "1 shard", fmt.Sprintf("%d shards", nShards), "FITS-loaded", "Speedup", "Est rows", "Build")
	var grid []JoinBenchResult

	for _, q := range joinGrid() {
		run := func(a *core.Archive) (time.Duration, int, error) {
			var rows int
			best, err := bestOf(func() error {
				rs, err := a.Query(ctx, q.Q)
				if err != nil {
					return err
				}
				res, err := rs.Collect()
				if err != nil {
					return err
				}
				rows = len(res)
				return nil
			})
			return best, rows, err
		}
		nT, nRows, err := run(h.Archive)
		if err != nil {
			return fmt.Errorf("expt: %s on 1 shard: %w", q.Name, err)
		}
		wT, wRows, err := run(wide)
		if err != nil {
			return fmt.Errorf("expt: %s on %d shards: %w", q.Name, nShards, err)
		}
		if nRows != wRows {
			return fmt.Errorf("expt: %s row count diverged: %d vs %d", q.Name, nRows, wRows)
		}
		dT, dRows, err := run(disk)
		if err != nil {
			return fmt.Errorf("expt: %s on the FITS-loaded archive: %w", q.Name, err)
		}
		if dRows != nRows {
			return fmt.Errorf("expt: %s on the FITS-loaded archive found %d rows, in-memory %d", q.Name, dRows, nRows)
		}

		// Estimated versus actual rows at the join operator, from an
		// analyzed run on the single-shard archive.
		prep, err := query.PrepareString(q.Q)
		if err != nil {
			return err
		}
		aplan, err := h.Archive.Engine().PlanAnalyze(prep, true)
		if err != nil {
			return err
		}
		rs, err := h.Archive.Engine().ExecutePlan(ctx, aplan, qe.ExecOptions{Analyze: true})
		if err != nil {
			return err
		}
		if _, err := rs.Collect(); err != nil {
			return err
		}
		jn := joinNode(aplan.Describe())
		res := JoinBenchResult{
			Query:       q.Q,
			Rows:        nRows,
			SingleShard: nT.Round(time.Microsecond).String(),
			Sharded:     wT.Round(time.Microsecond).String(),
			FITSLoaded:  dT.Round(time.Microsecond).String(),
			Speedup:     math.Round(float64(nT)/float64(wT)*100) / 100,
		}
		if jn != nil {
			res.EstRows = math.Round(jn.EstRows)
			res.BuildSide = jn.BuildSide
			if jn.Actual != nil {
				res.ActualRows = jn.Actual.RowsOut
			}
		}
		if q.ClientMerge {
			cm, cmRows, err := clientMergeBaseline(ctx, h.Archive)
			if err != nil {
				return err
			}
			if cmRows != nRows {
				return fmt.Errorf("expt: client merge found %d rows, join %d", cmRows, nRows)
			}
			res.ClientMerge = cm.Round(time.Microsecond).String()
		}
		tbl.AddRow(q.Name, nRows, nT.Round(time.Microsecond), wT.Round(time.Microsecond),
			dT.Round(time.Microsecond), fmt.Sprintf("%.2f×", res.Speedup), res.EstRows, res.BuildSide)
		grid = append(grid, res)
	}
	fmt.Fprint(w, tbl)

	if path := os.Getenv("SKYBENCH_JOIN_JSON"); path != "" {
		doc := struct {
			Objects int               `json:"objects"`
			Spectra int               `json:"spectra"`
			Shards  int               `json:"shards"`
			BestOf  int               `json:"best_of"`
			Env     BenchEnv          `json:"env"`
			Grid    []JoinBenchResult `json:"grid"`
		}{cfg.Objects(), len(h.Spec), nShards, BenchBestOf, Env(0), grid}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// clientMergeBaseline times the pre-JOIN workaround for the flagship
// query: select the bright photo objects, select all spectra, and match
// them by objid in application code.
func clientMergeBaseline(ctx context.Context, a *core.Archive) (time.Duration, int, error) {
	var matched int
	best, err := bestOf(func() error {
		photoRows, err := a.Query(ctx, "SELECT objid FROM photoobj WHERE r < 18")
		if err != nil {
			return err
		}
		photoRes, err := photoRows.Collect()
		if err != nil {
			return err
		}
		specRows, err := a.Query(ctx, "SELECT objid, redshift FROM specobj")
		if err != nil {
			return err
		}
		specRes, err := specRows.Collect()
		if err != nil {
			return err
		}
		bright := make(map[catalog.ObjID]bool, len(photoRes))
		for _, r := range photoRes {
			bright[r.ObjID] = true
		}
		matched = 0
		for _, s := range specRes {
			if bright[s.ObjID] {
				matched++
			}
		}
		return nil
	})
	return best, matched, err
}
