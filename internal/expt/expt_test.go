package expt

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps the experiment smoke tests fast.
func smallCfg() Config {
	return Config{Scale: 2e-5, Seed: 1, Nodes: 4}
}

func TestConfigScaling(t *testing.T) {
	c := Config{}
	if c.Objects() != 30000 {
		t.Errorf("default objects = %d, want 30000", c.Objects())
	}
	if f := c.ScaleFactor(); f != 1e4 {
		t.Errorf("default scale factor = %v", f)
	}
	tiny := Config{Scale: 1e-9}
	if tiny.Objects() != 1000 {
		t.Errorf("tiny scale objects = %d, want floor 1000", tiny.Objects())
	}
}

func TestHarnessCaching(t *testing.T) {
	cfg := smallCfg()
	a, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("harness not cached for identical config")
	}
	if a.Archive.Stats().PhotoObjects == 0 {
		t.Error("harness archive empty")
	}
}

// TestAllExperimentsRun executes every experiment at tiny scale and checks
// each produces a table. This is the integration test that every paper
// artifact is regenerable.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while; skipped in -short")
	}
	cfg := smallCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "===") {
				t.Errorf("%s produced no banner", e.ID)
			}
			if len(out) < 100 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}
