package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/qe"
	"sdss/internal/query"
	"sdss/internal/stats"
)

// zoneGridQueries is the E16 measurement grid: selective non-spatial
// predicates — the query class the zone maps and selective decode exist
// for. The photo queries carry the full weight of the 778-byte record;
// the tag queries show the gain on the compact vertical partition. run is
// substituted with a run number actually present in the dataset, making
// that predicate spatially clustered (drift-scan stripes) and genuinely
// zone-prunable.
func zoneGridQueries(run uint16) []struct{ Name, Q string } {
	return []struct{ Name, Q string }{
		{"photo r<18", "SELECT objid, r FROM photoobj WHERE r < 18"},
		{"photo class QSO", "SELECT objid FROM photoobj WHERE class = 'QSO' AND r < 19"},
		{"photo run stripe", fmt.Sprintf("SELECT COUNT(*) FROM photoobj WHERE run = %d", run)},
		{"tag r<18", "SELECT objid, r FROM tag WHERE r < 18"},
		{"tag count r<21", "SELECT COUNT(*) FROM tag WHERE r < 21"},
		{"always false", "SELECT objid FROM tag WHERE r < -5"},
	}
}

// ZoneQueryResult is one (query, shard-count) cell of BENCH_zonemap.json.
type ZoneQueryResult struct {
	Query      string  `json:"query"`
	Shards     int     `json:"shards"`
	Rows       int     `json:"rows"`
	FullDecode string  `json:"full_decode"` // pre-PR path: no zones, struct decode
	ZoneMap    string  `json:"zonemap"`     // zone pruning + selective decode
	Speedup    float64 `json:"speedup"`
	ZonePruned int     `json:"zone_pruned"`
	Candidates int     `json:"containers_total"`
}

// ZoneDecodeBench reports the per-record decode micro-measurement.
type ZoneDecodeBench struct {
	PhotoFullNs      float64 `json:"photo_full_ns"`
	PhotoSelectiveNs float64 `json:"photo_selective_ns"`
	TagFullNs        float64 `json:"tag_full_ns"`
	TagSelectiveNs   float64 `json:"tag_selective_ns"`
}

// ZoneBuildBench reports the cost and footprint of the zone maps.
type ZoneBuildBench struct {
	Containers int     `json:"containers"`
	Records    int     `json:"records"`
	RebuildMs  float64 `json:"rebuild_ms"`
	ZoneBytes  int64   `json:"zone_bytes"`
}

// ZoneMapPruning is experiment E16: the non-spatial scan path before and
// after zone-map container pruning + selective column decoding, measured on
// 1-shard and N-shard archives over the same dataset, with results
// cross-checked between the two configurations.
func ZoneMapPruning(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	nShards := cfg.shards()
	section(w, "E16", fmt.Sprintf("zone-map pruning + selective decode (1 and %d shards)", nShards))

	// The harness archive is 1-shard; build the wide one alongside.
	wide, err := core.Create("", core.Options{Shards: nShards})
	if err != nil {
		return err
	}
	if _, err := wide.LoadObjects(h.Photo, h.Spec); err != nil {
		return err
	}
	wide.Sort()
	h.Archive.Sort() // harness loads leave zones fresh, but be explicit

	run := h.Photo[len(h.Photo)/2].Run
	ctx := context.Background()
	tbl := stats.NewTable("Query", "Shards", "Rows", "Full decode", "Zone+selective", "Speedup", "Pruned")
	var grid []ZoneQueryResult

	for _, arch := range []struct {
		a      *core.Archive
		shards int
	}{{h.Archive, 1}, {wide, nShards}} {
		fast := arch.a.Engine().Clone()
		fast.NoZone, fast.FullDecode = false, false
		slow := arch.a.Engine().Clone()
		slow.NoZone, slow.FullDecode = true, true

		for _, q := range zoneGridQueries(run) {
			time4 := func(e *qe.Engine) (time.Duration, int, error) {
				best := time.Duration(math.MaxInt64)
				var rows int
				for i := 0; i < 4; i++ { // first iteration warms
					start := time.Now()
					rs, err := e.ExecuteString(ctx, q.Q)
					if err != nil {
						return 0, 0, err
					}
					res, err := rs.Collect()
					if err != nil {
						return 0, 0, err
					}
					if t := time.Since(start); i > 0 && t < best {
						best = t
					}
					rows = len(res)
				}
				return best, rows, nil
			}
			slowT, slowRows, err := time4(slow)
			if err != nil {
				return fmt.Errorf("expt: %s (full decode): %w", q.Name, err)
			}
			fastT, fastRows, err := time4(fast)
			if err != nil {
				return fmt.Errorf("expt: %s (zonemap): %w", q.Name, err)
			}
			if slowRows != fastRows {
				return fmt.Errorf("expt: %s row count diverged: full %d vs zoned %d", q.Name, slowRows, fastRows)
			}
			prep, err := query.PrepareString(q.Q)
			if err != nil {
				return err
			}
			fo, err := fast.Fanout(prep)
			if err != nil {
				return err
			}
			speedup := float64(slowT) / float64(fastT)
			tbl.AddRow(q.Name, arch.shards, fastRows,
				slowT.Round(time.Microsecond), fastT.Round(time.Microsecond),
				fmt.Sprintf("%.2f×", speedup),
				fmt.Sprintf("%d/%d", fo[0].ZonePruned, fo[0].ContainersTotal))
			grid = append(grid, ZoneQueryResult{
				Query:      q.Q,
				Shards:     arch.shards,
				Rows:       fastRows,
				FullDecode: slowT.Round(time.Microsecond).String(),
				ZoneMap:    fastT.Round(time.Microsecond).String(),
				Speedup:    math.Round(speedup*100) / 100,
				ZonePruned: fo[0].ZonePruned,
				Candidates: fo[0].ContainersTotal,
			})
		}
	}
	fmt.Fprint(w, tbl)

	decode := measureDecode(h)
	fmt.Fprintf(w, "decode ns/record: photo %.0f → %.1f, tag %.1f → %.1f (full → selective)\n",
		decode.PhotoFullNs, decode.PhotoSelectiveNs, decode.TagFullNs, decode.TagSelectiveNs)

	build := measureZoneBuild(h)
	fmt.Fprintf(w, "zone build: %d containers / %d records rebuilt in %.2f ms; %d bytes resident\n",
		build.Containers, build.Records, build.RebuildMs, build.ZoneBytes)

	if path := os.Getenv("SKYBENCH_ZONEMAP_JSON"); path != "" {
		doc := struct {
			Objects int               `json:"objects"`
			Shards  int               `json:"shards"`
			Env     BenchEnv          `json:"env"`
			Grid    []ZoneQueryResult `json:"grid"`
			Decode  ZoneDecodeBench   `json:"decode_bench"`
			Build   ZoneBuildBench    `json:"zone_build"`
		}{cfg.Objects(), nShards, Env(0), grid, decode, build}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// measureDecode times the per-record cost of full-struct decode versus a
// selective read (reset + r magnitude + objid) for photo and tag records.
func measureDecode(h *Harness) ZoneDecodeBench {
	n := len(h.Photo)
	if n > 20000 {
		n = 20000
	}
	photoRecs := make([][]byte, n)
	tagRecs := make([][]byte, n)
	for i := 0; i < n; i++ {
		photoRecs[i] = h.Photo[i].AppendTo(nil)
		tag := catalog.MakeTag(&h.Photo[i])
		tagRecs[i] = tag.AppendTo(nil)
	}
	perRecord := func(recs [][]byte, fn func(rec []byte)) float64 {
		const rounds = 3
		best := math.MaxFloat64
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for _, rec := range recs {
				fn(rec)
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(len(recs)); ns < best {
				best = ns
			}
		}
		return best
	}
	var sink float64
	var p catalog.PhotoObj
	photoFull := perRecord(photoRecs, func(rec []byte) {
		_ = p.Decode(rec)
		sink += float64(p.Mag[catalog.R])
	})
	var tg catalog.Tag
	tagFull := perRecord(tagRecs, func(rec []byte) {
		_ = tg.Decode(rec)
		sink += float64(tg.Mag[catalog.R])
	})
	prr, _ := query.NewRowReader(query.TablePhoto)
	photoSel := perRecord(photoRecs, func(rec []byte) {
		_ = prr.Reset(rec)
		sink += prr.Get(query.PhotoR)
		_ = prr.ObjID()
	})
	trr, _ := query.NewRowReader(query.TableTag)
	tagSel := perRecord(tagRecs, func(rec []byte) {
		_ = trr.Reset(rec)
		sink += trr.Get(query.TagR)
		_ = trr.ObjID()
	})
	_ = sink
	return ZoneDecodeBench{
		PhotoFullNs:      math.Round(photoFull*10) / 10,
		PhotoSelectiveNs: math.Round(photoSel*10) / 10,
		TagFullNs:        math.Round(tagFull*10) / 10,
		TagSelectiveNs:   math.Round(tagSel*10) / 10,
	}
}

// measureZoneBuild times a from-scratch zone rebuild over the harness
// archive's photo store — the one-time cost a pre-zone archive pays.
func measureZoneBuild(h *Harness) ZoneBuildBench {
	st := h.Archive.PhotoStore()
	start := time.Now()
	st.RebuildZones()
	elapsed := time.Since(start)
	return ZoneBuildBench{
		Containers: st.NumContainers(),
		Records:    int(st.NumRecords()),
		RebuildMs:  math.Round(float64(elapsed.Microseconds())/10) / 100,
		ZoneBytes:  st.ZoneBytes() + h.Archive.TagStore().ZoneBytes() + h.Archive.SpecStore().ZoneBytes(),
	}
}
