package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"sdss/internal/core"
	"sdss/internal/query"
	"sdss/internal/stats"
)

// ScaleSizeResult is one row of BENCH_scale.json's size sweep: scan-machine
// throughput and the flagship neighbor join, single-shard versus sharded,
// at one dataset size.
type ScaleSizeResult struct {
	Objects int `json:"objects"`
	// ScanRowsPerSecPerCore is full-scan throughput normalized by core
	// count — the number that must stay flat as the dataset grows.
	ScanRowsPerSecPerCore float64 `json:"scan_rows_per_sec_per_core"`
	NeighborSingle        string  `json:"neighbor_single"`
	NeighborSharded       string  `json:"neighbor_sharded"`
	NeighborSpeedup       float64 `json:"neighbor_speedup"`
	Pairs                 int     `json:"pairs"`
}

// ScaleRadiusResult is one row of the radius sweep at the top size: the
// neighbor join against a widening pair radius, with the planner's chosen
// partition depth and cardinality estimate alongside the actual pairs.
type ScaleRadiusResult struct {
	RadiusArcmin   float64 `json:"radius_arcmin"`
	Time           string  `json:"time"`
	Pairs          int     `json:"pairs"`
	PartitionDepth int     `json:"partition_depth"`
	EstRows        float64 `json:"est_rows"`
}

// scaleNeighborQuery is the flagship spatial self-join the sweep times.
func scaleNeighborQuery(radiusArcmin float64) string {
	return fmt.Sprintf("SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, %g) WHERE a.objid < b.objid", radiusArcmin)
}

// ScaleSweep is experiment E18: the scale regression pin. The configured
// size is swept from 1/32 down to full, measuring scan rows/sec/core (flat
// ⇒ the scan machine scales) and the 0.5′ neighbor self-join on 1 and N
// shards; at the top size the join is additionally swept across pair radii.
// When SKYBENCH_SCALE_JSON names a file, the rows are written there as
// BENCH_scale.json.
func ScaleSweep(cfg Config, w io.Writer) error {
	nShards := cfg.shards()
	cores := runtime.GOMAXPROCS(0)
	top := cfg.Objects()
	section(w, "E18", fmt.Sprintf("scale sweep to %d objects (%d cores, %d shards)", top, cores, nShards))

	ctx := context.Background()
	sizes := []int{top / 32, top / 8, top}
	tbl := stats.NewTable("Objects", "Scan rows/s/core", "Neighbors 1 shard", fmt.Sprintf("%d shards", nShards), "Speedup", "Pairs")
	var sizeRows []ScaleSizeResult
	var lastHarness *Harness
	for _, n := range sizes {
		sub := cfg
		sub.Scale = float64(n) / SurveyObjects
		h, err := NewHarness(sub)
		if err != nil {
			return err
		}
		lastHarness = h
		nObj := len(h.Photo)

		// Scan machine throughput: a predicate no zone can prune forces a
		// full scan of every tag record.
		scanT, err := bestOf(func() error {
			rs, err := h.Archive.Query(ctx, "SELECT COUNT(*) FROM tag WHERE r < 99")
			if err != nil {
				return err
			}
			_, err = rs.Collect()
			return err
		})
		if err != nil {
			return fmt.Errorf("expt: scan at %d objects: %w", nObj, err)
		}
		rowsPerSecPerCore := float64(nObj) / scanT.Seconds() / float64(cores)

		wide, err := core.Create("", core.Options{Shards: nShards})
		if err != nil {
			return err
		}
		if _, err := wide.LoadObjects(h.Photo, h.Spec); err != nil {
			return err
		}
		wide.Sort()

		q := scaleNeighborQuery(0.5)
		var pairs int
		runJoin := func(a *core.Archive) (time.Duration, error) {
			return bestOf(func() error {
				rs, err := a.Query(ctx, q)
				if err != nil {
					return err
				}
				res, err := rs.Collect()
				if err != nil {
					return err
				}
				pairs = len(res)
				return nil
			})
		}
		nT, err := runJoin(h.Archive)
		if err != nil {
			return fmt.Errorf("expt: neighbors at %d objects on 1 shard: %w", nObj, err)
		}
		singlePairs := pairs
		wT, err := runJoin(wide)
		if err != nil {
			return fmt.Errorf("expt: neighbors at %d objects on %d shards: %w", nObj, nShards, err)
		}
		if pairs != singlePairs {
			return fmt.Errorf("expt: neighbors at %d objects diverged: %d pairs on 1 shard, %d on %d", nObj, singlePairs, pairs, nShards)
		}
		speedup := float64(nT) / float64(wT)
		tbl.AddRow(nObj, fmt.Sprintf("%.3g", rowsPerSecPerCore), nT.Round(time.Microsecond),
			wT.Round(time.Microsecond), fmt.Sprintf("%.2f×", speedup), pairs)
		sizeRows = append(sizeRows, ScaleSizeResult{
			Objects:               nObj,
			ScanRowsPerSecPerCore: math.Round(rowsPerSecPerCore),
			NeighborSingle:        nT.Round(time.Microsecond).String(),
			NeighborSharded:       wT.Round(time.Microsecond).String(),
			NeighborSpeedup:       math.Round(speedup*100) / 100,
			Pairs:                 pairs,
		})
	}
	fmt.Fprint(w, tbl)

	// Radius sweep at the top size: join time versus pair radius, with the
	// planner's partition depth and estimate against the actual pairs.
	rtbl := stats.NewTable("Radius", "Time", "Pairs", "Depth", "Est rows")
	var radiusRows []ScaleRadiusResult
	for _, r := range []float64{0.25, 0.5, 1, 2} {
		q := scaleNeighborQuery(r)
		var pairs int
		t, err := bestOf(func() error {
			rs, err := lastHarness.Archive.Query(ctx, q)
			if err != nil {
				return err
			}
			res, err := rs.Collect()
			if err != nil {
				return err
			}
			pairs = len(res)
			return nil
		})
		if err != nil {
			return fmt.Errorf("expt: neighbors at %g': %w", r, err)
		}
		prep, err := query.PrepareString(q)
		if err != nil {
			return err
		}
		plan, err := lastHarness.Archive.Engine().Plan(prep)
		if err != nil {
			return err
		}
		jn := joinNode(plan.Describe())
		row := ScaleRadiusResult{
			RadiusArcmin: r,
			Time:         t.Round(time.Microsecond).String(),
			Pairs:        pairs,
		}
		if jn != nil {
			row.PartitionDepth = jn.PartitionDepth
			row.EstRows = math.Round(jn.EstRows)
		}
		rtbl.AddRow(fmt.Sprintf("%g'", r), t.Round(time.Microsecond), pairs, row.PartitionDepth, row.EstRows)
		radiusRows = append(radiusRows, row)
	}
	fmt.Fprint(w, rtbl)

	if path := os.Getenv("SKYBENCH_SCALE_JSON"); path != "" {
		doc := struct {
			Cores       int                 `json:"cores"`
			Shards      int                 `json:"shards"`
			BestOf      int                 `json:"best_of"`
			Env         BenchEnv            `json:"env"`
			Sizes       []ScaleSizeResult   `json:"sizes"`
			RadiusSweep []ScaleRadiusResult `json:"radius_sweep"`
		}{cores, nShards, BenchBestOf, Env(0), sizeRows, radiusRows}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}
