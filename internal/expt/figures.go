package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"sdss/internal/archive"
	"sdss/internal/catalog"
	"sdss/internal/driftscan"
	"sdss/internal/htm"
	"sdss/internal/region"
	"sdss/internal/sphere"
	"sdss/internal/stats"
)

// Table1 regenerates the paper's Table 1 (sizes of the SDSS data sets):
// per-product item counts and byte sizes, measured from the archive's real
// encodings where the product is implemented and from stated per-item
// models otherwise, extrapolated to survey scale.
func Table1(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E1 / Table 1", "Sizes of various SDSS datasets")
	st := h.Archive.Stats()
	f := cfg.ScaleFactor()

	// Modeled per-item sizes for products the archive stores externally.
	const (
		rawBytesPerObject = 133e3 // 40 TB / 3e8 objects, drift-scan pixels
		spectrumBytes     = 60e3  // 8k-bin flux+error+mask spectrum
		atlasCutoutBytes  = 1.5e3 // 25×25 px × 2 B, compressed
		skyMapTileBytes   = 2e6   // lossy-compressed 4× binned tile
		surveyDescBytes   = 1e9   // fixed metadata volume
	)
	nSpectra := float64(st.Spectra) * f
	nAtlas := float64(st.PhotoObjects) * f * 5 // five cutouts per object
	nSkyTiles := 5e5

	tbl := stats.NewTable("Product", "Paper items", "Paper size", "Ours items", "Ours size", "Basis")
	tbl.AddRow("Raw observational data", "-", "40 TB", "-",
		stats.ByteSize(rawBytesPerObject*float64(st.PhotoObjects)*f), "model: 133 KB/object of pixels")
	tbl.AddRow("Redshift Catalog", "10^6", "2 GB", stats.Count(nSpectra),
		stats.ByteSize(float64(catalog.SpecObjSize)*nSpectra+1.5e3*nSpectra),
		"measured codec + lines/errors rider")
	tbl.AddRow("Survey Description", "10^5", "1 GB", "10^5",
		stats.ByteSize(surveyDescBytes), "model: fixed metadata")
	tbl.AddRow("Simplified Catalog", "3x10^8", "60 GB", stats.Count(float64(st.TagObjects)*f),
		stats.ByteSize(float64(st.TagBytes)*f), "measured: tag store bytes")
	tbl.AddRow("1D Spectra", "10^6", "60 GB", stats.Count(nSpectra),
		stats.ByteSize(spectrumBytes*nSpectra), "model: 60 KB/spectrum")
	tbl.AddRow("Atlas Images", "10^9", "1.5 TB", stats.Count(nAtlas),
		stats.ByteSize(atlasCutoutBytes*nAtlas), "model: 1.5 KB/cutout")
	tbl.AddRow("Compressed Sky Map", "5x10^5", "1.0 TB", "5x10^5",
		stats.ByteSize(skyMapTileBytes*nSkyTiles), "model: 2 MB/tile")
	tbl.AddRow("Full photometric catalog", "3x10^8", "400 GB", stats.Count(float64(st.PhotoObjects)*f),
		stats.ByteSize(float64(st.PhotoBytes)*f), "measured: photo store bytes")
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "measured at scale %.2g (%d objects), extrapolated ×%.3g\n",
		cfg.Scale, st.PhotoObjects, f)
	return nil
}

// Figure1 exercises the drift-scan camera substitute: the pixel stream and
// reduction pipeline must sustain the camera's 8 MB/s.
func Figure1(cfg Config, w io.Writer) error {
	section(w, "E2 / Figure 1", "drift-scan camera data rate (8 MB/s requirement)")
	cam := &driftscan.Camera{Seed: cfg.Seed + 2, ObjectsPerField: 120}
	const fields = 4
	var detections, matched, bright int
	start := time.Now()
	bytes, err := cam.Strip(756, 3, fields, func(f *driftscan.Field) error {
		dets := driftscan.Reduce(f, 1000, 15, 5)
		detections += len(dets)
		m, b := driftscan.MatchTruth(f, dets, 3, 20000)
		matched += m
		bright += b
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(bytes) / elapsed.Seconds()
	tbl := stats.NewTable("Metric", "Paper", "Measured")
	tbl.AddRow("camera data rate", "8 MB/s", "(requirement)")
	tbl.AddRow("pipeline throughput", "≥ 8 MB/s", fmt.Sprintf("%.1f MB/s", rate/1e6))
	tbl.AddRow("fields processed", "-", fields)
	tbl.AddRow("raw bytes", "-", stats.ByteSize(float64(bytes)))
	tbl.AddRow("detections", "-", detections)
	tbl.AddRow("bright completeness", "-", fmt.Sprintf("%.1f%% (%d/%d)",
		100*float64(matched)/float64(max(bright, 1)), matched, bright))
	fmt.Fprint(w, tbl)
	if rate < 8e6 {
		fmt.Fprintf(w, "WARNING: pipeline below camera rate\n")
	}
	return nil
}

// Figure2 replays the archive replication pipeline on the virtual clock and
// reports per-tier latency and holdings — the data-flow diagram as numbers.
func Figure2(cfg Config, w io.Writer) error {
	section(w, "E3 / Figure 2", "archive data flow T → OA → MSA → LA → public")
	epoch := time.Date(2000, 4, 1, 0, 0, 0, 0, time.UTC)
	sim := archive.NewSim(archive.DefaultDelays(), epoch)
	const nights = 365
	const nightlyBytes = 20e9 // "about 20 GB will be arriving daily"
	for n := 0; n < nights; n++ {
		sim.Observe(epoch.Add(time.Duration(n)*archive.Day), int64(nightlyBytes))
	}
	sim.RunUntil(epoch.Add(nights * archive.Day))
	paper := map[archive.Tier]string{
		archive.Telescope:     "-",
		archive.Operational:   "1 day",
		archive.MasterScience: "~3 weeks",
		archive.Local:         "~7 weeks",
		archive.Public:        "1-2 years",
	}
	tbl := stats.NewTable("Tier", "Paper latency", "Measured latency", "Holdings @1yr", "Bytes @1yr")
	for _, tier := range archive.Tiers() {
		mean, _, _, n := sim.TierLatency(tier)
		lat := "-"
		if n > 0 && tier != archive.Telescope {
			lat = fmt.Sprintf("%.0f days", mean.Hours()/24)
		}
		chunks, bytes := sim.Holdings(tier)
		tbl.AddRow(tier.String(), paper[tier], lat, chunks, stats.ByteSize(float64(bytes)))
	}
	sim.Drain()
	fmt.Fprint(w, tbl)
	mean, _, _, _ := sim.TierLatency(archive.Public)
	fmt.Fprintf(w, "after drain: every chunk public, observation→public latency %.1f years\n",
		mean.Hours()/24/365)
	return nil
}

// Figure3 characterizes the HTM subdivision: trixel counts per level, area
// uniformity, and the cost of the recursive point classification.
func Figure3(cfg Config, w io.Writer) error {
	section(w, "E4 / Figure 3", "hierarchical subdivision of spherical triangles")
	tbl := stats.NewTable("Depth", "Trixels", "Trixel size", "Area max/min", "Lookup ns/pt")
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	points := make([]sphere.Vec3, 4096)
	for i := range points {
		z := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		r := math.Sqrt(1 - z*z)
		points[i] = sphere.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
	}
	for depth := 0; depth <= 10; depth += 2 {
		minA, maxA := math.Inf(1), 0.0
		if depth <= 6 {
			var walk func(tr htm.Triangle, d int)
			walk = func(tr htm.Triangle, d int) {
				if d == 0 {
					a := tr.Area()
					minA = math.Min(minA, a)
					maxA = math.Max(maxA, a)
					return
				}
				for _, c := range tr.Children() {
					walk(c, d-1)
				}
			}
			for f := htm.ID(8); f <= 15; f++ {
				walk(htm.FaceTriangle(f), depth)
			}
		} else {
			// Sample trixels at deep levels.
			for i := 0; i < 2000; i++ {
				id, err := htm.Lookup(points[i%len(points)], depth)
				if err != nil {
					return err
				}
				tri, err := htm.Vertices(id)
				if err != nil {
					return err
				}
				a := tri.Area()
				minA = math.Min(minA, a)
				maxA = math.Max(maxA, a)
			}
		}
		start := time.Now()
		for _, p := range points {
			if _, err := htm.Lookup(p, depth); err != nil {
				return err
			}
		}
		perPt := time.Since(start).Nanoseconds() / int64(len(points))
		meanArea := 4 * math.Pi / float64(htm.NumTrixels(depth))
		side := math.Sqrt(meanArea) / sphere.Deg
		sizeStr := fmt.Sprintf("%.2f deg", side)
		if side < 0.1 {
			sizeStr = fmt.Sprintf("%.1f arcmin", side*60)
		}
		tbl.AddRow(depth, htm.NumTrixels(depth), sizeStr,
			fmt.Sprintf("%.2f", maxA/minA), perPt)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "8 base triangles; 4-way split per level; IDs invert to depth+position exactly\n")
	return nil
}

// Figure4 runs the paper's Figure 4 query — a latitude band in one
// spherical coordinate system intersected with a latitude constraint in
// another — and reports how the hierarchy classifies triangles per level.
func Figure4(cfg Config, w io.Writer) error {
	section(w, "E5 / Figure 4", "dual-coordinate-system latitude query against the mesh")
	reg := region.LatBand(sphere.Equatorial, 20, 40).
		Intersect(region.LatBand(sphere.Galactic, -15, 15))
	const depth = 8
	cov, err := region.Cover(reg, depth)
	if err != nil {
		return err
	}
	tbl := stats.NewTable("Level", "Inside (accepted)", "Partial (descend)", "Rejected (pruned)")
	for _, ls := range cov.Levels {
		tbl.AddRow(ls.Depth, ls.Inside, ls.Partial, ls.Rejected)
	}
	fmt.Fprint(w, tbl)

	lo, hi := cov.Area()
	// Monte Carlo reference area.
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	in := 0
	const samples = 200000
	for i := 0; i < samples; i++ {
		z := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		r := math.Sqrt(1 - z*z)
		if reg.Contains(sphere.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}) {
			in++
		}
	}
	trueArea := 4 * math.Pi * float64(in) / samples
	fmt.Fprintf(w, "coverage: %d full + %d partial trixels at depth %d; ranges: %d\n",
		len(cov.Full), len(cov.Partial), depth, cov.RangeSet().Len())
	fmt.Fprintf(w, "area bounds [%.4f, %.4f] sr; Monte Carlo reference %.4f sr; precision %.1f%%\n",
		lo, hi, trueArea, 100*trueArea/hi)
	fmt.Fprintf(w, "trixels examined: %d of %d at depth %d (pruning factor %.0f×)\n",
		totalExamined(cov), htm.NumTrixels(depth), depth,
		float64(htm.NumTrixels(depth))/float64(max(totalExamined(cov), 1)))
	return nil
}

func totalExamined(cov *region.Coverage) int {
	n := 0
	for _, ls := range cov.Levels {
		n += ls.Inside + ls.Partial + ls.Rejected
	}
	return n
}
