package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/qe"
	"sdss/internal/query"
	"sdss/internal/stats"
	"sdss/internal/store"
)

// kernelGridQueries is the E19 measurement grid: the selective scans the
// compare kernels exist for. The r<18 photo cut is the acceptance query;
// the rest cover the kernel shapes (exact key-range, dictionary equality,
// prefilter+residual arithmetic) on both vertical partitions.
var kernelGridQueries = []struct{ Name, Q string }{
	{"photo r<18", "SELECT objid, r FROM photoobj WHERE r < 18"},
	{"photo conj", "SELECT objid FROM photoobj WHERE r < 19 AND class = 'GALAXY'"},
	{"photo color cut", "SELECT objid FROM photoobj WHERE u - g > 1 AND r < 20"},
	{"tag r<18", "SELECT objid, r FROM tag WHERE r < 18"},
	{"tag class QSO", "SELECT objid FROM tag WHERE class = 'QSO'"},
	{"tag count r<21", "SELECT COUNT(*) FROM tag WHERE r < 21"},
}

// KernelQueryResult is one query row of BENCH_kernels.json: the legacy row
// loop against the vectorized kernel path, with compression on and off.
type KernelQueryResult struct {
	Query         string  `json:"query"`
	Rows          int     `json:"rows"`
	RowPath       string  `json:"row_path"`             // kernels off (NoKernel)
	Kernel        string  `json:"kernel"`               // kernels + compressed blocks
	KernelRaw     string  `json:"kernel_raw"`           // kernels + forced-raw blocks
	Speedup       float64 `json:"speedup"`              // row_path / kernel
	RowNsPerRec   float64 `json:"row_ns_per_rec"`       // over records examined
	KernNsPerRec  float64 `json:"kern_ns_per_rec"`      //
	RowBytes      int64   `json:"row_bytes_scanned"`    // examined × record size
	KernelBytes   int64   `json:"kernel_bytes_decoded"` // encoded bytes touched
	KernRawBytes  int64   `json:"kernel_raw_bytes_decoded"`
	KernelName    string  `json:"kernel_name"` // "vector" or "vector+pred"
	BlocksSkipped int64   `json:"blocks_skipped"`
}

// KernelFootprint is the compressed-versus-raw container footprint of the
// benchmark archive, per store.
type KernelFootprint struct {
	PhotoEncoded int64   `json:"photo_encoded_bytes"`
	PhotoRaw     int64   `json:"photo_raw_bytes"`
	TagEncoded   int64   `json:"tag_encoded_bytes"`
	TagRaw       int64   `json:"tag_raw_bytes"`
	SpecEncoded  int64   `json:"spec_encoded_bytes"`
	SpecRaw      int64   `json:"spec_raw_bytes"`
	Ratio        float64 `json:"ratio"` // total encoded / total raw
}

// kernelArm times one query on one engine configuration: best of
// BenchBestOf instrumented runs (the first warms), returning the best
// latency plus the scan node's actuals from the final run.
func kernelArm(ctx context.Context, e *qe.Engine, q string) (best time.Duration, rows int, scan *qe.OpNode, err error) {
	prep, err := query.PrepareString(q)
	if err != nil {
		return 0, 0, nil, err
	}
	best = time.Duration(math.MaxInt64)
	for i := 0; i <= BenchBestOf; i++ {
		plan, err := e.PlanAnalyze(prep, true)
		if err != nil {
			return 0, 0, nil, err
		}
		start := time.Now()
		rs, err := e.ExecutePlan(ctx, plan, qe.ExecOptions{})
		if err != nil {
			return 0, 0, nil, err
		}
		res, err := rs.Collect()
		if err != nil {
			return 0, 0, nil, err
		}
		if t := time.Since(start); i > 0 && t < best {
			best = t
		}
		rows = len(res)
		scan = findScan(plan.Describe())
	}
	if scan == nil {
		return 0, 0, nil, fmt.Errorf("expt: %q: no scan node in plan", q)
	}
	return best, rows, scan, nil
}

// recordSizeFor maps a grid query to its table's record size — the cost of
// one row-path record visit in bytes.
func recordSizeFor(q string) int64 {
	switch {
	case strings.Contains(q, "FROM photoobj"):
		return catalog.PhotoObjSize
	case strings.Contains(q, "FROM tag"):
		return catalog.TagSize
	default:
		return catalog.SpecObjSize
	}
}

// findScan returns the first scan operator in the plan tree.
func findScan(n *qe.OpNode) *qe.OpNode {
	if n == nil {
		return nil
	}
	if n.Op == "scan" {
		return n
	}
	for _, c := range n.Children {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

// FilterKernels is experiment E19: the scan path with and without the
// vectorized compare kernels, and the kernel path with and without block
// compression — isolating the kernel's instruction savings from the
// codec's byte savings. Zone pruning and selective decode stay on in every
// arm, so the deltas are the kernels' alone. When SKYBENCH_KERNELS_JSON
// names a file, the grid and the container footprint are written there as
// BENCH_kernels.json.
func FilterKernels(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E19", "compressed columnar blocks + vectorized filter kernels")
	h.Archive.Sort()

	eng := h.Archive.Engine()
	kernelE := eng.Clone()
	rowE := eng.Clone()
	rowE.NoKernel = true
	ctx := context.Background()

	setRaw := func(a *core.Archive, raw bool) {
		for _, st := range []*store.Sharded{a.PhotoStore(), a.TagStore(), a.SpecStore()} {
			st.SetColBlkRaw(raw)
			st.RebuildColBlks()
		}
	}

	// Footprint under real encodings, before any raw-mode flips. Slabs
	// build lazily, so force them all resident first.
	var fp KernelFootprint
	for _, st := range []*store.Sharded{eng.Photo, eng.Tag, eng.Spec} {
		st.BuildColBlks()
	}
	fp.PhotoEncoded, fp.PhotoRaw = eng.Photo.ColBlkBytes()
	fp.TagEncoded, fp.TagRaw = eng.Tag.ColBlkBytes()
	fp.SpecEncoded, fp.SpecRaw = eng.Spec.ColBlkBytes()
	if raw := fp.PhotoRaw + fp.TagRaw + fp.SpecRaw; raw > 0 {
		fp.Ratio = float64(fp.PhotoEncoded+fp.TagEncoded+fp.SpecEncoded) / float64(raw)
	}

	type armOut struct {
		t    time.Duration
		rows int
		scan *qe.OpNode
	}
	grid := make([]KernelQueryResult, 0, len(kernelGridQueries))
	rowArm := make([]armOut, len(kernelGridQueries))
	kernArm := make([]armOut, len(kernelGridQueries))
	rawArm := make([]armOut, len(kernelGridQueries))
	for i, q := range kernelGridQueries {
		t, rows, scan, err := kernelArm(ctx, rowE, q.Q)
		if err != nil {
			return fmt.Errorf("expt: %s (row path): %w", q.Name, err)
		}
		rowArm[i] = armOut{t, rows, scan}
		t, rows, scan, err = kernelArm(ctx, kernelE, q.Q)
		if err != nil {
			return fmt.Errorf("expt: %s (kernel): %w", q.Name, err)
		}
		kernArm[i] = armOut{t, rows, scan}
	}
	setRaw(h.Archive, true)
	for i, q := range kernelGridQueries {
		t, rows, scan, err := kernelArm(ctx, kernelE, q.Q)
		if err != nil {
			return fmt.Errorf("expt: %s (kernel raw): %w", q.Name, err)
		}
		rawArm[i] = armOut{t, rows, scan}
	}
	setRaw(h.Archive, false)

	tbl := stats.NewTable("Query", "Rows", "Row path", "Kernel", "Kernel raw", "Speedup", "Bytes row→kern", "Kernel")
	for i, q := range kernelGridQueries {
		ro, ke, ra := rowArm[i], kernArm[i], rawArm[i]
		if ro.rows != ke.rows || ro.rows != ra.rows {
			return fmt.Errorf("expt: %s row count diverged: row %d, kernel %d, raw %d",
				q.Name, ro.rows, ke.rows, ra.rows)
		}
		examined := ro.scan.Actual.RowsIn
		rowBytes := examined * recordSizeFor(q.Q)
		speedup := float64(ro.t) / float64(ke.t)
		res := KernelQueryResult{
			Query:         q.Q,
			Rows:          ke.rows,
			RowPath:       ro.t.Round(time.Microsecond).String(),
			Kernel:        ke.t.Round(time.Microsecond).String(),
			KernelRaw:     ra.t.Round(time.Microsecond).String(),
			Speedup:       math.Round(speedup*100) / 100,
			RowBytes:      rowBytes,
			KernelBytes:   ke.scan.Actual.BytesDecoded,
			KernRawBytes:  ra.scan.Actual.BytesDecoded,
			KernelName:    ke.scan.Kernel,
			BlocksSkipped: ke.scan.Actual.BlocksSkipped,
		}
		if examined > 0 {
			res.RowNsPerRec = math.Round(float64(ro.t.Nanoseconds())/float64(examined)*10) / 10
			res.KernNsPerRec = math.Round(float64(ke.t.Nanoseconds())/float64(examined)*10) / 10
		}
		grid = append(grid, res)
		tbl.AddRow(q.Name, ke.rows,
			ro.t.Round(time.Microsecond), ke.t.Round(time.Microsecond), ra.t.Round(time.Microsecond),
			fmt.Sprintf("%.2f×", speedup),
			fmt.Sprintf("%s→%s", stats.ByteSize(float64(rowBytes)), stats.ByteSize(float64(res.KernelBytes))),
			ke.scan.Kernel)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "container footprint: photo %s/%s, tag %s/%s, spec %s/%s encoded/raw — ratio %.2f\n",
		stats.ByteSize(float64(fp.PhotoEncoded)), stats.ByteSize(float64(fp.PhotoRaw)),
		stats.ByteSize(float64(fp.TagEncoded)), stats.ByteSize(float64(fp.TagRaw)),
		stats.ByteSize(float64(fp.SpecEncoded)), stats.ByteSize(float64(fp.SpecRaw)), fp.Ratio)

	if path := os.Getenv("SKYBENCH_KERNELS_JSON"); path != "" {
		doc := struct {
			Objects   int                 `json:"objects"`
			BestOf    int                 `json:"best_of"`
			Env       BenchEnv            `json:"env"`
			Grid      []KernelQueryResult `json:"grid"`
			Footprint KernelFootprint     `json:"footprint"`
		}{cfg.Objects(), BenchBestOf, Env(0), grid, fp}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}
