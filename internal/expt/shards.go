package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sdss/internal/core"
	"sdss/internal/stats"
)

// shardGridQueries is the conformance grid the scatter-gather experiment
// (and the qe property tests) run: a plain filter, a cone, ORDER BY+LIMIT,
// and every aggregate. center(RA, Dec) is substituted per dataset.
// Deterministic marks queries whose first row is the same on every run
// (ordered or aggregate); unordered streams deliver in arrival order, so
// only their row counts are comparable.
func shardGridQueries(ra, dec float64) []struct {
	Name, Q       string
	Deterministic bool
} {
	return []struct {
		Name, Q       string
		Deterministic bool
	}{
		{"filter", "SELECT objid, r FROM tag WHERE r < 21 AND class = 'GALAXY'", false},
		{"cone", fmt.Sprintf("SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(%v, %v, 30)", ra, dec), false},
		{"order+limit", "SELECT objid, r FROM tag WHERE r < 21.5 ORDER BY r LIMIT 100", true},
		{"count", "SELECT COUNT(*) FROM tag WHERE r < 21", true},
		{"sum", "SELECT SUM(r) FROM tag WHERE r < 21", true},
		{"min", "SELECT MIN(r) FROM tag WHERE r < 21", true},
		{"max", "SELECT MAX(r) FROM tag WHERE r < 21", true},
		{"avg", "SELECT AVG(r) FROM tag WHERE r < 21", true},
	}
}

// ShardBenchResult is one row of BENCH_shards.json: a conformance-grid
// query timed on the single-shard and N-shard archives.
type ShardBenchResult struct {
	Query       string  `json:"query"`
	Rows        int     `json:"rows"`
	SingleShard string  `json:"single_shard"`
	Sharded     string  `json:"sharded"`
	Speedup     float64 `json:"speedup"`
}

// ShardScatterGather measures scatter-gather execution: the same dataset
// loaded into a 1-shard and an N-shard archive, the conformance grid run
// on both, results cross-checked, and throughput compared. When the
// SKYBENCH_SHARDS_JSON environment variable names a file, the measured
// rows are also written there as the BENCH_shards.json record.
func ShardScatterGather(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	n := cfg.shards()
	section(w, "E15", fmt.Sprintf("sharded scatter-gather (1 shard vs %d)", n))

	wide, err := core.Create("", core.Options{Shards: n})
	if err != nil {
		return err
	}
	if _, err := wide.LoadObjects(h.Photo, h.Spec); err != nil {
		return err
	}
	wide.Sort()
	narrow := h.Archive // the shared harness archive is single-shard

	ctx := context.Background()
	center := h.Photo[0]
	tbl := stats.NewTable("Query", "Rows", "1 shard", fmt.Sprintf("%d shards", n), "Speedup")
	var jsonRows []ShardBenchResult
	for _, q := range shardGridQueries(center.RA, center.Dec) {
		run := func(a *core.Archive) (time.Duration, int, float64, error) {
			var rows int
			var v0 float64
			best, err := bestOf(func() error {
				rs, err := a.Query(ctx, q.Q)
				if err != nil {
					return err
				}
				res, err := rs.Collect()
				if err != nil {
					return err
				}
				rows = len(res)
				if rows > 0 && len(res[0].Values) > 0 {
					v0 = res[0].Values[0]
				}
				return nil
			})
			return best, rows, v0, err
		}
		nT, nRows, nV, err := run(narrow)
		if err != nil {
			return fmt.Errorf("expt: %s on 1 shard: %w", q.Name, err)
		}
		wT, wRows, wV, err := run(wide)
		if err != nil {
			return fmt.Errorf("expt: %s on %d shards: %w", q.Name, n, err)
		}
		if nRows != wRows {
			return fmt.Errorf("expt: %s row count diverged: %d vs %d", q.Name, nRows, wRows)
		}
		// First values must agree on deterministic queries (to float
		// tolerance: sum/avg addition order differs across shard counts).
		if q.Deterministic && relDiff(nV, wV) > 1e-9 {
			return fmt.Errorf("expt: %s first value diverged: %v vs %v", q.Name, nV, wV)
		}
		speedup := float64(nT) / float64(wT)
		tbl.AddRow(q.Name, nRows, nT.Round(time.Microsecond), wT.Round(time.Microsecond),
			fmt.Sprintf("%.2f×", speedup))
		jsonRows = append(jsonRows, ShardBenchResult{
			Query:       q.Q,
			Rows:        nRows,
			SingleShard: nT.Round(time.Microsecond).String(),
			Sharded:     wT.Round(time.Microsecond).String(),
			Speedup:     math.Round(speedup*100) / 100,
		})
	}
	fmt.Fprint(w, tbl)
	if path := os.Getenv("SKYBENCH_SHARDS_JSON"); path != "" {
		doc := struct {
			Objects int                `json:"objects"`
			Shards  int                `json:"shards"`
			BestOf  int                `json:"best_of"`
			Env     BenchEnv           `json:"env"`
			Grid    []ShardBenchResult `json:"grid"`
		}{cfg.Objects(), n, BenchBestOf, Env(0), jsonRows}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// relDiff is the relative difference of two floats (0 when both are 0).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
