// Package expt is the experiment harness: one function per table, figure,
// and quantified claim of the paper, each regenerating the corresponding
// result on the synthetic survey. cmd/skybench prints them; the root-level
// benchmarks wrap them for `go test -bench`.
//
// Experiments run at a configurable scale of the full survey (3×10⁸
// photometric objects). Extrapolations to paper scale always state the
// factor; EXPERIMENTS.md records paper-versus-measured for every row.
package expt

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/core"
	"sdss/internal/skygen"
)

// SurveyObjects is the paper's full photometric catalog size.
const SurveyObjects = 3e8

// Config scales the experiments.
type Config struct {
	// Scale is the fraction of the full survey to generate (default 1e-4,
	// about 30,000 objects).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Nodes is the simulated cluster width (default 20, the paper's).
	Nodes int
	// Shards is the store slice count for the shared harness archive and
	// the wide side of the scatter-gather experiment (default 8 there,
	// 1 for the shared archive so the paper experiments are unchanged).
	Shards int
}

// Objects returns the synthetic catalog size at this scale.
func (c Config) Objects() int {
	s := c.Scale
	if s <= 0 {
		s = 1e-4
	}
	n := int(SurveyObjects * s)
	if n < 1000 {
		n = 1000
	}
	return n
}

// ScaleFactor returns the multiplier from measured to paper scale.
func (c Config) ScaleFactor() float64 {
	return SurveyObjects / float64(c.Objects())
}

func (c Config) nodes() int {
	if c.Nodes > 0 {
		return c.Nodes
	}
	return 20
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 8
}

// Harness holds the built archive shared by the experiments.
type Harness struct {
	Cfg     Config
	Archive *core.Archive
	// Chunks is the survey chunk by chunk (HarnessChunks of them); Photo
	// and Spec are the same rows concatenated.
	Chunks []*skygen.Chunk
	Photo  []catalog.PhotoObj
	Spec   []catalog.SpecObj
}

var (
	harnessMu    sync.Mutex
	harnessCache = map[Config]*Harness{}
)

// BenchBestOf is the repetition count of every timed measurement: each
// query runs BenchBestOf+1 times, the first warms caches and pools, and the
// best of the rest is reported. The JSON records carry the count so sub-ms
// entries are read as best-of-N, not single-shot noise.
const BenchBestOf = 4

// BenchEnv records the machine context a benchmark ran under — without it
// a committed BENCH_*.json number is unreproducible: a 4-worker speedup on
// a 1-core container legitimately reads ~1.0×.
type BenchEnv struct {
	// GoMaxProcs is the runtime's scheduler width at measurement time.
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the engine morsel-pool size the run used (0 = engine
	// default, which is GoMaxProcs).
	Workers int `json:"workers"`
	// BestOf is the repetition count behind every timing (BenchBestOf).
	BestOf int `json:"best_of"`
}

// Env captures the current benchmark environment with the given engine
// worker setting.
func Env(workers int) BenchEnv {
	return BenchEnv{GoMaxProcs: runtime.GOMAXPROCS(0), Workers: workers, BestOf: BenchBestOf}
}

// bestOf times one measured function BenchBestOf+1 times (first run warms)
// and returns the best post-warm duration.
func bestOf(run func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i <= BenchBestOf; i++ {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		if t := time.Since(start); i > 0 && t < best {
			best = t
		}
	}
	return best, nil
}

// HarnessChunks is the chunk count the harness survey is generated with.
// Chunked generation seeds per (chunk, nChunks), so anything regenerating
// the harness data chunk by chunk (the E17 disk arm) must use this count.
const HarnessChunks = 4

// NewHarness generates the survey at the configured scale and loads it into
// an in-memory archive. Harnesses are cached per Config, so a bench run
// pays generation once.
func NewHarness(cfg Config) (*Harness, error) {
	harnessMu.Lock()
	if h, ok := harnessCache[cfg]; ok {
		harnessMu.Unlock()
		return h, nil
	}
	harnessMu.Unlock()

	// Build outside the lock: generation and loading block on the archive's
	// worker channels, and holding harnessMu across them would stall every
	// concurrent experiment on one build. Two racing builders at most waste
	// one generation; the re-check below keeps the cache single-valued.
	chunks, err := skygen.Generate(skygen.Default(cfg.Seed+1, cfg.Objects()), HarnessChunks)
	if err != nil {
		return nil, err
	}
	var photo []catalog.PhotoObj
	var spec []catalog.SpecObj
	for _, ch := range chunks {
		photo = append(photo, ch.Photo...)
		spec = append(spec, ch.Spec...)
	}
	a, err := core.Create("", core.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := a.LoadObjects(photo, spec); err != nil {
		return nil, err
	}
	a.Sort()
	h := &Harness{Cfg: cfg, Archive: a, Chunks: chunks, Photo: photo, Spec: spec}
	harnessMu.Lock()
	defer harnessMu.Unlock()
	if cached, ok := harnessCache[cfg]; ok {
		return cached, nil // a racing builder won; keep the cache single-valued
	}
	harnessCache[cfg] = h
	return h, nil
}

// section prints an experiment banner.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}
