package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"sdss/internal/core"
	"sdss/internal/qe"
	"sdss/internal/query"
	"sdss/internal/stats"
)

// ParallelBenchResult is one row of BENCH_parallel.json: a query timed at
// one (gomaxprocs, shards, workers) point of the sweep, with the scheduler
// counters from an instrumented run at the same point.
type ParallelBenchResult struct {
	Query      string `json:"query"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Shards     int    `json:"shards"`
	Workers    int    `json:"workers"`
	Rows       int    `json:"rows"`
	Elapsed    string `json:"elapsed"`
	// Speedup is elapsed relative to workers=1 at the same (gomaxprocs,
	// shards, query) point.
	Speedup float64 `json:"speedup"`
	// Morsels/Steals/PoolWorkers are the leaf scans' scheduler counters
	// (summed over scan nodes) from one EXPLAIN ANALYZE run: how many work
	// units the scans split into, how many a worker stole from another
	// worker's queue, and how many pool workers touched the query.
	Morsels     int64 `json:"morsels"`
	Steals      int64 `json:"steals"`
	PoolWorkers int64 `json:"pool_workers"`
}

// parallelQueries is the E20 sweep grid: a uniform filter whose morsels
// spread evenly over the sky, and a cone whose candidate containers
// concentrate in a few trixels — with mod-N shard placement that skew
// lands most morsels on few shards, the case work stealing exists for.
func parallelQueries(ra, dec float64) []struct{ Name, Q string } {
	return []struct{ Name, Q string }{
		{"uniform", "SELECT objid, r FROM tag WHERE r < 21"},
		{"skewed-cone", fmt.Sprintf("SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(%v, %v, 30)", ra, dec)},
	}
}

// scanCounters walks an analyzed plan tree and sums the scheduler counters
// of its scan leaves.
func scanCounters(n *qe.OpNode) (morsels, steals, workers int64) {
	if n.Actual != nil && n.Op == "scan" {
		morsels += n.Actual.Morsels
		steals += n.Actual.Steals
		workers += n.Actual.Workers
	}
	for _, c := range n.Children {
		m, s, w := scanCounters(c)
		morsels, steals, workers = morsels+m, steals+s, workers+w
	}
	return
}

// ParallelMorsels measures the morsel scheduler: the sweep grid runs at
// every worker count in {1,2,4,8} on the 1-shard and N-shard archives,
// under each distinct GOMAXPROCS in {1, NumCPU}, reporting elapsed time,
// speedup over workers=1, and the scheduler's morsel/steal counters. On a
// single-core host the speedups legitimately read ~1.0× — the committed
// JSON carries gomaxprocs so the numbers are read in context. When the
// SKYBENCH_PARALLEL_JSON environment variable names a file, the rows are
// also written there as the BENCH_parallel.json record.
func ParallelMorsels(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	n := cfg.shards()
	section(w, "E20", fmt.Sprintf("morsel scheduler sweep (workers × gomaxprocs, 1 and %d shards)", n))

	wide, err := core.Create("", core.Options{Shards: n})
	if err != nil {
		return err
	}
	if _, err := wide.LoadObjects(h.Photo, h.Spec); err != nil {
		return err
	}
	wide.Sort()
	archives := []struct {
		shards int
		a      *core.Archive
	}{{1, h.Archive}, {n, wide}}

	gmps := []int{1}
	if ncpu := runtime.NumCPU(); ncpu > 1 {
		gmps = append(gmps, ncpu)
	}
	workerSweep := []int{1, 2, 4, 8}

	ctx := context.Background()
	center := h.Photo[0]
	prevGMP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevGMP)

	tbl := stats.NewTable("Query", "GMP", "Shards", "Workers", "Rows", "Elapsed", "Speedup", "Morsels", "Steals")
	var jsonRows []ParallelBenchResult
	for _, gmp := range gmps {
		runtime.GOMAXPROCS(gmp)
		for _, q := range parallelQueries(center.RA, center.Dec) {
			for _, arch := range archives {
				var base time.Duration
				for _, workers := range workerSweep {
					// A fresh engine per point: the morsel pool sizes itself
					// at its first dispatch, so Workers must be set before
					// any query runs on the engine.
					eng := &qe.Engine{
						Photo: arch.a.PhotoStore(), Tag: arch.a.TagStore(),
						Spec: arch.a.SpecStore(), Workers: workers,
					}
					var rowCount int
					best, err := bestOf(func() error {
						rs, err := eng.ExecuteString(ctx, q.Q)
						if err != nil {
							return err
						}
						res, err := rs.Collect()
						if err != nil {
							return err
						}
						rowCount = len(res)
						return nil
					})
					if err != nil {
						return fmt.Errorf("expt: %s W=%d shards=%d: %w", q.Name, workers, arch.shards, err)
					}
					// One instrumented run for the scheduler counters.
					prep, err := query.PrepareString(q.Q)
					if err != nil {
						return err
					}
					plan, err := eng.PlanAnalyze(prep, true)
					if err != nil {
						return err
					}
					rs, err := eng.ExecutePlan(ctx, plan, qe.ExecOptions{Analyze: true})
					if err != nil {
						return err
					}
					if _, err := rs.Collect(); err != nil {
						return err
					}
					morsels, steals, poolW := scanCounters(plan.Describe())
					if workers == 1 {
						base = best
					}
					speedup := float64(base) / float64(best)
					tbl.AddRow(q.Name, gmp, arch.shards, workers, rowCount,
						best.Round(time.Microsecond), fmt.Sprintf("%.2f×", speedup),
						morsels, steals)
					jsonRows = append(jsonRows, ParallelBenchResult{
						Query: q.Q, GoMaxProcs: gmp, Shards: arch.shards,
						Workers: workers, Rows: rowCount,
						Elapsed: best.Round(time.Microsecond).String(),
						Speedup: math.Round(speedup*100) / 100,
						Morsels: morsels, Steals: steals, PoolWorkers: poolW,
					})
				}
			}
		}
	}
	runtime.GOMAXPROCS(prevGMP)
	fmt.Fprint(w, tbl)
	if path := os.Getenv("SKYBENCH_PARALLEL_JSON"); path != "" {
		doc := struct {
			Objects int                   `json:"objects"`
			Shards  int                   `json:"shards"`
			BestOf  int                   `json:"best_of"`
			Env     BenchEnv              `json:"env"`
			Grid    []ParallelBenchResult `json:"grid"`
		}{cfg.Objects(), n, BenchBestOf, Env(0), jsonRows}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}
