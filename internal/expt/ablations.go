package expt

import (
	"context"
	"fmt"
	"io"
	"time"

	"sdss/internal/htm"
	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/region"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
	"sdss/internal/stats"
)

// AblationContainerDepth sweeps the clustering-unit granularity: shallower
// containers mean fewer, larger units (cheap loads, coarse pruning); deeper
// containers prune queries harder but multiply load touches. DESIGN.md
// fixes depth 5 as the default; this ablation justifies it.
func AblationContainerDepth(cfg Config, w io.Writer) error {
	section(w, "A1", "ablation: container depth (clustering-unit granularity)")
	ch, err := skygen.GenerateChunk(skygen.Default(cfg.Seed+9, cfg.Objects()), 0, 1)
	if err != nil {
		return err
	}
	center := ch.Photo[0]
	tbl := stats.NewTable("Depth", "Containers", "Load time", "Cone query", "Records touched")
	for _, depth := range []int{3, 5, 7} {
		tgt, err := load.NewTarget("", depth, 1)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := tgt.LoadChunk(ch); err != nil {
			return err
		}
		loadT := time.Since(start)
		tgt.Sort()
		engine := &qe.Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}
		q := fmt.Sprintf("SELECT COUNT(*) FROM photoobj WHERE CIRCLE(%v, %v, 15)", center.RA, center.Dec)
		var queryT time.Duration
		for i := 0; i < 3; i++ {
			s := time.Now()
			rows, err := engine.ExecuteString(context.Background(), q)
			if err != nil {
				return err
			}
			if _, err := rows.Collect(); err != nil {
				return err
			}
			if t := time.Since(s); queryT == 0 || t < queryT {
				queryT = t
			}
		}
		// Candidate records under the cone's coverage at this granularity.
		cov, err := region.Cover(region.CircleRADec(center.RA, center.Dec, 15), 10)
		if err != nil {
			return err
		}
		rs := cov.RangeSet()
		candidates := 0
		for _, cid := range tgt.Photo.Containers() {
			if rs.OverlapsTrixel(cid) {
				candidates += tgt.Photo.Container(cid).Count()
			}
		}
		tbl.AddRow(depth, tgt.Photo.NumContainers(), loadT.Round(time.Millisecond),
			queryT.Round(time.Microsecond), candidates)
	}
	fmt.Fprint(w, tbl)
	return nil
}

// AblationCoverageRanges compares the two coverage representations: sorted
// ID ranges versus an explicit leaf-trixel list. Ranges are what the
// archive stores; this quantifies why.
func AblationCoverageRanges(cfg Config, w io.Writer) error {
	section(w, "A2", "ablation: coverage as ID ranges vs explicit trixel list")
	tbl := stats.NewTable("Query", "Depth", "Leaf trixels", "Ranges", "Compression")
	queries := []struct {
		name string
		reg  *region.Region
	}{
		{"1° cone", region.CircleRADec(180, 30, 60)},
		{"10° cone", region.CircleRADec(180, 30, 600)},
		{"galactic band ±10°", region.LatBand(sphere.Galactic, -10, 10)},
		{"Figure 4 dual band", region.LatBand(sphere.Equatorial, 20, 40).
			Intersect(region.LatBand(sphere.Galactic, -15, 15))},
	}
	for _, q := range queries {
		for _, depth := range []int{8, 10} {
			cov, err := region.Cover(q.reg, depth)
			if err != nil {
				return err
			}
			rs := cov.RangeSet()
			leaves := rs.Count()
			tbl.AddRow(q.name, depth, leaves, rs.Len(),
				fmt.Sprintf("%.0f×", float64(leaves)/float64(max(rs.Len(), 1))))
		}
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "a range is 16 bytes; an explicit leaf list costs 8 bytes per trixel\n")
	return nil
}

// AblationCoverDepth sweeps the query-coverage depth: deeper coverage means
// tighter candidate sets but more classification work per query.
func AblationCoverDepth(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "A3", "ablation: coverage depth for query pruning")
	center := h.Photo[0]
	q := fmt.Sprintf("SELECT COUNT(*) FROM photoobj WHERE CIRCLE(%v, %v, 30)", center.RA, center.Dec)
	tbl := stats.NewTable("Cover depth", "Cover time", "Ranges", "Query time")
	for _, depth := range []int{6, 8, 10, 12} {
		cov, err := region.Cover(region.CircleRADec(center.RA, center.Dec, 30), depth)
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < 10; i++ {
			if _, err := region.Cover(region.CircleRADec(center.RA, center.Dec, 30), depth); err != nil {
				return err
			}
		}
		coverT := time.Since(start) / 10

		engine := &qe.Engine{
			Photo: h.Archive.PhotoStore(), Tag: h.Archive.TagStore(),
			Spec: h.Archive.SpecStore(), CoverDepth: depth,
		}
		var queryT time.Duration
		for i := 0; i < 3; i++ {
			s := time.Now()
			rows, err := engine.ExecuteString(context.Background(), q)
			if err != nil {
				return err
			}
			if _, err := rows.Collect(); err != nil {
				return err
			}
			if t := time.Since(s); queryT == 0 || t < queryT {
				queryT = t
			}
		}
		tbl.AddRow(depth, coverT.Round(time.Microsecond), cov.RangeSet().Len(),
			queryT.Round(time.Microsecond))
	}
	fmt.Fprint(w, tbl)
	return nil
}

// Experiment couples an ID to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config, io.Writer) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Table 1: dataset sizes", Table1},
		{"E2", "Figure 1: drift-scan data rate", Figure1},
		{"E3", "Figure 2: archive replication flow", Figure2},
		{"E4", "Figure 3: HTM subdivision", Figure3},
		{"E5", "Figure 4: dual-coordinate query", Figure4},
		{"E6", "scan machine scaling", ScanScaling},
		{"E7", "tag vs full records", TagVsFull},
		{"E8", "1% sample debugging", SampleDebugging},
		{"E9", "hash machine lens query", HashMachineLens},
		{"E10", "river sorting network", RiverSort},
		{"E11", "clustered data loading", DataLoading},
		{"E12", "Cartesian vs trigonometry", CartesianVsTrig},
		{"E13", "ASAP first result", ASAPFirstResult},
		{"E14", "index vs scan crossover", IndexVsScanCrossover},
		{"E15", "sharded scatter-gather", ShardScatterGather},
		{"E16", "zone-map pruning + selective decode", ZoneMapPruning},
		{"E17", "photo⋈spec join execution", PhotoSpecJoin},
		{"E18", "scale sweep", ScaleSweep},
		{"E19", "columnar blocks + filter kernels", FilterKernels},
		{"E20", "morsel scheduler sweep", ParallelMorsels},
		{"A1", "ablation: container depth", AblationContainerDepth},
		{"A2", "ablation: coverage ranges", AblationCoverageRanges},
		{"A3", "ablation: coverage depth", AblationCoverDepth},
	}
}

// htm import is load-bearing for the doc reference above.
var _ = htm.MaxDepth
