package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/cluster"
	"sdss/internal/core"
	"sdss/internal/hashm"
	"sdss/internal/htm"
	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/river"
	"sdss/internal/scan"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
	"sdss/internal/stats"
	"sdss/internal/store"
)

// perNodeRate is the paper's measured single-node disk bandwidth:
// "one node is capable of reading data at 150 MBps" [Hartman98].
const perNodeRate = 150e6

// ScanScaling measures the scan machine's aggregate bandwidth as nodes are
// added (the paper: 1 node = 150 MB/s, 20 nodes = 3 GB/s, full catalog
// every 2 minutes).
func ScanScaling(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E6", "scan machine scaling (paper: 150 MB/s/node, 3 GB/s at 20 nodes, 2 min full scan)")
	st := h.Archive.PhotoStore()
	dataBytes := float64(st.Bytes())
	tbl := stats.NewTable("Nodes", "Aggregate MB/s", "Speedup", "Scan time", "Extrapolated full-catalog scan")
	var base float64
	for _, nodes := range []int{1, 2, 4, 8, 16, cfg.nodes()} {
		fabric, err := cluster.New(nodes, perNodeRate)
		if err != nil {
			return err
		}
		m := scan.New(st, fabric)
		ctx, cancel := context.WithCancel(context.Background())
		m.Start(ctx)
		start := time.Now()
		tk := m.Submit(func(rec []byte) {})
		if err := tk.Wait(ctx); err != nil {
			cancel()
			return err
		}
		elapsed := time.Since(start)
		cancel()
		rate := dataBytes / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		fullBytes := dataBytes * cfg.ScaleFactor()
		fullScan := time.Duration(fullBytes / rate * float64(time.Second))
		tbl.AddRow(nodes, fmt.Sprintf("%.0f", rate/1e6),
			fmt.Sprintf("%.1f×", rate/base), elapsed.Round(time.Millisecond),
			fullScan.Round(time.Second))
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "catalog at this scale: %s over %d containers\n",
		stats.ByteSize(dataBytes), st.NumContainers())
	return nil
}

// TagVsFull compares the same popular-attribute search over the tag
// partition and the full photometric table (the paper: tags "occupy much
// less space, thus can be searched more than 10 times faster, if no other
// attributes are involved in the query"). The claim is about I/O volume, so
// the search runs on disk-rate-throttled scan machines — the regime the
// archive lives in ("given the amount of data, most queries will be I/O
// limited") — with the in-memory (CPU-bound) engine times alongside.
func TagVsFull(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E7", "tag objects vs full records (paper: >10× faster)")
	st := h.Archive.Stats()

	// I/O-bound: one full throttled sweep over each store.
	sweep := func(s *store.Sharded) (time.Duration, error) {
		fabric, err := cluster.New(4, perNodeRate)
		if err != nil {
			return 0, err
		}
		m := scan.New(s, fabric)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		m.Start(ctx)
		start := time.Now()
		tk := m.Submit(func(rec []byte) {})
		if err := tk.Wait(ctx); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	fullIO, err := sweep(h.Archive.PhotoStore())
	if err != nil {
		return err
	}
	tagIO, err := sweep(h.Archive.TagStore())
	if err != nil {
		return err
	}

	// CPU-bound: the in-memory engine on the same predicate.
	ctx := context.Background()
	const pred = "WHERE r < 21 AND u - g > 0.8 AND class = 'GALAXY'"
	run := func(q string) (time.Duration, float64, error) {
		best := time.Duration(math.MaxInt64)
		var n float64
		for i := 0; i < 4; i++ { // first iteration warms
			start := time.Now()
			rows, err := h.Archive.Query(ctx, q)
			if err != nil {
				return 0, 0, err
			}
			res, err := rows.Collect()
			if err != nil {
				return 0, 0, err
			}
			if t := time.Since(start); i > 0 && t < best {
				best = t
			}
			n = res[0].Values[0]
		}
		return best, n, nil
	}
	tagT, tagN, err := run("SELECT COUNT(*) FROM tag " + pred)
	if err != nil {
		return err
	}
	fullT, fullN, err := run("SELECT COUNT(*) FROM photoobj " + pred)
	if err != nil {
		return err
	}
	if tagN != fullN {
		return fmt.Errorf("expt: tag and full scans disagree: %v vs %v", tagN, fullN)
	}

	tbl := stats.NewTable("Table", "Bytes", "I/O-bound sweep", "Speedup", "In-memory query", "Speedup")
	tbl.AddRow("full photoobj", stats.ByteSize(float64(st.PhotoBytes)),
		fullIO.Round(time.Millisecond), "1.0×", fullT.Round(time.Microsecond), "1.0×")
	tbl.AddRow("tag partition", stats.ByteSize(float64(st.TagBytes)),
		tagIO.Round(time.Millisecond), fmt.Sprintf("%.1f×", float64(fullIO)/float64(tagIO)),
		tagT.Round(time.Microsecond), fmt.Sprintf("%.1f×", float64(fullT)/float64(tagT)))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "size ratio %.1f× drives the I/O-bound speedup; matching objects: %.0f\n",
		float64(st.PhotoBytes)/float64(st.TagBytes), fullN)
	return nil
}

// SampleDebugging measures the 1%-sample workflow: speedup and estimate
// accuracy (the paper: "combining partitioning and sampling converts a 2 TB
// data set into 2 gigabytes").
func SampleDebugging(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E8", "1% sample debugging (paper: 2 TB → 2 GB, ~100× lighter)")
	sampled, err := h.Archive.Sample(0.01)
	if err != nil {
		return err
	}
	ctx := context.Background()
	q := "SELECT COUNT(*) FROM photoobj WHERE r < 22 AND g - r > 0.4"
	timeCount := func(a *core.Archive) (time.Duration, float64, error) {
		start := time.Now()
		rows, err := a.Query(ctx, q)
		if err != nil {
			return 0, 0, err
		}
		res, err := rows.Collect()
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), res[0].Values[0], nil
	}
	if _, _, err := timeCount(h.Archive); err != nil { // warm
		return err
	}
	fullT, fullN, err := timeCount(h.Archive)
	if err != nil {
		return err
	}
	sampT, sampN, err := timeCount(sampled)
	if err != nil {
		return err
	}
	est := sampN * 100
	full := h.Archive.Stats()
	samp := sampled.Stats()
	tbl := stats.NewTable("Dataset", "Bytes", "Query time", "Count", "Estimate")
	tbl.AddRow("full archive", stats.ByteSize(float64(full.PhotoBytes)), fullT.Round(time.Microsecond),
		fmt.Sprintf("%.0f", fullN), "-")
	tbl.AddRow("1% sample", stats.ByteSize(float64(samp.PhotoBytes)), sampT.Round(time.Microsecond),
		fmt.Sprintf("%.0f", sampN), fmt.Sprintf("%.0f (err %.1f%%)", est, 100*math.Abs(est-fullN)/fullN))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "byte shrinkage %.0f×; query speedup %.1f×\n",
		float64(full.PhotoBytes)/float64(max64(samp.PhotoBytes, 1)),
		float64(fullT)/float64(sampT))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// HashMachineLens runs the gravitational-lens query on the hash machine and
// the naive all-pairs baseline (the paper: the hash machine can process the
// entire database in minutes; all-pairs cannot). Lens systems are planted
// in the synthetic sky so recovery is verifiable; a denser friends-of-
// friends radius exercises phase-2 worker scaling.
func HashMachineLens(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E9", "hash machine: lens query (≤10 arcsec pairs, identical colors)")
	tags, err := h.Archive.Tags()
	if err != nil {
		return err
	}
	// Plant lens systems: second images 2-6 arcsec away, equal colors.
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	nPlanted := 20
	nextID := catalog.ObjID(1) << 55
	for i := 0; i < nPlanted; i++ {
		base := tags[rng.Intn(len(tags))]
		img := base
		img.ObjID = nextID
		nextID++
		sep := (2 + 4*rng.Float64()) * sphere.Arcsec
		pos := base.Pos().Add(base.Pos().Orthogonal().Scale(sep)).Normalize()
		img.X, img.Y, img.Z = pos.X, pos.Y, pos.Z
		id, err := htm.Lookup(pos, catalog.IndexDepth)
		if err != nil {
			return err
		}
		img.HTMID = id
		dim := float32(0.5 + rng.Float64())
		for b := range img.Mag {
			img.Mag[b] += dim
		}
		tags = append(tags, img)
	}

	hcfg := hashm.Config{PairRadius: 10 * sphere.Arcsec}
	pred := hashm.ColorMatch(0.05)
	start := time.Now()
	buckets, err := hashm.Hash(tags, hcfg, nil)
	if err != nil {
		return err
	}
	hashT := time.Since(start)
	start = time.Now()
	pairs, err := hashm.Pairs(buckets, hcfg, pred)
	if err != nil {
		return err
	}
	pairT := time.Since(start)

	start = time.Now()
	naive := hashm.NaivePairs(tags, hcfg, nil, pred)
	naiveT := time.Since(start)
	if len(naive) != len(pairs) {
		return fmt.Errorf("expt: hash machine found %d pairs, naive %d", len(pairs), len(naive))
	}
	if len(pairs) < nPlanted {
		return fmt.Errorf("expt: only %d pairs found with %d planted", len(pairs), nPlanted)
	}

	tbl := stats.NewTable("Method", "Time", "Pairs", "Speedup")
	tbl.AddRow("naive all-pairs", naiveT.Round(time.Millisecond), len(naive), "1.0×")
	tbl.AddRow("hash machine (hash+compare)", (hashT + pairT).Round(time.Millisecond), len(pairs),
		fmt.Sprintf("%.0f×", float64(naiveT)/float64(hashT+pairT)))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "planted lens systems recovered: %d/%d; %d objects, %d buckets\n",
		nPlanted, nPlanted, len(tags), len(buckets))

	// Phase-2 worker scaling on a denser workload (friends-of-friends
	// linking length of 2 arcmin gives buckets enough pairwise work to
	// amortize the fan-out).
	dense := hashm.Config{BucketDepth: 6, PairRadius: 2 * sphere.Arcmin}
	denseBuckets, err := hashm.Hash(tags, dense, nil)
	if err != nil {
		return err
	}
	tbl2 := stats.NewTable("Workers", "Compare time (2' radius)", "Speedup")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		c := dense
		c.Workers = workers
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := hashm.Pairs(denseBuckets, c, nil); err != nil {
				return err
			}
			if t := time.Since(start); t < best {
				best = t
			}
		}
		if base == 0 {
			base = best
		}
		tbl2.AddRow(workers, best.Round(time.Microsecond), fmt.Sprintf("%.1f×", float64(base)/float64(best)))
	}
	fmt.Fprint(w, tbl2)
	return nil
}

// RiverSort measures the sorting-network river on full photometric records
// (the paper: current systems sort ~100 MB/s on commodity hardware). The
// records flow through the real catalog codec: runs spill to disk encoded,
// merge back decoded.
func RiverSort(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E10", "river sorting network (paper: ~100 MB/s commodity sort)")
	xs := h.Photo
	n := len(xs)
	bytes := float64(n * catalog.PhotoObjSize)
	spill := func() *river.SpillConfig[catalog.PhotoObj] {
		return &river.SpillConfig[catalog.PhotoObj]{
			RunSize: 1 << 13,
			Encode: func(v catalog.PhotoObj, buf []byte) []byte {
				return v.AppendTo(buf)
			},
			Decode: func(rec []byte) (catalog.PhotoObj, error) {
				var p catalog.PhotoObj
				err := p.Decode(rec)
				return p, err
			},
		}
	}
	// Sort by r magnitude (brightest first is the astronomer's ordering).
	key := func(p catalog.PhotoObj) float64 { return float64(p.Mag[catalog.R]) }
	less := func(a, b catalog.PhotoObj) bool { return a.Mag[catalog.R] < b.Mag[catalog.R] }
	tbl := stats.NewTable("Partitions", "Time", "MB/s", "Speedup")
	var base time.Duration
	for _, parts := range []int{1, 2, 4, 8} {
		start := time.Now()
		src := river.FromSlice(context.Background(), xs)
		// Magnitude cuts spread the counts distribution roughly evenly.
		cuts := make([]float64, parts-1)
		for i := range cuts {
			cuts[i] = 23 - 9*math.Pow(0.5, float64(i+1)) // 18.5, 20.75, ...
		}
		streams := river.RangePartition(src, key, cuts)
		sorted := make([]*river.Stream[catalog.PhotoObj], len(streams))
		for i, s := range streams {
			sorted[i] = river.Sort(s, less, spill())
		}
		// Range partitioning makes concatenation-in-cut-order a total
		// sort: drain the partitions concurrently, verify order locally,
		// and check the boundaries between partitions.
		counts := make([]int64, len(sorted))
		bounds := make([][2]float64, len(sorted))
		errs := make([]error, len(sorted))
		var wg sync.WaitGroup
		for i, s := range sorted {
			wg.Add(1)
			go func(i int, s *river.Stream[catalog.PhotoObj]) {
				defer wg.Done()
				prev := math.Inf(-1)
				first := true
				errs[i] = river.ForEach(s, func(v catalog.PhotoObj) error {
					k := key(v)
					if k < prev {
						return fmt.Errorf("partition %d out of order", i)
					}
					if first {
						bounds[i][0] = k
						first = false
					}
					prev = k
					counts[i]++
					return nil
				})
				bounds[i][1] = prev
			}(i, s)
		}
		wg.Wait()
		var total int64
		for i := range sorted {
			if errs[i] != nil {
				return errs[i]
			}
			total += counts[i]
			if i > 0 && counts[i] > 0 && counts[i-1] > 0 && bounds[i][0] < bounds[i-1][1] {
				return fmt.Errorf("expt: partition boundary violated between %d and %d", i-1, i)
			}
		}
		if total != int64(n) {
			return fmt.Errorf("expt: sort network lost elements: %d of %d", total, n)
		}
		t := time.Since(start)
		if base == 0 {
			base = t
		}
		tbl.AddRow(parts, t.Round(time.Millisecond), fmt.Sprintf("%.0f", bytes/t.Seconds()/1e6),
			fmt.Sprintf("%.1f×", float64(base)/float64(t)))
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "%d PhotoObj records (%s) through the real codec, spilled runs + merge\n",
		n, stats.ByteSize(bytes))
	return nil
}

// DataLoading compares the two-phase clustered load against record-at-a-
// time insertion (the paper: "touching each clustering unit at most once
// during a load", 20 GB arriving daily).
func DataLoading(cfg Config, w io.Writer) error {
	section(w, "E11", "data loading (paper: one touch per clustering unit, 20 GB/day)")
	ch, err := skygen.GenerateChunk(skygen.Default(cfg.Seed+7, cfg.Objects()), 0, 1)
	if err != nil {
		return err
	}
	clustered, err := load.NewTarget("", 0, 1)
	if err != nil {
		return err
	}
	start := time.Now()
	cs, err := clustered.LoadChunk(ch)
	if err != nil {
		return err
	}
	clusteredT := time.Since(start)

	naive, err := load.NewTarget("", 0, 1)
	if err != nil {
		return err
	}
	start = time.Now()
	ns, err := naive.LoadUnclustered(ch)
	if err != nil {
		return err
	}
	naiveT := time.Since(start)

	tbl := stats.NewTable("Strategy", "Container touches", "Objects", "Time", "Rate")
	tbl.AddRow("two-phase clustered", clustered.Photo.Touches(), cs.PhotoObjects,
		clusteredT.Round(time.Millisecond), fmt.Sprintf("%.0f MB/s", cs.Rate()/1e6))
	tbl.AddRow("record-at-a-time", naive.Photo.Touches(), ns.PhotoObjects,
		naiveT.Round(time.Millisecond), fmt.Sprintf("%.0f MB/s", ns.Rate()/1e6))
	fmt.Fprint(w, tbl)
	day := 20e9 / cs.Rate() / 3600
	fmt.Fprintf(w, "touch reduction %.0f×; at the clustered rate, 20 GB/day loads in %.2f h\n",
		float64(naive.Photo.Touches())/float64(max64(clustered.Photo.Touches(), 1)), day)
	return nil
}

// CartesianVsTrig times the cone membership test in Cartesian form (three
// multiplies against cos r) versus spherical trigonometry (the paper:
// "testing linear combinations of the three Cartesian coordinates instead
// of complicated trigonometric expressions").
func CartesianVsTrig(cfg Config, w io.Writer) error {
	section(w, "E12", "Cartesian dot product vs trigonometric distance")
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	const n = 1 << 20
	ras := make([]float64, n)
	decs := make([]float64, n)
	vecs := make([]sphere.Vec3, n)
	for i := 0; i < n; i++ {
		ras[i] = rng.Float64() * 2 * math.Pi
		decs[i] = math.Asin(2*rng.Float64() - 1)
		vecs[i] = sphere.FromRADec(ras[i]/sphere.Deg, decs[i]/sphere.Deg)
	}
	center := sphere.FromRADec(180, 30)
	cRA, cDec := sphere.Radians(180), sphere.Radians(30)
	radius := 10 * sphere.Arcmin
	cosR := math.Cos(radius)

	start := time.Now()
	inCart := 0
	for i := 0; i < n; i++ {
		if vecs[i].X*center.X+vecs[i].Y*center.Y+vecs[i].Z*center.Z >= cosR {
			inCart++
		}
	}
	cartT := time.Since(start)

	start = time.Now()
	inTrig := 0
	for i := 0; i < n; i++ {
		if sphere.TrigDist(ras[i], decs[i], cRA, cDec) <= radius {
			inTrig++
		}
	}
	trigT := time.Since(start)
	if inCart != inTrig {
		return fmt.Errorf("expt: cone tests disagree: %d vs %d", inCart, inTrig)
	}
	tbl := stats.NewTable("Method", "ns/object", "Total", "Speedup")
	tbl.AddRow("haversine trigonometry", trigT.Nanoseconds()/n, trigT.Round(time.Microsecond), "1.0×")
	tbl.AddRow("Cartesian dot product", cartT.Nanoseconds()/n, cartT.Round(time.Microsecond),
		fmt.Sprintf("%.1f×", float64(trigT)/float64(cartT)))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "%d points, %d in cone, identical answers\n", n, inCart)
	return nil
}

// ASAPFirstResult measures time-to-first-result with the ASAP push against
// a blocking execution (the paper: "the user starts seeing results almost
// immediately").
func ASAPFirstResult(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E13", "ASAP data push: time to first result")
	q := "SELECT objid, r FROM photoobj WHERE r < 23"
	engine := h.Archive.Engine()
	measure := func(blocking bool) (first, total time.Duration, n int, err error) {
		engine.Blocking = blocking
		defer func() { engine.Blocking = false }()
		start := time.Now()
		rows, err := engine.ExecuteString(context.Background(), q)
		if err != nil {
			return 0, 0, 0, err
		}
		for b := range rows.C {
			if first == 0 && len(b) > 0 {
				first = time.Since(start)
			}
			n += len(b)
			qe.RecycleBatch(b)
		}
		return first, time.Since(start), n, rows.Err()
	}
	if _, _, _, err := measure(false); err != nil { // warm
		return err
	}
	aFirst, aTotal, aN, err := measure(false)
	if err != nil {
		return err
	}
	bFirst, bTotal, bN, err := measure(true)
	if err != nil {
		return err
	}
	if aN != bN {
		return fmt.Errorf("expt: result counts differ: %d vs %d", aN, bN)
	}
	tbl := stats.NewTable("Mode", "First result", "Complete", "First/complete")
	tbl.AddRow("ASAP push", aFirst.Round(time.Microsecond), aTotal.Round(time.Microsecond),
		fmt.Sprintf("%.1f%%", 100*float64(aFirst)/float64(aTotal)))
	tbl.AddRow("blocking", bFirst.Round(time.Microsecond), bTotal.Round(time.Microsecond),
		fmt.Sprintf("%.1f%%", 100*float64(bFirst)/float64(bTotal)))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "%d results; ASAP delivers first row %.0f× sooner\n",
		aN, float64(bFirst)/float64(max64(int64(aFirst), 1)))
	return nil
}

// IndexVsScanCrossover sweeps cone radii to find where the HTM index stops
// paying (the paper: "even with the best indexing schemes, some queries
// must scan the entire data set").
func IndexVsScanCrossover(cfg Config, w io.Writer) error {
	h, err := NewHarness(cfg)
	if err != nil {
		return err
	}
	section(w, "E14", "index lookup vs full scan: selectivity crossover")
	engine := h.Archive.Engine()
	ctx := context.Background()
	center := h.Photo[0]
	run := func(radiusArcmin float64, noIndex bool) (time.Duration, float64, error) {
		engine.NoIndex = noIndex
		defer func() { engine.NoIndex = false }()
		q := fmt.Sprintf("SELECT COUNT(*) FROM photoobj WHERE CIRCLE(%v, %v, %g)",
			center.RA, center.Dec, radiusArcmin)
		best := time.Duration(math.MaxInt64)
		var count float64
		for i := 0; i < 3; i++ {
			start := time.Now()
			rows, err := engine.ExecuteString(ctx, q)
			if err != nil {
				return 0, 0, err
			}
			res, err := rows.Collect()
			if err != nil {
				return 0, 0, err
			}
			if t := time.Since(start); t < best {
				best = t
			}
			count = res[0].Values[0]
		}
		return best, count, nil
	}
	tbl := stats.NewTable("Cone radius", "Selectivity", "Indexed", "Full scan", "Index wins")
	total := float64(len(h.Photo))
	for _, radius := range []float64{1, 5, 20, 60, 240, 1200, 5400} {
		idxT, n1, err := run(radius, false)
		if err != nil {
			return err
		}
		scanT, n2, err := run(radius, true)
		if err != nil {
			return err
		}
		if n1 != n2 {
			return fmt.Errorf("expt: indexed and scan answers differ at %g arcmin", radius)
		}
		tbl.AddRow(fmt.Sprintf("%g arcmin", radius),
			fmt.Sprintf("%.3f%%", 100*n1/total),
			idxT.Round(time.Microsecond), scanT.Round(time.Microsecond),
			fmt.Sprintf("%v", idxT < scanT))
	}
	fmt.Fprint(w, tbl)
	return nil
}

// unused guard for the qe import when experiments evolve.
var _ = qe.DefaultCoverDepth
