package river

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func intsUpTo(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestSourceCollect(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(1000))
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("collected %d, want 1000", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestMapFilter(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(10000))
	doubled := Map(s, 4, func(x int) (int, error) { return 2 * x, nil })
	evens := Filter(doubled, 4, func(x int) bool { return x%4 == 0 })
	got, err := Collect(evens)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("got %d elements, want 5000", len(got))
	}
	for _, v := range got {
		if v%4 != 0 {
			t.Fatalf("filter leaked %d", v)
		}
	}
}

func TestMapErrorCancelsGraph(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(100000))
	boom := errors.New("boom")
	mapped := Map(s, 2, func(x int) (int, error) {
		if x == 500 {
			return 0, boom
		}
		return x, nil
	})
	_, err := Collect(mapped)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestExchangePartitions(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(20000))
	parts := Exchange(s, 4, func(x int) uint64 { return uint64(x) })
	counts := make([]int, 4)
	sums := make([]int64, 4)
	wg := make(chan struct{}, len(parts))
	for i, p := range parts {
		go func(i int, p *Stream[int]) {
			defer func() { wg <- struct{}{} }()
			vals, err := Collect(p)
			if err != nil {
				t.Error(err)
				return
			}
			counts[i] = len(vals)
			for _, v := range vals {
				sums[i] += int64(v)
			}
		}(i, p)
	}
	for range parts {
		<-wg
	}
	total, totalSum := 0, int64(0)
	for i := range counts {
		total += counts[i]
		totalSum += sums[i]
		// Hash partitioning must be roughly balanced.
		if counts[i] < 20000/4/2 || counts[i] > 20000/4*2 {
			t.Errorf("partition %d holds %d elements; badly skewed", i, counts[i])
		}
	}
	if total != 20000 {
		t.Fatalf("partitions total %d, want 20000", total)
	}
	if want := int64(20000) * 19999 / 2; totalSum != want {
		t.Fatalf("partition sum %d, want %d (elements lost or duplicated)", totalSum, want)
	}
}

func TestMergeCombines(t *testing.T) {
	ctx := context.Background()
	s := FromSlice(ctx, intsUpTo(9000))
	parts := Exchange(s, 3, func(x int) uint64 { return uint64(x) })
	merged := Merge(parts...)
	got, err := Collect(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9000 {
		t.Fatalf("merged %d, want 9000", len(got))
	}
}

func TestSortInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	s := FromSlice(context.Background(), xs)
	sorted := Sort(s, func(a, b float64) bool { return a < b }, nil)
	got, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("sorted %d, want %d", len(got), len(xs))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatal("output not sorted")
	}
}

func float64Spill(dir string, runSize int) *SpillConfig[float64] {
	return &SpillConfig[float64]{
		Dir:     dir,
		RunSize: runSize,
		Encode: func(v float64, buf []byte) []byte {
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		},
		Decode: func(rec []byte) (float64, error) {
			if len(rec) != 8 {
				return 0, fmt.Errorf("bad record length %d", len(rec))
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(rec)), nil
		},
	}
}

func TestSortExternalSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := FromSlice(context.Background(), xs)
	// Tiny runs force many spill files.
	sorted := Sort(s, func(a, b float64) bool { return a < b }, float64Spill(t.TempDir(), 1000))
	got, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("sorted %d, want %d", len(got), len(xs))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatal("external sort output not sorted")
	}
	// Same multiset: compare against in-place sort.
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestSortingNetwork(t *testing.T) {
	// The full sorting-network shape: source → range partition → parallel
	// external sorts → ordered merge. Output must be totally sorted.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	s := FromSlice(context.Background(), xs)
	cuts := []float64{25, 50, 75}
	parts := RangePartition(s, func(x float64) float64 { return x }, cuts)
	sorted := make([]*Stream[float64], len(parts))
	for i, p := range parts {
		sorted[i] = Sort(p, func(a, b float64) bool { return a < b }, float64Spill(t.TempDir(), 4000))
	}
	// Range-partitioned sorted streams concatenate in cut order; an
	// ordered merge also works and exercises MergeSorted.
	merged := MergeSorted(func(a, b float64) bool { return a < b }, sorted...)
	got, err := Collect(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("network output %d elements, want %d", len(got), len(xs))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatal("sorting network output not sorted")
	}
}

func TestRangePartitionBoundaries(t *testing.T) {
	xs := []float64{-5, 0, 10, 25, 25.0001, 60, 75, 80, 1000}
	s := FromSlice(context.Background(), xs)
	parts := RangePartition(s, func(x float64) float64 { return x }, []float64{25, 75})
	want := [][]float64{{-5, 0, 10, 25}, {25.0001, 60, 75}, {80, 1000}}
	for i, p := range parts {
		got, err := Collect(p)
		if err != nil {
			t.Fatal(err)
		}
		sort.Float64s(got)
		if len(got) != len(want[i]) {
			t.Fatalf("partition %d: %v, want %v", i, got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("partition %d: %v, want %v", i, got, want[i])
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(100000))
	boom := errors.New("sink failure")
	err := ForEach(s, func(x int) error {
		if x == 1234 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDrainCount(t *testing.T) {
	s := FromSlice(context.Background(), intsUpTo(7777))
	n, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7777 {
		t.Fatalf("drained %d", n)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := NewSource(ctx, func(emit Emit[int]) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
		}
	})
	// Read a little, then cancel; the source must stop.
	got := 0
	for b := range s.ch {
		got += len(b)
		if got > 1000 {
			cancel()
			break
		}
	}
	for range s.ch {
	}
	// Graph error must be nil (cancellation is not failure).
	if err := s.sh.firstErr(); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkRiverSortExternal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	dir := b.TempDir()
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := FromSlice(context.Background(), xs)
		sorted := Sort(s, func(a, b float64) bool { return a < b }, float64Spill(dir, 1<<15))
		if _, err := Drain(sorted); err != nil {
			b.Fatal(err)
		}
	}
}
