package river

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SpillConfig enables external sorting: when a sort node's buffer reaches
// RunSize elements it is sorted and spilled to a run file; runs are k-way
// merged at the end. Current systems sort about 100 MB/s on commodity
// hardware this way [Sort]; without a codec the node sorts entirely in
// memory.
type SpillConfig[T any] struct {
	// Dir receives run files; empty means the OS temp directory.
	Dir string
	// RunSize is the in-memory run length in elements (default 1<<16).
	RunSize int
	// Encode appends the record's encoding to buf.
	Encode func(v T, buf []byte) []byte
	// Decode parses one record.
	Decode func(rec []byte) (T, error)
}

// Sort produces the stream's elements in less-order. With a nil spill
// config the sort is in-memory; otherwise runs spill to disk and merge —
// the external merge sort at the heart of every sorting network.
func Sort[T any](s *Stream[T], less func(a, b T) bool, spill *SpillConfig[T]) *Stream[T] {
	if spill == nil || spill.Encode == nil || spill.Decode == nil {
		return sortInMemory(s, less)
	}
	return sortExternal(s, less, spill)
}

func sortInMemory[T any](s *Stream[T], less func(a, b T) bool) *Stream[T] {
	return sourceOn(s.sh, func(emit Emit[T]) error {
		var all []T
		for b := range s.ch {
			all = append(all, b...)
		}
		sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
		for _, v := range all {
			if !emit(v) {
				return nil
			}
		}
		return nil
	})
}

func sortExternal[T any](s *Stream[T], less func(a, b T) bool, spill *SpillConfig[T]) *Stream[T] {
	runSize := spill.RunSize
	if runSize <= 0 {
		runSize = 1 << 16
	}
	out := make(chan []T, 4)
	res := &Stream[T]{ch: out, sh: s.sh}
	go func() {
		defer close(out)
		dir, err := os.MkdirTemp(spill.Dir, "river-sort-*")
		if err != nil {
			s.sh.fail(fmt.Errorf("river: sort spill dir: %w", err))
			return
		}
		defer os.RemoveAll(dir)

		var runFiles []string
		buf := make([]T, 0, runSize)
		flushRun := func() error {
			if len(buf) == 0 {
				return nil
			}
			sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
			path := filepath.Join(dir, fmt.Sprintf("run%06d", len(runFiles)))
			if err := writeRun(path, buf, spill.Encode); err != nil {
				return err
			}
			runFiles = append(runFiles, path)
			buf = buf[:0]
			return nil
		}
		for b := range s.ch {
			for _, v := range b {
				buf = append(buf, v)
				if len(buf) >= runSize {
					if err := flushRun(); err != nil {
						s.sh.fail(err)
						return
					}
				}
			}
		}
		// The final partial run stays in memory.
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })

		if len(runFiles) == 0 {
			emitAll(res.sh, out, buf)
			return
		}

		// K-way merge of run files plus the in-memory tail.
		streams := make([]*Stream[T], 0, len(runFiles)+1)
		for _, path := range runFiles {
			streams = append(streams, readRun(s.sh, path, spill.Decode))
		}
		tail := buf
		streams = append(streams, sourceOn(s.sh, func(emit Emit[T]) error {
			for _, v := range tail {
				if !emit(v) {
					return nil
				}
			}
			return nil
		}))
		merged := MergeSorted(less, streams...)
		for b := range merged.ch {
			select {
			case out <- b:
			case <-s.sh.ctx.Done():
				return
			}
		}
	}()
	return res
}

func emitAll[T any](sh *shared, out chan<- []T, xs []T) {
	for start := 0; start < len(xs); start += batchSize {
		end := start + batchSize
		if end > len(xs) {
			end = len(xs)
		}
		b := make([]T, end-start)
		copy(b, xs[start:end])
		select {
		case out <- b:
		case <-sh.ctx.Done():
			return
		}
	}
}

// writeRun spills one sorted run: length-prefixed records.
func writeRun[T any](path string, xs []T, encode func(T, []byte) []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("river: creating run: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var rec []byte
	var hdr [4]byte
	for _, v := range xs {
		rec = encode(v, rec[:0])
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
		if _, err := w.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readRun streams a run file back.
func readRun[T any](sh *shared, path string, decode func([]byte) (T, error)) *Stream[T] {
	return sourceOn(sh, func(emit Emit[T]) error {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("river: opening run: %w", err)
		}
		defer f.Close()
		r := bufio.NewReaderSize(f, 1<<16)
		var hdr [4]byte
		var rec []byte
		for {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				if err == io.EOF {
					return nil
				}
				return fmt.Errorf("river: run %s: %w", path, err)
			}
			n := binary.LittleEndian.Uint32(hdr[:])
			if uint32(cap(rec)) < n {
				rec = make([]byte, n)
			}
			rec = rec[:n]
			if _, err := io.ReadFull(r, rec); err != nil {
				return fmt.Errorf("river: run %s truncated: %w", path, err)
			}
			v, err := decode(rec)
			if err != nil {
				return err
			}
			if !emit(v) {
				return nil
			}
		}
	})
}
