// Package river is the dataflow framework of the paper's third machine
// class: "we propose to let astronomers construct dataflow graphs where the
// nodes consume one or more data streams, filter and combine the data, and
// then produce one or more result streams ... executed on a river-machine
// similar to the scan and hash machine" [Arpaci-Dusseau 99].
//
// A Stream[T] is a typed, batched, cancellable data flow. Operators — Map,
// Filter, Exchange (hash partitioning), RangePartition, Sort (external
// merge sort with disk spill), MergeSorted, Merge — compose into graphs;
// every stage is amenable to partition parallelism. The simplest river
// systems are sorting networks, which is exactly what the Sort benchmark
// builds.
package river

import (
	"container/heap"
	"context"
	"sync"
)

// batchSize is the number of elements per channel message.
const batchSize = 256

// shared carries the graph-wide control state: one cancellation scope and
// the first error.
type shared struct {
	ctx    context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func (s *shared) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil && err != context.Canceled {
		s.err = err
	}
	s.mu.Unlock()
	s.cancel()
}

func (s *shared) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stream is one edge of a dataflow graph.
type Stream[T any] struct {
	ch <-chan []T
	sh *shared
}

// Emit is the producer callback handed to sources: it returns false when
// the graph has been cancelled and production should stop.
type Emit[T any] func(T) bool

// NewSource starts a graph with a producer function. The producer runs in
// its own goroutine; returning an error cancels the graph.
func NewSource[T any](ctx context.Context, produce func(emit Emit[T]) error) *Stream[T] {
	cctx, cancel := context.WithCancel(ctx)
	sh := &shared{ctx: cctx, cancel: cancel}
	return sourceOn(sh, produce)
}

func sourceOn[T any](sh *shared, produce func(emit Emit[T]) error) *Stream[T] {
	out := make(chan []T, 4)
	go func() {
		defer close(out)
		batch := make([]T, 0, batchSize)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			b := make([]T, len(batch))
			copy(b, batch)
			batch = batch[:0]
			select {
			case out <- b:
				return true
			case <-sh.ctx.Done():
				return false
			}
		}
		emit := func(v T) bool {
			batch = append(batch, v)
			if len(batch) >= batchSize {
				return flush()
			}
			return sh.ctx.Err() == nil
		}
		if err := produce(emit); err != nil {
			sh.fail(err)
			return
		}
		flush()
	}()
	return &Stream[T]{ch: out, sh: sh}
}

// FromSlice builds a source over a slice.
func FromSlice[T any](ctx context.Context, xs []T) *Stream[T] {
	return NewSource(ctx, func(emit Emit[T]) error {
		for _, x := range xs {
			if !emit(x) {
				return nil
			}
		}
		return nil
	})
}

// Map transforms elements with `workers` parallel appliers. Order is not
// preserved across workers (rivers are bags, not sequences).
func Map[A, B any](s *Stream[A], workers int, f func(A) (B, error)) *Stream[B] {
	if workers < 1 {
		workers = 1
	}
	out := make(chan []B, 4)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for batch := range s.ch {
				mapped := make([]B, 0, len(batch))
				for _, a := range batch {
					b, err := f(a)
					if err != nil {
						s.sh.fail(err)
						return
					}
					mapped = append(mapped, b)
				}
				select {
				case out <- mapped:
				case <-s.sh.ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(out) }()
	return &Stream[B]{ch: out, sh: s.sh}
}

// Filter keeps elements satisfying pred, with parallel workers.
func Filter[T any](s *Stream[T], workers int, pred func(T) bool) *Stream[T] {
	if workers < 1 {
		workers = 1
	}
	out := make(chan []T, 4)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for batch := range s.ch {
				kept := make([]T, 0, len(batch))
				for _, v := range batch {
					if pred(v) {
						kept = append(kept, v)
					}
				}
				if len(kept) == 0 {
					continue
				}
				select {
				case out <- kept:
				case <-s.sh.ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(out) }()
	return &Stream[T]{ch: out, sh: s.sh}
}

// Exchange hash-partitions the stream into n downstream streams by key —
// the repartitioning operator parallel database systems are built on
// [DeWitt92, Barclay94].
func Exchange[T any](s *Stream[T], n int, key func(T) uint64) []*Stream[T] {
	if n < 1 {
		n = 1
	}
	outs := make([]chan []T, n)
	streams := make([]*Stream[T], n)
	for i := range outs {
		outs[i] = make(chan []T, 4)
		streams[i] = &Stream[T]{ch: outs[i], sh: s.sh}
	}
	go func() {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		pending := make([][]T, n)
		flush := func(i int) bool {
			if len(pending[i]) == 0 {
				return true
			}
			b := pending[i]
			pending[i] = nil
			select {
			case outs[i] <- b:
				return true
			case <-s.sh.ctx.Done():
				return false
			}
		}
		for batch := range s.ch {
			for _, v := range batch {
				// Fibonacci hashing spreads weak keys.
				i := int((key(v) * 0x9e3779b97f4a7c15) >> 32 % uint64(n))
				pending[i] = append(pending[i], v)
				if len(pending[i]) >= batchSize && !flush(i) {
					return
				}
			}
		}
		for i := range pending {
			if !flush(i) {
				return
			}
		}
	}()
	return streams
}

// RangePartition splits the stream into len(cuts)+1 streams by key range:
// partition i receives keys in (cuts[i-1], cuts[i]]. With sorted cuts the
// concatenation of per-partition sorts is a total sort — the classic
// sorting-network layout.
func RangePartition[T any](s *Stream[T], key func(T) float64, cuts []float64) []*Stream[T] {
	n := len(cuts) + 1
	outs := make([]chan []T, n)
	streams := make([]*Stream[T], n)
	for i := range outs {
		outs[i] = make(chan []T, 4)
		streams[i] = &Stream[T]{ch: outs[i], sh: s.sh}
	}
	part := func(k float64) int {
		lo, hi := 0, len(cuts)
		for lo < hi {
			mid := (lo + hi) / 2
			if k > cuts[mid] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	go func() {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		pending := make([][]T, n)
		flush := func(i int) bool {
			if len(pending[i]) == 0 {
				return true
			}
			b := pending[i]
			pending[i] = nil
			select {
			case outs[i] <- b:
				return true
			case <-s.sh.ctx.Done():
				return false
			}
		}
		for batch := range s.ch {
			for _, v := range batch {
				i := part(key(v))
				pending[i] = append(pending[i], v)
				if len(pending[i]) >= batchSize && !flush(i) {
					return
				}
			}
		}
		for i := range pending {
			if !flush(i) {
				return
			}
		}
	}()
	return streams
}

// Merge combines streams into one, forwarding batches as they arrive
// (no ordering guarantee).
func Merge[T any](ss ...*Stream[T]) *Stream[T] {
	if len(ss) == 1 {
		return ss[0]
	}
	out := make(chan []T, 4)
	sh := ss[0].sh
	var wg sync.WaitGroup
	wg.Add(len(ss))
	for _, s := range ss {
		go func(s *Stream[T]) {
			defer wg.Done()
			for b := range s.ch {
				select {
				case out <- b:
				case <-sh.ctx.Done():
					return
				}
			}
		}(s)
	}
	go func() { wg.Wait(); close(out) }()
	return &Stream[T]{ch: out, sh: sh}
}

// mergeItem is one head element in the k-way merge heap.
type mergeItem[T any] struct {
	v      T
	src    int
	batch  []T
	offset int
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int           { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool { return h.less(h.items[i].v, h.items[j].v) }
func (h *mergeHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x any)         { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// MergeSorted combines streams that are each internally sorted by less
// into one totally ordered stream (a k-way ordered merge).
func MergeSorted[T any](less func(a, b T) bool, ss ...*Stream[T]) *Stream[T] {
	if len(ss) == 1 {
		return ss[0]
	}
	out := make(chan []T, 4)
	sh := ss[0].sh
	go func() {
		defer close(out)
		h := &mergeHeap[T]{less: less}
		// Prime the heap with the first batch of each stream.
		advance := func(src int, batch []T, off int) bool {
			if off < len(batch) {
				heap.Push(h, mergeItem[T]{v: batch[off], src: src, batch: batch, offset: off})
				return true
			}
			for b := range ss[src].ch {
				if len(b) == 0 {
					continue
				}
				heap.Push(h, mergeItem[T]{v: b[0], src: src, batch: b, offset: 0})
				return true
			}
			return false
		}
		for i := range ss {
			advance(i, nil, 0)
		}
		buf := make([]T, 0, batchSize)
		for h.Len() > 0 {
			it := heap.Pop(h).(mergeItem[T])
			buf = append(buf, it.v)
			if len(buf) >= batchSize {
				b := make([]T, len(buf))
				copy(b, buf)
				buf = buf[:0]
				select {
				case out <- b:
				case <-sh.ctx.Done():
					return
				}
			}
			advance(it.src, it.batch, it.offset+1)
		}
		if len(buf) > 0 {
			select {
			case out <- buf:
			case <-sh.ctx.Done():
			}
		}
	}()
	return &Stream[T]{ch: out, sh: sh}
}

// Collect drains the stream into a slice and surfaces the graph's error.
func Collect[T any](s *Stream[T]) ([]T, error) {
	var out []T
	for b := range s.ch {
		out = append(out, b...)
	}
	return out, s.sh.firstErr()
}

// Drain consumes the stream, counting elements.
func Drain[T any](s *Stream[T]) (int64, error) {
	var n int64
	for b := range s.ch {
		n += int64(len(b))
	}
	return n, s.sh.firstErr()
}

// ForEach applies fn to every element as it flows past.
func ForEach[T any](s *Stream[T], fn func(T) error) error {
	for b := range s.ch {
		for _, v := range b {
			if err := fn(v); err != nil {
				s.sh.fail(err)
				// Drain remaining batches so producers unblock.
				for range s.ch {
				}
				return s.sh.firstErr()
			}
		}
	}
	return s.sh.firstErr()
}
