package driftscan

import (
	"testing"
	"time"
)

func TestScanFieldDeterministic(t *testing.T) {
	cam := &Camera{Seed: 42}
	a := cam.ScanField(100, 1, 5)
	b := cam.ScanField(100, 1, 5)
	if len(a.Pixels) != CCDWidth*FieldRows {
		t.Fatalf("field has %d pixels", len(a.Pixels))
	}
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatal("pixel stream not deterministic")
		}
	}
	c := cam.ScanField(100, 1, 6)
	same := 0
	for i := range a.Pixels {
		if a.Pixels[i] == c.Pixels[i] {
			same++
		}
	}
	if same == len(a.Pixels) {
		t.Fatal("different fields produced identical pixels")
	}
}

func TestReduceFindsBrightSources(t *testing.T) {
	cam := &Camera{Seed: 7, ObjectsPerField: 80}
	f := cam.ScanField(200, 3, 0)
	dets := Reduce(f, cam.skyLevel(), cam.skySigma(), 5)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	// Completeness for bright objects (flux ≫ noise in aperture).
	matched, bright := MatchTruth(f, dets, 3, 20000)
	if bright == 0 {
		t.Fatal("no bright truth objects; generator broken")
	}
	if frac := float64(matched) / float64(bright); frac < 0.95 {
		t.Errorf("bright completeness %.2f, want ≥ 0.95 (%d/%d)", frac, matched, bright)
	}
	// False positives: detections not near any truth object must be rare.
	false_ := 0
	for _, d := range dets {
		near := false
		for _, o := range f.Truth {
			dr, dc := d.Row-o.Row, d.Col-o.Col
			if dr*dr+dc*dc <= 25 {
				near = true
				break
			}
		}
		if !near {
			false_++
		}
	}
	if false_ > len(dets)/4 {
		t.Errorf("%d of %d detections are spurious", false_, len(dets))
	}
}

func TestCentroidAccuracy(t *testing.T) {
	cam := &Camera{Seed: 9, ObjectsPerField: 30}
	f := cam.ScanField(300, 2, 1)
	dets := Reduce(f, cam.skyLevel(), cam.skySigma(), 5)
	// For each bright truth object, the matched detection's centroid must
	// land within a pixel.
	for _, o := range f.Truth {
		if o.Flux < 50000 {
			continue
		}
		bestD := 1e9
		for _, d := range dets {
			dr, dc := d.Row-o.Row, d.Col-o.Col
			if r2 := dr*dr + dc*dc; r2 < bestD {
				bestD = r2
			}
		}
		if bestD > 1 {
			t.Errorf("bright object at (%.1f, %.1f) centroid off by %.2f px", o.Row, o.Col, bestD)
		}
	}
}

func TestStripRate(t *testing.T) {
	// The pipeline must sustain well above the camera's 8 MB/s.
	cam := &Camera{Seed: 1, ObjectsPerField: 60}
	start := time.Now()
	var nDet int
	bytes, err := cam.Strip(400, 1, 3, func(f *Field) error {
		nDet += len(Reduce(f, cam.skyLevel(), cam.skySigma(), 5))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 3*FieldBytes {
		t.Fatalf("bytes = %d, want %d", bytes, 3*FieldBytes)
	}
	if nDet == 0 {
		t.Fatal("strip produced no detections")
	}
	rate := float64(bytes) / time.Since(start).Seconds()
	t.Logf("pipeline rate %.1f MB/s over %d bytes (%d detections)", rate/1e6, bytes, nDet)
	if rate < 8e6 {
		t.Errorf("pipeline rate %.1f MB/s below the camera's 8 MB/s", rate/1e6)
	}
}

func TestStripErrorPropagates(t *testing.T) {
	cam := &Camera{Seed: 1}
	wantErr := errSentinel{}
	_, err := cam.Strip(1, 1, 2, func(f *Field) error { return wantErr })
	if err == nil {
		t.Fatal("callback error swallowed")
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func BenchmarkScanAndReduce(b *testing.B) {
	cam := &Camera{Seed: 1, ObjectsPerField: 120}
	b.SetBytes(FieldBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := cam.ScanField(1, 1, uint16(i))
		Reduce(f, cam.skyLevel(), cam.skySigma(), 5)
	}
}
