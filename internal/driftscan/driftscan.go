// Package driftscan simulates the SDSS photometric camera of the paper's
// Figure 1 — the 5×6 CCD mosaic whose 120 million pixels stream 8 MB/s of
// drift-scan imaging — together with the first stage of the reduction
// pipeline (object detection and photometric measurement).
//
// The real hardware is unavailable; the simulator preserves what the
// archive cares about: the shape and rate of the pixel stream (2048-wide
// CCD rows at 16 bits/pixel, fields of 1489 rows, five filter rows per
// camera column), sky noise, and point/extended sources that the reduction
// stage must detect and measure. Ground truth is retained per field so
// detection completeness is measurable.
package driftscan

import (
	"fmt"
	"math"
	"math/rand"
)

// CCD geometry, matching the SDSS camera.
const (
	// CCDWidth is the pixel width of one imaging CCD row.
	CCDWidth = 2048
	// FieldRows is the number of rows in one field (the unit the pipeline
	// processes).
	FieldRows = 1489
	// BytesPerPixel is the raw sample width.
	BytesPerPixel = 2
	// NumCamcols is the number of camera columns (CCD columns in the
	// mosaic); each observes the same strip in 5 filters.
	NumCamcols = 6
	// PixelScale is the sky angle per pixel, arcsec.
	PixelScale = 0.4
)

// FieldBytes is the raw size of one single-filter field.
const FieldBytes = CCDWidth * FieldRows * BytesPerPixel

// TruthObject is a source injected into a simulated field.
type TruthObject struct {
	Row, Col float64 // centroid in pixels
	Flux     float64 // total counts above sky
	Sigma    float64 // Gaussian radius in pixels (PSF or extended)
}

// Field is one CCD field of simulated drift-scan data.
type Field struct {
	Run    uint16
	Camcol uint8
	Seq    uint16 // field number along the strip
	Pixels []uint16
	Truth  []TruthObject
}

// Camera generates synthetic drift-scan fields.
type Camera struct {
	// Seed makes the pixel stream reproducible.
	Seed int64
	// SkyLevel is the mean sky background in counts. Default 1000.
	SkyLevel float64
	// SkySigma is the Gaussian sky noise. Default 15.
	SkySigma float64
	// ObjectsPerField is the mean number of injected sources. Default 120.
	ObjectsPerField int
}

func (c *Camera) skyLevel() float64 {
	if c.SkyLevel > 0 {
		return c.SkyLevel
	}
	return 1000
}

func (c *Camera) skySigma() float64 {
	if c.SkySigma > 0 {
		return c.SkySigma
	}
	return 15
}

func (c *Camera) objectsPerField() int {
	if c.ObjectsPerField > 0 {
		return c.ObjectsPerField
	}
	return 120
}

// ScanField synthesizes one field: sky noise plus injected Gaussian
// sources. Generation is row-oriented, like the real drift scan.
func (c *Camera) ScanField(run uint16, camcol uint8, seq uint16) *Field {
	rng := rand.New(rand.NewSource(c.Seed ^ int64(run)<<32 ^ int64(camcol)<<24 ^ int64(seq)))
	f := &Field{
		Run: run, Camcol: camcol, Seq: seq,
		Pixels: make([]uint16, CCDWidth*FieldRows),
	}
	sky, noise := c.skyLevel(), c.skySigma()

	// Inject sources first (so their rows are known), then stream rows.
	n := c.objectsPerField()
	f.Truth = make([]TruthObject, 0, n)
	for i := 0; i < n; i++ {
		sigma := 1.2 + rng.Float64()*0.6 // PSF-dominated
		if rng.Float64() < 0.3 {
			sigma += rng.Float64() * 3 // extended source
		}
		// Steep flux function with a bright tail; faint objects dominate.
		flux := 2000 * math.Pow(10, rng.Float64()*2.2)
		f.Truth = append(f.Truth, TruthObject{
			Row:   10 + rng.Float64()*(FieldRows-20),
			Col:   10 + rng.Float64()*(CCDWidth-20),
			Flux:  flux,
			Sigma: sigma,
		})
	}

	for row := 0; row < FieldRows; row++ {
		base := row * CCDWidth
		for col := 0; col < CCDWidth; col++ {
			v := sky + rng.NormFloat64()*noise
			if v < 0 {
				v = 0
			}
			f.Pixels[base+col] = uint16(v)
		}
	}
	// Stamp sources (Gaussian profiles, truncated at 4σ).
	for _, o := range f.Truth {
		amp := o.Flux / (2 * math.Pi * o.Sigma * o.Sigma)
		r := int(4*o.Sigma) + 1
		r0, c0 := int(o.Row), int(o.Col)
		for dr := -r; dr <= r; dr++ {
			row := r0 + dr
			if row < 0 || row >= FieldRows {
				continue
			}
			for dc := -r; dc <= r; dc++ {
				col := c0 + dc
				if col < 0 || col >= CCDWidth {
					continue
				}
				dy := float64(row) - o.Row
				dx := float64(col) - o.Col
				add := amp * math.Exp(-(dx*dx+dy*dy)/(2*o.Sigma*o.Sigma))
				idx := row*CCDWidth + col
				v := float64(f.Pixels[idx]) + add
				if v > 65535 {
					v = 65535
				}
				f.Pixels[idx] = uint16(v)
			}
		}
	}
	return f
}

// Detection is one object found by the reduction stage.
type Detection struct {
	Row, Col float64 // flux-weighted centroid
	Flux     float64 // counts above sky
	NPix     int     // connected pixels above threshold
}

// Reduce runs the detection stage on a field: threshold at sky + nSigma·σ,
// group connected pixels (4-connectivity, union-find), and measure each
// group's centroid and flux. This is the "reducing and calibrating the
// data via method functions" step that feeds the Operational Archive.
func Reduce(f *Field, skyLevel, skySigma, nSigma float64) []Detection {
	threshold := skyLevel + nSigma*skySigma
	w, h := CCDWidth, FieldRows

	// Union-find over above-threshold pixels, left/up neighbors only.
	labels := make(map[int]int) // pixel index → set representative
	parent := make([]int, 0, 1024)
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			idx := row*w + col
			if float64(f.Pixels[idx]) < threshold {
				continue
			}
			id := len(parent)
			parent = append(parent, id)
			labels[idx] = id
			if col > 0 {
				if left, ok := labels[idx-1]; ok {
					union(left, id)
				}
			}
			if row > 0 {
				if up, ok := labels[idx-w]; ok {
					union(up, id)
				}
			}
		}
	}

	// Accumulate per-component moments.
	type acc struct {
		flux, rowSum, colSum float64
		n                    int
	}
	comps := make(map[int]*acc)
	for idx, id := range labels {
		root := find(id)
		a := comps[root]
		if a == nil {
			a = &acc{}
			comps[root] = a
		}
		v := float64(f.Pixels[idx]) - skyLevel
		if v < 0 {
			v = 0
		}
		a.flux += v
		a.rowSum += v * float64(idx/w)
		a.colSum += v * float64(idx%w)
		a.n++
	}
	var out []Detection
	for _, a := range comps {
		if a.n < 3 || a.flux <= 0 {
			continue // single-pixel noise spikes
		}
		out = append(out, Detection{
			Row:  a.rowSum / a.flux,
			Col:  a.colSum / a.flux,
			Flux: a.flux,
			NPix: a.n,
		})
	}
	return out
}

// MatchTruth pairs detections with injected truth objects within tol
// pixels, returning the completeness for objects brighter than minFlux.
func MatchTruth(f *Field, dets []Detection, tol, minFlux float64) (matched, truthBright int) {
	for _, o := range f.Truth {
		if o.Flux < minFlux {
			continue
		}
		truthBright++
		for _, d := range dets {
			dr := d.Row - o.Row
			dc := d.Col - o.Col
			if dr*dr+dc*dc <= tol*tol {
				matched++
				break
			}
		}
	}
	return matched, truthBright
}

// Strip runs the camera over a sequence of fields, invoking fn for each;
// it returns the total raw bytes produced. This is the sustained pixel
// stream whose rate Figure 1's 8 MB/s refers to.
func (c *Camera) Strip(run uint16, camcol uint8, nFields int, fn func(*Field) error) (int64, error) {
	var bytes int64
	for seq := 0; seq < nFields; seq++ {
		f := c.ScanField(run, camcol, uint16(seq))
		bytes += FieldBytes
		if fn != nil {
			if err := fn(f); err != nil {
				return bytes, fmt.Errorf("driftscan: field %d: %w", seq, err)
			}
		}
	}
	return bytes, nil
}
