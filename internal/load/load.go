// Package load implements the Science Archive's data-loading pipeline.
//
// The Operational Archive exports calibrated data in coherent chunks (the
// segments of sky scanned in one night). Loading follows the paper's
// two-phase design: "The chunk data is first examined to construct an
// index. This determines where each object will be located and creates a
// list of databases and containers that are needed. Then data is inserted
// into the containers in a single pass over the data objects" — so each
// clustering unit is touched at most once per chunk, which is what keeps a
// ~20 GB/day ingest rate sustainable.
//
// Alongside the full photometric records the loader maintains the tag
// vertical partition and the spectroscopic table.
package load

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/fits"
	"sdss/internal/query"
	"sdss/internal/skygen"
	"sdss/internal/store"
)

// Target is the set of stores one archive instance loads into. Each store
// may be split into N shard slices; loads write every slice in parallel
// (store.Sharded.BulkLoad) while still touching each clustering unit at
// most once.
type Target struct {
	Photo *store.Sharded
	Tag   *store.Sharded
	Spec  *store.Sharded
}

// NewTarget creates (or reopens) the three stores under dir, each split
// into shards slices (<= 1 keeps the historical single-slice layout); an
// empty dir keeps everything in memory.
func NewTarget(dir string, containerDepth, shards int) (*Target, error) {
	sub := func(name string) string {
		if dir == "" {
			return ""
		}
		return filepath.Join(dir, name)
	}
	// Every store maintains zone maps over the query schema's attributes
	// (indexed by query.AttrID), so scans can prune containers on any
	// predicate bound, not just spatial coverage — and compressed column
	// blocks over the same attribute layout, so scans that survive pruning
	// can run the vectorized filter kernels instead of the row loop.
	photo, err := store.OpenSharded(store.Options{
		Dir: sub("photo"), ContainerDepth: containerDepth,
		RecordSize: catalog.PhotoObjSize, KeyOffset: 8,
		ZoneAttrs:  query.NumAttrs(query.TablePhoto),
		ZoneValues: query.ZoneValues(query.TablePhoto),
		Columns:    query.ColumnSpecs(query.TablePhoto),
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("load: opening photo store: %w", err)
	}
	tag, err := store.OpenSharded(store.Options{
		Dir: sub("tag"), ContainerDepth: containerDepth,
		RecordSize: catalog.TagSize, KeyOffset: 8,
		ZoneAttrs:  query.NumAttrs(query.TableTag),
		ZoneValues: query.ZoneValues(query.TableTag),
		Columns:    query.ColumnSpecs(query.TableTag),
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("load: opening tag store: %w", err)
	}
	spec, err := store.OpenSharded(store.Options{
		Dir: sub("spec"), ContainerDepth: containerDepth,
		RecordSize: catalog.SpecObjSize, KeyOffset: 8,
		ZoneAttrs:  query.NumAttrs(query.TableSpec),
		ZoneValues: query.ZoneValues(query.TableSpec),
		Columns:    query.ColumnSpecs(query.TableSpec),
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("load: opening spec store: %w", err)
	}
	return &Target{Photo: photo, Tag: tag, Spec: spec}, nil
}

// Stats reports what one load did.
type Stats struct {
	PhotoObjects int
	TagObjects   int
	SpecObjects  int
	Containers   int64 // container touches across all three stores
	Bytes        int64
	Duration     time.Duration
}

// Rate returns the ingest rate in bytes per second.
func (s Stats) Rate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.Duration.Seconds()
}

// LoadChunk ingests one survey chunk: photometric objects, their derived
// tag records, and any spectra.
func (t *Target) LoadChunk(ch *skygen.Chunk) (Stats, error) {
	start := time.Now()
	touchesBefore := t.Photo.Touches() + t.Tag.Touches() + t.Spec.Touches()

	// Phase 1: build the container index — encode every object and
	// determine its destination (store.BulkLoad groups by container).
	photoRecs := make([]store.Record, len(ch.Photo))
	tagRecs := make([]store.Record, len(ch.Photo))
	var nBytes int64
	for i := range ch.Photo {
		p := &ch.Photo[i]
		photoRecs[i] = store.Record{HTMID: p.HTMID, Data: p.AppendTo(nil)}
		tag := catalog.MakeTag(p)
		tagRecs[i] = store.Record{HTMID: tag.HTMID, Data: tag.AppendTo(nil)}
		nBytes += int64(catalog.PhotoObjSize + catalog.TagSize)
	}
	specRecs := make([]store.Record, len(ch.Spec))
	for i := range ch.Spec {
		s := &ch.Spec[i]
		specRecs[i] = store.Record{HTMID: s.HTMID, Data: s.AppendTo(nil)}
		nBytes += int64(catalog.SpecObjSize)
	}

	// Phase 2: single insertion pass per store, one touch per container.
	if err := t.Photo.BulkLoad(photoRecs); err != nil {
		return Stats{}, fmt.Errorf("load: photo: %w", err)
	}
	if err := t.Tag.BulkLoad(tagRecs); err != nil {
		return Stats{}, fmt.Errorf("load: tag: %w", err)
	}
	if len(specRecs) > 0 {
		if err := t.Spec.BulkLoad(specRecs); err != nil {
			return Stats{}, fmt.Errorf("load: spec: %w", err)
		}
	}
	return Stats{
		PhotoObjects: len(ch.Photo),
		TagObjects:   len(tagRecs),
		SpecObjects:  len(ch.Spec),
		Containers:   t.Photo.Touches() + t.Tag.Touches() + t.Spec.Touches() - touchesBefore,
		Bytes:        nBytes,
		Duration:     time.Since(start),
	}, nil
}

// LoadUnclustered inserts a chunk's photometric objects one record at a
// time, defeating the container grouping. It exists as the baseline of
// experiment E11 (clustered versus naive loading) and should never be used
// for real ingest.
func (t *Target) LoadUnclustered(ch *skygen.Chunk) (Stats, error) {
	start := time.Now()
	touchesBefore := t.Photo.Touches()
	var nBytes int64
	for i := range ch.Photo {
		p := &ch.Photo[i]
		rec := store.Record{HTMID: p.HTMID, Data: p.AppendTo(nil)}
		if err := t.Photo.BulkLoad([]store.Record{rec}); err != nil {
			return Stats{}, err
		}
		nBytes += int64(catalog.PhotoObjSize)
	}
	return Stats{
		PhotoObjects: len(ch.Photo),
		Containers:   t.Photo.Touches() - touchesBefore,
		Bytes:        nBytes,
		Duration:     time.Since(start),
	}, nil
}

// Flush persists all three stores.
func (t *Target) Flush() error {
	if err := t.Photo.Flush(); err != nil {
		return err
	}
	if err := t.Tag.Flush(); err != nil {
		return err
	}
	return t.Spec.Flush()
}

// Sort orders every container in all three stores by fine HTM ID.
func (t *Target) Sort() {
	t.Photo.Sort()
	t.Tag.Sort()
	t.Spec.Sort()
}

// The EXTNAMEs of the two HDU streams a chunk file may carry. Every packet
// in a chunk stream must name one of these; anything else is a format error
// (decoding an unknown table with the photo schema would produce garbage).
const (
	ExtPhoto = "PHOTOOBJ"
	ExtSpec  = "SPECOBJ"
)

// ChunkStats reports what ReadChunkFITS found in one chunk file, including
// non-fatal compatibility warnings callers can surface.
type ChunkStats struct {
	PhotoRows int
	SpecRows  int
	Packets   int
	// Version is 2 for multi-HDU files (a SPECOBJ stream is present, even
	// if empty) and 1 for legacy photo-only files.
	Version int
	// Warnings lists non-fatal findings — today only the legacy-file note
	// that no SPECOBJ HDU exists, so the archive gains no spectra. Returned
	// rather than logged so the silent-empty-join failure mode of v1 files
	// can never recur unnoticed.
	Warnings []string
}

// WriteChunkFITS serializes a chunk as a blocked FITS stream — the
// on-the-wire format between the Operational Archive and the Science
// Archive. The photometric table streams first (EXTNAME PHOTOOBJ), then the
// spectroscopic table (EXTNAME SPECOBJ). A chunk with no spectra still
// carries one empty SPECOBJ packet, so readers can distinguish "this night
// observed no spectra" from a legacy v1 photo-only file.
func WriteChunkFITS(w io.Writer, ch *skygen.Chunk, packetRows int) error {
	sw := fits.NewStreamWriter(w, ExtPhoto, fits.PhotoColumns(), packetRows)
	for i := range ch.Photo {
		if err := sw.WriteRow(fits.PhotoRow(&ch.Photo[i])); err != nil {
			return err
		}
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	ss := fits.NewStreamWriter(w, ExtSpec, fits.SpecColumns(), packetRows)
	for i := range ch.Spec {
		if err := ss.WriteRow(fits.SpecRow(&ch.Spec[i])); err != nil {
			return err
		}
	}
	if err := ss.Flush(); err != nil {
		return err
	}
	if ss.Packets() == 0 {
		empty := &fits.Table{Name: ExtSpec, Cols: fits.SpecColumns()}
		return empty.Write(w)
	}
	return nil
}

// WriteChunkFile writes one chunk to path as a multi-HDU FITS file.
func WriteChunkFile(path string, ch *skygen.Chunk, packetRows int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChunkFITS(f, ch, packetRows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChunkFile reads one chunk file from disk via ReadChunkFITS.
func ReadChunkFile(path string) (*skygen.Chunk, ChunkStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ChunkStats{}, err
	}
	defer f.Close()
	return ReadChunkFITS(f)
}

// ReadChunkFITS reads a blocked FITS chunk stream back into a full chunk,
// dispatching each packet by its EXTNAME: PHOTOOBJ packets decode as
// photometric objects, SPECOBJ packets as spectra, and any other table name
// is a descriptive error. Legacy v1 files (photo stream only) load cleanly;
// the missing SPECOBJ HDU is reported in ChunkStats.Warnings.
func ReadChunkFITS(r io.Reader) (*skygen.Chunk, ChunkStats, error) {
	sr := fits.NewStreamReader(r)
	ch := &skygen.Chunk{}
	var st ChunkStats
	sawSpec := false
	for {
		tab, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, st, err
		}
		st.Packets++
		switch tab.Name {
		case ExtPhoto:
			for _, row := range tab.Rows {
				p, err := fits.RowPhoto(row)
				if err != nil {
					return nil, st, fmt.Errorf("load: chunk packet %d (%s): %w", st.Packets, tab.Name, err)
				}
				ch.Photo = append(ch.Photo, p)
			}
		case ExtSpec:
			sawSpec = true
			for _, row := range tab.Rows {
				s, err := fits.RowSpec(row)
				if err != nil {
					return nil, st, fmt.Errorf("load: chunk packet %d (%s): %w", st.Packets, tab.Name, err)
				}
				ch.Spec = append(ch.Spec, s)
			}
		default:
			return nil, st, fmt.Errorf("load: chunk packet %d has unknown EXTNAME %q (want %q or %q)",
				st.Packets, tab.Name, ExtPhoto, ExtSpec)
		}
	}
	if st.Packets == 0 {
		// A real v1 file always carries at least one PHOTOOBJ packet; zero
		// packets means an empty or truncated-to-nothing file, and loading
		// it as "zero records" would be silent data loss.
		return nil, st, fmt.Errorf("load: chunk stream contains no packets (empty or truncated file)")
	}
	st.PhotoRows = len(ch.Photo)
	st.SpecRows = len(ch.Spec)
	if sawSpec {
		st.Version = 2
	} else {
		st.Version = 1
		st.Warnings = append(st.Warnings,
			"no SPECOBJ HDU: legacy v1 photo-only chunk; the archive gains no spectra from this file")
	}
	return ch, st, nil
}
