package load

import (
	"bytes"
	"strings"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/fits"
	"sdss/internal/skygen"
)

func TestLoadChunk(t *testing.T) {
	ch, err := skygen.GenerateChunk(skygen.Default(1, 3000), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tgt.LoadChunk(ch)
	if err != nil {
		t.Fatal(err)
	}
	if st.PhotoObjects != len(ch.Photo) || st.TagObjects != len(ch.Photo) || st.SpecObjects != len(ch.Spec) {
		t.Errorf("stats %+v do not match chunk (%d photo, %d spec)", st, len(ch.Photo), len(ch.Spec))
	}
	if tgt.Photo.NumRecords() != int64(len(ch.Photo)) {
		t.Errorf("photo store has %d records", tgt.Photo.NumRecords())
	}
	if tgt.Tag.NumRecords() != int64(len(ch.Photo)) {
		t.Errorf("tag store has %d records", tgt.Tag.NumRecords())
	}
	if tgt.Spec.NumRecords() != int64(len(ch.Spec)) {
		t.Errorf("spec store has %d records", tgt.Spec.NumRecords())
	}
	if st.Bytes == 0 || st.Rate() <= 0 {
		t.Errorf("no bytes accounted: %+v", st)
	}
	// Tag partition must be ~12× smaller than the full table.
	ratio := float64(tgt.Photo.Bytes()) / float64(tgt.Tag.Bytes())
	if ratio < 10 {
		t.Errorf("photo/tag byte ratio = %.1f, want ≥ 10", ratio)
	}
}

func TestClusteredVsUnclusteredTouches(t *testing.T) {
	ch, err := skygen.GenerateChunk(skygen.Default(2, 2000), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := clustered.LoadChunk(ch)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.LoadUnclustered(ch); err != nil {
		t.Fatal(err)
	}
	// Compare photo-store touches only: LoadChunk also loads tag and spec
	// stores, LoadUnclustered does not.
	if naive.Photo.Touches() <= clustered.Photo.Touches() {
		t.Errorf("unclustered photo touches (%d) not worse than clustered (%d)",
			naive.Photo.Touches(), clustered.Photo.Touches())
	}
	// Clustered load touches each photo container exactly once.
	if clustered.Photo.Touches() != int64(clustered.Photo.NumContainers()) {
		t.Errorf("clustered load touched photo containers %d times for %d containers",
			clustered.Photo.Touches(), clustered.Photo.NumContainers())
	}
	_ = cs
}

func TestPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	ch, err := skygen.GenerateChunk(skygen.Default(3, 1000), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewTarget(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(ch); err != nil {
		t.Fatal(err)
	}
	if err := tgt.Flush(); err != nil {
		t.Fatal(err)
	}
	again, err := NewTarget(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Photo.NumRecords() != int64(len(ch.Photo)) {
		t.Errorf("reloaded %d photo records, want %d", again.Photo.NumRecords(), len(ch.Photo))
	}
	if again.Spec.NumRecords() != int64(len(ch.Spec)) {
		t.Errorf("reloaded %d spec records, want %d", again.Spec.NumRecords(), len(ch.Spec))
	}
}

func TestChunkFITSRoundTrip(t *testing.T) {
	ch, err := skygen.GenerateChunk(skygen.Default(4, 800), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Spec) == 0 {
		t.Fatal("chunk has no spectra; the round trip would not cover the SPECOBJ HDU")
	}
	var buf bytes.Buffer
	if err := WriteChunkFITS(&buf, ch, 100); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadChunkFITS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualData(ch) {
		t.Fatalf("chunk differs after FITS round trip (%d/%d photo, %d/%d spec rows)",
			len(got.Photo), len(ch.Photo), len(got.Spec), len(ch.Spec))
	}
	if st.Version != 2 || st.PhotoRows != len(ch.Photo) || st.SpecRows != len(ch.Spec) {
		t.Errorf("stats %+v do not match chunk (%d photo, %d spec)", st, len(ch.Photo), len(ch.Spec))
	}
	if len(st.Warnings) != 0 {
		t.Errorf("fresh multi-HDU chunk produced warnings: %v", st.Warnings)
	}
}

func TestChunkFITSEmptySpec(t *testing.T) {
	// A chunk with photo rows but zero spectra must still write a v2 file:
	// an explicit empty SPECOBJ HDU, not a legacy-looking photo-only stream.
	ch, err := skygen.GenerateChunk(skygen.Default(4, 800), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch.Spec = nil
	var buf bytes.Buffer
	if err := WriteChunkFITS(&buf, ch, 100); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadChunkFITS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualData(ch) {
		t.Fatalf("read %d photo + %d spec rows, want %d + 0",
			len(got.Photo), len(got.Spec), len(ch.Photo))
	}
	if st.Version != 2 {
		t.Errorf("empty-spec chunk read as version %d, want 2", st.Version)
	}
	if len(st.Warnings) != 0 {
		t.Errorf("empty-spec v2 chunk produced warnings: %v", st.Warnings)
	}
}

func TestChunkFITSLegacyV1(t *testing.T) {
	// A v1 file — the photo stream alone, exactly what WriteChunkFITS
	// emitted before the multi-HDU format — must load cleanly with an
	// observable warning.
	ch, err := skygen.GenerateChunk(skygen.Default(6, 600), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := fits.NewStreamWriter(&buf, ExtPhoto, fits.PhotoColumns(), 100)
	for i := range ch.Photo {
		if err := sw.WriteRow(fits.PhotoRow(&ch.Photo[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadChunkFITS(&buf)
	if err != nil {
		t.Fatalf("legacy photo-only chunk rejected: %v", err)
	}
	if len(got.Photo) != len(ch.Photo) || len(got.Spec) != 0 {
		t.Fatalf("read %d photo + %d spec rows, want %d + 0",
			len(got.Photo), len(got.Spec), len(ch.Photo))
	}
	if st.Version != 1 {
		t.Errorf("legacy chunk read as version %d, want 1", st.Version)
	}
	if len(st.Warnings) != 1 || !strings.Contains(st.Warnings[0], "no SPECOBJ HDU") {
		t.Errorf("legacy chunk warnings = %v, want one naming the missing SPECOBJ HDU", st.Warnings)
	}
}

func TestChunkFITSEmptyFile(t *testing.T) {
	// A zero-packet stream (empty or truncated-to-nothing file) must be an
	// error, not a legacy v1 chunk with zero records: an interrupted export
	// would otherwise load silently as data loss.
	_, _, err := ReadChunkFITS(bytes.NewReader(nil))
	if err == nil {
		t.Fatal("empty chunk stream accepted")
	}
	if !strings.Contains(err.Error(), "no packets") {
		t.Errorf("empty stream error %q does not explain the zero-packet condition", err)
	}
}

func TestChunkFITSUnknownExtname(t *testing.T) {
	var buf bytes.Buffer
	bogus := &fits.Table{
		Name: "GALAXYZOO",
		Cols: []fits.Column{{Name: "X", Type: fits.TypeInt32, Repeat: 1}},
		Rows: [][]any{{int32(1)}},
	}
	if err := bogus.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadChunkFITS(&buf)
	if err == nil {
		t.Fatal("unknown EXTNAME accepted")
	}
	if !strings.Contains(err.Error(), "GALAXYZOO") {
		t.Errorf("error %q does not name the offending EXTNAME", err)
	}

	// Same for a packet appearing after a valid photo stream.
	buf.Reset()
	ch, err := skygen.GenerateChunk(skygen.Default(7, 400), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteChunkFITS(&buf, ch, 100); err != nil {
		t.Fatal(err)
	}
	if err := bogus.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadChunkFITS(&buf); err == nil || !strings.Contains(err.Error(), "GALAXYZOO") {
		t.Errorf("trailing unknown HDU: err = %v, want one naming GALAXYZOO", err)
	}
}

func TestIncrementalNightlyLoads(t *testing.T) {
	// Simulate several nights of incremental loading; totals must
	// accumulate and container counts stabilize as the footprint fills.
	p := skygen.Default(5, 4000)
	tgt, err := NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	const nights = 4
	for night := 0; night < nights; night++ {
		ch, err := skygen.GenerateChunk(p, night, nights)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tgt.LoadChunk(ch); err != nil {
			t.Fatal(err)
		}
		total += len(ch.Photo)
		if tgt.Photo.NumRecords() != int64(total) {
			t.Fatalf("night %d: store has %d records, want %d", night, tgt.Photo.NumRecords(), total)
		}
	}
	var nIDs int
	seen := make(map[catalog.ObjID]bool)
	var obj catalog.PhotoObj
	err = tgt.Photo.Scan(nil, false, func(rec []byte) error {
		if err := obj.Decode(rec); err != nil {
			return err
		}
		if seen[obj.ObjID] {
			t.Fatalf("duplicate object %d after incremental loads", obj.ObjID)
		}
		seen[obj.ObjID] = true
		nIDs++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nIDs != total {
		t.Errorf("scan found %d objects, want %d", nIDs, total)
	}
}

func BenchmarkLoadChunk(b *testing.B) {
	ch, err := skygen.GenerateChunk(skygen.Default(1, 20000), 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	var bytesPerLoad int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt, err := NewTarget("", 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := tgt.LoadChunk(ch)
		if err != nil {
			b.Fatal(err)
		}
		bytesPerLoad = st.Bytes
	}
	b.SetBytes(bytesPerLoad)
}
