package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Error("zero value not empty")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Errorf("mean = %v, n = %d", w.Mean(), w.N())
	}
	// Sample variance of the set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	// Against a direct two-pass computation on random data.
	rng := rand.New(rand.NewSource(1))
	var w2 Welford
	var sum float64
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.NormFloat64()*3 + 7
		w2.Add(data[i])
		sum += data[i]
	}
	mean := sum / float64(len(data))
	var ss float64
	for _, x := range data {
		ss += (x - mean) * (x - mean)
	}
	if math.Abs(w2.Mean()-mean) > 1e-9 {
		t.Errorf("streaming mean drifted: %v vs %v", w2.Mean(), mean)
	}
	if math.Abs(w2.Var()-ss/float64(len(data)-1)) > 1e-6 {
		t.Errorf("streaming var drifted")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9
	}
	h.Add(-1)
	h.Add(10) // exactly Hi counts as overflow
	h.Add(100)
	if h.Total() != 103 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	for i, c := range h.Bins {
		if c != 10 {
			t.Errorf("bin %d = %d, want 10", i, c)
		}
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	h.Add(3.3)
	if got := h.Mode(); got != 3.5 {
		t.Errorf("Mode = %v, want 3.5", got)
	}
	// Degenerate bin count.
	h0 := NewHistogram(0, 1, 0)
	h0.Add(0.5)
	if len(h0.Bins) != 1 || h0.Bins[0] != 1 {
		t.Error("single-bin fallback broken")
	}
}

func TestQuantile(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.75); got != 7.5 {
		t.Errorf("interp = %v", got)
	}
}

func TestByteSizeAndCount(t *testing.T) {
	cases := map[float64]string{
		512:    "512 B",
		2048:   "2.0 KB",
		3.5e6:  "3.5 MB",
		4.2e9:  "4.2 GB",
		1.5e12: "1.5 TB",
	}
	for in, want := range cases {
		if got := ByteSize(in); got != want {
			t.Errorf("ByteSize(%v) = %q, want %q", in, got, want)
		}
	}
	if got := Count(3e8); got != "3x10^8" {
		t.Errorf("Count(3e8) = %q", got)
	}
	if got := Count(1e6); got != "10^6" {
		t.Errorf("Count(1e6) = %q", got)
	}
	if got := Count(0); got != "0" {
		t.Errorf("Count(0) = %q", got)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.AddRow("alpha", 42)
	tbl.AddRow("a-much-longer-name", 3.14159)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Errorf("float row formatting: %q", lines[3])
	}
	// Columns align: the separator must be at least as wide as the
	// longest cell.
	if len(lines[1]) < len("a-much-longer-name") {
		t.Error("separator narrower than content")
	}
}
