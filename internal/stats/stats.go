// Package stats provides the small statistics and reporting toolkit used by
// the benchmark harness: streaming moments, histograms, quantiles, byte-size
// formatting and aligned text tables for regenerating the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates streaming mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 for no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for no observations).
func (w *Welford) Max() float64 { return w.max }

// Histogram counts observations in equal-width bins over [Lo, Hi).
// Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Bins        []int64
	Under, Over int64
	total       int64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // x == Hi after float rounding
			i--
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Bins {
		if c > h.Bins[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of a sample, interpolating
// between order statistics. The input slice is sorted in place.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(xs) {
		return xs[i]
	}
	return xs[i]*(1-frac) + xs[i+1]*frac
}

// ByteSize formats a byte count in the units the paper's Table 1 uses.
func ByteSize(n float64) string {
	switch {
	case n >= 1e12:
		return fmt.Sprintf("%.1f TB", n/1e12)
	case n >= 1e9:
		return fmt.Sprintf("%.1f GB", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1f MB", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f KB", n/1e3)
	default:
		return fmt.Sprintf("%.0f B", n)
	}
}

// Count formats an item count in scientific shorthand (10^k multiples), the
// style of the paper's Table 1 ("3x10^8").
func Count(n float64) string {
	if n <= 0 {
		return "0"
	}
	exp := math.Floor(math.Log10(n))
	mant := n / math.Pow(10, exp)
	if math.Abs(mant-1) < 0.05 {
		return fmt.Sprintf("10^%.0f", exp)
	}
	return fmt.Sprintf("%.0fx10^%.0f", mant, exp)
}

// Table accumulates rows and renders an aligned text table, the output
// format of the skybench harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
