package region

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/sphere"
)

func randUnit(rng *rand.Rand) sphere.Vec3 {
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	r := math.Sqrt(1 - z*z)
	return sphere.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
}

func TestHalfspaceBasics(t *testing.T) {
	h := NewHalfspace(sphere.Vec3{Z: 1}, sphere.Radians(30))
	if !h.Contains(sphere.Vec3{Z: 1}) {
		t.Error("cap must contain its center")
	}
	if h.Contains(sphere.FromRADec(0, 45)) {
		t.Error("point at 45° from pole inside 30° cap")
	}
	if !h.Contains(sphere.FromRADec(0, 65)) {
		t.Error("point at 25° from pole outside 30° cap")
	}
	if got := h.Radius(); math.Abs(got-sphere.Radians(30)) > 1e-12 {
		t.Errorf("Radius = %v, want 30°", sphere.Degrees(got))
	}
	if (Halfspace{Offset: 1.5}).IsEmpty() != true {
		t.Error("offset 1.5 must be empty")
	}
	if (Halfspace{Offset: -1}).IsFull() != true {
		t.Error("offset -1 must be full")
	}
}

func TestCircleMembership(t *testing.T) {
	// Objects strictly inside/outside a cone, checked against angular
	// distance — the "find objects within 5 arcsec" primitive.
	center := sphere.FromRADec(180, 30)
	r := 5 * sphere.Arcsec
	reg := Circle(center, r)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := randUnit(rng)
		want := sphere.Dist(center, v) <= r
		if got := reg.Contains(v); got != want {
			if math.Abs(sphere.Dist(center, v)-r) > 1e-12 {
				t.Fatalf("circle membership mismatch at distance %v", sphere.Dist(center, v))
			}
		}
	}
}

func TestLatBand(t *testing.T) {
	for _, f := range sphere.Frames() {
		reg := LatBand(f, -10, 25)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1000; i++ {
			v := randUnit(rng)
			_, lat := sphere.ToLonLat(f, v)
			want := lat >= -10 && lat <= 25
			if got := reg.Contains(v); got != want {
				if math.Abs(lat+10) > 1e-9 && math.Abs(lat-25) > 1e-9 {
					t.Fatalf("%v band mismatch at lat %v", f, lat)
				}
			}
		}
	}
}

func TestRectRADec(t *testing.T) {
	cases := []struct{ raLo, raHi, decLo, decHi float64 }{
		{10, 40, -20, 35},
		{350, 20, -5, 5},   // wraps through RA 0
		{100, 300, 40, 60}, // wider than 180°, split internally
	}
	rng := rand.New(rand.NewSource(3))
	for _, c := range cases {
		reg := RectRADec(c.raLo, c.raHi, c.decLo, c.decHi)
		for i := 0; i < 2000; i++ {
			v := randUnit(rng)
			ra, dec := sphere.ToRADec(v)
			inRA := false
			if c.raLo <= c.raHi {
				inRA = ra >= c.raLo && ra <= c.raHi
			} else {
				inRA = ra >= c.raLo || ra <= c.raHi
			}
			want := inRA && dec >= c.decLo && dec <= c.decHi
			if got := reg.Contains(v); got != want {
				// Tolerate boundary float noise.
				if math.Abs(dec-c.decLo) > 1e-9 && math.Abs(dec-c.decHi) > 1e-9 &&
					math.Abs(ra-c.raLo) > 1e-9 && math.Abs(ra-c.raHi) > 1e-9 {
					t.Fatalf("rect %+v mismatch at (%v, %v): got %v want %v", c, ra, dec, got, want)
				}
			}
		}
	}
}

func TestPolygon(t *testing.T) {
	// A triangle around the north pole.
	verts := []sphere.Vec3{
		sphere.FromRADec(0, 60),
		sphere.FromRADec(120, 60),
		sphere.FromRADec(240, 60),
	}
	reg, err := Polygon(verts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Contains(sphere.Vec3{Z: 1}) {
		t.Error("polygon around pole must contain the pole")
	}
	if reg.Contains(sphere.Vec3{Z: -1}) {
		t.Error("polygon around north pole contains south pole")
	}
	// Reversed winding must error.
	if _, err := Polygon(verts[2], verts[1], verts[0]); err == nil {
		t.Error("clockwise polygon accepted")
	}
	if _, err := Polygon(verts[0], verts[1]); err == nil {
		t.Error("2-vertex polygon accepted")
	}
}

func TestRegionAlgebra(t *testing.T) {
	a := Circle(sphere.FromRADec(0, 0), sphere.Radians(10))
	b := Circle(sphere.FromRADec(15, 0), sphere.Radians(10))
	union := a.Union(b)
	inter := a.Intersect(b)
	pA := sphere.FromRADec(355, 0)    // only in a
	pB := sphere.FromRADec(20, 0)     // only in b
	pBoth := sphere.FromRADec(7.5, 0) // in both
	pNone := sphere.FromRADec(180, 0)
	if !union.Contains(pA) || !union.Contains(pB) || !union.Contains(pBoth) || union.Contains(pNone) {
		t.Error("union membership wrong")
	}
	if inter.Contains(pA) || inter.Contains(pB) || !inter.Contains(pBoth) || inter.Contains(pNone) {
		t.Error("intersection membership wrong")
	}
	if len(inter.Convexes) != 1 || len(inter.Convexes[0].Halfspaces) != 2 {
		t.Errorf("intersection shape: %v", inter)
	}
}

func TestEdgeIntersectsCap(t *testing.T) {
	// Equatorial edge from RA 0 to RA 90 against a cap around RA 45 on the
	// equator: the cap boundary crosses the edge iff its radius is small
	// enough not to swallow an endpoint but large enough to reach the arc.
	a := sphere.FromRADec(0, 0)
	b := sphere.FromRADec(90, 0)
	center := sphere.FromRADec(45, 0)
	if !edgeIntersectsCap(a, b, NewHalfspace(center, sphere.Radians(10))) {
		t.Error("10° cap boundary must cross the edge")
	}
	if edgeIntersectsCap(a, b, NewHalfspace(center, sphere.Radians(80))) {
		// 80° cap contains both endpoints (45° away): boundary does not
		// cross the arc between them.
		t.Error("80° cap boundary must not cross the edge")
	}
	// Cap entirely away from the edge.
	if edgeIntersectsCap(a, b, NewHalfspace(sphere.FromRADec(45, 80), sphere.Radians(5))) {
		t.Error("distant cap must not cross the edge")
	}
	// Degenerate zero-length edge.
	if edgeIntersectsCap(a, a, NewHalfspace(center, sphere.Radians(45))) {
		t.Error("zero-length edge cannot cross")
	}
}
