package region

import (
	"fmt"
	"math"

	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// Class is the result of testing a query region against a spherical
// triangle, as in the paper: "Classify nodes, as fully outside the query,
// fully inside the query or partially intersecting the query polyhedron."
type Class int

const (
	// Outside: the triangle contains no point of the region; the node and
	// all its children can be ignored.
	Outside Class = iota
	// Partial: the triangle is bisected by the region boundary; only these
	// nodes are investigated further.
	Partial
	// Inside: the triangle lies entirely within the region; it is wholly
	// accepted without descending.
	Inside
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Outside:
		return "outside"
	case Partial:
		return "partial"
	case Inside:
		return "inside"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// edgeIntersectsCap reports whether the great-circle arc from a to b
// (assumed shorter than π) crosses the boundary circle of the halfspace.
// The arc is parametrized p(φ) = a·cos φ + w·sin φ with w the unit vector
// orthogonal to a in the (a,b) plane; then p·n = R·cos(φ−ψ) and the
// boundary crossings solve R·cos(φ−ψ) = offset.
func edgeIntersectsCap(a, b sphere.Vec3, h Halfspace) bool {
	theta := a.Angle(b)
	if theta < 1e-15 {
		return false
	}
	w := b.Sub(a.Scale(a.Dot(b)))
	wn := w.Norm()
	if wn == 0 {
		return false
	}
	w = w.Scale(1 / wn)
	A := a.Dot(h.Normal)
	W := w.Dot(h.Normal)
	R := math.Hypot(A, W)
	if R < math.Abs(h.Offset) {
		return false // the whole great circle stays on one side
	}
	if R == 0 {
		return false
	}
	psi := math.Atan2(W, A)
	dphi := math.Acos(clamp(h.Offset/R, -1, 1))
	for _, phi := range [2]float64{psi - dphi, psi + dphi} {
		// Normalize to (-π, π] then test membership in [0, θ].
		for phi > math.Pi {
			phi -= 2 * math.Pi
		}
		for phi <= -math.Pi {
			phi += 2 * math.Pi
		}
		if phi >= -1e-12 && phi <= theta+1e-12 {
			return true
		}
	}
	return false
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClassifyConvex tests one convex against a spherical triangle. The
// classification is exact for the query shapes the archive generates
// (circles, latitude bands, rectangles, convex polygons); where geometry is
// ambiguous it errs toward Partial, which costs a deeper descent but never a
// wrong answer.
func ClassifyConvex(c *Convex, tri htm.Triangle) Class {
	if len(c.Halfspaces) == 0 {
		return Inside // no constraints: whole sphere
	}

	center, triRadius := tri.BoundingCircle()

	// Quick bounding-circle tests per cap.
	allInside := true
	for _, h := range c.Halfspaces {
		if h.IsEmpty() {
			return Outside
		}
		if h.IsFull() {
			continue
		}
		d := center.Angle(h.Normal)
		capR := h.Radius()
		if d > capR+triRadius {
			return Outside // triangle entirely outside this cap
		}
		if d+triRadius > capR {
			allInside = false
		}
	}
	if allInside {
		return Inside // triangle's bounding circle inside every cap
	}

	// Corner count.
	inside := 0
	for _, v := range tri.V {
		if c.Contains(v) {
			inside++
		}
	}
	if inside > 0 && inside < 3 {
		return Partial
	}

	// Edge-boundary crossings.
	crossing := false
	for i := 0; i < 3 && !crossing; i++ {
		a, b := tri.V[i], tri.V[(i+1)%3]
		for _, h := range c.Halfspaces {
			if h.IsFull() || h.IsEmpty() {
				continue
			}
			if edgeIntersectsCap(a, b, h) {
				crossing = true
				break
			}
		}
	}

	if inside == 3 {
		if crossing {
			return Partial
		}
		// All corners inside and no boundary crossing. The only way part
		// of the triangle escapes is a constraint "hole" (the complement
		// cap) lying wholly inside the triangle.
		for _, h := range c.Halfspaces {
			if !h.IsFull() && tri.ContainsVec(h.Normal.Neg()) {
				return Partial
			}
		}
		return Inside
	}

	// No corner inside.
	if crossing {
		// A cap boundary enters the triangle. If the crossing point also
		// satisfies the other constraints the intersection is nonempty;
		// testing that exactly requires the crossing coordinates, so be
		// conservative: report Partial (descending deeper resolves it).
		return Partial
	}
	// No corners, no crossings: the convex is either disjoint from the
	// triangle or entirely inside it. Probe with interior candidates of
	// the convex: each cap center and the normalized mean of cap centers.
	for _, h := range c.Halfspaces {
		if c.Contains(h.Normal) && tri.ContainsVec(h.Normal) {
			return Partial
		}
	}
	mean := sphere.Vec3{}
	for _, h := range c.Halfspaces {
		mean = mean.Add(h.Normal)
	}
	mean = mean.Normalize()
	if mean.Norm() > 0 && c.Contains(mean) && tri.ContainsVec(mean) {
		return Partial
	}
	return Outside
}

// ClassifyRegion tests a region (union of convexes) against a triangle:
// Inside if any convex wholly contains it, Outside if every convex rejects
// it, Partial otherwise.
func ClassifyRegion(r *Region, tri htm.Triangle) Class {
	out := Outside
	for _, c := range r.Convexes {
		switch ClassifyConvex(c, tri) {
		case Inside:
			return Inside
		case Partial:
			out = Partial
		}
	}
	return out
}

// LevelStats records, for one level of the descent, how many trixels were
// classified each way — the numbers behind the paper's Figure 4 picture of
// triangles selected by the hierarchy.
type LevelStats struct {
	Depth    int
	Inside   int // wholly accepted, not descended
	Partial  int // bisected, descended (or kept at the final depth)
	Rejected int // wholly outside, pruned with the whole subtree
}

// Coverage is the result of intersecting a region with the mesh: trixels
// fully inside the region (possibly at shallow depths — accepted whole
// subtrees) and trixels at the final depth still bisected by the boundary.
type Coverage struct {
	Depth   int          // the maximum descent depth
	Full    []htm.ID     // fully-inside trixels, mixed depths ≤ Depth
	Partial []htm.ID     // boundary trixels at exactly Depth
	Levels  []LevelStats // per-level classification counts
}

// Cover runs the paper's recursive intersection algorithm: start from the 8
// octahedron faces, classify each node against the query region, accept
// Inside subtrees whole, prune Outside subtrees, and recurse only into
// Partial nodes down to the given depth.
func Cover(r *Region, depth int) (*Coverage, error) {
	if depth < 0 || depth > htm.MaxDepth {
		return nil, fmt.Errorf("region: cover depth %d out of range [0,%d]", depth, htm.MaxDepth)
	}
	cov := &Coverage{Depth: depth, Levels: make([]LevelStats, depth+1)}
	for d := range cov.Levels {
		cov.Levels[d].Depth = d
	}
	var walk func(id htm.ID, tri htm.Triangle, d int)
	walk = func(id htm.ID, tri htm.Triangle, d int) {
		switch ClassifyRegion(r, tri) {
		case Outside:
			cov.Levels[d].Rejected++
		case Inside:
			cov.Levels[d].Inside++
			cov.Full = append(cov.Full, id)
		case Partial:
			cov.Levels[d].Partial++
			if d == depth {
				cov.Partial = append(cov.Partial, id)
				return
			}
			for i, child := range tri.Children() {
				walk(id.Child(i), child, d+1)
			}
		}
	}
	for f := htm.ID(8); f <= 15; f++ {
		walk(f, htm.FaceTriangle(f), 0)
	}
	return cov, nil
}

// RangeSet flattens the coverage (full and partial trixels) into sorted ID
// ranges at the coverage depth — the candidate set the archive's container
// scan consumes.
func (cov *Coverage) RangeSet() *htm.RangeSet {
	ids := make([]htm.ID, 0, len(cov.Full)+len(cov.Partial))
	ids = append(ids, cov.Full...)
	ids = append(ids, cov.Partial...)
	return htm.FromTrixels(cov.Depth, ids)
}

// FullRangeSet returns only the wholly-inside trixels as ranges: objects in
// these need no per-object geometry test.
func (cov *Coverage) FullRangeSet() *htm.RangeSet {
	return htm.FromTrixels(cov.Depth, cov.Full)
}

// PartialRangeSet returns only the boundary trixels: objects here must be
// tested individually against the region.
func (cov *Coverage) PartialRangeSet() *htm.RangeSet {
	return htm.FromTrixels(cov.Depth, cov.Partial)
}

// Area returns lower and upper bounds on the region's solid angle implied by
// the coverage: the full trixels alone, and full plus partial. The paper
// notes "a prediction of the output data volume and search time can be
// computed from the intersection volume" — this is that prediction.
func (cov *Coverage) Area() (lo, hi float64) {
	for _, id := range cov.Full {
		if tri, err := htm.Vertices(id); err == nil {
			lo += tri.Area()
		}
	}
	hi = lo
	for _, id := range cov.Partial {
		if tri, err := htm.Vertices(id); err == nil {
			hi += tri.Area()
		}
	}
	return lo, hi
}
