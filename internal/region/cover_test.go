package region

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/htm"
	"sdss/internal/sphere"
)

func TestClassifyConvexCircle(t *testing.T) {
	// A tiny cap strictly inside face N3 must classify N3 Partial (the cap
	// is smaller than the face) and a face on the far side Outside.
	capDir := sphere.FromRADec(45, 45) // inside N3 (RA 0..90, north)
	small := NewConvex(NewHalfspace(capDir, sphere.Radians(1)))
	n3, _ := htm.Parse("N3")
	s1, _ := htm.Parse("S1")
	triN3 := mustTri(t, n3)
	triS1 := mustTri(t, s1)
	if got := ClassifyConvex(small, triN3); got != Partial {
		t.Errorf("small cap vs containing face = %v, want partial", got)
	}
	if got := ClassifyConvex(small, triS1); got != Outside {
		t.Errorf("small cap vs far face = %v, want outside", got)
	}
	// A cap covering nearly the whole sphere leaves a tiny complement hole
	// at the antipode (RA 225, Dec -45), which lies in face S2: that face
	// must classify Partial (the hole case), every other face Inside.
	huge := NewConvex(NewHalfspace(capDir, sphere.Radians(179.9)))
	holeFace, err := htm.LookupRADec(225, -45, 0)
	if err != nil {
		t.Fatal(err)
	}
	for f := htm.ID(8); f <= 15; f++ {
		want := Inside
		if f == holeFace {
			want = Partial
		}
		if got := ClassifyConvex(huge, mustTri(t, f)); got != want {
			t.Errorf("huge cap vs face %v = %v, want %v", f, got, want)
		}
	}
}

func mustTri(t *testing.T, id htm.ID) htm.Triangle {
	t.Helper()
	tri, err := htm.Vertices(id)
	if err != nil {
		t.Fatal(err)
	}
	return tri
}

func TestClassifyEmptyAndFullConvex(t *testing.T) {
	tri := mustTri(t, 12)
	if got := ClassifyConvex(NewConvex(), tri); got != Inside {
		t.Errorf("empty convex = %v, want inside", got)
	}
	empty := NewConvex(Halfspace{Normal: sphere.Vec3{Z: 1}, Offset: 1.5})
	if got := ClassifyConvex(empty, tri); got != Outside {
		t.Errorf("empty cap = %v, want outside", got)
	}
	full := NewConvex(Halfspace{Normal: sphere.Vec3{Z: 1}, Offset: -2})
	if got := ClassifyConvex(full, tri); got != Inside {
		t.Errorf("full cap = %v, want inside", got)
	}
}

func TestCoverCircleExactness(t *testing.T) {
	// Monte Carlo soundness of the coverage: every sampled point inside
	// the region must fall in a full or partial trixel, and every point in
	// a full trixel must be inside the region.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		center := randUnit(rng)
		radius := sphere.Radians(0.1 + rng.Float64()*30)
		reg := Circle(center, radius)
		depth := 6
		cov, err := Cover(reg, depth)
		if err != nil {
			t.Fatal(err)
		}
		full := cov.FullRangeSet()
		all := cov.RangeSet()
		for i := 0; i < 500; i++ {
			v := randUnit(rng)
			id, err := htm.Lookup(v, depth)
			if err != nil {
				t.Fatal(err)
			}
			if reg.Contains(v) && !all.Contains(id) {
				t.Fatalf("point inside region not covered: trial %d, dist %v, radius %v",
					trial, sphere.Dist(center, v), radius)
			}
			if full.Contains(id) && !reg.Contains(v) {
				// Full trixels must contain only region points (allow
				// boundary float noise).
				if math.Abs(sphere.Dist(center, v)-radius) > 1e-9 {
					t.Fatalf("point in full trixel outside region: trial %d", trial)
				}
			}
		}
	}
}

func TestCoverAreaBounds(t *testing.T) {
	// Coverage area bounds must bracket the true cap area and tighten
	// with depth.
	center := sphere.FromRADec(200, -35)
	radius := sphere.Radians(4)
	trueArea := 2 * math.Pi * (1 - math.Cos(radius))
	prevSlack := math.Inf(1)
	for _, depth := range []int{3, 5, 7} {
		cov, err := Cover(Circle(center, radius), depth)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := cov.Area()
		if lo > trueArea+1e-9 || hi < trueArea-1e-9 {
			t.Fatalf("depth %d: area bounds [%v, %v] miss true %v", depth, lo, hi, trueArea)
		}
		slack := hi - lo
		if slack > prevSlack+1e-12 {
			t.Fatalf("depth %d: slack %v did not shrink from %v", depth, slack, prevSlack)
		}
		prevSlack = slack
	}
}

func TestCoverLevelStatsPruning(t *testing.T) {
	// For a small circle the number of partial trixels per level must stay
	// bounded (boundary length / trixel size ⇒ ~constant factor growth ×2
	// per level, not ×4) — the pruning that makes the search logarithmic.
	cov, err := Cover(Circle(sphere.FromRADec(10, 10), sphere.Radians(2)), 8)
	if err != nil {
		t.Fatal(err)
	}
	for d := 3; d < 8; d++ {
		cur := cov.Levels[d].Partial
		next := cov.Levels[d+1].Partial
		if next > cur*3+8 {
			t.Errorf("partial count grew too fast: level %d=%d, level %d=%d",
				d, cur, d+1, next)
		}
	}
	// Total examined at final depth must be tiny compared to 8·4^8 trixels.
	total := cov.Levels[8].Inside + cov.Levels[8].Partial + cov.Levels[8].Rejected
	if uint64(total) >= htm.NumTrixels(8)/10 {
		t.Errorf("examined %d trixels at depth 8; pruning ineffective", total)
	}
}

func TestCoverFigure4DualBand(t *testing.T) {
	// The paper's Figure 4: a latitude band in the equatorial system
	// intersected with a latitude band in another spherical coordinate
	// system. Verify coverage soundness by sampling.
	reg := LatBand(sphere.Equatorial, 20, 40).Intersect(LatBand(sphere.Galactic, -15, 15))
	cov, err := Cover(reg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Full)+len(cov.Partial) == 0 {
		t.Fatal("dual-band coverage empty")
	}
	all := cov.RangeSet()
	full := cov.FullRangeSet()
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 3000; i++ {
		v := randUnit(rng)
		id, err := htm.Lookup(v, 6)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Contains(v) && !all.Contains(id) {
			_, dec := sphere.ToRADec(v)
			_, b := sphere.ToLonLat(sphere.Galactic, v)
			t.Fatalf("band point missed: dec=%v b=%v", dec, b)
		}
		if full.Contains(id) && !reg.Contains(v) {
			t.Fatalf("non-band point in full trixel")
		}
	}
}

func TestCoverDepthValidation(t *testing.T) {
	if _, err := Cover(Circle(sphere.Vec3{Z: 1}, 1), -1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := Cover(Circle(sphere.Vec3{Z: 1}, 1), htm.MaxDepth+1); err == nil {
		t.Error("excessive depth accepted")
	}
}

func TestCoverEmptyRegion(t *testing.T) {
	cov, err := Cover(NewRegion(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Full) != 0 || len(cov.Partial) != 0 {
		t.Errorf("empty region produced coverage: %d full, %d partial", len(cov.Full), len(cov.Partial))
	}
}

func TestQuickCoverSoundness(t *testing.T) {
	// Property: for random rectangles, no sampled in-region point escapes
	// the coverage.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		raLo := rng.Float64() * 360
		raHi := sphere.NormalizeRA(raLo + 1 + rng.Float64()*100)
		decLo := rng.Float64()*150 - 80
		decHi := decLo + 1 + rng.Float64()*(85-decLo)
		reg := RectRADec(raLo, raHi, decLo, decHi)
		cov, err := Cover(reg, 5)
		if err != nil {
			t.Fatal(err)
		}
		all := cov.RangeSet()
		for i := 0; i < 400; i++ {
			v := randUnit(rng)
			if !reg.Contains(v) {
				continue
			}
			id, err := htm.Lookup(v, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !all.Contains(id) {
				ra, dec := sphere.ToRADec(v)
				t.Fatalf("rect [%v,%v]x[%v,%v]: point (%v,%v) escaped coverage",
					raLo, raHi, decLo, decHi, ra, dec)
			}
		}
	}
}

func BenchmarkCoverCircleDepth8(b *testing.B) {
	reg := Circle(sphere.FromRADec(185, 32), 10*sphere.Arcmin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cover(reg, 8); err != nil {
			b.Fatal(err)
		}
	}
}
