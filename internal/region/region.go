// Package region implements the half-space constraint algebra the paper
// builds its spatial queries on: "Each query can be represented as a set of
// half-space constraints, connected by Boolean operators, all in
// three-dimensional space."
//
// A Halfspace is a plane cutting the unit sphere: the points p satisfying
// p·n ≥ c form a spherical cap. A Convex is the intersection (AND) of
// halfspaces; a Region is the union (OR) of convexes. Circles (cones),
// latitude bands in any coordinate system, declination/RA rectangles and
// convex spherical polygons are all special cases.
//
// The package also implements the recursive trixel classification used by
// the Science Archive query engine: testing the query polyhedron against the
// spherical triangles of the HTM, classifying each as fully inside, fully
// outside, or partially intersecting, and descending only into bisected
// triangles (the paper's Figure 4).
package region

import (
	"fmt"
	"math"
	"strings"

	"sdss/internal/sphere"
)

// Halfspace is the constraint p·Normal ≥ Offset on unit vectors p. With
// |Offset| ≤ 1 the constraint region is a spherical cap centered on Normal
// with angular radius acos(Offset); Offset < 0 gives a cap larger than a
// hemisphere, Offset = 0 exactly a hemisphere.
type Halfspace struct {
	Normal sphere.Vec3 // unit vector
	Offset float64     // cos of the cap's angular radius
}

// NewHalfspace normalizes the direction and returns the constraint
// p·dir ≥ cos(radius).
func NewHalfspace(dir sphere.Vec3, radius float64) Halfspace {
	return Halfspace{Normal: dir.Normalize(), Offset: math.Cos(radius)}
}

// Contains reports whether the unit vector is inside the halfspace.
func (h Halfspace) Contains(v sphere.Vec3) bool {
	return v.Dot(h.Normal) >= h.Offset
}

// Radius returns the angular radius of the cap in radians.
func (h Halfspace) Radius() float64 {
	off := h.Offset
	if off > 1 {
		off = 1
	} else if off < -1 {
		off = -1
	}
	return math.Acos(off)
}

// IsEmpty reports whether the cap contains no points (Offset > 1).
func (h Halfspace) IsEmpty() bool { return h.Offset > 1 }

// IsFull reports whether the cap is the whole sphere (Offset ≤ -1).
func (h Halfspace) IsFull() bool { return h.Offset <= -1 }

// String renders the constraint for diagnostics.
func (h Halfspace) String() string {
	return fmt.Sprintf("p·%v ≥ %.6f", h.Normal, h.Offset)
}

// Convex is the intersection (logical AND) of halfspaces. An empty
// constraint list is the full sphere.
type Convex struct {
	Halfspaces []Halfspace
}

// NewConvex builds a convex from constraints.
func NewConvex(hs ...Halfspace) *Convex {
	return &Convex{Halfspaces: hs}
}

// Contains reports whether the unit vector satisfies every constraint.
func (c *Convex) Contains(v sphere.Vec3) bool {
	for _, h := range c.Halfspaces {
		if !h.Contains(v) {
			return false
		}
	}
	return true
}

// Add appends a constraint and returns the convex for chaining.
func (c *Convex) Add(h Halfspace) *Convex {
	c.Halfspaces = append(c.Halfspaces, h)
	return c
}

// String renders the convex.
func (c *Convex) String() string {
	parts := make([]string, len(c.Halfspaces))
	for i, h := range c.Halfspaces {
		parts[i] = h.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Region is the union (logical OR) of convexes. The zero value is the empty
// region.
type Region struct {
	Convexes []*Convex
}

// NewRegion builds a region from convexes.
func NewRegion(cs ...*Convex) *Region {
	return &Region{Convexes: cs}
}

// Contains reports whether the unit vector lies in any convex.
func (r *Region) Contains(v sphere.Vec3) bool {
	for _, c := range r.Convexes {
		if c.Contains(v) {
			return true
		}
	}
	return false
}

// Add appends a convex and returns the region for chaining.
func (r *Region) Add(c *Convex) *Region {
	r.Convexes = append(r.Convexes, c)
	return r
}

// Union merges another region in (OR of the two).
func (r *Region) Union(o *Region) *Region {
	out := &Region{Convexes: append([]*Convex{}, r.Convexes...)}
	out.Convexes = append(out.Convexes, o.Convexes...)
	return out
}

// Intersect returns the intersection of two regions by distributing the
// convexes: (A ∪ B) ∩ (C ∪ D) = AC ∪ AD ∪ BC ∪ BD.
func (r *Region) Intersect(o *Region) *Region {
	out := &Region{}
	for _, a := range r.Convexes {
		for _, b := range o.Convexes {
			merged := NewConvex()
			merged.Halfspaces = append(merged.Halfspaces, a.Halfspaces...)
			merged.Halfspaces = append(merged.Halfspaces, b.Halfspaces...)
			out.Add(merged)
		}
	}
	return out
}

// String renders the region.
func (r *Region) String() string {
	parts := make([]string, len(r.Convexes))
	for i, c := range r.Convexes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∨ ")
}

// Circle returns the region within radius (radians) of the direction dir —
// the cone query underlying "find objects within a certain spherical
// distance from a given point".
func Circle(dir sphere.Vec3, radius float64) *Region {
	return NewRegion(NewConvex(NewHalfspace(dir, radius)))
}

// CircleRADec is Circle for equatorial coordinates in degrees and a radius
// in arcminutes, the units astronomers use for search cones.
func CircleRADec(raDeg, decDeg, radiusArcmin float64) *Region {
	return Circle(sphere.FromRADec(raDeg, decDeg), radiusArcmin*sphere.Arcmin)
}

// LatBand returns the region with latitude in [loDeg, hiDeg] in the given
// coordinate system: two halfspaces against the frame's pole vector. This is
// the query of the paper's Figure 4.
func LatBand(f sphere.Frame, loDeg, hiDeg float64) *Region {
	pole := sphere.Pole(f)
	lo := Halfspace{Normal: pole, Offset: math.Sin(sphere.Radians(loDeg))}
	hi := Halfspace{Normal: pole.Neg(), Offset: -math.Sin(sphere.Radians(hiDeg))}
	return NewRegion(NewConvex(lo, hi))
}

// RectRADec returns the region raLo ≤ RA ≤ raHi, decLo ≤ Dec ≤ decHi
// (degrees). RA bounds are great-circle halfspaces through the poles; Dec
// bounds are small circles around the pole. RA ranges spanning more than
// 180° are split into two convexes.
func RectRADec(raLo, raHi, decLo, decHi float64) *Region {
	raLo, raHi = sphere.NormalizeRA(raLo), sphere.NormalizeRA(raHi)
	width := raHi - raLo
	if width < 0 {
		width += 360
	}
	if width == 0 {
		width = 360 // degenerate: full circle in RA
	}
	if width > 180 {
		mid := sphere.NormalizeRA(raLo + width/2)
		a := RectRADec(raLo, mid, decLo, decHi)
		b := RectRADec(mid, raHi, decLo, decHi)
		return a.Union(b)
	}
	pole := sphere.Vec3{Z: 1}
	decLoH := Halfspace{Normal: pole, Offset: math.Sin(sphere.Radians(decLo))}
	decHiH := Halfspace{Normal: pole.Neg(), Offset: -math.Sin(sphere.Radians(decHi))}
	// The meridian plane at RA α has normal (-sin α, cos α, 0); points with
	// greater RA (within 180°) are on its positive side.
	loRad := sphere.Radians(raLo)
	hiRad := sphere.Radians(raHi)
	raLoH := Halfspace{Normal: sphere.Vec3{X: -math.Sin(loRad), Y: math.Cos(loRad)}, Offset: 0}
	raHiH := Halfspace{Normal: sphere.Vec3{X: math.Sin(hiRad), Y: -math.Cos(hiRad)}, Offset: 0}
	return NewRegion(NewConvex(decLoH, decHiH, raLoH, raHiH))
}

// Polygon returns the convex region bounded by the great circles through
// consecutive vertices, given in counterclockwise order viewed from outside
// the sphere. It returns an error if fewer than 3 vertices are supplied or
// the winding is inconsistent.
func Polygon(verts ...sphere.Vec3) (*Region, error) {
	if len(verts) < 3 {
		return nil, fmt.Errorf("region: polygon needs ≥3 vertices, got %d", len(verts))
	}
	c := NewConvex()
	center := sphere.Vec3{}
	for _, v := range verts {
		center = center.Add(v)
	}
	center = center.Normalize()
	for i, v := range verts {
		w := verts[(i+1)%len(verts)]
		n := v.Cross(w).Normalize()
		if n.Norm() == 0 {
			return nil, fmt.Errorf("region: degenerate polygon edge %d", i)
		}
		if n.Dot(center) < 0 {
			return nil, fmt.Errorf("region: polygon vertex %d breaks counterclockwise winding", i)
		}
		c.Add(Halfspace{Normal: n, Offset: 0})
	}
	return NewRegion(c), nil
}
