package skygen

import (
	"math"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/sphere"
)

func TestDeterminism(t *testing.T) {
	p := Default(42, 2000)
	a, err := GenerateChunk(p, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChunk(p, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Photo) != len(b.Photo) || len(a.Spec) != len(b.Spec) {
		t.Fatalf("lengths differ: %d/%d vs %d/%d", len(a.Photo), len(a.Spec), len(b.Photo), len(b.Spec))
	}
	for i := range a.Photo {
		if a.Photo[i] != b.Photo[i] {
			t.Fatalf("object %d differs between identical runs", i)
		}
	}
}

func TestChunksPartitionIDs(t *testing.T) {
	p := Default(7, 3000)
	chunks, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[catalog.ObjID]bool)
	total := 0
	for _, ch := range chunks {
		for i := range ch.Photo {
			id := ch.Photo[i].ObjID
			if seen[id] {
				t.Fatalf("duplicate ObjID %d across chunks", id)
			}
			seen[id] = true
		}
		total += len(ch.Photo)
	}
	// Totals may deviate slightly from the request because cluster sizes
	// are random, but must be within 25%.
	want := p.NGalaxies + p.NStars + p.NQuasars
	if math.Abs(float64(total-want)) > 0.25*float64(want) {
		t.Errorf("total objects %d, requested %d", total, want)
	}
}

func TestChunkErrors(t *testing.T) {
	p := Default(1, 100)
	if _, err := GenerateChunk(p, 5, 5); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if _, err := GenerateChunk(p, -1, 5); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := GenerateChunk(p, 0, 0); err == nil {
		t.Error("zero chunks accepted")
	}
}

func TestFootprint(t *testing.T) {
	p := Default(3, 4000)
	photo, _, err := GenerateAll(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(photo) == 0 {
		t.Fatal("no objects generated")
	}
	outside := 0
	for i := range photo {
		_, b := sphere.ToLonLat(sphere.Galactic, photo[i].Pos())
		// Cluster members may scatter slightly below the edge.
		if b < p.FootprintLatDeg-1 {
			outside++
		}
	}
	if frac := float64(outside) / float64(len(photo)); frac > 0.01 {
		t.Errorf("%.1f%% of objects outside footprint", 100*frac)
	}
}

func TestClassMixAndColors(t *testing.T) {
	p := Default(11, 20000)
	photo, _, err := GenerateAll(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nGal, nStar, nQSO int
	var galGR, qsoUG, starUG float64
	for i := range photo {
		o := &photo[i]
		switch o.Class {
		case catalog.ClassGalaxy:
			nGal++
			galGR += o.Color(catalog.G, catalog.R)
		case catalog.ClassStar:
			nStar++
			starUG += o.Color(catalog.U, catalog.G)
		case catalog.ClassQuasar:
			nQSO++
			qsoUG += o.Color(catalog.U, catalog.G)
		}
	}
	if nGal == 0 || nStar == 0 || nQSO == 0 {
		t.Fatalf("missing a class: %d/%d/%d", nGal, nStar, nQSO)
	}
	// Quasars must be rare.
	if frac := float64(nQSO) / float64(len(photo)); frac > 0.02 {
		t.Errorf("quasar fraction %.3f too high", frac)
	}
	// Color separation: quasars show UV excess (mean u−g well below
	// stars), galaxies are red in g−r.
	if qsoUG/float64(nQSO) >= starUG/float64(nStar)-0.5 {
		t.Errorf("quasar u−g %.2f not separated from stars %.2f",
			qsoUG/float64(nQSO), starUG/float64(nStar))
	}
	if mean := galGR / float64(nGal); mean < 0.4 || mean > 1.1 {
		t.Errorf("galaxy mean g−r = %.2f, outside red locus", mean)
	}
}

func TestMagnitudeCounts(t *testing.T) {
	// Number counts must be steep: each magnitude bin toward the faint
	// limit holds more objects than the previous.
	p := Default(13, 20000)
	photo, _, err := GenerateAll(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	bins := make([]int, 9) // r = 14..23
	for i := range photo {
		m := float64(photo[i].Mag[catalog.R])
		if idx := int(m) - 14; idx >= 0 && idx < len(bins) {
			bins[idx]++
		}
	}
	for i := 3; i+1 < len(bins); i++ {
		if bins[i+1] <= bins[i] {
			t.Errorf("counts not increasing: bin %d=%d, bin %d=%d", i+14, bins[i], i+15, bins[i+1])
		}
	}
}

func TestClustering(t *testing.T) {
	// Galaxies must be measurably more clustered than stars: count pairs
	// within a small angle via a coarse grid and compare to a uniform
	// expectation.
	p := Default(17, 30000)
	p.ClusterFrac = 0.5
	photo, _, err := GenerateAll(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	pairCount := func(class catalog.Class) (pairs, n int) {
		cell := make(map[[2]int][]sphere.Vec3)
		const cellDeg = 0.2
		for i := range photo {
			if photo[i].Class != class {
				continue
			}
			n++
			key := [2]int{int(photo[i].RA / cellDeg), int((photo[i].Dec + 90) / cellDeg)}
			cell[key] = append(cell[key], photo[i].Pos())
		}
		maxSep := 3 * sphere.Arcmin
		for _, vs := range cell {
			for i := 0; i < len(vs); i++ {
				for j := i + 1; j < len(vs); j++ {
					if sphere.Dist(vs[i], vs[j]) < maxSep {
						pairs++
					}
				}
			}
		}
		return pairs, n
	}
	gp, gn := pairCount(catalog.ClassGalaxy)
	sp, sn := pairCount(catalog.ClassStar)
	// Normalize by n² (pair counts scale quadratically).
	gRate := float64(gp) / (float64(gn) * float64(gn))
	sRate := (float64(sp) + 1) / (float64(sn) * float64(sn))
	if gRate < 3*sRate {
		t.Errorf("galaxies not clustered: pair rate %.3g vs stars %.3g (pairs %d/%d)",
			gRate, sRate, gp, sp)
	}
}

func TestSpectroSelection(t *testing.T) {
	p := Default(19, 20000)
	photo, spec, err := GenerateAll(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[catalog.ObjID]*catalog.PhotoObj, len(photo))
	for i := range photo {
		byID[photo[i].ObjID] = &photo[i]
	}
	var nGalSpec, nQSOSpec int
	for i := range spec {
		s := &spec[i]
		o := byID[s.ObjID]
		if o == nil {
			t.Fatalf("spectrum %d has no photometric counterpart", s.ObjID)
		}
		if s.HTMID != o.HTMID {
			t.Errorf("spectrum HTMID differs from photo object")
		}
		switch s.Class {
		case catalog.ClassGalaxy:
			nGalSpec++
			if s.Redshift <= 0 || s.Redshift > 0.81 {
				t.Errorf("galaxy redshift %v out of range", s.Redshift)
			}
		case catalog.ClassQuasar:
			nQSOSpec++
			if s.Redshift < 0.3 || s.Redshift > 5.01 {
				t.Errorf("quasar redshift %v out of range", s.Redshift)
			}
		}
		// Observed line wavelengths must be redshifted rest wavelengths.
		for _, l := range s.Lines {
			want := float64(l.LineID) * (1 + float64(s.Redshift))
			if math.Abs(float64(l.Wavelength)-want) > 1 {
				t.Errorf("line %d at %v, want %v", l.LineID, l.Wavelength, want)
			}
		}
	}
	if nGalSpec == 0 || nQSOSpec == 0 {
		t.Fatalf("spectro selection empty: %d galaxies, %d quasars", nGalSpec, nQSOSpec)
	}
	// Spectro galaxies must be the bright ones.
	cut := p.spectroMagCut()
	for i := range spec {
		if spec[i].Class != catalog.ClassGalaxy {
			continue
		}
		if o := byID[spec[i].ObjID]; float64(o.Mag[catalog.R]) >= cut+1e-3 {
			t.Fatalf("faint galaxy r=%v received a spectrum (cut %v)", o.Mag[catalog.R], cut)
		}
	}
}

func TestRadioCatalog(t *testing.T) {
	p := Default(23, 10000)
	photo, _, err := GenerateAll(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	radio := RadioCatalog(1, photo, 0.8, 1.0, 0.2)
	if len(radio) == 0 {
		t.Fatal("empty radio catalog")
	}
	byID := make(map[catalog.ObjID]*catalog.PhotoObj, len(photo))
	for i := range photo {
		byID[photo[i].ObjID] = &photo[i]
	}
	var matched, spurious int
	for i := range radio {
		r := &radio[i]
		if !r.Pos().IsUnit(1e-9) {
			t.Fatal("radio position not a unit vector")
		}
		if r.Matched {
			matched++
			o := byID[r.TruthID]
			if o == nil {
				t.Fatal("matched source has no truth object")
			}
			// Position scatter is 1 arcsec sigma: all matches within 6σ.
			if d := sphere.Dist(r.Pos(), o.Pos()); d > 6*sphere.Arcsec {
				t.Errorf("matched source displaced by %v arcsec", d/sphere.Arcsec)
			}
		} else {
			spurious++
		}
	}
	if matched == 0 || spurious == 0 {
		t.Errorf("matched=%d spurious=%d, want both nonzero", matched, spurious)
	}
}

func TestFootprintArea(t *testing.T) {
	p := Default(1, 100)
	// The b>30° cap is 2π(1−sin30°) = π steradians ≈ 10313 deg².
	want := math.Pi
	if got := p.FootprintArea(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FootprintArea = %v, want %v", got, want)
	}
}

func TestChunkEqualData(t *testing.T) {
	ch, err := GenerateChunk(Default(9, 1500), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Photo) == 0 || len(ch.Spec) == 0 {
		t.Fatal("chunk missing photo or spec rows")
	}
	same := &Chunk{Index: ch.Index + 1, Photo: ch.Photo, Spec: ch.Spec}
	if !ch.EqualData(same) {
		t.Error("identical rows with different Index compared unequal")
	}
	photo := append([]catalog.PhotoObj(nil), ch.Photo...)
	photo[0].RA += 1e-9
	if ch.EqualData(&Chunk{Photo: photo, Spec: ch.Spec}) {
		t.Error("perturbed photo row compared equal")
	}
	spec := append([]catalog.SpecObj(nil), ch.Spec...)
	spec[len(spec)-1].Redshift += 1e-6
	if ch.EqualData(&Chunk{Photo: ch.Photo, Spec: spec}) {
		t.Error("perturbed spec row compared equal")
	}
	if ch.EqualData(&Chunk{Photo: ch.Photo}) {
		t.Error("missing spectra compared equal")
	}
}

func BenchmarkGenerateChunk(b *testing.B) {
	p := Default(1, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := GenerateChunk(p, i%10, 10)
		if err != nil {
			b.Fatal(err)
		}
		_ = ch
	}
}
