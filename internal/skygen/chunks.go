package skygen

import (
	"fmt"
	"math"
	"math/rand"

	"sdss/internal/catalog"
	"sdss/internal/sphere"
)

// Chunk is one coherent unit of survey data, as the paper's loading section
// defines it: "A chunk consists of several segments of the sky that were
// scanned in a single night, with all the fields and all objects detected in
// the fields." Chunks partition the survey deterministically: generating all
// of them yields the complete catalog, in any order.
type Chunk struct {
	Index int
	Photo []catalog.PhotoObj
	Spec  []catalog.SpecObj
}

// EqualData reports whether two chunks carry identical photometric and
// spectroscopic rows. Index is ignored: it is not serialized in chunk
// files, so a chunk read back from FITS compares equal to its source.
func (c *Chunk) EqualData(o *Chunk) bool {
	if len(c.Photo) != len(o.Photo) || len(c.Spec) != len(o.Spec) {
		return false
	}
	for i := range c.Photo {
		if c.Photo[i] != o.Photo[i] {
			return false
		}
	}
	for i := range c.Spec {
		if c.Spec[i] != o.Spec[i] {
			return false
		}
	}
	return true
}

// subSeed derives a stream-specific seed so that each component (clusters,
// field, stars, ...) of each chunk has its own reproducible RNG.
func subSeed(seed int64, stream string, n int) int64 {
	h := uint64(seed)
	for _, c := range stream {
		h = h*1099511628211 + uint64(c)
	}
	h = h*1099511628211 + uint64(n)
	return int64(h & 0x7fffffffffffffff)
}

// galLon returns the galactic longitude of an equatorial vector in [0,360).
func galLon(v sphere.Vec3) float64 {
	l, _ := sphere.ToLonLat(sphere.Galactic, v)
	return l
}

// randInStrip draws a position uniformly within the survey cap restricted to
// the galactic longitude strip [lonLo, lonHi) degrees.
func randInStrip(rng *rand.Rand, latDeg, lonLo, lonHi float64) sphere.Vec3 {
	sinLo := math.Sin(sphere.Radians(latDeg))
	z := sinLo + rng.Float64()*(1-sinLo)
	lon := lonLo + rng.Float64()*(lonHi-lonLo)
	r := math.Sqrt(1 - z*z)
	lr := sphere.Radians(lon)
	galVec := sphere.Vec3{X: r * math.Cos(lr), Y: r * math.Sin(lr), Z: z}
	return sphere.FrameToEquatorial(sphere.Galactic).MulVec(galVec)
}

// GenerateChunk produces chunk `index` of `nChunks`. Chunks are galactic
// longitude strips of the survey cap; a cluster belongs to the strip of its
// center (members may spill slightly across the boundary, like real scan
// overlaps). Object IDs are unique across chunks.
func GenerateChunk(p Params, index, nChunks int) (*Chunk, error) {
	if nChunks < 1 || index < 0 || index >= nChunks {
		return nil, fmt.Errorf("skygen: chunk %d of %d out of range", index, nChunks)
	}
	p.setDefaults()
	ch := &Chunk{Index: index}
	lonLo := float64(index) * 360 / float64(nChunks)
	lonHi := float64(index+1) * 360 / float64(nChunks)
	nextID := catalog.ObjID(uint64(index+1) << 40)

	// --- Clustered galaxies -------------------------------------------
	nClustered := int(float64(p.NGalaxies) * p.ClusterFrac)
	nClusters := int(math.Round(float64(nClustered) / p.MeanClusterSize))
	sigma := p.ClusterRadiusArcmin * sphere.Arcmin
	spectroCut := p.spectroMagCut()
	for ci := 0; ci < nClusters; ci++ {
		crng := rand.New(rand.NewSource(subSeed(p.Seed, "cluster", ci)))
		center := randInCap(crng, p.FootprintLatDeg)
		if l := galLon(center); l < lonLo || l >= lonHi {
			continue // cluster belongs to another chunk
		}
		size := int(crng.ExpFloat64() * p.MeanClusterSize)
		if size < 3 {
			size = 3
		}
		if max := int(10 * p.MeanClusterSize); size > max {
			size = max
		}
		// Richer clusters are spatially larger.
		cSigma := sigma * (0.5 + math.Sqrt(float64(size)/p.MeanClusterSize))
		for m := 0; m < size; m++ {
			pos := scatter(crng, center, cSigma*math.Abs(crng.NormFloat64()))
			obj, spec := p.makeGalaxy(crng, nextID, pos, 0.15, spectroCut)
			ch.Photo = append(ch.Photo, obj)
			if spec != nil {
				ch.Spec = append(ch.Spec, *spec)
			}
			nextID++
		}
	}

	// --- Field galaxies ------------------------------------------------
	nField := chunkShare(p.NGalaxies-nClustered, index, nChunks)
	frng := rand.New(rand.NewSource(subSeed(p.Seed, "field", index)))
	for i := 0; i < nField; i++ {
		pos := randInStrip(frng, p.FootprintLatDeg, lonLo, lonHi)
		obj, spec := p.makeGalaxy(frng, nextID, pos, 0, spectroCut)
		ch.Photo = append(ch.Photo, obj)
		if spec != nil {
			ch.Spec = append(ch.Spec, *spec)
		}
		nextID++
	}

	// --- Stars -----------------------------------------------------------
	nStars := chunkShare(p.NStars, index, nChunks)
	srng := rand.New(rand.NewSource(subSeed(p.Seed, "stars", index)))
	for i := 0; i < nStars; i++ {
		// Concentration toward the galactic plane: accept positions with
		// probability declining in latitude above the footprint edge.
		var pos sphere.Vec3
		for {
			pos = randInStrip(srng, p.FootprintLatDeg, lonLo, lonHi)
			_, b := sphere.ToLonLat(sphere.Galactic, pos)
			if srng.Float64() < math.Exp(-(b-p.FootprintLatDeg)/25) {
				break
			}
		}
		ch.Photo = append(ch.Photo, p.makeStar(srng, nextID, pos))
		nextID++
	}

	// --- Quasars ---------------------------------------------------------
	nQSO := chunkShare(p.NQuasars, index, nChunks)
	qrng := rand.New(rand.NewSource(subSeed(p.Seed, "quasars", index)))
	for i := 0; i < nQSO; i++ {
		pos := randInStrip(qrng, p.FootprintLatDeg, lonLo, lonHi)
		obj, spec := p.makeQuasar(qrng, nextID, pos)
		ch.Photo = append(ch.Photo, obj)
		ch.Spec = append(ch.Spec, spec)
		nextID++
	}
	return ch, nil
}

// Generate produces the whole survey as one chunk list.
func Generate(p Params, nChunks int) ([]*Chunk, error) {
	chunks := make([]*Chunk, 0, nChunks)
	for i := 0; i < nChunks; i++ {
		ch, err := GenerateChunk(p, i, nChunks)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, ch)
	}
	return chunks, nil
}

// GenerateAll produces the full photometric catalog as a single slice,
// convenient for tests and in-memory analysis.
func GenerateAll(p Params, nChunks int) ([]catalog.PhotoObj, []catalog.SpecObj, error) {
	var photo []catalog.PhotoObj
	var spec []catalog.SpecObj
	for i := 0; i < nChunks; i++ {
		ch, err := GenerateChunk(p, i, nChunks)
		if err != nil {
			return nil, nil, err
		}
		photo = append(photo, ch.Photo...)
		spec = append(spec, ch.Spec...)
	}
	return photo, spec, nil
}

// chunkShare splits total over nChunks with the remainder spread over the
// first chunks, so the shares sum exactly to total.
func chunkShare(total, index, nChunks int) int {
	share := total / nChunks
	if index < total%nChunks {
		share++
	}
	return share
}

// spectroMagCut returns the r-magnitude above which galaxies receive
// spectra, chosen so approximately SpectroFrac of the magnitude
// distribution is selected — the paper's "selected by a magnitude and
// surface brightness limit in the r band".
func (p Params) spectroMagCut() float64 {
	a := math.Pow(10, 0.6*14)
	b := math.Pow(10, 0.6*p.MagLimit)
	return math.Log10(a+p.SpectroFrac*(b-a)) / 0.6
}

func (p Params) makeGalaxy(rng *rand.Rand, id catalog.ObjID, pos sphere.Vec3, redden, spectroCut float64) (catalog.PhotoObj, *catalog.SpecObj) {
	var obj catalog.PhotoObj
	obj.ObjID = id
	ra, dec := sphere.ToRADec(pos)
	if err := obj.SetPos(ra, dec); err != nil {
		panic(err) // unreachable: pos is a unit vector
	}
	rMag := sampleMagnitude(rng, 14, p.MagLimit)
	obj.Mag = drawColors(rng, rMag, catalog.ClassGalaxy, redden)
	fillCommon(rng, &obj, rMag, catalog.ClassGalaxy)

	if rMag >= spectroCut {
		return obj, nil
	}
	// Redshift loosely correlated with apparent faintness.
	z := float32(0.02 + 0.05*(rMag-14) + 0.03*math.Abs(rng.NormFloat64()))
	if z > 0.8 {
		z = 0.8
	}
	spec := &catalog.SpecObj{
		ObjID:       obj.ObjID,
		HTMID:       obj.HTMID,
		Redshift:    z,
		RedshiftErr: 0.0002,
		Class:       catalog.ClassGalaxy,
		FiberID:     uint16(1 + rng.Intn(640)),
		Plate:       uint16(rng.Intn(2000)),
		SN:          float32(5 + rng.Float64()*25),
		Lines:       galaxyLines(rng, z),
	}
	return obj, spec
}

func (p Params) makeStar(rng *rand.Rand, id catalog.ObjID, pos sphere.Vec3) catalog.PhotoObj {
	var obj catalog.PhotoObj
	obj.ObjID = id
	ra, dec := sphere.ToRADec(pos)
	if err := obj.SetPos(ra, dec); err != nil {
		panic(err)
	}
	rMag := sampleMagnitude(rng, 13, p.MagLimit)
	obj.Mag = drawColors(rng, rMag, catalog.ClassStar, 0)
	fillCommon(rng, &obj, rMag, catalog.ClassStar)
	// ~3% of stars show measurable proper motion in repeat scans.
	if rng.Float64() < 0.03 {
		obj.MuRA = float32(rng.NormFloat64() * 50)
		obj.MuDec = float32(rng.NormFloat64() * 50)
		obj.Flags |= catalog.FlagMoved
	}
	return obj
}

func (p Params) makeQuasar(rng *rand.Rand, id catalog.ObjID, pos sphere.Vec3) (catalog.PhotoObj, catalog.SpecObj) {
	var obj catalog.PhotoObj
	obj.ObjID = id
	ra, dec := sphere.ToRADec(pos)
	if err := obj.SetPos(ra, dec); err != nil {
		panic(err)
	}
	rMag := sampleMagnitude(rng, 16, p.MagLimit)
	obj.Mag = drawColors(rng, rMag, catalog.ClassQuasar, 0)
	fillCommon(rng, &obj, rMag, catalog.ClassQuasar)
	// Half of quasars vary between epochs.
	if rng.Float64() < 0.5 {
		obj.Flags |= catalog.FlagVariable
	}
	z := float32(0.3 + 4.7*math.Pow(rng.Float64(), 1.5))
	spec := catalog.SpecObj{
		ObjID:       obj.ObjID,
		HTMID:       obj.HTMID,
		Redshift:    z,
		RedshiftErr: 0.002,
		Class:       catalog.ClassQuasar,
		FiberID:     uint16(1 + rng.Intn(640)),
		Plate:       uint16(rng.Intn(2000)),
		SN:          float32(3 + rng.Float64()*15),
		Lines:       quasarLines(rng, z),
	}
	return obj, spec
}

// Rest wavelengths of the lines the synthetic spectra identify.
const (
	lineHAlpha = 6563
	lineHBeta  = 4861
	lineOIII   = 5007
	lineOII    = 3727
	lineMgII   = 2798
	lineCIV    = 1549
	lineLyA    = 1216
)

func galaxyLines(rng *rand.Rand, z float32) [catalog.NumLines]catalog.SpectralLine {
	rest := [catalog.NumLines]uint16{lineHAlpha, lineOIII, lineHBeta, lineOII, lineMgII}
	var lines [catalog.NumLines]catalog.SpectralLine
	for i, r := range rest {
		lines[i] = catalog.SpectralLine{
			Wavelength: float32(r) * (1 + z),
			EquivWidth: float32(rng.NormFloat64() * 8),
			LineID:     r,
		}
	}
	return lines
}

func quasarLines(rng *rand.Rand, z float32) [catalog.NumLines]catalog.SpectralLine {
	rest := [catalog.NumLines]uint16{lineLyA, lineCIV, lineMgII, lineHBeta, lineHAlpha}
	var lines [catalog.NumLines]catalog.SpectralLine
	for i, r := range rest {
		lines[i] = catalog.SpectralLine{
			Wavelength: float32(r) * (1 + z),
			EquivWidth: float32(20 + rng.ExpFloat64()*30),
			LineID:     r,
		}
	}
	return lines
}

// RadioSource is one entry of the synthetic external (FIRST-like) radio
// catalog used by the cross-identification workload.
type RadioSource struct {
	ID      uint64
	RA, Dec float64
	X, Y, Z float64
	FluxMJy float32 // peak flux, mJy
	Matched bool    // ground truth: true if drawn from an optical object
	TruthID catalog.ObjID
}

// Pos returns the source position as a unit vector.
func (r *RadioSource) Pos() sphere.Vec3 { return sphere.Vec3{X: r.X, Y: r.Y, Z: r.Z} }

// RadioCatalog derives an external catalog from the optical one: a fraction
// of optical quasars and bright galaxies re-observed with positional scatter
// (astrometric error), plus spurious unmatched detections. Cross-matching
// this against the primary is the paper's "each subsequent astronomical
// survey will want to cross-identify its objects with the SDSS catalog".
func RadioCatalog(seed int64, optical []catalog.PhotoObj, matchFrac float64, scatterArcsec float64, spuriousFrac float64) []RadioSource {
	rng := rand.New(rand.NewSource(subSeed(seed, "radio", 0)))
	var out []RadioSource
	var id uint64
	sigma := scatterArcsec * sphere.Arcsec
	for i := range optical {
		o := &optical[i]
		radioLoud := o.Class == catalog.ClassQuasar ||
			(o.Class == catalog.ClassGalaxy && o.Mag[catalog.R] < 18)
		if !radioLoud || rng.Float64() > matchFrac {
			continue
		}
		pos := scatter(rng, o.Pos(), sigma)
		ra, dec := sphere.ToRADec(pos)
		out = append(out, RadioSource{
			ID: id, RA: ra, Dec: dec,
			X: pos.X, Y: pos.Y, Z: pos.Z,
			FluxMJy: float32(1 + rng.ExpFloat64()*20),
			Matched: true, TruthID: o.ObjID,
		})
		id++
	}
	// Spurious sources, uniform over the sphere region spanned by the
	// matched sources' footprint (approximate with the full survey cap).
	nSpurious := int(float64(len(out)) * spuriousFrac)
	for i := 0; i < nSpurious; i++ {
		pos := randInCap(rng, 30)
		ra, dec := sphere.ToRADec(pos)
		out = append(out, RadioSource{
			ID: id, RA: ra, Dec: dec,
			X: pos.X, Y: pos.Y, Z: pos.Z,
			FluxMJy: float32(1 + rng.ExpFloat64()*5),
		})
		id++
	}
	return out
}
