// Package skygen generates the synthetic sky survey that stands in for the
// SDSS telescope data. The real photometric catalog is proprietary telescope
// output; what the archive's data structures care about is its statistical
// shape, which the generator reproduces:
//
//   - galaxies are strongly clustered on the sky (hierarchical blobs with
//     large density contrasts — the property [Csabai97] makes subdivision
//     hard), plus a smooth field population;
//   - stars concentrate toward the galactic plane;
//   - quasars are rare, uniform, point-like, with UV-excess colors;
//   - magnitudes follow steep number counts toward the faint limit;
//   - colors are class-correlated, so color cuts separate classes;
//   - a fraction of galaxies carries spectroscopic redshifts.
//
// Everything is seeded and deterministic: the same Params always produce the
// same catalog, bit for bit, chunk by chunk. The survey footprint is the
// North Galactic Cap (galactic latitude above +30°), approximately the
// 10,000 square degrees the SDSS photometric survey covers.
package skygen

import (
	"math"
	"math/rand"

	"sdss/internal/catalog"
	"sdss/internal/sphere"
)

// Params configures a synthetic survey. The counts are totals for the whole
// survey; chunked generation divides them deterministically.
type Params struct {
	Seed      int64
	NGalaxies int
	NStars    int
	NQuasars  int

	// ClusterFrac is the fraction of galaxies placed in clusters; the
	// rest are uniform "field" galaxies. Default 0.35.
	ClusterFrac float64
	// MeanClusterSize is the mean number of member galaxies per cluster.
	// Default 40.
	MeanClusterSize float64
	// ClusterRadiusArcmin is the angular scale (Gaussian sigma) of cluster
	// cores in arcminutes. Default 3.
	ClusterRadiusArcmin float64

	// SpectroFrac is the fraction of the brightest galaxies that receive
	// spectra (the paper: ~1M of 100M). Default 0.01.
	SpectroFrac float64

	// FootprintLatDeg is the minimum galactic latitude of the survey cap.
	// Default +30 (the North Galactic Cap).
	FootprintLatDeg float64

	// MagLimit is the survey's limiting r magnitude. Default 23.
	MagLimit float64
}

// Default returns survey parameters scaled so the catalog holds about n
// objects total, with the class mix of the paper (≈½ galaxies, ≈½ stars,
// ~0.5% quasars).
func Default(seed int64, n int) Params {
	return Params{
		Seed:                seed,
		NGalaxies:           n / 2,
		NStars:              n - n/2 - n/200,
		NQuasars:            n / 200,
		ClusterFrac:         0.35,
		MeanClusterSize:     40,
		ClusterRadiusArcmin: 3,
		SpectroFrac:         0.01,
		FootprintLatDeg:     30,
		MagLimit:            23,
	}
}

func (p *Params) setDefaults() {
	if p.ClusterFrac == 0 {
		p.ClusterFrac = 0.35
	}
	if p.MeanClusterSize == 0 {
		p.MeanClusterSize = 40
	}
	if p.ClusterRadiusArcmin == 0 {
		p.ClusterRadiusArcmin = 3
	}
	if p.SpectroFrac == 0 {
		p.SpectroFrac = 0.01
	}
	if p.FootprintLatDeg == 0 {
		p.FootprintLatDeg = 30
	}
	if p.MagLimit == 0 {
		p.MagLimit = 23
	}
}

// InFootprint reports whether a position lies inside the survey cap.
func (p Params) InFootprint(v sphere.Vec3) bool {
	_, b := sphere.ToLonLat(sphere.Galactic, v)
	return b >= p.FootprintLatDeg
}

// FootprintArea returns the survey cap's solid angle in steradians.
func (p Params) FootprintArea() float64 {
	lat := p.FootprintLatDeg
	if lat == 0 {
		lat = 30
	}
	return 2 * math.Pi * (1 - math.Sin(sphere.Radians(lat)))
}

// randInCap draws a position uniformly within the galactic cap b ≥ latDeg
// and returns the equatorial unit vector.
func randInCap(rng *rand.Rand, latDeg float64) sphere.Vec3 {
	sinLo := math.Sin(sphere.Radians(latDeg))
	z := sinLo + rng.Float64()*(1-sinLo) // uniform in sin(b)
	phi := 2 * math.Pi * rng.Float64()
	r := math.Sqrt(1 - z*z)
	galVec := sphere.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
	return sphere.FrameToEquatorial(sphere.Galactic).MulVec(galVec)
}

// scatter displaces a position by a 2-D Gaussian with the given angular
// sigma (radians), used for cluster members and cross-catalog position
// errors.
func scatter(rng *rand.Rand, v sphere.Vec3, sigma float64) sphere.Vec3 {
	// Build a local tangent basis and offset within it.
	e1 := v.Orthogonal()
	e2 := v.Cross(e1)
	dx := rng.NormFloat64() * sigma
	dy := rng.NormFloat64() * sigma
	return v.Add(e1.Scale(dx)).Add(e2.Scale(dy)).Normalize()
}

// sampleMagnitude draws an r-band magnitude from steep number counts
// N(<m) ∝ 10^(0.6·m), truncated to [mMin, mMax] — the Euclidean count slope
// that makes faint objects vastly outnumber bright ones.
func sampleMagnitude(rng *rand.Rand, mMin, mMax float64) float64 {
	a := math.Pow(10, 0.6*mMin)
	b := math.Pow(10, 0.6*mMax)
	u := a + rng.Float64()*(b-a)
	return math.Log10(u) / 0.6
}

// Class color loci: mean colors (u−g, g−r, r−i, i−z) and scatter.
type colorLocus struct {
	mean  [4]float64
	sigma [4]float64
}

var (
	galaxyLocus = colorLocus{
		mean:  [4]float64{1.40, 0.70, 0.40, 0.30},
		sigma: [4]float64{0.30, 0.25, 0.15, 0.15},
	}
	// Stars are drawn from a two-branch locus (blue + red) chosen per
	// object in drawColors.
	starBlueLocus = colorLocus{
		mean:  [4]float64{1.00, 0.45, 0.15, 0.05},
		sigma: [4]float64{0.20, 0.15, 0.08, 0.08},
	}
	starRedLocus = colorLocus{
		mean:  [4]float64{2.40, 1.35, 0.55, 0.30},
		sigma: [4]float64{0.25, 0.12, 0.10, 0.08},
	}
	quasarLocus = colorLocus{
		mean:  [4]float64{0.15, 0.20, 0.15, 0.10},
		sigma: [4]float64{0.12, 0.12, 0.10, 0.10},
	}
)

// drawColors fills the five magnitudes from an r magnitude and the class
// locus, plus optional reddening offset for cluster ellipticals.
func drawColors(rng *rand.Rand, rMag float64, class catalog.Class, redden float64) [catalog.NumBands]float32 {
	var locus colorLocus
	switch class {
	case catalog.ClassGalaxy:
		locus = galaxyLocus
	case catalog.ClassQuasar:
		locus = quasarLocus
	default:
		if rng.Float64() < 0.6 {
			locus = starBlueLocus
		} else {
			locus = starRedLocus
		}
	}
	var c [4]float64
	for i := range c {
		c[i] = locus.mean[i] + rng.NormFloat64()*locus.sigma[i]
	}
	c[1] += redden // g−r reddening for cluster members
	var m [catalog.NumBands]float32
	m[catalog.R] = float32(rMag)
	m[catalog.G] = float32(rMag + c[1])
	m[catalog.U] = float32(rMag + c[1] + c[0])
	m[catalog.I] = float32(rMag - c[2])
	m[catalog.Z] = float32(rMag - c[2] - c[3])
	return m
}

// fillCommon populates the pipeline fields shared by all classes.
func fillCommon(rng *rand.Rand, p *catalog.PhotoObj, rMag float64, class catalog.Class) {
	p.Class = class
	for b := 0; b < catalog.NumBands; b++ {
		// Fainter objects have larger errors.
		p.MagErr[b] = float32(0.02 + 0.08*math.Exp(0.5*(rMag-22)))
		p.Extinction[b] = float32(0.02 + 0.1*rng.Float64())
	}
	p.SkyBright = float32(20.5 + rng.NormFloat64()*0.3)
	p.Airmass = float32(1.1 + rng.Float64()*0.4)
	p.RowC = float32(rng.Float64() * 2048)
	p.ColC = float32(rng.Float64() * 2048)
	p.PSFWidth = float32(1.2 + rng.Float64()*0.6)
	p.MJD = 51500 + rng.Float64()*1800
	p.Run = uint16(100 + rng.Intn(900))
	p.Camcol = uint8(1 + rng.Intn(6))
	p.Field = uint16(rng.Intn(800))

	// Shape by class: galaxies are extended, stars and quasars are PSFs.
	if class == catalog.ClassGalaxy {
		p.PetroRad = float32(math.Exp(rng.NormFloat64()*0.5) * 3.0 * math.Pow(10, 0.1*(20-rMag)))
		p.PetroR50 = p.PetroRad * float32(0.45+rng.Float64()*0.1)
		p.SurfBright = float32(rMag + 2.5*math.Log10(2*math.Pi*float64(p.PetroR50*p.PetroR50)))
	} else {
		p.PetroRad = p.PSFWidth * float32(1.0+rng.Float64()*0.1)
		p.PetroR50 = p.PetroRad / 2
		p.SurfBright = float32(rMag)
	}

	// Radial profiles: exponential falloff for galaxies, PSF-like core for
	// point sources; amplitudes track total flux.
	flux := math.Pow(10, -0.4*(rMag-22.5)) // nanomaggies-style scale
	scale := float64(p.PetroR50)
	if scale <= 0 {
		scale = 1
	}
	for b := 0; b < catalog.NumBands; b++ {
		bandFlux := flux * math.Pow(10, -0.4*float64(p.Mag[b]-p.Mag[catalog.R]))
		for i := 0; i < catalog.NumProfileBins; i++ {
			rAnnulus := 0.5 * math.Pow(1.4, float64(i)) // log-spaced radii
			var prof float64
			if class == catalog.ClassGalaxy {
				prof = bandFlux * math.Exp(-rAnnulus/scale)
			} else {
				prof = bandFlux * math.Exp(-rAnnulus*rAnnulus/(2*scale*scale))
			}
			p.Prof[b][i] = float32(prof * (1 + 0.05*rng.NormFloat64()))
			p.ProfErr[b][i] = float32(math.Abs(prof)*0.05 + 1e-3)
		}
	}

	// Flags: rare pipeline conditions.
	if rng.Float64() < 0.02 {
		p.Flags |= catalog.FlagSaturated
	}
	if rng.Float64() < 0.08 {
		p.Flags |= catalog.FlagBlended
	}
	if rng.Float64() < 0.01 {
		p.Flags |= catalog.FlagEdge
	}
	if rng.Float64() < 0.03 {
		p.Flags |= catalog.FlagInterp
	}
}
