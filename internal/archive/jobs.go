package archive

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdss/internal/qe"
	"sdss/internal/query"
)

// JobState is the lifecycle phase of an asynchronous query job.
type JobState string

// The job lifecycle: queued → running → done | failed | canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// terminal reports whether the job has finished (success or not).
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobConfig bounds the batch tier: how many mining queries run at once, how
// many may wait, and how long finished results stay fetchable. Zero fields
// take the defaults.
type JobConfig struct {
	// MaxConcurrent is the number of jobs executing at once (default 2) —
	// the batch half of SkyServer's interactive-vs-batch split.
	MaxConcurrent int
	// MaxQueued caps the admission queue (default 32); past it, Submit
	// refuses with ErrQueueFull.
	MaxQueued int
	// MaxRows caps each job's materialized result (default 1e6 rows).
	MaxRows int
	// Timeout aborts a single job's execution (default 10 minutes).
	Timeout time.Duration
	// TTL is how long a terminal job stays fetchable (default 15 minutes);
	// expired jobs vanish from Get/List/Rows.
	TTL time.Duration
}

func (c JobConfig) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return 2
}

func (c JobConfig) maxQueued() int {
	if c.MaxQueued > 0 {
		return c.MaxQueued
	}
	return 32
}

func (c JobConfig) maxRows() int {
	if c.MaxRows > 0 {
		return c.MaxRows
	}
	return 1_000_000
}

func (c JobConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Minute
}

func (c JobConfig) ttl() time.Duration {
	if c.TTL > 0 {
		return c.TTL
	}
	return 15 * time.Minute
}

// ErrQueueFull is returned by Submit when the batch queue is at capacity.
var ErrQueueFull = errors.New("archive: job queue full, retry later")

// job is the manager's record of one asynchronous query. All fields are
// guarded by the manager's mutex.
type job struct {
	id       string
	src      string
	prep     *query.Prepared
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	errMsg   string
	cols     []query.Column
	results  []qe.Result
	trunc    bool
	cancel   context.CancelFunc
}

// JobStatus is the public snapshot of a job, as served by the REST tier.
type JobStatus struct {
	ID       string     `json:"id"`
	Query    string     `json:"query"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	RowCount int        `json:"row_count"`
	// Truncated reports the job's row cap cut the result short.
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// JobManager runs query jobs asynchronously with admission control: at most
// MaxConcurrent execute while the rest wait in a bounded FIFO queue, and
// finished results expire after a TTL. It models the batch path the
// SkyServer papers pair with bounded interactive queries.
type JobManager struct {
	engine *qe.Engine
	cfg    JobConfig

	mu      sync.Mutex
	jobs    map[string]*job
	queue   []*job
	running int
	seq     int
	// now is the clock; tests may override it.
	now func() time.Time
	// exec runs one job's query to completion; tests may override it to
	// control execution without real queries or sleeps.
	exec func(ctx context.Context, j *job) (results []qe.Result, truncated bool, err error)
}

// NewJobManager builds a job manager over an engine.
func NewJobManager(engine *qe.Engine, cfg JobConfig) *JobManager {
	m := &JobManager{
		engine: engine,
		cfg:    cfg,
		jobs:   make(map[string]*job),
		now:    time.Now,
	}
	m.exec = m.execQuery
	return m
}

// execQuery is the production executor: run the prepared query under the
// batch bounds and materialize its rows.
func (m *JobManager) execQuery(ctx context.Context, j *job) ([]qe.Result, bool, error) {
	rows, err := m.engine.ExecuteOpts(ctx, j.prep, qe.ExecOptions{
		Limit:   m.cfg.maxRows(),
		Timeout: m.cfg.timeout(),
	})
	if err != nil {
		return nil, false, err
	}
	results, err := rows.Collect()
	return results, rows.Truncated(), err
}

// Submit compiles and enqueues a query, returning its initial status.
// Compile errors surface here, before the job exists; admission overflow
// returns ErrQueueFull.
func (m *JobManager) Submit(src string) (JobStatus, error) {
	prep, err := query.PrepareString(src)
	if err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if m.running >= m.cfg.maxConcurrent() && len(m.queue) >= m.cfg.maxQueued() {
		return JobStatus{}, ErrQueueFull
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		src:     src,
		prep:    prep,
		state:   JobQueued,
		created: m.now(),
		cols:    prep.Columns(),
	}
	m.jobs[j.id] = j
	if m.running < m.cfg.maxConcurrent() {
		m.startLocked(j)
	} else {
		m.queue = append(m.queue, j)
	}
	return m.statusLocked(j), nil
}

// startLocked moves a job to running and launches its executor.
func (m *JobManager) startLocked(j *job) {
	m.running++
	j.state = JobRunning
	j.started = m.now()
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	go m.run(ctx, j)
}

// run executes one job to completion and then admits the next queued job.
func (m *JobManager) run(ctx context.Context, j *job) {
	results, trunc, err := m.exec(ctx, j)
	canceled := ctx.Err() == context.Canceled

	m.mu.Lock()
	j.finished = m.now()
	switch {
	case canceled:
		j.state = JobCanceled
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
	default:
		j.state = JobDone
		j.results = results
		j.trunc = trunc
	}
	m.running--
	if len(m.queue) > 0 && m.running < m.cfg.maxConcurrent() {
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.startLocked(next)
	}
	m.mu.Unlock()
}

// Cancel aborts a queued or running job. It reports false for unknown (or
// expired) jobs; canceling a terminal job is a no-op.
func (m *JobManager) Cancel(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	switch j.state {
	case JobQueued:
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		j.state = JobCanceled
		j.finished = m.now()
	case JobRunning:
		j.cancel() // run() records the terminal state
	}
	return m.statusLocked(j), true
}

// Get returns a job's status snapshot.
func (m *JobManager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(j), true
}

// List returns every live job's status, newest first.
func (m *JobManager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	// Stable order for clients: newest first, submission order ("job-N",
	// longer suffix = later) breaking same-timestamp ties.
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[k].Created.Before(out[i].Created)
		}
		if len(out[i].ID) != len(out[k].ID) {
			return len(out[i].ID) > len(out[k].ID)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Rows returns a finished job's schema and materialized rows. ready is
// false while the job is still queued or running (or failed).
func (m *JobManager) Rows(id string) (cols []query.Column, results []qe.Result, truncated, found, ready bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, false, false, false
	}
	if j.state != JobDone {
		return nil, nil, false, true, false
	}
	return j.cols, j.results, j.trunc, true, true
}

// Counts reports queue-depth statistics for the status endpoint.
func (m *JobManager) Counts() (queued, running, finished int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	for _, j := range m.jobs {
		switch {
		case j.state == JobQueued:
			queued++
		case j.state == JobRunning:
			running++
		default:
			finished++
		}
	}
	return
}

// sweepLocked drops terminal jobs past their TTL.
func (m *JobManager) sweepLocked() {
	cutoff := m.now().Add(-m.cfg.ttl())
	for id, j := range m.jobs {
		if j.state.terminal() && j.finished.Before(cutoff) {
			delete(m.jobs, id)
		}
	}
}

func (m *JobManager) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Query:     j.src,
		State:     j.state,
		Created:   j.created,
		RowCount:  len(j.results),
		Truncated: j.trunc,
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
