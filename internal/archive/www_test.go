package archive

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/skygen"
)

func buildEngine(t testing.TB) *qe.Engine {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(1, 3000), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	return &qe.Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}
}

func newTestServer(t testing.TB) (*WWW, *httptest.Server) {
	t.Helper()
	www := NewWWW(buildEngine(t))
	srv := httptest.NewServer(www.Handler())
	t.Cleanup(srv.Close)
	return www, srv
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func queryPath(q string, extra string) string {
	p := "/v1/query?q=" + url.QueryEscape(q)
	if extra != "" {
		p += "&" + extra
	}
	return p
}

func TestV1Status(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv, "/v1/status")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st["version"] != "v1" {
		t.Errorf("version = %v, want v1", st["version"])
	}
	if st["photo_records"].(float64) == 0 {
		t.Error("status reports empty archive")
	}
}

func TestV1Tables(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv, "/v1/tables")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var out struct {
		Tables []struct {
			Name    string `json:"name"`
			Records int64  `json:"records"`
			Columns []struct {
				Name string `json:"name"`
				Type string `json:"type"`
			} `json:"columns"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(out.Tables))
	}
	byName := map[string]int{}
	for i, tb := range out.Tables {
		byName[tb.Name] = i
	}
	tag, ok := byName["tag"]
	if !ok {
		t.Fatalf("no tag table in %v", byName)
	}
	if out.Tables[tag].Records == 0 {
		t.Error("tag table reports zero records")
	}
	cols := out.Tables[tag].Columns
	if len(cols) != 14 {
		t.Errorf("tag has %d columns, want 14", len(cols))
	}
	if cols[0].Name != "objid" || cols[0].Type != "id" {
		t.Errorf("tag col 0 = %+v, want objid/id", cols[0])
	}
}

func TestV1QueryJSON(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv, queryPath("SELECT objid, ra, dec, r FROM tag WHERE r < 20", ""))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var doc struct {
		Columns []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"columns"`
		Rows      []map[string]any `json:"rows"`
		RowCount  int              `json:"row_count"`
		Truncated bool             `json:"truncated"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"objid", "ra", "dec", "r"}
	if len(doc.Columns) != len(wantCols) {
		t.Fatalf("got %d columns, want %d", len(doc.Columns), len(wantCols))
	}
	for i, name := range wantCols {
		if doc.Columns[i].Name != name {
			t.Errorf("column %d = %q, want %q", i, doc.Columns[i].Name, name)
		}
	}
	if doc.Columns[0].Type != "id" || doc.Columns[1].Type != "float" {
		t.Errorf("column types = %v", doc.Columns)
	}
	if doc.RowCount == 0 || len(doc.Rows) != doc.RowCount {
		t.Fatalf("row_count = %d, rows = %d", doc.RowCount, len(doc.Rows))
	}
	row := doc.Rows[0]
	for _, name := range wantCols {
		if _, ok := row[name]; !ok {
			t.Errorf("row missing named field %q: %v", name, row)
		}
	}
	if r := row["r"].(float64); r >= 20 {
		t.Errorf("row violates predicate: r = %v", r)
	}
}

func TestV1QueryCSV(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv, queryPath("SELECT objid, ra, dec, r FROM tag WHERE r < 20", "format=csv"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	cr := csv.NewReader(bytes.NewReader(body))
	records, err := cr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("csv has %d records, want header + rows", len(records))
	}
	header := records[0]
	want := []string{"objid", "ra", "dec", "r"}
	if strings.Join(header, ",") != strings.Join(want, ",") {
		t.Errorf("csv header = %v, want %v (real column names from the compiler)", header, want)
	}
	for _, rec := range records[1:] {
		if len(rec) != 4 {
			t.Fatalf("csv row has %d fields: %v", len(rec), rec)
		}
	}
}

func TestV1QueryNDJSON(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv, queryPath("SELECT objid, r FROM tag WHERE r < 20", "format=ndjson"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("no ndjson rows")
	}
	for _, ln := range lines {
		var row map[string]any
		if err := json.Unmarshal(ln, &row); err != nil {
			t.Fatalf("bad ndjson line %q: %v", ln, err)
		}
		if _, ok := row["error"]; ok {
			t.Fatalf("stream error: %s", ln)
		}
		if _, ok := row["objid"]; !ok {
			t.Fatalf("row missing objid field: %s", ln)
		}
	}
}

func TestV1QueryTruncationMarker(t *testing.T) {
	www, srv := newTestServer(t)
	www.MaxRows = 7

	// NDJSON: exactly 7 rows plus one {"truncated":true,"rows":7} trailer.
	code, body := get(t, srv, queryPath("SELECT objid FROM tag", "format=ndjson"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 7 rows + 1 trailer", len(lines))
	}
	var trailer struct {
		Truncated bool `json:"truncated"`
		Rows      int  `json:"rows"`
	}
	if err := json.Unmarshal(lines[7], &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Truncated || trailer.Rows != 7 {
		t.Errorf("trailer = %+v, want truncated=true rows=7", trailer)
	}

	// JSON document carries the flag.
	code, body = get(t, srv, queryPath("SELECT objid FROM tag", ""))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var doc struct {
		RowCount  int  `json:"row_count"`
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.RowCount != 7 || !doc.Truncated {
		t.Errorf("json doc = %+v, want 7 truncated rows", doc)
	}

	// CSV: trailing comment marks the cut.
	code, body = get(t, srv, queryPath("SELECT objid FROM tag", "format=csv"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("# truncated after 7 rows")) {
		t.Errorf("csv lacks truncation comment:\n%s", body)
	}

	// An under-cap query must NOT carry the marker.
	code, body = get(t, srv, queryPath("SELECT objid FROM tag LIMIT 3", "format=ndjson"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	if bytes.Contains(body, []byte("truncated")) {
		t.Errorf("un-truncated stream carries marker:\n%s", body)
	}
}

func TestV1QueryLimitOffset(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT objid, r FROM tag ORDER BY r LIMIT 10"
	code, body := get(t, srv, queryPath(q, ""))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var all struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(all.Rows))
	}
	// Page 2 of size 3 should equal rows 3..5 of the full result.
	code, body = get(t, srv, queryPath(q, "limit=3&offset=3"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var page struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Rows) != 3 {
		t.Fatalf("page has %d rows, want 3", len(page.Rows))
	}
	for i, row := range page.Rows {
		if row["objid"] != all.Rows[i+3]["objid"] {
			t.Errorf("page row %d = %v, want %v", i, row["objid"], all.Rows[i+3]["objid"])
		}
	}
}

func TestV1QueryErrors(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/query", 400},
		{queryPath("SELECT bogus FROM tag", ""), 400},
		{queryPath("SELECT bogus FROM tag", "format=csv"), 400},
		{queryPath("SELECT bogus FROM tag", "format=ndjson"), 400},
		{queryPath("NOT A QUERY", ""), 400},
		{queryPath("SELECT objid FROM tag", "format=xml"), 400},
		{queryPath("SELECT objid FROM tag", "limit=-1"), 400},
		{queryPath("SELECT objid FROM tag", "timeout=banana"), 400},
	}
	for _, c := range cases {
		resp, err := srv.Client().Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.path, resp.StatusCode, c.want)
			continue
		}
		// Error bodies are JSON with an "error" field, headers uncommitted
		// at failure time so the status code is real.
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: error content-type = %q", c.path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", c.path, body)
		}
	}
}

func TestV1Cone(t *testing.T) {
	www, srv := newTestServer(t)

	// Center on a real object.
	rows, err := www.Engine.ExecuteString(context.Background(), "SELECT ra, dec FROM tag LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil || len(res) == 0 {
		t.Fatalf("seed query failed: %v", err)
	}
	ra, dec := res[0].Values[0], res[0].Values[1]

	path := fmt.Sprintf("/v1/cone?ra=%g&dec=%g&radius=30&cols=%s", ra, dec, url.QueryEscape("objid, ra, dec, r"))
	code, body := get(t, srv, path)
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var doc struct {
		Columns []struct {
			Name string `json:"name"`
		} `json:"columns"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) == 0 {
		t.Error("cone around a real object returned nothing")
	}
	if len(doc.Columns) != 4 || doc.Columns[3].Name != "r" {
		t.Errorf("cone columns = %v", doc.Columns)
	}

	// Default projection is the full tag schema.
	code, body = get(t, srv, fmt.Sprintf("/v1/cone?ra=%g&dec=%g&radius=30", ra, dec))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Columns) != 14 {
		t.Errorf("default cone projection has %d columns, want all 14", len(doc.Columns))
	}

	// Error paths.
	for _, p := range []string{
		"/v1/cone?ra=abc&dec=1&radius=2",
		"/v1/cone?ra=1&dec=1",
		"/v1/cone?ra=1&dec=1&radius=2&table=nebula",
		"/v1/cone?ra=1&dec=1&radius=2&cols=bogus",
	} {
		code, _ := get(t, srv, p)
		if code != 400 {
			t.Errorf("%s: status = %d, want 400", p, code)
		}
	}
}

func TestV1Explain(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT objid, r FROM tag WHERE CIRCLE(185, 32, 10) AND r < 20 ORDER BY r LIMIT 5"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var out struct {
		Columns []struct {
			Name string `json:"name"`
		} `json:"columns"`
		Plan struct {
			Kind    string `json:"kind"`
			Table   string `json:"table"`
			Indexed bool   `json:"indexed"`
			Limit   int    `json:"limit"`
		} `json:"plan"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan.Kind != "scan" || out.Plan.Table != "tag" {
		t.Errorf("plan = %+v", out.Plan)
	}
	if !out.Plan.Indexed {
		t.Error("CIRCLE query plan not marked as htm-indexed")
	}
	if out.Plan.Limit != 5 {
		t.Errorf("plan limit = %d", out.Plan.Limit)
	}
	if len(out.Columns) != 2 || out.Columns[0].Name != "objid" {
		t.Errorf("explain columns = %v", out.Columns)
	}
	if !strings.Contains(out.Text, "SCAN tag") || !strings.Contains(out.Text, "htm-index") {
		t.Errorf("explain text = %q", out.Text)
	}

	// A set operation explains as a two-child tree.
	code, body = get(t, srv, "/v1/explain?q="+url.QueryEscape(
		"SELECT objid FROM tag WHERE r < 18 UNION SELECT objid FROM tag WHERE g < 18"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var u struct {
		Plan struct {
			Kind     string `json:"kind"`
			Children []any  `json:"children"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &u); err != nil {
		t.Fatal(err)
	}
	if u.Plan.Kind != "union" || len(u.Plan.Children) != 2 {
		t.Errorf("union plan = %+v", u.Plan)
	}

	if code, _ := get(t, srv, "/v1/explain?q=garbage"); code != 400 {
		t.Errorf("bad explain query status = %d, want 400", code)
	}
}

func postJSON(t *testing.T, srv *httptest.Server, path string, v any) (int, []byte) {
	t.Helper()
	b, _ := json.Marshal(v)
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func waitForJob(t *testing.T, srv *httptest.Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, srv, "/v1/jobs/"+id)
		if code != 200 {
			t.Fatalf("poll status = %d: %s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job reached %s (error %q), want %s", st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func TestV1JobLifecycle(t *testing.T) {
	_, srv := newTestServer(t)

	// Submit.
	code, body := postJSON(t, srv, "/v1/jobs", map[string]string{
		"query": "SELECT objid, ra, dec, r FROM tag WHERE r < 21",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != JobQueued && st.State != JobRunning) {
		t.Fatalf("initial status = %+v", st)
	}

	// Poll to done.
	done := waitForJob(t, srv, st.ID, JobDone)
	if done.RowCount == 0 {
		t.Error("done job has no rows")
	}

	// Fetch rows as JSON: named fields from the compiler's projection.
	code, body = get(t, srv, "/v1/jobs/"+st.ID+"/rows")
	if code != 200 {
		t.Fatalf("rows status = %d: %s", code, body)
	}
	var doc struct {
		Columns []struct {
			Name string `json:"name"`
		} `json:"columns"`
		Rows     []map[string]any `json:"rows"`
		RowCount int              `json:"row_count"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.RowCount != done.RowCount || len(doc.Rows) != doc.RowCount {
		t.Errorf("rows = %d, status said %d", doc.RowCount, done.RowCount)
	}
	if len(doc.Columns) != 4 || doc.Columns[3].Name != "r" {
		t.Errorf("job columns = %v", doc.Columns)
	}

	// Fetch rows as CSV too.
	code, body = get(t, srv, "/v1/jobs/"+st.ID+"/rows?format=csv")
	if code != 200 {
		t.Fatalf("csv rows status = %d: %s", code, body)
	}
	if !bytes.HasPrefix(body, []byte("objid,ra,dec,r\n")) {
		t.Errorf("job csv header wrong:\n%.80s", body)
	}

	// The job shows up in the list.
	code, body = get(t, srv, "/v1/jobs")
	if code != 200 {
		t.Fatalf("list status = %d", code)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}
}

func TestV1JobErrorsAndExpiry(t *testing.T) {
	www, srv := newTestServer(t)
	www.Jobs = NewJobManager(www.Engine, JobConfig{TTL: 20 * time.Millisecond})

	// Bad submissions.
	if code, _ := postJSON(t, srv, "/v1/jobs", map[string]string{"query": "SELECT bogus FROM tag"}); code != 400 {
		t.Errorf("bad job query status = %d, want 400", code)
	}
	if code, _ := postJSON(t, srv, "/v1/jobs", map[string]string{}); code != 400 {
		t.Errorf("empty job status = %d, want 400", code)
	}

	// Unknown job IDs.
	if code, _ := get(t, srv, "/v1/jobs/job-999"); code != 404 {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/v1/jobs/job-999/rows"); code != 404 {
		t.Errorf("unknown job rows status = %d, want 404", code)
	}

	// A real job expires after its TTL.
	code, body := postJSON(t, srv, "/v1/jobs", map[string]string{"query": "SELECT objid FROM tag LIMIT 5"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitForJob(t, srv, st.ID, JobDone)
	time.Sleep(50 * time.Millisecond)
	if code, _ := get(t, srv, "/v1/jobs/"+st.ID); code != 404 {
		t.Errorf("expired job status = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/v1/jobs/"+st.ID+"/rows"); code != 404 {
		t.Errorf("expired job rows status = %d, want 404", code)
	}
}

func TestJobAdmissionControl(t *testing.T) {
	engine := buildEngine(t)
	m := NewJobManager(engine, JobConfig{MaxConcurrent: 1, MaxQueued: 1})

	// Occupy the single execution slot so submissions stack up.
	m.mu.Lock()
	m.running = 1
	m.mu.Unlock()

	st, err := m.Submit("SELECT objid FROM tag LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Fatalf("with slot busy, state = %s, want queued", st.State)
	}
	if _, err := m.Submit("SELECT objid FROM tag LIMIT 1"); err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}

	// Free the slot the way a finishing job would: start the queued job.
	m.mu.Lock()
	m.running--
	next := m.queue[0]
	m.queue = m.queue[1:]
	m.startLocked(next)
	m.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := m.Get(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.State == JobDone {
			if got.RowCount != 1 {
				t.Errorf("row count = %d, want 1", got.RowCount)
			}
			break
		}
		if got.State.terminal() {
			t.Fatalf("job reached %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job never ran (state %s)", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// With the queue drained, new submissions run immediately.
	st2, err := m.Submit("SELECT objid FROM tag LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobRunning && st2.State != JobDone {
		t.Errorf("free-slot submit state = %s", st2.State)
	}
}

func TestV1JobCancel(t *testing.T) {
	engine := buildEngine(t)
	m := NewJobManager(engine, JobConfig{MaxConcurrent: 1, MaxQueued: 4})
	m.mu.Lock()
	m.running = 1 // park submissions in the queue
	m.mu.Unlock()

	st, err := m.Submit("SELECT objid FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cancel(st.ID)
	if !ok || got.State != JobCanceled {
		t.Fatalf("cancel queued job = %+v ok=%v", got, ok)
	}
	// The canceled job left the queue.
	m.mu.Lock()
	qlen := len(m.queue)
	m.mu.Unlock()
	if qlen != 0 {
		t.Errorf("queue length after cancel = %d", qlen)
	}
	if _, ok := m.Cancel("job-999"); ok {
		t.Error("cancel of unknown job reported ok")
	}
}
