package archive

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"
)

// TestV1StatusReportsColBlkBytes: the status page surfaces the compressed
// column-block footprint against the raw columns it covers, so operators
// can see the archive's effective compression.
func TestV1StatusReportsColBlkBytes(t *testing.T) {
	www, srv := newTestServer(t)
	www.Engine.Photo.BuildColBlks()
	www.Engine.Tag.BuildColBlks()
	www.Engine.Spec.BuildColBlks()
	code, body := get(t, srv, "/v1/status")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var st struct {
		Encoded int64 `json:"colblk_encoded_bytes"`
		Raw     int64 `json:"colblk_raw_bytes"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Encoded <= 0 || st.Raw <= 0 {
		t.Errorf("colblk bytes = %d/%d, want both > 0", st.Encoded, st.Raw)
	}
}

// TestV1ExplainReportsKernel: the physical plan names the scan's kernel
// path, and EXPLAIN ANALYZE adds the measured block skips and decoded
// bytes next to the estimates.
func TestV1ExplainReportsKernel(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT objid, r FROM tag WHERE r < 18"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q)+"&analyze=1")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var out struct {
		Physical struct {
			Op     string `json:"op"`
			Kernel string `json:"kernel"`
			Actual *struct {
				RowsIn       int64 `json:"rows_in"`
				BytesDecoded int64 `json:"bytes_decoded"`
			} `json:"actual"`
		} `json:"physical"`
		Phystext string `json:"physical_text"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Physical.Op != "scan" || out.Physical.Kernel != "vector" {
		t.Errorf("physical = op %q kernel %q, want a vector scan", out.Physical.Op, out.Physical.Kernel)
	}
	if out.Physical.Actual == nil {
		t.Fatal("analyze=1 plan has no actuals")
	}
	if out.Physical.Actual.RowsIn > 0 && out.Physical.Actual.BytesDecoded <= 0 {
		t.Errorf("scan examined %d records but decoded 0 bytes", out.Physical.Actual.RowsIn)
	}
	if !strings.Contains(out.Phystext, "KERNEL vector") {
		t.Errorf("physical text lacks kernel: %q", out.Phystext)
	}
}
