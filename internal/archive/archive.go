// Package archive simulates the SDSS multi-tier archive topology of the
// paper's Figure 2: telescope data (T) ships on tape to the Operational
// Archive (OA), calibrated data publishes to the Master Science Archive
// (MSA), replicates to Local Archives (LA), and after one to two years of
// science verification reaches the public archives (MPA/PA) behind a WWW
// server.
//
// The simulation runs on a virtual clock driven by an event queue, so five
// years of survey operations replay in microseconds while preserving every
// latency relationship the figure draws.
package archive

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"sdss/internal/stats"
)

// Tier is one stage of the archive pipeline.
type Tier int

// The pipeline tiers, in data-flow order.
const (
	Telescope Tier = iota
	Operational
	MasterScience
	Local
	Public
	numTiers
)

// String names the tier as in Figure 2.
func (t Tier) String() string {
	switch t {
	case Telescope:
		return "T"
	case Operational:
		return "OA"
	case MasterScience:
		return "MSA"
	case Local:
		return "LA"
	case Public:
		return "MPA/PA"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Delays holds the per-hop latencies. Defaults follow the paper: tapes
// reach FNAL in a day, reduction takes a week, publication to the science
// archive two weeks, replication to local archives a month, and science
// verification one to two years.
type Delays struct {
	ShipToOA        time.Duration // T → OA (tape shipping + ingest)
	ReduceAtOA      time.Duration // pipeline processing before publishing
	PublishToMSA    time.Duration // OA → MSA
	ReplicateToLA   time.Duration // MSA → LA
	VerifyForPublic time.Duration // MSA → MPA/PA (science verification)
}

// Day approximates one day of survey operations.
const Day = 24 * time.Hour

// DefaultDelays returns the paper's Figure 2 latencies.
func DefaultDelays() Delays {
	return Delays{
		ShipToOA:        1 * Day,
		ReduceAtOA:      6 * Day, // "1 week" including the shipping day
		PublishToMSA:    14 * Day,
		ReplicateToLA:   30 * Day,
		VerifyForPublic: 540 * Day, // 1.5 years
	}
}

// Chunk is one night's data product moving through the tiers.
type Chunk struct {
	ID       int
	Bytes    int64
	Observed time.Time
	// ArrivedAt records when the chunk reached each tier.
	ArrivedAt [numTiers]time.Time
}

// event is one pending tier arrival.
type event struct {
	at    time.Time
	chunk int
	tier  Tier
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at.Before(q[j].at) }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Sim is the archive pipeline simulation.
type Sim struct {
	delays Delays
	now    time.Time
	chunks []*Chunk
	queue  eventQueue
}

// NewSim creates a simulation starting at the given epoch.
func NewSim(delays Delays, epoch time.Time) *Sim {
	return &Sim{delays: delays, now: epoch}
}

// Now returns the virtual clock.
func (s *Sim) Now() time.Time { return s.now }

// Observe records one night of telescope data entering the pipeline at the
// virtual time `at`.
func (s *Sim) Observe(at time.Time, bytes int64) *Chunk {
	c := &Chunk{ID: len(s.chunks), Bytes: bytes, Observed: at}
	c.ArrivedAt[Telescope] = at
	s.chunks = append(s.chunks, c)
	heap.Push(&s.queue, event{at: at.Add(s.delays.ShipToOA), chunk: c.ID, tier: Operational})
	return c
}

// RunUntil advances the virtual clock, delivering every event up to t.
func (s *Sim) RunUntil(t time.Time) {
	for len(s.queue) > 0 && !s.queue[0].at.After(t) {
		ev := heap.Pop(&s.queue).(event)
		s.now = ev.at
		c := s.chunks[ev.chunk]
		c.ArrivedAt[ev.tier] = ev.at
		switch ev.tier {
		case Operational:
			heap.Push(&s.queue, event{
				at:    ev.at.Add(s.delays.ReduceAtOA + s.delays.PublishToMSA),
				chunk: ev.chunk, tier: MasterScience,
			})
		case MasterScience:
			heap.Push(&s.queue, event{
				at:    ev.at.Add(s.delays.ReplicateToLA),
				chunk: ev.chunk, tier: Local,
			})
			heap.Push(&s.queue, event{
				at:    ev.at.Add(s.delays.VerifyForPublic),
				chunk: ev.chunk, tier: Public,
			})
		}
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// Drain runs the simulation until no events remain.
func (s *Sim) Drain() {
	for len(s.queue) > 0 {
		s.RunUntil(s.queue[0].at)
	}
}

// Holdings returns, at the current virtual time, the number of chunks and
// total bytes present at a tier.
func (s *Sim) Holdings(t Tier) (chunks int, bytes int64) {
	for _, c := range s.chunks {
		if !c.ArrivedAt[t].IsZero() && !c.ArrivedAt[t].After(s.now) {
			chunks++
			bytes += c.Bytes
		}
	}
	return chunks, bytes
}

// TierLatency summarizes observation-to-tier latencies over all chunks that
// have reached the tier.
func (s *Sim) TierLatency(t Tier) (mean, min, max time.Duration, n int) {
	var w stats.Welford
	for _, c := range s.chunks {
		if c.ArrivedAt[t].IsZero() {
			continue
		}
		w.Add(c.ArrivedAt[t].Sub(c.Observed).Seconds())
	}
	if w.N() == 0 {
		return 0, 0, 0, 0
	}
	toDur := func(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }
	return toDur(w.Mean()), toDur(w.Min()), toDur(w.Max()), int(w.N())
}

// Tiers lists the pipeline tiers in flow order.
func Tiers() []Tier {
	out := make([]Tier, 0, numTiers)
	for t := Telescope; t < numTiers; t++ {
		out = append(out, t)
	}
	return out
}

// Chunks returns the chunks in observation order.
func (s *Sim) Chunks() []*Chunk {
	out := append([]*Chunk(nil), s.chunks...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
