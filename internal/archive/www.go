package archive

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sdss/internal/qe"
)

// WWW is the public web tier of Figure 2: "A WWW server will provide
// public access." It exposes the query engine over HTTP with streaming
// JSON results, a cone-search convenience endpoint (the on-demand finding
// chart query), and a status page.
type WWW struct {
	Engine *qe.Engine
	// MaxRows caps result sizes for public queries (0 = 10000).
	MaxRows int
	// Started is stamped by NewWWW for the status page.
	Started time.Time
}

// NewWWW builds the web tier over a query engine.
func NewWWW(engine *qe.Engine) *WWW {
	return &WWW{Engine: engine, Started: time.Now()}
}

func (w *WWW) maxRows() int {
	if w.MaxRows > 0 {
		return w.MaxRows
	}
	return 10000
}

// Handler returns the HTTP routing table.
func (w *WWW) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", w.handleStatus)
	mux.HandleFunc("GET /query", w.handleQuery)
	mux.HandleFunc("GET /cone", w.handleCone)
	return mux
}

func (w *WWW) handleStatus(rw http.ResponseWriter, req *http.Request) {
	type status struct {
		Uptime        string `json:"uptime"`
		PhotoRecords  int64  `json:"photo_records"`
		PhotoBytes    int64  `json:"photo_bytes"`
		TagRecords    int64  `json:"tag_records"`
		SpecRecords   int64  `json:"spec_records"`
		NumContainers int    `json:"containers"`
	}
	st := status{Uptime: time.Since(w.Started).Round(time.Second).String()}
	if w.Engine.Photo != nil {
		st.PhotoRecords = w.Engine.Photo.NumRecords()
		st.PhotoBytes = w.Engine.Photo.Bytes()
		st.NumContainers = w.Engine.Photo.NumContainers()
	}
	if w.Engine.Tag != nil {
		st.TagRecords = w.Engine.Tag.NumRecords()
	}
	if w.Engine.Spec != nil {
		st.SpecRecords = w.Engine.Spec.NumRecords()
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(st)
}

// handleQuery runs ?q=<query text> and streams JSON rows as the engine
// produces them — the WWW face of the ASAP push.
func (w *WWW) handleQuery(rw http.ResponseWriter, req *http.Request) {
	q := req.URL.Query().Get("q")
	if q == "" {
		http.Error(rw, "missing q parameter", http.StatusBadRequest)
		return
	}
	w.stream(rw, req.Context(), q)
}

// handleCone serves ?ra=&dec=&radius= (degrees, degrees, arcmin) cone
// searches on the tag table: the finding-chart query.
func (w *WWW) handleCone(rw http.ResponseWriter, req *http.Request) {
	parse := func(name string) (float64, bool) {
		v, err := strconv.ParseFloat(req.URL.Query().Get(name), 64)
		if err != nil {
			http.Error(rw, fmt.Sprintf("bad %s parameter", name), http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}
	ra, ok := parse("ra")
	if !ok {
		return
	}
	dec, ok := parse("dec")
	if !ok {
		return
	}
	radius, ok := parse("radius")
	if !ok {
		return
	}
	q := fmt.Sprintf(
		"SELECT objid, ra, dec, u, g, r, i, z, size, class FROM tag WHERE CIRCLE(%g, %g, %g)",
		ra, dec, radius)
	w.stream(rw, req.Context(), q)
}

func (w *WWW) stream(rw http.ResponseWriter, ctx context.Context, q string) {
	rows, err := w.Engine.ExecuteString(ctx, q)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	defer rows.Close()
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	type row struct {
		ObjID  uint64    `json:"objid"`
		Values []float64 `json:"values,omitempty"`
	}
	n := 0
	for batch := range rows.C {
		for _, r := range batch {
			if n >= w.maxRows() {
				rows.Close()
				for range rows.C {
				}
				return
			}
			enc.Encode(row{ObjID: uint64(r.ObjID), Values: r.Values})
			n++
		}
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		// Headers are sent; the best we can do is log-style trailer text.
		fmt.Fprintf(rw, `{"error":%q}`+"\n", err.Error())
	}
}
