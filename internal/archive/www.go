package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"sdss/internal/qe"
	"sdss/internal/query"
)

// WWW is the public web tier of Figure 2 — "A WWW server will provide
// public access" — rebuilt as the versioned REST API the SkyServer papers
// describe. Interactive queries are bounded (row cap + timeout) and stream
// schema-carrying rows in three formats; long-running mining queries go
// through the asynchronous job tier with admission control.
//
// Endpoints (all under /v1):
//
//	GET  /v1/status             archive holdings + job-queue depth
//	GET  /v1/tables             schema discovery: tables, columns, types
//	GET  /v1/query              ?q= &format=json|csv|ndjson &limit= &offset= &timeout=
//	GET  /v1/explain            ?q= [&analyze=1] → logical QET + physical operator tree
//	                            (cost-based access paths; analyze adds actual rows/timing)
//	GET  /v1/cone               ?ra= &dec= &radius= [&table= &cols= &format= ...]
//	POST /v1/jobs               {"query": "..."} → 202 + job status
//	GET  /v1/jobs               list jobs
//	GET  /v1/jobs/{id}          poll one job
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET  /v1/jobs/{id}/rows     fetch a done job's rows (same formats)
type WWW struct {
	Engine *qe.Engine
	// Jobs is the asynchronous batch tier.
	Jobs *JobManager
	// MaxRows caps interactive query results (0 = 10000). Clients may ask
	// for less via ?limit=, never more.
	MaxRows int
	// MaxTimeout caps interactive query wall time (0 = 30s). Clients may
	// ask for less via ?timeout=, never more.
	MaxTimeout time.Duration
	// Started is stamped by NewWWW for the status page.
	Started time.Time
}

// NewWWW builds the web tier over a query engine with default bounds.
func NewWWW(engine *qe.Engine) *WWW {
	return &WWW{
		Engine:  engine,
		Jobs:    NewJobManager(engine, JobConfig{}),
		Started: time.Now(),
	}
}

func (w *WWW) maxRows() int {
	if w.MaxRows > 0 {
		return w.MaxRows
	}
	return 10000
}

func (w *WWW) maxTimeout() time.Duration {
	if w.MaxTimeout > 0 {
		return w.MaxTimeout
	}
	return 30 * time.Second
}

// Handler returns the HTTP routing table.
func (w *WWW) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", w.handleStatus)
	mux.HandleFunc("GET /v1/tables", w.handleTables)
	mux.HandleFunc("GET /v1/query", w.handleQuery)
	mux.HandleFunc("GET /v1/explain", w.handleExplain)
	mux.HandleFunc("GET /v1/cone", w.handleCone)
	mux.HandleFunc("POST /v1/jobs", w.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", w.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", w.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", w.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/rows", w.handleJobRows)
	return mux
}

// jsonError answers with a JSON error body. It must be called before any
// response bytes are written.
func jsonError(rw http.ResponseWriter, status int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

func (w *WWW) handleStatus(rw http.ResponseWriter, req *http.Request) {
	type status struct {
		Version       string `json:"version"`
		Uptime        string `json:"uptime"`
		PhotoRecords  int64  `json:"photo_records"`
		PhotoBytes    int64  `json:"photo_bytes"`
		TagRecords    int64  `json:"tag_records"`
		SpecRecords   int64  `json:"spec_records"`
		NumContainers int    `json:"containers"`
		// Shards is the scatter width; ShardRecords the per-slice photo
		// record counts, in shard order — the partition-balance view.
		Shards       int     `json:"shards"`
		ShardRecords []int64 `json:"shard_records,omitempty"`
		// Workers is the engine's morsel-pool slot count; GoMaxProcs the
		// runtime's scheduler width — together the parallel capacity behind
		// every /v1/query scatter.
		Workers    int `json:"workers"`
		GoMaxProcs int `json:"gomaxprocs"`
		// ZoneMapBytes is the in-memory footprint of the per-container
		// min/max statistics across every store and slice.
		ZoneMapBytes int64 `json:"zone_map_bytes"`
		// ColBlkEncodedBytes / ColBlkRawBytes compare the compressed
		// column-block footprint against the raw footprint of the columns
		// the resident slabs cover, summed across every store and slice.
		ColBlkEncodedBytes int64 `json:"colblk_encoded_bytes"`
		ColBlkRawBytes     int64 `json:"colblk_raw_bytes"`
		JobsQueued         int   `json:"jobs_queued"`
		JobsRunning        int   `json:"jobs_running"`
		JobsFinished       int   `json:"jobs_finished"`
	}
	st := status{Version: "v1", Uptime: time.Since(w.Started).Round(time.Second).String()}
	st.Shards = w.Engine.NumShards()
	st.Workers = w.Engine.PoolSize()
	st.GoMaxProcs = runtime.GOMAXPROCS(0)
	if w.Engine.Photo != nil {
		st.PhotoRecords = w.Engine.Photo.NumRecords()
		st.PhotoBytes = w.Engine.Photo.Bytes()
		st.NumContainers = w.Engine.Photo.NumContainers()
		st.ShardRecords = w.Engine.Photo.ShardRecords()
		st.ZoneMapBytes += w.Engine.Photo.ZoneBytes()
		enc, raw := w.Engine.Photo.ColBlkBytes()
		st.ColBlkEncodedBytes += enc
		st.ColBlkRawBytes += raw
	}
	if w.Engine.Tag != nil {
		st.TagRecords = w.Engine.Tag.NumRecords()
		st.ZoneMapBytes += w.Engine.Tag.ZoneBytes()
		enc, raw := w.Engine.Tag.ColBlkBytes()
		st.ColBlkEncodedBytes += enc
		st.ColBlkRawBytes += raw
	}
	if w.Engine.Spec != nil {
		st.SpecRecords = w.Engine.Spec.NumRecords()
		st.ZoneMapBytes += w.Engine.Spec.ZoneBytes()
		enc, raw := w.Engine.Spec.ColBlkBytes()
		st.ColBlkEncodedBytes += enc
		st.ColBlkRawBytes += raw
	}
	st.JobsQueued, st.JobsRunning, st.JobsFinished = w.Jobs.Counts()
	writeJSON(rw, http.StatusOK, st)
}

// handleTables serves schema discovery: every queryable table with its
// named, typed columns straight from the compiler's schema tables.
func (w *WWW) handleTables(rw http.ResponseWriter, req *http.Request) {
	type tableInfo struct {
		Name    string         `json:"name"`
		Records int64          `json:"records"`
		Columns []query.Column `json:"columns"`
	}
	var out struct {
		Tables []tableInfo `json:"tables"`
	}
	for _, t := range []query.Table{query.TablePhoto, query.TableTag, query.TableSpec} {
		info := tableInfo{Name: t.String(), Columns: query.TableColumns(t)}
		switch t {
		case query.TablePhoto:
			if w.Engine.Photo != nil {
				info.Records = w.Engine.Photo.NumRecords()
			}
		case query.TableTag:
			if w.Engine.Tag != nil {
				info.Records = w.Engine.Tag.NumRecords()
			}
		case query.TableSpec:
			if w.Engine.Spec != nil {
				info.Records = w.Engine.Spec.NumRecords()
			}
		}
		out.Tables = append(out.Tables, info)
	}
	writeJSON(rw, http.StatusOK, out)
}

// queryBounds parses the shared ?format=&limit=&offset=&timeout= parameters,
// clamping limit and timeout to the server's interactive caps.
func (w *WWW) queryBounds(req *http.Request) (Format, qe.ExecOptions, error) {
	q := req.URL.Query()
	format, err := ParseFormat(q.Get("format"))
	if err != nil {
		return "", qe.ExecOptions{}, err
	}
	opts := qe.ExecOptions{Limit: w.maxRows(), Timeout: w.maxTimeout()}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return "", qe.ExecOptions{}, fmt.Errorf("bad limit %q (want a positive integer)", s)
		}
		if n < opts.Limit {
			opts.Limit = n
		}
	}
	if s := q.Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return "", qe.ExecOptions{}, fmt.Errorf("bad offset %q (want a non-negative integer)", s)
		}
		opts.Offset = n
	}
	if s := q.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return "", qe.ExecOptions{}, fmt.Errorf("bad timeout %q (want a positive duration like 5s)", s)
		}
		if d < opts.Timeout {
			opts.Timeout = d
		}
	}
	return format, opts, nil
}

// handleQuery runs ?q=<query text> under the interactive bounds and serves
// the result in the requested format.
func (w *WWW) handleQuery(rw http.ResponseWriter, req *http.Request) {
	src := req.URL.Query().Get("q")
	if src == "" {
		jsonError(rw, http.StatusBadRequest, "missing q parameter")
		return
	}
	format, opts, err := w.queryBounds(req)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	w.serveQuery(rw, req, src, format, opts)
}

// handleCone serves ?ra=&dec=&radius= (degrees, degrees, arcmin) cone
// searches — the on-demand finding-chart query. ?table= picks the table
// (default tag) and ?cols= the projection (default every attribute); the
// query is compiled like any other, so the projection's schema flows to the
// wire unchanged.
func (w *WWW) handleCone(rw http.ResponseWriter, req *http.Request) {
	params := req.URL.Query()
	parse := func(name, unit string) (float64, error) {
		v, err := strconv.ParseFloat(params.Get(name), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s parameter %q (want %s)", name, params.Get(name), unit)
		}
		return v, nil
	}
	ra, err := parse("ra", "degrees")
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	dec, err := parse("dec", "degrees")
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	radius, err := parse("radius", "arcminutes")
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	table := query.TableTag
	if s := params.Get("table"); s != "" {
		table, err = query.ParseTable(s)
		if err != nil {
			jsonError(rw, http.StatusBadRequest, "%s", err)
			return
		}
	}
	cols := params.Get("cols")
	if cols == "" {
		cols = "*"
	}
	format, opts, err := w.queryBounds(req)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	src := fmt.Sprintf("SELECT %s FROM %s WHERE CIRCLE(%g, %g, %g)",
		cols, table, ra, dec, radius)
	w.serveQuery(rw, req, src, format, opts)
}

// handleExplain compiles ?q= and returns both plans: the logical QET
// (parse/analyze/pushdown output) and the physical operator tree with the
// optimizer's chosen access paths and cost estimates. With ?analyze=1 the
// query also executes — under the interactive time cap, rows discarded —
// and every physical operator reports actual rows-in/rows-out/elapsed next
// to its estimates.
func (w *WWW) handleExplain(rw http.ResponseWriter, req *http.Request) {
	src := req.URL.Query().Get("q")
	if src == "" {
		jsonError(rw, http.StatusBadRequest, "missing q parameter")
		return
	}
	analyze := false
	switch req.URL.Query().Get("analyze") {
	case "", "0", "false":
	case "1", "true":
		analyze = true
	default:
		jsonError(rw, http.StatusBadRequest, "bad analyze parameter (want 1 or 0)")
		return
	}
	prep, err := query.PrepareString(src)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	plan, err := w.Engine.PlanAnalyze(prep, analyze)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	var rowCount int64 = -1
	if analyze {
		rows, err := w.Engine.ExecutePlan(req.Context(), plan,
			qe.ExecOptions{Timeout: w.maxTimeout(), Analyze: true})
		if err != nil {
			jsonError(rw, statusForQueryError(err), "%s", err)
			return
		}
		rowCount = 0
		for b := range rows.C {
			rowCount += int64(len(b))
			qe.RecycleBatch(b)
		}
		if err := rows.Err(); err != nil {
			jsonError(rw, statusForQueryError(err), "%s", err)
			return
		}
	}
	// Per-shard fan-out: how many candidate containers each leaf scan will
	// touch on every slice. A fanout error (table not loaded) leaves the
	// plan usable, so it is reported as an empty list, not a failure.
	fanout, _ := w.Engine.Fanout(prep)
	resp := struct {
		Query    string           `json:"query"`
		Columns  []query.Column   `json:"columns"`
		Plan     *query.PlanNode  `json:"plan"`
		Physical *qe.OpNode       `json:"physical"`
		Analyzed bool             `json:"analyzed,omitempty"`
		Rows     *int64           `json:"rows,omitempty"`
		Shards   int              `json:"shards"`
		Fanout   []qe.ShardFanout `json:"fanout,omitempty"`
		Text     string           `json:"text"`
		Phystext string           `json:"physical_text"`
	}{
		Query: src, Columns: prep.Columns(), Plan: prep.Plan(),
		Physical: plan.Describe(), Analyzed: analyze,
		Shards: w.Engine.NumShards(), Fanout: fanout,
		Text: prep.Explain(), Phystext: plan.Text(),
	}
	if analyze {
		resp.Rows = &rowCount
	}
	writeJSON(rw, http.StatusOK, resp)
}

// serveQuery compiles, executes, and encodes one bounded query. The query
// is compiled before any response bytes go out, so compile errors are clean
// 400s with JSON bodies in every format.
func (w *WWW) serveQuery(rw http.ResponseWriter, req *http.Request, src string, format Format, opts qe.ExecOptions) {
	prep, err := query.PrepareString(src)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	rows, err := w.Engine.ExecuteOpts(req.Context(), prep, opts)
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	defer rows.Close()
	switch format {
	case FormatJSON:
		// Buffered: collect first so errors can still use a clean status.
		doc, err := buildJSONDocument(liveSource(rows))
		if err != nil {
			jsonError(rw, statusForQueryError(err), "%s", err)
			return
		}
		writeJSON(rw, http.StatusOK, doc)
	case FormatNDJSON:
		rw.Header().Set("Content-Type", format.ContentType())
		writeNDJSON(rw, liveSource(rows))
	case FormatCSV:
		rw.Header().Set("Content-Type", format.ContentType())
		writeCSV(rw, liveSource(rows))
	}
}

// statusForQueryError maps execution errors to HTTP statuses.
func statusForQueryError(err error) int {
	if errors.Is(err, qe.ErrTimeout) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handleJobSubmit accepts {"query": "..."} and enqueues it on the batch
// tier, answering 202 with the job's initial status.
func (w *WWW) handleJobSubmit(rw http.ResponseWriter, req *http.Request) {
	var body struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		jsonError(rw, http.StatusBadRequest, "bad request body: %s", err)
		return
	}
	if body.Query == "" {
		jsonError(rw, http.StatusBadRequest, "missing query field")
		return
	}
	st, err := w.Jobs.Submit(body.Query)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			jsonError(rw, http.StatusServiceUnavailable, "%s", err)
			return
		}
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	writeJSON(rw, http.StatusAccepted, st)
}

func (w *WWW) handleJobList(rw http.ResponseWriter, req *http.Request) {
	writeJSON(rw, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{w.Jobs.List()})
}

func (w *WWW) handleJobGet(rw http.ResponseWriter, req *http.Request) {
	st, ok := w.Jobs.Get(req.PathValue("id"))
	if !ok {
		jsonError(rw, http.StatusNotFound, "no such job %q", req.PathValue("id"))
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

func (w *WWW) handleJobCancel(rw http.ResponseWriter, req *http.Request) {
	st, ok := w.Jobs.Cancel(req.PathValue("id"))
	if !ok {
		jsonError(rw, http.StatusNotFound, "no such job %q", req.PathValue("id"))
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

// handleJobRows serves a done job's materialized rows in any format.
func (w *WWW) handleJobRows(rw http.ResponseWriter, req *http.Request) {
	format, err := ParseFormat(req.URL.Query().Get("format"))
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%s", err)
		return
	}
	id := req.PathValue("id")
	cols, results, truncated, found, ready := w.Jobs.Rows(id)
	if !found {
		jsonError(rw, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !ready {
		st, _ := w.Jobs.Get(id)
		jsonError(rw, http.StatusConflict, "job %s is %s, not done", id, st.State)
		return
	}
	switch format {
	case FormatJSON:
		doc, err := buildJSONDocument(staticSource(cols, results, truncated))
		if err != nil {
			jsonError(rw, http.StatusInternalServerError, "%s", err)
			return
		}
		writeJSON(rw, http.StatusOK, doc)
	case FormatNDJSON:
		rw.Header().Set("Content-Type", format.ContentType())
		writeNDJSON(rw, staticSource(cols, results, truncated))
	case FormatCSV:
		rw.Header().Set("Content-Type", format.ContentType())
		writeCSV(rw, staticSource(cols, results, truncated))
	}
}
