package archive

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"sdss/internal/qe"
	"sdss/internal/query"
)

// Format identifies a result-set wire encoding.
type Format string

// The supported wire formats.
const (
	// FormatJSON is a single JSON document: columns, rows as objects with
	// named fields, row count, truncation flag.
	FormatJSON Format = "json"
	// FormatNDJSON streams one JSON object per row as rows arrive — the
	// wire face of the ASAP push. A trailing record carries truncation or
	// error state.
	FormatNDJSON Format = "ndjson"
	// FormatCSV streams comma-separated rows under a header line of the
	// projection's column names.
	FormatCSV Format = "csv"
)

// ParseFormat resolves a ?format= value; empty means JSON.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "json":
		return FormatJSON, nil
	case "ndjson":
		return FormatNDJSON, nil
	case "csv":
		return FormatCSV, nil
	default:
		return "", fmt.Errorf("unknown format %q (want json, ndjson, or csv)", s)
	}
}

// ContentType returns the MIME type the format is served under.
func (f Format) ContentType() string {
	switch f {
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatNDJSON:
		return "application/x-ndjson"
	default:
		return "application/json"
	}
}

// appendValue renders one engine value as a JSON token per its column type.
// IDs and ints render as exact integers; non-finite floats become null.
func appendValue(buf []byte, c query.Column, v float64) []byte {
	switch c.Type {
	case query.TypeID:
		return strconv.AppendUint(buf, uint64(v), 10)
	case query.TypeInt:
		return strconv.AppendInt(buf, int64(v), 10)
	default:
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return append(buf, "null"...)
		}
		return strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
}

// csvValue renders one engine value as a CSV field per its column type.
func csvValue(c query.Column, v float64) string {
	switch c.Type {
	case query.TypeID:
		return strconv.FormatUint(uint64(v), 10)
	case query.TypeInt:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// cellUint reports whether the cell should be rendered from an exact
// uint64 source, and that value. Values travel the tree as float64, which
// rounds integers above 2^53 — but a projected objid is the row's own
// object pointer, carried exactly in Result.ObjID, so prefer that over the
// rounded copy.
func cellUint(c query.Column, r qe.Result) (uint64, bool) {
	if c.Name == "objid" && c.Type == query.TypeID && r.ObjID != 0 {
		return uint64(r.ObjID), true
	}
	return 0, false
}

// appendRowJSON renders one row as a JSON object with named fields, in
// projection order.
func appendRowJSON(buf []byte, cols []query.Column, r qe.Result) []byte {
	buf = append(buf, '{')
	for i, c := range cols {
		if i > 0 {
			buf = append(buf, ',')
		}
		nb, _ := json.Marshal(c.Name)
		buf = append(buf, nb...)
		buf = append(buf, ':')
		switch {
		case i >= len(r.Values):
			buf = append(buf, "null"...)
		default:
			if u, ok := cellUint(c, r); ok {
				buf = strconv.AppendUint(buf, u, 10)
			} else {
				buf = appendValue(buf, c, r.Values[i])
			}
		}
	}
	return append(buf, '}')
}

// rowSource abstracts a stream of result batches plus its post-stream
// state, so the same writers serve live queries and materialized job rows.
type rowSource struct {
	cols    []query.Column
	batches <-chan qe.Batch
	// truncated and errFn are consulted only after batches closes.
	truncated func() bool
	errFn     func() error
	// recycle, when set, returns a fully encoded batch's buffer to the
	// engine's pool. Live streams own their batches; materialized job rows
	// are retained by the job manager and must not be recycled.
	recycle func(qe.Batch)
}

// done disposes of one fully consumed batch.
func (s rowSource) done(b qe.Batch) {
	if s.recycle != nil {
		s.recycle(b)
	}
}

// liveSource adapts a streaming qe.Rows.
func liveSource(rows *qe.Rows) rowSource {
	return rowSource{
		cols:      rows.Columns(),
		batches:   rows.C,
		truncated: rows.Truncated,
		errFn:     rows.Err,
		recycle:   qe.RecycleBatch,
	}
}

// staticSource adapts materialized results (an async job's output).
func staticSource(cols []query.Column, results []qe.Result, truncated bool) rowSource {
	ch := make(chan qe.Batch, 1)
	if len(results) > 0 {
		ch <- qe.Batch(results)
	}
	close(ch)
	return rowSource{
		cols:      cols,
		batches:   ch,
		truncated: func() bool { return truncated },
		errFn:     func() error { return nil },
	}
}

// writeNDJSON streams rows as newline-delimited JSON objects, flushing per
// batch. After the stream ends it emits exactly one trailer record when the
// row cap truncated the stream ({"truncated":true,"rows":N}) or when the
// tree failed mid-stream ({"error":...}).
func writeNDJSON(w io.Writer, src rowSource) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 0, 256)
	n := 0
	for b := range src.batches {
		buf = buf[:0]
		for _, r := range b {
			buf = appendRowJSON(buf, src.cols, r)
			buf = append(buf, '\n')
			n++
		}
		src.done(b)
		w.Write(buf)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := src.errFn(); err != nil {
		fmt.Fprintf(w, "{\"error\":%s}\n", mustJSON(err.Error()))
		return
	}
	if src.truncated() {
		fmt.Fprintf(w, "{\"truncated\":true,\"rows\":%d}\n", n)
	}
}

// writeCSV streams rows under a header line of column names. Truncation and
// stream errors are reported as trailing comment lines, since headers are
// long gone by then.
func writeCSV(w io.Writer, src rowSource) {
	flusher, _ := w.(http.Flusher)
	cw := csv.NewWriter(w)
	header := make([]string, len(src.cols))
	for i, c := range src.cols {
		header[i] = c.Name
	}
	cw.Write(header)
	record := make([]string, len(src.cols))
	n := 0
	for b := range src.batches {
		for _, r := range b {
			for i, c := range src.cols {
				switch {
				case i >= len(r.Values):
					record[i] = ""
				default:
					if u, ok := cellUint(c, r); ok {
						record[i] = strconv.FormatUint(u, 10)
					} else {
						record[i] = csvValue(c, r.Values[i])
					}
				}
			}
			cw.Write(record)
			n++
		}
		src.done(b)
		cw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	cw.Flush()
	if err := src.errFn(); err != nil {
		fmt.Fprintf(w, "# error: %s\n", err)
		return
	}
	if src.truncated() {
		fmt.Fprintf(w, "# truncated after %d rows\n", n)
	}
}

// jsonDocument is the buffered FormatJSON response envelope.
type jsonDocument struct {
	Columns   []query.Column    `json:"columns"`
	Rows      []json.RawMessage `json:"rows"`
	RowCount  int               `json:"row_count"`
	Truncated bool              `json:"truncated"`
}

// buildJSONDocument drains the source into a single document. Unlike the
// streaming writers it returns the stream error instead of emitting a
// trailer, so the HTTP layer can still answer with a clean error status.
func buildJSONDocument(src rowSource) (*jsonDocument, error) {
	doc := &jsonDocument{Columns: src.cols, Rows: []json.RawMessage{}}
	for b := range src.batches {
		for _, r := range b {
			doc.Rows = append(doc.Rows, json.RawMessage(appendRowJSON(nil, src.cols, r)))
		}
		src.done(b)
	}
	if err := src.errFn(); err != nil {
		return nil, err
	}
	doc.RowCount = len(doc.Rows)
	doc.Truncated = src.truncated()
	return doc, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`"encoding error"`)
	}
	return b
}
