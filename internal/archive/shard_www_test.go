package archive

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"

	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/skygen"
)

// newShardedServer serves an archive whose stores are split across slices.
func newShardedServer(t testing.TB, shards int) (*WWW, *httptest.Server) {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(1, 3000), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	www := NewWWW(&qe.Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec})
	srv := httptest.NewServer(www.Handler())
	t.Cleanup(srv.Close)
	return www, srv
}

func TestV1StatusReportsShards(t *testing.T) {
	_, srv := newShardedServer(t, 4)
	code, body := get(t, srv, "/v1/status")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var st struct {
		Shards       int     `json:"shards"`
		ShardRecords []int64 `json:"shard_records"`
		PhotoRecords int64   `json:"photo_records"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 {
		t.Errorf("shards = %d, want 4", st.Shards)
	}
	if len(st.ShardRecords) != 4 {
		t.Fatalf("shard_records has %d entries, want 4", len(st.ShardRecords))
	}
	var sum int64
	for i, n := range st.ShardRecords {
		if n == 0 {
			t.Errorf("shard %d reports no records", i)
		}
		sum += n
	}
	if sum != st.PhotoRecords {
		t.Errorf("shard_records sum %d != photo_records %d", sum, st.PhotoRecords)
	}
}

func TestV1ExplainReportsFanout(t *testing.T) {
	_, srv := newShardedServer(t, 4)
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape("SELECT objid FROM tag WHERE r < 21"))
	if code != 200 {
		t.Fatalf("explain = %d: %s", code, body)
	}
	var doc struct {
		Shards int              `json:"shards"`
		Fanout []qe.ShardFanout `json:"fanout"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Shards != 4 {
		t.Errorf("shards = %d, want 4", doc.Shards)
	}
	if len(doc.Fanout) != 1 {
		t.Fatalf("fanout entries = %d, want 1", len(doc.Fanout))
	}
	fo := doc.Fanout[0]
	if fo.Table != "tag" || len(fo.ContainersPerShard) != 4 {
		t.Fatalf("fanout = %+v", fo)
	}
	total := 0
	for _, c := range fo.ContainersPerShard {
		total += c
	}
	if total != fo.ContainersTotal || total == 0 {
		t.Fatalf("fanout totals inconsistent: %+v", fo)
	}
}

// TestV1QueryShardedMatchesSingle runs the same bounded query against a
// 1-shard and a 4-shard server and requires identical wire output for an
// ordered query (the ordering rules make it deterministic).
func TestV1QueryShardedMatchesSingle(t *testing.T) {
	_, one := newShardedServer(t, 1)
	_, four := newShardedServer(t, 4)
	path := queryPath("SELECT objid, r FROM tag WHERE r < 21.5 ORDER BY r LIMIT 40", "format=csv")
	code1, body1 := get(t, one, path)
	code4, body4 := get(t, four, path)
	if code1 != 200 || code4 != 200 {
		t.Fatalf("status %d vs %d", code1, code4)
	}
	if string(body1) != string(body4) {
		t.Fatalf("sharded CSV diverged:\n1 shard:\n%s\n4 shards:\n%s", body1, body4)
	}
}
