package archive

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sdss/internal/qe"
)

// fakeClock is a manually advanced clock injected into the JobManager, so
// TTL behavior is tested without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// waitState polls for a job to reach a terminal/expected state. The wait is
// event-driven (the transition happens as soon as the fake executor
// returns), so the loop spins briefly rather than sleeping for wall time.
func waitState(t *testing.T, m *JobManager, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s, want %s (err %q)", id, st.State, want, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobTTLExpiryWithInjectedClock(t *testing.T) {
	clock := newFakeClock()
	m := NewJobManager(nil, JobConfig{TTL: 10 * time.Minute})
	m.now = clock.Now
	m.exec = func(ctx context.Context, j *job) ([]qe.Result, bool, error) {
		return []qe.Result{{Values: []float64{1}}}, false, nil
	}

	st, err := m.Submit("SELECT COUNT(*) FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, JobDone)
	if !done.Finished.Equal(clock.Now()) {
		t.Errorf("finished stamp %v, want fake-clock %v", done.Finished, clock.Now())
	}

	// One tick short of the TTL the job is still fetchable...
	clock.Advance(10*time.Minute - time.Nanosecond)
	if _, ok := m.Get(st.ID); !ok {
		t.Fatal("job expired before its TTL")
	}
	if _, _, _, found, ready := m.Rows(st.ID); !found || !ready {
		t.Fatal("done job rows not fetchable before TTL")
	}

	// ...and one tick past it, gone from every surface.
	clock.Advance(2 * time.Nanosecond)
	if _, ok := m.Get(st.ID); ok {
		t.Fatal("job fetchable past its TTL")
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("List returns %d expired jobs", len(got))
	}
	if _, _, _, found, _ := m.Rows(st.ID); found {
		t.Fatal("expired job rows still fetchable")
	}
	q, r, f := m.Counts()
	if q+r+f != 0 {
		t.Fatalf("Counts after expiry = %d/%d/%d, want zeros", q, r, f)
	}
}

func TestJobCancelWhileRunningWithInjectedClock(t *testing.T) {
	clock := newFakeClock()
	m := NewJobManager(nil, JobConfig{MaxConcurrent: 1, MaxQueued: 4})
	m.now = clock.Now
	started := make(chan string, 4)
	m.exec = func(ctx context.Context, j *job) ([]qe.Result, bool, error) {
		started <- j.id
		// A long-running mining query: blocks until canceled.
		<-ctx.Done()
		return nil, false, ctx.Err()
	}

	st, err := m.Submit("SELECT objid FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	if id := <-started; id != st.ID {
		t.Fatalf("executor started %s, want %s", id, st.ID)
	}
	// A second submission queues behind the blocked slot.
	st2, err := m.Submit("SELECT objid FROM tag WHERE r < 20")
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobQueued {
		t.Fatalf("second job state = %s, want queued", st2.State)
	}

	clock.Advance(42 * time.Second)
	if got, ok := m.Cancel(st.ID); !ok || got.State == JobDone {
		t.Fatalf("cancel running job = %+v ok=%v", got, ok)
	}
	canceled := waitState(t, m, st.ID, JobCanceled)
	if canceled.Finished == nil || !canceled.Finished.Equal(clock.Now()) {
		t.Errorf("cancel finished stamp %v, want %v", canceled.Finished, clock.Now())
	}
	if canceled.Error != "" {
		t.Errorf("canceled job carries error %q", canceled.Error)
	}

	// The freed slot admits the queued job; cancel it too to shut down.
	if id := <-started; id != st2.ID {
		t.Fatalf("freed slot started %s, want %s", id, st2.ID)
	}
	if _, ok := m.Cancel(st2.ID); !ok {
		t.Fatal("cancel of admitted job failed")
	}
	waitState(t, m, st2.ID, JobCanceled)

	// Canceling a terminal job is a no-op, not a state change.
	if got, ok := m.Cancel(st.ID); !ok || got.State != JobCanceled {
		t.Fatalf("re-cancel = %+v ok=%v", got, ok)
	}
}

// TestJobFailureStateWithInjectedExecutor pins the failed path: an executor
// error that is not a cancellation marks the job failed with the message.
func TestJobFailureStateWithInjectedExecutor(t *testing.T) {
	m := NewJobManager(nil, JobConfig{})
	m.now = newFakeClock().Now
	m.exec = func(ctx context.Context, j *job) ([]qe.Result, bool, error) {
		return nil, false, errors.New("store exploded")
	}
	st, err := m.Submit("SELECT objid FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := m.Get(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.State == JobFailed {
			if got.Error != "store exploded" {
				t.Fatalf("error = %q", got.Error)
			}
			if _, _, _, found, ready := m.Rows(st.ID); !found || ready {
				t.Fatalf("failed job rows found=%v ready=%v, want true false", found, ready)
			}
			break
		}
		if got.State.terminal() || time.Now().After(deadline) {
			t.Fatalf("job state %s, want failed", got.State)
		}
		time.Sleep(time.Millisecond)
	}
}
