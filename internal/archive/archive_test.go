package archive

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/skygen"
)

func epoch() time.Time {
	return time.Date(2000, 4, 1, 0, 0, 0, 0, time.UTC)
}

func TestPipelineLatencies(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	const nights = 30
	const nightlyBytes = 20e9 // "about 20 GB will be arriving daily"
	for n := 0; n < nights; n++ {
		sim.Observe(epoch().Add(time.Duration(n)*Day), int64(nightlyBytes))
	}
	sim.Drain()

	for _, c := range sim.Chunks() {
		oa := c.ArrivedAt[Operational].Sub(c.Observed)
		if oa != Day {
			t.Fatalf("chunk %d reached OA after %v, want 1 day", c.ID, oa)
		}
		msa := c.ArrivedAt[MasterScience].Sub(c.Observed)
		if msa != 21*Day {
			t.Fatalf("chunk %d reached MSA after %v, want 21 days", c.ID, msa)
		}
		la := c.ArrivedAt[Local].Sub(c.Observed)
		if la != 51*Day {
			t.Fatalf("chunk %d reached LA after %v, want 51 days", c.ID, la)
		}
		pub := c.ArrivedAt[Public].Sub(c.Observed)
		if pub != 561*Day {
			t.Fatalf("chunk %d reached public after %v, want 561 days", c.ID, pub)
		}
	}
	mean, min, max, n := sim.TierLatency(Public)
	if n != nights || mean != 561*Day || min != max {
		t.Errorf("public latency stats: mean=%v min=%v max=%v n=%d", mean, min, max, n)
	}
}

func TestHoldingsOverTime(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	const nights = 100
	for n := 0; n < nights; n++ {
		sim.Observe(epoch().Add(time.Duration(n)*Day), 20e9)
	}
	// After 60 days: every observed chunk is at the telescope tier;
	// chunks observed ≥ 21 days ago are in the MSA; none public yet.
	sim.RunUntil(epoch().Add(60 * Day))
	tele, _ := sim.Holdings(Telescope)
	if tele != 61 { // nights 0..60 observed by now
		t.Errorf("telescope holdings = %d, want 61", tele)
	}
	msa, msaBytes := sim.Holdings(MasterScience)
	if msa != 40 { // nights 0..39 have aged ≥ 21 days
		t.Errorf("MSA holdings = %d, want 40", msa)
	}
	if msaBytes != int64(40*20e9) {
		t.Errorf("MSA bytes = %d", msaBytes)
	}
	if pub, _ := sim.Holdings(Public); pub != 0 {
		t.Errorf("public holdings = %d before verification period", pub)
	}
	// After two years everything is public.
	sim.Drain()
	if pub, _ := sim.Holdings(Public); pub != nights {
		t.Errorf("public holdings after drain = %d, want %d", pub, nights)
	}
}

func TestTierOrderingInvariant(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	for n := 0; n < 20; n++ {
		sim.Observe(epoch().Add(time.Duration(n*3)*Day), 1e9)
	}
	sim.Drain()
	for _, c := range sim.Chunks() {
		for tier := Operational; tier <= Public; tier++ {
			if c.ArrivedAt[tier].Before(c.ArrivedAt[tier-1]) {
				t.Fatalf("chunk %d reached %v before %v", c.ID, tier, tier-1)
			}
		}
	}
}

func buildEngine(t *testing.T) *qe.Engine {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(1, 3000), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	return &qe.Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}
}

func TestWWWStatusAndQuery(t *testing.T) {
	www := NewWWW(buildEngine(t))
	srv := httptest.NewServer(www.Handler())
	defer srv.Close()

	// Status.
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["photo_records"].(float64) == 0 {
		t.Error("status reports empty archive")
	}

	// Query endpoint streams JSON lines.
	resp, err = srv.Client().Get(srv.URL + "/query?q=" + strings.ReplaceAll(
		"SELECT objid, r FROM tag WHERE r < 20", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(resp.Body)
	rowsSeen := 0
	for dec.More() {
		var row map[string]any
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		if _, ok := row["error"]; ok {
			t.Fatalf("query returned error row: %v", row)
		}
		rowsSeen++
	}
	resp.Body.Close()
	if rowsSeen == 0 {
		t.Error("query returned no rows")
	}

	// Bad query is a 400.
	resp, err = srv.Client().Get(srv.URL + "/query?q=SELECT%20bogus%20FROM%20tag")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad query status = %d, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing q status = %d, want 400", resp.StatusCode)
	}
}

func TestWWWConeSearch(t *testing.T) {
	engine := buildEngine(t)
	www := NewWWW(engine)
	srv := httptest.NewServer(www.Handler())
	defer srv.Close()

	// Find one real object to center on.
	rows, err := engine.ExecuteString(context.Background(), "SELECT ra, dec FROM tag LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil || len(res) == 0 {
		t.Fatalf("seed query failed: %v", err)
	}
	ra, dec := res[0].Values[0], res[0].Values[1]

	url := srv.URL + "/cone?ra=" + jsonNum(ra) + "&dec=" + jsonNum(dec) + "&radius=30"
	resp, err := srv.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec2 := json.NewDecoder(resp.Body)
	n := 0
	for dec2.More() {
		var row map[string]any
		if err := dec2.Decode(&row); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Error("cone search around a real object returned nothing")
	}

	// Malformed parameters.
	resp, err = srv.Client().Get(srv.URL + "/cone?ra=abc&dec=1&radius=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad cone params status = %d", resp.StatusCode)
	}
}

func jsonNum(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestWWWRowCap(t *testing.T) {
	www := NewWWW(buildEngine(t))
	www.MaxRows = 7
	srv := httptest.NewServer(www.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/query?q=SELECT%20objid%20FROM%20tag")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	n := 0
	for dec.More() {
		var row map[string]any
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Errorf("row cap delivered %d rows, want 7", n)
	}
}
