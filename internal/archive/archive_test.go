package archive

import (
	"testing"
	"time"
)

func epoch() time.Time {
	return time.Date(2000, 4, 1, 0, 0, 0, 0, time.UTC)
}

func TestPipelineLatencies(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	const nights = 30
	const nightlyBytes = 20e9 // "about 20 GB will be arriving daily"
	for n := 0; n < nights; n++ {
		sim.Observe(epoch().Add(time.Duration(n)*Day), int64(nightlyBytes))
	}
	sim.Drain()

	for _, c := range sim.Chunks() {
		oa := c.ArrivedAt[Operational].Sub(c.Observed)
		if oa != Day {
			t.Fatalf("chunk %d reached OA after %v, want 1 day", c.ID, oa)
		}
		msa := c.ArrivedAt[MasterScience].Sub(c.Observed)
		if msa != 21*Day {
			t.Fatalf("chunk %d reached MSA after %v, want 21 days", c.ID, msa)
		}
		la := c.ArrivedAt[Local].Sub(c.Observed)
		if la != 51*Day {
			t.Fatalf("chunk %d reached LA after %v, want 51 days", c.ID, la)
		}
		pub := c.ArrivedAt[Public].Sub(c.Observed)
		if pub != 561*Day {
			t.Fatalf("chunk %d reached public after %v, want 561 days", c.ID, pub)
		}
	}
	mean, min, max, n := sim.TierLatency(Public)
	if n != nights || mean != 561*Day || min != max {
		t.Errorf("public latency stats: mean=%v min=%v max=%v n=%d", mean, min, max, n)
	}
}

func TestHoldingsOverTime(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	const nights = 100
	for n := 0; n < nights; n++ {
		sim.Observe(epoch().Add(time.Duration(n)*Day), 20e9)
	}
	// After 60 days: every observed chunk is at the telescope tier;
	// chunks observed ≥ 21 days ago are in the MSA; none public yet.
	sim.RunUntil(epoch().Add(60 * Day))
	tele, _ := sim.Holdings(Telescope)
	if tele != 61 { // nights 0..60 observed by now
		t.Errorf("telescope holdings = %d, want 61", tele)
	}
	msa, msaBytes := sim.Holdings(MasterScience)
	if msa != 40 { // nights 0..39 have aged ≥ 21 days
		t.Errorf("MSA holdings = %d, want 40", msa)
	}
	if msaBytes != int64(40*20e9) {
		t.Errorf("MSA bytes = %d", msaBytes)
	}
	if pub, _ := sim.Holdings(Public); pub != 0 {
		t.Errorf("public holdings = %d before verification period", pub)
	}
	// After two years everything is public.
	sim.Drain()
	if pub, _ := sim.Holdings(Public); pub != nights {
		t.Errorf("public holdings after drain = %d, want %d", pub, nights)
	}
}

func TestTierOrderingInvariant(t *testing.T) {
	sim := NewSim(DefaultDelays(), epoch())
	for n := 0; n < 20; n++ {
		sim.Observe(epoch().Add(time.Duration(n*3)*Day), 1e9)
	}
	sim.Drain()
	for _, c := range sim.Chunks() {
		for tier := Operational; tier <= Public; tier++ {
			if c.ArrivedAt[tier].Before(c.ArrivedAt[tier-1]) {
				t.Fatalf("chunk %d reached %v before %v", c.ID, tier, tier-1)
			}
		}
	}
}
