package archive

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"
)

// TestV1StatusReportsZoneBytes: the status page surfaces the zone-map
// footprint so operators can see the cost of the per-container statistics.
func TestV1StatusReportsZoneBytes(t *testing.T) {
	www, srv := newTestServer(t)
	// Freshen zones the way a loader would (Sort builds them).
	www.Engine.Photo.BuildZones()
	www.Engine.Tag.BuildZones()
	www.Engine.Spec.BuildZones()
	code, body := get(t, srv, "/v1/status")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var st struct {
		ZoneMapBytes int64 `json:"zone_map_bytes"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ZoneMapBytes <= 0 {
		t.Errorf("zone_map_bytes = %d, want > 0", st.ZoneMapBytes)
	}
}

// TestV1ExplainReportsZonePruning: explain carries the predicate bounds in
// the plan and the zone-pruned / scanned container split in the fanout.
func TestV1ExplainReportsZonePruning(t *testing.T) {
	_, srv := newTestServer(t)

	// An always-false predicate must show every candidate pruned.
	q := "SELECT objid FROM tag WHERE r < 18 AND r > 21"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var out struct {
		Plan struct {
			Bounds []string `json:"bounds"`
		} `json:"plan"`
		Fanout []struct {
			ContainersTotal   int `json:"containers_total"`
			ZonePruned        int `json:"zone_pruned"`
			ContainersScanned int `json:"containers_scanned"`
		} `json:"fanout"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan.Bounds) == 0 {
		t.Fatal("plan has no bounds")
	}
	if len(out.Fanout) != 1 {
		t.Fatalf("fanout entries = %d", len(out.Fanout))
	}
	fo := out.Fanout[0]
	if fo.ContainersTotal == 0 || fo.ZonePruned != fo.ContainersTotal || fo.ContainersScanned != 0 {
		t.Errorf("always-false fanout = %+v, want all candidates pruned", fo)
	}

	// A satisfiable cut reports bounds and a consistent scanned/pruned
	// split.
	q = "SELECT objid, r FROM tag WHERE r < 18"
	code, body = get(t, srv, "/v1/explain?q="+url.QueryEscape(q))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan.Bounds) != 1 || !strings.Contains(out.Plan.Bounds[0], "r ∈") {
		t.Errorf("bounds = %v", out.Plan.Bounds)
	}
	fo = out.Fanout[0]
	if fo.ZonePruned+fo.ContainersScanned != fo.ContainersTotal {
		t.Errorf("pruned %d + scanned %d != total %d", fo.ZonePruned, fo.ContainersScanned, fo.ContainersTotal)
	}
	if !strings.Contains(out.Text, "ZONES [") {
		t.Errorf("explain text lacks zone bounds: %q", out.Text)
	}
}
