package archive

import (
	"encoding/json"
	"net/url"
	"testing"

	"sdss/internal/qe"
	"sdss/internal/query"
)

// explainResp mirrors the /v1/explain response shape.
type explainResp struct {
	Query    string           `json:"query"`
	Columns  []query.Column   `json:"columns"`
	Plan     *query.PlanNode  `json:"plan"`
	Physical *qe.OpNode       `json:"physical"`
	Analyzed bool             `json:"analyzed"`
	Rows     *int64           `json:"rows"`
	Shards   int              `json:"shards"`
	Fanout   []qe.ShardFanout `json:"fanout"`
	Text     string           `json:"text"`
	Phystext string           `json:"physical_text"`
}

// TestV1ExplainPhysicalTree: /v1/explain serves a multi-operator physical
// tree for a join, with chosen access paths and cost estimates.
func TestV1ExplainPhysicalTree(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 18"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q))
	if code != 200 {
		t.Fatalf("explain = %d: %s", code, body)
	}
	var resp explainResp
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Plan == nil || resp.Plan.Kind != "hash-join" {
		t.Fatalf("logical plan = %+v", resp.Plan)
	}
	phys := resp.Physical
	if phys == nil || phys.Op != "hash-join" {
		t.Fatalf("physical root = %+v", phys)
	}
	if phys.BuildSide == "" || phys.On == "" {
		t.Errorf("join node incomplete: %+v", phys)
	}
	if len(phys.Children) != 2 {
		t.Fatalf("physical tree has %d children", len(phys.Children))
	}
	for _, c := range phys.Children {
		if c.Op != "scan" || c.Access == "" {
			t.Errorf("scan child missing access path: %+v", c)
		}
		if c.EstCost <= 0 {
			t.Errorf("scan %s has no cost estimate", c.Table)
		}
		if c.Actual != nil {
			t.Errorf("plain explain carries actuals: %+v", c.Actual)
		}
	}
	// Both join sides appear in the fanout report.
	if len(resp.Fanout) != 2 {
		t.Errorf("fanout entries = %d, want 2", len(resp.Fanout))
	}
	if resp.Phystext == "" || resp.Rows != nil {
		t.Errorf("physical_text empty or rows set without analyze")
	}
	// Columns carry qualified names.
	if len(resp.Columns) != 2 || resp.Columns[0].Name != "p.objid" {
		t.Errorf("columns = %+v", resp.Columns)
	}
}

// TestV1ExplainNeighborJoin: a NEIGHBORS query explains as a neighbor-join
// operator whose JSON carries the planner's chosen partition depth and a
// non-trivial cardinality estimate — the knobs an operator reads to judge the
// spatial plan.
func TestV1ExplainNeighborJoin(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 0.5) WHERE a.objid < b.objid"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q))
	if code != 200 {
		t.Fatalf("explain = %d: %s", code, body)
	}
	var resp explainResp
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	phys := resp.Physical
	if phys == nil || phys.Op != "neighbor-join" {
		t.Fatalf("physical root = %+v", phys)
	}
	if phys.PartitionDepth <= 0 {
		t.Errorf("neighbor-join explain has no partition_depth: %+v", phys)
	}
	if phys.BuildSide == "" {
		t.Errorf("neighbor-join explain has no build side: %+v", phys)
	}
	if phys.EstRows <= 1 {
		t.Errorf("neighbor-join est_rows = %g, want a real pair-density estimate", phys.EstRows)
	}
	// The raw JSON must spell the field partition_depth for API clients.
	var raw struct {
		Physical map[string]json.RawMessage `json:"physical"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Physical["partition_depth"]; !ok {
		t.Error("explain JSON lacks a partition_depth key on the join operator")
	}
}

// TestV1ExplainAnalyze: ?analyze=1 executes and reports actual rows per
// operator alongside the estimates.
func TestV1ExplainAnalyze(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 20"
	code, body := get(t, srv, "/v1/explain?q="+url.QueryEscape(q)+"&analyze=1")
	if code != 200 {
		t.Fatalf("explain analyze = %d: %s", code, body)
	}
	var resp explainResp
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Analyzed || resp.Rows == nil {
		t.Fatalf("analyze metadata missing: analyzed=%v rows=%v", resp.Analyzed, resp.Rows)
	}
	phys := resp.Physical
	if phys.Actual == nil {
		t.Fatal("no actuals on the root operator")
	}
	if phys.Actual.RowsOut != *resp.Rows {
		t.Errorf("root rows_out %d != delivered %d", phys.Actual.RowsOut, *resp.Rows)
	}
	for _, c := range phys.Children {
		if c.Actual == nil || c.Actual.RowsIn <= 0 {
			t.Errorf("scan %s actuals = %+v", c.Table, c.Actual)
		}
	}
	// Bad analyze values are rejected.
	code, _ = get(t, srv, "/v1/explain?q="+url.QueryEscape(q)+"&analyze=yes")
	if code != 400 {
		t.Errorf("bad analyze value = %d, want 400", code)
	}
}

// TestV1QueryJoin: joins execute through the bounded interactive query
// endpoint with qualified columns on the wire.
func TestV1QueryJoin(t *testing.T) {
	_, srv := newTestServer(t)
	q := "SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 20 ORDER BY s.z DESC LIMIT 7"
	code, body := get(t, srv, queryPath(q, ""))
	if code != 200 {
		t.Fatalf("join query = %d: %s", code, body)
	}
	var doc struct {
		Columns []query.Column    `json:"columns"`
		Rows    []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Columns) != 2 || doc.Columns[0].Name != "p.objid" || doc.Columns[1].Name != "s.redshift" {
		t.Fatalf("columns = %+v", doc.Columns)
	}
	if len(doc.Rows) == 0 || len(doc.Rows) > 7 {
		t.Fatalf("rows = %d", len(doc.Rows))
	}
	var row map[string]any
	if err := json.Unmarshal(doc.Rows[0], &row); err != nil {
		t.Fatal(err)
	}
	if _, ok := row["p.objid"]; !ok {
		t.Errorf("row keys = %v, want qualified names", row)
	}
	// NEIGHBORS through the same endpoint.
	q2 := "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 5) WHERE a.objid < b.objid LIMIT 20"
	code, body = get(t, srv, queryPath(q2, ""))
	if code != 200 {
		t.Fatalf("neighbors query = %d: %s", code, body)
	}
	// Parse errors surface with positions.
	code, body = get(t, srv, queryPath("SELECT p.objid FROM photo p JOIN", ""))
	if code != 400 {
		t.Fatalf("bad join query = %d", code)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Error("no error body")
	}
}
