package archive

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"sdss/internal/qe"
	"sdss/internal/query"
)

// fmtSource builds a rowSource over literal results with controllable
// post-stream state, the way live queries and job rows present themselves
// to the writers.
func fmtSource(cols []query.Column, results []qe.Result, truncated bool, streamErr error) rowSource {
	src := staticSource(cols, results, truncated)
	src.errFn = func() error { return streamErr }
	return src
}

func floatCol(name string) query.Column { return query.Column{Name: name, Type: query.TypeFloat} }

func TestWriteCSVEdgeCases(t *testing.T) {
	idCol := query.Column{Name: "objid", Type: query.TypeID}
	intCol := query.Column{Name: "run", Type: query.TypeInt}
	tests := []struct {
		name      string
		cols      []query.Column
		results   []qe.Result
		truncated bool
		streamErr error
		want      []string // exact output lines, in order
	}{
		{
			name: "quoting of separator and quote characters in headers",
			cols: []query.Column{floatCol(`a,b`), floatCol(`say "r"`)},
			results: []qe.Result{
				{Values: []float64{1.5, 2}},
			},
			want: []string{`"a,b","say ""r"""`, "1.5,2"},
		},
		{
			name: "NaN and infinities render as text fields",
			cols: []query.Column{floatCol("x"), floatCol("y"), floatCol("z")},
			results: []qe.Result{
				{Values: []float64{math.NaN(), math.Inf(1), math.Inf(-1)}},
			},
			want: []string{"x,y,z", "NaN,+Inf,-Inf"},
		},
		{
			name: "id and int columns render exactly",
			cols: []query.Column{idCol, intCol},
			results: []qe.Result{
				{ObjID: 9007199254740993, Values: []float64{9007199254740993, 745}},
			},
			// 2^53+1 is not representable as float64; the ObjID side-channel
			// must preserve it while the int column rounds.
			want: []string{"objid,run", "9007199254740993,745"},
		},
		{
			name:    "missing values pad as empty fields",
			cols:    []query.Column{floatCol("a"), floatCol("b")},
			results: []qe.Result{{Values: []float64{1}}},
			want:    []string{"a,b", "1,"},
		},
		{
			name:      "truncation marker after the last row",
			cols:      []query.Column{floatCol("a")},
			results:   []qe.Result{{Values: []float64{1}}, {Values: []float64{2}}},
			truncated: true,
			want:      []string{"a", "1", "2", "# truncated after 2 rows"},
		},
		{
			name:      "stream error trailer replaces the truncation marker",
			cols:      []query.Column{floatCol("a")},
			results:   []qe.Result{{Values: []float64{1}}},
			truncated: true,
			streamErr: errors.New("boom"),
			want:      []string{"a", "1", "# error: boom"},
		},
		{
			name: "empty result is just the header",
			cols: []query.Column{floatCol("a")},
			want: []string{"a"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			writeCSV(&sb, fmtSource(tc.cols, tc.results, tc.truncated, tc.streamErr))
			got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			if len(got) != len(tc.want) {
				t.Fatalf("got %d lines %q, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("line %d:\n got %q\nwant %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestWriteNDJSONEdgeCases(t *testing.T) {
	tests := []struct {
		name      string
		cols      []query.Column
		results   []qe.Result
		truncated bool
		streamErr error
		want      []string
	}{
		{
			name: "non-finite floats become null",
			cols: []query.Column{floatCol("x"), floatCol("y"), floatCol("z")},
			results: []qe.Result{
				{Values: []float64{math.NaN(), math.Inf(1), 2.5}},
			},
			want: []string{`{"x":null,"y":null,"z":2.5}`},
		},
		{
			name: "column names JSON-escape",
			cols: []query.Column{floatCol(`he said "hi"`)},
			results: []qe.Result{
				{Values: []float64{1}},
			},
			want: []string{`{"he said \"hi\"":1}`},
		},
		{
			name:    "missing values become null",
			cols:    []query.Column{floatCol("a"), floatCol("b")},
			results: []qe.Result{{Values: []float64{3}}},
			want:    []string{`{"a":3,"b":null}`},
		},
		{
			name:      "truncation trailer is exactly one record",
			cols:      []query.Column{floatCol("a")},
			results:   []qe.Result{{Values: []float64{1}}, {Values: []float64{2}}},
			truncated: true,
			want:      []string{`{"a":1}`, `{"a":2}`, `{"truncated":true,"rows":2}`},
		},
		{
			name:      "error trailer wins over truncation",
			cols:      []query.Column{floatCol("a")},
			truncated: true,
			streamErr: errors.New(`bad "stuff"`),
			want:      []string{`{"error":"bad \"stuff\""}`},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			writeNDJSON(&sb, fmtSource(tc.cols, tc.results, tc.truncated, tc.streamErr))
			got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			if len(got) != len(tc.want) {
				t.Fatalf("got %d lines %q, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("line %d:\n got %s\nwant %s", i, got[i], tc.want[i])
				}
				// Every line must stand alone as valid JSON.
				var v map[string]any
				if err := json.Unmarshal([]byte(got[i]), &v); err != nil {
					t.Errorf("line %d is not valid JSON: %v", i, err)
				}
			}
		})
	}
}

func TestBuildJSONDocumentEdgeCases(t *testing.T) {
	cols := []query.Column{floatCol("x")}
	t.Run("stream error surfaces instead of a document", func(t *testing.T) {
		_, err := buildJSONDocument(fmtSource(cols, nil, false, errors.New("late failure")))
		if err == nil || err.Error() != "late failure" {
			t.Fatalf("err = %v, want late failure", err)
		}
	})
	t.Run("truncation and count flow into the envelope", func(t *testing.T) {
		doc, err := buildJSONDocument(fmtSource(cols, []qe.Result{
			{Values: []float64{math.Inf(1)}},
			{Values: []float64{1}},
		}, true, nil))
		if err != nil {
			t.Fatal(err)
		}
		if doc.RowCount != 2 || !doc.Truncated {
			t.Fatalf("RowCount %d Truncated %v, want 2 true", doc.RowCount, doc.Truncated)
		}
		if got := string(doc.Rows[0]); got != `{"x":null}` {
			t.Fatalf("Inf row rendered %s", got)
		}
		// The envelope itself must marshal: RawMessage rows included.
		if _, err := json.Marshal(doc); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("empty result keeps rows as an array", func(t *testing.T) {
		doc, err := buildJSONDocument(fmtSource(cols, nil, false, nil))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"rows":[]`) {
			t.Fatalf("empty rows marshaled as %s", b)
		}
	})
}
