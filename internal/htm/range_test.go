package htm

import (
	"math/rand"
	"testing"
)

func TestRangeSetBasics(t *testing.T) {
	s := NewRangeSet(4)
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatal("empty set not empty")
	}
	n012, _ := Parse("N012")
	s.AddTrixel(n012)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Count() != 16 { // depth-2 trixel covers 4² depth-4 trixels
		t.Fatalf("Count = %d, want 16", s.Count())
	}
	if !s.Contains(n012.Child(2)) {
		t.Error("set must contain child of added trixel")
	}
	if !s.Contains(n012) {
		t.Error("Contains must project shallower IDs to set depth")
	}
	other, _ := Parse("S000")
	if s.Contains(other) {
		t.Error("set must not contain unrelated trixel")
	}
}

func TestRangeSetMerging(t *testing.T) {
	s := NewRangeSet(3)
	// Adding all four children of a trixel must merge into one range equal
	// to the parent's range.
	parent, _ := Parse("N01")
	for i := 0; i < 4; i++ {
		s.AddTrixel(parent.Child(i))
	}
	if s.Len() != 1 {
		t.Fatalf("children did not merge: %v", s)
	}
	lo, hi := parent.RangeAtDepth(3)
	if s.Ranges()[0] != (Range{lo, hi}) {
		t.Fatalf("merged range %v, want [%d,%d]", s.Ranges()[0], lo, hi)
	}
	// Adding an overlapping range keeps the set normalized.
	s.AddRange(Range{lo - 2, lo + 1})
	if s.Len() != 1 || s.Ranges()[0].Lo != lo-2 {
		t.Fatalf("overlap merge failed: %v", s)
	}
	// Degenerate range is ignored.
	s.AddRange(Range{10, 5})
	if s.Len() != 1 {
		t.Fatalf("degenerate range changed set: %v", s)
	}
}

func TestRangeSetUnionIntersect(t *testing.T) {
	a := NewRangeSet(2)
	b := NewRangeSet(2)
	a.AddRange(Range{128, 140})
	a.AddRange(Range{150, 160})
	b.AddRange(Range{135, 155})

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 || u.Ranges()[0] != (Range{128, 160}) {
		t.Fatalf("union = %v", u)
	}
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{135, 140}, {150, 155}}
	if i.Len() != 2 || i.Ranges()[0] != want[0] || i.Ranges()[1] != want[1] {
		t.Fatalf("intersect = %v, want %v", i, want)
	}
	if _, err := a.Union(NewRangeSet(3)); err == nil {
		t.Error("union across depths succeeded, want error")
	}
	if _, err := a.Intersect(NewRangeSet(3)); err == nil {
		t.Error("intersect across depths succeeded, want error")
	}
}

func TestFromTrixelsEquivalentToAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var ids []ID
		for i := 0; i < 30; i++ {
			id := ID(8 + rng.Intn(8))
			for d := rng.Intn(5); d > 0; d-- {
				id = id.Child(rng.Intn(4))
			}
			ids = append(ids, id)
		}
		bulk := FromTrixels(6, ids)
		inc := NewRangeSet(6)
		for _, id := range ids {
			inc.AddTrixel(id)
		}
		if bulk.String() != inc.String() {
			t.Fatalf("bulk %v != incremental %v", bulk, inc)
		}
		// Verify Contains against brute force over all leaf expansions.
		for _, id := range ids {
			lo, hi := id.RangeAtDepth(6)
			for probe := lo; probe <= hi; probe += (hi - lo + 3) / 4 {
				if !bulk.Contains(probe) {
					t.Fatalf("set missing leaf %d of %s", uint64(probe), id)
				}
			}
		}
	}
}

func TestRangeSetStringFormats(t *testing.T) {
	s := NewRangeSet(0)
	s.AddRange(Range{8, 8})
	s.AddRange(Range{12, 15})
	got := s.String()
	want := "depth0{8, 12-15}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
