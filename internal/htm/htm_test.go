package htm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdss/internal/sphere"
)

func randUnit(rng *rand.Rand) sphere.Vec3 {
	// Uniform on the sphere via z ~ U(-1,1).
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	r := math.Sqrt(1 - z*z)
	return sphere.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
}

func TestIDEncoding(t *testing.T) {
	// Depth counts subdivision levels below the octahedron face: "N0" is a
	// face (depth 0), "N012" is two levels down (depth 2).
	cases := []struct {
		name  string
		depth int
	}{
		{"S0", 0}, {"N3", 0}, {"N012", 2}, {"S3210", 3},
		{"N0000000000", 9},
	}
	for _, c := range cases {
		id, err := Parse(c.name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.name, err)
		}
		if !id.Valid() {
			t.Errorf("Parse(%q) = %#x not Valid", c.name, uint64(id))
		}
		if id.Depth() != c.depth {
			t.Errorf("%q depth = %d, want %d", c.name, id.Depth(), c.depth)
		}
		if id.String() != c.name {
			t.Errorf("round trip %q -> %q", c.name, id.String())
		}
	}
	for _, bad := range []string{"", "X0", "N4", "N0x", "N", "N01230123012301230123012301230120"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestIDTreeArithmetic(t *testing.T) {
	id, _ := Parse("N012")
	if got := id.Parent().String(); got != "N01" {
		t.Errorf("Parent = %q, want N01", got)
	}
	if got := id.Child(3).String(); got != "N0123" {
		t.Errorf("Child(3) = %q, want N0123", got)
	}
	if id.ChildIndex() != 2 {
		t.Errorf("ChildIndex = %d, want 2", id.ChildIndex())
	}
	if got := id.Face().String(); got != "N0" {
		t.Errorf("Face = %q, want N0", got)
	}
	if !id.Parent().Contains(id) || id.Contains(id.Parent()) {
		t.Error("Contains: parent/child relation wrong")
	}
	if !id.Contains(id) {
		t.Error("Contains must be reflexive")
	}
	face, _ := Parse("S2")
	if face.Parent() != Invalid {
		t.Errorf("face parent = %v, want Invalid", face.Parent())
	}
	if got := id.AtDepth(1).String(); got != "N01" {
		t.Errorf("AtDepth(1) = %q", got)
	}
	if got := id.AtDepth(3).String(); got != "N0120" {
		t.Errorf("AtDepth(3) = %q", got)
	}
	lo, hi := id.RangeAtDepth(3)
	if hi-lo != 3 || lo != id<<2 {
		t.Errorf("RangeAtDepth(3) = [%d,%d]", uint64(lo), uint64(hi))
	}
}

func TestFacesTileTheSphere(t *testing.T) {
	// Every point must fall in at least one face; total face area is 4π.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := randUnit(rng)
		n := 0
		for f := ID(8); f <= 15; f++ {
			if FaceTriangle(f).ContainsVec(v) {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("point %v in no face", v)
		}
	}
	var total float64
	for f := ID(8); f <= 15; f++ {
		total += FaceTriangle(f).Area()
	}
	if math.Abs(total-4*math.Pi) > 1e-9 {
		t.Errorf("face areas sum to %v, want 4π=%v", total, 4*math.Pi)
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	// Children's areas must sum to the parent's area, at several depths.
	tri := FaceTriangle(12)
	for depth := 0; depth < 6; depth++ {
		kids := tri.Children()
		var sum float64
		for _, k := range kids {
			sum += k.Area()
		}
		if math.Abs(sum-tri.Area()) > 1e-9 {
			t.Fatalf("depth %d: children areas %v != parent %v", depth, sum, tri.Area())
		}
		tri = kids[depth%4]
	}
}

func TestLookupContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := randUnit(rng)
		for _, depth := range []int{0, 1, 3, 7, 12, 20} {
			id, err := Lookup(v, depth)
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if id.Depth() != depth {
				t.Fatalf("Lookup depth = %d, want %d", id.Depth(), depth)
			}
			tri, err := Vertices(id)
			if err != nil {
				t.Fatalf("Vertices: %v", err)
			}
			// Allow boundary slack: the point must be inside or within
			// float noise of the claimed trixel.
			if !tri.ContainsVec(v) {
				c := tri.Center()
				t.Fatalf("depth %d: %v not in trixel %s (center %v)", depth, v, id, c)
			}
		}
	}
}

func TestLookupDeterministicConsistency(t *testing.T) {
	// A trixel at depth d must be the prefix of the trixel at depth d+k.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := randUnit(rng)
		id20, err := Lookup(v, 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{0, 5, 10, 15} {
			idd, err := Lookup(v, d)
			if err != nil {
				t.Fatal(err)
			}
			if !idd.Contains(id20) {
				t.Fatalf("lookup inconsistent: depth %d gave %s, depth 20 gave %s", d, idd, id20)
			}
		}
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := Lookup(sphere.Vec3{X: 2}, 5); err == nil {
		t.Error("Lookup of non-unit vector succeeded")
	}
	if _, err := Lookup(sphere.Vec3{X: 1}, -1); err == nil {
		t.Error("Lookup at negative depth succeeded")
	}
	if _, err := Lookup(sphere.Vec3{X: 1}, MaxDepth+1); err == nil {
		t.Error("Lookup beyond MaxDepth succeeded")
	}
	if _, err := Vertices(Invalid); err == nil {
		t.Error("Vertices(Invalid) succeeded")
	}
}

func TestPolesAndCardinalPoints(t *testing.T) {
	// The north pole must land in an N face at depth 0 and the walk down
	// must stay consistent; cardinal equator points sit on face corners.
	np, err := Lookup(sphere.Vec3{Z: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f := np.Face(); f < 12 {
		t.Errorf("north pole in face %s", f)
	}
	sp, err := Lookup(sphere.Vec3{Z: -1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f := sp.Face(); f >= 12 {
		t.Errorf("south pole in face %s", f)
	}
}

func TestNumTrixels(t *testing.T) {
	wants := []uint64{8, 32, 128, 512, 2048, 8192}
	for d, want := range wants {
		if got := NumTrixels(d); got != want {
			t.Errorf("NumTrixels(%d) = %d, want %d", d, got, want)
		}
		if lo, hi := FirstAtDepth(d), LastAtDepth(d); uint64(hi-lo)+1 != want {
			t.Errorf("depth %d ID span = %d, want %d", d, uint64(hi-lo)+1, want)
		}
	}
}

func TestAreaUniformity(t *testing.T) {
	// The paper: "divided into 4 sub-triangles of approximately equal
	// areas". Check the max/min area ratio stays bounded (~2.1 for HTM).
	for depth := 1; depth <= 5; depth++ {
		minA, maxA := math.Inf(1), 0.0
		var walk func(tr Triangle, d int)
		walk = func(tr Triangle, d int) {
			if d == 0 {
				a := tr.Area()
				minA = math.Min(minA, a)
				maxA = math.Max(maxA, a)
				return
			}
			for _, c := range tr.Children() {
				walk(c, d-1)
			}
		}
		for f := ID(8); f <= 15; f++ {
			walk(FaceTriangle(f), depth)
		}
		if ratio := maxA / minA; ratio > 2.5 {
			t.Errorf("depth %d area ratio %v exceeds 2.5", depth, ratio)
		}
	}
}

func TestBoundingCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		id, err := Lookup(randUnit(rng), 3+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		tri, _ := Vertices(id)
		c, r := tri.BoundingCircle()
		for _, v := range tri.V {
			if d := c.Angle(v); d > r+1e-9 {
				t.Fatalf("vertex outside bounding circle: d=%v r=%v", d, r)
			}
		}
		// Sample interior points; all must be inside the circle.
		for j := 0; j < 20; j++ {
			a, b := rng.Float64(), rng.Float64()
			if a+b > 1 {
				a, b = 1-a, 1-b
			}
			p := tri.V[0].Scale(1 - a - b).Add(tri.V[1].Scale(a)).Add(tri.V[2].Scale(b)).Normalize()
			if d := c.Angle(p); d > r+1e-9 {
				t.Fatalf("interior point outside bounding circle: d=%v r=%v", d, r)
			}
		}
	}
}

func TestQuickIDInvertibility(t *testing.T) {
	// Property: String/Parse and Lookup/Vertices round trips hold for
	// arbitrary random IDs built by random descent.
	f := func(seed int64, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := int(depthRaw % 15)
		id := ID(8 + rng.Intn(8))
		for i := 0; i < depth; i++ {
			id = id.Child(rng.Intn(4))
		}
		parsed, err := Parse(id.String())
		if err != nil || parsed != id {
			return false
		}
		tri, err := Vertices(id)
		if err != nil {
			return false
		}
		// The center of the trixel must look up to the trixel itself.
		got, err := Lookup(tri.Center(), id.Depth())
		return err == nil && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupDepth10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]sphere.Vec3, 1024)
	for i := range vs {
		vs[i] = randUnit(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lookup(vs[i%len(vs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupDepth20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]sphere.Vec3, 1024)
	for i := range vs {
		vs[i] = randUnit(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lookup(vs[i%len(vs)], 20); err != nil {
			b.Fatal(err)
		}
	}
}
