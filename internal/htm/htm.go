// Package htm implements the Hierarchical Triangular Mesh, the multi-level
// spatial index over the celestial sphere described in the paper's "Indexing
// the Sky" section (Figure 3) and in Szalay, Kunszt & Brunner's Hierarchical
// Sky Partitioning.
//
// The sphere is first divided into the 8 spherical triangles of an inscribed
// octahedron (4 in the northern celestial hemisphere, 4 in the southern).
// Each spherical triangle is then recursively divided into 4 sub-triangles
// of approximately equal area by connecting the midpoints of its edges,
// ad infinitum. The subdivision forms a forest of 8 quad-trees; every node
// — a "trixel" — is named by a 64-bit integer that encodes the full path
// from its root, so areas at different catalog depths map either directly
// onto one another or one is fully contained by the other.
package htm

import (
	"fmt"
	"math"
	"math/bits"

	"sdss/internal/sphere"
)

// ID names a trixel. The encoding follows the JHU HTM convention:
//
//	depth 0 (the 8 octahedron faces):  0b1000 (S0=8) … 0b1111 (N3=15)
//	each further level appends two bits, the child index 0..3:
//	    children(t) = 4t+0, 4t+1, 4t+2, 4t+3
//
// The leading 1 bit acts as a sentinel so the depth is recoverable from the
// bit length: depth = (bitlen(id) - 4) / 2. The zero ID is invalid.
type ID uint64

// MaxDepth is the deepest supported subdivision level. At depth 30 a trixel
// subtends about 10 microarcseconds, far below any astrometric precision;
// 64-bit IDs could go deeper but derived quantities degenerate in float64.
const MaxDepth = 30

// Invalid is the zero ID, which names no trixel.
const Invalid ID = 0

// Depth returns the subdivision depth of the trixel: 0 for the 8 octahedron
// faces, increasing by one per level. Depth of the invalid ID is -1.
func (id ID) Depth() int {
	if id < 8 {
		return -1
	}
	return (bits.Len64(uint64(id)) - 4) / 2
}

// Valid reports whether id is a well-formed trixel ID: at least 8 (so the
// sentinel bit is present), even bit length (faces use 4 bits, each level
// two more), and no deeper than MaxDepth.
func (id ID) Valid() bool {
	n := bits.Len64(uint64(id))
	return id >= 8 && n%2 == 0 && n <= 4+2*MaxDepth
}

// Parent returns the trixel containing id at the previous depth. The parent
// of a depth-0 face is Invalid.
func (id ID) Parent() ID {
	if id < 64 {
		return Invalid
	}
	return id >> 2
}

// Child returns the i-th child (0..3) of the trixel at the next depth.
func (id ID) Child(i int) ID {
	return id<<2 | ID(i&3)
}

// ChildIndex returns which child of its parent this trixel is (0..3).
func (id ID) ChildIndex() int {
	return int(id & 3)
}

// Face returns the depth-0 octahedron face (8..15) that contains id.
func (id ID) Face() ID {
	d := id.Depth()
	if d < 0 {
		return Invalid
	}
	return id >> (2 * uint(d))
}

// AtDepth returns the ancestor of id at depth d, or, if d exceeds the
// trixel's own depth, the first (child-0 path) descendant at depth d.
// It is the canonical way to compare trixels from catalogs indexed at
// different depths: area containment reduces to integer prefix arithmetic.
func (id ID) AtDepth(d int) ID {
	own := id.Depth()
	if own < 0 || d < 0 || d > MaxDepth {
		return Invalid
	}
	if d <= own {
		return id >> (2 * uint(own-d))
	}
	return id << (2 * uint(d-own))
}

// Contains reports whether trixel id spatially contains trixel other, i.e.
// whether id is an ancestor of (or equal to) other in the mesh.
func (id ID) Contains(other ID) bool {
	d1, d2 := id.Depth(), other.Depth()
	if d1 < 0 || d2 < 0 || d2 < d1 {
		return false
	}
	return other>>(2*uint(d2-d1)) == id
}

// RangeAtDepth returns the half-open interval [lo, hi] of depth-d trixel IDs
// covered by this trixel (inclusive on both ends). It requires d ≥ Depth().
// Expressing coverage as ranges of leaf IDs is what lets the archive store a
// multi-resolution index as sorted integer intervals.
func (id ID) RangeAtDepth(d int) (lo, hi ID) {
	own := id.Depth()
	if own < 0 || d < own {
		return Invalid, Invalid
	}
	shift := 2 * uint(d-own)
	lo = id << shift
	hi = lo | (1<<shift - 1)
	return lo, hi
}

// String returns the conventional HTM name: the face name (N0..N3, S0..S3)
// followed by the child digits, e.g. "N012".
func (id ID) String() string {
	d := id.Depth()
	if d < 0 {
		return "invalid"
	}
	buf := make([]byte, 0, d+2)
	face := id.Face()
	if face >= 12 {
		buf = append(buf, 'N', byte('0'+face-12))
	} else {
		buf = append(buf, 'S', byte('0'+face-8))
	}
	for level := d - 1; level >= 0; level-- {
		buf = append(buf, byte('0'+(id>>(2*uint(level)))&3))
	}
	return string(buf)
}

// Parse converts an HTM name such as "N012" back to its ID.
func Parse(name string) (ID, error) {
	if len(name) < 2 {
		return Invalid, fmt.Errorf("htm: name %q too short", name)
	}
	var id ID
	switch name[0] {
	case 'N', 'n':
		id = 12
	case 'S', 's':
		id = 8
	default:
		return Invalid, fmt.Errorf("htm: name %q must start with N or S", name)
	}
	if name[1] < '0' || name[1] > '3' {
		return Invalid, fmt.Errorf("htm: bad face digit in %q", name)
	}
	id += ID(name[1] - '0')
	if len(name)-2 > MaxDepth {
		return Invalid, fmt.Errorf("htm: name %q deeper than MaxDepth %d", name, MaxDepth)
	}
	for _, c := range name[2:] {
		if c < '0' || c > '3' {
			return Invalid, fmt.Errorf("htm: bad child digit %q in %q", c, name)
		}
		id = id<<2 | ID(c-'0')
	}
	return id, nil
}

// The octahedron vertices. v0 is the north celestial pole; v1..v4 lie on the
// equator at RA 0°, 90°, 180°, 270°; v5 is the south pole. This matches the
// original JHU HTM orientation.
var octaVerts = [6]sphere.Vec3{
	{X: 0, Y: 0, Z: 1},  // v0 north pole
	{X: 1, Y: 0, Z: 0},  // v1 RA 0
	{X: 0, Y: 1, Z: 0},  // v2 RA 90
	{X: -1, Y: 0, Z: 0}, // v3 RA 180
	{X: 0, Y: -1, Z: 0}, // v4 RA 270
	{X: 0, Y: 0, Z: -1}, // v5 south pole
}

// faceVerts[f-8] gives the vertex indices of depth-0 face f in
// counterclockwise order viewed from outside the sphere (so that edge-plane
// normals point into the triangle).
var faceVerts = [8][3]int{
	{1, 5, 2}, // S0 = 8
	{2, 5, 3}, // S1 = 9
	{3, 5, 4}, // S2 = 10
	{4, 5, 1}, // S3 = 11
	{1, 0, 4}, // N0 = 12
	{4, 0, 3}, // N1 = 13
	{3, 0, 2}, // N2 = 14
	{2, 0, 1}, // N3 = 15
}

// Triangle is a trixel's geometry: three unit vectors in counterclockwise
// order (outward-facing), so v0×v1, v1×v2, v2×v0 all point into the
// triangle.
type Triangle struct {
	V [3]sphere.Vec3
}

// FaceTriangle returns the geometry of a depth-0 face (ID 8..15).
func FaceTriangle(face ID) Triangle {
	fv := faceVerts[face-8]
	return Triangle{V: [3]sphere.Vec3{octaVerts[fv[0]], octaVerts[fv[1]], octaVerts[fv[2]]}}
}

// Children subdivides the triangle into its four children in HTM order:
// child 0 keeps vertex 0, child 1 keeps vertex 1, child 2 keeps vertex 2,
// child 3 is the central (midpoint) triangle. Orientation is preserved.
func (t Triangle) Children() [4]Triangle {
	w0 := t.V[1].Midpoint(t.V[2])
	w1 := t.V[0].Midpoint(t.V[2])
	w2 := t.V[0].Midpoint(t.V[1])
	return [4]Triangle{
		{V: [3]sphere.Vec3{t.V[0], w2, w1}},
		{V: [3]sphere.Vec3{t.V[1], w0, w2}},
		{V: [3]sphere.Vec3{t.V[2], w1, w0}},
		{V: [3]sphere.Vec3{w0, w1, w2}},
	}
}

// ContainsVec reports whether the unit vector v lies inside the spherical
// triangle: on the inner side of all three edge planes. Points exactly on a
// shared edge may test inside in two adjacent trixels; Lookup resolves the
// tie deterministically by scanning children in order.
func (t Triangle) ContainsVec(v sphere.Vec3) bool {
	const tol = -1e-15 // admit points within float noise of an edge
	return t.V[0].Cross(t.V[1]).Dot(v) >= tol &&
		t.V[1].Cross(t.V[2]).Dot(v) >= tol &&
		t.V[2].Cross(t.V[0]).Dot(v) >= tol
}

// Center returns the normalized centroid of the triangle.
func (t Triangle) Center() sphere.Vec3 {
	return t.V[0].Add(t.V[1]).Add(t.V[2]).Normalize()
}

// Area returns the solid angle of the spherical triangle in steradians,
// computed from the spherical excess (Girard's theorem) via l'Huilier's
// formula, which stays accurate for the tiny triangles at deep levels.
func (t Triangle) Area() float64 {
	a := t.V[1].Angle(t.V[2])
	b := t.V[0].Angle(t.V[2])
	c := t.V[0].Angle(t.V[1])
	s := (a + b + c) / 2
	x := math.Tan(s/2) * math.Tan((s-a)/2) * math.Tan((s-b)/2) * math.Tan((s-c)/2)
	if x < 0 {
		x = 0 // degenerate triangle, float noise
	}
	return 4 * math.Atan(math.Sqrt(x))
}

// BoundingCircle returns the center and angular radius (radians) of a small
// circle containing the triangle: the circumcircle through its vertices.
func (t Triangle) BoundingCircle() (center sphere.Vec3, radius float64) {
	// The circumcenter is the normal of the plane through the three
	// vertices: (v1-v0)×(v2-v1), normalized, oriented toward the triangle.
	n := t.V[1].Sub(t.V[0]).Cross(t.V[2].Sub(t.V[1])).Normalize()
	if n.Dot(t.Center()) < 0 {
		n = n.Neg()
	}
	return n, n.Angle(t.V[0])
}

// Vertices returns the geometry of any trixel by walking down from its face.
func Vertices(id ID) (Triangle, error) {
	d := id.Depth()
	if d < 0 || d > MaxDepth {
		return Triangle{}, fmt.Errorf("htm: invalid trixel ID %#x", uint64(id))
	}
	t := FaceTriangle(id.Face())
	for level := d - 1; level >= 0; level-- {
		child := int(id>>(2*uint(level))) & 3
		t = t.Children()[child]
	}
	return t, nil
}

// Lookup returns the depth-d trixel containing the unit vector v. It walks
// the quad-tree from the 8 faces, testing each candidate child with three
// edge-plane sign tests — the recursive point classification the paper
// describes. Cost is O(depth).
func Lookup(v sphere.Vec3, depth int) (ID, error) {
	if depth < 0 || depth > MaxDepth {
		return Invalid, fmt.Errorf("htm: depth %d out of range [0,%d]", depth, MaxDepth)
	}
	if !v.IsUnit(1e-6) {
		return Invalid, fmt.Errorf("htm: Lookup of non-unit vector %v", v)
	}
	var id ID
	var tri Triangle
	found := false
	for f := ID(8); f <= 15; f++ {
		t := FaceTriangle(f)
		if t.ContainsVec(v) {
			id, tri, found = f, t, true
			break
		}
	}
	if !found {
		// Cannot happen for unit vectors: the faces tile the sphere and
		// ContainsVec admits boundary points. Guard anyway.
		return Invalid, fmt.Errorf("htm: no face contains %v", v)
	}
	for level := 0; level < depth; level++ {
		children := tri.Children()
		advanced := false
		for i, c := range children {
			if c.ContainsVec(v) {
				id, tri, advanced = id.Child(i), c, true
				break
			}
		}
		if !advanced {
			// Float noise can exclude a point from all four children when
			// it sits exactly on an internal edge; assign to the central
			// child which borders all edges.
			id, tri = id.Child(3), children[3]
		}
	}
	return id, nil
}

// LookupRADec is Lookup for equatorial coordinates in degrees.
func LookupRADec(raDeg, decDeg float64, depth int) (ID, error) {
	return Lookup(sphere.FromRADec(raDeg, decDeg), depth)
}

// Center returns the center point of a trixel.
func Center(id ID) (sphere.Vec3, error) {
	t, err := Vertices(id)
	if err != nil {
		return sphere.Vec3{}, err
	}
	return t.Center(), nil
}

// NumTrixels returns the number of trixels at a given depth: 8·4^depth.
func NumTrixels(depth int) uint64 {
	return 8 << (2 * uint(depth))
}

// TrixelAngle returns the approximate angular side of a depth-d trixel in
// radians: the octahedron face edges span 90° and halve with every
// subdivision. Consumers sizing spatial partitions or occupancy statistics
// against a pair radius compare against this scale.
func TrixelAngle(depth int) float64 {
	return (math.Pi / 2) / float64(uint64(1)<<uint(depth))
}

// TrixelArea returns the mean solid angle of one depth-d trixel in
// steradians: the sphere's 4π split over NumTrixels.
func TrixelArea(depth int) float64 {
	return 4 * math.Pi / float64(NumTrixels(depth))
}

// FirstAtDepth and LastAtDepth bound the contiguous ID space of a depth.
func FirstAtDepth(depth int) ID { return ID(8) << (2 * uint(depth)) }

// LastAtDepth returns the largest valid ID at a depth.
func LastAtDepth(depth int) ID { return ID(16)<<(2*uint(depth)) - 1 }
