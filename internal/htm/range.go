package htm

import (
	"fmt"
	"sort"
	"strings"
)

// Range is an inclusive interval [Lo, Hi] of trixel IDs at a common depth.
// Because sibling trixels have consecutive IDs and a parent's descendants
// occupy a contiguous block, spatial coverage compresses extremely well into
// few ranges — the representation the archive's index stores and joins on.
type Range struct {
	Lo, Hi ID
}

// Contains reports whether the range includes id (already at the same depth).
func (r Range) Contains(id ID) bool { return id >= r.Lo && id <= r.Hi }

// Count returns the number of trixels in the range.
func (r Range) Count() uint64 { return uint64(r.Hi-r.Lo) + 1 }

// RangeSet is a sorted, non-overlapping, non-adjacent set of ID ranges at a
// single depth. The zero value is an empty set ready to use.
type RangeSet struct {
	depth  int
	ranges []Range
}

// NewRangeSet returns an empty range set for trixel IDs at the given depth.
func NewRangeSet(depth int) *RangeSet {
	return &RangeSet{depth: depth}
}

// Depth returns the depth the set's IDs live at.
func (s *RangeSet) Depth() int { return s.depth }

// Ranges returns the underlying sorted ranges. The slice must not be
// modified.
func (s *RangeSet) Ranges() []Range { return s.ranges }

// Len returns the number of disjoint ranges.
func (s *RangeSet) Len() int { return len(s.ranges) }

// Count returns the total number of depth-level trixels covered.
func (s *RangeSet) Count() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += r.Count()
	}
	return n
}

// AddTrixel inserts a trixel (at any depth ≤ the set's depth) by expanding
// it to its ID range at the set depth.
func (s *RangeSet) AddTrixel(id ID) {
	lo, hi := id.RangeAtDepth(s.depth)
	if lo == Invalid {
		return
	}
	s.AddRange(Range{lo, hi})
}

// AddRange inserts a raw range, keeping the set sorted and merged.
// Insertion is O(n) in the number of ranges; coverage construction uses
// the bulk FromTrixels path instead.
func (s *RangeSet) AddRange(r Range) {
	if r.Hi < r.Lo {
		return
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Lo > r.Lo })
	s.ranges = append(s.ranges, Range{})
	copy(s.ranges[i+1:], s.ranges[i:])
	s.ranges[i] = r
	s.normalize()
}

// normalize merges overlapping or adjacent ranges in place.
func (s *RangeSet) normalize() {
	if len(s.ranges) < 2 {
		return
	}
	sort.Slice(s.ranges, func(i, j int) bool { return s.ranges[i].Lo < s.ranges[j].Lo })
	out := s.ranges[:1]
	for _, r := range s.ranges[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 { // overlapping or adjacent
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	s.ranges = out
}

// FromTrixels builds a range set at the given depth from a list of trixels
// of mixed depths (all ≤ depth). It is the bulk constructor used by region
// coverage.
func FromTrixels(depth int, ids []ID) *RangeSet {
	s := NewRangeSet(depth)
	s.ranges = make([]Range, 0, len(ids))
	for _, id := range ids {
		lo, hi := id.RangeAtDepth(depth)
		if lo == Invalid {
			continue
		}
		s.ranges = append(s.ranges, Range{lo, hi})
	}
	s.normalize()
	return s
}

// Contains reports whether the set covers the given trixel ID. IDs at a
// different depth are first projected to the set's depth.
func (s *RangeSet) Contains(id ID) bool {
	d := id.Depth()
	if d < 0 {
		return false
	}
	if d != s.depth {
		id = id.AtDepth(s.depth)
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi >= id })
	return i < len(s.ranges) && s.ranges[i].Contains(id)
}

// OverlapsRange reports whether any part of [lo, hi] (IDs at the set's
// depth) is covered by the set. Container scans use this to decide whether a
// coarse clustering unit can hold candidates for a query's coverage.
func (s *RangeSet) OverlapsRange(lo, hi ID) bool {
	if hi < lo {
		return false
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi >= lo })
	return i < len(s.ranges) && s.ranges[i].Lo <= hi
}

// OverlapsTrixel reports whether the set covers any part of the given
// trixel (at any depth ≤ the set's depth).
func (s *RangeSet) OverlapsTrixel(id ID) bool {
	lo, hi := id.RangeAtDepth(s.depth)
	if lo == Invalid {
		return false
	}
	return s.OverlapsRange(lo, hi)
}

// Union returns the set union of two range sets at the same depth.
func (s *RangeSet) Union(t *RangeSet) (*RangeSet, error) {
	if s.depth != t.depth {
		return nil, fmt.Errorf("htm: union of range sets at depths %d and %d", s.depth, t.depth)
	}
	u := NewRangeSet(s.depth)
	u.ranges = make([]Range, 0, len(s.ranges)+len(t.ranges))
	u.ranges = append(u.ranges, s.ranges...)
	u.ranges = append(u.ranges, t.ranges...)
	u.normalize()
	return u, nil
}

// Intersect returns the set intersection of two range sets at the same depth.
func (s *RangeSet) Intersect(t *RangeSet) (*RangeSet, error) {
	if s.depth != t.depth {
		return nil, fmt.Errorf("htm: intersect of range sets at depths %d and %d", s.depth, t.depth)
	}
	u := NewRangeSet(s.depth)
	i, j := 0, 0
	for i < len(s.ranges) && j < len(t.ranges) {
		a, b := s.ranges[i], t.ranges[j]
		lo, hi := max(a.Lo, b.Lo), min(a.Hi, b.Hi)
		if lo <= hi {
			u.ranges = append(u.ranges, Range{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return u, nil
}

// String renders the set compactly for logs and tests.
func (s *RangeSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "depth%d{", s.depth)
	for i, r := range s.ranges {
		if i > 0 {
			b.WriteString(", ")
		}
		if r.Lo == r.Hi {
			fmt.Fprintf(&b, "%d", uint64(r.Lo))
		} else {
			fmt.Fprintf(&b, "%d-%d", uint64(r.Lo), uint64(r.Hi))
		}
	}
	b.WriteString("}")
	return b.String()
}
