package qe

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"sdss/internal/query"
)

// canonicalTotal sorts a result set into a total deterministic order: by
// ObjID, then by every value. Join pairs share the probe row's ObjID, so
// the plain ObjID sort of canonical() is not total for them.
func canonicalTotal(res []Result) {
	sort.Slice(res, func(i, j int) bool {
		a, b := &res[i], &res[j]
		if a.ObjID != b.ObjID {
			return a.ObjID < b.ObjID
		}
		for k := range a.Values {
			if c := keyCompare(a.Values[k], b.Values[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// TestWorkerShardPropertyGrid is the scheduler conformance property: every
// query in the grid must produce bit-identical results across every
// combination of pool size (Workers ∈ {1, 2, 8}) and scatter width
// (shards ∈ {1, 8}) — tolerance zero, including SUM and AVG: aggregate
// scans fold per container and combine partials in container order, and
// the container set does not depend on how containers are dealt to shards
// or workers.
func TestWorkerShardPropertyGrid(t *testing.T) {
	const n, seed = 6000, 7
	engines := map[int]*Engine{}
	var center struct{ ra, dec float64 }
	for _, shards := range []int{1, 8} {
		e, photo := shardedArchive(t, n, seed, shards)
		engines[shards] = e
		center.ra, center.dec = photo[0].RA, photo[0].Dec
	}

	grid := []struct {
		name    string
		q       string
		ordered bool
	}{
		{"filter", "SELECT objid, r FROM tag WHERE r < 21 AND class = 'GALAXY'", false},
		{"cone", fmt.Sprintf("SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(%v, %v, 45)", center.ra, center.dec), false},
		{"order-all", "SELECT objid, g FROM tag WHERE g < 21 ORDER BY g", true},
		{"order-limit", "SELECT objid, r FROM tag WHERE r < 21.5 ORDER BY r LIMIT 50", true},
		{"count", "SELECT COUNT(*) FROM tag WHERE r < 21", true},
		{"sum", "SELECT SUM(r) FROM tag WHERE r < 21", true},
		{"avg", "SELECT AVG(r) FROM tag WHERE r < 21", true},
		{"min", "SELECT MIN(r) FROM tag WHERE r < 21", true},
		{"max", "SELECT MAX(r) FROM tag WHERE r < 21", true},
		{"hash-join", "SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 20", false},
		{"neighbor-join", "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 2) WHERE a.objid < b.objid", false},
		{"intersect", "SELECT objid FROM tag WHERE r < 21 INTERSECT SELECT objid FROM tag WHERE g < 21", false},
		{"minus", "SELECT objid FROM tag WHERE r < 21 MINUS SELECT objid FROM tag WHERE g < 20", false},
	}
	for _, tc := range grid {
		t.Run(tc.name, func(t *testing.T) {
			var want []Result
			for _, shards := range []int{1, 8} {
				for _, workers := range []int{1, 2, 8} {
					e := engines[shards].Clone()
					e.Workers = workers
					got := mustCollect(t, e, tc.q)
					if !tc.ordered {
						canonicalTotal(got)
					}
					if want == nil {
						want = got // the W=1, 1-shard baseline
						continue
					}
					sameResults(t, fmt.Sprintf("%s W=%d shards=%d", tc.name, workers, shards),
						want, got, 0)
				}
			}
		})
	}
}

// TestExplainAnalyzeReportsMorsels pins the scheduler's observability: an
// EXPLAIN ANALYZE sharded scan must report how many morsels it was chunked
// into, how many pool workers ran them, and how many were stolen — in the
// OpNode actuals and in the rendered plan text.
func TestExplainAnalyzeReportsMorsels(t *testing.T) {
	e, _ := shardedArchive(t, 6000, 3, 8)
	e.Workers = 4
	e.MorselRows = 64 // many small morsels so the pool genuinely fans out
	prep, err := query.PrepareString("SELECT objid, r FROM tag WHERE r < 21.5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanAnalyze(prep, true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.ExecutePlan(context.Background(), plan, ExecOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	scan := plan.Describe()
	for scan != nil && scan.Op != "scan" {
		if len(scan.Children) == 0 {
			t.Fatalf("no scan node in plan:\n%s", plan.Text())
		}
		scan = scan.Children[0]
	}
	if scan.Actual == nil {
		t.Fatalf("scan node carries no actuals:\n%s", plan.Text())
	}
	if scan.Actual.Morsels < 2 {
		t.Errorf("Morsels = %d, want >= 2 (MorselRows=64 over 6000 records)", scan.Actual.Morsels)
	}
	if scan.Actual.Workers < 1 || scan.Actual.Workers > 4 {
		t.Errorf("Workers = %d, want 1..4", scan.Actual.Workers)
	}
	if scan.Actual.Steals < 0 || scan.Actual.Steals > scan.Actual.Morsels {
		t.Errorf("Steals = %d outside [0, %d]", scan.Actual.Steals, scan.Actual.Morsels)
	}
	text := plan.Text()
	if want := fmt.Sprintf("morsels=%d", scan.Actual.Morsels); !strings.Contains(text, want) {
		t.Errorf("plan text missing %q:\n%s", want, text)
	}
	if want := fmt.Sprintf("workers=%d", scan.Actual.Workers); !strings.Contains(text, want) {
		t.Errorf("plan text missing %q:\n%s", want, text)
	}
}

// TestCloseDuringStealLeaksNoGoroutines closes queries mid-flight — small
// morsels, small batches, an 8-way pool over 8 shards, so cancellation
// lands while workers are actively pulling and stealing units — and then
// requires the goroutine count to return to its pre-query baseline: pool
// workers exit when the queues drain, and no scan, gather, or finish
// goroutine may outlive its query. Each interrupted stream must also mark
// itself interrupted (the cancel is user-initiated, so Err stays nil).
func TestCloseDuringStealLeaksNoGoroutines(t *testing.T) {
	e, _ := shardedArchive(t, 8000, 11, 8)
	e.Workers = 8
	e.MorselRows = 32
	e.BatchSize = 8

	// Warm the pool machinery once so lazily created state (the pool
	// struct, batch pools) is excluded from the baseline.
	rows, err := e.ExecuteString(context.Background(), "SELECT objid FROM tag LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	// Let the warm-up query's pool workers exit before taking the baseline.
	baseline := runtime.NumGoroutine()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		time.Sleep(10 * time.Millisecond)
		if n := runtime.NumGoroutine(); n < baseline {
			baseline = n
		} else {
			break
		}
	}

	for iter := 0; iter < 20; iter++ {
		rows, err := e.ExecuteString(context.Background(), "SELECT objid, ra, dec, r FROM tag")
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for b := range rows.C {
			got += len(b)
			RecycleBatch(b)
			if got >= 8 {
				break
			}
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			t.Fatalf("iter %d: Err after user close: %v", iter, err)
		}
		if !rows.interrupted.Load() {
			t.Fatalf("iter %d: mid-query close did not mark the stream interrupted", iter)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMorselFastPathSingleContainer pins the dispatch fast path: a plan
// whose coverage reduces to one morsel must not touch the shared pool —
// the unit runs on a plain goroutine and EXPLAIN reports zero steals with
// one worker.
func TestMorselFastPathSingleContainer(t *testing.T) {
	e, _ := shardedArchive(t, 300, 5, 1) // small survey, single shard
	e.MorselRows = 1 << 20               // everything fits one morsel per container run
	prep, err := query.PrepareString("SELECT objid FROM tag WHERE r < 30")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanAnalyze(prep, true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.ExecutePlan(context.Background(), plan, ExecOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no rows")
	}
	scan := plan.Describe()
	for scan.Op != "scan" {
		scan = scan.Children[0]
	}
	if scan.Actual.Morsels != 1 {
		t.Fatalf("Morsels = %d, want 1 (MorselRows covers the whole shard)", scan.Actual.Morsels)
	}
	if scan.Actual.Steals != 0 {
		t.Errorf("Steals = %d on the single-morsel fast path", scan.Actual.Steals)
	}
	if scan.Actual.Workers != 1 {
		t.Errorf("Workers = %d, want 1", scan.Actual.Workers)
	}
}
