// The two join operators of the physical plan:
//
//   - hashJoinOp executes ON a.col = b.col as a classic hash join: the
//     build side (chosen by the optimizer as the smaller estimated input)
//     is drained into a hash table, then the probe side streams through it.
//     ON objid = objid joins key on the exact 64-bit object identifiers;
//     general numeric keys hash their float64 values, with NaN keys dropped
//     from both sides (NaN equals nothing, so they can never match).
//
//   - neighborJoinOp executes FROM NEIGHBORS(a, b, radius) on the hash
//     machine's bucket scheme (package hashm): both inputs drain, the right
//     side hashes into HTM-trixel buckets with exact margin replication,
//     and each left row probes its home bucket — "the spatial analogue of a
//     relational hash-join", exactly as the paper frames it.
//
// Both operators consume leaf scans that are already shard-aware: each side
// scatters across its store's slices under the query-wide token pool and
// arrives here as one merged stream.
package qe

import (
	"context"
	"math"

	"sdss/internal/catalog"
	"sdss/internal/hashm"
	"sdss/internal/query"
	"sdss/internal/sphere"
)

// planJoin plans a two-table leaf: both side scans (each with its own
// cost-based access path), the join operator with its build side chosen by
// estimated cardinality, and the statement's aggregate / sort / limit
// wrappers.
func (e *Engine) planJoin(cj *query.CompiledJoin, analyze bool) (Operator, error) {
	left, err := e.planLeaf(cj.Left, analyze)
	if err != nil {
		return nil, err
	}
	right, err := e.planLeaf(cj.Right, analyze)
	if err != nil {
		return nil, err
	}
	estL, estR := left.info.EstRows, right.info.EstRows
	cost := left.info.EstCost + right.info.EstCost

	var op Operator
	switch cj.Kind {
	case query.JoinInner:
		// Build on the smaller estimated input, probe with the larger.
		//lint:skylint-ignore nansafe cost estimates, not attribute values; either build side is correct
		buildLeft := estL <= estR
		side := "right"
		if buildLeft {
			side = "left"
		}
		est := math.Min(estL, estR)
		j := &hashJoinOp{e: e, cj: cj, buildLeft: buildLeft, left: left, right: right}
		j.opBase = opBase{
			info: OpNode{
				Op:        "hash-join",
				On:        cj.On,
				BuildSide: side,
				Filter:    cj.ResidualStr,
				EstRows:   est,
				EstCost:   cost + estL + estR,
			},
			stats:    newStats(analyze),
			children: []Operator{left, right},
		}
		op = j
	case query.JoinNeighbors:
		// Expected pairs under uniform density: n·m × the cap fraction of
		// the sphere a pair radius subtends.
		capFrac := (1 - math.Cos(cj.Radius)) / 2
		est := estL * estR * capFrac
		j := &neighborJoinOp{e: e, cj: cj, left: left, right: right}
		j.opBase = opBase{
			info: OpNode{
				Op:           "neighbor-join",
				On:           cj.On,
				RadiusArcmin: cj.Radius / sphere.Arcmin,
				Filter:       cj.ResidualStr,
				EstRows:      est,
				EstCost:      cost + estL + estR,
			},
			stats:    newStats(analyze),
			children: []Operator{left, right},
		}
		op = j
	}

	est := op.describe().EstRows
	switch {
	case cj.Agg != query.AggNone:
		op = e.newAggOp(cj.Agg, op, est, analyze)
	case cj.OrderRef >= 0:
		orderBy := ""
		if cj.Source != nil {
			orderBy = cj.Source.OrderBy
		}
		op = e.newSortOp(cj.OrderRef, orderBy, cj.Desc, op, est, est, analyze)
		if cj.Limit > 0 {
			op = e.newLimitOp(cj.Limit, op, est, est, analyze)
		}
	case cj.Limit > 0:
		op = e.newLimitOp(cj.Limit, op, est, est, analyze)
	}
	return op, nil
}

// pairEmitter assembles joined output rows into pooled batches: the shared
// tail of both join operators. Not safe for concurrent use; each join runs
// one emitting goroutine.
type pairEmitter struct {
	e     *Engine
	cj    *query.CompiledJoin
	rows  *Rows
	out   chan Batch
	batch Batch
	vals  []float64
	// lv/rv hold the current candidate pair for the residual getter.
	lv, rv []float64
	getter query.Getter
}

func newPairEmitter(e *Engine, cj *query.CompiledJoin, rows *Rows, out chan Batch) *pairEmitter {
	p := &pairEmitter{e: e, cj: cj, rows: rows, out: out}
	p.batch = getBatch(e.batchSize())
	if w := len(cj.Out); w > 0 {
		p.vals = make([]float64, 0, e.batchSize()*w)
	}
	p.getter = func(id query.AttrID) float64 {
		side, attr := query.DecodeSideAttr(id)
		if side == 1 {
			return p.rv[p.cj.RightAttrIdx[attr]]
		}
		return p.lv[p.cj.LeftAttrIdx[attr]]
	}
	return p
}

// emit appends one (left, right) pair if it passes the residual predicates
// (the exact-ID comparison first — 64-bit identifiers round through the
// float path — then the compiled expression), flushing full batches. It
// reports false when the context fired.
func (p *pairEmitter) emit(ctx context.Context, left, right *Result) bool {
	if p.cj.IDPred != nil && !p.cj.IDPred(uint64(left.ObjID), uint64(right.ObjID)) {
		return true
	}
	p.lv, p.rv = left.Values, right.Values
	if p.cj.Residual != nil && !p.cj.Residual(p.getter) {
		return true
	}
	res := Result{ObjID: left.ObjID}
	if w := len(p.cj.Out); w > 0 {
		start := len(p.vals)
		for _, ref := range p.cj.Out {
			if ref.Side == 1 {
				p.vals = append(p.vals, right.Values[ref.Idx])
			} else {
				p.vals = append(p.vals, left.Values[ref.Idx])
			}
		}
		res.Values = p.vals[start:len(p.vals):len(p.vals)]
	}
	p.batch = append(p.batch, res)
	if len(p.batch) >= p.e.batchSize() {
		return p.flush(ctx)
	}
	return true
}

func (p *pairEmitter) flush(ctx context.Context) bool {
	if len(p.batch) == 0 {
		return true
	}
	select {
	case p.out <- p.batch:
	case <-ctx.Done():
		p.rows.interrupted.Store(true)
		RecycleBatch(p.batch)
		p.batch = nil
		return false
	}
	p.batch = getBatch(p.e.batchSize())
	if w := len(p.cj.Out); w > 0 {
		p.vals = make([]float64, 0, p.e.batchSize()*w)
	}
	return true
}

// close recycles whatever buffer the emitter still owns.
func (p *pairEmitter) close() { RecycleBatch(p.batch) }

// drainCollect drains a stream into a slice, copying Result structs out and
// recycling the batch buffers (Values arrays stay valid — they are never
// pooled). It reports false when the context fired mid-drain.
func drainCollect(ctx context.Context, in <-chan Batch, rows *Rows) ([]Result, bool) {
	var all []Result
	for b := range in {
		all = append(all, b...)
		RecycleBatch(b)
	}
	if ctx.Err() != nil {
		rows.interrupted.Store(true)
		return all, false
	}
	return all, true
}

// hashJoinOp executes the equi-join.
type hashJoinOp struct {
	opBase
	e           *Engine
	cj          *query.CompiledJoin
	buildLeft   bool
	left, right Operator
}

// floatKey normalizes a float64 join key for hashing: NaN keys are
// unusable (ok=false — NaN matches nothing under SQL equality) and -0
// folds onto +0 so the hash agrees with ==.
func floatKey(v float64) (uint64, bool) {
	if math.IsNaN(v) {
		return 0, false
	}
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v), true
}

func (o *hashJoinOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		cj := o.cj
		buildOp, probeOp := o.right, o.left
		buildKey, probeKey := cj.RightKey, cj.LeftKey
		if o.buildLeft {
			buildOp, probeOp = o.left, o.right
			buildKey, probeKey = cj.LeftKey, cj.RightKey
		}

		// Open both sides up front — the probe side's scan workers fill
		// their channel buffers while the build side drains — then block
		// on the build child, exactly like the paper's sort and
		// intersection nodes block on theirs.
		probe := probeOp.open(ctx, rows)
		built, ok := drainCollect(ctx, buildOp.open(ctx, rows), rows)
		if !ok {
			for b := range probe {
				RecycleBatch(b)
			}
			return
		}
		ht := make(map[uint64][]int32, len(built))
		for i := range built {
			var key uint64
			if cj.KeyObjID {
				key = uint64(built[i].ObjID)
			} else {
				k, usable := floatKey(built[i].Values[buildKey])
				if !usable {
					continue // NaN keys are dropped, never matched
				}
				key = k
			}
			ht[key] = append(ht[key], int32(i))
		}

		// Probe phase: stream the probe side through the table.
		em := newPairEmitter(o.e, cj, rows, out)
		defer em.close()
		for b := range probe {
			for i := range b {
				var key uint64
				if cj.KeyObjID {
					key = uint64(b[i].ObjID)
				} else {
					k, usable := floatKey(b[i].Values[probeKey])
					if !usable {
						continue
					}
					key = k
				}
				matches := ht[key]
				if len(matches) == 0 {
					continue
				}
				for _, m := range matches {
					l, r := &b[i], &built[m]
					if o.buildLeft {
						l, r = &built[m], &b[i]
					}
					if !em.emit(ctx, l, r) {
						RecycleBatch(b)
						for rest := range probe {
							RecycleBatch(rest)
						}
						return
					}
				}
			}
			RecycleBatch(b)
		}
		em.flush(ctx)
	}()
	return o.instrument(out)
}

// neighborJoinOp executes the spatial join on hashm's bucket scheme.
type neighborJoinOp struct {
	opBase
	e           *Engine
	cj          *query.CompiledJoin
	left, right Operator
}

// items converts drained results into hash-machine items, reading the
// Cartesian position from the side's projected columns. Rows without a
// finite position (a spectrum whose trixel failed to resolve) are skipped —
// they have no location to join on.
func joinItems(res []Result, pos [3]int) []hashm.Item {
	items := make([]hashm.Item, 0, len(res))
	for i := range res {
		v := sphere.Vec3{
			X: res[i].Values[pos[0]],
			Y: res[i].Values[pos[1]],
			Z: res[i].Values[pos[2]],
		}
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) {
			continue
		}
		items = append(items, hashm.Item{ID: catalog.ObjID(res[i].ObjID), Pos: v, Row: int32(i)})
	}
	return items
}

func (o *neighborJoinOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		cj := o.cj
		// Both sides drain before the bucket phase — the neighbor join is
		// a blocking node — but they drain concurrently, so the wall time
		// is the slower scan, not the sum.
		leftCh := o.left.open(ctx, rows)
		rightCh := o.right.open(ctx, rows)
		var rightRes []Result
		var okR bool
		rightDone := make(chan struct{})
		go func() {
			defer close(rightDone)
			rightRes, okR = drainCollect(ctx, rightCh, rows)
		}()
		leftRes, okL := drainCollect(ctx, leftCh, rows)
		<-rightDone
		if !okL || !okR {
			return
		}
		pairs, err := hashm.JoinItems(
			joinItems(leftRes, cj.LeftPos),
			joinItems(rightRes, cj.RightPos),
			cj.Radius, o.e.workers())
		if err != nil {
			rows.setErr(err)
			return
		}
		em := newPairEmitter(o.e, cj, rows, out)
		defer em.close()
		for _, p := range pairs {
			if ctx.Err() != nil {
				rows.interrupted.Store(true)
				return
			}
			if !em.emit(ctx, &leftRes[p.Left], &rightRes[p.Right]) {
				return
			}
		}
		em.flush(ctx)
	}()
	return o.instrument(out)
}
