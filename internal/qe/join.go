// The two join operators of the physical plan:
//
//   - hashJoinOp executes ON a.col = b.col as a classic hash join: the
//     build side (chosen by the optimizer as the smaller estimated input)
//     is drained into a hash table, then the probe side streams through it.
//     ON objid = objid joins key on the exact 64-bit object identifiers;
//     general numeric keys hash their float64 values, with NaN keys dropped
//     from both sides (NaN equals nothing, so they can never match).
//
//   - neighborJoinOp executes FROM NEIGHBORS(a, b, radius) as an
//     HTM-partitioned spatial hash join (package hashm): the build side
//     (smaller estimate) hashes into coarse trixel partitions with exact
//     margin replication, per shard stream and in parallel; the probe side
//     then streams through the index shard by shard, pairs flowing out as
//     probe batches arrive — "the spatial analogue of a relational
//     hash-join", exactly as the paper frames it, without materializing the
//     probe input.
//
// Both operators consume leaf scans that are already shard-aware: each side
// scatters across its store's slices under the query-wide token pool; the
// joins tap the per-shard streams directly so build and probe parallelism
// follows the sharding.
package qe

import (
	"context"
	"math"
	"sync"

	"sdss/internal/catalog"
	"sdss/internal/hashm"
	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/sphere"
	"sdss/internal/store"
)

// partitionTargetRows is the build-side rows-per-partition level past which
// the cost model subdivides neighbor-join partitions below the container
// depth: the per-probe band scan is linear in partition density, so dense
// partitions are worth the extra margin replication of a finer grid.
const partitionTargetRows = 2048

// planJoin plans a two-table leaf: both side scans (each with its own
// cost-based access path), the join operator with its build side chosen by
// estimated cardinality, and the statement's aggregate / sort / limit
// wrappers.
func (e *Engine) planJoin(cj *query.CompiledJoin, analyze bool) (Operator, error) {
	left, err := e.planLeaf(cj.Left, analyze)
	if err != nil {
		return nil, err
	}
	right, err := e.planLeaf(cj.Right, analyze)
	if err != nil {
		return nil, err
	}
	estL, estR := left.info.EstRows, right.info.EstRows
	cost := left.info.EstCost + right.info.EstCost

	var op Operator
	switch cj.Kind {
	case query.JoinInner:
		// Build on the smaller estimated input, probe with the larger.
		//lint:skylint-ignore nansafe cost estimates, not attribute values; either build side is correct
		buildLeft := estL <= estR
		side := "right"
		if buildLeft {
			side = "left"
		}
		est := math.Min(estL, estR)
		j := &hashJoinOp{e: e, cj: cj, buildLeft: buildLeft, left: left, right: right}
		j.opBase = opBase{
			info: OpNode{
				Op:        "hash-join",
				On:        cj.On,
				BuildSide: side,
				Filter:    cj.ResidualStr,
				EstRows:   est,
				EstCost:   cost + estL + estR,
			},
			stats:    newStats(analyze),
			children: []Operator{left, right},
		}
		op = j
	case query.JoinNeighbors:
		// Build the spatial index on the smaller estimated input, stream
		// the larger through it.
		//lint:skylint-ignore nansafe cost estimates, not attribute values; either build side is correct
		buildLeft := estL <= estR
		side := "right"
		buildScan := right
		if buildLeft {
			side = "left"
			buildScan = left
		}
		depth := e.partitionDepth(cj.Radius, buildScan, math.Min(estL, estR))
		est := e.neighborEstRows(cj, left, right)
		j := &neighborJoinOp{e: e, cj: cj, buildLeft: buildLeft, depth: depth, left: left, right: right}
		j.opBase = opBase{
			info: OpNode{
				Op:             "neighbor-join",
				On:             cj.On,
				RadiusArcmin:   cj.Radius / sphere.Arcmin,
				BuildSide:      side,
				PartitionDepth: depth,
				Filter:         cj.ResidualStr,
				EstRows:        est,
				EstCost:        cost + estL + estR + est,
			},
			stats:    newStats(analyze),
			children: []Operator{left, right},
		}
		op = j
	}

	est := op.describe().EstRows
	switch {
	case cj.Agg != query.AggNone:
		op = e.newAggOp(cj.Agg, op, est, analyze)
	case cj.OrderRef >= 0:
		orderBy := ""
		if cj.Source != nil {
			orderBy = cj.Source.OrderBy
		}
		op = e.newSortOp(cj.OrderRef, orderBy, cj.Desc, op, est, est, analyze)
		if cj.Limit > 0 {
			op = e.newLimitOp(cj.Limit, op, est, est, analyze)
		}
	case cj.Limit > 0:
		op = e.newLimitOp(cj.Limit, op, est, est, analyze)
	}
	return op, nil
}

// partitionDepth chooses the neighbor join's partition depth: the store's
// container depth (hashm coarsens it for wide radii so margin replication
// stays a boundary effect), then subdivided while the build side would
// average more than partitionTargetRows rows per partition and the finer
// trixels still comfortably exceed the radius — the cost trade between band
// scans (linear in partition density) and margin replication.
func (e *Engine) partitionDepth(radius float64, buildScan *scanOp, buildEst float64) int {
	cd := buildScan.st.ContainerDepth()
	depth := hashm.PartitionDepth(cd, radius)
	nCont := 0
	for _, cids := range buildScan.shardContainers {
		nCont += len(cids)
	}
	//lint:skylint-ignore nansafe geometric depth heuristic; radius is validated finite and TrixelAngle is a positive constant per depth
	for depth < cd+3 && htm.TrixelAngle(depth+1) >= 4*radius {
		parts := float64(nCont) * math.Pow(4, float64(depth-cd))
		if !(parts > 0 && buildEst/parts > partitionTargetRows) {
			break
		}
		depth++
	}
	return depth
}

// neighborEstRows estimates the neighbor join's output cardinality from
// pair density over the covered area. For every container both sides keep,
// the store's fine occupancy histograms (PairStats, Σ k² over cells no
// smaller than the pair diameter) give the clustering-aware pair mass:
//
//	pairs ≈ √(Σk²_L · Σk²_R) · selL · selR · capArea / cellArea
//
// with capArea = 2π(1−cos r) the spherical cap a radius subtends and
// selL/selR the sides' per-container predicate selectivities. A same-table
// join subtracts the identity pairs (each shared object pairs with itself
// at distance zero) before scaling, since the executor excludes them. When
// histograms are unavailable (NoZone, absent containers) the contribution
// falls back to uniform scatter within the container — still footprint-
// aware, never a hard-coded constant. The exact-ID residual selectivity
// (WHERE a.objid < b.objid keeps one orientation per pair) scales the total.
func (e *Engine) neighborEstRows(cj *query.CompiledJoin, left, right *scanOp) float64 {
	radius := cj.Radius
	capArea := 2 * math.Pi * (1 - math.Cos(radius))
	cd := left.st.ContainerDepth()
	sameTable := cj.Left.Table == cj.Right.Table

	// Relative histogram depth: the deepest recorded level whose cells are
	// still at least a pair diameter across — finer cells would clip real
	// pairs out of the density estimate.
	rel := 0
	//lint:skylint-ignore nansafe histogram-depth heuristic; radius is validated finite and TrixelAngle is a positive constant per depth
	for rel < store.PairRelDepth && htm.TrixelAngle(cd+rel+1) >= 2*radius {
		rel++
	}

	type contEst struct{ est, cnt float64 }
	rightByCid := make(map[htm.ID]contEst)
	for i, cids := range right.shardContainers {
		for k, cid := range cids {
			rightByCid[cid] = contEst{right.shardContEst[i][k], right.shardContCnt[i][k]}
		}
	}

	var est float64
	depthsMatch := right.st.ContainerDepth() == cd
	for i, cids := range left.shardContainers {
		for k, cid := range cids {
			rc, ok := rightByCid[cid]
			if !ok {
				continue
			}
			le, lc := left.shardContEst[i][k], left.shardContCnt[i][k]
			if lc <= 0 || rc.cnt <= 0 {
				continue
			}
			if !e.NoZone && depthsMatch {
				nL, qL, okL := left.st.PairStats(cid, rel)
				nR, qR, okR := right.st.PairStats(cid, rel)
				if okL && okR && nL > 0 && nR > 0 {
					crossQ := math.Sqrt(qL * qR)
					if sameTable {
						crossQ -= math.Min(float64(nL), float64(nR))
					}
					if crossQ > 0 {
						est += crossQ * (le / lc) * (rc.est / rc.cnt) * capArea / htm.TrixelArea(cd+rel)
					}
					continue
				}
			}
			est += le * rc.est * capArea / htm.TrixelArea(cd)
		}
	}
	return est * cj.IDPredSel
}

// pairEmitter assembles joined output rows into pooled batches: the shared
// tail of both join operators. Not safe for concurrent use; each join runs
// one emitting goroutine.
type pairEmitter struct {
	e     *Engine
	cj    *query.CompiledJoin
	rows  *Rows
	out   chan Batch
	batch Batch
	vals  []float64
	// lv/rv hold the current candidate pair for the residual getter.
	lv, rv []float64
	getter query.Getter
}

func newPairEmitter(e *Engine, cj *query.CompiledJoin, rows *Rows, out chan Batch) *pairEmitter {
	p := &pairEmitter{e: e, cj: cj, rows: rows, out: out}
	p.batch = getBatch(e.batchSize())
	if w := len(cj.Out); w > 0 {
		p.vals = make([]float64, 0, e.batchSize()*w)
	}
	p.getter = func(id query.AttrID) float64 {
		side, attr := query.DecodeSideAttr(id)
		if side == 1 {
			return p.rv[p.cj.RightAttrIdx[attr]]
		}
		return p.lv[p.cj.LeftAttrIdx[attr]]
	}
	return p
}

// emit appends one (left, right) pair if it passes the residual predicates
// (the exact-ID comparison first — 64-bit identifiers round through the
// float path — then the compiled expression), flushing full batches. It
// reports false when the context fired.
func (p *pairEmitter) emit(ctx context.Context, left, right *Result) bool {
	if p.cj.IDPred != nil && !p.cj.IDPred(uint64(left.ObjID), uint64(right.ObjID)) {
		return true
	}
	p.lv, p.rv = left.Values, right.Values
	if p.cj.Residual != nil && !p.cj.Residual(p.getter) {
		return true
	}
	res := Result{ObjID: left.ObjID}
	if w := len(p.cj.Out); w > 0 {
		start := len(p.vals)
		for _, ref := range p.cj.Out {
			if ref.Side == 1 {
				p.vals = append(p.vals, right.Values[ref.Idx])
			} else {
				p.vals = append(p.vals, left.Values[ref.Idx])
			}
		}
		res.Values = p.vals[start:len(p.vals):len(p.vals)]
	}
	p.batch = append(p.batch, res)
	if len(p.batch) >= p.e.batchSize() {
		return p.flush(ctx)
	}
	return true
}

func (p *pairEmitter) flush(ctx context.Context) bool {
	if len(p.batch) == 0 {
		return true
	}
	select {
	case p.out <- p.batch:
	case <-ctx.Done():
		p.rows.interrupted.Store(true)
		RecycleBatch(p.batch)
		p.batch = nil
		return false
	}
	p.batch = getBatch(p.e.batchSize())
	if w := len(p.cj.Out); w > 0 {
		p.vals = make([]float64, 0, p.e.batchSize()*w)
	}
	return true
}

// close recycles whatever buffer the emitter still owns.
func (p *pairEmitter) close() { RecycleBatch(p.batch) }

// drainCollect drains a stream into a slice, copying Result structs out and
// recycling the batch buffers (Values arrays stay valid — they are never
// pooled). It reports false when the context fired mid-drain.
func drainCollect(ctx context.Context, in <-chan Batch, rows *Rows) ([]Result, bool) {
	var all []Result
	for b := range in {
		all = append(all, b...)
		RecycleBatch(b)
	}
	if ctx.Err() != nil {
		rows.interrupted.Store(true)
		return all, false
	}
	return all, true
}

// hashJoinOp executes the equi-join.
type hashJoinOp struct {
	opBase
	e           *Engine
	cj          *query.CompiledJoin
	buildLeft   bool
	left, right Operator
}

// floatKey normalizes a float64 join key for hashing: NaN keys are
// unusable (ok=false — NaN matches nothing under SQL equality) and -0
// folds onto +0 so the hash agrees with ==.
func floatKey(v float64) (uint64, bool) {
	if math.IsNaN(v) {
		return 0, false
	}
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v), true
}

// parallelBuildRows is the build-side row count below which the hash table
// builds single-threaded: partitioning smaller inputs costs more than the
// parallel map builds recover.
const parallelBuildRows = 8192

// mix64 is the splitmix64 finalizer: the partition selector over join
// keys, so partitions stay balanced even for sequential object IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashTable is the hash join's build result: build-row indices keyed by
// join key, split into hash partitions built in parallel on the pool.
type hashTable struct {
	mask  uint64
	parts []map[uint64][]int32
}

func (t *hashTable) lookup(key uint64) []int32 {
	return t.parts[mix64(key)&t.mask][key]
}

// buildHashTable builds the join table from the drained build side. Large
// inputs are partitioned by mixed key hash in one sequential pass, then
// each partition's map builds as a pool unit; the per-key match lists keep
// ascending build-row order either way, so probe output is identical to
// the single-map build. NaN keys are dropped (never matched).
func (e *Engine) buildHashTable(ctx context.Context, built []Result, key func(int) (uint64, bool)) *hashTable {
	nparts := 1
	if len(built) >= parallelBuildRows {
		for w := min(e.getPool().size, 16); nparts < w; {
			nparts <<= 1
		}
	}
	t := &hashTable{mask: uint64(nparts - 1), parts: make([]map[uint64][]int32, nparts)}
	if nparts == 1 {
		m := make(map[uint64][]int32, len(built))
		for i := range built {
			k, usable := key(i)
			if !usable {
				continue
			}
			m[k] = append(m[k], int32(i))
		}
		t.parts[0] = m
		return t
	}
	keys := make([]uint64, len(built))
	lists := make([][]int32, nparts)
	for i := range built {
		k, usable := key(i)
		if !usable {
			continue
		}
		keys[i] = k
		p := mix64(k) & t.mask
		lists[p] = append(lists[p], int32(i))
	}
	e.runParallel(ctx, nparts, func(p int) {
		m := make(map[uint64][]int32, len(lists[p]))
		for _, i := range lists[p] {
			m[keys[i]] = append(m[keys[i]], i)
		}
		t.parts[p] = m
	})
	return t
}

func (o *hashJoinOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		cj := o.cj
		buildOp, probeOp := o.right, o.left
		buildKey, probeKey := cj.RightKey, cj.LeftKey
		if o.buildLeft {
			buildOp, probeOp = o.left, o.right
			buildKey, probeKey = cj.LeftKey, cj.RightKey
		}

		// Drain the build child first — the node blocks on it exactly like
		// the paper's sort and intersection nodes block on theirs. The
		// probe side stays unopened until the table exists: its morsels
		// would otherwise hold shared-pool workers blocked on a stream
		// nothing consumes yet.
		built, ok := drainCollect(ctx, buildOp.open(ctx, rows), rows)
		if !ok {
			return
		}
		buildKeyOf := func(i int) (uint64, bool) {
			if cj.KeyObjID {
				return uint64(built[i].ObjID), true
			}
			return floatKey(built[i].Values[buildKey])
		}
		ht := o.e.buildHashTable(ctx, built, buildKeyOf)
		if ctx.Err() != nil {
			rows.interrupted.Store(true)
			return
		}
		if o.stats != nil {
			o.stats.workers.Store(int64(len(ht.parts)))
		}

		// Probe phase: stream the probe side through the table.
		probe := probeOp.open(ctx, rows)
		em := newPairEmitter(o.e, cj, rows, out)
		defer em.close()
		for b := range probe {
			for i := range b {
				var key uint64
				if cj.KeyObjID {
					key = uint64(b[i].ObjID)
				} else {
					k, usable := floatKey(b[i].Values[probeKey])
					if !usable {
						continue
					}
					key = k
				}
				matches := ht.lookup(key)
				if len(matches) == 0 {
					continue
				}
				for _, m := range matches {
					l, r := &b[i], &built[m]
					if o.buildLeft {
						l, r = &built[m], &b[i]
					}
					if !em.emit(ctx, l, r) {
						RecycleBatch(b)
						for rest := range probe {
							RecycleBatch(rest)
						}
						return
					}
				}
			}
			RecycleBatch(b)
		}
		em.flush(ctx)
	}()
	return o.instrument(out)
}

// neighborJoinOp executes the spatial join on hashm's partitioned index.
type neighborJoinOp struct {
	opBase
	e           *Engine
	cj          *query.CompiledJoin
	buildLeft   bool
	depth       int // partition depth, chosen by the cost model
	left, right Operator
}

// sideStreams taps an operator's per-shard streams when it is a leaf scan
// (build and probe parallelism then follows the sharding) and falls back to
// the single merged stream otherwise.
func sideStreams(ctx context.Context, op Operator, rows *Rows) []<-chan Batch {
	if sc, ok := op.(*scanOp); ok {
		return sc.openShards(ctx, rows)
	}
	return []<-chan Batch{op.open(ctx, rows)}
}

// drainRecycle empties streams, recycling every batch — the bail-out path
// once the join has decided to stop consuming.
func drainRecycle(chs ...<-chan Batch) {
	var wg sync.WaitGroup
	for _, ch := range chs {
		wg.Add(1)
		go func(ch <-chan Batch) {
			defer wg.Done()
			for b := range ch {
				RecycleBatch(b)
			}
		}(ch)
	}
	wg.Wait()
}

// sidePos reads one row's Cartesian position from a side's projected
// columns. Rows without a finite position (a spectrum whose trixel failed
// to resolve) report ok=false and are skipped — they have no location to
// join on.
func sidePos(res *Result, pos [3]int) (sphere.Vec3, bool) {
	v := sphere.Vec3{X: res.Values[pos[0]], Y: res.Values[pos[1]], Z: res.Values[pos[2]]}
	if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) {
		return v, false
	}
	return v, true
}

func (o *neighborJoinOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		cj := o.cj
		buildOp, probeOp := o.right, o.left
		buildPos, probePos := cj.RightPos, cj.LeftPos
		if o.buildLeft {
			buildOp, probeOp = o.left, o.right
			buildPos, probePos = cj.LeftPos, cj.RightPos
		}

		// Build first, per shard stream: each stream feeds its own local
		// index against shard-local row numbering, merged in shard order
		// below so the result is deterministic regardless of which stream
		// finishes first. The probe side stays unopened until the master
		// index exists — its morsels would otherwise hold shared-pool
		// workers blocked on streams nothing consumes yet.
		builds := sideStreams(ctx, buildOp, rows)
		type buildPart struct {
			idx *hashm.SpatialIndex
			res []Result
			err error
		}
		parts := make([]buildPart, len(builds))
		var bwg sync.WaitGroup
		for i, ch := range builds {
			bwg.Add(1)
			go func(i int, ch <-chan Batch) {
				defer bwg.Done()
				idx, err := hashm.NewSpatialIndex(cj.Radius, o.depth)
				if err != nil {
					parts[i].err = err
					drainRecycle(ch)
					return
				}
				var res []Result
				for b := range ch {
					for k := range b {
						v, ok := sidePos(&b[k], buildPos)
						if !ok {
							continue
						}
						it := hashm.Item{ID: catalog.ObjID(b[k].ObjID), Key: b[k].Key, Pos: v, Row: int32(len(res))}
						if err := idx.Insert(it); err != nil {
							parts[i].err = err
							RecycleBatch(b)
							drainRecycle(ch)
							return
						}
						res = append(res, b[k])
					}
					RecycleBatch(b)
				}
				parts[i].idx, parts[i].res = idx, res
			}(i, ch)
		}
		bwg.Wait()
		if ctx.Err() != nil {
			rows.interrupted.Store(true)
			return
		}
		for i := range parts {
			if parts[i].err != nil {
				rows.setErr(parts[i].err)
				return
			}
		}
		master, err := hashm.NewSpatialIndex(cj.Radius, o.depth)
		if err != nil {
			rows.setErr(err)
			return
		}
		var built []Result
		for i := range parts {
			master.MergeOffset(parts[i].idx, int32(len(built)))
			built = append(built, parts[i].res...)
		}
		master.Finish(o.e.workers())

		// Probe phase: each shard stream probes the index concurrently with
		// its own emitter, pairs flowing out as probe batches arrive — the
		// probe side is never materialized.
		probes := sideStreams(ctx, probeOp, rows)
		var pwg sync.WaitGroup
		for _, ch := range probes {
			pwg.Add(1)
			go func(ch <-chan Batch) {
				defer pwg.Done()
				em := newPairEmitter(o.e, cj, rows, out)
				defer em.close()
				for b := range ch {
					if ctx.Err() != nil {
						rows.interrupted.Store(true)
						RecycleBatch(b)
						drainRecycle(ch)
						return
					}
					for k := range b {
						v, ok := sidePos(&b[k], probePos)
						if !ok {
							continue
						}
						probeRow := &b[k]
						pit := hashm.Item{ID: catalog.ObjID(b[k].ObjID), Key: b[k].Key, Pos: v}
						cont, err := master.Probe(pit, func(it hashm.Item, _ float64) bool {
							l, r := &built[it.Row], probeRow
							if !o.buildLeft {
								l, r = probeRow, &built[it.Row]
							}
							return em.emit(ctx, l, r)
						})
						if err != nil {
							rows.setErr(err)
							RecycleBatch(b)
							drainRecycle(ch)
							return
						}
						if !cont {
							// The emitter stopped: the context fired and
							// rows.interrupted is already marked.
							RecycleBatch(b)
							drainRecycle(ch)
							return
						}
					}
					RecycleBatch(b)
				}
				em.flush(ctx)
			}(ch)
		}
		pwg.Wait()
	}()
	return o.instrument(out)
}
