// The physical planner — the optimizer layer of the logical/physical split.
// query.Prepared carries the logical plan (what to compute: compiled leaf
// predicates, pushed below joins, with their coverage regions and zone
// bounds); this file decides how to compute it:
//
//   - Access path per leaf, cost-based: HTM coverage pruning is taken only
//     when the candidate containers hold comfortably fewer records than the
//     table (the E14 index-versus-scan crossover — past that point the
//     per-record fine filter costs more than it saves); zone-map pruning
//     applies whenever the predicate yields attribute bounds; otherwise a
//     full scan.
//   - Cardinality estimates from store statistics: per-container record
//     counts and zone min/max spans (query.ZoneFilter, the flattened form
//     of the predicate's Bounds, batched over each shard's candidates via
//     store.ZoneStatsAll), with a partial-coverage discount for containers
//     the region only clips.
//   - Scan cost in bytes scanned: kernel scans charge encoded column-block
//     bytes (raw record bytes × the store's measured compression ratio),
//     row scans charge raw record bytes — so EXPLAIN's est_cost is
//     comparable to the bytes_decoded actual.
//   - Join sides by estimated cardinality: the hash join builds on the
//     smaller input and probes with the larger.
//
// The result is an Operator tree (op.go) mirroring the executable shape;
// Describe() serves it to EXPLAIN with estimates (and actuals after
// EXPLAIN ANALYZE).
package qe

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/store"
)

// indexCrossover is the fraction of the table's records above which
// coverage pruning stops paying: when the candidate containers hold more
// than this share of all records, the planner drops the HTM path and scans
// the containers without per-record trixel checks (measured in E14).
const indexCrossover = 0.6

// partialCoverFraction discounts the estimated rows of containers the
// coverage region only partially overlaps.
const partialCoverFraction = 0.3

// ExecPlan is a planned, executable statement: the physical operator tree
// plus its result schema.
type ExecPlan struct {
	root    Operator
	cols    []query.Column
	analyze bool
}

// Columns returns the plan's result schema.
func (p *ExecPlan) Columns() []query.Column { return p.cols }

// Analyzed reports whether the plan's operators carry live counters.
func (p *ExecPlan) Analyzed() bool { return p.analyze }

// Describe snapshots the physical plan tree. Called after the plan ran
// under ANALYZE, every node carries actual row counts and elapsed time
// alongside the estimates.
func (p *ExecPlan) Describe() *OpNode { return p.root.describe() }

// Text renders the physical plan as indented text, one operator per line.
func (p *ExecPlan) Text() string {
	var b strings.Builder
	renderOpNode(&b, p.Describe(), 0)
	return b.String()
}

// Plan compiles a prepared statement into its physical plan.
func (e *Engine) Plan(prep *query.Prepared) (*ExecPlan, error) {
	return e.PlanAnalyze(prep, false)
}

// PlanAnalyze compiles a prepared statement into its physical plan; with
// analyze set, every operator is instrumented to count rows and elapsed
// time as it runs (EXPLAIN ANALYZE).
func (e *Engine) PlanAnalyze(prep *query.Prepared, analyze bool) (*ExecPlan, error) {
	root, err := e.planNode(prep, analyze)
	if err != nil {
		return nil, err
	}
	return &ExecPlan{root: root, cols: prep.Columns(), analyze: analyze}, nil
}

func newStats(analyze bool) *opStats {
	if !analyze {
		return nil
	}
	return &opStats{}
}

// planNode plans one QET node.
func (e *Engine) planNode(prep *query.Prepared, analyze bool) (Operator, error) {
	switch {
	case prep.Select != nil:
		return e.planSelect(prep.Select, analyze)
	case prep.Join != nil:
		return e.planJoin(prep.Join, analyze)
	default:
		left, err := e.planNode(prep.Left, analyze)
		if err != nil {
			return nil, err
		}
		right, err := e.planNode(prep.Right, analyze)
		if err != nil {
			return nil, err
		}
		op := &setOp{e: e, op: prep.Op, left: left, right: right}
		op.opBase = opBase{
			info: OpNode{
				Op:      strings.ToLower(prep.Op.String()),
				EstRows: left.describe().EstRows + right.describe().EstRows,
				EstCost: left.describe().EstCost + right.describe().EstCost,
			},
			stats:    newStats(analyze),
			children: []Operator{left, right},
		}
		return op, nil
	}
}

// planSelect plans a single-table select: the leaf scan with its chosen
// access path, wrapped by aggregate / sort / limit operators as the
// statement requires.
func (e *Engine) planSelect(cs *query.CompiledSelect, analyze bool) (Operator, error) {
	leaf, err := e.planLeaf(cs, analyze)
	if err != nil {
		return nil, err
	}
	est := leaf.info.EstRows
	cost := leaf.info.EstCost
	var op Operator = leaf
	switch {
	case cs.Agg != query.AggNone:
		op = e.newAggOp(cs.Agg, op, cost, analyze)
	case cs.Order != query.AttrInvalid:
		op = e.newSortOp(len(cs.Cols), query.AttrName(cs.Table, cs.Order), cs.Desc, op, est, cost, analyze)
		if cs.Limit > 0 {
			op = e.newLimitOp(cs.Limit, op, est, cost, analyze)
		}
	case cs.Limit > 0:
		op = e.newLimitOp(cs.Limit, op, est, cost, analyze)
	}
	return op, nil
}

// planLeaf chooses the access path for one leaf scan and computes its
// estimates from store statistics.
func (e *Engine) planLeaf(cs *query.CompiledSelect, analyze bool) (*scanOp, error) {
	st, err := e.storeFor(cs.Table)
	if err != nil {
		return nil, err
	}
	shards := st.Shards()
	op := &scanOp{
		e: e, cs: cs, st: st,
		plan:            e.newScanPlan(cs, st),
		shardContainers: make([][]htm.ID, len(shards)),
		shardContEst:    make([][]float64, len(shards)),
		shardContCnt:    make([][]float64, len(shards)),
	}
	op.opBase = opBase{
		info: OpNode{
			Op:     "scan",
			Table:  cs.Table.String(),
			Shards: len(shards),
			Kernel: op.plan.kernel.name(),
		},
		stats: newStats(analyze),
	}
	if cs.Source != nil && cs.Source.Where != nil {
		op.info.Filter = cs.Source.Where.String()
	}

	// A provably false predicate answers empty without touching a single
	// container (NoZone keeps the scan honest as a full-scan baseline).
	if cs.Bounds != nil && cs.Bounds.Never && !e.NoZone {
		op.info.Access = "empty"
		return op, nil
	}

	cov, err := e.coverage(cs)
	if err != nil {
		return nil, err
	}
	var rangeSet *htm.RangeSet
	if cov != nil {
		rangeSet = cov.RangeSet()
	}

	totalRecords := float64(st.NumRecords())

	// Candidate containers per shard under coverage pruning (rs == nil
	// admits everything), and the records they hold — the cost of that
	// access path.
	collect := func(rs *htm.RangeSet) (cands [][]htm.ID, n int, records float64) {
		cands = make([][]htm.ID, len(shards))
		for i, sh := range shards {
			all := sh.Containers()
			cands[i] = make([]htm.ID, 0, len(all))
			for _, cid := range all {
				if rs != nil && !rs.OverlapsTrixel(cid) {
					continue
				}
				cands[i] = append(cands[i], cid)
				n++
			}
			// records only feeds the index-versus-scan crossover, which is
			// moot without coverage pruning — skip the stats pass then.
			if rs != nil {
				sh.ZoneStatsAll(cands[i], false, func(_, count int, _, _ []float64, _ []bool) {
					records += float64(count)
				})
			}
		}
		return cands, n, records
	}
	candidates, nCandidates, candRecords := collect(rangeSet)

	// Cost-based index-versus-scan crossover: when coverage admits most of
	// the table anyway, the per-record fine filter costs more than the
	// skipped containers save.
	//lint:skylint-ignore nansafe planner cost heuristic on record counts; either branch yields a correct plan
	if rangeSet != nil && candRecords >= indexCrossover*totalRecords {
		rangeSet = nil
		candidates, nCandidates, _ = collect(nil)
	}

	// Zone-map pruning over the surviving candidates, folding the
	// cardinality estimate from each admitted container's statistics.
	// Zones are only consulted when the predicate yields bounds — a pure
	// spatial or unfiltered query must not pay on-demand zone rebuilds on
	// a pre-zone archive just to be planned.
	zoneCheck := e.zoneAdmit(cs)
	var estRows, scanRecords float64
	pruned := 0
	for i, sh := range shards {
		cands := candidates[i]
		// kept shares cands's backing array: the callback arrives in order,
		// so position j is rewritten only after position j was consumed.
		kept := cands[:0]
		keptEst := make([]float64, 0, len(cands))
		keptCnt := make([]float64, 0, len(cands))
		sh.ZoneStatsAll(cands, zoneCheck != nil, func(ci, count int, min, max []float64, hasNaN []bool) {
			cid := cands[ci]
			frac := 1.0
			if rangeSet != nil && !coverageContains(rangeSet, cid) {
				frac = partialCoverFraction
			}
			if zoneCheck != nil && min != nil {
				// Fraction is 0 exactly when Admit would reject (fractionIn
				// floors admitted attributes at 0.01), so one interval walk
				// serves both the prune decision and the estimate.
				zf := zoneCheck.Fraction(min, max, hasNaN)
				if zf == 0 {
					pruned++
					return
				}
				frac *= zf
			}
			kept = append(kept, cid)
			keptEst = append(keptEst, float64(count)*frac)
			keptCnt = append(keptCnt, float64(count))
			estRows += float64(count) * frac
			scanRecords += float64(count)
		})
		op.shardContainers[i] = kept
		op.shardContEst[i] = keptEst
		op.shardContCnt[i] = keptCnt
	}

	op.rangeSet = rangeSet
	op.buildMorsels(e.morselRows())
	op.info.Containers = nCandidates
	op.info.ZonePruned = pruned
	op.info.EstRows = estRows
	// Cost is estimated in bytes scanned: the kernel path streams the
	// encoded bytes of just the columns it references (discounted by the
	// store's measured compression ratio), the row path the full record.
	if kp := op.plan.kernel; kp != nil {
		perRec := float64(kp.perRecBytes)
		if enc, raw := st.ColBlkBytes(); raw > 0 {
			perRec *= float64(enc) / float64(raw)
		}
		op.info.EstCost = scanRecords * perRec
	} else {
		op.info.EstCost = scanRecords * float64(query.RecordSize(cs.Table))
	}
	switch {
	case rangeSet != nil && zoneCheck != nil:
		op.info.Access = "htm-index+zone"
	case rangeSet != nil:
		op.info.Access = "htm-index"
	case zoneCheck != nil:
		op.info.Access = "zone-scan"
	default:
		op.info.Access = "full-scan"
	}
	return op, nil
}

// coverageContains reports whether the coverage fully contains a container
// trixel (a partially overlapped container contributes fewer rows).
func coverageContains(rs *htm.RangeSet, cid htm.ID) bool {
	lo, hi := cid.RangeAtDepth(rs.Depth())
	if lo == htm.Invalid {
		return false
	}
	for _, r := range rs.Ranges() {
		if r.Lo <= lo && hi <= r.Hi {
			return true
		}
		if r.Lo > lo {
			break
		}
	}
	return false
}

// scanOp is the leaf operator: a scatter-gather container scan across the
// table's shard slices, with the planner-chosen candidate containers and
// access path baked in.
type scanOp struct {
	opBase
	e  *Engine
	cs *query.CompiledSelect
	st *store.Sharded
	// plan is the shared per-query scan state (hidden columns, result
	// width, compiled kernel), hoisted to plan time so the scatter does not
	// recompute it per shard slice.
	plan            *scanPlan
	rangeSet        *htm.RangeSet
	shardContainers [][]htm.ID
	// shardContEst/shardContCnt parallel shardContainers: the estimated
	// output rows and raw record count of each kept container — the
	// per-container geometry the neighbor-join estimator integrates.
	shardContEst [][]float64
	shardContCnt [][]float64
	// morsels is the scan chunked into (shard, container-run) scheduler
	// units of ~morselRows records each, computed once at plan time.
	morsels []morsel
}

// buildMorsels chunks each shard's kept containers into runs of roughly
// target records, using the plan-time per-container record counts. Morsels
// never span shards, so per-shard streams stay exact.
func (o *scanOp) buildMorsels(target int) {
	for s, cids := range o.shardContainers {
		cnts := o.shardContCnt[s]
		start, acc := 0, 0
		for k := range cids {
			// Container record counts are whole numbers stored as float64;
			// integer accumulation keeps the comparison NaN-free.
			acc += int(cnts[k])
			if acc >= target {
				o.morsels = append(o.morsels, morsel{shard: s, cids: cids[start : k+1]})
				start, acc = k+1, 0
			}
		}
		if start < len(cids) {
			o.morsels = append(o.morsels, morsel{shard: s, cids: cids[start:]})
		}
	}
}

// closedBatch is the shared pre-closed stream empty scatter slices return:
// no goroutine, no per-query channel allocation.
var closedBatch = func() chan Batch {
	ch := make(chan Batch)
	close(ch)
	return ch
}()

// openShards dispatches the scan to the engine-wide morsel pool and
// returns per-shard streams (order-sensitive consumers like the k-way
// merge want them unmixed). Each shard's stream closes when its last
// morsel completes; slices the planner left no candidate containers on
// contribute a pre-closed stream without touching the scheduler.
func (o *scanOp) openShards(ctx context.Context, rows *Rows) []<-chan Batch {
	shards := o.st.Shards()
	perShard := make([]int, len(shards))
	for _, m := range o.morsels {
		perShard[m.shard]++
	}
	j := o.newJob(ctx, rows, scanPerShard)
	j.outs = make([]chan Batch, len(shards))
	j.shardLeft = make([]atomic.Int32, len(shards))
	outs := make([]<-chan Batch, len(shards))
	for i := range shards {
		if perShard[i] == 0 {
			outs[i] = o.instrument(closedBatch)
			continue
		}
		j.shardLeft[i].Store(int32(perShard[i]))
		j.outs[i] = make(chan Batch, 4)
		outs[i] = o.instrument(j.outs[i])
	}
	j.dispatch()
	return outs
}

// open gathers the whole scan through one bounded MPSC stream — the
// order-free ASAP path: every pool worker pushes into the same channel, no
// per-shard interleave stage.
func (o *scanOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	if len(o.morsels) == 0 {
		return o.instrument(closedBatch)
	}
	j := o.newJob(ctx, rows, scanStream)
	j.out = make(chan Batch, 2+2*o.e.getPool().size)
	j.dispatch()
	return o.instrument(j.out)
}

// openFold is the aggregate pushdown: the pool folds each container into
// an aggregate partial and combines them in container-ID order, so the
// result is bit-identical across worker and shard counts.
func (o *scanOp) openFold(ctx context.Context, rows *Rows, agg query.AggFunc) <-chan Batch {
	j := o.newJob(ctx, rows, scanFold)
	j.agg = agg
	j.out = make(chan Batch, 1)
	j.dispatch()
	return j.out
}

// setOp executes one set operation over its children's streams.
type setOp struct {
	opBase
	e           *Engine
	op          query.SetOp
	left, right Operator
}

// open starts the set operation. The deferred child (INTERSECT's right,
// MINUS's left) is opened lazily by the run stage once the drained child
// completed: an opened scan's morsels queue on the shared pool
// immediately, and units blocked emitting into an unconsumed stream would
// occupy the workers the draining side needs.
func (o *setOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	var out <-chan Batch
	switch o.op {
	case query.OpUnion:
		out = o.e.runUnion(ctx, o.left.open(ctx, rows), o.right.open(ctx, rows), rows)
	case query.OpIntersect:
		out = o.e.runIntersect(ctx, o.left.open(ctx, rows), func() <-chan Batch { return o.right.open(ctx, rows) }, rows)
	case query.OpMinus:
		out = o.e.runMinus(ctx, func() <-chan Batch { return o.left.open(ctx, rows) }, o.right.open(ctx, rows), rows)
	default:
		ch := make(chan Batch)
		close(ch)
		rows.setErr(fmt.Errorf("qe: unknown set operation %v", o.op))
		out = ch
	}
	return o.instrument(out)
}

// sortOp is the distributed ORDER BY: per-input sort, then an ordered
// k-way merge. Over a scan it sorts each shard stream independently; over
// anything else (a join) it sorts the single input stream.
type sortOp struct {
	opBase
	e      *Engine
	keyIdx int
	desc   bool
	in     Operator
}

func (e *Engine) newSortOp(keyIdx int, orderBy string, desc bool, in Operator, est, cost float64, analyze bool) *sortOp {
	op := &sortOp{e: e, keyIdx: keyIdx, desc: desc, in: in}
	op.opBase = opBase{
		info:     OpNode{Op: "sort", OrderBy: orderBy, Desc: desc, EstRows: est, EstCost: cost},
		stats:    newStats(analyze),
		children: []Operator{in},
	}
	return op
}

func (o *sortOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	var ins []<-chan Batch
	if sc, ok := o.in.(*scanOp); ok {
		ins = sc.openShards(ctx, rows)
	} else {
		ins = []<-chan Batch{o.in.open(ctx, rows)}
	}
	sorted := make([]<-chan Batch, len(ins))
	for i, in := range ins {
		sorted[i] = o.e.runSortShard(ctx, o.keyIdx, o.desc, in, rows)
	}
	return o.instrument(o.e.runMergeOrdered(ctx, o.keyIdx, o.desc, sorted, rows))
}

// aggOp combines per-container partial aggregates (over a scan, pushed
// onto the morsel pool) or folds a single stream (over a join) into the
// one-row result.
type aggOp struct {
	opBase
	e   *Engine
	agg query.AggFunc
	in  Operator
}

func (e *Engine) newAggOp(agg query.AggFunc, in Operator, cost float64, analyze bool) *aggOp {
	op := &aggOp{e: e, agg: agg, in: in}
	op.opBase = opBase{
		info:     OpNode{Op: "aggregate", Agg: agg.String(), EstRows: 1, EstCost: cost},
		stats:    newStats(analyze),
		children: []Operator{in},
	}
	return op
}

func (o *aggOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	if sc, ok := o.in.(*scanOp); ok {
		// Aggregate pushdown: the pool folds per container and combines in
		// container order — no per-shard streams to gather at all.
		return o.instrument(sc.openFold(ctx, rows, o.agg))
	}
	return o.instrument(o.e.runAggregate(ctx, o.agg, o.in.open(ctx, rows), rows))
}

// limitOp caps the stream at n rows.
type limitOp struct {
	opBase
	e  *Engine
	n  int
	in Operator
}

func (e *Engine) newLimitOp(n int, in Operator, est, cost float64, analyze bool) *limitOp {
	//lint:skylint-ignore nansafe row-count estimate clamp; a NaN estimate stays NaN and only affects costing
	if est > float64(n) {
		est = float64(n)
	}
	op := &limitOp{e: e, n: n, in: in}
	op.opBase = opBase{
		info:     OpNode{Op: "limit", Limit: n, EstRows: est, EstCost: cost},
		stats:    newStats(analyze),
		children: []Operator{in},
	}
	return op
}

func (o *limitOp) open(ctx context.Context, rows *Rows) <-chan Batch {
	return o.instrument(o.e.runLimit(ctx, o.n, o.in.open(ctx, rows), rows))
}
