// Package qe is the multi-threaded query engine of the Science Archive.
//
// Each query is parsed into a Query Execution Tree (package query); this
// package executes it: "Each node of the QET is either a query or a
// set-operation node, and returns a bag of object-pointers upon execution.
// The multi-threaded Query Engine executes in parallel at all the nodes at a
// given level of the QET. Results from child nodes are passed up the tree as
// soon as they are generated" — the ASAP data push that puts first results
// in front of the astronomer almost immediately. Aggregation, sort,
// intersection and difference nodes block on (at least) one child, exactly
// as the paper prescribes.
//
// Query (scan) nodes prune I/O with the HTM index: the WHERE clause's
// half-space region is covered (package region) and only containers
// overlapping the coverage are read; within candidate containers the exact
// compiled predicate — including the per-object Cartesian geometry test —
// decides membership.
package qe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/region"
	"sdss/internal/store"
)

// Result is one element of a bag: the object pointer and, for leaf query
// nodes, the projected attribute values.
type Result struct {
	ObjID catalog.ObjID
	// Key is the record's embedded fine HTM trixel when the result came off
	// a leaf scan (zero otherwise): the spatial join derives its partition
	// from it with a bit shift instead of a root-to-leaf sphere walk.
	Key    htm.ID
	Values []float64
}

// Batch groups results to amortize channel traffic.
type Batch []Result

// DefaultCoverDepth is the HTM depth query regions are covered to. Depth 10
// trixels are ~3 arcmin across: fine enough that candidate sets are tight,
// coarse enough that coverage stays small.
const DefaultCoverDepth = 10

// Engine executes prepared statements against the archive's stores: the
// physical planner (plan.go) compiles each statement into an operator tree
// with cost-chosen access paths, and ExecutePlan runs it. Each store may be
// split into shard slices (store.Sharded); leaf scans are chunked into
// (shard, container-run) morsels executed by an engine-wide work-stealing
// pool (morsel.go) and gathered shard-aware: ordered k-way merge under
// ORDER BY, per-container partial-aggregate combine for aggregates, one
// shared MPSC stream otherwise.
type Engine struct {
	Photo *store.Sharded // PhotoObj records
	Tag   *store.Sharded // Tag records (may be nil if no tag partition)
	Spec  *store.Sharded // SpecObj records (may be nil)

	// CoverDepth is the HTM coverage depth for spatial pruning.
	CoverDepth int
	// Workers sizes the engine-wide morsel pool: at most this many scan
	// morsels run at once across every concurrent query (default
	// GOMAXPROCS). Read at the pool's first dispatch.
	Workers int
	// MorselRows is the target record count per scheduler morsel (default
	// 4096). Smaller morsels steal and rebalance more aggressively at
	// higher dispatch overhead.
	MorselRows int
	// BatchSize is the number of results per batch.
	BatchSize int
	// Blocking disables the ASAP push: every node drains its children
	// completely before emitting. It exists for experiment E13 and should
	// stay false in production use.
	Blocking bool
	// NoIndex disables HTM coverage pruning, forcing full-table scans.
	// It exists for the index-versus-scan crossover experiment (E14).
	NoIndex bool
	// NoZone disables zone-map container pruning, so scans visit every
	// coverage candidate regardless of predicate bounds. It exists for the
	// zone-map experiment (E16) and as an escape hatch.
	NoZone bool
	// NoKernel disables the vectorized filter kernels over compressed
	// column blocks, forcing every scan onto the legacy row loop. It exists
	// for the kernel experiment (E19) and as an escape hatch mirroring
	// NoZone.
	NoKernel bool
	// FullDecode replaces the selective offset-based attribute reads with
	// the legacy full-struct decode of every record. It exists as the
	// measured baseline of experiment E16.
	FullDecode bool

	// The engine-wide morsel scheduler (morsel.go), created on first
	// dispatch and shared by every query on this engine.
	poolOnce sync.Once
	pl       *pool
}

// Clone returns a new engine over the same stores with the same
// configuration but its own (lazily created) morsel pool. Engines embed
// scheduler synchronization state and must not be copied by value; clone
// one to vary a knob (NoKernel, Workers, ...) for an A/B measurement.
func (e *Engine) Clone() *Engine {
	return &Engine{
		Photo: e.Photo, Tag: e.Tag, Spec: e.Spec,
		CoverDepth: e.CoverDepth, Workers: e.Workers, MorselRows: e.MorselRows,
		BatchSize: e.BatchSize, Blocking: e.Blocking, NoIndex: e.NoIndex,
		NoZone: e.NoZone, NoKernel: e.NoKernel, FullDecode: e.FullDecode,
	}
}

func (e *Engine) coverDepth() int {
	if e.CoverDepth > 0 {
		return e.CoverDepth
	}
	return DefaultCoverDepth
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PoolSize reports the morsel pool's worker slot count. Creating the pool
// is free (workers spawn on demand), so this is safe to call on an idle
// engine and always matches what dispatches will use.
func (e *Engine) PoolSize() int {
	return e.getPool().size
}

func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return 256
}

func (e *Engine) storeFor(t query.Table) (*store.Sharded, error) {
	var s *store.Sharded
	switch t {
	case query.TablePhoto:
		s = e.Photo
	case query.TableTag:
		s = e.Tag
	case query.TableSpec:
		s = e.Spec
	}
	if s == nil {
		return nil, fmt.Errorf("qe: table %s is not loaded in this archive", t)
	}
	return s, nil
}

// Rows is a streaming query result. Read batches from C until it closes,
// then check Err. Close cancels the query early; it blocks until every
// goroutine of the execution tree has exited, so a closed Rows never leaks
// scan workers.
type Rows struct {
	// C delivers result batches as soon as nodes produce them.
	C <-chan Batch

	cols      []query.Column
	cancel    context.CancelFunc
	done      <-chan struct{}
	errMu     sync.Mutex
	err       error
	truncated bool
	// interrupted is set by tree nodes that stop mid-production because
	// the context fired; it distinguishes a timed-out stream from one
	// whose deadline lapsed only after every row was delivered.
	interrupted atomic.Bool
}

func (r *Rows) setErr(err error) {
	r.errMu.Lock()
	if r.err == nil && err != nil && err != context.Canceled {
		r.err = err
	}
	r.errMu.Unlock()
	r.cancel()
}

// Columns describes the result schema: one entry per value in each
// Result.Values slice, in order, named and typed by the compiler's
// projection.
func (r *Rows) Columns() []query.Column { return r.cols }

// Truncated reports whether a row limit (ExecOptions.Limit) cut the stream
// short while more rows were still arriving. Valid after C closes.
func (r *Rows) Truncated() bool {
	<-r.done
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.truncated
}

// Err reports the first error the tree hit; valid after C closes.
func (r *Rows) Err() error {
	<-r.done
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// Close cancels the query, discards any undelivered batches, and waits for
// the execution tree to shut down. It is idempotent and safe to call while
// another goroutine is still ranging over C.
func (r *Rows) Close() {
	r.cancel()
	for b := range r.C {
		RecycleBatch(b)
	}
	<-r.done
}

// Collect drains the stream into a slice. The batch buffers are recycled
// (the Result structs are copied out; their Values arrays are not pooled and
// stay valid).
func (r *Rows) Collect() ([]Result, error) {
	var out []Result
	for b := range r.C {
		out = append(out, b...)
		RecycleBatch(b)
	}
	return out, r.Err()
}

// ErrTimeout is reported by Rows.Err when ExecOptions.Timeout expired
// before the query completed.
var ErrTimeout = errors.New("qe: query timeout exceeded")

// ExecOptions bounds one query execution. The zero value means unbounded:
// every matching row, no deadline.
type ExecOptions struct {
	// Limit caps delivered rows (after Offset); 0 = unlimited. When the
	// cap cuts off a still-producing stream, Rows.Truncated reports true.
	Limit int
	// Offset skips that many rows before the first delivery.
	Offset int
	// Timeout aborts the query after a wall-clock duration; the stream
	// ends and Rows.Err reports ErrTimeout.
	Timeout time.Duration
	// Analyze requests EXPLAIN ANALYZE instrumentation: every physical
	// operator counts rows and timing, read from the plan's Describe
	// after the stream ends. Instrumentation is wired at planning time —
	// ExecuteOpts handles that; ExecutePlan rejects Analyze on a plan
	// that was not built with PlanAnalyze.
	Analyze bool
}

// Execute runs a prepared QET and returns the streaming result.
func (e *Engine) Execute(ctx context.Context, prep *query.Prepared) (*Rows, error) {
	return e.ExecuteOpts(ctx, prep, ExecOptions{})
}

// ExecuteOpts plans and runs a prepared QET under per-query bounds.
func (e *Engine) ExecuteOpts(ctx context.Context, prep *query.Prepared, opts ExecOptions) (*Rows, error) {
	plan, err := e.PlanAnalyze(prep, opts.Analyze)
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(ctx, plan, opts)
}

// ExecutePlan runs an already planned statement. The plan is the physical
// operator tree Engine.Plan produced; running it a second time re-opens the
// same operators (safe — operators hold no per-run state beyond counters).
func (e *Engine) ExecutePlan(ctx context.Context, plan *ExecPlan, opts ExecOptions) (*Rows, error) {
	if opts.Analyze && !plan.analyze {
		return nil, errors.New("qe: ExecOptions.Analyze requires a plan built with PlanAnalyze")
	}
	ctx, cancel := context.WithCancel(ctx)
	var timedOut func() bool
	if opts.Timeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, opts.Timeout)
		prev := cancel
		cancel = func() { tcancel(); prev() }
		timedOut = func() bool { return tctx.Err() == context.DeadlineExceeded }
		ctx = tctx
	}
	done := make(chan struct{})
	rows := &Rows{cols: plan.Columns(), cancel: cancel, done: done}
	out := plan.root.open(ctx, rows)
	final := make(chan Batch, 4)
	rows.C = final
	go func() {
		defer close(done)
		defer close(final)
		drain := func() {
			cancel()
			for b := range out {
				RecycleBatch(b)
			}
		}
		// markTimeout records ErrTimeout only when the deadline lapsed
		// AND a tree node was actually cut off mid-production: a deadline
		// that expires just after the tree delivered everything is not a
		// timeout.
		markTimeout := func() {
			if timedOut != nil && timedOut() && rows.interrupted.Load() {
				rows.errMu.Lock()
				if rows.err == nil {
					rows.err = ErrTimeout
				}
				rows.errMu.Unlock()
			}
		}
		skip, remaining := opts.Offset, opts.Limit
		for b := range out {
			if skip > 0 {
				if len(b) <= skip {
					skip -= len(b)
					RecycleBatch(b)
					continue
				}
				// The forwarded sub-slice carries the buffer's ownership;
				// the skipped head is simply dead capacity until recycle.
				b = b[skip:]
				skip = 0
			}
			if opts.Limit > 0 {
				if remaining == 0 {
					// A row arrived past the cap: the limit truncated
					// a still-producing stream.
					rows.errMu.Lock()
					rows.truncated = true
					rows.errMu.Unlock()
					RecycleBatch(b)
					drain()
					return
				}
				if len(b) > remaining {
					b = b[:remaining]
					rows.errMu.Lock()
					rows.truncated = true
					rows.errMu.Unlock()
					remaining = 0
					// Deliver the clipped batch, then stop.
					select {
					case final <- b:
					case <-ctx.Done():
						// The clipped batch is dropped: mark the stream so
						// Err() surfaces the timeout instead of reporting a
						// silently shortened result.
						rows.interrupted.Store(true)
						RecycleBatch(b)
					}
					drain()
					return
				}
				remaining -= len(b)
			}
			select {
			case final <- b:
			case <-ctx.Done():
				// A produced batch is dropped here: without the mark,
				// markTimeout would see an "uninterrupted" stream and the
				// partial result would pass for complete.
				rows.interrupted.Store(true)
				RecycleBatch(b)
				drain()
				markTimeout()
				return
			}
		}
		markTimeout()
	}()
	return rows, nil
}

// ExecuteString parses, prepares, and runs query text.
func (e *Engine) ExecuteString(ctx context.Context, src string) (*Rows, error) {
	prep, err := query.PrepareString(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, prep)
}

// ExecuteStringOpts parses, prepares, and runs query text under bounds.
func (e *Engine) ExecuteStringOpts(ctx context.Context, src string, opts ExecOptions) (*Rows, error) {
	prep, err := query.PrepareString(src)
	if err != nil {
		return nil, err
	}
	return e.ExecuteOpts(ctx, prep, opts)
}

// runUnion merges children. In ASAP mode batches flow upward the moment
// either child produces them; duplicates (an object satisfying both sides)
// are suppressed so the result is a set, as SQL UNION and the paper's bags
// of pointers imply.
func (e *Engine) runUnion(ctx context.Context, left, right <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		seen := make(map[catalog.ObjID]struct{})
		var mu sync.Mutex
		forward := func(in <-chan Batch) {
			for b := range in {
				mu.Lock()
				// In-place filter: the surviving results shift down inside
				// the same buffer, whose ownership travels with them.
				filtered := b[:0]
				for _, r := range b {
					if _, dup := seen[r.ObjID]; dup {
						continue
					}
					seen[r.ObjID] = struct{}{}
					filtered = append(filtered, r)
				}
				mu.Unlock()
				if len(filtered) == 0 {
					RecycleBatch(b)
					continue
				}
				select {
				case out <- filtered:
				case <-ctx.Done():
					rows.interrupted.Store(true)
					RecycleBatch(filtered)
					for b := range in {
						RecycleBatch(b)
					}
					return
				}
			}
		}
		if e.Blocking {
			// Blocking comparison mode: drain both children fully first.
			var all []Batch
			for b := range left {
				all = append(all, b)
			}
			for b := range right {
				all = append(all, b)
			}
			replay := make(chan Batch, len(all))
			for _, b := range all {
				replay <- b
			}
			close(replay)
			forward(replay)
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); forward(left) }()
		go func() { defer wg.Done(); forward(right) }()
		wg.Wait()
	}()
	return out
}

// runIntersect drains the left child into a hash set (one child must be
// complete before results can be sent further up the tree), then opens and
// streams the right child through it. The right child stays unopened until
// the left completed: its morsels would otherwise hold shared-pool workers
// blocked on an unconsumed stream.
func (e *Engine) runIntersect(ctx context.Context, left <-chan Batch, openRight func() <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		inLeft := make(map[catalog.ObjID]struct{})
		for b := range left {
			for _, r := range b {
				inLeft[r.ObjID] = struct{}{}
			}
			RecycleBatch(b)
		}
		if ctx.Err() != nil {
			rows.interrupted.Store(true)
			return
		}
		right := openRight()
		emitted := make(map[catalog.ObjID]struct{})
		for b := range right {
			keep := b[:0]
			for _, r := range b {
				if _, ok := inLeft[r.ObjID]; !ok {
					continue
				}
				if _, dup := emitted[r.ObjID]; dup {
					continue
				}
				emitted[r.ObjID] = struct{}{}
				keep = append(keep, r)
			}
			if len(keep) == 0 {
				RecycleBatch(b)
				continue
			}
			select {
			case out <- keep:
			case <-ctx.Done():
				rows.interrupted.Store(true)
				RecycleBatch(keep)
				for b := range right {
					RecycleBatch(b)
				}
				return
			}
		}
	}()
	return out
}

// runMinus drains the right child (the subtrahend must be complete), then
// opens and streams the left child filtered against it. The left child is
// deferred for the same shared-pool reason as runIntersect's right.
func (e *Engine) runMinus(ctx context.Context, openLeft func() <-chan Batch, right <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		sub := make(map[catalog.ObjID]struct{})
		for b := range right {
			for _, r := range b {
				sub[r.ObjID] = struct{}{}
			}
			RecycleBatch(b)
		}
		if ctx.Err() != nil {
			rows.interrupted.Store(true)
			return
		}
		left := openLeft()
		emitted := make(map[catalog.ObjID]struct{})
		for b := range left {
			keep := b[:0]
			for _, r := range b {
				if _, drop := sub[r.ObjID]; drop {
					continue
				}
				if _, dup := emitted[r.ObjID]; dup {
					continue
				}
				emitted[r.ObjID] = struct{}{}
				keep = append(keep, r)
			}
			if len(keep) == 0 {
				RecycleBatch(b)
				continue
			}
			select {
			case out <- keep:
			case <-ctx.Done():
				rows.interrupted.Store(true)
				RecycleBatch(keep)
				for b := range left {
					RecycleBatch(b)
				}
				return
			}
		}
	}()
	return out
}

// runLimit forwards the first n results then stops consuming.
func (e *Engine) runLimit(ctx context.Context, n int, in <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		defer func() {
			// Unblock the producer; the tree context may still be live
			// if the limit is below the result count.
			for b := range in {
				RecycleBatch(b)
			}
		}()
		remaining := n
		for b := range in {
			if len(b) > remaining {
				b = b[:remaining]
			}
			remaining -= len(b)
			select {
			case out <- b:
			case <-ctx.Done():
				// The batch in hand is dropped: the stream was cut off
				// mid-production.
				rows.interrupted.Store(true)
				RecycleBatch(b)
				return
			}
			if remaining == 0 {
				return
			}
		}
	}()
	return out
}

// coverage computes the candidate trixel ranges for a select, or nil for a
// full-table scan.
func (e *Engine) coverage(cs *query.CompiledSelect) (*region.Coverage, error) {
	if cs.Region == nil || e.NoIndex {
		return nil, nil
	}
	return region.Cover(cs.Region, e.coverDepth())
}

// NumShards reports the scatter width: the number of shard slices a leaf
// scan fans out across (taken from the first loaded store).
func (e *Engine) NumShards() int {
	for _, s := range []*store.Sharded{e.Photo, e.Tag, e.Spec} {
		if s != nil {
			return s.NumShards()
		}
	}
	return 0
}

// ShardFanout describes how one leaf scan node fans out across the shard
// slices of its table: the candidate (coverage-overlapping) container count
// on each slice. EXPLAIN serves this so clients can see the scatter before
// paying for it.
type ShardFanout struct {
	Table   string `json:"table"`
	Indexed bool   `json:"indexed"`
	// ContainersPerShard is the candidate (coverage-overlapping) container
	// count on each slice, in shard order.
	ContainersPerShard []int `json:"containers_per_shard"`
	ContainersTotal    int   `json:"containers_total"`
	// ZonePruned counts candidates whose zone maps prove no satisfying
	// record can live in them; ContainersScanned is what the scan will
	// actually read (ContainersTotal - ZonePruned).
	ZonePruned        int `json:"zone_pruned"`
	ContainersScanned int `json:"containers_scanned"`
}

// Fanout computes the per-shard scatter of every leaf scan in a prepared
// statement, in tree order (left before right; a join contributes its left
// then right side scans). It reports the coverage + zone pruning view
// independent of the physical planner: when the planner's crossover rule
// drops the HTM path (see planLeaf), the executed scan touches more
// containers than Fanout's candidate count — compare against the physical
// plan's Containers for the as-executed numbers.
func (e *Engine) Fanout(prep *query.Prepared) ([]ShardFanout, error) {
	if prep.Join != nil {
		left, err := e.fanoutSelect(prep.Join.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.fanoutSelect(prep.Join.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	if prep.Select == nil {
		left, err := e.Fanout(prep.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.Fanout(prep.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	return e.fanoutSelect(prep.Select)
}

// fanoutSelect computes one leaf scan's per-shard scatter.
func (e *Engine) fanoutSelect(cs *query.CompiledSelect) ([]ShardFanout, error) {
	st, err := e.storeFor(cs.Table)
	if err != nil {
		return nil, err
	}
	cov, err := e.coverage(cs)
	if err != nil {
		return nil, err
	}
	var rangeSet *htm.RangeSet
	if cov != nil {
		rangeSet = cov.RangeSet()
	}
	fo := ShardFanout{
		Table:              cs.Table.String(),
		Indexed:            rangeSet != nil,
		ContainersPerShard: make([]int, st.NumShards()),
	}
	// zoneAdmit already answers false for every container when the bounds
	// are provably unsatisfiable, so Never needs no special case here.
	zoneCheck := e.zoneAdmit(cs)
	for i, sh := range st.Shards() {
		for _, cid := range sh.Containers() {
			if rangeSet != nil && !rangeSet.OverlapsTrixel(cid) {
				continue
			}
			fo.ContainersPerShard[i]++
			fo.ContainersTotal++
			if zoneCheck != nil && !sh.CheckZone(cid, zoneCheck.Admit) {
				fo.ZonePruned++
			} else {
				fo.ContainersScanned++
			}
		}
	}
	return []ShardFanout{fo}, nil
}
