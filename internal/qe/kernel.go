// Vectorized filter kernels over compressed column blocks: the plan-time
// half of the scan fast path.
//
// The planner compiles a leaf scan's predicate bounds (query.Bounds) into
// per-column key-range tests against the store's COLBLK slabs (package
// colblk). All comparison happens in key space — an unsigned total order
// agreeing with IEEE ordering on non-NaN values — so each interval becomes
// one branch-free `key-lo <= span` test, NaN semantics fall out exactly as
// the row path's float comparisons (NaN keys sit outside every real range),
// and negated predicates that admit NaN add a second range test against the
// [key(-Inf), key(+Inf)] band instead of a float isNaN call.
//
// When query.KernelExact proves the ranges ARE the predicate, survivors
// skip the compiled row predicate entirely; otherwise the kernel is a
// conservative prefilter and the row predicate re-checks survivors against
// the raw record. Either way only survivors materialize into result
// batches, and constant/dictionary/frame-of-reference blocks whose key
// bounds cannot intersect a range dismiss whole containers without
// unpacking a single code.
package qe

import (
	"sort"

	"sdss/internal/colblk"
	"sdss/internal/query"
	"sdss/internal/store"
)

// scanPlan is the per-query leaf-scan state the planner computes once and
// every shard worker shares: the hidden (sort/aggregate) column list and
// result width that used to be recomputed per slice, plus the compiled
// kernel (nil when the scan must run the row path).
type scanPlan struct {
	hidden []query.AttrID
	width  int
	kernel *kernelPlan
}

// newScanPlan hoists the per-shard scan setup to plan time: the scatter
// used to rebuild this state inside every shard slice's runScan call.
func (e *Engine) newScanPlan(cs *query.CompiledSelect, st *store.Sharded) *scanPlan {
	sp := &scanPlan{}
	if cs.Order != query.AttrInvalid {
		sp.hidden = append(sp.hidden, cs.Order)
	}
	if cs.Agg != query.AggNone && cs.Agg != query.AggCount {
		sp.hidden = append(sp.hidden, cs.AggCol)
	}
	sp.width = len(cs.Cols) + len(sp.hidden)
	sp.kernel = e.compileKernel(cs, st, sp)
	return sp
}

// kernelPlan is one leaf scan's compiled kernel: the key-range predicates,
// the output column routing, and the identity columns every result needs.
type kernelPlan struct {
	spec           *colblk.Spec
	objCol, htmCol int
	// exact marks that the key ranges are the whole predicate (see
	// query.KernelExact): survivors skip the row predicate.
	exact bool
	// never marks a predicate no stored record can satisfy: every container
	// is dismissed outright (the planner's empty-access shortcut normally
	// catches this first, but NoZone keeps full-scan baselines honest).
	never bool
	preds []kernelPred
	outs  []outCol
	// needRow is set when survivors still touch the raw record: a residual
	// row predicate, or a derived output attribute.
	needRow bool
	// perRecBytes is the raw footprint of the columns the kernel references
	// per record — the numerator of the planner's bytes-scanned estimate.
	perRecBytes int
}

// outCol routes one output value: stored attributes materialize from
// decoded keys, derived ones through the row accessor.
type outCol struct {
	attr   query.AttrID
	stored bool
	kind   colblk.Kind
}

// kernelPred is one column's compiled range test. A record's key k
// survives iff k-kLo <= kSpan (its value satisfies the interval), or — for
// predicates negation made NaN-admitting — k lies outside the
// [nanLo, nanLo+nanSpan] band of real values. never marks an interval no
// storable real value satisfies (only the NaN test can admit).
type kernelPred struct {
	col            int
	kind           colblk.Kind
	never          bool
	kLo, kSpan     uint64
	allowNaN       bool
	nanLo, nanSpan uint64
}

// name labels the scan's kernel for EXPLAIN.
func (kp *kernelPlan) name() string {
	switch {
	case kp == nil:
		return "row"
	case kp.exact:
		return "vector"
	default:
		return "vector+pred"
	}
}

// compileKernel builds the kernel plan for a leaf scan, or nil when the
// scan must run the row path: kernels are disabled (NoKernel, or the
// FullDecode baseline), the store keeps no column blocks, or the predicate
// offers neither exactness nor a single range to prefilter on (a purely
// spatial or flag-mask predicate gains nothing from decoding columns).
func (e *Engine) compileKernel(cs *query.CompiledSelect, st *store.Sharded, sp *scanPlan) *kernelPlan {
	if e.NoKernel || e.FullDecode || !st.ColBlkEnabled() {
		return nil
	}
	spec := query.ColumnSpecs(cs.Table)
	if spec == nil {
		return nil
	}
	kp := &kernelPlan{spec: spec}
	switch cs.Table {
	case query.TablePhoto:
		kp.objCol, kp.htmCol = int(query.PhotoObjID), int(query.PhotoHTMID)
	case query.TableTag:
		kp.objCol, kp.htmCol = int(query.TagObjID), int(query.TagHTMID)
	case query.TableSpec:
		kp.objCol, kp.htmCol = int(query.SpecObjID), int(query.SpecHTMID)
	default:
		return nil
	}
	var where query.Expr
	if cs.Source != nil {
		where = cs.Source.Where
	}
	kp.exact = query.KernelExact(cs.Table, where)

	switch {
	case cs.Bounds != nil && cs.Bounds.Never:
		kp.never = true
	case cs.Bounds != nil:
		// Deterministic pred order (ByAttr is a map).
		attrs := make([]query.AttrID, 0, len(cs.Bounds.ByAttr))
		for a := range cs.Bounds.ByAttr {
			attrs = append(attrs, a)
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		for _, a := range attrs {
			if int(a) >= spec.NumCols() {
				continue
			}
			c := spec.Col(int(a))
			if c.Kind == colblk.KNone {
				continue // derived attribute: the row predicate re-checks it
			}
			iv := cs.Bounds.ByAttr[a]
			p := kernelPred{col: int(a), kind: c.Kind}
			if kLo, kHi, ok := c.Kind.KeyRange(iv.Lo, iv.Hi, iv.LoOpen, iv.HiOpen); ok {
				p.kLo, p.kSpan = kLo, kHi-kLo
			} else {
				p.never = true
			}
			if iv.AllowNaN {
				if lo, hi, ok := c.Kind.InfKeys(); ok {
					p.allowNaN, p.nanLo, p.nanSpan = true, lo, hi-lo
				}
				// Integer kinds store no NaNs: AllowNaN is vacuous there.
			}
			if p.never && !p.allowNaN {
				// No storable value on this attribute satisfies the bounds
				// (e.g. "class < 0" over a u8 column): nothing matches.
				kp.never = true
				break
			}
			kp.preds = append(kp.preds, p)
		}
	}
	if !kp.exact && len(kp.preds) == 0 && !kp.never {
		return nil
	}

	for _, a := range cs.Cols {
		kp.outs = append(kp.outs, makeOutCol(spec, a))
	}
	for _, a := range sp.hidden {
		kp.outs = append(kp.outs, makeOutCol(spec, a))
	}
	kp.needRow = !kp.exact && cs.Pred != nil
	for _, oc := range kp.outs {
		if !oc.stored {
			kp.needRow = true
		}
	}

	ref := make([]bool, spec.NumCols())
	ref[kp.objCol], ref[kp.htmCol] = true, true
	for _, p := range kp.preds {
		ref[p.col] = true
	}
	for _, oc := range kp.outs {
		if oc.stored {
			ref[int(oc.attr)] = true
		}
	}
	for i, used := range ref {
		if used {
			kp.perRecBytes += spec.Col(i).Kind.Size()
		}
	}
	return kp
}

func makeOutCol(spec *colblk.Spec, a query.AttrID) outCol {
	c := spec.Col(int(a))
	return outCol{attr: a, stored: c.Kind != colblk.KNone, kind: c.Kind}
}

// probe reports whether any key the block can decode to satisfies the
// predicate, from the block header alone. A false return dismisses the
// whole container without unpacking a single code — the dictionary-miss
// and constant-block shortcuts.
func (p *kernelPred) probe(b *colblk.Block) bool {
	if b.Enc == colblk.EncDict {
		// The dictionary is the exact sorted key set: test membership, not
		// just bounds.
		d := b.Dict
		if !p.never {
			i := sort.Search(len(d), func(j int) bool { return d[j] >= p.kLo })
			if i < len(d) && d[i]-p.kLo <= p.kSpan {
				return true
			}
		}
		// A sorted set contains a key outside the real band iff one of its
		// extremes does.
		return p.allowNaN && len(d) > 0 &&
			(d[0]-p.nanLo > p.nanSpan || d[len(d)-1]-p.nanLo > p.nanSpan)
	}
	lo, hi, ok := b.KeyBounds(p.kind)
	if !ok {
		return true // no cheap bounds: decode and let the filter decide
	}
	if !p.never && max(lo, p.kLo) <= min(hi, p.kLo+p.kSpan) {
		return true
	}
	// NaN keys sit outside [key(-Inf), key(+Inf)]: the block can hold one
	// only if its bounds poke out of that band.
	return p.allowNaN && (lo < p.nanLo || hi > p.nanLo+p.nanSpan)
}

// filter narrows the selection vector to records whose key satisfies the
// predicate, returning the surviving count. n < 0 seeds the selection from
// every record. The loops are branch-free: the conditional append compiles
// to a flag increment, not a jump, so survivor density does not stall the
// pipeline.
func (p *kernelPred) filter(keys []uint64, sel []int32, n int) int {
	if p.never {
		// Only NaN keys can survive (a pred admitting nothing at all
		// dismissed the container at probe time; allowNaN is set here).
		nanLo, nanSpan := p.nanLo, p.nanSpan
		m := 0
		if n < 0 {
			for i, k := range keys {
				sel[m] = int32(i)
				m += b2i(k-nanLo > nanSpan)
			}
			return m
		}
		for _, si := range sel[:n] {
			sel[m] = si
			m += b2i(keys[si]-nanLo > nanSpan)
		}
		return m
	}
	lo, span := p.kLo, p.kSpan
	// Without NaN admission the band test is rigged to never fire
	// (k-0 <= MaxUint64 holds for every k), keeping one loop body.
	nanLo, nanSpan := uint64(0), ^uint64(0)
	if p.allowNaN {
		nanLo, nanSpan = p.nanLo, p.nanSpan
	}
	m := 0
	if n < 0 {
		for i, k := range keys {
			sel[m] = int32(i)
			m += b2i(k-lo <= span) | b2i(k-nanLo > nanSpan)
		}
		return m
	}
	for _, si := range sel[:n] {
		k := keys[si]
		sel[m] = si
		m += b2i(k-lo <= span) | b2i(k-nanLo > nanSpan)
	}
	return m
}

// b2i converts a comparison to a 0/1 increment (compiled as a set-on-flag,
// not a branch).
func b2i(b bool) int {
	var v int
	if b {
		v = 1
	}
	return v
}
