package qe

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/load"
	"sdss/internal/query"
	"sdss/internal/skygen"
)

// shardedArchive loads the same deterministic survey as testArchive into a
// store split across the given number of shard slices.
func shardedArchive(t testing.TB, n int, seed int64, shards int) (*Engine, []catalog.PhotoObj) {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(seed, n), 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	return &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}, photo
}

// canonical sorts an unordered result set into a deterministic order
// (by ObjID, which is unique per row in non-aggregate queries).
func canonical(res []Result) {
	sort.Slice(res, func(i, j int) bool { return res[i].ObjID < res[j].ObjID })
}

func sameResults(t *testing.T, name string, a, b []Result, floatTol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(a), len(b))
	}
	for i := range a {
		if a[i].ObjID != b[i].ObjID {
			t.Fatalf("%s: row %d objid %d vs %d", name, i, a[i].ObjID, b[i].ObjID)
		}
		if len(a[i].Values) != len(b[i].Values) {
			t.Fatalf("%s: row %d has %d vs %d values", name, i, len(a[i].Values), len(b[i].Values))
		}
		for j, av := range a[i].Values {
			bv := b[i].Values[j]
			// NaN-aware: unmeasured magnitudes must agree as NaN on both
			// sides, not fail the grid with NaN != NaN.
			if av == bv || (math.IsNaN(av) && math.IsNaN(bv)) {
				continue
			}
			den := math.Max(math.Abs(av), math.Abs(bv))
			if floatTol > 0 && den > 0 && math.Abs(av-bv)/den <= floatTol {
				continue
			}
			t.Fatalf("%s: row %d value %d: %v vs %v", name, i, j, av, bv)
		}
	}
}

// TestShardPropertyGrid is the conformance property test: for every query
// in the grid (filter, cone, ORDER BY+LIMIT, each aggregate), an archive
// split into 8 shards must produce results identical to the single-shard
// archive over the same dataset — exactly, after the ordering rules:
// unordered streams are compared as canonically sorted sets, ordered
// streams row for row, and SUM/AVG to float tolerance (their addition
// order legitimately differs across shard counts).
func TestShardPropertyGrid(t *testing.T) {
	const n, seed = 6000, 7
	single, photo := shardedArchive(t, n, seed, 1)
	wide, _ := shardedArchive(t, n, seed, 8)
	if got := wide.Photo.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	center := photo[0]

	grid := []struct {
		name    string
		q       string
		ordered bool
		tol     float64
	}{
		{"filter", "SELECT objid, r FROM tag WHERE r < 21 AND class = 'GALAXY'", false, 0},
		{"filter-photo", "SELECT objid, r, petroRad FROM photoobj WHERE r < 20.5", false, 0},
		{"cone", fmt.Sprintf("SELECT objid, ra, dec, r FROM tag WHERE CIRCLE(%v, %v, 45)", center.RA, center.Dec), false, 0},
		{"order-limit", "SELECT objid, r FROM tag WHERE r < 21.5 ORDER BY r LIMIT 50", true, 0},
		{"order-desc", "SELECT objid, r FROM tag ORDER BY r DESC LIMIT 25", true, 0},
		{"order-all", "SELECT objid, g FROM tag WHERE g < 21 ORDER BY g", true, 0},
		{"count", "SELECT COUNT(*) FROM tag WHERE r < 21", true, 0},
		{"min", "SELECT MIN(r) FROM tag WHERE r < 21", true, 0},
		{"max", "SELECT MAX(r) FROM tag WHERE r < 21", true, 0},
		{"sum", "SELECT SUM(r) FROM tag WHERE r < 21", true, 1e-12},
		{"avg", "SELECT AVG(r) FROM tag WHERE r < 21", true, 1e-12},
		{"union", "SELECT objid FROM tag WHERE r < 19 UNION SELECT objid FROM tag WHERE g < 19", false, 0},
		{"intersect", "SELECT objid FROM tag WHERE r < 21 INTERSECT SELECT objid FROM tag WHERE g < 21", false, 0},
		{"minus", "SELECT objid FROM tag WHERE r < 21 MINUS SELECT objid FROM tag WHERE g < 20", false, 0},
	}
	for _, tc := range grid {
		t.Run(tc.name, func(t *testing.T) {
			a := mustCollect(t, single, tc.q)
			b := mustCollect(t, wide, tc.q)
			if !tc.ordered {
				canonical(a)
				canonical(b)
			}
			sameResults(t, tc.name, a, b, tc.tol)
		})
	}
}

// TestShardFanout checks the EXPLAIN-side scatter report: every slice of a
// whole-sky table holds candidate containers, and the per-shard counts sum
// to the store's container total.
func TestShardFanout(t *testing.T) {
	wide, _ := shardedArchive(t, 4000, 3, 4)
	prep, err := query.PrepareString("SELECT objid FROM tag WHERE r < 21")
	if err != nil {
		t.Fatal(err)
	}
	fo, err := wide.Fanout(prep)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo) != 1 {
		t.Fatalf("got %d fanout entries, want 1", len(fo))
	}
	if len(fo[0].ContainersPerShard) != 4 {
		t.Fatalf("fanout reports %d shards, want 4", len(fo[0].ContainersPerShard))
	}
	total := 0
	for i, c := range fo[0].ContainersPerShard {
		if c == 0 {
			t.Errorf("shard %d holds no candidate containers for a whole-sky scan", i)
		}
		total += c
	}
	if total != wide.Tag.NumContainers() {
		t.Fatalf("fanout total %d != %d containers", total, wide.Tag.NumContainers())
	}
	if total != fo[0].ContainersTotal {
		t.Fatalf("ContainersTotal %d != sum %d", fo[0].ContainersTotal, total)
	}
}

// TestMergeOrderedStability unit-tests the k-way merge's ordering rules:
// rows merge by (key, objid); exact duplicates come from the lowest shard
// index first.
func TestMergeOrderedStability(t *testing.T) {
	e := &Engine{BatchSize: 2}
	const keyIdx = 1 // 1 projected col, key at index 1
	mk := func(objID catalog.ObjID, col, key float64) Result {
		return Result{ObjID: objID, Values: []float64{col, key}}
	}
	// Shard streams, each already sorted by (key, objid). Key 5.0 ties
	// across all three shards with distinct objids; (key 7, objid 70) is an
	// exact duplicate in shards 1 and 2 whose payload column identifies the
	// shard it came from.
	shards := [][]Result{
		{mk(3, 30, 5), mk(9, 90, 9)},
		{mk(1, 10, 5), mk(70, 1, 7)},
		{mk(2, 20, 5), mk(70, 2, 7), mk(4, 40, 8)},
	}
	ins := make([]<-chan Batch, len(shards))
	for i, rs := range shards {
		ch := make(chan Batch, 1)
		ch <- Batch(rs)
		close(ch)
		ins[i] = ch
	}
	rows := &Rows{cancel: func() {}}
	var got []Result
	for b := range e.runMergeOrdered(context.Background(), keyIdx, false, ins, rows) {
		got = append(got, b...)
	}
	var desc []string
	for _, r := range got {
		if len(r.Values) != 1 {
			t.Fatalf("hidden key not stripped: %v", r.Values)
		}
		desc = append(desc, fmt.Sprintf("%d:%g", r.ObjID, r.Values[0]))
	}
	// Key ties order by objid (1, 2, 3); the duplicate (7, 70) takes the
	// shard-1 copy (payload 1) before the shard-2 copy (payload 2).
	want := "1:10 2:20 3:30 70:1 70:2 4:40 9:90"
	if s := strings.Join(desc, " "); s != want {
		t.Fatalf("merge order\n got: %s\nwant: %s", s, want)
	}
}

// TestSortLessNaNTotalOrder pins the comparator's totality under NaN sort
// keys: NaN orders before every number (after, under DESC), NaN ties break
// by ObjID, and the order is antisymmetric — the invariants the per-shard
// sort and the k-way merge both need to agree on one global order.
func TestSortLessNaNTotalOrder(t *testing.T) {
	nan := math.NaN()
	mk := func(objID catalog.ObjID, key float64) Result {
		return Result{ObjID: objID, Values: []float64{key}}
	}
	rs := []Result{mk(1, nan), mk(2, nan), mk(3, math.Inf(-1)), mk(4, 0), mk(5, math.Inf(1))}
	for _, desc := range []bool{false, true} {
		for i := range rs {
			for j := range rs {
				ij := sortLess(&rs[i], &rs[j], 0, desc)
				ji := sortLess(&rs[j], &rs[i], 0, desc)
				if i == j && (ij || ji) {
					t.Fatalf("desc=%v: result %d not equal to itself", desc, i)
				}
				if i != j && ij == ji {
					t.Fatalf("desc=%v: results %d,%d not strictly ordered (less=%v both ways)", desc, i, j, ij)
				}
			}
		}
	}
	// Ascending: NaNs (objid order) first, then -Inf, 0, +Inf.
	sorted := append([]Result(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sortLess(&sorted[i], &sorted[j], 0, false) })
	var ids []catalog.ObjID
	for _, r := range sorted {
		ids = append(ids, r.ObjID)
	}
	if fmt.Sprint(ids) != "[1 2 3 4 5]" {
		t.Fatalf("ascending NaN order = %v, want [1 2 3 4 5]", ids)
	}
}

// TestRowsCloseRaceAcrossShardProducers is the -race proof for the
// cancellation path: many shard scan workers push batches while consumers
// close the stream mid-batch, repeatedly and concurrently. Close must be
// idempotent across goroutines and leak no producers (Err returning means
// the whole tree exited).
func TestRowsCloseRaceAcrossShardProducers(t *testing.T) {
	e, _ := shardedArchive(t, 4000, 11, 8)
	e.BatchSize = 8 // many small batches → many contended channel ops
	for iter := 0; iter < 30; iter++ {
		rows, err := e.ExecuteString(context.Background(), "SELECT objid, ra, dec, r FROM tag")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		// One consumer reads a little, then everyone races to Close.
		wg.Add(3)
		go func() {
			defer wg.Done()
			n := 0
			for b := range rows.C {
				RecycleBatch(b)
				if n++; n >= 2 {
					break
				}
			}
			rows.Close()
		}()
		for i := 0; i < 2; i++ {
			go func() {
				defer wg.Done()
				rows.Close()
			}()
		}
		wg.Wait()
		if err := rows.Err(); err != nil {
			t.Fatalf("iter %d: Err after close: %v", iter, err)
		}
	}
}
